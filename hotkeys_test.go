package pgrid

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pgrid/internal/workload"
)

// TestZipfCacheRegression runs a skewed read workload with the query answer
// cache and hot-key widening enabled, against both storage engines, with
// writes to the hottest key racing the readers. It pins the two properties
// the features promise:
//
//   - the cache actually serves (hit count > 0 under a Zipf workload), and
//   - invalidation is strict: caching never extends staleness beyond the
//     replicas themselves. The overlay's baseline is eventual — a routed
//     write covers the coordinator's replica view and anti-entropy spreads
//     it to the rest — so once maintenance has converged the partition,
//     every search must see the written value even though reader traffic
//     filled the caches with the pre-write answer moments earlier and those
//     entries are still inside their TTL. Only the clock-probe invalidation
//     can make that pass.
//
// Run under -race this also exercises the cache/widening code for data
// races between concurrent readers, the writer and maintenance.
func TestZipfCacheRegression(t *testing.T) {
	for _, engine := range []string{"mem", "disk"} {
		t.Run(engine, func(t *testing.T) {
			c, err := NewCluster(
				WithPeers(24),
				WithSeed(17),
				WithStorageEngine(engine),
				WithQueryCache(128, time.Second),
				WithHotReplication(200, 2),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()

			const vocab = 48
			terms := make([]string, vocab)
			for i := range terms {
				terms[i] = fmt.Sprintf("term-%03d", i)
				if err := c.IndexString(terms[i], "seed"); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := c.Build(ctx); err != nil {
				t.Fatalf("build: %v", err)
			}

			zipf := workload.NewZipf(vocab, 1.2)
			hot := terms[0]

			var wg sync.WaitGroup
			stop := make(chan struct{})
			errCh := make(chan error, 8)
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 250; i++ {
						select {
						case <-stop:
							return
						default:
						}
						term := terms[zipf.Rank(rng)]
						if _, err := c.SearchString(ctx, term); err != nil {
							errCh <- fmt.Errorf("reader search %q: %w", term, err)
							return
						}
					}
				}(int64(100 + r))
			}

			// The writer is the invariant: after a write to the hot key has
			// converged through maintenance, cache-eligible searches must see
			// it — the pre-write entries the readers keep refilling are still
			// inside their TTL, so only probe invalidation can retire them.
			for i := 0; i < 8; i++ {
				val := fmt.Sprintf("gen-%02d", i)
				if _, err := c.InsertString(ctx, hot, val); err != nil {
					t.Fatalf("insert %s: %v", val, err)
				}
				found := false
				for round := 0; round < 30 && !found; round++ {
					c.MaintenanceRound(ctx)
					hits, err := c.SearchString(ctx, hot)
					if err != nil {
						t.Fatalf("search after insert %s: %v", val, err)
					}
					for _, h := range hits {
						if h.Value == val {
							found = true
							break
						}
					}
				}
				if !found {
					t.Fatalf("cache invalidation failed: %s still invisible after convergence", val)
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			snap := c.MetricsSnapshot()
			if snap.CacheHits == 0 {
				t.Errorf("Zipf workload produced no cache hits (misses=%v)", snap.CacheMisses)
			}
		})
	}
}
