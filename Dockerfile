# Build the deployable P-Grid binaries (pgridnode overlay peer, pgridgate
# HTTP gateway) into a minimal runtime image. The compose topology in
# docker-compose.yml runs the same 3-nodes-plus-gateway cluster the
# internal/harness smoke suite boots as local processes.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/pgridnode ./cmd/pgridnode \
 && CGO_ENABLED=0 go build -trimpath -o /out/pgridgate ./cmd/pgridgate

FROM alpine:3.20
RUN adduser -D -u 10001 pgrid && mkdir -p /var/lib/pgrid && chown pgrid /var/lib/pgrid
COPY --from=build /out/pgridnode /out/pgridgate /usr/local/bin/
USER pgrid
VOLUME /var/lib/pgrid
# Overlay TCP port and HTTP API port; compose overrides the command per role.
EXPOSE 7101 8080
ENTRYPOINT ["pgridnode"]
CMD ["-listen", "0.0.0.0:7101", "-http", "0.0.0.0:8080", "-data-dir", "/var/lib/pgrid", "-serve", "0"]
