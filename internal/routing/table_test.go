package routing

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"

	"pgrid/internal/testutil"
)

func TestSetPathAndLevels(t *testing.T) {
	tab := New(2, 1)
	if tab.Path() != keyspace.Root || tab.Levels() != 0 {
		t.Error("new table should be at the root")
	}
	tab.SetPath("010")
	if tab.Levels() != 3 {
		t.Errorf("levels = %d", tab.Levels())
	}
	tab.Add(0, Ref{Addr: "a", Path: "1"})
	tab.Add(1, Ref{Addr: "b", Path: "00"})
	tab.SetPath("0")
	if tab.Levels() != 1 {
		t.Errorf("levels after shorten = %d", tab.Levels())
	}
	if len(tab.Refs(0)) != 1 || len(tab.Refs(1)) != 0 {
		t.Error("truncation should drop deeper levels only")
	}
}

func TestExtend(t *testing.T) {
	tab := New(2, 2)
	tab.Extend(0, Ref{Addr: "peerB", Path: "1"})
	if tab.Path() != "0" {
		t.Errorf("path = %v", tab.Path())
	}
	refs := tab.Refs(0)
	if len(refs) != 1 || refs[0].Addr != "peerB" {
		t.Errorf("refs = %v", refs)
	}
	tab.Extend(1, Ref{Addr: "peerC", Path: "00"})
	if tab.Path() != "01" {
		t.Errorf("path = %v", tab.Path())
	}
	if len(tab.Refs(1)) != 1 {
		t.Error("level 1 reference missing")
	}
}

func TestAddBoundsAndDuplicates(t *testing.T) {
	tab := New(2, 3)
	tab.SetPath("00")
	// Out-of-range and empty-address adds are ignored.
	tab.Add(-1, Ref{Addr: "x"})
	tab.Add(5, Ref{Addr: "x"})
	tab.Add(0, Ref{Addr: ""})
	if len(tab.All()) != 0 {
		t.Error("invalid adds should be ignored")
	}
	// Duplicates update the path instead of growing the level.
	tab.Add(0, Ref{Addr: "a", Path: "1"})
	tab.Add(0, Ref{Addr: "a", Path: "10"})
	refs := tab.Refs(0)
	if len(refs) != 1 || refs[0].Path != "10" {
		t.Errorf("duplicate handling wrong: %v", refs)
	}
	// Capacity is bounded by maxRefs.
	tab.Add(0, Ref{Addr: "b"})
	tab.Add(0, Ref{Addr: "c"})
	tab.Add(0, Ref{Addr: "d"})
	if len(tab.Refs(0)) != 2 {
		t.Errorf("level should be capped at 2 refs, got %d", len(tab.Refs(0)))
	}
}

func TestRandomRef(t *testing.T) {
	tab := New(3, 4)
	tab.SetPath("0")
	if _, ok := tab.Random(0); ok {
		t.Error("empty level should have no random ref")
	}
	tab.Add(0, Ref{Addr: "a"})
	tab.Add(0, Ref{Addr: "b"})
	seen := map[network.Addr]bool{}
	for i := 0; i < 100; i++ {
		r, ok := tab.Random(0)
		if !ok {
			t.Fatal("random ref missing")
		}
		seen[r.Addr] = true
	}
	if len(seen) != 2 {
		t.Errorf("random selection should eventually return every ref: %v", seen)
	}
	if _, ok := tab.Random(9); ok {
		t.Error("out-of-range level should have no ref")
	}
}

func TestRemove(t *testing.T) {
	tab := New(3, 5)
	tab.SetPath("01")
	tab.Add(0, Ref{Addr: "a"})
	tab.Add(0, Ref{Addr: "b"})
	tab.Add(1, Ref{Addr: "a"})
	tab.Remove("a")
	for _, r := range tab.All() {
		if r.Addr == "a" {
			t.Fatal("reference not removed")
		}
	}
	if len(tab.Refs(0)) != 1 {
		t.Error("unrelated reference should remain")
	}
}

func TestNextHopAndResponsible(t *testing.T) {
	tab := New(3, 6)
	tab.SetPath("01")
	tab.Add(0, Ref{Addr: "peer1", Path: "1"})
	tab.Add(1, Ref{Addr: "peer00", Path: "00"})

	// Key within the partition: responsible, no next hop.
	k := keyspace.MustFromString("0110")
	if !tab.Responsible(k) {
		t.Error("should be responsible for 0110")
	}
	if _, _, ok := tab.NextHop(k); ok {
		t.Error("no hop needed for own partition")
	}
	// Key diverging at level 0.
	k = keyspace.MustFromString("10")
	ref, level, ok := tab.NextHop(k)
	if !ok || level != 0 || ref.Addr != "peer1" {
		t.Errorf("NextHop = %v %d %v", ref, level, ok)
	}
	// Key diverging at level 1.
	k = keyspace.MustFromString("001")
	ref, level, ok = tab.NextHop(k)
	if !ok || level != 1 || ref.Addr != "peer00" {
		t.Errorf("NextHop = %v %d %v", ref, level, ok)
	}
	// Key shorter than the divergence point counts as matching.
	if !tab.Responsible(keyspace.MustFromString("0")) {
		t.Error("prefix key should be considered covered")
	}
}

func TestNextHopMissingReference(t *testing.T) {
	tab := New(3, 7)
	tab.SetPath("01")
	// No references at all: NextHop reports the level but no reference.
	_, level, ok := tab.NextHop(keyspace.MustFromString("11"))
	if ok || level != 0 {
		t.Errorf("expected no hop, level 0; got level %d ok %v", level, ok)
	}
}

func TestMergeFrom(t *testing.T) {
	a := New(3, 8)
	a.SetPath("010")
	b := New(3, 9)
	b.SetPath("011")
	b.Add(0, Ref{Addr: "x", Path: "1"})
	b.Add(1, Ref{Addr: "y", Path: "00"})
	b.Add(2, Ref{Addr: "z", Path: "010"}) // beyond the common prefix

	otherPath, otherRefs := b.Snapshot()
	a.MergeFrom(otherPath, otherRefs)
	if len(a.Refs(0)) != 1 || len(a.Refs(1)) != 1 {
		t.Errorf("shared levels should be merged: %v", a.All())
	}
	if len(a.Refs(2)) != 0 {
		t.Error("levels beyond the common prefix must not be merged")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	tab := New(3, 10)
	tab.SetPath("0")
	tab.Add(0, Ref{Addr: "a"})
	_, levels := tab.Snapshot()
	levels[0][0].Addr = "mutated"
	if tab.Refs(0)[0].Addr != "a" {
		t.Error("snapshot must not alias internal state")
	}
}

func TestStringRendering(t *testing.T) {
	tab := New(3, 11)
	tab.SetPath("01")
	tab.Add(0, Ref{Addr: "a"})
	s := tab.String()
	if !strings.Contains(s, "path=01") || !strings.Contains(s, "L0:[a]") {
		t.Errorf("String = %q", s)
	}
}

func TestDefaultMaxRefs(t *testing.T) {
	tab := New(0, 12)
	tab.SetPath("0")
	for i := 0; i < 10; i++ {
		tab.Add(0, Ref{Addr: network.Addr(fmt.Sprintf("p%d", i))})
	}
	if len(tab.Refs(0)) != DefaultMaxRefs {
		t.Errorf("default cap = %d", len(tab.Refs(0)))
	}
}

func TestRoutingInvariantProperty(t *testing.T) {
	// Property: for any random key and any table whose levels all hold at
	// least one reference, either the owner is responsible or NextHop
	// returns a reference whose recorded path agrees with the key on
	// strictly more bits than the owner's path does.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		depth := 1 + r.Intn(6)
		pathBits := make([]byte, depth)
		for i := range pathBits {
			pathBits[i] = byte('0' + r.Intn(2))
		}
		path := keyspace.Path(pathBits)
		tab := New(2, seed)
		tab.SetPath(path)
		for l := 0; l < depth; l++ {
			tab.Add(l, Ref{Addr: network.Addr(fmt.Sprintf("p%d", l)), Path: path[:l].Child(1 - path.Bit(l))})
		}
		key := keyspace.MustFromFloat(r.Float64(), 32)
		if tab.Responsible(key) {
			return true
		}
		ref, level, ok := tab.NextHop(key)
		if !ok {
			return false
		}
		// The referenced peer's path must match the key at least up to and
		// including the divergence level.
		return key.HasPrefix(ref.Path) && level >= 0
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 500, 501)); err != nil {
		t.Error(err)
	}
}
