// Package routing implements the P-Grid routing table and prefix routing
// (Section 2.1): a peer with path π keeps, for every bit position i of its
// path, one or more randomly selected references to peers whose paths agree
// with π on the first i bits and have the complementary bit at position i.
// The routing tables of all peers together represent the partition trie in a
// distributed fashion; a query for a key is resolved bit by bit, forwarding
// to a referenced peer as soon as the key diverges from the local path.
package routing

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"pgrid/internal/intern"
	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/xrand"
)

// DefaultMaxRefs is the default number of references kept per level;
// multiple references provide alternative access paths when peers fail
// (the paper's first use of replication).
const DefaultMaxRefs = 3

// Ref is a routing reference: the address of a peer known (at insertion
// time) to be responsible for the complementary sub-tree at some level.
type Ref struct {
	Addr network.Addr
	// Path is the referenced peer's path as last observed; it may be stale.
	Path keyspace.Path
}

// Table is a peer's routing table. It is safe for concurrent use: the
// overlay protocol reads it from query handlers while construction and
// maintenance update it.
type Table struct {
	mu sync.RWMutex
	// owner is the owning peer's own address; references to it are ignored
	// so queries never loop back to their origin.
	owner network.Addr
	// path is the owner's current path.
	path keyspace.Path
	// levels[i] holds references into the complementary sub-tree at bit i.
	levels [][]Ref
	// maxRefs bounds the number of references per level.
	maxRefs int
	// rng drives random reference selection and eviction.
	rng *rand.Rand
}

// New creates an empty routing table for a peer currently at the root path.
func New(maxRefs int, seed int64) *Table {
	if maxRefs <= 0 {
		maxRefs = DefaultMaxRefs
	}
	return &Table{maxRefs: maxRefs, rng: xrand.New(seed)}
}

// SetOwner records the owning peer's address so that references to it are
// silently dropped (a peer never needs to route to itself).
func (t *Table) SetOwner(a network.Addr) {
	t.mu.Lock()
	t.owner = a
	t.mu.Unlock()
}

// Path returns the owner's current path.
func (t *Table) Path() keyspace.Path {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.path
}

// SetPath updates the owner's path. Extending the path keeps existing
// levels; shortening it truncates the table accordingly.
func (t *Table) SetPath(p keyspace.Path) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.path = keyspace.Path(intern.String(string(p)))
	if len(t.levels) > len(p) {
		t.levels = t.levels[:len(p)]
	}
	for len(t.levels) < len(p) {
		t.levels = append(t.levels, nil)
	}
}

// Extend appends one bit to the owner's path and records the given
// reference (typically the peer encountered in the split) at the new level.
func (t *Table) Extend(bit int, ref Ref) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.path = keyspace.Path(intern.String(string(t.path.Child(bit))))
	t.levels = append(t.levels, nil)
	t.addLocked(len(t.path)-1, ref)
}

// Add records a reference at the given level (0-based bit position of the
// owner's path). References beyond the owner's current path depth are
// ignored; duplicates update the stored path.
func (t *Table) Add(level int, ref Ref) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addLocked(level, ref)
}

func (t *Table) addLocked(level int, ref Ref) {
	if level < 0 || level >= len(t.path) || ref.Addr == "" || ref.Addr == t.owner {
		return
	}
	// Addresses and paths are drawn from a small shared population (the
	// cluster's peers and trie partitions) but arrive as per-message copies;
	// interning collapses every table's refs onto one canonical allocation
	// per distinct value, which is most of the per-peer routing footprint
	// in large in-process simulations.
	ref.Addr = network.Addr(intern.String(string(ref.Addr)))
	ref.Path = keyspace.Path(intern.String(string(ref.Path)))
	for len(t.levels) <= level {
		t.levels = append(t.levels, nil)
	}
	refs := t.levels[level]
	for i := range refs {
		if refs[i].Addr == ref.Addr {
			refs[i].Path = ref.Path
			return
		}
	}
	if len(refs) < t.maxRefs {
		t.levels[level] = append(refs, ref)
		return
	}
	// Table full at this level: replace a random existing entry, which both
	// bounds the table size and randomizes references over time as the
	// paper's maintenance does.
	refs[t.rng.Intn(len(refs))] = ref
}

// Refs returns a copy of the references at the given level.
func (t *Table) Refs(level int) []Ref {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if level < 0 || level >= len(t.levels) {
		return nil
	}
	return append([]Ref(nil), t.levels[level]...)
}

// Levels returns the owner's path depth, i.e. the number of levels.
func (t *Table) Levels() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.path)
}

// Random returns a uniformly random reference at the given level, or false
// if the level is empty.
func (t *Table) Random(level int) (Ref, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if level < 0 || level >= len(t.levels) || len(t.levels[level]) == 0 {
		return Ref{}, false
	}
	refs := t.levels[level]
	return refs[t.rng.Intn(len(refs))], true
}

// Remove drops a (stale) reference from every level it appears on.
func (t *Table) Remove(addr network.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for l, refs := range t.levels {
		keep := refs[:0]
		for _, r := range refs {
			if r.Addr != addr {
				keep = append(keep, r)
			}
		}
		t.levels[l] = keep
	}
}

// NextHop returns a reference to forward a query for the given key to,
// together with the level at which the key diverges from the owner's path.
// If the key does not diverge (the owner is responsible) ok is false.
func (t *Table) NextHop(key keyspace.Key) (ref Ref, level int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	level = divergenceLevel(t.path, key)
	if level < 0 {
		return Ref{}, -1, false
	}
	// Prefer the divergence level; fall back to any earlier level that has
	// references (the routing invariant guarantees progress as long as some
	// reference towards the complementary sub-tree exists).
	if level < len(t.levels) && len(t.levels[level]) > 0 {
		refs := t.levels[level]
		return refs[t.rng.Intn(len(refs))], level, true
	}
	return Ref{}, level, false
}

// divergenceLevel returns the first bit position where key differs from
// path, or -1 when the key matches the whole path (the owner is
// responsible for it).
func divergenceLevel(path keyspace.Path, key keyspace.Key) int {
	for i := 0; i < len(path); i++ {
		if i >= key.Len {
			return -1
		}
		if key.Bit(i) != path.Bit(i) {
			return i
		}
	}
	return -1
}

// Responsible reports whether the owner's partition covers the key.
func (t *Table) Responsible(key keyspace.Key) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return divergenceLevel(t.path, key) < 0
}

// All returns every reference in the table (for diagnostics and
// maintenance).
func (t *Table) All() []Ref {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Ref
	for _, refs := range t.levels {
		out = append(out, refs...)
	}
	return out
}

// MergeFrom copies the other peer's references for all levels both peers
// share (i.e. up to the length of their common prefix), which is how peers
// exchange routing information during encounters to add redundancy and
// randomization (Figure 2, possibility 3).
func (t *Table) MergeFrom(otherPath keyspace.Path, otherRefs [][]Ref) {
	t.mu.Lock()
	defer t.mu.Unlock()
	common := t.path.CommonPrefixLen(otherPath)
	for l := 0; l < common && l < len(otherRefs); l++ {
		for _, r := range otherRefs[l] {
			t.addLocked(l, r)
		}
	}
}

// Snapshot returns the owner's path and a deep copy of all levels, for
// exchanging routing state with another peer.
func (t *Table) Snapshot() (keyspace.Path, [][]Ref) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	levels := make([][]Ref, len(t.levels))
	for i, refs := range t.levels {
		levels[i] = append([]Ref(nil), refs...)
	}
	return t.path, levels
}

// String renders the table compactly.
func (t *Table) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "path=%s", t.path.String())
	for l, refs := range t.levels {
		addrs := make([]string, len(refs))
		for i, r := range refs {
			addrs[i] = string(r.Addr)
		}
		sort.Strings(addrs)
		fmt.Fprintf(&b, " L%d:[%s]", l, strings.Join(addrs, ","))
	}
	return b.String()
}
