package keyspace

import (
	"strings"
	"testing"
)

// FuzzEncodeString exercises the string encoder with arbitrary inputs and
// depths: it must never panic, must reject exactly the depths outside
// [0, 64], and every produced key must satisfy the representation
// invariants (length, zeroed insignificant bits, String/FromString round
// trip) plus monotonicity under suffix extension.
//
// Run continuously with:
//
//	go test ./internal/keyspace -run=^$ -fuzz=FuzzEncodeString -fuzztime=30s
func FuzzEncodeString(f *testing.F) {
	f.Add("database", 64)
	f.Add("", 0)
	f.Add("Term", 32)
	f.Add("zzzzzzzzzzzz", 48)
	f.Add("a\x00b", 16)
	f.Add("ümlaut", 64)
	f.Add("x", -1)
	f.Add("x", 65)
	f.Fuzz(func(t *testing.T, s string, depth int) {
		k, err := EncodeString(s, depth)
		if depth < 0 || depth > 64 {
			if err == nil {
				t.Fatalf("EncodeString(%q, %d) accepted an invalid depth", s, depth)
			}
			return
		}
		if err != nil {
			t.Fatalf("EncodeString(%q, %d): %v", s, depth, err)
		}
		if k.Len != depth {
			t.Fatalf("key length = %d, want %d", k.Len, depth)
		}
		if depth < 64 && k.Bits&(uint64(1)<<(64-uint(depth))-1) != 0 {
			t.Fatalf("insignificant bits not zero: %064b (depth %d)", k.Bits, depth)
		}
		rt, err := FromString(k.String())
		if err != nil || !rt.Equal(k) {
			t.Fatalf("String round trip broke: %q -> %v (%v)", k.String(), rt, err)
		}
		// Appending a character never moves the key backwards: s is a proper
		// prefix of s+"z", so it is strictly smaller as a string.
		if ext, err := EncodeString(s+"z", depth); err != nil || k.Compare(ext) > 0 {
			t.Fatalf("suffix extension moved key backwards: %q vs %q (%v)", s, s+"z", err)
		}
		// The decoded prefix is always a byte prefix of the lower-cased
		// input when it is non-empty and NUL-free.
		if got := DecodePrefixString(k); got != "" && !strings.Contains(s, "\x00") {
			if !strings.HasPrefix(strings.ToLower(s), got) {
				t.Fatalf("DecodePrefixString(%q) = %q not a prefix", s, got)
			}
		}
	})
}

// FuzzFromFloat checks the float encoder never panics and stays order
// preserving against a second sample.
func FuzzFromFloat(f *testing.F) {
	f.Add(0.0, 0.5, 64)
	f.Add(0.999999, 0.000001, 32)
	f.Add(-1.5, 2.5, 16)
	f.Fuzz(func(t *testing.T, x, y float64, depth int) {
		kx, errX := FromFloat(x, depth)
		ky, errY := FromFloat(y, depth)
		if depth < 0 || depth > 64 {
			if errX == nil || errY == nil {
				t.Fatalf("FromFloat accepted invalid depth %d", depth)
			}
			return
		}
		if errX != nil || errY != nil {
			t.Fatalf("FromFloat(%v/%v, %d): %v %v", x, y, depth, errX, errY)
		}
		// NaN clamps to 0, so only compare well-ordered inputs.
		if x == x && y == y && x <= y && kx.Compare(ky) > 0 {
			t.Fatalf("order inverted: FromFloat(%v) > FromFloat(%v) at depth %d", x, y, depth)
		}
	})
}
