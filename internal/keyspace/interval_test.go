package keyspace

import (
	"testing"
	"testing/quick"

	"pgrid/internal/testutil"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 0.25, Hi: 0.5}
	if !iv.Contains(0.25) || !iv.Contains(0.4) || iv.Contains(0.5) || iv.Contains(0.1) {
		t.Error("Contains wrong")
	}
	if iv.Width() != 0.25 {
		t.Error("Width wrong")
	}
	if iv.Mid() != 0.375 {
		t.Error("Mid wrong")
	}
	l, r := iv.Bisect()
	if l.Lo != 0.25 || l.Hi != 0.375 || r.Lo != 0.375 || r.Hi != 0.5 {
		t.Errorf("Bisect = %v %v", l, r)
	}
	if iv.Empty() || (Interval{Lo: 1, Hi: 1}).Empty() == false {
		t.Error("Empty wrong")
	}
	if !iv.Overlaps(Interval{Lo: 0.4, Hi: 0.6}) || iv.Overlaps(Interval{Lo: 0.5, Hi: 0.6}) {
		t.Error("Overlaps wrong")
	}
	if iv.String() != "[0.25,0.5)" {
		t.Errorf("String = %q", iv.String())
	}
	if !Unit.ContainsKey(MustFromString("1010")) {
		t.Error("unit interval should contain every key")
	}
}

func TestBisectPreservesMeasureProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = frac(a), frac(b)
		if a > b {
			a, b = b, a
		}
		iv := Interval{Lo: a, Hi: b}
		l, r := iv.Bisect()
		return abs(l.Width()+r.Width()-iv.Width()) < 1e-12 && l.Hi == r.Lo
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 1000, 503)); err != nil {
		t.Error(err)
	}
}

func TestRangeContainsKey(t *testing.T) {
	lo := MustFromString("0100")
	hi := MustFromString("1000")
	r := NewRange(lo, hi)
	if !r.ContainsKey(MustFromString("0100")) {
		t.Error("lower bound should be inclusive")
	}
	if r.ContainsKey(MustFromString("1000")) {
		t.Error("upper bound should be exclusive")
	}
	if !r.ContainsKey(MustFromString("0111")) {
		t.Error("interior key missing")
	}
	if r.ContainsKey(MustFromString("0011")) {
		t.Error("key below range accepted")
	}
	unbounded := RangeFrom(lo)
	if !unbounded.ContainsKey(MustFromString("1111")) {
		t.Error("unbounded range should contain large keys")
	}
}

func TestRangeOverlapsPath(t *testing.T) {
	r := NewRange(MustFromFloat(0.3, 16), MustFromFloat(0.6, 16))
	cases := []struct {
		p    Path
		want bool
	}{
		{"0", true},   // [0,0.5) overlaps
		{"1", true},   // [0.5,1) overlaps
		{"00", false}, // [0,0.25) does not
		{"11", false}, // [0.75,1) does not
		{"01", true},
		{"10", true},
	}
	for _, c := range cases {
		if got := r.OverlapsPath(c.p); got != c.want {
			t.Errorf("OverlapsPath(%q) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRangePathsCoverRange(t *testing.T) {
	r := NewRange(MustFromFloat(0.2, 20), MustFromFloat(0.7, 20))
	paths := r.Paths(6)
	if len(paths) == 0 {
		t.Fatal("no covering paths")
	}
	// Every key inside the range must have a prefix among the paths, and no
	// two paths may be in prefix relation (minimality of the cover).
	for i := 0; i < 100; i++ {
		x := 0.2 + 0.5*float64(i)/100
		k := MustFromFloat(x, 20)
		found := false
		for _, p := range paths {
			if k.HasPrefix(p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("key %v (x=%v) not covered", k, x)
		}
	}
	for _, p := range paths {
		for _, q := range paths {
			if p != q && p.IsPrefixOf(q) {
				t.Errorf("cover not minimal: %q prefix of %q", p, q)
			}
		}
	}
}

func TestRangePathsUnbounded(t *testing.T) {
	r := RangeFrom(MustFromFloat(0.5, 8))
	paths := r.Paths(4)
	// The path "1" alone covers [0.5,1).
	if len(paths) != 1 || paths[0] != "1" {
		t.Errorf("paths = %v, want [1]", paths)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
