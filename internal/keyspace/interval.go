package keyspace

import "fmt"

// Interval is a half-open sub-interval [Lo, Hi) of the unit key space.
type Interval struct {
	Lo, Hi float64
}

// Unit is the full key space [0,1).
var Unit = Interval{Lo: 0, Hi: 1}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x < iv.Hi }

// ContainsKey reports whether the key's numeric value lies inside the
// interval.
func (iv Interval) ContainsKey(k Key) bool { return iv.Contains(k.Float()) }

// Width returns the measure Hi-Lo of the interval.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Mid returns the midpoint of the interval, i.e. the bisection point.
func (iv Interval) Mid() float64 { return iv.Lo + (iv.Hi-iv.Lo)/2 }

// Bisect splits the interval into its left and right halves.
func (iv Interval) Bisect() (left, right Interval) {
	m := iv.Mid()
	return Interval{Lo: iv.Lo, Hi: m}, Interval{Lo: m, Hi: iv.Hi}
}

// Overlaps reports whether two intervals share any point.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo < o.Hi && o.Lo < iv.Hi }

// Empty reports whether the interval contains no point.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// String renders the interval as "[lo,hi)".
func (iv Interval) String() string { return fmt.Sprintf("[%g,%g)", iv.Lo, iv.Hi) }

// Range is a half-open key range [Lo, Hi) used by range queries. Either
// bound may be omitted by using the zero Key for Lo and a nil-length
// sentinel produced by UnboundedHi for Hi.
type Range struct {
	Lo Key
	Hi Key
	// HiUnbounded marks the range as extending to the end of the key space.
	HiUnbounded bool
}

// NewRange builds a bounded range [lo, hi).
func NewRange(lo, hi Key) Range { return Range{Lo: lo, Hi: hi} }

// RangeFrom builds a range [lo, +inf).
func RangeFrom(lo Key) Range { return Range{Lo: lo, HiUnbounded: true} }

// ContainsKey reports whether the key is inside the range.
func (r Range) ContainsKey(k Key) bool {
	if k.Compare(r.Lo) < 0 {
		return false
	}
	if r.HiUnbounded {
		return true
	}
	return k.Compare(r.Hi) < 0
}

// OverlapsPath reports whether the range intersects the dyadic interval of
// the given partition path. This is what a peer uses to decide whether it is
// responsible for part of a range query.
func (r Range) OverlapsPath(p Path) bool {
	iv := p.Interval()
	lo := r.Lo.Float()
	hi := 1.0
	if !r.HiUnbounded {
		hi = r.Hi.Float()
	}
	return lo < iv.Hi && iv.Lo < hi
}

// Paths enumerates, up to maxDepth, the minimal set of partition paths whose
// union covers the range. It is used by range-query routing to fan out the
// query to all responsible partitions.
func (r Range) Paths(maxDepth int) []Path {
	var out []Path
	var walk func(p Path)
	walk = func(p Path) {
		if !r.OverlapsPath(p) {
			return
		}
		iv := p.Interval()
		lo := r.Lo.Float()
		hi := 1.0
		if !r.HiUnbounded {
			hi = r.Hi.Float()
		}
		// Fully covered or at depth limit: emit the path itself.
		if (lo <= iv.Lo && hi >= iv.Hi) || len(p) >= maxDepth {
			out = append(out, p)
			return
		}
		walk(p.Child(0))
		walk(p.Child(1))
	}
	walk(Root)
	return out
}
