package keyspace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgrid/internal/testutil"
)

func TestPathChildrenAndParent(t *testing.T) {
	p := Root
	if p.Depth() != 0 {
		t.Fatal("root depth")
	}
	l := p.Child(0)
	r := p.Child(1)
	if l != "0" || r != "1" {
		t.Fatalf("children = %q,%q", l, r)
	}
	if l.Parent() != Root || r.Parent() != Root {
		t.Error("parent of level-1 path should be root")
	}
	if Root.Parent() != Root {
		t.Error("root parent should be root")
	}
	deep := Path("0101")
	if deep.Child(1) != "01011" {
		t.Errorf("Child = %q", deep.Child(1))
	}
	if deep.Parent() != "010" {
		t.Errorf("Parent = %q", deep.Parent())
	}
}

func TestPathSiblingAndFlip(t *testing.T) {
	p := Path("0110")
	if p.Sibling() != "0111" {
		t.Errorf("Sibling = %q", p.Sibling())
	}
	if Root.Sibling() != Root {
		t.Error("root sibling should be root")
	}
	if p.FlipAt(0) != "1" {
		t.Errorf("FlipAt(0) = %q", p.FlipAt(0))
	}
	if p.FlipAt(2) != "010" {
		t.Errorf("FlipAt(2) = %q", p.FlipAt(2))
	}
	if p.FlipAt(3) != "0111" {
		t.Errorf("FlipAt(3) = %q", p.FlipAt(3))
	}
}

func TestPathFlipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Path("01").FlipAt(2)
}

func TestPathBit(t *testing.T) {
	p := Path("101")
	if p.Bit(0) != 1 || p.Bit(1) != 0 || p.Bit(2) != 1 {
		t.Error("Bit values wrong")
	}
}

func TestPathPrefixRelations(t *testing.T) {
	a, b := Path("01"), Path("0110")
	if !a.IsPrefixOf(b) || a.IsPrefixOf(Path("00")) {
		t.Error("IsPrefixOf wrong")
	}
	if !b.HasPrefix(a) || b.HasPrefix(Path("00")) {
		t.Error("HasPrefix wrong")
	}
	if !a.SamePartition(b) || !b.SamePartition(a) {
		t.Error("SamePartition should hold for prefix relation")
	}
	if a.SamePartition(Path("00")) {
		t.Error("SamePartition should not hold for diverging paths")
	}
	if got := Path("0110").CommonPrefixLen(Path("0101")); got != 2 {
		t.Errorf("CommonPrefixLen = %d", got)
	}
	if got := Path("0110").CommonPrefix(Path("0101")); got != "01" {
		t.Errorf("CommonPrefix = %q", got)
	}
}

func TestPathInterval(t *testing.T) {
	cases := []struct {
		p      Path
		lo, hi float64
	}{
		{Root, 0, 1},
		{"0", 0, 0.5},
		{"1", 0.5, 1},
		{"01", 0.25, 0.5},
		{"110", 0.75, 0.875},
	}
	for _, c := range cases {
		iv := c.p.Interval()
		if iv.Lo != c.lo || iv.Hi != c.hi {
			t.Errorf("Interval(%q) = %v, want [%g,%g)", c.p, iv, c.lo, c.hi)
		}
	}
}

func TestPathIntervalConsistentWithKeyPrefix(t *testing.T) {
	// A key has prefix p iff its float value lies in p's interval (up to
	// boundary effects avoided by the generator).
	f := func(x float64, raw uint8) bool {
		x = frac(x)
		depth := int(raw%6) + 1
		k := MustFromFloat(x, 32)
		p := MustFromFloat(x, depth).Path(depth)
		return k.HasPrefix(p) && p.Interval().Contains(k.Float())
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 1000, 504)); err != nil {
		t.Error(err)
	}
}

func TestPathMinMaxKey(t *testing.T) {
	p := Path("10")
	min := p.MinKey(4)
	max := p.MaxKey(4)
	if min.String() != "1000" {
		t.Errorf("MinKey = %q", min)
	}
	if max.String() != "1011" {
		t.Errorf("MaxKey = %q", max)
	}
	if min.Compare(max) >= 0 {
		t.Error("MinKey should be < MaxKey")
	}
}

func TestPathValid(t *testing.T) {
	if !Path("0101").Valid() || !Root.Valid() {
		t.Error("valid path reported invalid")
	}
	if Path("01a1").Valid() {
		t.Error("invalid path reported valid")
	}
}

func TestCoversKeySpace(t *testing.T) {
	cases := []struct {
		paths []Path
		want  bool
	}{
		{[]Path{"0", "1"}, true},
		{[]Path{"00", "01", "1"}, true},
		{[]Path{"00", "01", "10", "11"}, true},
		{[]Path{"0", "10"}, false},              // missing 11
		{[]Path{"0", "1", "11"}, false},         // overlap
		{[]Path{"0", "0", "1"}, false},          // duplicate
		{[]Path{}, false},                       // empty
		{[]Path{Root}, true},                    // single root covers all
		{[]Path{"0", "1x"}, false},              // invalid path
		{[]Path{"000", "001", "01", "1"}, true}, // unbalanced trie
	}
	for _, c := range cases {
		if got := CoversKeySpace(c.paths); got != c.want {
			t.Errorf("CoversKeySpace(%v) = %v, want %v", c.paths, got, c.want)
		}
	}
}

func TestCoversKeySpaceRandomTrieProperty(t *testing.T) {
	// Randomly grown bisection tries always cover the key space.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		leaves := []Path{Root}
		for i := 0; i < 20; i++ {
			j := r.Intn(len(leaves))
			p := leaves[j]
			if len(p) >= 16 {
				continue
			}
			leaves = append(leaves[:j], leaves[j+1:]...)
			leaves = append(leaves, p.Child(0), p.Child(1))
		}
		if !CoversKeySpace(leaves) {
			t.Fatalf("trial %d: random trie does not cover key space: %v", trial, leaves)
		}
	}
}

func TestPathString(t *testing.T) {
	if Root.String() != "ε" {
		t.Errorf("root string = %q", Root.String())
	}
	if Path("010").String() != "010" {
		t.Error("path string wrong")
	}
}
