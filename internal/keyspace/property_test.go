package keyspace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pgrid/internal/testutil"
)

// Property-based tests for the order-preserving encoders. All generators are
// seeded and the seed is logged (via testutil.QuickConfig), so a failure
// reproduces deterministically; bump propertySeed to explore a different
// input population.
const propertySeed int64 = 1702

// TestEncodeStringOrderProperty: for arbitrary strings, the byte order of
// the lower-cased inputs must be preserved by the keys — equal-or-smaller
// keys for smaller strings (non-strict, because keys truncate to DefaultDepth
// bits), and identical keys for case-insensitively equal strings.
func TestEncodeStringOrderProperty(t *testing.T) {
	f := func(a, b string) bool {
		ka := MustEncodeString(a, DefaultDepth)
		kb := MustEncodeString(b, DefaultDepth)
		la, lb := strings.ToLower(a), strings.ToLower(b)
		switch {
		case la < lb:
			return ka.Compare(kb) <= 0
		case la > lb:
			return ka.Compare(kb) >= 0
		default:
			return ka.Equal(kb)
		}
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 4000, propertySeed)); err != nil {
		t.Error(err)
	}
}

// TestEncodeUint64OrderProperty: integer order must survive the encoding at
// every depth, with equality exactly when the retained high bits agree.
func TestEncodeUint64OrderProperty(t *testing.T) {
	f := func(a, b uint64, rawDepth uint8) bool {
		depth := int(rawDepth%64) + 1
		ka, err1 := EncodeUint64(a, depth)
		kb, err2 := EncodeUint64(b, depth)
		if err1 != nil || err2 != nil {
			return false
		}
		if a == b {
			return ka.Equal(kb)
		}
		if a > b {
			a, b = b, a
			ka, kb = kb, ka
		}
		if a>>(64-uint(depth)) == b>>(64-uint(depth)) {
			return ka.Equal(kb)
		}
		return ka.Compare(kb) < 0
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 4000, propertySeed)); err != nil {
		t.Error(err)
	}
}

// TestFromFloatOrderProperty: real order on [0,1) must be preserved, and the
// key's Float() must be a left-edge approximation that never exceeds the
// input.
func TestFromFloatOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed))
	t.Logf("property seed: %d", propertySeed)
	for i := 0; i < 4000; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x > y {
			x, y = y, x
		}
		kx := MustFromFloat(x, DefaultDepth)
		ky := MustFromFloat(y, DefaultDepth)
		if kx.Compare(ky) > 0 {
			t.Fatalf("order violated: FromFloat(%v) > FromFloat(%v)", x, y)
		}
		if f := kx.Float(); f > x || f < 0 || f >= 1 {
			t.Fatalf("Float() = %v not a left-edge approximation of %v", f, x)
		}
	}
}

// TestEncodeStringPrefixRoundTrip: for printable lower-case inputs the
// decoded prefix must reproduce the first encoded bytes of the string.
func TestEncodeStringPrefixRoundTrip(t *testing.T) {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-_"
	rng := rand.New(rand.NewSource(propertySeed))
	t.Logf("property seed: %d", propertySeed)
	for i := 0; i < 2000; i++ {
		n := rng.Intn(13)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		s := b.String()
		k := MustEncodeString(s, DefaultDepth)
		want := s
		if len(want) > 8 {
			want = want[:8] // 64 bits hold the first 8 bytes
		}
		if got := DecodePrefixString(k); got != want {
			t.Fatalf("DecodePrefixString(Encode(%q)) = %q, want %q", s, got, want)
		}
	}
}

// TestEncodersNeverPanicProperty: arbitrary inputs (including depths outside
// the valid range) must produce errors, never panics, and must error exactly
// when the depth is invalid.
func TestEncodersNeverPanicProperty(t *testing.T) {
	f := func(s string, v uint64, x float64, rawDepth int16) bool {
		depth := int(rawDepth % 90) // exercises both sides of [0, 64]
		wantErr := depth < 0 || depth > 64
		if _, err := EncodeString(s, depth); (err != nil) != wantErr {
			return false
		}
		if _, err := EncodeUint64(v, depth); (err != nil) != wantErr {
			return false
		}
		if _, err := EncodeFloat(x, depth); (err != nil) != wantErr {
			return false
		}
		if _, err := FromFloat(x, depth); (err != nil) != wantErr {
			return false
		}
		if _, err := FromBits(v, depth); (err != nil) != wantErr {
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 2000, propertySeed)); err != nil {
		t.Error(err)
	}
}

// TestKeyStringRoundTripProperty: every encoded key survives the
// String/FromString round trip bit-exactly.
func TestKeyStringRoundTripProperty(t *testing.T) {
	f := func(v uint64, rawDepth uint8) bool {
		depth := int(rawDepth % 65)
		k, err := EncodeUint64(v, depth)
		if err != nil {
			return false
		}
		rt, err := FromString(k.String())
		if err != nil {
			return false
		}
		return rt.Equal(k)
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 2000, propertySeed)); err != nil {
		t.Error(err)
	}
}
