package keyspace

import (
	"math"
	"strings"
)

// This file implements order-preserving encodings from application values
// (strings such as inverted-file terms, unsigned integers, floats) into
// binary keys. Order preservation is what distinguishes a data-oriented
// overlay from a DHT: the overlay can answer prefix and range queries
// because lexicographically adjacent values map to adjacent keys — at the
// price of a skewed key distribution.

// EncodeString maps a string to an order-preserving key of the given depth.
// The encoding interprets the first bytes of the lower-cased string as a
// base-256 fraction; ties beyond depth bits are truncated. Two strings that
// share a long prefix therefore map to nearby keys, which is exactly the
// clustering behaviour needed for prefix/range search over terms.
func EncodeString(s string, depth int) (Key, error) {
	if depth < 0 || depth > 64 {
		return Key{}, ErrDepth
	}
	s = strings.ToLower(s)
	var bits uint64
	filled := 0
	for i := 0; i < len(s) && filled < depth; i++ {
		c := uint64(s[i])
		take := 8
		if depth-filled < 8 {
			take = depth - filled
			c >>= uint(8 - take)
		}
		bits = (bits << uint(take)) | c
		filled += take
	}
	bits <<= uint(64 - filled)
	// Zero-extend to the requested depth: trailing zeros keep ordering.
	return Key{Bits: bits, Len: depth}, nil
}

// MustEncodeString is like EncodeString but panics on error.
func MustEncodeString(s string, depth int) Key {
	k, err := EncodeString(s, depth)
	if err != nil {
		panic(err)
	}
	return k
}

// EncodeUint64 maps an unsigned integer to an order-preserving key of the
// given depth by left-aligning its binary representation.
func EncodeUint64(v uint64, depth int) (Key, error) {
	if depth < 0 || depth > 64 {
		return Key{}, ErrDepth
	}
	// v is interpreted as the 64-bit fraction v/2^64, so the key is simply
	// the high `depth` bits of v, left-aligned.
	bits := v
	if depth < 64 {
		bits = v >> uint(64-depth) << uint(64-depth)
	}
	return Key{Bits: bits, Len: depth}, nil
}

// EncodeFloat maps an arbitrary float64 to an order-preserving key by first
// squashing the real line monotonically into (0,1) with a logistic map and
// then applying FromFloat. Values already in [0,1) should use FromFloat
// directly for better resolution.
func EncodeFloat(x float64, depth int) (Key, error) {
	if math.IsNaN(x) {
		x = 0
	}
	u := 1.0 / (1.0 + math.Exp(-x))
	return FromFloat(u, depth)
}

// DecodePrefixString recovers the printable prefix encoded by EncodeString,
// reading full bytes from the key. It is a diagnostic aid (keys are not
// generally invertible once truncated).
func DecodePrefixString(k Key) string {
	var b strings.Builder
	nBytes := k.Len / 8
	for i := 0; i < nBytes; i++ {
		c := byte(k.Bits >> uint(56-8*i))
		if c == 0 {
			break
		}
		b.WriteByte(c)
	}
	return b.String()
}
