package keyspace

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEncodeStringOrderPreserving(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "omega", "aaa", "ab", "abc", "zzz"}
	for _, a := range words {
		for _, b := range words {
			ka := MustEncodeString(a, 48)
			kb := MustEncodeString(b, 48)
			cmpStr := strings.Compare(strings.ToLower(a), strings.ToLower(b))
			cmpKey := ka.Compare(kb)
			// Truncation can merge strings sharing a 6-byte prefix but must
			// never invert the order.
			if cmpStr < 0 && cmpKey > 0 || cmpStr > 0 && cmpKey < 0 {
				t.Errorf("order inverted for %q vs %q: %d vs %d", a, b, cmpStr, cmpKey)
			}
		}
	}
}

// The randomized order property lives in property_test.go
// (TestEncodeStringOrderProperty) with a seeded generator.

func TestEncodeStringCaseInsensitive(t *testing.T) {
	if !MustEncodeString("Term", 32).Equal(MustEncodeString("term", 32)) {
		t.Error("encoding should be case insensitive")
	}
}

func TestEncodeStringDepthError(t *testing.T) {
	if _, err := EncodeString("x", 100); err == nil {
		t.Error("expected depth error")
	}
}

func TestEncodeUint64Monotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := r.Uint64(), r.Uint64()
		if a > b {
			a, b = b, a
		}
		ka, err := EncodeUint64(a, 32)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := EncodeUint64(b, 32)
		if err != nil {
			t.Fatal(err)
		}
		if ka.Compare(kb) > 0 {
			t.Fatalf("order inverted for %d vs %d", a, b)
		}
	}
	if _, err := EncodeUint64(1, 70); err == nil {
		t.Error("expected depth error")
	}
}

func TestEncodeUint64FullDepth(t *testing.T) {
	k, err := EncodeUint64(0xDEADBEEFCAFEBABE, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bits != 0xDEADBEEFCAFEBABE || k.Len != 64 {
		t.Error("full-depth encoding should be identity on bits")
	}
}

func TestEncodeFloatMonotone(t *testing.T) {
	xs := []float64{-100, -1, -0.5, 0, 0.5, 1, 10, 1000}
	for i := 1; i < len(xs); i++ {
		a, err := EncodeFloat(xs[i-1], 40)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EncodeFloat(xs[i], 40)
		if err != nil {
			t.Fatal(err)
		}
		if a.Compare(b) >= 0 {
			t.Errorf("EncodeFloat not strictly increasing at %v -> %v", xs[i-1], xs[i])
		}
	}
}

func TestDecodePrefixString(t *testing.T) {
	k := MustEncodeString("hello", 64)
	got := DecodePrefixString(k)
	if !strings.HasPrefix("hello", got) || len(got) == 0 {
		t.Errorf("DecodePrefixString = %q", got)
	}
	if got != "hello" {
		// 64 bits = 8 bytes, "hello" is 5 bytes so it should decode fully.
		t.Errorf("expected full decode, got %q", got)
	}
}
