// Package keyspace implements the binary key space underlying the P-Grid
// trie overlay: order-preserving binary keys drawn from the interval [0,1),
// partition paths (bit strings identifying key-space partitions), and the
// interval algebra needed by the recursive bisection construction.
//
// Keys are order preserving: if a < b as application values then
// Key(a) < Key(b) lexicographically. This is the property that makes the
// overlay "data oriented" — range queries and other semantic processing of
// keys remain possible, at the price of a skewed key distribution that the
// construction algorithm must balance.
package keyspace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultDepth is the number of bits retained when encoding application
// values into binary keys. 64 bits is enough to distinguish any two float64
// values in [0,1) that differ in their fractional part.
const DefaultDepth = 64

// Key is an order-preserving binary key in the unit interval [0,1).
// The zero value is the key 0.000... (the left edge of the key space).
//
// A Key stores up to 64 significant bits in Bits (most significant bit
// first, i.e. bit 0 of the key is the top bit of Bits) together with the
// number of significant bits in Len. Two keys compare lexicographically on
// their bit strings, which coincides with numeric order of the represented
// binary fractions when Len is equal.
type Key struct {
	// Bits holds the key bits left-aligned: bit i of the key (0-based from
	// the most significant position) is (Bits >> (63-i)) & 1.
	Bits uint64
	// Len is the number of significant bits, 0 <= Len <= 64.
	Len int
}

// ErrDepth is returned when a requested key depth is outside [0, 64].
var ErrDepth = errors.New("keyspace: depth out of range [0,64]")

// FromFloat encodes a value in [0,1) as a binary key with the given number
// of bits. Values outside [0,1) are clamped. FromFloat is order preserving:
// x <= y implies FromFloat(x,d).Compare(FromFloat(y,d)) <= 0.
func FromFloat(x float64, depth int) (Key, error) {
	if depth < 0 || depth > 64 {
		return Key{}, ErrDepth
	}
	if math.IsNaN(x) || x < 0 {
		x = 0
	}
	if x >= 1 {
		x = math.Nextafter(1, 0)
	}
	var bits uint64
	for i := 0; i < depth; i++ {
		x *= 2
		bits <<= 1
		if x >= 1 {
			bits |= 1
			x -= 1
		}
	}
	bits <<= uint(64 - depth)
	return Key{Bits: bits, Len: depth}, nil
}

// MustFromFloat is like FromFloat but panics on error. It is intended for
// use with constant depths known to be valid.
func MustFromFloat(x float64, depth int) Key {
	k, err := FromFloat(x, depth)
	if err != nil {
		panic(err)
	}
	return k
}

// Float returns the binary fraction represented by the key, i.e. the left
// edge of the key's dyadic interval.
func (k Key) Float() float64 {
	f := 0.0
	scale := 0.5
	for i := 0; i < k.Len; i++ {
		if k.Bit(i) == 1 {
			f += scale
		}
		scale /= 2
	}
	return f
}

// FromBits builds a key from a left-aligned bit pattern and length.
func FromBits(bits uint64, length int) (Key, error) {
	if length < 0 || length > 64 {
		return Key{}, ErrDepth
	}
	if length < 64 {
		bits &^= (uint64(1)<<(64-uint(length)) - 1) // clear insignificant bits
	}
	return Key{Bits: bits, Len: length}, nil
}

// FromString parses a key from a string of '0' and '1' characters.
func FromString(s string) (Key, error) {
	if len(s) > 64 {
		return Key{}, fmt.Errorf("keyspace: key string longer than 64 bits: %d", len(s))
	}
	var bits uint64
	for i := 0; i < len(s); i++ {
		bits <<= 1
		switch s[i] {
		case '0':
		case '1':
			bits |= 1
		default:
			return Key{}, fmt.Errorf("keyspace: invalid character %q in key string", s[i])
		}
	}
	bits <<= uint(64 - len(s))
	return Key{Bits: bits, Len: len(s)}, nil
}

// MustFromString is like FromString but panics on error.
func MustFromString(s string) Key {
	k, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return k
}

// Bit returns the i-th bit (0-based from the most significant end).
// It panics if i is out of range.
func (k Key) Bit(i int) int {
	if i < 0 || i >= k.Len {
		panic(fmt.Sprintf("keyspace: bit index %d out of range [0,%d)", i, k.Len))
	}
	return int((k.Bits >> uint(63-i)) & 1)
}

// String renders the key as a string of '0' and '1'.
func (k Key) String() string {
	var b strings.Builder
	b.Grow(k.Len)
	for i := 0; i < k.Len; i++ {
		if k.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Compare orders keys lexicographically on their bit strings. A key that is
// a proper prefix of another compares as smaller (it denotes the left edge
// of a larger interval). The result is -1, 0 or +1.
func (k Key) Compare(o Key) int {
	n := k.Len
	if o.Len < n {
		n = o.Len
	}
	if n > 0 {
		shift := uint(64 - n)
		a, b := k.Bits>>shift, o.Bits>>shift
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
	}
	switch {
	case k.Len < o.Len:
		return -1
	case k.Len > o.Len:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two keys have identical bit strings.
func (k Key) Equal(o Key) bool { return k.Len == o.Len && k.Bits == o.Bits }

// HasPrefix reports whether the key starts with the given path.
func (k Key) HasPrefix(p Path) bool {
	if len(p) > k.Len {
		return false
	}
	for i := 0; i < len(p); i++ {
		if byte('0')+byte(k.Bit(i)) != p[i] {
			return false
		}
	}
	return true
}

// Truncate returns the key restricted to its first n bits. If n exceeds the
// key length the key is returned unchanged.
func (k Key) Truncate(n int) Key {
	if n >= k.Len {
		return k
	}
	if n < 0 {
		n = 0
	}
	bits := k.Bits
	if n < 64 {
		bits &^= (uint64(1)<<(64-uint(n)) - 1)
	}
	return Key{Bits: bits, Len: n}
}

// Path returns the key's bit string as a Path of the given length
// (truncating or zero-extending on the right as needed).
func (k Key) Path(n int) Path {
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		if i < k.Len && k.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return Path(b.String())
}

// Keys is a sortable slice of keys.
type Keys []Key

// Len implements sort.Interface.
func (s Keys) Len() int { return len(s) }

// Less implements sort.Interface (ascending key order).
func (s Keys) Less(i, j int) bool { return s[i].Compare(s[j]) < 0 }

// Swap implements sort.Interface.
func (s Keys) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Sort sorts the keys in ascending order.
func (s Keys) Sort() { sort.Sort(s) }

// CountWithPrefix returns how many keys in the slice start with path p.
func (s Keys) CountWithPrefix(p Path) int {
	n := 0
	for _, k := range s {
		if k.HasPrefix(p) {
			n++
		}
	}
	return n
}

// FilterPrefix returns the subset of keys starting with path p, preserving
// order. The returned slice is freshly allocated.
func (s Keys) FilterPrefix(p Path) Keys {
	out := make(Keys, 0, len(s))
	for _, k := range s {
		if k.HasPrefix(p) {
			out = append(out, k)
		}
	}
	return out
}

// SplitFraction computes, for keys belonging to partition prefix, the
// fraction that falls into the left (bit 0) sub-partition. It returns the
// fraction p and the counts (left, right). When no key matches the prefix it
// returns p = 0.5 so that callers fall back to a balanced split.
func (s Keys) SplitFraction(prefix Path) (p float64, left, right int) {
	l := prefix.Child(0)
	r := prefix.Child(1)
	for _, k := range s {
		switch {
		case k.HasPrefix(l):
			left++
		case k.HasPrefix(r):
			right++
		}
	}
	total := left + right
	if total == 0 {
		return 0.5, 0, 0
	}
	return float64(left) / float64(total), left, right
}
