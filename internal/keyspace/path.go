package keyspace

import (
	"fmt"
	"strings"
)

// Path identifies a key-space partition: the empty path denotes the whole
// interval [0,1); appending a '0' selects the left half of the current
// partition and a '1' the right half. Paths are exactly the peer paths of
// the P-Grid trie: a peer with path "01" is responsible for keys whose
// binary expansion starts with 01, i.e. the interval [0.25, 0.5).
type Path string

// Root is the empty path, denoting the full key space.
const Root Path = ""

// Valid reports whether the path consists only of '0' and '1' characters.
func (p Path) Valid() bool {
	for i := 0; i < len(p); i++ {
		if p[i] != '0' && p[i] != '1' {
			return false
		}
	}
	return true
}

// Depth returns the length of the path, i.e. the level of the partition in
// the bisection trie.
func (p Path) Depth() int { return len(p) }

// Child returns the path extended by one bit (0 or 1).
func (p Path) Child(bit int) Path {
	if bit == 0 {
		return p + "0"
	}
	return p + "1"
}

// Parent returns the path with its last bit removed. The root is its own
// parent.
func (p Path) Parent() Path {
	if len(p) == 0 {
		return p
	}
	return p[:len(p)-1]
}

// Bit returns the i-th bit of the path as 0 or 1. It panics when i is out of
// range.
func (p Path) Bit(i int) int {
	if i < 0 || i >= len(p) {
		panic(fmt.Sprintf("keyspace: path bit index %d out of range [0,%d)", i, len(p)))
	}
	if p[i] == '1' {
		return 1
	}
	return 0
}

// Sibling returns the path that differs from p in the last bit only. The
// root has no sibling and is returned unchanged.
func (p Path) Sibling() Path {
	if len(p) == 0 {
		return p
	}
	return p.FlipAt(len(p) - 1)
}

// FlipAt returns the prefix of length i+1 of p with bit i complemented.
// This is the partition a routing-table entry at level i must point into.
func (p Path) FlipAt(i int) Path {
	if i < 0 || i >= len(p) {
		panic(fmt.Sprintf("keyspace: flip index %d out of range [0,%d)", i, len(p)))
	}
	b := []byte(p[:i+1])
	if b[i] == '0' {
		b[i] = '1'
	} else {
		b[i] = '0'
	}
	return Path(b)
}

// IsPrefixOf reports whether p is a (not necessarily proper) prefix of q.
func (p Path) IsPrefixOf(q Path) bool { return strings.HasPrefix(string(q), string(p)) }

// HasPrefix reports whether q is a prefix of p.
func (p Path) HasPrefix(q Path) bool { return strings.HasPrefix(string(p), string(q)) }

// CommonPrefixLen returns the length of the longest common prefix of p and q.
func (p Path) CommonPrefixLen(q Path) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			return i
		}
	}
	return n
}

// CommonPrefix returns the longest common prefix of p and q.
func (p Path) CommonPrefix(q Path) Path { return p[:p.CommonPrefixLen(q)] }

// SamePartition reports whether two peers with paths p and q currently
// belong to the same partition in the sense of the construction protocol:
// one path is a prefix of the other (Figure 2, "peers from same partition
// or one's path is the prefix of the other").
func (p Path) SamePartition(q Path) bool { return p.IsPrefixOf(q) || q.IsPrefixOf(p) }

// Interval returns the dyadic sub-interval of [0,1) addressed by the path.
func (p Path) Interval() Interval {
	lo, width := 0.0, 1.0
	for i := 0; i < len(p); i++ {
		width /= 2
		if p[i] == '1' {
			lo += width
		}
	}
	return Interval{Lo: lo, Hi: lo + width}
}

// MinKey returns the smallest key (of the given depth) contained in the
// partition, i.e. the path padded with zeros.
func (p Path) MinKey(depth int) Key {
	k := MustFromString(string(p))
	return k.Path(depth).key()
}

// MaxKey returns the largest key (of the given depth) contained in the
// partition, i.e. the path padded with ones.
func (p Path) MaxKey(depth int) Key {
	s := string(p)
	for len(s) < depth {
		s += "1"
	}
	return MustFromString(s[:depth])
}

// key converts a path (used internally where the path length equals the
// desired key depth) into a Key.
func (p Path) key() Key { return MustFromString(string(p)) }

// Key converts the path into a Key with one bit per path character.
func (p Path) Key() Key { return MustFromString(string(p)) }

// String returns the path as a plain string; the root prints as "ε".
func (p Path) String() string {
	if len(p) == 0 {
		return "ε"
	}
	return string(p)
}

// Paths is a sortable slice of paths (lexicographic order).
type Paths []Path

// Len implements sort.Interface.
func (s Paths) Len() int { return len(s) }

// Less implements sort.Interface (lexicographic path order).
func (s Paths) Less(i, j int) bool { return s[i] < s[j] }

// Swap implements sort.Interface.
func (s Paths) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// CoversKeySpace reports whether the set of paths forms a complete
// partitioning of the key space: every infinite bit string has exactly one
// path as prefix. The check is performed by verifying that the dyadic
// intervals are disjoint and their total measure is 1.
func CoversKeySpace(paths []Path) bool {
	if len(paths) == 0 {
		return false
	}
	seen := make(map[Path]bool, len(paths))
	total := 0.0
	for _, p := range paths {
		if !p.Valid() {
			return false
		}
		if seen[p] {
			return false
		}
		seen[p] = true
		total += 1.0 / float64(uint64(1)<<uint(len(p)))
	}
	// Disjointness: no path may be a proper prefix of another.
	for _, p := range paths {
		for _, q := range paths {
			if p != q && p.IsPrefixOf(q) {
				return false
			}
		}
	}
	return total > 1-1e-9 && total < 1+1e-9
}
