package keyspace

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pgrid/internal/testutil"
)

func TestFromFloatBasic(t *testing.T) {
	cases := []struct {
		x     float64
		depth int
		want  string
	}{
		{0, 4, "0000"},
		{0.5, 4, "1000"},
		{0.25, 4, "0100"},
		{0.75, 4, "1100"},
		{0.875, 4, "1110"},
		{0.999, 4, "1111"},
		{1.0, 4, "1111"},  // clamped below 1
		{-0.5, 4, "0000"}, // clamped at 0
	}
	for _, c := range cases {
		k, err := FromFloat(c.x, c.depth)
		if err != nil {
			t.Fatalf("FromFloat(%v,%d): %v", c.x, c.depth, err)
		}
		if k.String() != c.want {
			t.Errorf("FromFloat(%v,%d) = %q, want %q", c.x, c.depth, k.String(), c.want)
		}
	}
}

func TestFromFloatDepthErrors(t *testing.T) {
	if _, err := FromFloat(0.5, -1); err == nil {
		t.Error("expected error for negative depth")
	}
	if _, err := FromFloat(0.5, 65); err == nil {
		t.Error("expected error for depth > 64")
	}
	if _, err := FromFloat(0.5, 64); err != nil {
		t.Errorf("depth 64 should be valid: %v", err)
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0101", "111000111", "0000000000000000"} {
		k, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if k.String() != s {
			t.Errorf("round trip %q -> %q", s, k.String())
		}
		if k.Len != len(s) {
			t.Errorf("len %q = %d, want %d", s, k.Len, len(s))
		}
	}
}

func TestFromStringInvalid(t *testing.T) {
	if _, err := FromString("01x"); err == nil {
		t.Error("expected error for invalid character")
	}
	if _, err := FromString(string(make([]byte, 65))); err == nil {
		t.Error("expected error for over-long string")
	}
}

func TestKeyCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"0", "1", -1},
		{"1", "0", 1},
		{"01", "01", 0},
		{"0", "00", -1}, // prefix is smaller
		{"001", "01", -1},
		{"11", "110", -1},
		{"", "0", -1},
	}
	for _, c := range cases {
		a, b := MustFromString(c.a), MustFromString(c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.Compare(a); got != -c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestOrderPreservationProperty(t *testing.T) {
	// FromFloat must be monotone: x <= y => key(x) <= key(y).
	f := func(x, y float64) bool {
		x = frac(x)
		y = frac(y)
		if x > y {
			x, y = y, x
		}
		kx := MustFromFloat(x, 32)
		ky := MustFromFloat(y, 32)
		return kx.Compare(ky) <= 0
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 2000, 505)); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTripProperty(t *testing.T) {
	// Float() must return a value within 2^-depth of the original.
	f := func(x float64) bool {
		x = frac(x)
		k := MustFromFloat(x, 40)
		diff := x - k.Float()
		return diff >= 0 && diff < 1.0/float64(uint64(1)<<40)*2
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 2000, 506)); err != nil {
		t.Error(err)
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	gen := func(r *rand.Rand) Key {
		n := r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('0' + r.Intn(2))
		}
		return MustFromString(string(b))
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		// antisymmetry
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated for %q,%q", a, b)
		}
		// transitivity
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated for %q,%q,%q", a, b, c)
		}
		// reflexivity / equality consistency
		if (a.Compare(b) == 0) != a.Equal(b) {
			t.Fatalf("equal/compare mismatch for %q,%q", a, b)
		}
	}
}

func TestKeyBitAndTruncate(t *testing.T) {
	k := MustFromString("101101")
	wantBits := []int{1, 0, 1, 1, 0, 1}
	for i, w := range wantBits {
		if k.Bit(i) != w {
			t.Errorf("Bit(%d) = %d, want %d", i, k.Bit(i), w)
		}
	}
	if got := k.Truncate(3).String(); got != "101" {
		t.Errorf("Truncate(3) = %q", got)
	}
	if got := k.Truncate(10).String(); got != "101101" {
		t.Errorf("Truncate(10) = %q", got)
	}
	if got := k.Truncate(-1).String(); got != "" {
		t.Errorf("Truncate(-1) = %q", got)
	}
}

func TestKeyBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range bit index")
		}
	}()
	MustFromString("01").Bit(5)
}

func TestHasPrefix(t *testing.T) {
	k := MustFromString("10110")
	cases := []struct {
		p    Path
		want bool
	}{
		{"", true},
		{"1", true},
		{"10", true},
		{"10110", true},
		{"101101", false}, // longer than key
		{"11", false},
		{"0", false},
	}
	for _, c := range cases {
		if got := k.HasPrefix(c.p); got != c.want {
			t.Errorf("HasPrefix(%q) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestKeysSortAndFilter(t *testing.T) {
	ks := Keys{
		MustFromString("110"),
		MustFromString("001"),
		MustFromString("101"),
		MustFromString("000"),
		MustFromString("011"),
	}
	ks.Sort()
	if !sort.IsSorted(ks) {
		t.Fatal("keys not sorted")
	}
	if got := ks.CountWithPrefix("0"); got != 3 {
		t.Errorf("CountWithPrefix(0) = %d, want 3", got)
	}
	if got := ks.CountWithPrefix("11"); got != 1 {
		t.Errorf("CountWithPrefix(11) = %d, want 1", got)
	}
	sub := ks.FilterPrefix("0")
	if len(sub) != 3 {
		t.Errorf("FilterPrefix(0) len = %d, want 3", len(sub))
	}
	for _, k := range sub {
		if !k.HasPrefix("0") {
			t.Errorf("filtered key %q lacks prefix", k)
		}
	}
}

func TestSplitFraction(t *testing.T) {
	ks := Keys{
		MustFromString("000"),
		MustFromString("001"),
		MustFromString("010"),
		MustFromString("100"),
	}
	p, l, r := ks.SplitFraction(Root)
	if l != 3 || r != 1 {
		t.Fatalf("counts = %d,%d want 3,1", l, r)
	}
	if p != 0.75 {
		t.Errorf("fraction = %v, want 0.75", p)
	}
	// Sub-partition "0": keys 000,001 go left, 010 goes right.
	p, l, r = ks.SplitFraction("0")
	if l != 2 || r != 1 || p < 0.66 || p > 0.67 {
		t.Errorf("sub split = %v (%d,%d)", p, l, r)
	}
	// Empty prefix match falls back to 0.5.
	p, l, r = ks.SplitFraction("111")
	if p != 0.5 || l != 0 || r != 0 {
		t.Errorf("empty split = %v (%d,%d)", p, l, r)
	}
}

func TestKeyPathPadding(t *testing.T) {
	k := MustFromString("11")
	if got := k.Path(4); got != "1100" {
		t.Errorf("Path(4) = %q, want 1100", got)
	}
	if got := k.Path(1); got != "1" {
		t.Errorf("Path(1) = %q, want 1", got)
	}
}

func TestFromBits(t *testing.T) {
	k, err := FromBits(0xF000000000000000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "1111" {
		t.Errorf("FromBits = %q", k.String())
	}
	// Insignificant bits must be cleared so Equal works structurally.
	k2, _ := FromBits(0xF0000000000000FF, 4)
	if !k.Equal(k2) {
		t.Error("insignificant bits not cleared")
	}
	if _, err := FromBits(0, 65); err == nil {
		t.Error("expected depth error")
	}
}

// frac maps an arbitrary float into [0,1) deterministically for property tests.
func frac(x float64) float64 {
	if x < 0 {
		x = -x
	}
	x = x - float64(int64(x))
	if x < 0 || x >= 1 {
		return 0
	}
	return x
}
