package replication

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pgrid/internal/keyspace"
)

func fkey(x float64) keyspace.Key { return keyspace.MustFromFloat(x, 32) }

// contentEqual compares the logical content (live items and tombstones with
// generations) of two stores.
func contentEqual(t *testing.T, a, b *Store) bool {
	t.Helper()
	ai, bi := a.Items(), b.Items()
	if len(ai) != len(bi) {
		return false
	}
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	at, bt := a.Tombstones(), b.Tombstones()
	if len(at) != len(bt) {
		return false
	}
	for i := range at {
		if at[i] != bt[i] {
			return false
		}
	}
	return true
}

// TestDigestEqualIffSameContent checks the digest's core contract: two
// stores hash equal at the root exactly when their logical content matches,
// and a single differing pair flips the digest of every bucket on its key's
// prefix chain.
func TestDigestEqualIffSameContent(t *testing.T) {
	a, b := NewStore(), NewStore()
	for i := 0; i < 64; i++ {
		it := Item{Key: fkey(float64(i) / 64), Value: fmt.Sprintf("v%d", i)}
		a.Add(it)
		b.Add(it)
	}
	ha, _ := a.Digest(keyspace.Root)
	hb, _ := b.Digest(keyspace.Root)
	if ha != hb {
		t.Fatalf("identical stores digest differently: %x vs %x", ha, hb)
	}

	extra := Item{Key: fkey(0.7001), Value: "extra"}
	b.Add(extra)
	hb2, _ := b.Digest(keyspace.Root)
	if ha == hb2 {
		t.Fatal("digest unchanged after adding a pair")
	}
	ks := extra.Key.String()
	for d := 0; d <= DigestDepth; d += 4 {
		pa, _ := a.Digest(keyspace.Path(ks[:d]))
		pb, _ := b.Digest(keyspace.Path(ks[:d]))
		if pa == pb {
			t.Errorf("prefix %q digest should differ after divergence", ks[:d])
		}
	}
	// A bucket off the divergent key's prefix chain must still agree.
	off := keyspace.Path(ks[:4]).Sibling()
	pa, _ := a.Digest(off)
	pb, _ := b.Digest(off)
	if pa != pb {
		t.Errorf("unrelated bucket %q digest diverged", off)
	}

	// Deleting the extra pair leaves a tombstone, which must still show up
	// as a digest mismatch against a store that never saw the pair.
	b.Delete(extra.Key, extra.Value)
	hb3, _ := b.Digest(keyspace.Root)
	if hb3 == ha {
		t.Fatal("tombstone invisible to digest: delete must not restore the old hash")
	}
}

// TestDigestIncrementalMatchesRebuild drives a random mutation workload and
// checks after every step that the incrementally maintained digest equals
// the digest of a store rebuilt from scratch out of the same logical
// content.
func TestDigestIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStore()
	var pool []Item
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(pool) == 0:
			it := Item{Key: fkey(rng.Float64()), Value: fmt.Sprintf("v%d", step)}
			s.Insert(it)
			pool = append(pool, it)
		case op < 7:
			it := pool[rng.Intn(len(pool))]
			s.Add(it)
		case op < 9:
			i := rng.Intn(len(pool))
			s.Delete(pool[i].Key, pool[i].Value)
			pool = append(pool[:i], pool[i+1:]...)
		default:
			s.AddTombstones([]Item{{Key: fkey(rng.Float64()), Value: "remote-del", Gen: uint64(step)}})
		}
		if step%37 != 0 {
			continue
		}
		rebuilt := s.Clone()
		for d := 0; d <= 8; d += 2 {
			prefix := fkey(rng.Float64()).Path(d)
			hs, ns := s.Digest(prefix)
			hr, nr := rebuilt.Digest(prefix)
			if hs != hr || ns != nr {
				t.Fatalf("step %d prefix %q: incremental digest (%x,%d) != rebuilt (%x,%d)",
					step, prefix, hs, ns, hr, nr)
			}
		}
	}
}

// TestDigestChildrenPartitionParent checks that the child buckets exactly
// partition the parent: XOR of child hashes equals the parent hash and the
// counts add up.
func TestDigestChildrenPartitionParent(t *testing.T) {
	s := NewStore()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		s.Insert(Item{Key: fkey(rng.Float64()), Value: fmt.Sprintf("v%d", i)})
		if i%5 == 0 {
			s.Delete(fkey(rng.Float64()), "nope") // sprinkle tombstones
		}
	}
	for _, prefix := range []keyspace.Path{"", "0", "10", "110"} {
		ph, pn := s.Digest(prefix)
		var ch uint64
		cn := 0
		kids := s.DigestChildren(prefix, 4)
		if len(kids) != 16 {
			t.Fatalf("DigestChildren(%q, 4) returned %d buckets, want 16", prefix, len(kids))
		}
		for _, k := range kids {
			ch ^= k.Hash
			cn += k.Count
		}
		if ch != ph || cn != pn {
			t.Errorf("prefix %q: children fold to (%x,%d), parent is (%x,%d)", prefix, ch, cn, ph, pn)
		}
	}
}

// TestDeltaSinceExactness checks that DeltaSince returns exactly the pairs
// modified after the cut and that applying the delta to a snapshot
// reproduces the source content.
func TestDeltaSinceExactness(t *testing.T) {
	s := NewStore()
	for i := 0; i < 32; i++ {
		s.Insert(Item{Key: fkey(float64(i) / 32), Value: fmt.Sprintf("v%d", i)})
	}
	snapshot := s.Clone()
	cut := s.Clock()

	s.Insert(Item{Key: fkey(0.015), Value: "new"})
	s.Delete(fkey(3.0/32), "v3")
	s.Insert(Item{Key: fkey(5.0 / 32), Value: "v5"}) // re-stamp of an existing pair

	items, tombs, ok := s.DeltaSince(cut)
	if !ok {
		t.Fatal("delta reported incomparable without GC")
	}
	if len(items) != 2 || len(tombs) != 1 {
		t.Fatalf("delta = %d items, %d tombstones; want 2 and 1 (%v %v)", len(items), len(tombs), items, tombs)
	}
	snapshot.AddTombstones(tombs)
	snapshot.AddAll(items)
	if !contentEqual(t, s, snapshot) {
		t.Error("snapshot + delta does not reproduce the source store")
	}
	hs, _ := s.Digest(keyspace.Root)
	hr, _ := snapshot.Digest(keyspace.Root)
	if hs != hr {
		t.Errorf("digests diverge after delta application: %x vs %x", hs, hr)
	}

	// An empty delta for a fresh cut.
	items, tombs, ok = s.DeltaSince(s.Clock())
	if !ok || len(items) != 0 || len(tombs) != 0 {
		t.Errorf("delta since current clock should be empty, got %v %v", items, tombs)
	}
}

// TestDeltaIncomparableAfterGC checks the comparability contract: once a
// tombstone has been pruned, deltas reaching back before the prune must be
// refused so a stale replica cannot silently miss the delete.
func TestDeltaIncomparableAfterGC(t *testing.T) {
	s := NewStore()
	s.SetGCPolicy(GCPolicy{MinVersions: 4})
	it := Item{Key: fkey(0.5), Value: "doomed"}
	s.Insert(it)
	cut := s.Clock()
	s.Delete(it.Key, it.Value)
	for i := 0; i < 8; i++ { // advance the clock past the horizon
		s.Insert(Item{Key: fkey(0.1 + float64(i)/100), Value: fmt.Sprintf("f%d", i)})
	}
	if n := s.CompactTombstones(); n != 1 {
		t.Fatalf("pruned %d tombstones, want 1", n)
	}
	if s.TombstoneCount() != 0 {
		t.Fatal("tombstone survived GC")
	}
	if s.GCFloor() == 0 {
		t.Fatal("GC floor not advanced by prune")
	}
	if _, _, ok := s.DeltaSince(cut); ok {
		t.Error("delta from before the GC floor must be incomparable")
	}
	if _, _, ok := s.DeltaSince(s.Clock()); !ok {
		t.Error("delta from after the GC floor must stay available")
	}
}

// TestCompactTombstonesAge exercises the wall-clock criterion with a frozen,
// steerable time source.
func TestCompactTombstonesAge(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStore()
	s.SetTimeSource(func() time.Time { return now })
	s.SetGCPolicy(GCPolicy{MinAge: time.Hour})
	s.Insert(Item{Key: fkey(0.25), Value: "a"})
	s.Delete(fkey(0.25), "a")
	if n := s.CompactTombstones(); n != 0 {
		t.Fatalf("young tombstone pruned (%d)", n)
	}
	now = now.Add(2 * time.Hour)
	if n := s.CompactTombstones(); n != 1 {
		t.Fatalf("aged tombstone not pruned (%d)", n)
	}
}

// TestGCDoesNotPruneFreshTombstones checks that a tombstone younger than the
// horizon survives a compaction that prunes an older one, and that the floor
// still advances.
func TestGCDoesNotPruneFreshTombstones(t *testing.T) {
	s := NewStore()
	s.SetGCPolicy(GCPolicy{MinVersions: 6})
	s.Insert(Item{Key: fkey(0.1), Value: "old"})
	s.Delete(fkey(0.1), "old")
	for i := 0; i < 10; i++ {
		s.Insert(Item{Key: fkey(0.5 + float64(i)/100), Value: fmt.Sprintf("f%d", i)})
	}
	s.Insert(Item{Key: fkey(0.9), Value: "fresh"})
	s.Delete(fkey(0.9), "fresh")
	if n := s.CompactTombstones(); n != 1 {
		t.Fatalf("pruned %d tombstones, want exactly the old one", n)
	}
	if !s.Deleted(fkey(0.9), "fresh") {
		t.Error("fresh tombstone was pruned")
	}
}

// TestReinsertRacingGCHorizon reproduces the re-insert-vs-GC race across two
// replicas: replica A pruned the pair's tombstone, replica B still holds it.
// A coordinates a fresh insert (stamped without tombstone memory), B refuses
// the stale stamp, and the coordinator's re-stamp retry — the same recovery
// the routed write path uses — must win everywhere without resurrecting the
// delete.
func TestReinsertRacingGCHorizon(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.SetGCPolicy(GCPolicy{MinVersions: 1})
	key := fkey(0.375)

	// The delete reached both replicas with the same stamp.
	stamp := a.DeleteStamped(key, "x", 0)
	b.AddTombstones([]Item{stamp})

	// A prunes the tombstone, B keeps it.
	a.Insert(Item{Key: fkey(0.8), Value: "filler"})
	if a.CompactTombstones() != 1 {
		t.Fatal("setup: tombstone not pruned at A")
	}

	// A coordinates a re-insert: without tombstone memory the stamp starts
	// at generation 1 and B must refuse it.
	stamped := a.Insert(Item{Key: key, Value: "x"})
	if b.Add(stamped) {
		t.Fatal("B accepted a stamp below its tombstone generation")
	}
	if got := b.PairGen(key, "x"); got != stamp.Gen {
		t.Fatalf("B reports generation %d, want tombstone generation %d", got, stamp.Gen)
	}

	// The coordinator re-stamps above the refusing replica's generation
	// (mirroring resolveInsert's retry) and both replicas converge live.
	restamped := a.Insert(Item{Key: key, Value: "x", Gen: b.PairGen(key, "x") + 1})
	if !b.Add(restamped) {
		t.Fatal("B refused the re-stamped insert")
	}
	if !a.Live(key, "x") || !b.Live(key, "x") {
		t.Fatal("re-insert did not end up live on both replicas")
	}
	// The old tombstone, arriving late from B's pre-retry state, must lose.
	if a.AddTombstones([]Item{stamp}) != 0 || !a.Live(key, "x") {
		t.Error("stale tombstone resurrected the delete over the re-insert")
	}
}

// TestReplaceWithinRebuild checks the rebuild path a stale replica takes
// after missing a GC window: its content under the partition is replaced
// wholesale, so a live pair whose tombstone was deleted-and-pruned elsewhere
// does not survive.
func TestReplaceWithinRebuild(t *testing.T) {
	stale := NewStore()
	stale.Add(Item{Key: fkey(0.125), Value: "zombie"}) // deleted+pruned elsewhere
	stale.Add(Item{Key: fkey(0.25), Value: "shared"})
	stale.Add(Item{Key: fkey(0.75), Value: "other-partition"})

	authoritative := NewStore()
	authoritative.Add(Item{Key: fkey(0.25), Value: "shared"})
	authoritative.Insert(Item{Key: fkey(0.3), Value: "newer"})
	authoritative.Delete(fkey(0.31), "recently-deleted")

	items := authoritative.ItemsWithPrefix("0")
	tombs := authoritative.TombstonesWithPrefix("0")
	stale.ReplaceWithin("0", items, tombs)

	if stale.Live(fkey(0.125), "zombie") {
		t.Error("rebuild kept a pair the authoritative replica no longer has")
	}
	if !stale.Live(fkey(0.25), "shared") || !stale.Live(fkey(0.3), "newer") {
		t.Error("rebuild lost authoritative content")
	}
	if !stale.Deleted(fkey(0.31), "recently-deleted") {
		t.Error("rebuild dropped the authoritative tombstone")
	}
	if !stale.Live(fkey(0.75), "other-partition") {
		t.Error("rebuild touched content outside the partition")
	}
	hs, _ := stale.Digest("0")
	ha, _ := authoritative.Digest("0")
	if hs != ha {
		t.Errorf("digests differ after rebuild: %x vs %x", hs, ha)
	}
}

// TestDeltaRoundTripConvergence is the protocol-level property at store
// granularity: two replicas that exchange deltas since their last common
// clock end up with identical content and digests.
func TestDeltaRoundTripConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := NewStore(), NewStore()
	for i := 0; i < 50; i++ {
		it := Item{Key: fkey(rng.Float64()), Value: fmt.Sprintf("base%d", i)}
		a.Add(it)
		b.Add(it)
	}
	cutA, cutB := a.Clock(), b.Clock()
	// Independent divergence on both sides.
	for i := 0; i < 20; i++ {
		a.Insert(Item{Key: fkey(rng.Float64()), Value: fmt.Sprintf("a%d", i)})
		b.Insert(Item{Key: fkey(rng.Float64()), Value: fmt.Sprintf("b%d", i)})
	}
	a.Delete(fkey(0.5), "base25")
	b.Delete(fkey(0.25), "base12")

	ai, at, ok := a.DeltaSince(cutA)
	if !ok {
		t.Fatal("a delta incomparable")
	}
	bi, bt, ok := b.DeltaSince(cutB)
	if !ok {
		t.Fatal("b delta incomparable")
	}
	b.AddTombstones(at)
	b.AddAll(ai)
	a.AddTombstones(bt)
	a.AddAll(bi)

	if !contentEqual(t, a, b) {
		t.Fatal("replicas did not converge after delta exchange")
	}
	ha, _ := a.Digest(keyspace.Root)
	hb, _ := b.Digest(keyspace.Root)
	if ha != hb {
		t.Errorf("digests differ after convergence: %x vs %x", ha, hb)
	}
}
