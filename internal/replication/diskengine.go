package replication

// The disk-backed storage engine: an LSM-lite of one in-memory memtable over
// immutable sorted segment files (segment.go). Writes land in the memtable
// (they are already WAL-durable — the Store logs every mutation before the
// engine sees it); a checkpoint freezes the memtable, flushes it to a new
// segment and, past a segment-count threshold, compacts all segments into
// one. Reads consult the memtable, the frozen memtable being flushed, then
// segments newest-first; range scans k-way merge all of them.
//
// Crash consistency is manifest-gated: a segment file only becomes part of
// the store when a committed snapshot lists it (snapshot.go), which happens
// after the file and the directory entry are fsynced. Recovery therefore
// opens exactly the manifest's segments — whose content is exactly the
// engine state at the snapshot's WAL boundary — deletes unreferenced
// segment files (flushes whose snapshot never committed; their records are
// still recovered from the surviving WAL segments), and replays the WAL
// tail into the memtable. No pair scan is needed to serve: the segments'
// sparse indexes are the only thing loaded.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// diskCompactThreshold is the number of segments above which a checkpoint
// merges all segments into one.
const diskCompactThreshold = 4

// memKey identifies a pair in the memtable.
type memKey struct{ key, value string }

// memVal is the memtable's record state: a pair, or a delete marker
// shadowing older segments.
type memVal struct {
	gen, ver uint64
	del      bool
}

// diskEngine implements Engine over a memtable plus sorted segments.
type diskEngine struct {
	dir       string
	ephemeral bool // remove dir on Close (throwaway engine without persistence)

	// mu guards the maps and the segment list. Mutating Engine calls are
	// additionally serialised by the owning Store's lock; flushes and
	// compactions run outside that lock (only checkpoint-serialised), which
	// is why readers must hold mu too.
	mu      sync.RWMutex
	mem     map[memKey]memVal
	frozen  map[memKey]memVal // pending flush; nil when none
	segs    []*segment        // oldest first
	n       int               // live pair count
	nextSeq uint64            // next segment file sequence (checkpoint-serialised)

	errMu sync.Mutex
	err   error // sticky segment I/O failure
}

// openDiskEngine opens the engine over dir: it opens the manifest's
// segments (in manifest order, oldest first), deletes unreferenced segment
// files — flushes of checkpoints that never committed; the WAL still holds
// their records — and starts an empty memtable. count is the live pair
// count at the manifest's snapshot boundary.
func openDiskEngine(dir string, manifest []string, count int) (*diskEngine, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(manifest))
	for _, name := range manifest {
		keep[name] = true
	}
	var maxSeq uint64
	for _, e := range entries {
		seq, ok := parseSeq(e.Name(), "seg-", ".seg")
		if !ok {
			continue
		}
		if seq >= maxSeq {
			maxSeq = seq + 1
		}
		if !keep[e.Name()] {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	eng := &diskEngine{
		dir:     dir,
		mem:     make(map[memKey]memVal),
		n:       count,
		nextSeq: maxSeq,
	}
	for _, name := range manifest {
		seg, err := openSegment(filepath.Join(dir, name), name)
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("replication: open segment %s: %w", name, err)
		}
		eng.segs = append(eng.segs, seg)
	}
	return eng, nil
}

// fail records a sticky segment I/O failure (surfaced through
// Store.PersistenceErr).
func (e *diskEngine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
}

// Err returns the sticky segment I/O failure, if any.
func (e *diskEngine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// lookupLocked resolves a pair across memtable, frozen memtable and
// segments (newest first). It returns the record and whether the pair is
// live — a delete marker is a definitive miss. Callers must hold mu.
func (e *diskEngine) lookupLocked(key, value string) (segRec, bool) {
	k := memKey{key, value}
	if v, ok := e.mem[k]; ok {
		return segRec{key: key, value: value, gen: v.gen, ver: v.ver, del: v.del}, !v.del
	}
	if e.frozen != nil {
		if v, ok := e.frozen[k]; ok {
			return segRec{key: key, value: value, gen: v.gen, ver: v.ver, del: v.del}, !v.del
		}
	}
	for i := len(e.segs) - 1; i >= 0; i-- {
		rec, ok, err := e.segs[i].get(key, value)
		if err != nil {
			e.fail(err)
			return segRec{}, false
		}
		if ok {
			return rec, !rec.del
		}
	}
	return segRec{}, false
}

func (e *diskEngine) Get(key, value string) (PairRecord, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rec, live := e.lookupLocked(key, value)
	if !live {
		return PairRecord{}, false
	}
	return PairRecord{Key: key, Value: value, Gen: rec.gen, Ver: rec.ver}, true
}

func (e *diskEngine) Put(rec PairRecord, isNew bool) {
	e.mu.Lock()
	e.mem[memKey{rec.Key, rec.Value}] = memVal{gen: rec.Gen, ver: rec.Ver}
	if isNew {
		e.n++
	}
	e.mu.Unlock()
}

func (e *diskEngine) Delete(key, value string) (PairRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, live := e.lookupLocked(key, value)
	if !live {
		return PairRecord{}, false
	}
	k := memKey{key, value}
	if e.frozen == nil && len(e.segs) == 0 {
		// Nothing beneath the memtable to shadow: drop the entry outright.
		delete(e.mem, k)
	} else {
		e.mem[k] = memVal{del: true}
	}
	e.n--
	return PairRecord{Key: key, Value: value, Gen: rec.gen, Ver: rec.ver}, true
}

func (e *diskEngine) ScanKey(key string, fn func(PairRecord) bool) {
	e.ScanPrefix(key, func(rec PairRecord) bool {
		if rec.Key != key {
			return false
		}
		return fn(rec)
	})
}

func (e *diskEngine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.n
}

func (e *diskEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	for _, g := range e.segs {
		if cerr := g.close(); err == nil {
			err = cerr
		}
	}
	e.segs = nil
	if e.ephemeral {
		if rerr := os.RemoveAll(e.dir); err == nil {
			err = rerr
		}
	}
	return err
}

// --- scanning ---------------------------------------------------------------

// pairSource is the k-way merge's view of one sorted record stream.
type pairSource interface {
	peek() (segRec, bool, error)
	advance()
}

// sliceSource streams a pre-sorted record slice (the memtable view).
type sliceSource struct {
	recs []segRec
	i    int
}

func (s *sliceSource) peek() (segRec, bool, error) {
	if s.i >= len(s.recs) {
		return segRec{}, false, nil
	}
	return s.recs[s.i], true, nil
}

func (s *sliceSource) advance() { s.i++ }

func (e *diskEngine) ScanPrefix(prefix string, fn func(PairRecord) bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	// The memtable view: active entries shadow frozen ones.
	var recs []segRec
	appendMatches := func(m map[memKey]memVal, shadow map[memKey]memVal) {
		for k, v := range m {
			if !hasPrefix(k.key, prefix) {
				continue
			}
			if shadow != nil {
				if _, hidden := shadow[k]; hidden {
					continue
				}
			}
			recs = append(recs, segRec{key: k.key, value: k.value, gen: v.gen, ver: v.ver, del: v.del})
		}
	}
	appendMatches(e.mem, nil)
	if e.frozen != nil {
		appendMatches(e.frozen, e.mem)
	}
	sort.Slice(recs, func(i, j int) bool {
		return pairLess(recs[i].key, recs[i].value, recs[j].key, recs[j].value)
	})
	// Sources in shadowing order: memtable first, then segments newest
	// first.
	sources := make([]pairSource, 0, 1+len(e.segs))
	sources = append(sources, &sliceSource{recs: recs})
	for i := len(e.segs) - 1; i >= 0; i-- {
		it, err := e.segs[i].iter(prefix, "")
		if err != nil {
			e.fail(err)
			return
		}
		sources = append(sources, it)
	}
	if err := mergeSources(sources, prefix, func(rec segRec) bool {
		if rec.del {
			return true
		}
		return fn(PairRecord{Key: rec.key, Value: rec.value, Gen: rec.gen, Ver: rec.ver})
	}); err != nil {
		e.fail(err)
	}
}

// mergeSources k-way merges sorted record streams, resolving duplicates in
// favour of the earliest source, and stops once records leave the prefix.
// Delete markers are passed through to fn (callers skip or drop them).
func mergeSources(sources []pairSource, prefix string, fn func(segRec) bool) error {
	for {
		best := -1
		var bestRec segRec
		for i, src := range sources {
			rec, ok, err := src.peek()
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if best == -1 || pairLess(rec.key, rec.value, bestRec.key, bestRec.value) {
				best, bestRec = i, rec
			}
		}
		if best == -1 {
			return nil
		}
		if !hasPrefix(bestRec.key, prefix) {
			// Sources only yield records at or past the prefix, so the first
			// non-matching minimum means every remaining record is past it.
			return nil
		}
		for _, src := range sources {
			rec, ok, err := src.peek()
			if err != nil {
				return err
			}
			if ok && rec.key == bestRec.key && rec.value == bestRec.value {
				src.advance()
			}
		}
		if !fn(bestRec) {
			return nil
		}
	}
}

// --- checkpoint integration (persist.go) ------------------------------------

// freeze moves the active memtable aside for flushing. Called with the
// owning Store's lock held, at the WAL rotation point of a checkpoint, so
// the frozen set is exactly the un-flushed state at the snapshot boundary.
// If an earlier flush failed, its frozen set is merged under the new one.
func (e *diskEngine) freeze() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.mem) == 0 {
		return
	}
	if e.frozen == nil {
		e.frozen = e.mem
	} else {
		for k, v := range e.mem {
			e.frozen[k] = v
		}
	}
	e.mem = make(map[memKey]memVal)
}

// flushFrozen writes the frozen memtable to a new segment, compacts when
// the segment count passes the threshold, fsyncs the directory, and returns
// the manifest (current segment file names) plus a cleanup that deletes
// segments replaced by compaction — to be invoked only after the snapshot
// referencing the new manifest is durable. Runs outside the store lock;
// serialised by the checkpoint mutex.
func (e *diskEngine) flushFrozen() (manifest []string, cleanup func(), err error) {
	e.mu.RLock()
	frozen := e.frozen
	e.mu.RUnlock()
	if len(frozen) > 0 {
		keys := make([]memKey, 0, len(frozen))
		for k := range frozen {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return pairLess(keys[i].key, keys[i].value, keys[j].key, keys[j].value)
		})
		name := segmentFileName(e.nextSeq)
		e.nextSeq++
		w, err := newSegWriter(filepath.Join(e.dir, name))
		if err != nil {
			return nil, nil, err
		}
		for _, k := range keys {
			v := frozen[k]
			if err := w.add(segRec{key: k.key, value: k.value, gen: v.gen, ver: v.ver, del: v.del}); err != nil {
				w.abort()
				return nil, nil, err
			}
		}
		if err := w.finish(); err != nil {
			return nil, nil, err
		}
		seg, err := openSegment(filepath.Join(e.dir, name), name)
		if err != nil {
			os.Remove(filepath.Join(e.dir, name))
			return nil, nil, err
		}
		e.mu.Lock()
		e.segs = append(e.segs, seg)
		e.frozen = nil
		e.mu.Unlock()
	}
	if len(e.segs) > diskCompactThreshold {
		cleanup, err = e.compact()
		if err != nil {
			return nil, nil, err
		}
	}
	if err := syncDir(e.dir); err != nil {
		return nil, cleanup, err
	}
	e.mu.RLock()
	manifest = make([]string, 0, len(e.segs))
	for _, g := range e.segs {
		manifest = append(manifest, g.name)
	}
	e.mu.RUnlock()
	return manifest, cleanup, nil
}

// compact streams a merge of every segment into one new segment, dropping
// delete markers and shadowed records. The replaced files are closed and
// removed by the returned cleanup, which callers invoke once the manifest
// naming the merged segment is durable.
func (e *diskEngine) compact() (func(), error) {
	e.mu.RLock()
	old := append([]*segment(nil), e.segs...)
	e.mu.RUnlock()
	name := segmentFileName(e.nextSeq)
	e.nextSeq++
	w, err := newSegWriter(filepath.Join(e.dir, name))
	if err != nil {
		return nil, err
	}
	sources := make([]pairSource, 0, len(old))
	for i := len(old) - 1; i >= 0; i-- { // newest first: merge keeps the newest state
		it, err := old[i].iter("", "")
		if err != nil {
			w.abort()
			return nil, err
		}
		sources = append(sources, it)
	}
	mergeErr := mergeSources(sources, "", func(rec segRec) bool {
		if rec.del {
			return true // compacting the full set: markers shadow nothing older
		}
		err = w.add(rec)
		return err == nil
	})
	if mergeErr == nil {
		mergeErr = err
	}
	if mergeErr != nil {
		w.abort()
		return nil, mergeErr
	}
	if w.records == 0 {
		w.abort()
		e.mu.Lock()
		e.segs = nil
		e.mu.Unlock()
		return func() { removeSegments(old) }, nil
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	seg, err := openSegment(filepath.Join(e.dir, name), name)
	if err != nil {
		os.Remove(filepath.Join(e.dir, name))
		return nil, err
	}
	e.mu.Lock()
	e.segs = []*segment{seg}
	e.mu.Unlock()
	return func() { removeSegments(old) }, nil
}

// removeSegments closes and deletes replaced segment files (best effort —
// leftovers are cleaned at the next open).
func removeSegments(segs []*segment) {
	for _, g := range segs {
		path := g.f.Name()
		g.close()
		os.Remove(path)
	}
}

// segmentCount reports the number of on-disk segments (tests and stats).
func (e *diskEngine) segmentCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.segs)
}
