package replication

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"pgrid/internal/keyspace"

	"pgrid/internal/testutil"
)

func item(key string, val string) Item {
	return Item{Key: keyspace.MustFromString(key), Value: val}
}

func TestStoreAddAndLookup(t *testing.T) {
	s := NewStore()
	if !s.Add(item("0101", "doc1")) {
		t.Error("first add should succeed")
	}
	if s.Add(item("0101", "doc1")) {
		t.Error("duplicate add should be ignored")
	}
	if !s.Add(item("0101", "doc2")) {
		t.Error("same key different value should be stored")
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	got := s.Lookup(keyspace.MustFromString("0101"))
	if len(got) != 2 {
		t.Errorf("lookup = %v", got)
	}
	if len(s.Lookup(keyspace.MustFromString("1111"))) != 0 {
		t.Error("missing key should return nothing")
	}
}

func TestStoreKeysSortedAndDistinct(t *testing.T) {
	s := NewStore()
	s.AddAll([]Item{item("11", "a"), item("00", "b"), item("11", "c"), item("01", "d")})
	keys := s.Keys()
	if len(keys) != 3 {
		t.Fatalf("distinct keys = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Compare(keys[i]) >= 0 {
			t.Error("keys not sorted")
		}
	}
}

func TestStorePrefixAndRangeQueries(t *testing.T) {
	s := NewStore()
	s.AddAll([]Item{item("000", "a"), item("001", "b"), item("010", "c"), item("100", "d"), item("111", "e")})
	if got := s.ItemsWithPrefix("0"); len(got) != 3 {
		t.Errorf("prefix 0 items = %d", len(got))
	}
	if got := s.CountWithPrefix("1"); got != 2 {
		t.Errorf("prefix 1 count = %d", got)
	}
	r := keyspace.NewRange(keyspace.MustFromString("001"), keyspace.MustFromString("101"))
	got := s.ItemsInRange(r)
	if len(got) != 3 { // 001, 010, 100
		t.Errorf("range items = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key.Compare(got[i].Key) > 0 {
			t.Error("range result not sorted")
		}
	}
}

func TestRetainPrefix(t *testing.T) {
	s := NewStore()
	s.AddAll([]Item{item("00", "a"), item("01", "b"), item("10", "c"), item("11", "d")})
	removed := s.RetainPrefix("0")
	if len(removed) != 2 {
		t.Errorf("removed = %v", removed)
	}
	if s.Len() != 2 {
		t.Errorf("remaining = %d", s.Len())
	}
	for _, it := range s.Items() {
		if !it.Key.HasPrefix("0") {
			t.Error("retained item outside prefix")
		}
	}
}

func TestRemovePrefix(t *testing.T) {
	s := NewStore()
	s.AddAll([]Item{item("00", "a"), item("01", "b"), item("10", "c")})
	removed := s.RemovePrefix("0")
	if len(removed) != 2 {
		t.Errorf("removed = %v", removed)
	}
	if s.Len() != 1 || len(s.ItemsWithPrefix("0")) != 0 {
		t.Error("items under prefix should be gone")
	}
	if len(s.RemovePrefix("0")) != 0 {
		t.Error("second removal should return nothing")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewStore()
	s.Add(item("01", "a"))
	c := s.Clone()
	c.Add(item("10", "b"))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("clone not independent")
	}
}

func TestDiffAndReconcile(t *testing.T) {
	a := NewStore()
	b := NewStore()
	a.AddAll([]Item{item("00", "x"), item("01", "y")})
	b.AddAll([]Item{item("01", "y"), item("11", "z")})
	if d := a.Diff(b); len(d) != 1 || d[0].Value != "x" {
		t.Errorf("diff = %v", d)
	}
	toA, toB := Reconcile(a, b)
	if toA != 1 || toB != 1 {
		t.Errorf("transferred = %d,%d", toA, toB)
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Errorf("after reconcile: %d,%d", a.Len(), b.Len())
	}
	// Idempotent.
	toA, toB = Reconcile(a, b)
	if toA != 0 || toB != 0 {
		t.Error("second reconcile should transfer nothing")
	}
}

func TestReconcilePropertyUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := NewStore(), NewStore()
		union := map[string]bool{}
		for i := 0; i < 30; i++ {
			it := Item{Key: keyspace.MustFromFloat(r.Float64(), 8), Value: fmt.Sprintf("v%d", r.Intn(5))}
			union[it.Key.String()+"/"+it.Value] = true
			switch r.Intn(3) {
			case 0:
				a.Add(it)
			case 1:
				b.Add(it)
			default:
				a.Add(it)
				b.Add(it)
			}
		}
		Reconcile(a, b)
		return a.Len() == len(union) && b.Len() == len(union)
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 100, 507)); err != nil {
		t.Error(err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(Item{Key: keyspace.MustFromFloat(float64(i)/200, 16), Value: fmt.Sprintf("g%d", g)})
				s.Keys()
				s.CountWithPrefix("0")
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestOverlapCount(t *testing.T) {
	a := keyspace.Keys{keyspace.MustFromString("00"), keyspace.MustFromString("01"), keyspace.MustFromString("10")}
	b := keyspace.Keys{keyspace.MustFromString("01"), keyspace.MustFromString("10"), keyspace.MustFromString("11"), keyspace.MustFromString("01")}
	if got := OverlapCount(a, b); got != 2 {
		t.Errorf("overlap = %d", got)
	}
	if OverlapCount(nil, b) != 0 {
		t.Error("empty overlap should be 0")
	}
	// Keys with same bits but different lengths must not be conflated.
	c := keyspace.Keys{keyspace.MustFromString("0")}
	d := keyspace.Keys{keyspace.MustFromString("00")}
	if OverlapCount(c, d) != 0 {
		t.Error("prefix keys are distinct keys")
	}
}

func TestEstimateReplicas(t *testing.T) {
	// Identical key sets of size dmax: exactly nmin replicas (paper's
	// example).
	if got := EstimateReplicas(50, 50, 50, 5); math.Abs(got-5) > 1e-9 {
		t.Errorf("identical sets: %v, want 5", got)
	}
	// Half overlap means about twice as many replicas.
	if got := EstimateReplicas(50, 50, 25, 5); math.Abs(got-10) > 1e-9 {
		t.Errorf("half overlap: %v, want 10", got)
	}
	// Disjoint samples: conservative large estimate, larger than nmin.
	if got := EstimateReplicas(50, 50, 0, 5); got <= 5 {
		t.Errorf("disjoint sets should imply many replicas: %v", got)
	}
	// Degenerate inputs fall back to nmin.
	if got := EstimateReplicas(0, 10, 3, 5); got != 5 {
		t.Errorf("degenerate: %v", got)
	}
}

func TestEstimateReplicasMonotoneProperty(t *testing.T) {
	// More overlap always means fewer estimated replicas.
	f := func(rawN uint8, rawO1, rawO2 uint8) bool {
		n := int(rawN%50) + 10
		o1 := int(rawO1%uint8(n)) + 1
		o2 := int(rawO2%uint8(n)) + 1
		if o1 > o2 {
			o1, o2 = o2, o1
		}
		return EstimateReplicas(n, n, o2, 5) <= EstimateReplicas(n, n, o1, 5)
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 500, 508)); err != nil {
		t.Error(err)
	}
}

func TestDeleteTombstonesPair(t *testing.T) {
	s := NewStore()
	s.AddAll([]Item{item("0101", "doc1"), item("0101", "doc2")})
	if !s.Delete(keyspace.MustFromString("0101"), "doc1") {
		t.Error("delete of a live item should report a change")
	}
	if s.Len() != 1 {
		t.Errorf("len after delete = %d", s.Len())
	}
	if got := s.Lookup(keyspace.MustFromString("0101")); len(got) != 1 || got[0].Value != "doc2" {
		t.Errorf("lookup after delete = %v", got)
	}
	if !s.Deleted(keyspace.MustFromString("0101"), "doc1") {
		t.Error("deleted pair should be tombstoned")
	}
	// Replication-driven Add must not resurrect the pair.
	if s.Add(item("0101", "doc1")) {
		t.Error("add of a tombstoned pair should be refused")
	}
	if s.Len() != 1 {
		t.Errorf("tombstoned add changed the store: len = %d", s.Len())
	}
	// Deleting again only reports a change the first time.
	if s.Delete(keyspace.MustFromString("0101"), "doc1") {
		t.Error("second delete should be a no-op")
	}
	// A deliberate re-insert clears the tombstone and is stamped above it.
	stamped := s.Insert(item("0101", "doc1"))
	if !s.Live(keyspace.MustFromString("0101"), "doc1") {
		t.Error("insert should clear the tombstone and store the item")
	}
	if stamped.Gen == 0 {
		t.Error("re-insert should carry a generation above the tombstone's")
	}
	if s.Deleted(keyspace.MustFromString("0101"), "doc1") {
		t.Error("insert should have cleared the tombstone")
	}
	if s.Len() != 2 {
		t.Errorf("len after re-insert = %d", s.Len())
	}
}

// TestStaleTombstoneCannotKillReinsert is the regression test for the
// delete → re-insert → stale-replica-returns sequence: a replica that still
// holds the old tombstone must not destroy the newer quorum-acked write when
// its tombstones are merged, and the re-inserted copy must win at the stale
// replica too.
func TestStaleTombstoneCannotKillReinsert(t *testing.T) {
	fresh, stale := NewStore(), NewStore()
	fresh.Add(item("0011", "doc"))
	stale.Add(item("0011", "doc"))
	// The delete reaches both replicas...
	fresh.Delete(keyspace.MustFromString("0011"), "doc")
	stale.Delete(keyspace.MustFromString("0011"), "doc")
	// ...then the pair is deliberately re-inserted while `stale` is offline.
	reborn := fresh.Insert(item("0011", "doc"))
	if !fresh.Live(keyspace.MustFromString("0011"), "doc") {
		t.Fatal("re-insert did not apply at the fresh replica")
	}
	// The stale replica comes back: merging its old tombstone must not kill
	// the newer write...
	if n := fresh.AddTombstones(stale.Tombstones()); n != 0 {
		t.Errorf("stale tombstone applied over a newer write (%d changes)", n)
	}
	if !fresh.Live(keyspace.MustFromString("0011"), "doc") {
		t.Fatal("stale tombstone destroyed the re-inserted pair")
	}
	// ...and the re-inserted copy must win at the stale replica.
	if !stale.Add(reborn) {
		t.Error("stale replica refused the newer re-inserted copy")
	}
	Reconcile(fresh, stale)
	for name, s := range map[string]*Store{"fresh": fresh, "stale": stale} {
		if !s.Live(keyspace.MustFromString("0011"), "doc") {
			t.Errorf("replica %s lost the re-inserted pair after reconcile", name)
		}
		if s.Deleted(keyspace.MustFromString("0011"), "doc") {
			t.Errorf("replica %s kept the stale tombstone", name)
		}
	}
}

func TestDeleteOfAbsentPairStillTombstones(t *testing.T) {
	s := NewStore()
	if !s.Delete(keyspace.MustFromString("1100"), "ghost") {
		t.Error("first tombstone of an absent pair is still a change")
	}
	if s.Add(item("1100", "ghost")) {
		t.Error("tombstone must block a later replica push")
	}
	if s.Add(item("1100", "other")) != true {
		t.Error("tombstone must be value-specific")
	}
}

func TestTombstoneExchange(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.AddAll([]Item{item("00", "x"), item("01", "y")})
	b.AddAll([]Item{item("00", "x"), item("01", "y")})
	a.Delete(keyspace.MustFromString("00"), "x")
	if got := a.TombstonesWithPrefix("0"); len(got) != 1 || got[0].Value != "x" {
		t.Fatalf("tombstones = %v", got)
	}
	if n := b.AddTombstones(a.Tombstones()); n != 1 {
		t.Errorf("applied %d tombstones, want 1", n)
	}
	if b.Len() != 1 {
		t.Errorf("b should have dropped the deleted pair, len = %d", b.Len())
	}
	// Idempotent.
	if n := b.AddTombstones(a.Tombstones()); n != 0 {
		t.Errorf("re-applying tombstones applied %d, want 0", n)
	}
}

func TestReconcileDoesNotResurrectDeleted(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.AddAll([]Item{item("00", "x"), item("01", "y")})
	b.AddAll([]Item{item("00", "x"), item("01", "y"), item("11", "z")})
	// The delete reached only replica a; b still holds the live copy.
	a.Delete(keyspace.MustFromString("00"), "x")
	Reconcile(a, b)
	for name, s := range map[string]*Store{"a": a, "b": b} {
		if got := s.Lookup(keyspace.MustFromString("00")); len(got) != 0 {
			t.Errorf("replica %s resurrected deleted item: %v", name, got)
		}
		if s.Len() != 2 {
			t.Errorf("replica %s len = %d, want 2", name, s.Len())
		}
	}
	// Clones carry tombstones with them.
	c := b.Clone()
	if c.Add(item("00", "x")) {
		t.Error("clone lost the tombstone")
	}
}

// TestDeleteStampedHonorsFloor: the re-stamp retry passes the highest
// generation a refusing replica reported as the floor, and the new tombstone
// must land strictly above it even when the local tombstone is older.
func TestDeleteStampedHonorsFloor(t *testing.T) {
	s := NewStore()
	key := keyspace.MustFromString("0110")
	s.Delete(key, "v") // local tombstone at gen 1
	if it := s.DeleteStamped(key, "v", 10); it.Gen != 11 {
		t.Errorf("stamp = %d, want 11 (strictly above the floor)", it.Gen)
	}
	// A floor below the local state still stamps above the local state.
	if it := s.DeleteStamped(key, "v", 3); it.Gen != 12 {
		t.Errorf("stamp = %d, want 12 (above the local tombstone)", it.Gen)
	}
}

func TestItemsOrdering(t *testing.T) {
	s := NewStore()
	s.AddAll([]Item{item("10", "b"), item("10", "a"), item("01", "z")})
	items := s.Items()
	if items[0].Key.String() != "01" || items[1].Value != "a" || items[2].Value != "b" {
		t.Errorf("items ordering wrong: %v", items)
	}
}
