package replication

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pgrid/internal/keyspace"
)

// writeJSONSnapshotV1 writes a snapshot in the legacy version-1 JSON format
// exactly as the pre-binary code did: one marshalled snapshotState document
// under snap-<seq>.json.
func writeJSONSnapshotV1(t *testing.T, dir string, st *snapshotState) {
	t.Helper()
	st.Version = snapshotVersionJSON
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotNameJSON(st.Seq)), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverFromLegacyJSONSnapshot pins backward compatibility: a data
// directory whose newest snapshot is the legacy JSON format (written before
// the binary snapshot codec existed) must recover exactly, and the next
// checkpoint must replace it with a binary snapshot that recovers to the
// same state.
func TestRecoverFromLegacyJSONSnapshot(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UnixNano()
	st := &snapshotState{
		Seq:     3,
		Clock:   41,
		GCFloor: 7,
		Items: []snapItem{
			{K: "0010", V: "alpha", Gen: 2, Ver: 11},
			{K: "1011", V: "beta", Ver: 12},
		},
		Tombs: []snapTomb{
			{K: "0111", V: "gone", Gen: 5, Born: 9, At: now, Ver: 13},
		},
		Baselines: map[string]Baseline{
			"127.0.0.1:9999": {Mine: 17, Theirs: 23},
		},
		Meta: map[string]string{"overlay.path": "01"},
	}
	writeJSONSnapshotV1(t, dir, st)

	s, err := OpenStore(dir, PersistOptions{SyncAlways: true})
	if err != nil {
		t.Fatalf("open store over legacy JSON snapshot: %v", err)
	}
	verify := func(s *Store, phase string, wantClock uint64) {
		t.Helper()
		if got := s.Clock(); got != wantClock {
			t.Errorf("%s: clock = %d, want %d", phase, got, wantClock)
		}
		if got := s.GCFloor(); got != 7 {
			t.Errorf("%s: gc floor = %d, want 7", phase, got)
		}
		if got := s.Lookup(keyspace.MustFromString("0010")); len(got) != 1 || got[0].Value != "alpha" || got[0].Gen != 2 {
			t.Errorf("%s: item 0010 = %v", phase, got)
		}
		if got := s.Lookup(keyspace.MustFromString("1011")); len(got) != 1 || got[0].Value != "beta" {
			t.Errorf("%s: item 1011 = %v", phase, got)
		}
		if s.Live(keyspace.MustFromString("0111"), "gone") {
			t.Errorf("%s: tombstoned pair is live", phase)
		}
		if got := s.TombstoneCount(); got != 1 {
			t.Errorf("%s: tombstones = %d, want 1", phase, got)
		}
		bl := s.Baselines()
		if got := bl["127.0.0.1:9999"]; got != (Baseline{Mine: 17, Theirs: 23}) {
			t.Errorf("%s: baseline = %+v", phase, got)
		}
		if got := s.Meta("overlay.path"); got != "01" {
			t.Errorf("%s: meta path = %q", phase, got)
		}
	}
	verify(s, "legacy recovery", 41)

	// A mutation after recovery and a checkpoint must rewrite the state as
	// a binary snapshot covering it.
	s.Insert(Item{Key: keyspace.MustFromString("1100"), Value: "post-upgrade"})
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after legacy recovery: %v", err)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || snaps[0].json {
		t.Fatalf("newest snapshot after checkpoint should be binary, got %+v", snaps)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, PersistOptions{SyncAlways: true})
	if err != nil {
		t.Fatalf("reopen after binary checkpoint: %v", err)
	}
	defer s2.Close()
	verify(s2, "binary recovery", 42) // the post-upgrade insert advanced the clock
	if got := s2.Lookup(keyspace.MustFromString("1100")); len(got) != 1 || got[0].Value != "post-upgrade" {
		t.Errorf("binary recovery: post-upgrade item = %v", got)
	}
}

// TestBinarySnapshotCorruptionSkipped checks the recovery ladder: a binary
// snapshot with a flipped byte fails its CRC and recovery falls back to an
// older JSON snapshot instead of failing or loading garbage.
func TestBinarySnapshotCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	writeJSONSnapshotV1(t, dir, &snapshotState{
		Seq:   1,
		Clock: 5,
		Items: []snapItem{{K: "01", V: "old", Ver: 5}},
	})
	// Newer binary snapshot, corrupted.
	bin := &snapshotState{Seq: 2, Clock: 9, Items: []snapItem{{K: "01", V: "new", Ver: 9}}}
	if err := writeSnapshot(dir, bin); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("open with corrupt binary snapshot: %v", err)
	}
	defer s.Close()
	if got := s.Lookup(keyspace.MustFromString("01")); len(got) != 1 || got[0].Value != "old" {
		t.Errorf("fallback recovery = %v, want the older JSON state", got)
	}
}

// TestBinarySnapshotRoundTrip exercises the streamed codec directly over a
// state with every record kind present.
func TestBinarySnapshotRoundTrip(t *testing.T) {
	now := time.Now().UnixNano()
	st := &snapshotState{
		Seq:     9,
		Clock:   100,
		GCFloor: 50,
		Items:   []snapItem{{K: "", V: "rootval", Gen: 1, Ver: 2}, {K: "110011", V: "", Ver: 3}},
		Tombs:   []snapTomb{{K: "1", V: "t", Gen: 4, Born: 5, At: now, Ver: 6}, {K: "0", V: "u", At: -now}},
		Baselines: map[string]Baseline{
			"a": {Mine: 1, Theirs: 2},
			"b": {Mine: 3},
		},
		Meta: map[string]string{"k1": "v1", "k2": ""},
	}
	dir := t.TempDir()
	if err := writeSnapshot(dir, st); err != nil {
		t.Fatal(err)
	}
	got, ok, err := loadLatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Seq != 9 || got.Clock != 100 || got.GCFloor != 50 {
		t.Errorf("header = %+v", got)
	}
	if len(got.Items) != 2 || got.Items[0] != st.Items[0] || got.Items[1] != st.Items[1] {
		t.Errorf("items = %+v", got.Items)
	}
	if len(got.Tombs) != 2 || got.Tombs[0] != st.Tombs[0] || got.Tombs[1] != st.Tombs[1] {
		t.Errorf("tombs = %+v", got.Tombs)
	}
	if len(got.Baselines) != 2 || got.Baselines["a"] != st.Baselines["a"] || got.Baselines["b"] != st.Baselines["b"] {
		t.Errorf("baselines = %+v", got.Baselines)
	}
	if len(got.Meta) != 2 || got.Meta["k1"] != "v1" || got.Meta["k2"] != "" {
		t.Errorf("meta = %+v", got.Meta)
	}
}
