package replication

// This file implements the append-only write-ahead log beneath a persistent
// Store. Every logical mutation the store applies is first encoded as one
// CRC-framed record and appended here, so a crashed process can replay the
// exact mutation sequence on restart (see persist.go for the recovery
// protocol and snapshot.go for the compaction that bounds replay length).
//
// Frame format, little-endian:
//
//	uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// The payload's first byte is the operation tag (walOp); the rest is the
// operation's field encoding (uvarints and length-prefixed strings). A
// record is valid only when its full frame is present and the checksum
// matches, which is what makes a torn final record — the expected crash
// artifact of an append-only file — detectable: replay stops at the first
// invalid frame and the writer truncates the tail before appending again.
//
// Appends are fsync-batched: every record is written to the file (the OS
// page cache) before the append returns, but the file is fsynced at most
// once per SyncInterval (or on every append with SyncAlways). A killed
// process therefore loses nothing once an append returned; only a machine
// crash can lose the records inside the current fsync window.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"pgrid/internal/wire"
)

// walOp tags the operation a WAL record encodes.
type walOp byte

// WAL record operation tags. The numeric values are part of the on-disk
// format and must never be reused for a different operation.
const (
	// opAdd records a live pair upsert (Store.Add / Store.Insert) with its
	// final generation stamp.
	opAdd walOp = 1
	// opTomb records a tombstone upsert (Store.Delete / Store.AddTombstones)
	// with its final generation stamp.
	opTomb walOp = 2
	// opPrune records one tombstone-GC compaction: the pruned pairs plus
	// the resulting GC floor.
	opPrune walOp = 3
	// opRemovePrefix and opRetainPrefix record the partition handovers of a
	// split (Store.RemovePrefix / Store.RetainPrefix).
	opRemovePrefix walOp = 4
	opRetainPrefix walOp = 5
	// opReplace records a wholesale partition rebuild
	// (Store.ReplaceWithin).
	opReplace walOp = 6
	// opBaseline records a per-replica anti-entropy sync baseline.
	opBaseline walOp = 7
	// opMeta records one small key/value metadata pair (the overlay stores
	// its partition path here).
	opMeta walOp = 8
	// opMutSeen records one coordinated-mutation ID entering the dedup ring
	// (Store.MarkMutation), so exactly-once coordination survives restarts.
	opMutSeen walOp = 9
)

// walFrameHeader is the fixed per-record framing overhead.
const walFrameHeader = 8 // uint32 length + uint32 CRC

// maxWALRecord bounds a single record's payload; longer frames are treated
// as corruption during replay (a length word from a torn write can read as
// garbage).
const maxWALRecord = 64 << 20

// errWALCorrupt reports an invalid frame before the final record of the
// final segment — real corruption rather than a torn tail.
var errWALCorrupt = errors.New("replication: WAL corrupt before final record")

// wal is an append-only, CRC-framed, fsync-batched log file.
type wal struct {
	mu       sync.Mutex
	f        *os.File
	scratch  []byte // reusable frame buffer, so one append is one write
	size     int64  // bytes appended (including frames)
	records  int    // records appended since open
	dirty    bool   // written data not yet fsynced
	lastSync time.Time
	interval time.Duration // fsync at most this often; <=0 means every append
	now      func() time.Time
}

// openWAL opens (creating if needed) the segment file at path for
// appending at the given offset — the end of the last valid record, as
// previously established by scanWAL — truncating any torn tail beyond it.
func openWAL(path string, interval time.Duration, valid int64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{
		f:        f,
		size:     valid,
		interval: interval,
		now:      time.Now,
	}, nil
}

// append frames one record payload and writes it to the file in a single
// write call, fsyncing when the batching interval elapsed. Callers
// serialise appends through the owning store's lock, but the wal keeps its
// own mutex so Sync/Close are independently safe.
func (w *wal) append(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("replication: WAL record of %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.scratch = w.scratch[:0]
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, uint32(len(payload)))
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, crc32.ChecksumIEEE(payload))
	w.scratch = append(w.scratch, payload...)
	if _, err := w.f.Write(w.scratch); err != nil {
		return err
	}
	w.size += int64(walFrameHeader + len(payload))
	w.records++
	w.dirty = true
	if w.interval <= 0 || w.now().Sub(w.lastSync) >= w.interval {
		return w.syncLocked()
	}
	return nil
}

// syncLocked fsyncs pending writes (callers must hold w.mu).
func (w *wal) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.lastSync = w.now()
	return nil
}

// sync makes every appended record durable.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// close syncs and closes the segment file.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanWAL reads the segment at path, invoking apply for every valid record
// payload in order, and returns the byte offset of the end of the last
// valid record plus the number of valid records. A torn or corrupt frame
// ends the scan cleanly (the offset points just before it) — that is the
// expected crash artifact. A genuine read error aborts with that error
// instead: truncating at a transiently unreadable position would destroy
// committed records. apply may be nil to only measure.
func scanWAL(path string, apply func(payload []byte) error) (valid int64, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)
	var hdr [walFrameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, records, nil // clean end or torn header
			}
			return valid, records, fmt.Errorf("replication: read WAL header: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxWALRecord {
			return valid, records, nil // garbage length word: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, records, nil // torn payload
			}
			return valid, records, fmt.Errorf("replication: read WAL record: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return valid, records, nil // bit rot or torn rewrite
		}
		if apply != nil {
			if err := apply(payload); err != nil {
				return valid, records, err
			}
		}
		valid += int64(walFrameHeader) + int64(n)
		records++
	}
}

// --- record payload encoding -----------------------------------------------

// walEncoder builds a record payload using the shared compact wire encoding
// (internal/wire): uvarints for integers, length-prefixed strings. This is
// the same record codec the binary snapshot format and the TCP transport's
// message bodies use, and it is byte-identical to the WAL's original
// hand-rolled encoding, so segments written before the unification replay
// unchanged.
type walEncoder struct{ buf []byte }

func (e *walEncoder) op(op walOp)     { e.buf = append(e.buf, byte(op)) }
func (e *walEncoder) uint(v uint64)   { e.buf = wire.AppendUvarint(e.buf, v) }
func (e *walEncoder) string(s string) { e.buf = wire.AppendString(e.buf, s) }

// pair appends a (key bit string, value, gen) triple.
func (e *walEncoder) pair(ks, value string, gen uint64) {
	e.string(ks)
	e.string(value)
	e.uint(gen)
}

// walPair reads a (key bit string, value, gen) triple.
func walPair(d *wire.Decoder) (ks, value string, gen uint64) {
	ks = d.String()
	value = d.String()
	gen = d.Uvarint()
	return
}
