package replication

// This file implements the compacted snapshots that bound WAL replay: a
// snapshot is a complete, self-contained image of a store's durable state —
// live items, tombstones (with their age metadata), per-pair last-modified
// versions, the logical clock, the GC floor, the per-replica sync baselines
// and the small metadata map — taken at a WAL segment boundary. Recovery
// loads the newest valid snapshot and replays only the WAL segments that
// follow it (persist.go); once a snapshot is durably on disk, the segments
// it covers are deleted.
//
// Snapshots are written atomically (temp file + fsync + rename + directory
// fsync) and carry the sequence number of the first WAL segment *not*
// covered, so a crash at any point leaves either the previous snapshot with
// all its segments, or the new snapshot with the new segment — never a
// state that replays mutations twice or skips them.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// snapshotVersion is bumped when the snapshot schema changes incompatibly.
const snapshotVersion = 1

// snapItem is one live pair in a snapshot.
type snapItem struct {
	K   string `json:"k"` // key bit string
	V   string `json:"v"`
	Gen uint64 `json:"g,omitempty"`
	Ver uint64 `json:"m,omitempty"` // last-modified store clock
}

// snapTomb is one tombstoned pair in a snapshot.
type snapTomb struct {
	K    string `json:"k"`
	V    string `json:"v"`
	Gen  uint64 `json:"g,omitempty"`
	Born uint64 `json:"b,omitempty"` // store clock at recording
	At   int64  `json:"t,omitempty"` // wall clock at recording, unix nanos
	Ver  uint64 `json:"m,omitempty"`
}

// snapshotState is the serialised form of a store's durable state.
type snapshotState struct {
	Version   int                 `json:"version"`
	Seq       uint64              `json:"seq"` // first WAL segment not covered
	Clock     uint64              `json:"clock"`
	GCFloor   uint64              `json:"gc_floor,omitempty"`
	Items     []snapItem          `json:"items,omitempty"`
	Tombs     []snapTomb          `json:"tombstones,omitempty"`
	Baselines map[string]Baseline `json:"baselines,omitempty"`
	Meta      map[string]string   `json:"meta,omitempty"`
}

// snapshotName renders the file name of the snapshot covering everything
// before WAL segment seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016d.json", seq) }

// segmentName renders the file name of WAL segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSeq extracts the sequence number from a snapshot or segment file
// name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// writeSnapshot atomically persists the snapshot into dir.
func writeSnapshot(dir string, st *snapshotState) error {
	st.Version = snapshotVersion
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotName(st.Seq))); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// loadLatestSnapshot finds and decodes the newest readable snapshot in dir.
// It returns ok=false (and no error) when dir holds no usable snapshot; a
// snapshot that fails to decode is skipped in favour of an older one, so a
// crash mid-rename can never make recovery fail outright.
func loadLatestSnapshot(dir string) (*snapshotState, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".json"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, snapshotName(seq)))
		if err != nil {
			continue
		}
		var st snapshotState
		if err := json.Unmarshal(data, &st); err != nil || st.Version != snapshotVersion {
			continue
		}
		st.Seq = seq
		return &st, true, nil
	}
	return nil, false, nil
}

// listSegments returns the WAL segment sequence numbers present in dir, in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// removeBelow deletes snapshots and WAL segments made obsolete by a durable
// snapshot at seq (segments < seq, snapshots < seq). Best effort: leftover
// files only cost disk space, never correctness.
func removeBelow(dir string, seq uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if s, ok := parseSeq(e.Name(), "wal-", ".log"); ok && s < seq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if s, ok := parseSeq(e.Name(), "snap-", ".json"); ok && s < seq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives power loss. Filesystems that do not support directory fsync
// (EINVAL/ENOTSUP) are tolerated — the rename itself is still atomic —
// but genuine I/O failures are reported, so a checkpoint cannot delete
// the WAL segments a non-durable snapshot was meant to replace.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}
