package replication

// This file implements the compacted snapshots that bound WAL replay: a
// snapshot is a complete, self-contained image of a store's durable state —
// live items, tombstones (with their age metadata), per-pair last-modified
// versions, the logical clock, the GC floor, the per-replica sync baselines
// and the small metadata map — taken at a WAL segment boundary. Recovery
// loads the newest valid snapshot and replays only the WAL segments that
// follow it (persist.go); once a snapshot is durably on disk, the segments
// it covers are deleted.
//
// Two snapshot formats exist:
//
//   - Version 2 (snap-<seq>.bin, written today): a CRC-trailed stream of
//     wire-codec records — one small record per pair, encoded and written
//     through a buffered writer, so writing a checkpoint never materialises
//     the store as one contiguous image the way json.Marshal did. The byte
//     layout is: "PGSN", uvarint version, uvarint clock, uvarint GC floor,
//     tagged records (item/tombstone/baseline/meta), an end tag, and a
//     little-endian CRC-32 (IEEE) over everything before it.
//   - Version 1 (snap-<seq>.json, legacy): one JSON document. Still decoded
//     on recovery, so data directories written before the binary format
//     keep working; the next checkpoint replaces them with version 2.
//
// Snapshots are written atomically (temp file + fsync + rename + directory
// fsync) and carry the sequence number of the first WAL segment *not*
// covered, so a crash at any point leaves either the previous snapshot with
// all its segments, or the new snapshot with the new segment — never a
// state that replays mutations twice or skips them.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"pgrid/internal/wire"
)

// Snapshot format versions.
const (
	// snapshotVersionJSON is the legacy whole-document JSON format.
	snapshotVersionJSON = 1
	// snapshotVersion is the current streamed binary format.
	snapshotVersion = 2
)

// snapMagic opens every binary snapshot file.
const snapMagic = "PGSN"

// Binary snapshot record tags. The numeric values are part of the on-disk
// format and must never be reused for a different record kind.
const (
	snapTagEnd      byte = 0
	snapTagItem     byte = 1
	snapTagTomb     byte = 2
	snapTagBaseline byte = 3
	snapTagMeta     byte = 4
	// snapTagEngine marks an external-pairs snapshot (disk engine): the live
	// pairs are not inlined as snapTagItem records but live in the segment
	// files the record's manifest names. Carries the live pair count.
	snapTagEngine byte = 5
	// snapTagDigest is one dense digest-tree cell. Only written in external
	// mode, where recovery cannot rebuild the tree from inlined items; the
	// dense tree is bounded (prefixes up to digestDenseDepth), so this keeps
	// recovery free of any pair scan.
	snapTagDigest byte = 6
	// snapTagMutation is the mutation dedup ring (oldest ID first).
	snapTagMutation byte = 7
)

// snapItem is one live pair in a snapshot.
type snapItem struct {
	K   string `json:"k"` // key bit string
	V   string `json:"v"`
	Gen uint64 `json:"g,omitempty"`
	Ver uint64 `json:"m,omitempty"` // last-modified store clock
}

// snapTomb is one tombstoned pair in a snapshot.
type snapTomb struct {
	K    string `json:"k"`
	V    string `json:"v"`
	Gen  uint64 `json:"g,omitempty"`
	Born uint64 `json:"b,omitempty"` // store clock at recording
	At   int64  `json:"t,omitempty"` // wall clock at recording, unix nanos
	Ver  uint64 `json:"m,omitempty"`
}

// snapshotState is the in-memory form of a store's durable state, captured
// at a WAL segment boundary and streamed to disk record by record. The
// JSON tags are the legacy version-1 document schema.
type snapshotState struct {
	Version   int                 `json:"version"`
	Seq       uint64              `json:"seq"` // first WAL segment not covered
	Clock     uint64              `json:"clock"`
	GCFloor   uint64              `json:"gc_floor,omitempty"`
	Items     []snapItem          `json:"items,omitempty"`
	Tombs     []snapTomb          `json:"tombstones,omitempty"`
	Baselines map[string]Baseline `json:"baselines,omitempty"`
	Meta      map[string]string   `json:"meta,omitempty"`

	// External-pairs mode (disk engine): the live pairs are in the segment
	// files named by Manifest rather than inlined in Items, Count is the
	// live pair count at the boundary, and Digests carries the dense digest
	// tree so recovery does not scan the pairs. Binary format only.
	External bool         `json:"-"`
	Count    int          `json:"-"`
	Manifest []string     `json:"-"`
	Digests  []snapDigest `json:"-"`
	// MutLog is the mutation dedup ring, oldest first (both engines).
	MutLog []uint64 `json:"-"`
}

// snapDigest is one dense digest-tree cell carried by an external-pairs
// snapshot.
type snapDigest struct {
	P string
	H uint64
	N int
}

// snapshotName renders the file name of the binary snapshot covering
// everything before WAL segment seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016d.bin", seq) }

// snapshotNameJSON renders the legacy JSON snapshot name for seq.
func snapshotNameJSON(seq uint64) string { return fmt.Sprintf("snap-%016d.json", seq) }

// segmentName renders the file name of WAL segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSeq extracts the sequence number from a snapshot or segment file
// name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// crcWriter folds everything written through it into a running CRC-32.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// encodeSnapshotTo streams the snapshot's records through a buffered writer
// in the binary format. Each record is encoded into a small reused scratch
// buffer, so the memory high-water mark of writing a checkpoint is one
// record plus the writer's buffer — not an image of the store.
func encodeSnapshotTo(w io.Writer, st *snapshotState) error {
	bw := bufio.NewWriterSize(w, 256<<10)
	cw := &crcWriter{w: bw}
	var scratch []byte
	emit := func(b []byte) error {
		_, err := cw.Write(b)
		return err
	}
	scratch = append(scratch[:0], snapMagic...)
	scratch = wire.AppendUvarint(scratch, snapshotVersion)
	scratch = wire.AppendUvarint(scratch, st.Clock)
	scratch = wire.AppendUvarint(scratch, st.GCFloor)
	if err := emit(scratch); err != nil {
		return err
	}
	for _, it := range st.Items {
		scratch = append(scratch[:0], snapTagItem)
		scratch = wire.AppendString(scratch, it.K)
		scratch = wire.AppendString(scratch, it.V)
		scratch = wire.AppendUvarint(scratch, it.Gen)
		scratch = wire.AppendUvarint(scratch, it.Ver)
		if err := emit(scratch); err != nil {
			return err
		}
	}
	for _, tb := range st.Tombs {
		scratch = append(scratch[:0], snapTagTomb)
		scratch = wire.AppendString(scratch, tb.K)
		scratch = wire.AppendString(scratch, tb.V)
		scratch = wire.AppendUvarint(scratch, tb.Gen)
		scratch = wire.AppendUvarint(scratch, tb.Born)
		scratch = wire.AppendVarint(scratch, tb.At)
		scratch = wire.AppendUvarint(scratch, tb.Ver)
		if err := emit(scratch); err != nil {
			return err
		}
	}
	for addr, b := range st.Baselines {
		scratch = append(scratch[:0], snapTagBaseline)
		scratch = wire.AppendString(scratch, addr)
		scratch = wire.AppendUvarint(scratch, b.Mine)
		scratch = wire.AppendUvarint(scratch, b.Theirs)
		if err := emit(scratch); err != nil {
			return err
		}
	}
	for k, v := range st.Meta {
		scratch = append(scratch[:0], snapTagMeta)
		scratch = wire.AppendString(scratch, k)
		scratch = wire.AppendString(scratch, v)
		if err := emit(scratch); err != nil {
			return err
		}
	}
	if st.External {
		scratch = append(scratch[:0], snapTagEngine)
		scratch = wire.AppendUvarint(scratch, uint64(st.Count))
		scratch = wire.AppendUvarint(scratch, uint64(len(st.Manifest)))
		for _, name := range st.Manifest {
			scratch = wire.AppendString(scratch, name)
		}
		if err := emit(scratch); err != nil {
			return err
		}
		for _, dc := range st.Digests {
			scratch = append(scratch[:0], snapTagDigest)
			scratch = wire.AppendString(scratch, dc.P)
			scratch = wire.AppendFixed64(scratch, dc.H)
			scratch = wire.AppendUvarint(scratch, uint64(dc.N))
			if err := emit(scratch); err != nil {
				return err
			}
		}
	}
	if len(st.MutLog) > 0 {
		scratch = append(scratch[:0], snapTagMutation)
		scratch = wire.AppendUvarint(scratch, uint64(len(st.MutLog)))
		for _, id := range st.MutLog {
			scratch = wire.AppendUvarint(scratch, id)
		}
		if err := emit(scratch); err != nil {
			return err
		}
	}
	if err := emit([]byte{snapTagEnd}); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// errSnapshotCorrupt reports an unreadable snapshot; recovery skips it in
// favour of an older one.
var errSnapshotCorrupt = errors.New("replication: snapshot corrupt")

// decodeBinarySnapshot parses a version-2 snapshot file.
func decodeBinarySnapshot(data []byte) (*snapshotState, error) {
	if len(data) < len(snapMagic)+5 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, errSnapshotCorrupt
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, errSnapshotCorrupt
	}
	d := wire.NewDecoder(body[len(snapMagic):])
	if v := d.Uvarint(); d.Err() != nil || v != snapshotVersion {
		return nil, errSnapshotCorrupt
	}
	st := &snapshotState{Version: snapshotVersion}
	st.Clock = d.Uvarint()
	st.GCFloor = d.Uvarint()
	for {
		if d.Err() != nil {
			return nil, errSnapshotCorrupt
		}
		tag := d.Byte()
		if d.Err() != nil {
			return nil, errSnapshotCorrupt
		}
		switch tag {
		case snapTagEnd:
			if err := d.Finish(); err != nil {
				return nil, errSnapshotCorrupt
			}
			return st, nil
		case snapTagItem:
			var it snapItem
			it.K = d.String()
			it.V = d.String()
			it.Gen = d.Uvarint()
			it.Ver = d.Uvarint()
			st.Items = append(st.Items, it)
		case snapTagTomb:
			var tb snapTomb
			tb.K = d.String()
			tb.V = d.String()
			tb.Gen = d.Uvarint()
			tb.Born = d.Uvarint()
			tb.At = d.Varint()
			tb.Ver = d.Uvarint()
			st.Tombs = append(st.Tombs, tb)
		case snapTagBaseline:
			addr := d.String()
			b := Baseline{Mine: d.Uvarint(), Theirs: d.Uvarint()}
			if d.Err() == nil {
				if st.Baselines == nil {
					st.Baselines = make(map[string]Baseline)
				}
				st.Baselines[addr] = b
			}
		case snapTagMeta:
			k := d.String()
			v := d.String()
			if d.Err() == nil {
				if st.Meta == nil {
					st.Meta = make(map[string]string)
				}
				st.Meta[k] = v
			}
		case snapTagEngine:
			st.Count = int(d.Uvarint())
			n := d.Uvarint()
			if d.Err() != nil || n > uint64(wire.MaxLen) {
				return nil, errSnapshotCorrupt
			}
			for i := uint64(0); i < n; i++ {
				st.Manifest = append(st.Manifest, d.String())
			}
			st.External = true
		case snapTagDigest:
			var dc snapDigest
			dc.P = d.String()
			dc.H = d.Fixed64()
			dc.N = int(d.Uvarint())
			st.Digests = append(st.Digests, dc)
		case snapTagMutation:
			n := d.Uvarint()
			if d.Err() != nil || n > uint64(wire.MaxLen) {
				return nil, errSnapshotCorrupt
			}
			for i := uint64(0); i < n; i++ {
				st.MutLog = append(st.MutLog, d.Uvarint())
			}
		default:
			return nil, errSnapshotCorrupt
		}
	}
}

// writeSnapshot atomically persists the snapshot into dir in the binary
// format.
func writeSnapshot(dir string, st *snapshotState) error {
	st.Version = snapshotVersion
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := encodeSnapshotTo(tmp, st); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotName(st.Seq))); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// snapshotFile is one snapshot found on disk.
type snapshotFile struct {
	seq  uint64
	json bool
}

// listSnapshots returns the snapshots in dir, newest first; a binary
// snapshot sorts before a JSON one of the same sequence.
func listSnapshots(dir string) ([]snapshotFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapshotFile
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".bin"); ok {
			snaps = append(snaps, snapshotFile{seq: seq})
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".json"); ok {
			snaps = append(snaps, snapshotFile{seq: seq, json: true})
		}
	}
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].seq != snaps[j].seq {
			return snaps[i].seq > snaps[j].seq
		}
		return !snaps[i].json && snaps[j].json
	})
	return snaps, nil
}

// loadLatestSnapshot finds and decodes the newest readable snapshot in dir,
// binary or legacy JSON. It returns ok=false (and no error) when dir holds
// no usable snapshot; a snapshot that fails to decode is skipped in favour
// of an older one, so a crash mid-rename can never make recovery fail
// outright.
func loadLatestSnapshot(dir string) (*snapshotState, bool, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, false, err
	}
	for _, sf := range snaps {
		name := snapshotName(sf.seq)
		if sf.json {
			name = snapshotNameJSON(sf.seq)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var st *snapshotState
		if sf.json {
			var js snapshotState
			if err := json.Unmarshal(data, &js); err != nil || js.Version != snapshotVersionJSON {
				continue
			}
			st = &js
		} else {
			st, err = decodeBinarySnapshot(data)
			if err != nil {
				continue
			}
		}
		st.Seq = sf.seq
		return st, true, nil
	}
	return nil, false, nil
}

// listSegments returns the WAL segment sequence numbers present in dir, in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// removeBelow deletes snapshots and WAL segments made obsolete by a durable
// snapshot at seq (segments < seq, snapshots < seq, both formats). Best
// effort: leftover files only cost disk space, never correctness.
func removeBelow(dir string, seq uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if s, ok := parseSeq(e.Name(), "wal-", ".log"); ok && s < seq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if s, ok := parseSeq(e.Name(), "snap-", ".bin"); ok && s < seq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if s, ok := parseSeq(e.Name(), "snap-", ".json"); ok && s <= seq {
			// A JSON snapshot at the same seq was superseded by the binary
			// rewrite of the same boundary.
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives power loss. Filesystems that do not support directory fsync
// (EINVAL/ENOTSUP) are tolerated — the rename itself is still atomic —
// but genuine I/O failures are reported, so a checkpoint cannot delete
// the WAL segments a non-durable snapshot was meant to replace.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}
