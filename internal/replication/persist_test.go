package replication

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pgrid/internal/keyspace"
)

// testKey returns a short deterministic key from a small pool so pairs
// collide across operations.
func testKey(i int) keyspace.Key {
	return keyspace.MustFromFloat(float64(i%16)/16, 8)
}

// assertSameState fails unless the two stores agree on every piece of
// observable durable state.
func assertSameState(t *testing.T, got, want *Store) {
	t.Helper()
	if g, w := got.Clock(), want.Clock(); g != w {
		t.Errorf("clock: got %d want %d", g, w)
	}
	if g, w := got.GCFloor(), want.GCFloor(); g != w {
		t.Errorf("gc floor: got %d want %d", g, w)
	}
	if g, w := got.Len(), want.Len(); g != w {
		t.Errorf("len: got %d want %d", g, w)
	}
	if g, w := got.TombstoneCount(), want.TombstoneCount(); g != w {
		t.Errorf("tombstones: got %d want %d", g, w)
	}
	if g, w := got.Items(), want.Items(); !reflect.DeepEqual(g, w) {
		t.Errorf("items: got %v want %v", g, w)
	}
	if g, w := got.Tombstones(), want.Tombstones(); !reflect.DeepEqual(g, w) {
		t.Errorf("tombstone set: got %v want %v", g, w)
	}
	gh, gn := got.Digest(keyspace.Root)
	wh, wn := want.Digest(keyspace.Root)
	if gh != wh || gn != wn {
		t.Errorf("root digest: got (%x,%d) want (%x,%d)", gh, gn, wh, wn)
	}
	// The per-pair version index must survive too: identical deltas since
	// an arbitrary common point.
	mid := want.Clock() / 2
	gi, gt, gok := got.DeltaSince(mid)
	wi, wt, wok := want.DeltaSince(mid)
	if gok != wok || !reflect.DeepEqual(gi, wi) || !reflect.DeepEqual(gt, wt) {
		t.Errorf("delta since %d diverged: got (%v,%v,%v) want (%v,%v,%v)", mid, gi, gt, gok, wi, wt, wok)
	}
}

// reopen closes the store and recovers it from its directory.
func reopen(t *testing.T, s *Store, dir string, opts PersistOptions) *Store {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return r
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shadow := NewStore()

	for i := 0; i < 20; i++ {
		it := Item{Key: testKey(i), Value: "v"}
		s.Insert(it)
		shadow.Insert(it)
	}
	s.Delete(testKey(3), "v")
	shadow.Delete(testKey(3), "v")
	s.AddTombstones([]Item{{Key: testKey(5), Value: "v", Gen: 9}})
	shadow.AddTombstones([]Item{{Key: testKey(5), Value: "v", Gen: 9}})
	s.RecordBaseline("peer-1", Baseline{Mine: 7, Theirs: 12})
	s.SetMeta("path", "0101")

	r := reopen(t, s, dir, PersistOptions{})
	defer r.Close()
	assertSameState(t, r, shadow)
	if b := r.Baselines()["peer-1"]; b != (Baseline{Mine: 7, Theirs: 12}) {
		t.Errorf("baseline not recovered: %+v", b)
	}
	if p := r.Meta("path"); p != "0101" {
		t.Errorf("meta not recovered: %q", p)
	}
}

func TestPersistRecoveredStoreKeepsLogging(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shadow := NewStore()
	s.Insert(Item{Key: testKey(1), Value: "a"})
	shadow.Insert(Item{Key: testKey(1), Value: "a"})

	s = reopen(t, s, dir, PersistOptions{})
	s.Insert(Item{Key: testKey(2), Value: "b"})
	shadow.Insert(Item{Key: testKey(2), Value: "b"})

	r := reopen(t, s, dir, PersistOptions{})
	defer r.Close()
	assertSameState(t, r, shadow)
}

func TestPersistTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{SyncAlways: true}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	shadow := NewStore()
	for i := 0; i < 8; i++ {
		s.Insert(Item{Key: testKey(i), Value: "v"})
		if i < 7 {
			shadow.Insert(Item{Key: testKey(i), Value: "v"})
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record (the 8th insert): chop a few bytes off the
	// segment tail, as an interrupted append would.
	seg := filepath.Join(dir, segmentName(0))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	assertSameState(t, r, shadow)

	// The writer must have truncated the torn tail: new appends recover.
	r.Insert(Item{Key: testKey(7), Value: "v2"})
	shadow.Insert(Item{Key: testKey(7), Value: "v2"})
	r2 := reopen(t, r, dir, opts)
	defer r2.Close()
	assertSameState(t, r2, shadow)
}

func TestPersistCorruptFinalRecordCRC(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{SyncAlways: true}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	shadow := NewStore()
	for i := 0; i < 4; i++ {
		s.Insert(Item{Key: testKey(i), Value: "v"})
		if i < 3 {
			shadow.Insert(Item{Key: testKey(i), Value: "v"})
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the final record's payload.
	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("recovery with corrupt CRC: %v", err)
	}
	defer r.Close()
	assertSameState(t, r, shadow)
}

func TestPersistCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{SnapshotThreshold: 10}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	shadow := NewStore()
	for i := 0; i < 25; i++ {
		it := Item{Key: testKey(i), Value: "v"}
		s.Insert(it)
		shadow.Insert(it)
	}
	if s.WALRecords() < 10 {
		t.Fatalf("expected >=10 WAL records, got %d", s.WALRecords())
	}
	did, err := s.CheckpointIfNeeded()
	if err != nil || !did {
		t.Fatalf("checkpoint: did=%v err=%v", did, err)
	}
	if n := s.WALRecords(); n != 0 {
		t.Errorf("WAL not truncated: %d records", n)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 1 {
		t.Errorf("expected only segment 1 after checkpoint, got %v", segs)
	}
	// A second checkpoint cycle with fresh writes must also recover.
	s.Delete(testKey(2), "v")
	shadow.Delete(testKey(2), "v")
	r := reopen(t, s, dir, opts)
	defer r.Close()
	assertSameState(t, r, shadow)
}

func TestPersistGCStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGCPolicy(GCPolicy{MinVersions: 2})
	s.Insert(Item{Key: testKey(1), Value: "doomed"})
	s.Delete(testKey(1), "doomed")
	for i := 0; i < 4; i++ {
		s.Insert(Item{Key: testKey(2 + i), Value: "filler"})
	}
	if n := s.CompactTombstones(); n != 1 {
		t.Fatalf("expected 1 pruned tombstone, got %d", n)
	}
	floor := s.GCFloor()
	if floor == 0 {
		t.Fatal("GC floor not advanced")
	}

	r := reopen(t, s, dir, opts)
	defer r.Close()
	if got := r.GCFloor(); got != floor {
		t.Errorf("GC floor not recovered: got %d want %d", got, floor)
	}
	if r.TombstoneCount() != 0 {
		t.Errorf("pruned tombstone resurrected: %v", r.Tombstones())
	}
	// Deltas from before the floor must stay incomparable after restart —
	// the protocol-level no-resurrect guarantee depends on it.
	if _, _, ok := r.DeltaSince(floor - 1); ok {
		t.Error("delta from before the recovered GC floor reported comparable")
	}
}

// TestPersistEquivalenceRandomOps drives an identical random operation
// sequence against a persistent store (with random checkpoints and random
// crash-reopens) and an in-memory shadow, and requires identical observable
// state at every reopen. This is the snapshot+WAL-replay-equals-live-store
// property.
func TestPersistEquivalenceRandomOps(t *testing.T) {
	const seed = 20260726
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)

	dir := t.TempDir()
	opts := PersistOptions{SyncAlways: true, SnapshotThreshold: 64}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()
	shadow := NewStore()
	s.SetGCPolicy(GCPolicy{MinVersions: 8})
	shadow.SetGCPolicy(GCPolicy{MinVersions: 8})

	values := []string{"a", "b", "c"}
	paths := []keyspace.Path{"0", "1", "01", "10"}
	for step := 0; step < 600; step++ {
		k := testKey(rng.Intn(16))
		v := values[rng.Intn(len(values))]
		switch op := rng.Intn(20); {
		case op < 8:
			it := Item{Key: k, Value: v}
			s.Insert(it)
			shadow.Insert(it)
		case op < 11:
			it := Item{Key: k, Value: v, Gen: uint64(rng.Intn(5))}
			s.Add(it)
			shadow.Add(it)
		case op < 14:
			s.Delete(k, v)
			shadow.Delete(k, v)
		case op < 16:
			it := Item{Key: k, Value: v, Gen: uint64(rng.Intn(8))}
			s.AddTombstones([]Item{it})
			shadow.AddTombstones([]Item{it})
		case op < 17:
			s.CompactTombstones()
			shadow.CompactTombstones()
		case op < 18:
			p := paths[rng.Intn(len(paths))]
			s.RemovePrefix(p)
			shadow.RemovePrefix(p)
		case op < 19:
			p := paths[rng.Intn(len(paths))]
			items := []Item{{Key: k, Value: v, Gen: uint64(rng.Intn(4))}}
			tombs := []Item{{Key: testKey(rng.Intn(16)), Value: v, Gen: uint64(rng.Intn(6))}}
			s.ReplaceWithin(p, items, tombs)
			shadow.ReplaceWithin(p, items, tombs)
		default:
			s.RecordBaseline("replica", Baseline{Mine: uint64(step), Theirs: uint64(step * 2)})
		}

		if rng.Intn(40) == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		}
		if rng.Intn(50) == 0 {
			// Crash: abandon the open store without Close (SyncAlways has
			// made every record durable) and recover from disk.
			r, err := OpenStore(dir, opts)
			if err != nil {
				t.Fatalf("step %d: crash recovery: %v", step, err)
			}
			r.SetGCPolicy(GCPolicy{MinVersions: 8})
			s.Close()
			s = r
			assertSameState(t, s, shadow)
		}
	}
	r := reopen(t, s, dir, opts)
	s = r
	assertSameState(t, r, shadow)
}

func TestPersistWALSyncBatching(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, PersistOptions{SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Insert(Item{Key: testKey(i), Value: "v"})
	}
	// Nothing forced a sync yet; an explicit Sync must succeed and make the
	// records durable for a fresh reader.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	valid, records, err := scanWAL(filepath.Join(dir, segmentName(0)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if records != 100 || valid == 0 {
		t.Errorf("expected 100 durable records, got %d (%d bytes)", records, valid)
	}
}

func TestPersistStickyErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, PersistOptions{SyncAlways: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PersistenceErr(); err != nil {
		t.Fatalf("healthy store reports persistence error: %v", err)
	}
	// Break the WAL underneath the store (as a disk error would) and keep
	// mutating: the store must keep serving but report the sticky failure.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Insert(Item{Key: testKey(1), Value: "after-failure"})
	if !s.Live(testKey(1), "after-failure") {
		t.Error("store stopped serving after persistence failure")
	}
	if err := s.PersistenceErr(); err == nil {
		t.Error("append against a broken WAL left PersistenceErr nil")
	}
	if err := s.Sync(); err == nil {
		t.Error("Sync did not resurface the sticky persistence failure")
	}
}
