package replication

// Engine conformance suite: every storage engine must satisfy the same
// observable contract, both at the raw Engine level (ordering, isNew
// semantics, early-stop scans) and through a Store (generation ordering,
// delete-wins-ties, GC floor, digest equivalence, crash recovery). The
// random-ops equivalence tests pit a disk-engine store against a mem-engine
// shadow and require identical observable state, so any divergence between
// the engines' merge/scan logic surfaces as a concrete failing step.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pgrid/internal/keyspace"
)

// conformanceEngines returns a constructor per engine kind. Disk engines are
// rooted in a per-test temp dir and closed by the test cleanup.
func conformanceEngines() map[string]func(t *testing.T) Engine {
	return map[string]func(t *testing.T) Engine{
		EngineMem: func(t *testing.T) Engine { return newMemEngine() },
		EngineDisk: func(t *testing.T) Engine {
			eng, err := openDiskEngine(t.TempDir(), nil, 0)
			if err != nil {
				t.Fatalf("open disk engine: %v", err)
			}
			t.Cleanup(func() { eng.Close() })
			return eng
		},
	}
}

func TestEngineConformanceBasic(t *testing.T) {
	for kind, mk := range conformanceEngines() {
		t.Run(kind, func(t *testing.T) {
			eng := mk(t)
			if _, ok := eng.Get("01", "a"); ok {
				t.Error("empty engine should miss")
			}
			eng.Put(PairRecord{Key: "01", Value: "a", Gen: 1, Ver: 10}, true)
			eng.Put(PairRecord{Key: "01", Value: "b", Gen: 0, Ver: 11}, true)
			eng.Put(PairRecord{Key: "10", Value: "c", Gen: 2, Ver: 12}, true)
			if eng.Len() != 3 {
				t.Errorf("len = %d, want 3", eng.Len())
			}
			rec, ok := eng.Get("01", "a")
			if !ok || rec.Gen != 1 || rec.Ver != 10 {
				t.Errorf("get = %+v ok=%v", rec, ok)
			}
			// Overwrite with isNew=false must not grow the count.
			eng.Put(PairRecord{Key: "01", Value: "a", Gen: 5, Ver: 20}, false)
			if eng.Len() != 3 {
				t.Errorf("len after overwrite = %d, want 3", eng.Len())
			}
			if rec, _ := eng.Get("01", "a"); rec.Gen != 5 || rec.Ver != 20 {
				t.Errorf("overwritten rec = %+v", rec)
			}
			removed, ok := eng.Delete("01", "a")
			if !ok || removed.Gen != 5 {
				t.Errorf("delete = %+v ok=%v", removed, ok)
			}
			if _, ok := eng.Get("01", "a"); ok {
				t.Error("deleted pair should miss")
			}
			if _, ok := eng.Delete("01", "a"); ok {
				t.Error("double delete should miss")
			}
			if eng.Len() != 2 {
				t.Errorf("len after delete = %d, want 2", eng.Len())
			}
		})
	}
}

func TestEngineConformanceScanOrder(t *testing.T) {
	for kind, mk := range conformanceEngines() {
		t.Run(kind, func(t *testing.T) {
			eng := mk(t)
			rng := rand.New(rand.NewSource(7))
			type pair struct{ k, v string }
			var pairs []pair
			seen := map[pair]bool{}
			for i := 0; i < 200; i++ {
				p := pair{
					k: fmt.Sprintf("%06b", rng.Intn(64))[:1+rng.Intn(6)],
					v: fmt.Sprintf("v%d", rng.Intn(8)),
				}
				if seen[p] {
					continue
				}
				seen[p] = true
				pairs = append(pairs, p)
				eng.Put(PairRecord{Key: p.k, Value: p.v, Ver: uint64(i)}, true)
			}
			var got []PairRecord
			eng.ScanPrefix("", func(r PairRecord) bool {
				got = append(got, r)
				return true
			})
			if len(got) != len(pairs) {
				t.Fatalf("scan yielded %d records, want %d", len(got), len(pairs))
			}
			for i := 1; i < len(got); i++ {
				if !pairLess(got[i-1].Key, got[i-1].Value, got[i].Key, got[i].Value) {
					t.Fatalf("scan out of order at %d: (%q,%q) !< (%q,%q)",
						i, got[i-1].Key, got[i-1].Value, got[i].Key, got[i].Value)
				}
			}
			// Prefix restriction and early stop.
			var under []PairRecord
			eng.ScanPrefix("01", func(r PairRecord) bool {
				under = append(under, r)
				return true
			})
			want := 0
			for _, p := range pairs {
				if hasPrefix(p.k, "01") {
					want++
				}
			}
			if len(under) != want {
				t.Errorf("prefix scan yielded %d, want %d", len(under), want)
			}
			for _, r := range under {
				if !hasPrefix(r.Key, "01") {
					t.Errorf("prefix scan leaked key %q", r.Key)
				}
			}
			steps := 0
			eng.ScanPrefix("", func(PairRecord) bool {
				steps++
				return steps < 5
			})
			if steps != 5 {
				t.Errorf("early stop took %d steps, want 5", steps)
			}
			// ScanKey yields exactly the one key's records, no extensions.
			eng.Put(PairRecord{Key: "0110", Value: "x"}, true)
			eng.Put(PairRecord{Key: "01101", Value: "y"}, true)
			var exact []PairRecord
			eng.ScanKey("0110", func(r PairRecord) bool {
				exact = append(exact, r)
				return true
			})
			for _, r := range exact {
				if r.Key != "0110" {
					t.Errorf("ScanKey leaked key %q", r.Key)
				}
			}
		})
	}
}

// TestEngineDiskSegmentsMergedView drives the disk engine through explicit
// freeze/flush cycles — the states a Store checkpoint produces — and checks
// the merged memtable+segment view against a flat shadow map, including
// deletes that must shadow older segment records and the compaction that
// folds everything back into one segment.
func TestEngineDiskSegmentsMergedView(t *testing.T) {
	dir := t.TempDir()
	eng, err := openDiskEngine(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	type pair struct{ k, v string }
	shadow := map[pair]PairRecord{}
	rng := rand.New(rand.NewSource(11))
	manifest := []string(nil)
	for round := 0; round < 8; round++ {
		for i := 0; i < 120; i++ {
			p := pair{
				k: fmt.Sprintf("%08b", rng.Intn(256))[:2+rng.Intn(7)],
				v: fmt.Sprintf("v%d", rng.Intn(4)),
			}
			switch rng.Intn(4) {
			case 0:
				if _, ok := shadow[p]; ok {
					delete(shadow, p)
					eng.Delete(p.k, p.v)
				}
			default:
				rec := PairRecord{Key: p.k, Value: p.v, Gen: uint64(rng.Intn(4)), Ver: uint64(round*1000 + i)}
				_, had := shadow[p]
				shadow[p] = rec
				eng.Put(rec, !had)
			}
		}
		// Simulate the checkpoint boundary: freeze the memtable and flush it
		// to a segment (compacting past the threshold).
		eng.freeze()
		m, cleanup, err := eng.flushFrozen()
		if err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}
		if cleanup != nil {
			cleanup()
		}
		manifest = m

		if eng.Len() != len(shadow) {
			t.Fatalf("round %d: len = %d, want %d", round, eng.Len(), len(shadow))
		}
		got := map[pair]PairRecord{}
		eng.ScanPrefix("", func(r PairRecord) bool {
			got[pair{r.Key, r.Value}] = r
			return true
		})
		if len(got) != len(shadow) {
			t.Fatalf("round %d: scan yielded %d, want %d", round, len(got), len(shadow))
		}
		for p, want := range shadow {
			if g, ok := got[p]; !ok || g != want {
				t.Fatalf("round %d: pair %v = %+v, want %+v", round, p, g, want)
			}
		}
	}
	if n := eng.segmentCount(); n > diskCompactThreshold+1 {
		t.Errorf("segments never compacted: %d live", n)
	}
	if len(manifest) == 0 {
		t.Error("flush reported empty manifest despite live pairs")
	}
	// Point reads resolve through the merged view too.
	for p, want := range shadow {
		if g, ok := eng.Get(p.k, p.v); !ok || g != want {
			t.Fatalf("get %v = %+v ok=%v, want %+v", p, g, ok, want)
		}
	}
}

// storeKinds are the engine kinds every Store-level conformance test runs
// against.
var storeKinds = []string{EngineMem, EngineDisk}

// newTestStoreKind builds an ephemeral store on the kind and ties its
// cleanup to the test.
func newTestStoreKind(t *testing.T, kind string) *Store {
	t.Helper()
	s, err := NewStoreKind(kind)
	if err != nil {
		t.Fatalf("new %s store: %v", kind, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreConformanceGenerationOrdering(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			s := newTestStoreKind(t, kind)
			k := keyspace.MustFromString("0101")
			s.Add(Item{Key: k, Value: "doc", Gen: 3})
			// An older tombstone loses to the newer live generation.
			s.AddTombstones([]Item{{Key: k, Value: "doc", Gen: 2}})
			if !s.Live(k, "doc") {
				t.Fatal("older tombstone must not kill newer live pair")
			}
			// A tombstone of the same generation wins the tie (deletes win).
			s.AddTombstones([]Item{{Key: k, Value: "doc", Gen: 3}})
			if s.Live(k, "doc") {
				t.Fatal("same-generation tombstone must win the tie")
			}
			if !s.Deleted(k, "doc") {
				t.Fatal("pair should be tombstoned")
			}
			// A strictly newer live write resurrects it.
			s.Add(Item{Key: k, Value: "doc", Gen: 4})
			if !s.Live(k, "doc") {
				t.Fatal("newer live generation must beat the tombstone")
			}
		})
	}
}

func TestStoreConformanceGCFloor(t *testing.T) {
	for _, kind := range storeKinds {
		t.Run(kind, func(t *testing.T) {
			s := newTestStoreKind(t, kind)
			s.SetGCPolicy(GCPolicy{MinVersions: 2})
			k := keyspace.MustFromString("01")
			s.Add(Item{Key: k, Value: "a"})
			s.Delete(k, "a")
			for i := 0; i < 8; i++ {
				s.Add(Item{Key: testKey(i), Value: "pad"})
			}
			if n := s.CompactTombstones(); n != 1 {
				t.Fatalf("pruned %d tombstones, want 1", n)
			}
			if s.GCFloor() == 0 {
				t.Fatal("GC floor should have advanced")
			}
			// Deltas from before the floor are unanswerable: the pruned
			// tombstone can no longer be shipped.
			if _, _, ok := s.DeltaSince(s.GCFloor() - 1); ok {
				t.Error("delta below the GC floor must be refused")
			}
			if _, _, ok := s.DeltaSince(s.Clock()); !ok {
				t.Error("delta at the clock must succeed")
			}
		})
	}
}

// TestStoreEngineEquivalenceRandomOps drives a disk-engine store and a
// mem-engine shadow through the same random mutation sequence and requires
// identical observable state — items, tombstones, digests, deltas and
// clocks — throughout. This is the cross-engine byte-compatibility property
// the anti-entropy protocol depends on.
func TestStoreEngineEquivalenceRandomOps(t *testing.T) {
	const seed = 20260808
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)

	s := newTestStoreKind(t, EngineDisk)
	shadow := newTestStoreKind(t, EngineMem)
	s.SetGCPolicy(GCPolicy{MinVersions: 8})
	shadow.SetGCPolicy(GCPolicy{MinVersions: 8})

	values := []string{"a", "b", "c"}
	paths := []keyspace.Path{"0", "1", "01", "10"}
	for step := 0; step < 600; step++ {
		k := testKey(rng.Intn(16))
		v := values[rng.Intn(len(values))]
		switch op := rng.Intn(20); {
		case op < 8:
			it := Item{Key: k, Value: v}
			s.Insert(it)
			shadow.Insert(it)
		case op < 11:
			it := Item{Key: k, Value: v, Gen: uint64(rng.Intn(5))}
			s.Add(it)
			shadow.Add(it)
		case op < 14:
			s.Delete(k, v)
			shadow.Delete(k, v)
		case op < 16:
			it := Item{Key: k, Value: v, Gen: uint64(rng.Intn(8))}
			s.AddTombstones([]Item{it})
			shadow.AddTombstones([]Item{it})
		case op < 17:
			s.CompactTombstones()
			shadow.CompactTombstones()
		case op < 18:
			p := paths[rng.Intn(len(paths))]
			s.RemovePrefix(p)
			shadow.RemovePrefix(p)
		case op < 19:
			p := paths[rng.Intn(len(paths))]
			items := []Item{{Key: k, Value: v, Gen: uint64(rng.Intn(4))}}
			tombs := []Item{{Key: testKey(rng.Intn(16)), Value: v, Gen: uint64(rng.Intn(6))}}
			s.ReplaceWithin(p, items, tombs)
			shadow.ReplaceWithin(p, items, tombs)
		default:
			p := paths[rng.Intn(len(paths))]
			s.RetainPrefix(p)
			shadow.RetainPrefix(p)
		}
		if step%97 == 0 {
			assertSameState(t, s, shadow)
			if t.Failed() {
				t.Fatalf("diverged at step %d", step)
			}
		}
	}
	assertSameState(t, s, shadow)
}

// TestStoreDiskEngineCrashReopen is the persistent variant: a durable
// disk-engine store mutated, checkpointed (creating real segments) and
// crash-reopened at random points must always recover to the mem shadow's
// state — covering segment adoption via the snapshot manifest, WAL tail
// replay on top of segments, and external-snapshot digest installation.
func TestStoreDiskEngineCrashReopen(t *testing.T) {
	const seed = 20260809
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)

	dir := t.TempDir()
	opts := PersistOptions{SyncAlways: true, SnapshotThreshold: 64, Engine: EngineDisk}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()
	shadow := NewStore()

	values := []string{"a", "b", "c"}
	for step := 0; step < 400; step++ {
		k := testKey(rng.Intn(16))
		v := values[rng.Intn(len(values))]
		switch op := rng.Intn(10); {
		case op < 6:
			it := Item{Key: k, Value: v}
			s.Insert(it)
			shadow.Insert(it)
		case op < 8:
			s.Delete(k, v)
			shadow.Delete(k, v)
		default:
			id := rng.Uint64() | 1
			s.MarkMutation(id)
			shadow.MarkMutation(id)
		}
		if rng.Intn(40) == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		}
		if rng.Intn(50) == 0 {
			// Crash: abandon without Close and recover from disk.
			r, err := OpenStore(dir, opts)
			if err != nil {
				t.Fatalf("step %d: crash recovery: %v", step, err)
			}
			s.Close()
			s = r
			if s.EngineKind() != EngineDisk {
				t.Fatalf("recovered on engine %q", s.EngineKind())
			}
			assertSameState(t, s, shadow)
			if t.Failed() {
				t.Fatalf("diverged at step %d", step)
			}
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r := reopen(t, s, dir, opts)
	s = r
	assertSameState(t, s, shadow)
}

// TestStoreDiskSnapshotKeepsPairsExternal asserts the sublinear-recovery
// property: a disk-engine checkpoint must not inline the live pairs into
// the snapshot — they stay in the segment files the snapshot's manifest
// names, so recovery installs the digest tree from the snapshot and serves
// without scanning the pair set.
func TestStoreDiskSnapshotKeepsPairsExternal(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{SyncAlways: true, Engine: EngineDisk}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		s.Add(Item{Key: keyspace.MustFromFloat(float64(i)/n, 20), Value: fmt.Sprintf("v%d", i)})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, ok, err := loadLatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load snapshot: ok=%v err=%v", ok, err)
	}
	if !st.External {
		t.Fatal("disk-engine snapshot should keep pairs external")
	}
	if len(st.Items) != 0 {
		t.Fatalf("snapshot inlined %d items", len(st.Items))
	}
	if st.Count != n {
		t.Fatalf("snapshot count = %d, want %d", st.Count, n)
	}
	if len(st.Manifest) == 0 {
		t.Fatal("snapshot names no segments")
	}
	for _, name := range st.Manifest {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("manifest segment %s: %v", name, err)
		}
	}
	if len(st.Digests) == 0 {
		t.Fatal("external snapshot carries no digest cells")
	}
	// And it really recovers: same content, still external.
	r, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("recovered %d pairs, want %d", r.Len(), n)
	}
}

// TestStoreEngineMigration reopens one data directory across engine kinds
// in both directions and requires identical observable state each time.
func TestStoreEngineMigration(t *testing.T) {
	dir := t.TempDir()
	mk := func(engine string) PersistOptions {
		return PersistOptions{SyncAlways: true, Engine: engine}
	}
	s, err := OpenStore(dir, mk(EngineMem))
	if err != nil {
		t.Fatal(err)
	}
	shadow := NewStore()
	for i := 0; i < 64; i++ {
		it := Item{Key: testKey(i), Value: fmt.Sprintf("v%d", i%7)}
		s.Insert(it)
		shadow.Insert(it)
	}
	s.Delete(testKey(3), "v3")
	shadow.Delete(testKey(3), "v3")
	s.MarkMutation(42)
	shadow.MarkMutation(42)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// mem → disk: the inline snapshot loads into the disk engine's memtable.
	s = reopen(t, s, dir, mk(EngineDisk))
	if s.EngineKind() != EngineDisk {
		t.Fatalf("engine = %q, want disk", s.EngineKind())
	}
	assertSameState(t, s, shadow)
	if s.MarkMutation(42) {
		t.Error("dedup ring lost across mem→disk migration")
	}
	shadow.MarkMutation(42)
	it := Item{Key: testKey(17), Value: "post-migration"}
	s.Insert(it)
	shadow.Insert(it)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// disk → mem: the external snapshot's segments are inlined back.
	s = reopen(t, s, dir, mk(EngineMem))
	if s.EngineKind() != EngineMem {
		t.Fatalf("engine = %q, want mem", s.EngineKind())
	}
	assertSameState(t, s, shadow)
	// A mem checkpoint after the migration must leave no stale segment
	// files behind for a later disk reopen to mis-adopt.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			t.Errorf("stale segment file %s after mem checkpoint", e.Name())
		}
	}
	s = reopen(t, s, dir, mk(EngineDisk))
	assertSameState(t, s, shadow)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreMutationDedupSurvivesRestart pins the exactly-once property the
// overlay's coordinators rely on: an ID marked before a crash is still
// recognised as a duplicate after recovery, and the ring still evicts
// oldest-first.
func TestStoreMutationDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{SyncAlways: true}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !s.MarkMutation(7) {
		t.Fatal("first mark should be new")
	}
	if s.MarkMutation(7) {
		t.Fatal("second mark should be a duplicate")
	}
	if !s.MarkMutation(0) {
		t.Fatal("zero ID is never deduplicated")
	}
	s = reopen(t, s, dir, opts)
	if s.MarkMutation(7) {
		t.Error("dedup ring lost across restart")
	}
	// Overflow the ring: the oldest ID is evicted and becomes new again.
	for i := 0; i < mutationDedupWindow; i++ {
		s.MarkMutation(uint64(1000 + i))
	}
	if !s.MarkMutation(7) {
		t.Error("evicted ID should be markable again")
	}
	s = reopen(t, s, dir, opts)
	if s.MarkMutation(uint64(1000 + mutationDedupWindow - 1)) {
		t.Error("newest ring entry lost across restart")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
