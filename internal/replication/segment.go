package replication

// Sorted segment files for the disk storage engine (diskengine.go). A
// segment is an immutable run of pair records in (key, value) order — a
// flushed memtable, or the merge of every earlier segment produced by
// compaction — plus a sparse index for point lookups.
//
// File layout, using the shared wire codec (internal/wire) for the records:
//
//	"PGSG"  uvarint version (1)
//	records:  flags byte (1 = delete marker) | string key | string value |
//	          uvarint gen | uvarint ver
//	index:    uvarint entry count, entries of
//	          string key | string value | uvarint record offset
//	footer:   uint64 index offset | uint32 index length |
//	          uint32 CRC-32 (IEEE) of the index block | "GSGP"   (20 bytes, LE)
//
// The index holds every segIndexEvery-th record, so a Get seeks to the
// nearest preceding indexed record and scans a bounded run. Records are not
// CRC-protected individually: segments only become reachable through the
// manifest of a committed snapshot, which is CRC-trailed, and the index CRC
// catches a torn or truncated file at open.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"pgrid/internal/wire"
)

// segMagic and segFooterMagic frame a segment file.
const (
	segMagic       = "PGSG"
	segFooterMagic = "GSGP"
	segVersion     = 1
	segFooterLen   = 20
)

// segIndexEvery is the sparse-index stride: one index entry per this many
// records, bounding a point lookup's scan run.
const segIndexEvery = 64

// errSegmentCorrupt reports an unreadable segment file.
var errSegmentCorrupt = errors.New("replication: segment corrupt")

// segRec is one record of a segment or memtable: a pair state, or a delete
// marker shadowing the pair in older segments.
type segRec struct {
	key   string
	value string
	gen   uint64
	ver   uint64
	del   bool
}

// segIndexEntry locates an indexed record inside the file.
type segIndexEntry struct {
	key   string
	value string
	off   int64
}

// segment is one open, immutable segment file.
type segment struct {
	f       *os.File
	name    string // file name inside the data directory (manifest entry)
	dataEnd int64  // offset where records end and the index begins
	index   []segIndexEntry
	records int
}

// segmentFileName renders the file name of segment seq.
func segmentFileName(seq uint64) string { return fmt.Sprintf("seg-%016d.seg", seq) }

// segWriter streams records into a new segment file in one pass, collecting
// the sparse index as it goes. Callers must add records in (key, value)
// order.
type segWriter struct {
	f       *os.File
	bw      *bufio.Writer
	off     int64
	records int
	index   []segIndexEntry
	scratch []byte
}

// newSegWriter creates the segment file at path and writes the header.
func newSegWriter(path string) (*segWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segWriter{f: f, bw: bufio.NewWriterSize(f, 256<<10)}
	hdr := append([]byte(segMagic), byte(segVersion)) // version 1 fits one uvarint byte
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	w.off = int64(len(hdr))
	return w, nil
}

// add appends one record.
func (w *segWriter) add(rec segRec) error {
	if w.records%segIndexEvery == 0 {
		w.index = append(w.index, segIndexEntry{key: rec.key, value: rec.value, off: w.off})
	}
	b := w.scratch[:0]
	var flags byte
	if rec.del {
		flags = 1
	}
	b = append(b, flags)
	b = wire.AppendString(b, rec.key)
	b = wire.AppendString(b, rec.value)
	b = wire.AppendUvarint(b, rec.gen)
	b = wire.AppendUvarint(b, rec.ver)
	w.scratch = b
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	w.off += int64(len(b))
	w.records++
	return nil
}

// finish writes the index block and footer, fsyncs and closes the file.
func (w *segWriter) finish() error {
	dataEnd := w.off
	b := w.scratch[:0]
	b = wire.AppendUvarint(b, uint64(len(w.index)))
	for _, e := range w.index {
		b = wire.AppendString(b, e.key)
		b = wire.AppendString(b, e.value)
		b = wire.AppendUvarint(b, uint64(e.off))
	}
	crc := crc32.ChecksumIEEE(b)
	var footer [segFooterLen]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(dataEnd))
	binary.LittleEndian.PutUint32(footer[8:12], uint32(len(b)))
	binary.LittleEndian.PutUint32(footer[12:16], crc)
	copy(footer[16:20], segFooterMagic)
	b = append(b, footer[:]...)
	w.scratch = b
	if _, err := w.bw.Write(b); err != nil {
		w.f.Close()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// abort closes and removes a partially written segment.
func (w *segWriter) abort() {
	path := w.f.Name()
	w.f.Close()
	os.Remove(path)
}

// openSegment opens the segment file at path and loads its sparse index.
func openSegment(path, name string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	hdrLen := int64(len(segMagic) + 1)
	if fi.Size() < hdrLen+segFooterLen {
		f.Close()
		return nil, errSegmentCorrupt
	}
	var hdr [5]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr[:4]) != segMagic || hdr[4] != segVersion {
		f.Close()
		return nil, errSegmentCorrupt
	}
	var footer [segFooterLen]byte
	if _, err := f.ReadAt(footer[:], fi.Size()-segFooterLen); err != nil {
		f.Close()
		return nil, err
	}
	if string(footer[16:20]) != segFooterMagic {
		f.Close()
		return nil, errSegmentCorrupt
	}
	dataEnd := int64(binary.LittleEndian.Uint64(footer[0:8]))
	indexLen := int64(binary.LittleEndian.Uint32(footer[8:12]))
	crc := binary.LittleEndian.Uint32(footer[12:16])
	if dataEnd < hdrLen || dataEnd+indexLen+segFooterLen != fi.Size() {
		f.Close()
		return nil, errSegmentCorrupt
	}
	idxBuf := make([]byte, indexLen)
	if _, err := f.ReadAt(idxBuf, dataEnd); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(idxBuf) != crc {
		f.Close()
		return nil, errSegmentCorrupt
	}
	d := wire.NewDecoder(idxBuf)
	n := d.Int()
	seg := &segment{f: f, name: name, dataEnd: dataEnd}
	for i := 0; i < n; i++ {
		e := segIndexEntry{key: d.String(), value: d.String(), off: int64(d.Uvarint())}
		if d.Err() != nil {
			break
		}
		seg.index = append(seg.index, e)
	}
	if err := d.Finish(); err != nil {
		f.Close()
		return nil, errSegmentCorrupt
	}
	return seg, nil
}

func (g *segment) close() error { return g.f.Close() }

// startOffset returns the file offset of the nearest indexed record at or
// before the (key, value) target.
func (g *segment) startOffset(key, value string) int64 {
	// First index entry strictly after the target; scan starts at the entry
	// before it.
	i := sort.Search(len(g.index), func(i int) bool {
		e := g.index[i]
		return pairLess(key, value, e.key, e.value)
	})
	if i == 0 {
		return int64(len(segMagic) + 1)
	}
	return g.index[i-1].off
}

// get returns the record stored for the pair, scanning the bounded run from
// the sparse index.
func (g *segment) get(key, value string) (segRec, bool, error) {
	it, err := g.iter(key, value)
	if err != nil {
		return segRec{}, false, err
	}
	for {
		rec, ok, err := it.next()
		if err != nil || !ok {
			return segRec{}, false, err
		}
		if rec.key == key && rec.value == value {
			return rec, true, nil
		}
		if pairLess(key, value, rec.key, rec.value) {
			return segRec{}, false, nil // past the target
		}
	}
}

// iter returns an iterator positioned at the first record not before the
// (key, value) target ("", "" for the whole segment).
func (g *segment) iter(key, value string) (*segmentIter, error) {
	off := int64(len(segMagic) + 1)
	if key != "" || value != "" {
		off = g.startOffset(key, value)
	}
	sr := io.NewSectionReader(g.f, off, g.dataEnd-off)
	it := &segmentIter{r: bufio.NewReaderSize(sr, 32<<10)}
	// Skip the run between the index entry and the target.
	for {
		rec, ok, err := it.peek()
		if err != nil {
			return nil, err
		}
		if !ok || !pairLess(rec.key, rec.value, key, value) {
			return it, nil
		}
		it.advance()
	}
}

// segmentIter streams a segment's records in order with one buffered record
// of lookahead (the shape the k-way merge in diskengine.go consumes).
type segmentIter struct {
	r      *bufio.Reader
	cur    segRec
	loaded bool
	done   bool
	err    error
}

// peek returns the current record without consuming it.
func (it *segmentIter) peek() (segRec, bool, error) {
	if it.err != nil || it.done {
		return segRec{}, false, it.err
	}
	if it.loaded {
		return it.cur, true, nil
	}
	rec, err := readSegRec(it.r)
	if err == io.EOF {
		it.done = true
		return segRec{}, false, nil
	}
	if err != nil {
		it.err = fmt.Errorf("%w: %v", errSegmentCorrupt, err)
		return segRec{}, false, it.err
	}
	it.cur, it.loaded = rec, true
	return rec, true, nil
}

// advance consumes the current record.
func (it *segmentIter) advance() { it.loaded = false }

// next consumes and returns the next record.
func (it *segmentIter) next() (segRec, bool, error) {
	rec, ok, err := it.peek()
	it.advance()
	return rec, ok, err
}

// readSegRec decodes one record from the stream. io.EOF at the first byte
// means the clean end of the record region.
func readSegRec(r *bufio.Reader) (segRec, error) {
	flags, err := r.ReadByte()
	if err != nil {
		return segRec{}, err // io.EOF here is the clean end
	}
	var rec segRec
	rec.del = flags&1 != 0
	if rec.key, err = readSegString(r); err != nil {
		return segRec{}, noEOF(err)
	}
	if rec.value, err = readSegString(r); err != nil {
		return segRec{}, noEOF(err)
	}
	if rec.gen, err = binary.ReadUvarint(r); err != nil {
		return segRec{}, noEOF(err)
	}
	if rec.ver, err = binary.ReadUvarint(r); err != nil {
		return segRec{}, noEOF(err)
	}
	return rec, nil
}

// readSegString decodes one length-prefixed string.
func readSegString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > wire.MaxLen {
		return "", errSegmentCorrupt
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// noEOF converts a mid-record EOF into ErrUnexpectedEOF so it is reported
// as corruption, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
