package replication

// Soak test for the disk engine's headline property: a node storing far
// more pairs than fit comfortably in memory keeps a bounded resident set,
// because checkpoints flush the memtable into segment files and the index
// layer holds only tombstones and the dense digest tree. The test loads the
// same pair volume into a disk-engine store (checkpointing as a maintenance
// loop would) and a mem-engine store, and requires the disk store's live
// heap to stay under half the mem store's.
//
// The default volume is sized for CI; set PGRID_SOAK=1 to run the full
// million-key version.

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"pgrid/internal/keyspace"
)

// soakPairs returns the number of pairs to load and whether this is the
// full-scale run.
func soakPairs() (int, bool) {
	if os.Getenv("PGRID_SOAK") == "1" {
		return 1_000_000, true
	}
	return 150_000, false
}

// liveHeap reports the live heap after a full GC.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// loadSoakStore fills a fresh store on the engine with n pairs,
// checkpointing every checkpointEvery inserts the way the maintenance loop
// bounds the WAL — which for the disk engine is also what flushes the
// memtable into segments. It returns the live-heap growth attributable to
// the loaded store, measured with the store still open (the serving state).
func loadSoakStore(t *testing.T, engine string, n int) (s *Store, heapGrowth uint64) {
	t.Helper()
	before := liveHeap()
	s, err := OpenStore(t.TempDir(), PersistOptions{Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	const checkpointEvery = 50_000
	for i := 0; i < n; i++ {
		s.Insert(Item{Key: mustSoakKey(i, n), Value: fmt.Sprintf("value-%08d", i)})
		if (i+1)%checkpointEvery == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at %d: %v", i+1, err)
			}
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := liveHeap()
	if after <= before {
		return s, 0
	}
	return s, after - before
}

func TestDiskEngineBoundedMemorySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	n, full := soakPairs()
	t.Logf("loading %d pairs per engine (full=%v)", n, full)

	disk, diskHeap := loadSoakStore(t, EngineDisk, n)
	if disk.Len() != n {
		t.Fatalf("disk store holds %d pairs, want %d", disk.Len(), n)
	}
	// Spot-check that the pairs are really servable from segments.
	for i := 0; i < n; i += n / 97 {
		if got := disk.Lookup(mustSoakKey(i, n)); len(got) != 1 {
			t.Fatalf("disk lookup %d returned %d items", i, len(got))
		}
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	mem, memHeap := loadSoakStore(t, EngineMem, n)
	if mem.Len() != n {
		t.Fatalf("mem store holds %d pairs, want %d", mem.Len(), n)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}

	t.Logf("live heap growth: disk %.1f MiB, mem %.1f MiB",
		float64(diskHeap)/(1<<20), float64(memHeap)/(1<<20))
	if diskHeap*2 >= memHeap {
		t.Errorf("disk engine resident set not bounded: disk %d B vs mem %d B (want < mem/2)",
			diskHeap, memHeap)
	}
}

// mustSoakKey spreads i over the keyspace at a depth wide enough that all n
// keys are distinct (24 bits covers the full-scale million-key run).
func mustSoakKey(i, n int) keyspace.Key {
	return keyspace.MustFromFloat(float64(i)/float64(n), 24)
}
