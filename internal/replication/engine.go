package replication

// This file defines the pair-storage engine boundary beneath a Store. The
// Store keeps the anti-entropy brain — digest tree, logical clock, tombstone
// and GC semantics, sync baselines, WAL hooks — while the raw live pairs
// live behind the Engine interface, so the same reconciliation machinery
// runs over an in-memory map (memengine.go) or an LSM-style disk layout
// (diskengine.go) without byte-level differences in digests, deltas or WAL
// replay.

import (
	"fmt"
	"os"
	"strings"
)

// Storage engine kinds accepted by NewStoreKind, PersistOptions.Engine and
// the PGRID_ENGINE environment variable.
const (
	// EngineMem is the in-memory map engine (the default): every live pair
	// stays on the heap, lookups are O(1), restarts rebuild from
	// snapshot + WAL.
	EngineMem = "mem"
	// EngineDisk is the disk-backed engine: live pairs live in sorted
	// segment files plus a bounded in-memory memtable, so resident memory
	// stays flat in the number of keys and recovery does not materialise
	// the pair set.
	EngineDisk = "disk"
)

// defaultEngineKind is the engine used when none is configured, switchable
// fleet-wide through the PGRID_ENGINE environment variable (read once at
// startup; CI uses it to run the full test matrix against the disk engine).
var defaultEngineKind = func() string {
	if os.Getenv("PGRID_ENGINE") == EngineDisk {
		return EngineDisk
	}
	return EngineMem
}()

// DefaultEngine returns the storage engine kind selected for this process
// (EngineMem unless PGRID_ENGINE=disk).
func DefaultEngine() string { return defaultEngineKind }

// PairRecord is one live (key, value) pair as stored by an engine: the key
// bit string, the opaque value, the pair's replication generation and the
// store clock of its last local modification (what DeltaSince keys on).
type PairRecord struct {
	Key   string // key bit string ('0'/'1' only)
	Value string
	Gen   uint64
	Ver   uint64
}

// Engine stores a Store's live pairs. Implementations order pairs by
// (key bit string, value) — note that a key sorts before every strict
// extension of itself — and must be safe for concurrent readers; mutations
// (Put, Delete, Close) are serialised by the owning Store's lock and never
// run concurrently with reads.
//
// Engines store exactly what they are told: generation arbitration,
// tombstones, digests and WAL logging are the Store's job.
type Engine interface {
	// Get returns the record stored for the (key, value) pair.
	Get(key, value string) (PairRecord, bool)
	// Put upserts a record. isNew tells the engine whether the pair is
	// currently absent (the caller has just established that via Get or
	// Delete), letting LSM-style engines maintain Len with a blind write
	// instead of a read-modify-write.
	Put(rec PairRecord, isNew bool)
	// Delete removes the pair, returning the removed record.
	Delete(key, value string) (PairRecord, bool)
	// ScanPrefix streams, in (key, value) order, every record whose key bit
	// string starts with prefix (raw string prefix — the zero-padded digest
	// bucket membership is layered on top by the Store). fn returns false to
	// stop early. fn must not call back into the engine or mutate the store.
	ScanPrefix(prefix string, fn func(PairRecord) bool)
	// ScanKey streams, in value order, the records stored under exactly this
	// key. Equivalent to ScanPrefix(key) stopped at the first longer key, but
	// engines keep it cheap for the exact-match query hot path (Lookup).
	ScanKey(key string, fn func(PairRecord) bool)
	// Len returns the number of live pairs.
	Len() int
	// Close releases the engine's resources. The engine must not be used
	// afterwards.
	Close() error
}

// newEngine constructs a storage engine of the given kind ("" means the
// process default). The disk engine gets a throwaway directory; persistent
// stores attach it to their data directory through OpenStore instead.
func newEngine(kind string) (Engine, error) {
	switch kind {
	case "":
		kind = defaultEngineKind
	case EngineMem, EngineDisk:
	default:
		return nil, fmt.Errorf("replication: unknown storage engine %q", kind)
	}
	if kind == EngineDisk {
		dir, err := os.MkdirTemp("", "pgrid-engine-")
		if err != nil {
			return nil, err
		}
		eng, err := openDiskEngine(dir, nil, 0)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		eng.ephemeral = true
		return eng, nil
	}
	return newMemEngine(), nil
}

// pairLess orders two pairs by (key bit string, value). For the bit strings
// the engines store, plain string order already puts a key before every
// strict extension of itself, so this matches the dyadic key order the
// digest machinery and sortItems use.
func pairLess(aKey, aValue, bKey, bValue string) bool {
	if aKey != bKey {
		return aKey < bKey
	}
	return aValue < bValue
}

// scanLiveUnderLocked streams the live records in the digest bucket of
// prefix — raw-prefix matches plus the shorter keys the zero-padding rule
// assigns to the bucket (see underDigest) — in (key, value) order. Callers
// must hold s.mu.
func (s *Store) scanLiveUnderLocked(prefix string, fn func(PairRecord) bool) {
	// A key shorter than the prefix belongs to the bucket when it is a
	// prefix of it and the remaining bits are all zero; those candidates
	// sort before every full-prefix key, so emitting them first keeps the
	// stream ordered.
	firstZero := len(prefix)
	for firstZero > 0 && prefix[firstZero-1] == '0' {
		firstZero--
	}
	for l := firstZero; l < len(prefix); l++ {
		stopped := false
		s.eng.ScanKey(prefix[:l], func(rec PairRecord) bool {
			if !fn(rec) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	s.eng.ScanPrefix(prefix, fn)
}

// hasPrefix is strings.HasPrefix, aliased so engine code reads uniformly.
func hasPrefix(s, prefix string) bool { return strings.HasPrefix(s, prefix) }
