package replication

import (
	"fmt"
	"testing"

	"pgrid/internal/keyspace"
)

// These regression tests pin down that every accessor returning a slice
// hands out freshly allocated memory: callers routinely mutate query results
// (dedupe, sort, re-stamp) and a shared backing array would corrupt the
// store silently — the same class of bug as the dedupeItems aliasing fixed
// in PR 1. Each test clobbers the returned slice and verifies the store
// still serves the original content.

// populatedStore builds a store with live items across both halves of the
// key space plus a few tombstones.
func populatedStore() *Store {
	s := NewStore()
	for i := 0; i < 16; i++ {
		s.Insert(Item{Key: fkey(float64(i) / 16), Value: fmt.Sprintf("v%d", i)})
	}
	s.Delete(fkey(1.0/16), "v1")
	s.Delete(fkey(9.0/16), "v9")
	return s
}

// clobber overwrites every item of the slice with garbage.
func clobber(items []Item) {
	for i := range items {
		items[i] = Item{Key: fkey(0.999), Value: "clobbered", Gen: 1 << 40}
	}
}

func TestAccessorAliasing(t *testing.T) {
	type access struct {
		name string
		get  func(s *Store) []Item
	}
	accessors := []access{
		{"Items", func(s *Store) []Item { return s.Items() }},
		{"Lookup", func(s *Store) []Item { return s.Lookup(fkey(2.0 / 16)) }},
		{"ItemsWithPrefix", func(s *Store) []Item { return s.ItemsWithPrefix("0") }},
		{"ItemsInRange", func(s *Store) []Item {
			return s.ItemsInRange(keyspace.NewRange(fkey(0), fkey(0.75)))
		}},
		{"Tombstones", func(s *Store) []Item { return s.Tombstones() }},
		{"TombstonesWithPrefix", func(s *Store) []Item { return s.TombstonesWithPrefix("0") }},
		{"DeltaItems", func(s *Store) []Item { items, _, _ := s.DeltaSince(0); return items }},
		{"DeltaTombs", func(s *Store) []Item { _, tombs, _ := s.DeltaSince(0); return tombs }},
		{"ContentWithinItems", func(s *Store) []Item {
			items, _ := s.ContentWithin([]keyspace.Path{"0", "1"})
			return items
		}},
		{"ContentWithinTombs", func(s *Store) []Item {
			_, tombs := s.ContentWithin([]keyspace.Path{"0", "1"})
			return tombs
		}},
	}
	for _, a := range accessors {
		t.Run(a.name, func(t *testing.T) {
			s := populatedStore()
			before := a.get(s)
			if len(before) == 0 {
				t.Fatalf("%s returned nothing; test is vacuous", a.name)
			}
			hBefore, nBefore := s.Digest(keyspace.Root)
			clobber(a.get(s))
			after := a.get(s)
			if len(after) != len(before) {
				t.Fatalf("%s length changed after clobbering the returned slice", a.name)
			}
			for i := range after {
				if after[i] != before[i] {
					t.Fatalf("%s[%d] changed after clobbering the returned slice: %v -> %v",
						a.name, i, before[i], after[i])
				}
			}
			hAfter, nAfter := s.Digest(keyspace.Root)
			if hBefore != hAfter || nBefore != nAfter {
				t.Fatalf("%s: store digest changed after clobbering the returned slice", a.name)
			}
		})
	}
}

// TestRemovePrefixReturnsDetachedSlice checks the hand-over paths: the items
// returned by RemovePrefix/RetainPrefix no longer belong to the store, so
// mutating them must not affect what the store still holds.
func TestRemovePrefixReturnsDetachedSlice(t *testing.T) {
	s := populatedStore()
	removed := s.RemovePrefix("0")
	if len(removed) == 0 {
		t.Fatal("nothing removed; test is vacuous")
	}
	clobber(removed)
	for _, it := range s.Items() {
		if it.Value == "clobbered" {
			t.Fatal("clobbering RemovePrefix result corrupted remaining items")
		}
	}
	rest := s.RetainPrefix("11")
	clobber(rest)
	for _, it := range s.Items() {
		if it.Value == "clobbered" {
			t.Fatal("clobbering RetainPrefix result corrupted remaining items")
		}
	}
}

// TestKeysDetached pins the same guarantee for the key listing.
func TestKeysDetached(t *testing.T) {
	s := populatedStore()
	keys := s.Keys()
	if len(keys) == 0 {
		t.Fatal("no keys; test is vacuous")
	}
	for i := range keys {
		keys[i] = fkey(0.42)
	}
	fresh := s.Keys()
	seen := map[string]bool{}
	for _, k := range fresh {
		seen[k.String()] = true
	}
	if len(seen) != len(fresh) {
		t.Fatal("clobbering Keys result corrupted the store's key set")
	}
}
