package replication

// The in-memory storage engine: the flat map the Store grew up with, now
// isolated behind the Engine interface. Buckets are keyed by key bit string
// and hold the (typically very few) values of that key in insertion order;
// scans sort on demand, which keeps Put/Delete allocation-free and the exact
//-key prefix scan (the query hot path) a single bucket copy.

import "sort"

// memEngine implements Engine over a map of per-key buckets. It relies on
// the Store's lock for mutual exclusion: concurrent calls are only ever
// reads.
type memEngine struct {
	buckets map[string][]PairRecord
	n       int
}

// newMemEngine returns an empty in-memory engine.
func newMemEngine() *memEngine {
	return &memEngine{buckets: make(map[string][]PairRecord)}
}

func (e *memEngine) Get(key, value string) (PairRecord, bool) {
	for _, rec := range e.buckets[key] {
		if rec.Value == value {
			return rec, true
		}
	}
	return PairRecord{}, false
}

func (e *memEngine) Put(rec PairRecord, isNew bool) {
	if !isNew {
		b := e.buckets[rec.Key]
		for i := range b {
			if b[i].Value == rec.Value {
				b[i] = rec
				return
			}
		}
	}
	e.buckets[rec.Key] = append(e.buckets[rec.Key], rec)
	e.n++
}

func (e *memEngine) Delete(key, value string) (PairRecord, bool) {
	b := e.buckets[key]
	for i, rec := range b {
		if rec.Value == value {
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			if len(b) == 0 {
				delete(e.buckets, key)
			} else {
				e.buckets[key] = b
			}
			e.n--
			return rec, true
		}
	}
	return PairRecord{}, false
}

func (e *memEngine) ScanPrefix(prefix string, fn func(PairRecord) bool) {
	// The exact key sorts before every strict extension, so its bucket is
	// emitted first — and an exact-key consumer that stops early (Lookup)
	// never pays for collecting the longer keys.
	if !e.emitBucket(prefix, fn) {
		return
	}
	var keys []string
	for ks := range e.buckets {
		if len(ks) > len(prefix) && hasPrefix(ks, prefix) {
			keys = append(keys, ks)
		}
	}
	sort.Strings(keys)
	for _, ks := range keys {
		if !e.emitBucket(ks, fn) {
			return
		}
	}
}

// emitBucket streams one key's records in value order; it reports whether
// the scan should continue.
func (e *memEngine) emitBucket(ks string, fn func(PairRecord) bool) bool {
	b := e.buckets[ks]
	switch len(b) {
	case 0:
		return true
	case 1:
		return fn(b[0])
	}
	recs := append([]PairRecord(nil), b...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Value < recs[j].Value })
	for _, rec := range recs {
		if !fn(rec) {
			return false
		}
	}
	return true
}

func (e *memEngine) ScanKey(key string, fn func(PairRecord) bool) {
	e.emitBucket(key, fn)
}

func (e *memEngine) Len() int { return e.n }

func (e *memEngine) Close() error { return nil }
