// Package replication provides the data-replication substrate of the
// overlay: per-peer data stores, anti-entropy reconciliation between
// replicas of the same partition (incremental digest trees, logical-clock
// deltas, generation-stamped delete tombstones with a GC horizon), and the
// maximum-likelihood estimator of the number of replicas in a partition
// that the construction protocol uses in place of global knowledge
// (Section 4.2 of the paper).
//
// A Store is split into two layers. The index layer — this file — owns the
// anti-entropy brain: digest tree, logical clock, tombstones, GC horizon,
// sync baselines and WAL hooks. The raw live pairs live behind the Engine
// interface (engine.go): an in-memory map (memengine.go, the default) or a
// disk-backed LSM of sorted segment files (diskengine.go) for stores far
// bigger than RAM. Digests, deltas and WAL replay are byte-identical on
// either engine.
//
// Stores are non-durable by default. OpenStore binds one to a data
// directory instead, making its state durable through an append-only,
// CRC-framed, fsync-batched write-ahead log plus periodic compacted
// snapshots (wal.go, snapshot.go, persist.go): items, tombstones, the
// logical clock, the GC floor, per-replica sync baselines, mutation dedup
// state and overlay metadata all survive a crash, and recovery replays the
// log exactly — tolerating the torn final record a crash can leave behind.
package replication

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"pgrid/internal/keyspace"
)

// Item is one stored data item: an indexed key plus an opaque value (for the
// information-retrieval application the value is a document identifier, for
// the data-management application a tuple reference).
type Item struct {
	Key   keyspace.Key
	Value string
	// Gen is the pair's logical generation, used to order live writes
	// against delete tombstones during replica reconciliation: every live
	// re-insert or delete of the same (Key, Value) pair bumps it, and the
	// merge keeps the state with the higher generation (deletes win ties).
	// It stays zero for data that never saw a live mutation.
	Gen uint64 `json:",omitempty"`
}

// DigestDepth is the deepest key-bit prefix bucket the anti-entropy digest
// walk recurses into — which is what bounds its round count.
const DigestDepth = 20

// digestDenseDepth is the deepest prefix for which the digest tree keeps
// incrementally maintained cells. Shallower digests — including the
// whole-partition digest the steady-state sync compares every tick — are
// O(1) reads; deeper bucket digests are computed by scanning the bucket,
// which only happens during walk rounds between diverged replicas and costs
// a fraction of the partition scan. Keeping the dense tree shallow caps the
// write amplification (9 cell updates per mutation) and bounds the dense
// state a snapshot carries for the disk engine.
const digestDenseDepth = 8

// mutationDedupWindow is the number of recent mutation IDs a store remembers
// for exactly-once coordination (MarkMutation).
const mutationDedupWindow = 1024

// GCPolicy is a Cassandra-style gc_grace horizon for delete tombstones: a
// tombstone is pruned once it is old enough that every replica syncing at the
// configured maintenance cadence must have seen it. Peers that stay silent
// longer than the horizon are detected through the store clock (see GCFloor)
// and rebuilt from an authoritative replica instead of being delta-merged, so
// a pruned delete can never be resurrected by a stale live copy.
type GCPolicy struct {
	// MinAge prunes a tombstone once its local wall-clock age exceeds this
	// duration. Zero disables the age criterion.
	MinAge time.Duration
	// MinVersions prunes a tombstone once the store clock has advanced by
	// more than this many versions since the tombstone was recorded. This is
	// the criterion to use under virtual clocks (simulations), where wall
	// time does not advance. Zero disables the version criterion.
	MinVersions uint64
}

// Enabled reports whether any pruning criterion is configured.
func (p GCPolicy) Enabled() bool { return p.MinAge > 0 || p.MinVersions > 0 }

// BucketDigest is the digest of one key-prefix bucket, exchanged during the
// anti-entropy digest walk.
type BucketDigest struct {
	// Prefix is the key-bit prefix the bucket covers.
	Prefix keyspace.Path
	// Hash is the order-independent XOR digest over every (key, value, gen,
	// live/tombstoned) pair under Prefix. Two replicas hold identical state
	// under the prefix exactly when their hashes match.
	Hash uint64
	// Count is the number of pairs (live plus tombstoned) under Prefix.
	Count int
}

// tombstone is the store-local record of a deleted pair: the generation that
// orders it against live copies, the local clock/time of its recording used
// by the GC horizon, and the pair's last-modified clock (what DeltaSince
// keys on; live pairs carry theirs in the engine's PairRecord.Ver).
type tombstone struct {
	gen  uint64
	born uint64    // store clock when the tombstone was recorded locally
	at   time.Time // local wall-clock time of the recording
	ver  uint64    // store clock of the last modification
}

// digestCell is one node of the incremental digest tree.
type digestCell struct {
	hash uint64
	n    int
}

// Store is a peer's local data store. It is safe for concurrent use.
//
// Deletions are remembered as generation-stamped tombstones: a deleted
// (key, value) pair can only be brought back by a copy with a strictly
// higher generation — replication of a stale live copy is refused, so a
// delete that reached one replica cannot be undone by anti-entropy, while a
// deliberate re-insert (which bumps the generation above the tombstone's)
// propagates and wins everywhere.
//
// The store additionally maintains, incrementally on every mutation:
//
//   - a logical clock (Clock) that stamps each pair's last local
//     modification, so replicas can pull exact deltas (DeltaSince) instead
//     of full sets;
//   - a Merkle-style digest tree over key-bit prefixes (Digest,
//     DigestChildren), so replicas can find the few differing buckets by
//     comparing O(log n) hashes;
//   - a GC horizon (SetGCPolicy, CompactTombstones) that prunes tombstones
//     once every replica syncing at the maintenance cadence must have seen
//     them. GCFloor reports the clock of the latest prune: deltas reaching
//     further back are incomparable and callers must fall back to a full
//     sync/rebuild.
type Store struct {
	mu      sync.RWMutex
	eng     Engine                          // live pairs (engine.go)
	engKind string                          // EngineMem or EngineDisk
	tombs   map[string]map[string]tombstone // key bit string -> value -> tombstone
	dig     map[uint16]digestCell           // marker-bit prefix index (densePrefixIndex) -> digest
	clock   uint64
	gcFloor uint64
	gc      GCPolicy
	now     func() time.Time

	// Mutation dedup ring (MarkMutation): the overlay's exactly-once write
	// coordination. Persisted through the WAL and snapshots so a restarted
	// coordinator does not re-apply a retransmitted mutation.
	mutSeen map[uint64]bool
	mutLog  []uint64
	mutPos  int

	// persist, when non-nil, is the WAL + snapshot machinery every mutation
	// is logged to (see persist.go); baselines and metadata are the small
	// non-pair state that rides along so a restarted peer can resume
	// anti-entropy where it left off.
	persist   *Persistence
	baselines map[string]Baseline
	metadata  map[string]string
	// muted suppresses per-pair WAL records while a compound mutation that
	// is logged as one record (ReplaceWithin) runs (guarded by mu).
	muted bool

	// deepMu guards deep, the one-entry cache of the last digest computed
	// for a prefix below the dense tree. The steady-state sync reads the
	// whole-partition digest every tick; for partitions deeper than the
	// dense tree that read would otherwise re-scan the store each time. The
	// cache is validated against the clock, which every digest-changing
	// mutation (including tombstone GC) advances.
	deepMu sync.Mutex
	deep   struct {
		prefix string
		hash   uint64
		n      int
		clock  uint64
		ok     bool
	}
}

// NewStore creates an empty store on the process-default storage engine
// (EngineMem unless PGRID_ENGINE=disk). It panics if the engine cannot be
// set up — which for the disk engine means the temp directory could not be
// created, an environment failure; use NewStoreKind to handle it.
func NewStore() *Store {
	s, err := NewStoreKind("")
	if err != nil {
		panic(err)
	}
	return s
}

// NewStoreKind creates an empty store on the given storage engine kind
// (EngineMem, EngineDisk, or "" for the process default). A disk-engine
// store created this way keeps its segments in a throwaway directory that
// is removed on Close; durable disk stores are opened through OpenStore
// with PersistOptions.Engine instead.
func NewStoreKind(kind string) (*Store, error) {
	eng, err := newEngine(kind)
	if err != nil {
		return nil, err
	}
	if kind == "" {
		kind = defaultEngineKind
	}
	return newStoreWithEngine(eng, kind), nil
}

// newStoreWithEngine wires a store around an existing engine. The digest
// and tombstone maps are allocated lazily on first use: a freshly joined
// peer in a large simulation holds no state yet, and thousands of empty
// maps are pure overhead.
func newStoreWithEngine(eng Engine, kind string) *Store {
	return &Store{
		eng:     eng,
		engKind: kind,
		now:     time.Now,
	}
}

// EngineKind returns the storage engine kind backing the store (EngineMem
// or EngineDisk).
func (s *Store) EngineKind() string { return s.engKind }

// SetTimeSource replaces the wall-clock source used to age tombstones
// (virtual clocks in simulations, frozen clocks in tests).
func (s *Store) SetTimeSource(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now != nil {
		s.now = now
	}
}

// SetGCPolicy installs the tombstone GC horizon applied by
// CompactTombstones.
func (s *Store) SetGCPolicy(p GCPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gc = p
}

// Clock returns the store's logical clock: it advances on every visible
// local mutation, and each pair remembers the clock value of its last
// change, which is what DeltaSince keys on.
func (s *Store) Clock() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clock
}

// GCFloor returns the highest last-modified version among ever-pruned
// tombstones (0 when nothing was ever pruned). A replica that last
// synchronised before the floor may have missed a pruned delete entirely,
// so deltas from before the floor are incomparable and such replicas must
// be resynchronised with a full exchange; replicas that synced during the
// pruned tombstones' lifetime stay comparable.
func (s *Store) GCFloor() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gcFloor
}

// TombstoneCount returns the number of tombstoned pairs currently held.
func (s *Store) TombstoneCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, vals := range s.tombs {
		n += len(vals)
	}
	return n
}

// CompactTombstones prunes every tombstone past the GC horizon, advances
// the GC floor, and returns the number of tombstones pruned. It is a no-op
// when no GC policy is set.
func (s *Store) CompactTombstones() int {
	return len(s.CompactTombstonesCollect())
}

// CompactTombstonesCollect is CompactTombstones returning the pruned
// (key, value) pairs, each stamped with the generation its tombstone
// carried — the batch a compacting peer pushes to its replicas so they
// drop the same tombstones cooperatively (DropTombstones) instead of
// re-learning the prune through later sync rounds.
func (s *Store) CompactTombstonesCollect() []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.gc.Enabled() {
		return nil
	}
	now := s.now()
	var prunedPairs []prunedPair
	var pruned []Item
	for ks, vals := range s.tombs {
		for v, t := range vals {
			expired := false
			if s.gc.MinAge > 0 && now.Sub(t.at) >= s.gc.MinAge {
				expired = true
			}
			if s.gc.MinVersions > 0 && s.clock-t.born >= s.gc.MinVersions {
				expired = true
			}
			if !expired {
				continue
			}
			// The floor must cover the pruned tombstone's last-modified
			// version, not the prune-time clock: a replica that synced any
			// time during the tombstone's lifetime has seen it and remains
			// delta-comparable; only replicas that missed the whole window
			// (offline longer than the horizon) must rebuild.
			if t.ver > s.gcFloor {
				s.gcFloor = t.ver
			}
			s.digestXorLocked(ks, tombHash(ks, v, t.gen), -1)
			delete(vals, v)
			prunedPairs = append(prunedPairs, prunedPair{ks: ks, value: v})
			pruned = append(pruned, Item{Key: keyspace.MustFromString(ks), Value: v, Gen: t.gen})
		}
		if len(vals) == 0 {
			delete(s.tombs, ks)
		}
	}
	if len(prunedPairs) > 0 {
		// A prune changes the digest without touching any pair's version;
		// advance the clock so clock-validated digest caches notice.
		s.clock++
		s.logPruneLocked(prunedPairs, s.gcFloor)
	}
	return pruned
}

// DropTombstones applies a cooperative prune notification: for each given
// pair whose local tombstone is not newer than the notified generation, the
// tombstone is removed and the GC floor advanced exactly as a local
// compaction would. Returns the number of tombstones dropped. Newer local
// tombstones (a delete this store saw after the notifier snapshotted) are
// kept untouched.
func (s *Store) DropTombstones(pairs []Item) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var prunedPairs []prunedPair
	for _, p := range pairs {
		ks := p.Key.String()
		vals, ok := s.tombs[ks]
		if !ok {
			continue
		}
		t, ok := vals[p.Value]
		if !ok || t.gen > p.Gen {
			continue
		}
		if t.ver > s.gcFloor {
			s.gcFloor = t.ver
		}
		s.digestXorLocked(ks, tombHash(ks, p.Value, t.gen), -1)
		delete(vals, p.Value)
		if len(vals) == 0 {
			delete(s.tombs, ks)
		}
		prunedPairs = append(prunedPairs, prunedPair{ks: ks, value: p.Value})
	}
	if len(prunedPairs) > 0 {
		s.clock++
		s.logPruneLocked(prunedPairs, s.gcFloor)
	}
	return len(prunedPairs)
}

// FNV-1a constants for the pair digests.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// pairHash digests one pair state. Live copies and tombstones of the same
// pair and generation hash differently, so replicas disagreeing only on
// liveness still show a digest mismatch.
func pairHash(ks, value string, gen uint64, live bool) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(ks); i++ {
		h = (h ^ uint64(ks[i])) * fnvPrime
	}
	h = (h ^ 0x1f) * fnvPrime
	for i := 0; i < len(value); i++ {
		h = (h ^ uint64(value[i])) * fnvPrime
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (gen >> (8 * i) & 0xff)) * fnvPrime
	}
	if live {
		h = (h ^ 1) * fnvPrime
	} else {
		h = (h ^ 2) * fnvPrime
	}
	return h
}

func liveHash(ks, value string, gen uint64) uint64 { return pairHash(ks, value, gen, true) }
func tombHash(ks, value string, gen uint64) uint64 { return pairHash(ks, value, gen, false) }

// densePrefixIndex encodes a dense-tree prefix (a '0'/'1' bit string of
// length <= digestDenseDepth) as a marker-bit integer: (1<<len(p)) | bits.
// The marker bit disambiguates depth — "0" (idx 2) and "00" (idx 4) are
// distinct cells — so every dense prefix maps to a unique value in
// [1, 2^(digestDenseDepth+1)), which fits a uint16 map key instead of an
// 8-byte string header plus heap payload per cell. Strings appear only at
// the snapshot boundary (see persist.go), keeping the on-disk format
// unchanged.
func densePrefixIndex(p string) uint16 {
	idx := uint16(1)
	for i := 0; i < len(p); i++ {
		idx <<= 1
		if p[i] == '1' {
			idx |= 1
		}
	}
	return idx
}

// densePrefixString decodes a marker-bit index back into its bit string,
// for writing snapshot digest records.
func densePrefixString(idx uint16) string {
	depth := 0
	for v := idx; v > 1; v >>= 1 {
		depth++
	}
	b := make([]byte, depth)
	for i := depth - 1; i >= 0; i-- {
		if idx&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
		idx >>= 1
	}
	return string(b)
}

// underDigest reports whether the (possibly short) key bit string belongs
// to the digest bucket of the prefix, under the zero-padding rule.
func underDigest(ks, prefix string) bool {
	if len(ks) >= len(prefix) {
		return strings.HasPrefix(ks, prefix)
	}
	if !strings.HasPrefix(prefix, ks) {
		return false
	}
	for i := len(ks); i < len(prefix); i++ {
		if prefix[i] != '0' {
			return false
		}
	}
	return true
}

// digestXorLocked folds a pair-state hash into the digest cells of every
// tracked prefix of the (padded) key, adjusting the pair count by dn (+1
// when the pair state appears, -1 when it disappears, 0 when it is
// replaced — callers fold the old and the new hash separately). Callers
// must hold mu.
func (s *Store) digestXorLocked(ks string, h uint64, dn int) {
	// Keys shorter than the dense depth are zero-padded for bucketing (the
	// dyadic lower edge — see underDigest), which here just means missing
	// bits read as '0' while descending the marker-bit indices.
	if s.dig == nil {
		s.dig = make(map[uint16]digestCell)
	}
	idx := uint16(1)
	for d := 0; ; d++ {
		cell := s.dig[idx]
		cell.hash ^= h
		cell.n += dn
		if cell.hash == 0 && cell.n == 0 {
			delete(s.dig, idx)
		} else {
			s.dig[idx] = cell
		}
		if d == digestDenseDepth {
			return
		}
		idx <<= 1
		if d < len(ks) && ks[d] == '1' {
			idx |= 1
		}
	}
}

// tombLocked returns the pair's tombstone (callers must hold mu).
func (s *Store) tombLocked(ks, value string) (tombstone, bool) {
	t, ok := s.tombs[ks][value]
	return t, ok
}

// clearTombLocked removes the pair's tombstone, maintaining the digest
// (callers must hold mu).
func (s *Store) clearTombLocked(ks, value string) {
	if vals, ok := s.tombs[ks]; ok {
		if t, ok := vals[value]; ok {
			s.digestXorLocked(ks, tombHash(ks, value, t.gen), -1)
			delete(vals, value)
			if len(vals) == 0 {
				delete(s.tombs, ks)
			}
		}
	}
}

// stampTombLocked records or re-stamps a tombstone, maintaining the digest,
// and advances the clock, stamping the tombstone's last-modified version
// (callers must hold mu). A new tombstone's born clock is the clock value
// before the advance — the recording instant.
func (s *Store) stampTombLocked(ks, value string, gen uint64) {
	if old, ok := s.tombs[ks][value]; ok {
		if old.gen != gen {
			s.digestXorLocked(ks, tombHash(ks, value, old.gen), 0)
			s.digestXorLocked(ks, tombHash(ks, value, gen), 0)
		}
		s.clock++
		s.tombs[ks][value] = tombstone{gen: gen, born: old.born, at: old.at, ver: s.clock}
		return
	}
	if s.tombs == nil {
		s.tombs = make(map[string]map[string]tombstone)
	}
	if s.tombs[ks] == nil {
		s.tombs[ks] = make(map[string]tombstone)
	}
	s.digestXorLocked(ks, tombHash(ks, value, gen), 1)
	born := s.clock
	s.clock++
	s.tombs[ks][value] = tombstone{gen: gen, born: born, at: s.now(), ver: s.clock}
}

// removeLiveLocked drops the live copy of the pair if present, maintaining
// the digest (callers must hold mu). It returns whether a copy was removed.
func (s *Store) removeLiveLocked(ks, value string) bool {
	rec, ok := s.eng.Delete(ks, value)
	if !ok {
		return false
	}
	s.digestXorLocked(ks, liveHash(ks, value, rec.Gen), -1)
	return true
}

// putLiveLocked upserts a live copy through the engine, maintaining the
// digest and stamping the pair's version from a fresh clock tick (callers
// must hold mu). isNew tells the engine whether the pair is currently
// absent; oldGen is only meaningful when it is not.
func (s *Store) putLiveLocked(ks, value string, gen, oldGen uint64, isNew bool) {
	if isNew {
		s.digestXorLocked(ks, liveHash(ks, value, gen), 1)
	} else {
		s.digestXorLocked(ks, liveHash(ks, value, oldGen), 0)
		s.digestXorLocked(ks, liveHash(ks, value, gen), 0)
	}
	s.clock++
	s.eng.Put(PairRecord{Key: ks, Value: value, Gen: gen, Ver: s.clock}, isNew)
}

// Add inserts a replicated item. Duplicate (key, value) pairs are ignored so
// that replica reconciliation is idempotent, and pairs tombstoned at the
// same or a higher generation are refused so that reconciliation cannot
// resurrect deleted items; a copy carrying a higher generation than the
// tombstone (a deliberate re-insert elsewhere) clears it and wins.
func (s *Store) Add(it Item) bool {
	ks := it.Key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(ks, it)
}

func (s *Store) addLocked(ks string, it Item) bool {
	if t, ok := s.tombLocked(ks, it.Value); ok {
		if it.Gen <= t.gen {
			return false
		}
		s.clearTombLocked(ks, it.Value)
	}
	if existing, ok := s.eng.Get(ks, it.Value); ok {
		if it.Gen > existing.Gen {
			s.putLiveLocked(ks, it.Value, it.Gen, existing.Gen, false)
			s.logPairLocked(opAdd, ks, it.Value, it.Gen)
		}
		return false
	}
	s.putLiveLocked(ks, it.Value, it.Gen, 0, true)
	s.logPairLocked(opAdd, ks, it.Value, it.Gen)
	return true
}

// Insert is a live write: it stamps the pair with a generation above any
// local tombstone or live copy — so a pair that was deleted earlier is
// deliberately re-inserted and the new generation propagates through
// reconciliation — and returns the stamped item for replica fan-out.
func (s *Store) Insert(it Item) Item {
	ks := it.Key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := it.Gen
	if gen == 0 {
		gen = 1 // a live write is always stamped above never-mutated data
	}
	if t, ok := s.tombLocked(ks, it.Value); ok && t.gen >= gen {
		gen = t.gen + 1
	}
	if existing, ok := s.eng.Get(ks, it.Value); ok {
		if existing.Gen >= gen {
			gen = existing.Gen + 1
		}
		s.putLiveLocked(ks, it.Value, gen, existing.Gen, false)
		s.logPairLocked(opAdd, ks, it.Value, gen)
		return Item{Key: it.Key, Value: it.Value, Gen: gen}
	}
	s.clearTombLocked(ks, it.Value)
	s.putLiveLocked(ks, it.Value, gen, 0, true)
	s.logPairLocked(opAdd, ks, it.Value, gen)
	return Item{Key: it.Key, Value: it.Value, Gen: gen}
}

// Delete removes the (key, value) pair and records a tombstone stamped
// above every state this store has seen for the pair. It returns true when
// the store changed visibly: a live copy was removed or the tombstone is
// new (re-stamping an existing tombstone does not count).
func (s *Store) Delete(key keyspace.Key, value string) bool {
	_, changed := s.deleteStamped(key, value, 0)
	return changed
}

// DeleteStamped is Delete returning the generation-stamped tombstone as an
// item, for fan-out to replicas: applying that exact stamp everywhere (via
// AddTombstones) orders the delete consistently against concurrent
// re-inserts even at replicas whose own tombstone history is stale. floor is
// the highest generation the coordinator has seen reported elsewhere (0 when
// none); the stamp always ends up strictly above it.
func (s *Store) DeleteStamped(key keyspace.Key, value string, floor uint64) Item {
	it, _ := s.deleteStamped(key, value, floor)
	return it
}

func (s *Store) deleteStamped(key keyspace.Key, value string, floor uint64) (Item, bool) {
	ks := key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Stamp above the floor, the live copy and any existing tombstone: an
	// explicit delete re-asserts the removal even when this store's
	// tombstone is stale (e.g. it missed a re-insert that happened
	// elsewhere).
	gen := floor
	if t, ok := s.tombLocked(ks, value); ok && t.gen > gen {
		gen = t.gen
	}
	changed := false
	if live, ok := s.eng.Get(ks, value); ok {
		if live.Gen > gen {
			gen = live.Gen
		}
		s.digestXorLocked(ks, liveHash(ks, value, live.Gen), -1)
		s.eng.Delete(ks, value)
		changed = true
	}
	if _, ok := s.tombLocked(ks, value); !ok {
		changed = true
	}
	gen++
	s.stampTombLocked(ks, value, gen)
	s.logPairLocked(opTomb, ks, value, gen)
	return Item{Key: key, Value: value, Gen: gen}, changed
}

// Deleted reports whether the (key, value) pair is tombstoned.
func (s *Store) Deleted(key keyspace.Key, value string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tombLocked(key.String(), value)
	return ok
}

// Live reports whether the (key, value) pair is currently stored.
func (s *Store) Live(key keyspace.Key, value string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.eng.Get(key.String(), value)
	return ok
}

// PairGen returns the highest generation this store has seen for the
// (key, value) pair — live or tombstoned — and 0 for an unknown pair. A
// write coordinator uses it to learn how far a refusing replica is ahead.
func (s *Store) PairGen(key keyspace.Key, value string) uint64 {
	ks := key.String()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tombLocked(ks, value); ok {
		return t.gen
	}
	if rec, ok := s.eng.Get(ks, value); ok {
		return rec.Gen
	}
	return 0
}

// Tombstones returns the deleted (key, value) pairs as generation-stamped
// items, ordered by key then value, for exchange during anti-entropy. The
// returned slice is freshly allocated and shares no memory with the store.
func (s *Store) Tombstones() []Item {
	return s.tombstones(nil)
}

// TombstonesWithPrefix returns the tombstones whose keys start with the path.
func (s *Store) TombstonesWithPrefix(p keyspace.Path) []Item {
	return s.tombstones(func(ks string) bool { return strings.HasPrefix(ks, string(p)) })
}

// tombstones collects tombstones whose key bit strings pass the filter
// (nil = all).
func (s *Store) tombstones(keep func(string) bool) []Item {
	s.mu.RLock()
	var out []Item
	for ks, vals := range s.tombs {
		if keep != nil && !keep(ks) {
			continue
		}
		k := keyspace.MustFromString(ks)
		for v, t := range vals {
			out = append(out, Item{Key: k, Value: v, Gen: t.gen})
		}
	}
	s.mu.RUnlock()
	sortItems(out)
	return out
}

// AddTombstones applies tombstones received from a replica: live copies at
// the same or a lower generation are dropped and the tombstones recorded
// (deletes win generation ties; a live copy with a strictly higher
// generation — a newer re-insert — survives). It returns the number of
// tombstones that changed this store.
func (s *Store) AddTombstones(items []Item) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, it := range items {
		if s.applyTombLocked(it.Key.String(), it.Value, it.Gen) {
			n++
		}
	}
	return n
}

// applyTombLocked applies one generation-stamped tombstone (callers must
// hold mu): re-stamp an existing tombstone upwards, yield to a strictly
// newer live write, or drop the live copy and record the tombstone. It
// returns whether the tombstone newly applied (the AddTombstones count);
// both mutating branches are WAL-logged.
func (s *Store) applyTombLocked(ks, value string, gen uint64) bool {
	if t, ok := s.tombLocked(ks, value); ok {
		if gen > t.gen {
			s.stampTombLocked(ks, value, gen)
			s.logPairLocked(opTomb, ks, value, gen)
		}
		return false
	}
	if existing, ok := s.eng.Get(ks, value); ok {
		if existing.Gen > gen {
			return false // a newer live write supersedes this tombstone
		}
		s.digestXorLocked(ks, liveHash(ks, value, existing.Gen), -1)
		s.eng.Delete(ks, value)
	}
	s.stampTombLocked(ks, value, gen)
	s.logPairLocked(opTomb, ks, value, gen)
	return true
}

// MarkMutation records a coordinated mutation ID in the store's dedup ring
// and reports whether it was new — false means the mutation was already
// applied and must not run again. The ring (and thus exactly-once
// coordination) survives restarts on persistent stores: marks are
// WAL-logged and snapshot-carried. The zero ID is never deduplicated.
func (s *Store) MarkMutation(id uint64) bool {
	if id == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.markMutationLocked(id) {
		return false
	}
	if s.persist != nil && !s.muted {
		var e walEncoder
		e.op(opMutSeen)
		e.uint(id)
		s.logLocked(e.buf)
	}
	return true
}

// markMutationLocked inserts the ID into the dedup ring, evicting the
// oldest entry once the window is full (callers must hold mu).
func (s *Store) markMutationLocked(id uint64) bool {
	if s.mutSeen[id] {
		return false
	}
	if s.mutSeen == nil {
		s.mutSeen = make(map[uint64]bool)
	}
	if len(s.mutLog) < mutationDedupWindow {
		s.mutLog = append(s.mutLog, id)
	} else {
		delete(s.mutSeen, s.mutLog[s.mutPos])
		s.mutLog[s.mutPos] = id
		s.mutPos = (s.mutPos + 1) % mutationDedupWindow
	}
	s.mutSeen[id] = true
	return true
}

// mutationRingLocked returns the dedup ring's IDs oldest-first (callers
// must hold mu; snapshot capture).
func (s *Store) mutationRingLocked() []uint64 {
	if len(s.mutLog) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(s.mutLog))
	out = append(out, s.mutLog[s.mutPos:]...)
	out = append(out, s.mutLog[:s.mutPos]...)
	return out
}

// AddAll inserts a batch of items and returns how many were new.
func (s *Store) AddAll(items []Item) int {
	n := 0
	for _, it := range items {
		if s.Add(it) {
			n++
		}
	}
	return n
}

// Len returns the number of stored items.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.Len()
}

// Keys returns the distinct keys present in the store.
func (s *Store) Keys() keyspace.Keys {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out keyspace.Keys
	last, first := "", true
	s.eng.ScanPrefix("", func(rec PairRecord) bool {
		if first || rec.Key != last {
			out = append(out, keyspace.MustFromString(rec.Key))
			last, first = rec.Key, false
		}
		return true
	})
	out.Sort()
	return out
}

// Items returns all items ordered by key. The slice is freshly allocated.
func (s *Store) Items() []Item {
	s.mu.RLock()
	out := make([]Item, 0, s.eng.Len())
	s.eng.ScanPrefix("", func(rec PairRecord) bool {
		out = append(out, Item{Key: keyspace.MustFromString(rec.Key), Value: rec.Value, Gen: rec.Gen})
		return true
	})
	s.mu.RUnlock()
	sortItems(out)
	return out
}

// Lookup returns the items stored under the exact key. The slice is freshly
// allocated.
func (s *Store) Lookup(k keyspace.Key) []Item {
	ks := k.String()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	s.eng.ScanKey(ks, func(rec PairRecord) bool {
		out = append(out, Item{Key: k, Value: rec.Value, Gen: rec.Gen})
		return true
	})
	return out
}

// ItemsWithPrefix returns the items whose keys start with the given path.
func (s *Store) ItemsWithPrefix(p keyspace.Path) []Item {
	s.mu.RLock()
	var out []Item
	s.eng.ScanPrefix(string(p), func(rec PairRecord) bool {
		out = append(out, Item{Key: keyspace.MustFromString(rec.Key), Value: rec.Value, Gen: rec.Gen})
		return true
	})
	s.mu.RUnlock()
	return out
}

// ItemsInRange returns the items whose keys fall into the range.
func (s *Store) ItemsInRange(r keyspace.Range) []Item {
	var out []Item
	s.ScanRange(r, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// ScanRange streams, in key order, the items whose keys fall into the range,
// without materialising the partition: the scan is narrowed to the common
// key-bit prefix of the range's bounds and runs on the engine's iterator,
// stopping at the first key past the upper bound. fn returns false to stop
// early; it must not call back into the store.
func (s *Store) ScanRange(r keyspace.Range, fn func(Item) bool) {
	// Every key in [Lo, Hi) shares the bounds' longest common bit prefix:
	// a key diverging below it sorts before Lo, one diverging above sorts
	// after Hi, and a proper prefix of it sorts before Lo too.
	prefix := ""
	if !r.HiUnbounded {
		lo, hi := r.Lo.String(), r.Hi.String()
		i := 0
		for i < len(lo) && i < len(hi) && lo[i] == hi[i] {
			i++
		}
		prefix = lo[:i]
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.eng.ScanPrefix(prefix, func(rec PairRecord) bool {
		k := keyspace.MustFromString(rec.Key)
		if k.Compare(r.Lo) < 0 {
			return true
		}
		if !r.HiUnbounded && k.Compare(r.Hi) >= 0 {
			return false // scan order matches key order: nothing further fits
		}
		return fn(Item{Key: k, Value: rec.Value, Gen: rec.Gen})
	})
}

// CountWithPrefix returns the number of items under the given path.
func (s *Store) CountWithPrefix(p keyspace.Path) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	s.eng.ScanPrefix(string(p), func(PairRecord) bool {
		n++
		return true
	})
	return n
}

// RemovePrefix removes and returns every item whose key starts with the
// path (used to hand a sub-partition's content over to its new owner during
// a split).
func (s *Store) RemovePrefix(p keyspace.Path) []Item {
	s.mu.Lock()
	removed := s.removePrefixLocked(p)
	s.mu.Unlock()
	return removed
}

// removePrefixLocked is RemovePrefix without the lock (shared with WAL
// replay; callers must hold mu).
func (s *Store) removePrefixLocked(p keyspace.Path) []Item {
	var recs []PairRecord
	s.eng.ScanPrefix(string(p), func(rec PairRecord) bool {
		recs = append(recs, rec)
		return true
	})
	removed := s.dropLiveLocked(recs)
	if len(removed) > 0 {
		s.clock++
		s.logPrefixLocked(opRemovePrefix, p)
	}
	return removed
}

// RetainPrefix drops every item whose key does not start with the path,
// returning the removed items (handed over to the counterpart in a split).
func (s *Store) RetainPrefix(p keyspace.Path) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retainPrefixLocked(p)
}

// retainPrefixLocked is RetainPrefix's body (shared with WAL replay;
// callers must hold mu).
func (s *Store) retainPrefixLocked(p keyspace.Path) []Item {
	var recs []PairRecord
	s.eng.ScanPrefix("", func(rec PairRecord) bool {
		if !strings.HasPrefix(rec.Key, string(p)) {
			recs = append(recs, rec)
		}
		return true
	})
	removed := s.dropLiveLocked(recs)
	if len(removed) > 0 {
		s.clock++
		s.logPrefixLocked(opRetainPrefix, p)
	}
	return removed
}

// dropLiveLocked deletes the collected records from the engine and digest,
// returning them as items (callers must hold mu).
func (s *Store) dropLiveLocked(recs []PairRecord) []Item {
	var removed []Item
	for _, rec := range recs {
		s.digestXorLocked(rec.Key, liveHash(rec.Key, rec.Value, rec.Gen), -1)
		s.eng.Delete(rec.Key, rec.Value)
		removed = append(removed, Item{Key: keyspace.MustFromString(rec.Key), Value: rec.Value, Gen: rec.Gen})
	}
	return removed
}

// Digest returns the XOR digest and pair count (live plus tombstoned) of the
// key-prefix bucket. Shallow prefixes (up to the dense tree depth) are
// served from the incrementally maintained cells in O(1); deeper buckets
// are scanned on demand, with the most recent result cached per clock so
// the steady-state root comparison of a deep partition stays O(1) between
// mutations.
func (s *Store) Digest(prefix keyspace.Path) (uint64, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(prefix) <= digestDenseDepth {
		cell := s.dig[densePrefixIndex(string(prefix))]
		return cell.hash, cell.n
	}
	s.deepMu.Lock()
	if s.deep.ok && s.deep.prefix == string(prefix) && s.deep.clock == s.clock {
		h, n := s.deep.hash, s.deep.n
		s.deepMu.Unlock()
		return h, n
	}
	s.deepMu.Unlock()
	h, n := s.digestLocked(prefix)
	s.deepMu.Lock()
	s.deep.prefix, s.deep.hash, s.deep.n, s.deep.clock, s.deep.ok = string(prefix), h, n, s.clock, true
	s.deepMu.Unlock()
	return h, n
}

// digestLocked computes a bucket digest below the dense tree by scanning the
// bucket, filtered by the padded-prefix membership rule (callers must hold
// mu; shallow prefixes are served by the dense cells).
func (s *Store) digestLocked(prefix keyspace.Path) (uint64, int) {
	if len(prefix) <= digestDenseDepth {
		cell := s.dig[densePrefixIndex(string(prefix))]
		return cell.hash, cell.n
	}
	var h uint64
	n := 0
	s.scanLiveUnderLocked(string(prefix), func(rec PairRecord) bool {
		h ^= liveHash(rec.Key, rec.Value, rec.Gen)
		n++
		return true
	})
	for ks, vals := range s.tombs {
		if underDigest(ks, string(prefix)) {
			for v, t := range vals {
				h ^= tombHash(ks, v, t.gen)
				n++
			}
		}
	}
	return h, n
}

// DigestChildren returns the digests of all 2^width extensions of the
// prefix, including empty ones, so two replicas can compare the same bucket
// set during the anti-entropy digest walk. Bucket membership follows the
// zero-padding rule (see digestKey), so the children exactly partition the
// parent even in the presence of keys shorter than the child depth.
func (s *Store) DigestChildren(prefix keyspace.Path, width int) []BucketDigest {
	if width < 1 {
		width = 1
	}
	childDepth := len(prefix) + width
	out := make([]BucketDigest, 1<<width)
	for i := range out {
		b := make([]byte, 0, childDepth)
		b = append(b, prefix...)
		for d := width - 1; d >= 0; d-- {
			if i>>uint(d)&1 == 1 {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
		}
		out[i].Prefix = keyspace.Path(b)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if childDepth <= digestDenseDepth {
		for i := range out {
			cell := s.dig[densePrefixIndex(string(out[i].Prefix))]
			out[i].Hash, out[i].Count = cell.hash, cell.n
		}
		return out
	}
	// Below the dense tree: one pass over the parent bucket bucketises every
	// pair into its child by the (zero-padded) key bits at the child depth,
	// instead of 2^width independent scans.
	bucket := func(ks string) int {
		if !underDigest(ks, string(prefix)) {
			return -1
		}
		idx := 0
		for d := len(prefix); d < childDepth; d++ {
			idx <<= 1
			if d < len(ks) && ks[d] == '1' {
				idx |= 1
			}
		}
		return idx
	}
	s.scanLiveUnderLocked(string(prefix), func(rec PairRecord) bool {
		if idx := bucket(rec.Key); idx >= 0 {
			out[idx].Hash ^= liveHash(rec.Key, rec.Value, rec.Gen)
			out[idx].Count++
		}
		return true
	})
	for ks, vals := range s.tombs {
		if idx := bucket(ks); idx >= 0 {
			for v, t := range vals {
				out[idx].Hash ^= tombHash(ks, v, t.gen)
				out[idx].Count++
			}
		}
	}
	return out
}

// DeltaSince returns every pair modified after the given store clock value —
// live items and tombstones separately — together with ok reporting whether
// the delta is complete: when since predates the GC floor, pruned tombstones
// can no longer be reproduced and the caller must fall back to a full
// exchange.
func (s *Store) DeltaSince(since uint64) (items, tombs []Item, ok bool) {
	return s.DeltaSinceWithPrefix(keyspace.Root, since)
}

// DeltaSinceWithPrefix is DeltaSince restricted to keys under the path
// (padded-membership, matching the digest machinery).
func (s *Store) DeltaSinceWithPrefix(p keyspace.Path, since uint64) (items, tombs []Item, ok bool) {
	s.mu.RLock()
	if since < s.gcFloor {
		s.mu.RUnlock()
		return nil, nil, false
	}
	if since < s.clock { // nothing can be newer than the clock itself
		s.scanLiveUnderLocked(string(p), func(rec PairRecord) bool {
			if rec.Ver > since {
				items = append(items, Item{Key: keyspace.MustFromString(rec.Key), Value: rec.Value, Gen: rec.Gen})
			}
			return true
		})
		for ks, vals := range s.tombs {
			if !underDigest(ks, string(p)) {
				continue
			}
			var key keyspace.Key
			parsed := false
			for v, t := range vals {
				if t.ver <= since {
					continue
				}
				if !parsed {
					key = keyspace.MustFromString(ks)
					parsed = true
				}
				tombs = append(tombs, Item{Key: key, Value: v, Gen: t.gen})
			}
		}
	}
	s.mu.RUnlock()
	sortItems(items)
	sortItems(tombs)
	return items, tombs, true
}

// ContentWithin returns the live items and tombstones under any of the given
// prefixes (used to exchange the differing buckets found by a digest walk).
// Membership follows the digest machinery's zero-padding rule, so whatever
// a bucket digest covers is exactly what the bucket exchange transfers. The
// prefixes are expected to be non-overlapping.
func (s *Store) ContentWithin(prefixes []keyspace.Path) (items, tombs []Item) {
	s.mu.RLock()
	for _, p := range prefixes {
		s.scanLiveUnderLocked(string(p), func(rec PairRecord) bool {
			items = append(items, Item{Key: keyspace.MustFromString(rec.Key), Value: rec.Value, Gen: rec.Gen})
			return true
		})
	}
	for ks, vals := range s.tombs {
		if underAnyDigest(ks, prefixes) {
			k := keyspace.MustFromString(ks)
			for v, t := range vals {
				tombs = append(tombs, Item{Key: k, Value: v, Gen: t.gen})
			}
		}
	}
	s.mu.RUnlock()
	sortItems(items)
	sortItems(tombs)
	return items, tombs
}

// ReplaceWithin atomically replaces the store's content under the path with
// the given live items and tombstones: a rebuild from an authoritative
// replica after the local copy went stale past the replica's GC horizon.
// Local live copies and tombstones under the path are dropped first, so a
// stale pair that was deleted-and-pruned elsewhere cannot survive the
// rebuild. It returns the store clock after the replacement, taken
// atomically with it, so callers can record a sync baseline that provably
// covers the installed content and nothing newer.
func (s *Store) ReplaceWithin(p keyspace.Path, items, tombs []Item) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logReplaceLocked(p, items, tombs)
	s.muted = true
	defer func() { s.muted = false }()
	return s.replaceWithinLocked(p, items, tombs)
}

// replaceWithinLocked is ReplaceWithin's body (shared with WAL replay;
// callers must hold mu).
func (s *Store) replaceWithinLocked(p keyspace.Path, items, tombs []Item) uint64 {
	var recs []PairRecord
	s.scanLiveUnderLocked(string(p), func(rec PairRecord) bool {
		recs = append(recs, rec)
		return true
	})
	for _, rec := range recs {
		s.digestXorLocked(rec.Key, liveHash(rec.Key, rec.Value, rec.Gen), -1)
		s.eng.Delete(rec.Key, rec.Value)
	}
	for ks, vals := range s.tombs {
		if !underDigest(ks, string(p)) {
			continue
		}
		for v, t := range vals {
			s.digestXorLocked(ks, tombHash(ks, v, t.gen), -1)
		}
		delete(s.tombs, ks)
	}
	s.clock++
	for _, it := range tombs {
		ks := it.Key.String()
		if !underDigest(ks, string(p)) {
			continue
		}
		s.stampTombLocked(ks, it.Value, it.Gen)
	}
	for _, it := range items {
		ks := it.Key.String()
		if !underDigest(ks, string(p)) {
			continue
		}
		s.addLocked(ks, it)
	}
	return s.clock
}

// Clone returns a deep copy of the store's logical content (items and
// tombstones; the clone's clock, digests and tombstone ages are rebuilt
// fresh). The clone always lives on the in-memory engine, whatever backs
// the original.
func (s *Store) Clone() *Store {
	c := newStoreWithEngine(newMemEngine(), EngineMem)
	c.AddAll(s.Items())
	c.AddTombstones(s.Tombstones())
	return c
}

// Diff returns the items present in the store but missing from the other
// store (by key and value).
func (s *Store) Diff(other *Store) []Item {
	otherItems := make(map[string]map[string]bool)
	for _, it := range other.Items() {
		ks := it.Key.String()
		if otherItems[ks] == nil {
			otherItems[ks] = make(map[string]bool)
		}
		otherItems[ks][it.Value] = true
	}
	var out []Item
	for _, it := range s.Items() {
		if !otherItems[it.Key.String()][it.Value] {
			out = append(out, it)
		}
	}
	return out
}

// Reconcile performs anti-entropy between two replica stores: both end up
// with the union of their items minus the union of their tombstones (deletes
// win over stale live copies, so a removed item cannot be resurrected). It
// returns the number of items transferred in each direction (for bandwidth
// accounting). This is the full-set exchange; the overlay's maintenance loop
// uses the digest/delta protocol instead and keeps Reconcile as the
// baseline.
func Reconcile(a, b *Store) (toA, toB int) {
	b.AddTombstones(a.Tombstones())
	a.AddTombstones(b.Tombstones())
	missingInB := a.Diff(b)
	missingInA := b.Diff(a)
	toB = b.AddAll(missingInB)
	toA = a.AddAll(missingInA)
	return toA, toB
}

// sortItems orders items by key then value.
func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		c := items[i].Key.Compare(items[j].Key)
		if c != 0 {
			return c < 0
		}
		return items[i].Value < items[j].Value
	})
}

// underAnyDigest reports whether the key bit string belongs to any of the
// digest buckets, under the zero-padding membership rule.
func underAnyDigest(ks string, prefixes []keyspace.Path) bool {
	for _, p := range prefixes {
		if underDigest(ks, string(p)) {
			return true
		}
	}
	return false
}

// OverlapCount returns the number of distinct keys two key sets share.
func OverlapCount(a, b keyspace.Keys) int {
	set := make(map[uint64]map[int]bool, len(a))
	for _, k := range a {
		if set[k.Bits] == nil {
			set[k.Bits] = make(map[int]bool)
		}
		set[k.Bits][k.Len] = true
	}
	n := 0
	seen := make(map[uint64]map[int]bool)
	for _, k := range b {
		if set[k.Bits][k.Len] && !seen[k.Bits][k.Len] {
			if seen[k.Bits] == nil {
				seen[k.Bits] = make(map[int]bool)
			}
			seen[k.Bits][k.Len] = true
			n++
		}
	}
	return n
}

// EstimateReplicas is the maximum-likelihood estimate of the number of
// replica peers in the current partition, derived from the key-set overlap
// of two peers that meet in a balanced split (Section 4.2). Before the
// indexing process starts every data key is replicated nmin times; if two
// peers hold n1 and n2 keys of the partition and share `overlap` of them,
// the capture-recapture estimate of the number of distinct keys is
// n1*n2/overlap, each replicated nmin times, spread over peers holding
// about sqrt(n1*n2) keys each:
//
//	replicas ≈ nmin * sqrt(n1*n2) / overlap
//
// In particular, identical key sets of any size yield nmin, matching the
// paper's example. A zero overlap (disjoint samples) indicates many more
// replicas than nmin; we return 2*nmin*sqrt(n1*n2) as a conservative cap.
func EstimateReplicas(n1, n2, overlap, nmin int) float64 {
	if n1 <= 0 || n2 <= 0 || nmin <= 0 {
		return float64(nmin)
	}
	g := math.Sqrt(float64(n1) * float64(n2))
	if overlap <= 0 {
		return 2 * float64(nmin) * g
	}
	return float64(nmin) * g / float64(overlap)
}
