// Package replication provides the data-replication substrate of the
// overlay: per-peer data stores, anti-entropy reconciliation between
// replicas of the same partition, and the maximum-likelihood estimator of
// the number of replicas in a partition that the construction protocol uses
// in place of global knowledge (Section 4.2).
package replication

import (
	"math"
	"sort"
	"sync"

	"pgrid/internal/keyspace"
)

// Item is one stored data item: an indexed key plus an opaque value (for the
// information-retrieval application the value is a document identifier, for
// the data-management application a tuple reference).
type Item struct {
	Key   keyspace.Key
	Value string
	// Gen is the pair's logical generation, used to order live writes
	// against delete tombstones during replica reconciliation: every live
	// re-insert or delete of the same (Key, Value) pair bumps it, and the
	// merge keeps the state with the higher generation (deletes win ties).
	// It stays zero for data that never saw a live mutation.
	Gen uint64 `json:",omitempty"`
}

// Store is a peer's local data store. It is safe for concurrent use.
//
// Deletions are remembered as generation-stamped tombstones: a deleted
// (key, value) pair can only be brought back by a copy with a strictly
// higher generation — replication of a stale live copy is refused, so a
// delete that reached one replica cannot be undone by anti-entropy, while a
// deliberate re-insert (which bumps the generation above the tombstone's)
// propagates and wins everywhere. Tombstones are exchanged during
// reconciliation like items. They are currently kept forever — safe, but
// memory and reconciliation cost grow with lifetime deletes; see the
// tombstone-GC item in ROADMAP.md.
type Store struct {
	mu    sync.RWMutex
	items map[string][]Item            // live items by key bit string
	tombs map[string]map[string]uint64 // key bit string -> value -> tombstone generation
	count int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{items: make(map[string][]Item), tombs: make(map[string]map[string]uint64)}
}

// tombGenLocked returns the tombstone generation for the pair (callers must
// hold mu).
func (s *Store) tombGenLocked(ks, value string) (uint64, bool) {
	g, ok := s.tombs[ks][value]
	return g, ok
}

// clearTombLocked removes the pair's tombstone (callers must hold mu).
func (s *Store) clearTombLocked(ks, value string) {
	if vals, ok := s.tombs[ks]; ok {
		delete(vals, value)
		if len(vals) == 0 {
			delete(s.tombs, ks)
		}
	}
}

// setTombLocked records a tombstone generation (callers must hold mu).
func (s *Store) setTombLocked(ks, value string, gen uint64) {
	if s.tombs[ks] == nil {
		s.tombs[ks] = make(map[string]uint64)
	}
	s.tombs[ks][value] = gen
}

// removeLiveLocked drops the live copy of the pair if present (callers must
// hold mu). It returns whether a copy was removed.
func (s *Store) removeLiveLocked(ks, value string) bool {
	its := s.items[ks]
	for i, it := range its {
		if it.Value == value {
			its[i] = its[len(its)-1]
			its = its[:len(its)-1]
			if len(its) == 0 {
				delete(s.items, ks)
			} else {
				s.items[ks] = its
			}
			s.count--
			return true
		}
	}
	return false
}

// Add inserts a replicated item. Duplicate (key, value) pairs are ignored so
// that replica reconciliation is idempotent, and pairs tombstoned at the
// same or a higher generation are refused so that reconciliation cannot
// resurrect deleted items; a copy carrying a higher generation than the
// tombstone (a deliberate re-insert elsewhere) clears it and wins.
func (s *Store) Add(it Item) bool {
	ks := it.Key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(ks, it)
}

func (s *Store) addLocked(ks string, it Item) bool {
	if tg, ok := s.tombGenLocked(ks, it.Value); ok {
		if it.Gen <= tg {
			return false
		}
		s.clearTombLocked(ks, it.Value)
	}
	for i, existing := range s.items[ks] {
		if existing.Value == it.Value {
			if it.Gen > existing.Gen {
				s.items[ks][i].Gen = it.Gen
			}
			return false
		}
	}
	s.items[ks] = append(s.items[ks], it)
	s.count++
	return true
}

// Insert is a live write: it stamps the pair with a generation above any
// local tombstone or live copy — so a pair that was deleted earlier is
// deliberately re-inserted and the new generation propagates through
// reconciliation — and returns the stamped item for replica fan-out.
func (s *Store) Insert(it Item) Item {
	ks := it.Key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := it.Gen
	if gen == 0 {
		gen = 1 // a live write is always stamped above never-mutated data
	}
	if tg, ok := s.tombGenLocked(ks, it.Value); ok && tg >= gen {
		gen = tg + 1
	}
	for i, existing := range s.items[ks] {
		if existing.Value == it.Value {
			if existing.Gen >= gen {
				gen = existing.Gen + 1
			}
			s.items[ks][i].Gen = gen
			return Item{Key: it.Key, Value: it.Value, Gen: gen}
		}
	}
	s.clearTombLocked(ks, it.Value)
	stamped := Item{Key: it.Key, Value: it.Value, Gen: gen}
	s.items[ks] = append(s.items[ks], stamped)
	s.count++
	return stamped
}

// Delete removes the (key, value) pair and records a tombstone stamped
// above every state this store has seen for the pair. It returns true when
// the store changed visibly: a live copy was removed or the tombstone is
// new (re-stamping an existing tombstone does not count).
func (s *Store) Delete(key keyspace.Key, value string) bool {
	_, changed := s.deleteStamped(key, value, 0)
	return changed
}

// DeleteStamped is Delete returning the generation-stamped tombstone as an
// item, for fan-out to replicas: applying that exact stamp everywhere (via
// AddTombstones) orders the delete consistently against concurrent
// re-inserts even at replicas whose own tombstone history is stale. floor is
// the highest generation the coordinator has seen reported elsewhere (0 when
// none); the stamp always ends up strictly above it.
func (s *Store) DeleteStamped(key keyspace.Key, value string, floor uint64) Item {
	it, _ := s.deleteStamped(key, value, floor)
	return it
}

func (s *Store) deleteStamped(key keyspace.Key, value string, floor uint64) (Item, bool) {
	ks := key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Stamp above the floor, the live copy and any existing tombstone: an
	// explicit delete re-asserts the removal even when this store's
	// tombstone is stale (e.g. it missed a re-insert that happened
	// elsewhere).
	gen := floor
	if tg, ok := s.tombGenLocked(ks, value); ok && tg > gen {
		gen = tg
	}
	changed := false
	for _, it := range s.items[ks] {
		if it.Value == value {
			if it.Gen > gen {
				gen = it.Gen
			}
			break
		}
	}
	if s.removeLiveLocked(ks, value) {
		changed = true
	}
	if _, ok := s.tombGenLocked(ks, value); !ok {
		changed = true
	}
	gen++
	s.setTombLocked(ks, value, gen)
	return Item{Key: key, Value: value, Gen: gen}, changed
}

// Deleted reports whether the (key, value) pair is tombstoned.
func (s *Store) Deleted(key keyspace.Key, value string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tombGenLocked(key.String(), value)
	return ok
}

// Live reports whether the (key, value) pair is currently stored.
func (s *Store) Live(key keyspace.Key, value string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, it := range s.items[key.String()] {
		if it.Value == value {
			return true
		}
	}
	return false
}

// PairGen returns the highest generation this store has seen for the
// (key, value) pair — live or tombstoned — and 0 for an unknown pair. A
// write coordinator uses it to learn how far a refusing replica is ahead.
func (s *Store) PairGen(key keyspace.Key, value string) uint64 {
	ks := key.String()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tg, ok := s.tombGenLocked(ks, value); ok {
		return tg
	}
	for _, it := range s.items[ks] {
		if it.Value == value {
			return it.Gen
		}
	}
	return 0
}

// Tombstones returns the deleted (key, value) pairs as generation-stamped
// items, ordered by key then value, for exchange during anti-entropy.
func (s *Store) Tombstones() []Item {
	return s.tombstones(nil)
}

// TombstonesWithPrefix returns the tombstones whose keys start with the path.
func (s *Store) TombstonesWithPrefix(p keyspace.Path) []Item {
	return s.tombstones(func(k keyspace.Key) bool { return k.HasPrefix(p) })
}

// tombstones collects tombstones whose keys pass the filter (nil = all).
func (s *Store) tombstones(keep func(keyspace.Key) bool) []Item {
	s.mu.RLock()
	var out []Item
	for ks, vals := range s.tombs {
		k := keyspace.MustFromString(ks)
		if keep != nil && !keep(k) {
			continue
		}
		for v, g := range vals {
			out = append(out, Item{Key: k, Value: v, Gen: g})
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		c := out[i].Key.Compare(out[j].Key)
		if c != 0 {
			return c < 0
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// AddTombstones applies tombstones received from a replica: live copies at
// the same or a lower generation are dropped and the tombstones recorded
// (deletes win generation ties; a live copy with a strictly higher
// generation — a newer re-insert — survives). It returns the number of
// tombstones that changed this store.
func (s *Store) AddTombstones(items []Item) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, it := range items {
		ks := it.Key.String()
		if tg, ok := s.tombGenLocked(ks, it.Value); ok {
			if it.Gen > tg {
				s.setTombLocked(ks, it.Value, it.Gen)
			}
			continue
		}
		liveGen, live := uint64(0), false
		for _, existing := range s.items[ks] {
			if existing.Value == it.Value {
				liveGen, live = existing.Gen, true
				break
			}
		}
		if live && liveGen > it.Gen {
			continue // a newer live write supersedes this tombstone
		}
		s.removeLiveLocked(ks, it.Value)
		s.setTombLocked(ks, it.Value, it.Gen)
		n++
	}
	return n
}

// AddAll inserts a batch of items and returns how many were new.
func (s *Store) AddAll(items []Item) int {
	n := 0
	for _, it := range items {
		if s.Add(it) {
			n++
		}
	}
	return n
}

// Len returns the number of stored items.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Keys returns the distinct keys present in the store.
func (s *Store) Keys() keyspace.Keys {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(keyspace.Keys, 0, len(s.items))
	for ks := range s.items {
		out = append(out, keyspace.MustFromString(ks))
	}
	out.Sort()
	return out
}

// Items returns all items ordered by key.
func (s *Store) Items() []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Item, 0, s.count)
	for _, its := range s.items {
		out = append(out, its...)
	}
	sort.Slice(out, func(i, j int) bool {
		c := out[i].Key.Compare(out[j].Key)
		if c != 0 {
			return c < 0
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Lookup returns the items stored under the exact key.
func (s *Store) Lookup(k keyspace.Key) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Item(nil), s.items[k.String()]...)
}

// ItemsWithPrefix returns the items whose keys start with the given path.
func (s *Store) ItemsWithPrefix(p keyspace.Path) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	for ks, its := range s.items {
		if keyspace.MustFromString(ks).HasPrefix(p) {
			out = append(out, its...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out
}

// ItemsInRange returns the items whose keys fall into the range.
func (s *Store) ItemsInRange(r keyspace.Range) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	for ks, its := range s.items {
		if r.ContainsKey(keyspace.MustFromString(ks)) {
			out = append(out, its...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out
}

// CountWithPrefix returns the number of items under the given path.
func (s *Store) CountWithPrefix(p keyspace.Path) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for ks, its := range s.items {
		if keyspace.MustFromString(ks).HasPrefix(p) {
			n += len(its)
		}
	}
	return n
}

// RemovePrefix removes and returns every item whose key starts with the
// path (used to hand a sub-partition's content over to its new owner during
// a split).
func (s *Store) RemovePrefix(p keyspace.Path) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []Item
	for ks, its := range s.items {
		if keyspace.MustFromString(ks).HasPrefix(p) {
			removed = append(removed, its...)
			s.count -= len(its)
			delete(s.items, ks)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].Key.Compare(removed[j].Key) < 0 })
	return removed
}

// RetainPrefix drops every item whose key does not start with the path,
// returning the removed items (handed over to the counterpart in a split).
func (s *Store) RetainPrefix(p keyspace.Path) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []Item
	for ks, its := range s.items {
		if !keyspace.MustFromString(ks).HasPrefix(p) {
			removed = append(removed, its...)
			s.count -= len(its)
			delete(s.items, ks)
		}
	}
	return removed
}

// Clone returns a deep copy of the store, including tombstones.
func (s *Store) Clone() *Store {
	c := NewStore()
	c.AddAll(s.Items())
	c.AddTombstones(s.Tombstones())
	return c
}

// Diff returns the items present in the store but missing from the other
// store (by key and value).
func (s *Store) Diff(other *Store) []Item {
	otherItems := make(map[string]map[string]bool)
	for _, it := range other.Items() {
		ks := it.Key.String()
		if otherItems[ks] == nil {
			otherItems[ks] = make(map[string]bool)
		}
		otherItems[ks][it.Value] = true
	}
	var out []Item
	for _, it := range s.Items() {
		if !otherItems[it.Key.String()][it.Value] {
			out = append(out, it)
		}
	}
	return out
}

// Reconcile performs anti-entropy between two replica stores: both end up
// with the union of their items minus the union of their tombstones (deletes
// win over stale live copies, so a removed item cannot be resurrected). It
// returns the number of items transferred in each direction (for bandwidth
// accounting).
func Reconcile(a, b *Store) (toA, toB int) {
	b.AddTombstones(a.Tombstones())
	a.AddTombstones(b.Tombstones())
	missingInB := a.Diff(b)
	missingInA := b.Diff(a)
	toB = b.AddAll(missingInB)
	toA = a.AddAll(missingInA)
	return toA, toB
}

// OverlapCount returns the number of distinct keys two key sets share.
func OverlapCount(a, b keyspace.Keys) int {
	set := make(map[uint64]map[int]bool, len(a))
	for _, k := range a {
		if set[k.Bits] == nil {
			set[k.Bits] = make(map[int]bool)
		}
		set[k.Bits][k.Len] = true
	}
	n := 0
	seen := make(map[uint64]map[int]bool)
	for _, k := range b {
		if set[k.Bits][k.Len] && !seen[k.Bits][k.Len] {
			if seen[k.Bits] == nil {
				seen[k.Bits] = make(map[int]bool)
			}
			seen[k.Bits][k.Len] = true
			n++
		}
	}
	return n
}

// EstimateReplicas is the maximum-likelihood estimate of the number of
// replica peers in the current partition, derived from the key-set overlap
// of two peers that meet in a balanced split (Section 4.2). Before the
// indexing process starts every data key is replicated nmin times; if two
// peers hold n1 and n2 keys of the partition and share `overlap` of them,
// the capture-recapture estimate of the number of distinct keys is
// n1*n2/overlap, each replicated nmin times, spread over peers holding
// about sqrt(n1*n2) keys each:
//
//	replicas ≈ nmin * sqrt(n1*n2) / overlap
//
// In particular, identical key sets of any size yield nmin, matching the
// paper's example. A zero overlap (disjoint samples) indicates many more
// replicas than nmin; we return 2*nmin*sqrt(n1*n2) as a conservative cap.
func EstimateReplicas(n1, n2, overlap, nmin int) float64 {
	if n1 <= 0 || n2 <= 0 || nmin <= 0 {
		return float64(nmin)
	}
	g := math.Sqrt(float64(n1) * float64(n2))
	if overlap <= 0 {
		return 2 * float64(nmin) * g
	}
	return float64(nmin) * g / float64(overlap)
}
