// Package replication provides the data-replication substrate of the
// overlay: per-peer data stores, anti-entropy reconciliation between
// replicas of the same partition, and the maximum-likelihood estimator of
// the number of replicas in a partition that the construction protocol uses
// in place of global knowledge (Section 4.2).
package replication

import (
	"math"
	"sort"
	"sync"

	"pgrid/internal/keyspace"
)

// Item is one stored data item: an indexed key plus an opaque value (for the
// information-retrieval application the value is a document identifier, for
// the data-management application a tuple reference).
type Item struct {
	Key   keyspace.Key
	Value string
}

// Store is a peer's local data store. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	items map[string][]Item // indexed by key bit string
	count int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{items: make(map[string][]Item)}
}

// Add inserts an item. Duplicate (key, value) pairs are ignored so that
// replica reconciliation is idempotent.
func (s *Store) Add(it Item) bool {
	ks := it.Key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.items[ks] {
		if existing.Value == it.Value {
			return false
		}
	}
	s.items[ks] = append(s.items[ks], it)
	s.count++
	return true
}

// AddAll inserts a batch of items and returns how many were new.
func (s *Store) AddAll(items []Item) int {
	n := 0
	for _, it := range items {
		if s.Add(it) {
			n++
		}
	}
	return n
}

// Len returns the number of stored items.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Keys returns the distinct keys present in the store.
func (s *Store) Keys() keyspace.Keys {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(keyspace.Keys, 0, len(s.items))
	for ks := range s.items {
		out = append(out, keyspace.MustFromString(ks))
	}
	out.Sort()
	return out
}

// Items returns all items ordered by key.
func (s *Store) Items() []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Item, 0, s.count)
	for _, its := range s.items {
		out = append(out, its...)
	}
	sort.Slice(out, func(i, j int) bool {
		c := out[i].Key.Compare(out[j].Key)
		if c != 0 {
			return c < 0
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Lookup returns the items stored under the exact key.
func (s *Store) Lookup(k keyspace.Key) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Item(nil), s.items[k.String()]...)
}

// ItemsWithPrefix returns the items whose keys start with the given path.
func (s *Store) ItemsWithPrefix(p keyspace.Path) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	for ks, its := range s.items {
		if keyspace.MustFromString(ks).HasPrefix(p) {
			out = append(out, its...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out
}

// ItemsInRange returns the items whose keys fall into the range.
func (s *Store) ItemsInRange(r keyspace.Range) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	for ks, its := range s.items {
		if r.ContainsKey(keyspace.MustFromString(ks)) {
			out = append(out, its...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out
}

// CountWithPrefix returns the number of items under the given path.
func (s *Store) CountWithPrefix(p keyspace.Path) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for ks, its := range s.items {
		if keyspace.MustFromString(ks).HasPrefix(p) {
			n += len(its)
		}
	}
	return n
}

// RemovePrefix removes and returns every item whose key starts with the
// path (used to hand a sub-partition's content over to its new owner during
// a split).
func (s *Store) RemovePrefix(p keyspace.Path) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []Item
	for ks, its := range s.items {
		if keyspace.MustFromString(ks).HasPrefix(p) {
			removed = append(removed, its...)
			s.count -= len(its)
			delete(s.items, ks)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].Key.Compare(removed[j].Key) < 0 })
	return removed
}

// RetainPrefix drops every item whose key does not start with the path,
// returning the removed items (handed over to the counterpart in a split).
func (s *Store) RetainPrefix(p keyspace.Path) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []Item
	for ks, its := range s.items {
		if !keyspace.MustFromString(ks).HasPrefix(p) {
			removed = append(removed, its...)
			s.count -= len(its)
			delete(s.items, ks)
		}
	}
	return removed
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := NewStore()
	c.AddAll(s.Items())
	return c
}

// Diff returns the items present in the store but missing from the other
// store (by key and value).
func (s *Store) Diff(other *Store) []Item {
	otherItems := make(map[string]map[string]bool)
	for _, it := range other.Items() {
		ks := it.Key.String()
		if otherItems[ks] == nil {
			otherItems[ks] = make(map[string]bool)
		}
		otherItems[ks][it.Value] = true
	}
	var out []Item
	for _, it := range s.Items() {
		if !otherItems[it.Key.String()][it.Value] {
			out = append(out, it)
		}
	}
	return out
}

// Reconcile performs anti-entropy between two replica stores: both end up
// with the union of their items. It returns the number of items transferred
// in each direction (for bandwidth accounting).
func Reconcile(a, b *Store) (toA, toB int) {
	missingInB := a.Diff(b)
	missingInA := b.Diff(a)
	toB = b.AddAll(missingInB)
	toA = a.AddAll(missingInA)
	return toA, toB
}

// OverlapCount returns the number of distinct keys two key sets share.
func OverlapCount(a, b keyspace.Keys) int {
	set := make(map[uint64]map[int]bool, len(a))
	for _, k := range a {
		if set[k.Bits] == nil {
			set[k.Bits] = make(map[int]bool)
		}
		set[k.Bits][k.Len] = true
	}
	n := 0
	seen := make(map[uint64]map[int]bool)
	for _, k := range b {
		if set[k.Bits][k.Len] && !seen[k.Bits][k.Len] {
			if seen[k.Bits] == nil {
				seen[k.Bits] = make(map[int]bool)
			}
			seen[k.Bits][k.Len] = true
			n++
		}
	}
	return n
}

// EstimateReplicas is the maximum-likelihood estimate of the number of
// replica peers in the current partition, derived from the key-set overlap
// of two peers that meet in a balanced split (Section 4.2). Before the
// indexing process starts every data key is replicated nmin times; if two
// peers hold n1 and n2 keys of the partition and share `overlap` of them,
// the capture-recapture estimate of the number of distinct keys is
// n1*n2/overlap, each replicated nmin times, spread over peers holding
// about sqrt(n1*n2) keys each:
//
//	replicas ≈ nmin * sqrt(n1*n2) / overlap
//
// In particular, identical key sets of any size yield nmin, matching the
// paper's example. A zero overlap (disjoint samples) indicates many more
// replicas than nmin; we return 2*nmin*sqrt(n1*n2) as a conservative cap.
func EstimateReplicas(n1, n2, overlap, nmin int) float64 {
	if n1 <= 0 || n2 <= 0 || nmin <= 0 {
		return float64(nmin)
	}
	g := math.Sqrt(float64(n1) * float64(n2))
	if overlap <= 0 {
		return 2 * float64(nmin) * g
	}
	return float64(nmin) * g / float64(overlap)
}
