package replication

// This file binds a Store to a data directory: an append-only WAL (wal.go)
// capturing every logical mutation, plus periodic compacted snapshots
// (snapshot.go) that truncate it. Together they durably capture the store's
// items, tombstones, logical clock, GC floor, per-replica sync baselines
// and overlay metadata, so a restarted peer recovers the exact replica
// state — and in particular the sync baselines that let it re-enter
// anti-entropy through the cheap exact-delta path instead of a first-contact
// walk or a post-GC rebuild.
//
// Recovery protocol (OpenStore):
//
//  1. Load the newest valid snapshot snap-<seq>.json, if any; it covers
//     every WAL segment below <seq>.
//  2. Replay the WAL segments >= <seq> in order. Only the final record of
//     the final segment may be torn (the expected crash artifact); an
//     invalid frame anywhere earlier is reported as corruption.
//  3. Continue appending to the final segment (truncated past any torn
//     tail).
//
// Checkpoint rotates to a fresh WAL segment while holding the store lock
// (so the snapshot corresponds exactly to the segment boundary), writes the
// snapshot atomically, and deletes the now-covered segments. A crash at any
// point leaves a recoverable directory.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/wire"
)

// Baseline is a per-replica anti-entropy sync baseline: the two store
// clocks recorded after the last completed digest/delta sync with that
// replica (see overlay's sync-state tracking). Persisting baselines is what
// lets a restarted peer resume exact-delta syncs — and what closes the
// resurrection window of a rejoiner whose baseline predates a tombstone
// prune: with the baseline durable, the staleness is provable and the peer
// is rebuilt instead of walk-merged.
type Baseline struct {
	// Mine is the local store clock at the last completed sync.
	Mine uint64 `json:"mine"`
	// Theirs is the replica's store clock at that sync.
	Theirs uint64 `json:"theirs"`
}

// Defaults of PersistOptions.
const (
	// DefaultWALSyncInterval is the default fsync batching interval: an
	// append fsyncs only when this much time passed since the last fsync,
	// bounding the crash-loss window without paying a disk flush per write.
	DefaultWALSyncInterval = 100 * time.Millisecond
	// DefaultSnapshotThreshold is the default number of WAL records after
	// which CheckpointIfNeeded compacts the log into a snapshot.
	DefaultSnapshotThreshold = 16384
)

// PersistOptions parameterises a store's persistence.
type PersistOptions struct {
	// SyncInterval batches fsyncs: an append writes to the OS page cache
	// immediately but fsyncs at most once per interval. Zero means
	// DefaultWALSyncInterval. A killed process loses nothing once an
	// append returned; records appended inside the window are lost only if
	// the machine crashes. SyncAlways closes even that window at the cost
	// of one fsync per mutation.
	SyncInterval time.Duration
	// SyncAlways fsyncs on every append.
	SyncAlways bool
	// SnapshotThreshold is the number of WAL records after which
	// CheckpointIfNeeded writes a snapshot and truncates the log. Zero
	// means DefaultSnapshotThreshold.
	SnapshotThreshold int
	// Engine selects the storage engine backing the live pairs: EngineMem,
	// EngineDisk, or "" for the process default (PGRID_ENGINE). The disk
	// engine keeps its segment files in the store's data directory, next to
	// the WAL and snapshots. A directory written under one engine opens
	// cleanly under the other: the pairs migrate at open (mem reads the
	// segments back; disk starts from the inlined snapshot) and the next
	// checkpoint rewrites the directory in the new engine's shape.
	Engine string
}

// normalize fills in defaults.
func (o PersistOptions) normalize() PersistOptions {
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultWALSyncInterval
	}
	if o.SyncAlways {
		o.SyncInterval = -1 // wal fsyncs every append
	}
	if o.SnapshotThreshold <= 0 {
		o.SnapshotThreshold = DefaultSnapshotThreshold
	}
	return o
}

// Persistence is the WAL + snapshot machinery attached to a Store. It is
// created by OpenStore and driven through the store's methods (Checkpoint,
// Sync, Close); it has no exported methods of its own.
type Persistence struct {
	dir  string
	opts PersistOptions

	// mu guards the fields below. Appends additionally happen under the
	// owning store's lock, which is what orders them against each other
	// and against rotation.
	mu      sync.Mutex
	w       *wal
	seq     uint64 // sequence number of the open segment
	carried int    // records replayed from the open segment at recovery
	err     error  // sticky I/O failure; persistence is broken once set

	// ckptMu serialises whole checkpoints.
	ckptMu sync.Mutex
}

// OpenStore opens (creating if needed) the persistent store rooted at dir:
// it recovers the durable state — newest snapshot plus WAL replay, torn
// final record tolerated — and returns a store whose every future mutation
// is appended to the WAL. The directory must not be shared between live
// stores.
func OpenStore(dir string, opts PersistOptions) (*Store, error) {
	opts = opts.normalize()
	kind := opts.Engine
	switch kind {
	case "":
		kind = defaultEngineKind
	case EngineMem, EngineDisk:
	default:
		return nil, fmt.Errorf("replication: unknown storage engine %q", opts.Engine)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snap, haveSnap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	if haveSnap && snap.External && kind == EngineMem {
		// Disk-to-mem migration: inline the segment pairs into the snapshot
		// state so the ordinary load path below installs them.
		if err := inlineSegmentPairs(dir, snap); err != nil {
			return nil, err
		}
	}
	var eng Engine
	if kind == EngineDisk {
		var manifest []string
		count := 0
		if haveSnap && snap.External {
			manifest, count = snap.Manifest, snap.Count
		}
		eng, err = openDiskEngine(dir, manifest, count)
		if err != nil {
			return nil, err
		}
	} else {
		eng = newMemEngine()
	}
	s := newStoreWithEngine(eng, kind)
	var startSeq uint64
	if haveSnap {
		s.loadSnapshot(snap)
		startSeq = snap.Seq
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	openSeq := startSeq
	carried := 0
	var openValid int64
	for i, seq := range segs {
		if seq < startSeq {
			continue // covered by the snapshot; removal must have crashed
		}
		path := filepath.Join(dir, segmentName(seq))
		valid, records, err := scanWAL(path, s.applyWAL)
		if err != nil {
			return nil, fmt.Errorf("replication: replay %s: %w", path, err)
		}
		if i < len(segs)-1 {
			// Only the final segment may end in a torn record; a short
			// frame in an earlier segment is corruption, not a crash tail.
			if fi, statErr := os.Stat(path); statErr == nil && fi.Size() != valid {
				return nil, fmt.Errorf("replication: %s: %w", path, errWALCorrupt)
			}
		}
		if seq >= openSeq {
			openSeq = seq
			carried = records
			openValid = valid
		}
	}
	w, err := openWAL(filepath.Join(dir, segmentName(openSeq)), opts.SyncInterval, openValid)
	if err != nil {
		return nil, err
	}
	// The segment file may have just been created: make its directory
	// entry durable, or fsynced appends could vanish with the whole file
	// on power loss.
	if err := syncDir(dir); err != nil {
		_ = w.close()
		return nil, err
	}
	s.persist = &Persistence{dir: dir, opts: opts, w: w, seq: openSeq, carried: carried}
	return s, nil
}

// append frames one record into the current segment. Failures are sticky:
// once an append fails the persistence is considered broken and the error
// resurfaces from Sync, Checkpoint and Close.
func (p *Persistence) append(payload []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	if err := p.w.append(payload); err != nil {
		p.err = err
	}
}

// records returns the number of records in the open segment (replayed plus
// appended).
func (p *Persistence) records() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.carried + p.w.records
}

// rotate syncs and closes the open segment and starts the next one.
// Callers must hold the owning store's lock so no append slips between the
// captured snapshot state and the new segment.
func (p *Persistence) rotate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if err := p.w.close(); err != nil {
		p.err = err
		return err
	}
	p.seq++
	w, err := openWAL(filepath.Join(p.dir, segmentName(p.seq)), p.opts.SyncInterval, 0)
	if err != nil {
		p.err = err
		return err
	}
	// Make the new segment's directory entry durable before any record
	// lands in it.
	if err := syncDir(p.dir); err != nil {
		p.err = err
		return err
	}
	p.w = w
	p.carried = 0
	return nil
}

// sync makes every appended record durable.
func (p *Persistence) sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if err := p.w.sync(); err != nil {
		p.err = err
	}
	return p.err
}

// close syncs and closes the open segment.
func (p *Persistence) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.w.close()
	if p.err == nil {
		p.err = err
	}
	return p.err
}

// --- Store-facing API -------------------------------------------------------

// Persistent reports whether the store is backed by a WAL.
func (s *Store) Persistent() bool { return s.persist != nil }

// PersistenceErr returns the sticky persistence failure (nil while
// healthy, and always nil for in-memory stores). Once a WAL append or
// rotation fails — disk full, I/O error — persistence stops accepting
// records: the on-disk state remains a consistent prefix of history while
// the in-memory store keeps serving, so mutations applied after the
// failure are lost on restart. The error also resurfaces from Sync,
// Checkpoint and Close; the overlay's maintenance tick reports it through
// TickReport.PersistenceErr and Metrics.PersistenceErrors so deployments
// can alarm and fail the peer over instead of discovering the rollback at
// the next restart.
func (s *Store) PersistenceErr() error {
	if ee, ok := s.eng.(interface{ Err() error }); ok {
		if err := ee.Err(); err != nil {
			return err
		}
	}
	if s.persist == nil {
		return nil
	}
	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	return s.persist.err
}

// Sync flushes and fsyncs the WAL, making every mutation applied so far
// durable. It is a no-op for in-memory stores.
func (s *Store) Sync() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.sync()
}

// Close syncs and closes the store's persistence, then releases the
// storage engine (for a throwaway disk engine this removes its temp
// directory). The store must not be used afterwards.
func (s *Store) Close() error {
	var perr error
	if s.persist != nil {
		perr = s.persist.close()
	}
	eerr := s.eng.Close()
	if perr != nil {
		return perr
	}
	return eerr
}

// WALRecords returns the number of records in the current WAL segment
// (0 for in-memory stores) — the input to the snapshot threshold.
func (s *Store) WALRecords() int {
	if s.persist == nil {
		return 0
	}
	return s.persist.records()
}

// Checkpoint compacts the store's persistence: it captures a snapshot of
// the full durable state at a fresh WAL segment boundary, writes it
// atomically, and deletes the WAL segments the snapshot covers. It is a
// no-op for non-persistent stores.
//
// On the disk engine the pairs are not inlined into the snapshot: the
// memtable is frozen at the same boundary, flushed to a new segment file
// (with compaction once enough segments accumulate) outside the store
// lock, and the snapshot records the resulting segment manifest. Segment
// files replaced by compaction are deleted only after the snapshot naming
// their replacement is durable, so a crash at any point leaves a manifest
// whose files all exist.
func (s *Store) Checkpoint() error {
	p := s.persist
	if p == nil {
		return nil
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	disk, isDisk := s.eng.(*diskEngine)
	s.mu.Lock()
	st := s.snapshotStateLocked(!isDisk)
	if isDisk {
		disk.freeze()
	}
	err := p.rotate()
	st.Seq = p.seq
	s.mu.Unlock()
	if err != nil {
		return err
	}
	var cleanup func()
	if isDisk {
		manifest, cl, ferr := disk.flushFrozen()
		if ferr != nil {
			// The frozen memtable stays pending (retried by the next
			// checkpoint); the rotated WAL still covers everything since the
			// previous snapshot, so no state is lost.
			return ferr
		}
		st.Manifest = manifest
		cleanup = cl
	}
	if err := writeSnapshot(p.dir, st); err != nil {
		return err
	}
	if cleanup != nil {
		cleanup()
	}
	if !isDisk {
		// A mem-engine snapshot inlines every pair: segment files left over
		// from an earlier disk-engine era are now unreferenced.
		removeSegmentFiles(p.dir)
	}
	removeBelow(p.dir, st.Seq)
	return nil
}

// removeSegmentFiles deletes every storage-engine segment file in dir (best
// effort; only called when the current snapshot references none).
func removeSegmentFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "seg-", ".seg"); ok {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// inlineSegmentPairs rewrites an external-pairs snapshot state into inline
// form by merging the manifest's segment files (disk-to-mem migration at
// open).
func inlineSegmentPairs(dir string, st *snapshotState) error {
	var segs []*segment
	defer func() {
		for _, g := range segs {
			g.close()
		}
	}()
	for _, name := range st.Manifest {
		g, err := openSegment(filepath.Join(dir, name), name)
		if err != nil {
			return fmt.Errorf("replication: open segment %s: %w", name, err)
		}
		segs = append(segs, g)
	}
	sources := make([]pairSource, 0, len(segs))
	for i := len(segs) - 1; i >= 0; i-- { // newest first: merge keeps the newest state
		it, err := segs[i].iter("", "")
		if err != nil {
			return err
		}
		sources = append(sources, it)
	}
	err := mergeSources(sources, "", func(rec segRec) bool {
		if !rec.del {
			st.Items = append(st.Items, snapItem{K: rec.key, V: rec.value, Gen: rec.gen, Ver: rec.ver})
		}
		return true
	})
	if err != nil {
		return err
	}
	// Inline mode rebuilds the digest tree from the installed pairs; the
	// carried cells are no longer needed.
	st.External = false
	st.Manifest, st.Digests = nil, nil
	st.Count = 0
	return nil
}

// CheckpointIfNeeded runs Checkpoint once the current WAL segment exceeds
// the snapshot threshold, and reports whether it did. The overlay's
// maintenance tick calls this, so WAL growth is bounded by write volume
// between ticks.
func (s *Store) CheckpointIfNeeded() (bool, error) {
	p := s.persist
	if p == nil {
		return false, nil
	}
	if p.records() < p.opts.SnapshotThreshold {
		return false, nil
	}
	if err := s.Checkpoint(); err != nil {
		return false, err
	}
	return true, nil
}

// RecordBaseline durably records the anti-entropy sync baseline for a
// replica (keyed by its transport address). Baselines ride the same WAL and
// snapshots as the data, so a restarted peer can resume exact-delta syncs.
// The zero Baseline deletes the entry (recording "no baseline" and holding
// one are equivalent on recovery), which is how the overlay's sync-state
// compaction keeps the durable map bounded under long-term churn.
func (s *Store) RecordBaseline(replica string, b Baseline) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.baselines[replica]; ok && old == b {
		return
	}
	if b == (Baseline{}) {
		if _, ok := s.baselines[replica]; !ok {
			return
		}
		delete(s.baselines, replica)
		var e walEncoder
		e.op(opBaseline)
		e.string(replica)
		e.uint(0)
		e.uint(0)
		s.logLocked(e.buf)
		return
	}
	if s.baselines == nil {
		s.baselines = make(map[string]Baseline)
	}
	s.baselines[replica] = b
	var e walEncoder
	e.op(opBaseline)
	e.string(replica)
	e.uint(b.Mine)
	e.uint(b.Theirs)
	s.logLocked(e.buf)
}

// Baselines returns a copy of the recorded per-replica sync baselines
// (recovered ones included).
func (s *Store) Baselines() map[string]Baseline {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Baseline, len(s.baselines))
	for k, v := range s.baselines {
		out[k] = v
	}
	return out
}

// SetMeta durably records one small key/value metadata pair (the overlay
// persists its partition path here). Re-recording an unchanged value is a
// no-op, so callers can invoke it opportunistically.
func (s *Store) SetMeta(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.metadata[key]; ok && old == value {
		return
	}
	if s.metadata == nil {
		s.metadata = make(map[string]string)
	}
	s.metadata[key] = value
	var e walEncoder
	e.op(opMeta)
	e.string(key)
	e.string(value)
	s.logLocked(e.buf)
}

// Meta returns the recorded metadata value for key ("" when absent).
func (s *Store) Meta(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metadata[key]
}

// --- WAL record construction (called with s.mu held) ------------------------

// logLocked appends an encoded record to the WAL if persistence is
// attached. Callers must hold s.mu, which orders records exactly like the
// mutations they describe.
func (s *Store) logLocked(payload []byte) {
	if s.persist != nil && !s.muted {
		s.persist.append(payload)
	}
}

// logPairLocked logs a live upsert (opAdd) or tombstone upsert (opTomb).
func (s *Store) logPairLocked(op walOp, ks, value string, gen uint64) {
	if s.persist == nil || s.muted {
		return
	}
	var e walEncoder
	e.op(op)
	e.pair(ks, value, gen)
	s.logLocked(e.buf)
}

// prunedPair identifies one tombstone removed by GC.
type prunedPair struct{ ks, value string }

// logPruneLocked logs one GC compaction outcome.
func (s *Store) logPruneLocked(pruned []prunedPair, floor uint64) {
	if s.persist == nil || len(pruned) == 0 {
		return
	}
	var e walEncoder
	e.op(opPrune)
	e.uint(uint64(len(pruned)))
	for _, pr := range pruned {
		e.string(pr.ks)
		e.string(pr.value)
	}
	e.uint(floor)
	s.logLocked(e.buf)
}

// logPrefixLocked logs a RemovePrefix/RetainPrefix handover.
func (s *Store) logPrefixLocked(op walOp, p keyspace.Path) {
	if s.persist == nil {
		return
	}
	var e walEncoder
	e.op(op)
	e.string(string(p))
	s.logLocked(e.buf)
}

// logReplaceLocked logs a wholesale partition rebuild with its inputs.
func (s *Store) logReplaceLocked(p keyspace.Path, items, tombs []Item) {
	if s.persist == nil {
		return
	}
	var e walEncoder
	e.op(opReplace)
	e.string(string(p))
	e.uint(uint64(len(items)))
	for _, it := range items {
		e.pair(it.Key.String(), it.Value, it.Gen)
	}
	e.uint(uint64(len(tombs)))
	for _, it := range tombs {
		e.pair(it.Key.String(), it.Value, it.Gen)
	}
	s.logLocked(e.buf)
}

// --- WAL replay --------------------------------------------------------------

// applyWAL decodes one record payload and re-applies its mutation. Replay
// happens before persistence is attached, so nothing is re-logged; because
// the store's mutation logic is deterministic given identical prior state,
// replaying the full record sequence reproduces items, tombstones, per-pair
// versions, the logical clock and the GC floor exactly. (Tombstone
// wall-clock ages restart from the replay time, which can only delay age-
// based GC — the safe direction.)
func (s *Store) applyWAL(payload []byte) error {
	if len(payload) == 0 {
		return errWALCorrupt
	}
	d := wire.NewDecoder(payload[1:])
	s.mu.Lock()
	defer s.mu.Unlock()
	switch walOp(payload[0]) {
	case opAdd:
		ks, value, gen := walPair(d)
		if d.Err() == nil {
			s.addLocked(ks, Item{Key: keyspace.MustFromString(ks), Value: value, Gen: gen})
		}
	case opTomb:
		ks, value, gen := walPair(d)
		if d.Err() == nil {
			s.applyTombLocked(ks, value, gen)
		}
	case opPrune:
		n := d.Uvarint()
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			ks := d.String()
			value := d.String()
			if d.Err() != nil {
				break
			}
			if t, ok := s.tombs[ks][value]; ok {
				s.digestXorLocked(ks, tombHash(ks, value, t.gen), -1)
				delete(s.tombs[ks], value)
				if len(s.tombs[ks]) == 0 {
					delete(s.tombs, ks)
				}
			}
		}
		floor := d.Uvarint()
		if d.Err() == nil {
			if floor > s.gcFloor {
				s.gcFloor = floor
			}
			if n > 0 {
				s.clock++
			}
		}
	case opRemovePrefix:
		p := keyspace.Path(d.String())
		if d.Err() == nil {
			s.removePrefixLocked(p)
		}
	case opRetainPrefix:
		p := keyspace.Path(d.String())
		if d.Err() == nil {
			s.retainPrefixLocked(p)
		}
	case opReplace:
		p := keyspace.Path(d.String())
		items := walItems(d)
		tombs := walItems(d)
		if d.Err() == nil {
			s.replaceWithinLocked(p, items, tombs)
		}
	case opBaseline:
		replica := d.String()
		b := Baseline{Mine: d.Uvarint(), Theirs: d.Uvarint()}
		if d.Err() == nil {
			if b == (Baseline{}) {
				delete(s.baselines, replica)
				break
			}
			if s.baselines == nil {
				s.baselines = make(map[string]Baseline)
			}
			s.baselines[replica] = b
		}
	case opMeta:
		key := d.String()
		value := d.String()
		if d.Err() == nil {
			if s.metadata == nil {
				s.metadata = make(map[string]string)
			}
			s.metadata[key] = value
		}
	case opMutSeen:
		id := d.Uvarint()
		if d.Err() == nil {
			s.markMutationLocked(id)
		}
	default:
		return fmt.Errorf("replication: unknown WAL op %d", payload[0])
	}
	return d.Err()
}

// walItems decodes a length-prefixed item list. The initial capacity is
// bounded so a corrupt count cannot drive a huge allocation before the
// decoder runs out of buffer.
func walItems(d *wire.Decoder) []Item {
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(maxWALRecord) {
		return nil
	}
	hint := n
	if hint > 4096 {
		hint = 4096
	}
	out := make([]Item, 0, hint)
	for i := uint64(0); i < n; i++ {
		ks, value, gen := walPair(d)
		if d.Err() != nil {
			return nil
		}
		out = append(out, Item{Key: keyspace.MustFromString(ks), Value: value, Gen: gen})
	}
	return out
}

// --- snapshot capture and restore -------------------------------------------

// snapshotStateLocked serialises the store's durable state (callers must
// hold s.mu). With inlinePairs the live pairs are scanned out of the engine
// into the snapshot (mem engine); without it the snapshot carries the pair
// count and the dense digest tree instead, and Checkpoint fills in the
// segment manifest after the flush (disk engine).
func (s *Store) snapshotStateLocked(inlinePairs bool) *snapshotState {
	st := &snapshotState{Clock: s.clock, GCFloor: s.gcFloor}
	if inlinePairs {
		st.Items = make([]snapItem, 0, s.eng.Len())
		s.eng.ScanPrefix("", func(rec PairRecord) bool {
			st.Items = append(st.Items, snapItem{K: rec.Key, V: rec.Value, Gen: rec.Gen, Ver: rec.Ver})
			return true
		})
	} else {
		st.External = true
		st.Count = s.eng.Len()
		st.Digests = make([]snapDigest, 0, len(s.dig))
		for p, cell := range s.dig {
			st.Digests = append(st.Digests, snapDigest{P: densePrefixString(p), H: cell.hash, N: cell.n})
		}
	}
	for ks, vals := range s.tombs {
		for v, t := range vals {
			st.Tombs = append(st.Tombs, snapTomb{K: ks, V: v, Gen: t.gen, Born: t.born, At: t.at.UnixNano(), Ver: t.ver})
		}
	}
	if len(s.baselines) > 0 {
		st.Baselines = make(map[string]Baseline, len(s.baselines))
		for k, v := range s.baselines {
			st.Baselines[k] = v
		}
	}
	if len(s.metadata) > 0 {
		st.Meta = make(map[string]string, len(s.metadata))
		for k, v := range s.metadata {
			st.Meta[k] = v
		}
	}
	st.MutLog = s.mutationRingLocked()
	return st
}

// loadSnapshot installs a decoded snapshot into the (empty, un-attached)
// store. Inline snapshots rebuild the digest tree pair by pair; external
// ones install the carried dense cells directly — the pairs are already in
// the engine's segments and are never scanned.
func (s *Store) loadSnapshot(st *snapshotState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.External {
		if s.dig == nil && len(st.Digests) > 0 {
			s.dig = make(map[uint16]digestCell, len(st.Digests))
		}
		for _, dc := range st.Digests {
			s.dig[densePrefixIndex(dc.P)] = digestCell{hash: dc.H, n: dc.N}
		}
		// The carried cells already include the tombstones' contributions.
		if s.tombs == nil && len(st.Tombs) > 0 {
			s.tombs = make(map[string]map[string]tombstone)
		}
		for _, tb := range st.Tombs {
			if s.tombs[tb.K] == nil {
				s.tombs[tb.K] = make(map[string]tombstone)
			}
			s.tombs[tb.K][tb.V] = tombstone{gen: tb.Gen, born: tb.Born, at: time.Unix(0, tb.At), ver: tb.Ver}
		}
	} else {
		for _, si := range st.Items {
			s.digestXorLocked(si.K, liveHash(si.K, si.V, si.Gen), 1)
			s.eng.Put(PairRecord{Key: si.K, Value: si.V, Gen: si.Gen, Ver: si.Ver}, true)
		}
		if s.tombs == nil && len(st.Tombs) > 0 {
			s.tombs = make(map[string]map[string]tombstone)
		}
		for _, tb := range st.Tombs {
			if s.tombs[tb.K] == nil {
				s.tombs[tb.K] = make(map[string]tombstone)
			}
			s.digestXorLocked(tb.K, tombHash(tb.K, tb.V, tb.Gen), 1)
			s.tombs[tb.K][tb.V] = tombstone{gen: tb.Gen, born: tb.Born, at: time.Unix(0, tb.At), ver: tb.Ver}
		}
	}
	s.clock = st.Clock
	s.gcFloor = st.GCFloor
	if len(st.Baselines) > 0 {
		s.baselines = make(map[string]Baseline, len(st.Baselines))
		for k, v := range st.Baselines {
			s.baselines[k] = v
		}
	}
	if len(st.Meta) > 0 {
		s.metadata = make(map[string]string, len(st.Meta))
		for k, v := range st.Meta {
			s.metadata[k] = v
		}
	}
	for _, id := range st.MutLog {
		s.markMutationLocked(id)
	}
}
