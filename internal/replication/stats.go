package replication

// This file is the store's observability read path: plain-value snapshots
// of the gauges that were previously invisible outside the package (live
// pair count, tombstones, logical clock, WAL shape, disk-engine segment and
// memtable sizes), consumed by the overlay's MetricsSnapshot and ultimately
// the HTTP gateway's Prometheus endpoint. Every field is read under the
// appropriate lock and copied out, so a scrape never observes a
// half-updated figure and never blocks a mutation for longer than one
// gauge read.

import (
	"os"
	"strings"
)

// EngineStats describes a storage engine's internal shape. All fields are
// zero for the in-memory engine, whose only gauge is the store's own item
// count.
type EngineStats struct {
	// Segments is the number of immutable sorted segment files currently
	// serving reads (disk engine).
	Segments int
	// MemtableLen is the number of entries in the active memtable,
	// including delete markers shadowing segment records (disk engine).
	MemtableLen int
	// FrozenLen is the number of entries frozen for an in-progress flush
	// (disk engine; 0 outside a checkpoint).
	FrozenLen int
}

// StoreStats is a point-in-time snapshot of a store's size and persistence
// gauges.
type StoreStats struct {
	// Items is the number of live pairs.
	Items int
	// Tombstones is the number of delete tombstones retained.
	Tombstones int
	// Clock is the store's logical clock (total local mutations).
	Clock uint64
	// GCFloor is the clock of the latest tombstone prune (0 = never).
	GCFloor uint64
	// Engine is the storage engine kind (EngineMem or EngineDisk).
	Engine string
	// EngineStats describes the engine's internal shape (disk engine only).
	EngineStats EngineStats
	// Persistent reports whether the store is WAL-backed.
	Persistent bool
	// WALRecords is the number of records in the current WAL segment — the
	// input to the snapshot threshold (0 for in-memory stores).
	WALRecords int
	// WALSegments is the number of WAL segment files on disk. It stays 1
	// in steady state (checkpoints delete covered segments); growth means
	// checkpointing has stalled or failed.
	WALSegments int
}

// Stats returns a consistent snapshot of the store's gauges. Safe to call
// concurrently with mutations; intended for metrics scrapes.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Items:      s.Len(),
		Tombstones: s.TombstoneCount(),
		Clock:      s.Clock(),
		GCFloor:    s.GCFloor(),
		Engine:     s.engKind,
		Persistent: s.persist != nil,
		WALRecords: s.WALRecords(),
	}
	if es, ok := s.eng.(interface{ Stats() EngineStats }); ok {
		st.EngineStats = es.Stats()
	}
	if s.persist != nil {
		st.WALSegments = s.persist.segmentCount()
	}
	return st
}

// segmentCount counts the WAL segment files in the persistence directory.
// A readdir per call is fine for its only caller, the metrics scrape path.
func (p *Persistence) segmentCount() int {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			n++
		}
	}
	return n
}

// Stats reports the disk engine's internal shape for metrics scrapes.
func (e *diskEngine) Stats() EngineStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return EngineStats{
		Segments:    len(e.segs),
		MemtableLen: len(e.mem),
		FrozenLen:   len(e.frozen),
	}
}
