package core

import (
	"math"
	"math/rand"
	"testing"
)

func runTrials(t *testing.T, cfg Config, trials int, seed int64) (meanDev, meanInter float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var devSum, interSum float64
	for i := 0; i < trials; i++ {
		res, err := Run(cfg, r)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.N0+res.N1 != cfg.N {
			t.Fatalf("not all peers decided: %d+%d != %d", res.N0, res.N1, cfg.N)
		}
		devSum += res.Deviation(cfg.P)
		interSum += float64(res.Interactions)
	}
	return devSum / float64(trials), interSum / float64(trials)
}

func TestEagerBalanced(t *testing.T) {
	cfg := Config{N: 1000, P: 0.5, Strategy: StrategyEager}
	dev, inter := runTrials(t, cfg, 30, 1)
	if math.Abs(dev) > 25 {
		t.Errorf("eager mean deviation %v too large for p=0.5", dev)
	}
	// Theory: ln2 * n ≈ 693 interactions.
	if inter < 600 || inter > 800 {
		t.Errorf("eager interactions %v, want ≈693", inter)
	}
}

func TestAEPKnownPMatchesFraction(t *testing.T) {
	for _, p := range []float64{0.1, 0.2, 0.35, 0.5} {
		cfg := Config{N: 1000, P: p, Samples: 0, Strategy: StrategyAEP}
		dev, _ := runTrials(t, cfg, 30, 2)
		if math.Abs(dev) > 30 {
			t.Errorf("AEP(p=%v) mean deviation %v exceeds 3%% of n", p, dev)
		}
	}
}

func TestAEPInteractionsIndependentOfPOnBalancedBranch(t *testing.T) {
	cfg := Config{N: 1000, P: 0.35, Samples: 0, Strategy: StrategyAEP}
	_, i35 := runTrials(t, cfg, 20, 3)
	cfg.P = 0.5
	_, i50 := runTrials(t, cfg, 20, 4)
	if math.Abs(i35-i50)/i50 > 0.15 {
		t.Errorf("interactions should be ≈equal on balanced branch: %v vs %v", i35, i50)
	}
	// And close to n*ln2.
	want, _ := TheoreticalInteractions(0.5, 1000)
	if math.Abs(i50-want)/want > 0.15 {
		t.Errorf("interactions %v far from theory %v", i50, want)
	}
}

func TestAEPMoreInteractionsForSkewedLoad(t *testing.T) {
	cfg := Config{N: 1000, P: 0.05, Samples: 0, Strategy: StrategyAEP}
	_, iSkew := runTrials(t, cfg, 20, 5)
	cfg.P = 0.5
	_, iBal := runTrials(t, cfg, 20, 6)
	if iSkew <= iBal {
		t.Errorf("skewed load should need more interactions: %v vs %v", iSkew, iBal)
	}
}

func TestAUTMatchesFractionButCostsMore(t *testing.T) {
	cfgAUT := Config{N: 1000, P: 0.5, Samples: 0, Strategy: StrategyAUT}
	devAUT, interAUT := runTrials(t, cfgAUT, 30, 7)
	if math.Abs(devAUT) > 30 {
		t.Errorf("AUT deviation %v too large", devAUT)
	}
	cfgAEP := Config{N: 1000, P: 0.5, Samples: 0, Strategy: StrategyAEP}
	_, interAEP := runTrials(t, cfgAEP, 30, 8)
	if interAUT <= interAEP {
		t.Errorf("AUT (%v) should cost more interactions than AEP (%v) at p=0.5", interAUT, interAEP)
	}
	// Paper: AUT ≈ 2 ln2 per peer vs ln2 for eager/AEP at p=1/2.
	ratio := interAUT / interAEP
	if ratio < 1.4 || ratio > 3.0 {
		t.Errorf("AUT/AEP interaction ratio %v, expected ≈2", ratio)
	}
}

func TestAUTCostGrowsSlowerWithSkewThanAEP(t *testing.T) {
	// Figure 5: AEP's interaction count rises steeply for small p (the
	// alpha branch wastes balanced-split opportunities) while AUT's stays
	// comparatively flat, so AUT becomes competitive for very skewed loads.
	// We compare the relative growth of each algorithm between p=0.5 and
	// p=0.05 rather than absolute values.
	_, autSkew := runTrials(t, Config{N: 1000, P: 0.05, Samples: 10, Strategy: StrategyAUT}, 15, 9)
	_, autBal := runTrials(t, Config{N: 1000, P: 0.5, Samples: 10, Strategy: StrategyAUT}, 15, 9)
	_, aepSkew := runTrials(t, Config{N: 1000, P: 0.05, Samples: 10, Strategy: StrategyAEP}, 15, 10)
	_, aepBal := runTrials(t, Config{N: 1000, P: 0.5, Samples: 10, Strategy: StrategyAEP}, 15, 10)
	autGrowth := autSkew / autBal
	aepGrowth := aepSkew / aepBal
	if autGrowth >= aepGrowth {
		t.Errorf("AUT cost growth (%v) should be below AEP cost growth (%v) as skew increases", autGrowth, aepGrowth)
	}
}

func TestReferentialIntegrityAllStrategies(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, s := range []Strategy{StrategyAEP, StrategyCOR, StrategyAUT, StrategyEager, StrategyHeuristic} {
		p := 0.5
		if s == StrategyAEP || s == StrategyCOR {
			p = 0.3
		}
		res, err := Run(Config{N: 400, P: p, Samples: 10, Strategy: s}, r)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !res.ReferentialIntegrity {
			t.Errorf("%v: referential integrity violated", s)
		}
	}
}

func TestCORReducesSamplingBias(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy probability-table comparison (~9s); CI runs the full suite without -short")
	}
	// Figure 4: with sampled estimates, plain AEP shows a systematic
	// positive deviation while COR removes most of it. We check that |bias|
	// of COR is at most that of AEP plus a small tolerance, aggregated over
	// several skewed fractions.
	var aepBias, corBias float64
	for _, p := range []float64{0.15, 0.2, 0.25, 0.3} {
		dA, _ := runTrials(t, Config{N: 1000, P: p, Samples: 10, Strategy: StrategyAEP}, 60, 12)
		dC, _ := runTrials(t, Config{N: 1000, P: p, Samples: 10, Strategy: StrategyCOR}, 60, 13)
		aepBias += math.Abs(dA)
		corBias += math.Abs(dC)
	}
	if corBias > aepBias+5 {
		t.Errorf("correction should not increase bias: AEP=%v COR=%v", aepBias, corBias)
	}
}

func TestRunValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Run(Config{N: 1, P: 0.5}, r); err == nil {
		t.Error("expected error for n<2")
	}
	if _, err := Run(Config{N: 10, P: 0}, r); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := Run(Config{N: 10, P: 0.9}, r); err == nil {
		t.Error("expected error for p>0.5")
	}
}

func TestDecisionString(t *testing.T) {
	if Undecided.String() != "undecided" || Zero.String() != "0" || One.String() != "1" {
		t.Error("Decision.String wrong")
	}
	if Decision(9).String() == "" {
		t.Error("unknown decision should still render")
	}
	if Zero.Opposite() != One || One.Opposite() != Zero || Undecided.Opposite() != Undecided {
		t.Error("Opposite wrong")
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		StrategyAEP: "AEP", StrategyCOR: "COR", StrategyAUT: "AUT",
		StrategyEager: "EAGER", StrategyHeuristic: "HEUR",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestHeuristicStrategyDegradesBalance(t *testing.T) {
	// Figure 6(d): heuristic probabilities degrade the match between peer
	// fraction and load fraction for skewed loads.
	p := 0.2
	devTheory, _ := runTrials(t, Config{N: 1000, P: p, Samples: 0, Strategy: StrategyAEP}, 40, 14)
	devHeur, _ := runTrials(t, Config{N: 1000, P: p, Samples: 0, Strategy: StrategyHeuristic}, 40, 15)
	if math.Abs(devHeur) <= math.Abs(devTheory) {
		t.Errorf("heuristic (%v) should deviate more than theory (%v)", devHeur, devTheory)
	}
}

func TestRemoveValueHelpers(t *testing.T) {
	s := []int{5, 6, 7, 8}
	s = removeValue(s, 6, 1)
	if len(s) != 3 {
		t.Fatal("removeValue length")
	}
	for _, v := range s {
		if v == 6 {
			t.Fatal("value not removed")
		}
	}
	s = removeValueScan(s, 8)
	for _, v := range s {
		if v == 8 {
			t.Fatal("scan removal failed")
		}
	}
	// Removing a missing value is a no-op.
	if got := removeValueScan([]int{1, 2}, 9); len(got) != 2 {
		t.Error("missing value removal should be a no-op")
	}
	// removeValue with a stale index falls back to scanning.
	s2 := []int{1, 2, 3}
	s2 = removeValue(s2, 3, 0)
	if len(s2) != 2 {
		t.Error("stale-index removal failed")
	}
}
