package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestMVAMatchesFraction(t *testing.T) {
	for _, p := range []float64{0.05, 0.1, 0.2, 0.31, 0.4, 0.5} {
		res, err := MVA(p, 1000)
		if err != nil {
			t.Fatalf("MVA(%v): %v", p, err)
		}
		if math.Abs(res.P0+res.P1-1000) > 1 {
			t.Errorf("MVA(%v): total %v", p, res.P0+res.P1)
		}
		if math.Abs(res.P0-1000*p) > 20 {
			t.Errorf("MVA(%v): P0 = %v, want ≈%v", p, res.P0, 1000*p)
		}
	}
}

func TestMVAStepsMatchTheory(t *testing.T) {
	res, err := MVA(0.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := TheoreticalInteractions(0.5, 1000)
	if math.Abs(float64(res.Steps)-want) > 0.1*want {
		t.Errorf("MVA steps %d, theory %v", res.Steps, want)
	}
	// Skewed: more steps.
	resSkew, _ := MVA(0.05, 1000)
	if resSkew.Steps <= res.Steps {
		t.Errorf("skewed MVA should take more steps: %d vs %d", resSkew.Steps, res.Steps)
	}
}

func TestMVAInvalidFraction(t *testing.T) {
	if _, err := MVA(0, 100); err == nil {
		t.Error("expected error")
	}
	if _, err := MVA(0.8, 100); err == nil {
		t.Error("expected error")
	}
}

func TestSampledMVAShowsBias(t *testing.T) {
	// With sampling, the mean-value model acquires a systematic deviation
	// for skewed p (this is what Figure 4's SAM curve shows); for p=0.5 the
	// bias is negligible by symmetry.
	r := rand.New(rand.NewSource(21))
	devAt := func(p float64) float64 {
		sum := 0.0
		const trials = 40
		for i := 0; i < trials; i++ {
			res, err := SampledMVA(p, 1000, 10, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.P0 - 1000*p
		}
		return sum / trials
	}
	biasBalanced := devAt(0.5)
	if math.Abs(biasBalanced) > 20 {
		t.Errorf("balanced SAM bias %v should be small (estimates mirror symmetrically)", biasBalanced)
	}
	biasSkewed := devAt(0.2)
	if math.Abs(biasSkewed) < math.Abs(biasBalanced) {
		t.Logf("note: skewed bias %v not larger than balanced %v (can happen with few trials)", biasSkewed, biasBalanced)
	}
}

func TestSampledMVAInvalid(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := SampledMVA(0, 100, 10, r); err == nil {
		t.Error("expected error")
	}
}

func TestEstimateFraction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if EstimateFraction(0.3, 0, r) != 0.3 {
		t.Error("s=0 should return exact value")
	}
	sum := 0.0
	const trials = 2000
	for i := 0; i < trials; i++ {
		e := EstimateFraction(0.3, 10, r)
		if e < 0 || e > 1 {
			t.Fatalf("estimate out of range: %v", e)
		}
		sum += e
	}
	if math.Abs(sum/trials-0.3) > 0.02 {
		t.Errorf("estimator biased: mean %v", sum/trials)
	}
}

func TestCanonicalAndClampFraction(t *testing.T) {
	if math.Abs(clampFraction(0.7)-0.3) > 1e-12 {
		t.Error("should mirror values above 0.5")
	}
	if clampFraction(0) <= 0 {
		t.Error("should nudge zero inward")
	}
	if clampFraction(0.4) != 0.4 {
		t.Error("should pass through valid values")
	}
	if clampFraction(1) < 0 {
		t.Error("estimate of 1 should mirror to a non-negative value")
	}
	if m, p := canonicalFraction(0.7); m != One || math.Abs(p-0.3) > 1e-12 {
		t.Errorf("canonicalFraction(0.7) = %v,%v", m, p)
	}
	if m, p := canonicalFraction(0.3); m != Zero || p != 0.3 {
		t.Errorf("canonicalFraction(0.3) = %v,%v", m, p)
	}
	if m, _ := canonicalFraction(0.5); m != Zero {
		t.Errorf("canonicalFraction(0.5) minority = %v", m)
	}
}

func TestAutonomousTheoreticalInteractions(t *testing.T) {
	if got := AutonomousTheoreticalInteractions(1000); math.Abs(got-2*math.Ln2*1000) > 1e-9 {
		t.Errorf("AUT theoretical interactions = %v", got)
	}
	eager, _ := TheoreticalInteractions(0.5, 1000)
	if AutonomousTheoreticalInteractions(1000) <= eager {
		t.Error("AUT must cost more than eager at p=1/2")
	}
}
