package core

import (
	"math"
	"math/rand"
	"testing"

	"pgrid/internal/keyspace"
)

func keysFromFloats(xs []float64) keyspace.Keys {
	ks := make(keyspace.Keys, len(xs))
	for i, x := range xs {
		ks[i] = keyspace.MustFromFloat(x, 32)
	}
	return ks
}

func TestDeciderEstimateP0(t *testing.T) {
	d := Decider{}
	r := rand.New(rand.NewSource(1))
	// 3 keys below 0.5 and 1 above: p0 = 0.75 at the root.
	keys := keysFromFloats([]float64{0.1, 0.2, 0.3, 0.8})
	if got := d.EstimateP0(keys, keyspace.Root, r); got != 0.75 {
		t.Errorf("EstimateP0 = %v, want 0.75", got)
	}
	// Under prefix "0": keys 0.1, 0.2 are in [0,0.25) and 0.3 in [0.25,0.5).
	if got := d.EstimateP0(keys, "0", r); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("EstimateP0(0) = %v, want 2/3", got)
	}
	// No keys under the prefix: fall back to 0.5.
	if got := d.EstimateP0(keys, "111", r); got != 0.5 {
		t.Errorf("EstimateP0(empty) = %v, want 0.5", got)
	}
}

func TestDeciderEstimateWithSampling(t *testing.T) {
	d := Decider{Samples: 5}
	r := rand.New(rand.NewSource(2))
	keys := make(keyspace.Keys, 0, 1000)
	for i := 0; i < 1000; i++ {
		x := 0.9 * rand.New(rand.NewSource(int64(i))).Float64()
		keys = append(keys, keyspace.MustFromFloat(x, 32))
	}
	// Average over many estimates should be near the true fraction.
	sum := 0.0
	const trials = 300
	for i := 0; i < trials; i++ {
		sum += d.EstimateP0(keys, keyspace.Root, r)
	}
	truth, _, _ := keys.SplitFraction(keyspace.Root)
	if math.Abs(sum/trials-truth) > 0.05 {
		t.Errorf("sampled estimate mean %v, true %v", sum/trials, truth)
	}
}

func TestForEstimateMirroring(t *testing.T) {
	d := Decider{}
	// p0 = 0.3: minority is partition 0.
	sd := d.ForEstimate(0.3)
	if sd.Minority != Zero || sd.Majority() != One {
		t.Errorf("minority should be 0 for p0=0.3: %+v", sd)
	}
	// p0 = 0.7: minority is partition 1, parameters computed for p = 0.3.
	sd2 := d.ForEstimate(0.7)
	if sd2.Minority != One || sd2.Majority() != Zero {
		t.Errorf("minority should be 1 for p0=0.7: %+v", sd2)
	}
	if math.Abs(sd.Alpha-sd2.Alpha) > 1e-9 || math.Abs(sd.Beta-sd2.Beta) > 1e-9 {
		t.Error("mirrored estimates should produce the same probabilities")
	}
}

func TestForEstimateVariants(t *testing.T) {
	plain := Decider{}.ForEstimate(0.35)
	corr := Decider{Samples: 10, UseCorrection: true}.ForEstimate(0.35)
	heur := Decider{UseHeuristic: true}.ForEstimate(0.35)
	if corr.Beta >= plain.Beta {
		t.Errorf("corrected beta %v should be below plain %v", corr.Beta, plain.Beta)
	}
	if heur.Alpha == plain.Alpha && heur.Beta == plain.Beta {
		t.Error("heuristic should differ from theory")
	}
}

func TestMeetDecidedRules(t *testing.T) {
	d := Decider{}
	r := rand.New(rand.NewSource(3))
	sd := d.ForEstimate(0.4) // minority = Zero, beta in (0,1)
	// Rule 3: meeting a minority peer always joins the majority with a
	// direct reference.
	dec, direct := sd.MeetDecided(Zero, r)
	if dec != One || !direct {
		t.Errorf("rule 3 violated: %v %v", dec, direct)
	}
	// Rule 4: meeting a majority peer joins minority with prob beta.
	nMinority, nDirect := 0, 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		dec, direct := sd.MeetDecided(One, r)
		if dec == Zero {
			nMinority++
			if !direct {
				t.Fatal("deciding for minority must come with a direct reference")
			}
		} else if direct {
			nDirect++
		}
	}
	frac := float64(nMinority) / trials
	if math.Abs(frac-sd.Beta) > 0.03 {
		t.Errorf("minority fraction %v, want beta=%v", frac, sd.Beta)
	}
	if nDirect != 0 {
		t.Error("joining the majority after meeting a majority peer must use an indirect reference")
	}
}

func TestBalancedAssignment(t *testing.T) {
	sd := Decider{}.ForEstimate(0.5)
	r := rand.New(rand.NewSource(4))
	zeroCount := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		a, b := sd.BalancedAssignment(r)
		if a == b || a == Undecided || b == Undecided {
			t.Fatal("balanced assignment must give opposite decisions")
		}
		if a == Zero {
			zeroCount++
		}
	}
	if zeroCount < trials/2-150 || zeroCount > trials/2+150 {
		t.Errorf("assignment not symmetric: %d/%d", zeroCount, trials)
	}
}

func TestShouldBalancedSplitProbability(t *testing.T) {
	sd := Decider{}.ForEstimate(0.1) // alpha < 1
	r := rand.New(rand.NewSource(5))
	count := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if sd.ShouldBalancedSplit(r) {
			count++
		}
	}
	frac := float64(count) / trials
	if math.Abs(frac-sd.Alpha) > 0.03 {
		t.Errorf("split fraction %v, want alpha=%v", frac, sd.Alpha)
	}
}

func TestDecideEndToEnd(t *testing.T) {
	d := Decider{}
	r := rand.New(rand.NewSource(6))
	keys := keysFromFloats([]float64{0.1, 0.15, 0.2, 0.6, 0.9})
	sd := d.Decide(keys, keyspace.Root, r)
	if sd.P0 != 0.6 {
		t.Errorf("P0 = %v, want 0.6", sd.P0)
	}
	if sd.Minority != One {
		t.Errorf("minority = %v, want One", sd.Minority)
	}
}
