package core

import (
	"math"
	"testing"
	"testing/quick"

	"pgrid/internal/testutil"
)

func TestBetaEquationEndpoints(t *testing.T) {
	if got := betaEquation(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("betaEquation(1) = %v, want 0.5", got)
	}
	if got := betaEquation(1e-9); math.Abs(got-BalancedThreshold) > 1e-6 {
		t.Errorf("betaEquation(0+) = %v, want %v", got, BalancedThreshold)
	}
	if got := betaEquation(0); math.Abs(got-BalancedThreshold) > 1e-12 {
		t.Errorf("betaEquation(0) = %v, want %v", got, BalancedThreshold)
	}
}

func TestAlphaEquationEndpoints(t *testing.T) {
	if got := alphaEquation(1); math.Abs(got-BalancedThreshold) > 1e-9 {
		t.Errorf("alphaEquation(1) = %v, want %v", got, BalancedThreshold)
	}
	// The removable singularity at alpha = 1/2 has value 1/4.
	if got := alphaEquation(0.5); math.Abs(got-0.25) > 1e-6 {
		t.Errorf("alphaEquation(0.5) = %v, want 0.25", got)
	}
	// Continuity around the singularity.
	if math.Abs(alphaEquation(0.5+1e-7)-alphaEquation(0.5-1e-7)) > 1e-5 {
		t.Error("alphaEquation discontinuous at 0.5")
	}
	if alphaEquation(0) != 0 {
		t.Error("alphaEquation(0) should be 0")
	}
	if got := alphaEquation(0.01); got <= 0 || got > 0.1 {
		t.Errorf("alphaEquation(0.01) = %v, want small positive", got)
	}
}

func TestAlphaBetaEquationsMonotone(t *testing.T) {
	prev := -1.0
	for b := 0.01; b <= 1.0; b += 0.01 {
		v := betaEquation(b)
		if v <= prev {
			t.Fatalf("betaEquation not increasing at %v", b)
		}
		prev = v
	}
	prev = -1.0
	for a := 0.01; a <= 1.0; a += 0.01 {
		v := alphaEquation(a)
		if v <= prev {
			t.Fatalf("alphaEquation not increasing at %v", a)
		}
		prev = v
	}
}

func TestBetaForPRoundTrip(t *testing.T) {
	for p := BalancedThreshold; p <= 0.5; p += 0.01 {
		beta, err := BetaForP(p)
		if err != nil {
			t.Fatalf("BetaForP(%v): %v", p, err)
		}
		if beta < 0 || beta > 1 {
			t.Fatalf("BetaForP(%v) = %v out of [0,1]", p, beta)
		}
		if got := betaEquation(beta); math.Abs(got-p) > 1e-6 {
			t.Errorf("round trip failed: betaEquation(BetaForP(%v)) = %v", p, got)
		}
	}
	if _, err := BetaForP(0.2); err == nil {
		t.Error("expected error below threshold")
	}
	if _, err := BetaForP(0.6); err == nil {
		t.Error("expected error above 0.5")
	}
	if beta, err := BetaForP(0.5); err != nil || math.Abs(beta-1) > 1e-9 {
		t.Errorf("BetaForP(0.5) = %v, %v", beta, err)
	}
}

func TestAlphaForPRoundTrip(t *testing.T) {
	for p := 0.01; p <= BalancedThreshold; p += 0.01 {
		alpha, err := AlphaForP(p)
		if err != nil {
			t.Fatalf("AlphaForP(%v): %v", p, err)
		}
		if alpha <= 0 || alpha > 1 {
			t.Fatalf("AlphaForP(%v) = %v out of (0,1]", p, alpha)
		}
		if got := alphaEquation(alpha); math.Abs(got-p) > 1e-6 {
			t.Errorf("round trip failed: alphaEquation(AlphaForP(%v)) = %v", p, got)
		}
	}
	if _, err := AlphaForP(0.4); err == nil {
		t.Error("expected error above threshold")
	}
	if _, err := AlphaForP(0); err == nil {
		t.Error("expected error at 0")
	}
}

func TestForFraction(t *testing.T) {
	// Above the branch point: alpha = 1, beta in (0,1].
	pr, err := ForFraction(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Alpha != 1 || pr.Beta <= 0 || pr.Beta > 1 {
		t.Errorf("ForFraction(0.4) = %+v", pr)
	}
	// Below the branch point: beta = 0, alpha in (0,1).
	pr, err = ForFraction(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Beta != 0 || pr.Alpha <= 0 || pr.Alpha >= 1 {
		t.Errorf("ForFraction(0.1) = %+v", pr)
	}
	// Balanced load: eager behaviour.
	pr, err = ForFraction(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Alpha != 1 || math.Abs(pr.Beta-1) > 1e-9 {
		t.Errorf("ForFraction(0.5) = %+v, want alpha=beta=1", pr)
	}
	// Errors.
	if _, err := ForFraction(0); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := ForFraction(0.7); err == nil {
		t.Error("expected error for p>0.5")
	}
}

func TestForFractionContinuityAtBranchPoint(t *testing.T) {
	lo, err := ForFraction(BalancedThreshold - 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ForFraction(BalancedThreshold + 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo.Alpha-1) > 1e-3 || math.Abs(hi.Alpha-1) > 1e-12 {
		t.Errorf("alpha discontinuous at branch point: %v vs %v", lo.Alpha, hi.Alpha)
	}
	if lo.Beta != 0 || hi.Beta > 1e-3 {
		t.Errorf("beta discontinuous at branch point: %v vs %v", lo.Beta, hi.Beta)
	}
}

func TestTerminationTime(t *testing.T) {
	// Independent of p on the balanced branch.
	for _, p := range []float64{0.31, 0.4, 0.5} {
		tt, err := TerminationTime(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tt-math.Ln2) > 1e-9 {
			t.Errorf("TerminationTime(%v) = %v, want ln2", p, tt)
		}
	}
	// Grows for small p.
	t1, _ := TerminationTime(0.2)
	t2, _ := TerminationTime(0.05)
	if !(t2 > t1 && t1 > math.Ln2) {
		t.Errorf("termination time should grow with skew: %v %v", t1, t2)
	}
	if _, err := TerminationTime(0); err == nil {
		t.Error("expected error")
	}
}

func TestAlphaSecondDerivativeShape(t *testing.T) {
	// Figure 3 plots alpha''(p) over p in [0.05, 0.3] with values roughly
	// between 10 and 60: the curvature is large on the skewed branch, which
	// is why sampling errors translate into large partitioning errors
	// there. Our fluid-limit derivation reproduces that range, with the
	// curvature growing towards the branch point.
	at005 := AlphaSecondDerivative(0.05)
	at015 := AlphaSecondDerivative(0.15)
	at025 := AlphaSecondDerivative(0.25)
	for _, v := range []float64{at005, at015, at025} {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("second derivative invalid: %v", v)
		}
	}
	if at025 < 10 || at025 > 200 {
		t.Errorf("alpha''(0.25) = %v, expected the tens as in Figure 3", at025)
	}
	if !(at005 < at015 && at015 < at025) {
		t.Errorf("alpha'' should grow towards the branch point: %v %v %v", at005, at015, at025)
	}
}

func TestCorrectedReducesProbabilities(t *testing.T) {
	// The second derivative of beta(p) on the balanced branch is positive,
	// so the correction should reduce beta; similarly for alpha on the
	// skewed branch.
	plain, err := ForFraction(0.35)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := Corrected(0.35, 10)
	if err != nil {
		t.Fatal(err)
	}
	if corr.Beta >= plain.Beta {
		t.Errorf("corrected beta %v should be below plain %v", corr.Beta, plain.Beta)
	}
	if corr.Alpha != 1 {
		t.Errorf("alpha should stay 1 on the balanced branch, got %v", corr.Alpha)
	}

	plainA, _ := ForFraction(0.15)
	corrA, err := Corrected(0.15, 10)
	if err != nil {
		t.Fatal(err)
	}
	if corrA.Alpha >= plainA.Alpha {
		t.Errorf("corrected alpha %v should be below plain %v", corrA.Alpha, plainA.Alpha)
	}
	// No samples means no correction.
	same, _ := Corrected(0.35, 0)
	if same.Beta != plain.Beta {
		t.Error("s=0 should disable the correction")
	}
}

func TestCorrectedStaysInRangeProperty(t *testing.T) {
	f := func(rawP float64, rawS uint8) bool {
		p := 0.01 + math.Mod(math.Abs(rawP), 0.49)
		s := int(rawS%50) + 1
		pr, err := Corrected(p, s)
		if err != nil {
			return false
		}
		return pr.Alpha >= 0 && pr.Alpha <= 1 && pr.Beta >= 0 && pr.Beta <= 1
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 300, 510)); err != nil {
		t.Error(err)
	}
}

func TestHeuristicQualitativeShape(t *testing.T) {
	h := Heuristic(0.1)
	if h.Alpha <= 0 || h.Alpha >= 1 || h.Beta != 0 {
		t.Errorf("Heuristic(0.1) = %+v", h)
	}
	h = Heuristic(0.5)
	if h.Alpha != 1 || h.Beta != 1 {
		t.Errorf("Heuristic(0.5) = %+v", h)
	}
	h = Heuristic(-1)
	if h.Alpha < 0 || h.Beta < 0 {
		t.Errorf("Heuristic(-1) = %+v", h)
	}
	h = Heuristic(0.9)
	if h.Alpha != 1 || h.Beta != 1 {
		t.Errorf("Heuristic(0.9) = %+v", h)
	}
}

func TestHeuristicDiffersFromTheory(t *testing.T) {
	// The whole point of Figure 6(d): the heuristic is close in shape but
	// not equal to the analytical functions.
	diff := 0.0
	for p := 0.05; p <= 0.5; p += 0.05 {
		th, err := ForFraction(p)
		if err != nil {
			t.Fatal(err)
		}
		he := Heuristic(p)
		diff += math.Abs(th.Alpha-he.Alpha) + math.Abs(th.Beta-he.Beta)
	}
	if diff < 0.1 {
		t.Errorf("heuristic too close to theory (diff=%v); ablation would be meaningless", diff)
	}
}

func TestNumericalDerivativeHelpers(t *testing.T) {
	sq := func(x float64) float64 { return x * x }
	if d := FirstDerivative(sq, 3, 1e-5); math.Abs(d-6) > 1e-4 {
		t.Errorf("FirstDerivative = %v", d)
	}
	if d := SecondDerivative(sq, 3, 1e-4); math.Abs(d-2) > 1e-3 {
		t.Errorf("SecondDerivative = %v", d)
	}
}

func TestAlphaOfBetaOfFullRange(t *testing.T) {
	for p := 0.02; p <= 0.5; p += 0.02 {
		a, err := AlphaOf(p)
		if err != nil {
			t.Fatalf("AlphaOf(%v): %v", p, err)
		}
		b, err := BetaOf(p)
		if err != nil {
			t.Fatalf("BetaOf(%v): %v", p, err)
		}
		if a < 0 || a > 1 || b < 0 || b > 1 {
			t.Fatalf("out of range at p=%v: alpha=%v beta=%v", p, a, b)
		}
		if p < BalancedThreshold && b != 0 {
			t.Errorf("beta should be 0 below threshold, got %v at %v", b, p)
		}
		if p > BalancedThreshold && a != 1 {
			t.Errorf("alpha should be 1 above threshold, got %v at %v", a, p)
		}
	}
}
