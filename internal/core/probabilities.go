// Package core implements the paper's primary contribution (Section 3):
// decentralized, parallel partitioning of a key-space partition among a set
// of peers such that the fraction of peers deciding for each sub-partition
// matches the data-load fraction p, while every peer learns a reference to a
// peer of the complementary sub-partition (referential integrity).
//
// The package provides
//
//   - the decision probabilities alpha(p) and beta(p) of Adaptive Eager
//     Partitioning (AEP), obtained by solving the mean-value (fluid-limit)
//     model of the random-encounter process,
//   - the second-order corrected probabilities that compensate the
//     systematic bias introduced when p is estimated from a small sample
//     (Section 3.2, equations 9 and 10),
//   - mean-value models (MVA, SAM) and discrete simulators (AEP, COR, AUT,
//     eager) of the bisection step used for Figures 3–5, and
//   - the decision engine used by the overlay construction protocol.
//
// Conventions: partition 0 receives the data fraction p with 0 < p <= 1/2
// (w.l.o.g., the caller mirrors the partition labels otherwise); partition 1
// receives 1-p.
package core

import (
	"errors"
	"fmt"
	"math"
)

// BalancedThreshold is 1 - ln 2 ≈ 0.3069. For p >= BalancedThreshold the
// partitioning uses alpha = 1 and adapts beta; for smaller p no positive
// beta exists (the load is too skewed for always-balanced splits) and the
// algorithm instead sets beta = 0 and reduces alpha.
var BalancedThreshold = 1 - math.Ln2

// ErrFraction is returned when a load fraction is outside (0, 0.5].
var ErrFraction = errors.New("core: load fraction must be in (0, 0.5]")

// Probabilities bundles the AEP decision probabilities for a given load
// fraction p.
type Probabilities struct {
	// P is the load fraction of partition 0 (the smaller side), in (0, 0.5].
	P float64
	// Alpha is the probability of performing a balanced split when two
	// undecided peers meet.
	Alpha float64
	// Beta is the probability that a peer meeting a peer already decided
	// for partition 1 decides for partition 0 (with 1-Beta it follows the
	// contacted peer into partition 1 and obtains a cross reference from
	// it).
	Beta float64
}

// betaEquation is the fluid-limit relationship between p and beta on the
// alpha = 1 branch:
//
//	p = 1 - (1 - 2^(-beta)) / beta
//
// obtained by integrating the mean-value model dy/dt = 1 - beta*y,
// du/dt = -(1+u) up to the termination time t* = ln 2 (which is independent
// of p — the number of interactions per peer does not depend on the load
// skew). The function is monotonically increasing from 1-ln2 (beta -> 0) to
// 1/2 (beta = 1).
func betaEquation(beta float64) float64 {
	if beta == 0 {
		return 1 - math.Ln2
	}
	return 1 - (1-math.Exp2(-beta))/beta
}

// alphaEquation is the fluid-limit relationship between p and alpha on the
// beta = 0 branch:
//
//	p = alpha/(2*alpha-1) * (1 - ln(2*alpha)/(2*alpha-1))
//
// valid for alpha in (0, 1]; the removable singularity at alpha = 1/2 has
// the value 1/4. The function increases from 0 (alpha -> 0) to 1-ln2
// (alpha = 1), matching betaEquation at the branch point.
func alphaEquation(alpha float64) float64 {
	if alpha <= 0 {
		return 0
	}
	c := 2*alpha - 1
	if math.Abs(c) < 1e-9 {
		// Series expansion around c = 0: t* ≈ 1 - c/2 + c^2/3 and
		// p ≈ alpha*(1/2 - c/3).
		return alpha * (0.5 - c/3)
	}
	tstar := math.Log(2*alpha) / c
	return alpha / c * (1 - tstar)
}

// BetaForP solves betaEquation(beta) = p for p in [1-ln2, 1/2], returning
// beta in (0, 1]. It returns an error for p outside that range.
func BetaForP(p float64) (float64, error) {
	if p < BalancedThreshold-1e-12 || p > 0.5+1e-12 {
		return 0, fmt.Errorf("core: no positive beta for p=%v (valid range [%.4f, 0.5])", p, BalancedThreshold)
	}
	if p >= 0.5 {
		return 1, nil
	}
	return bisect(betaEquation, p, 1e-9, 1)
}

// AlphaForP solves alphaEquation(alpha) = p for p in (0, 1-ln2], returning
// alpha in (0, 1]. It returns an error for p outside that range.
func AlphaForP(p float64) (float64, error) {
	if p <= 0 || p > BalancedThreshold+1e-12 {
		return 0, fmt.Errorf("core: alpha branch only valid for p in (0, %.4f], got %v", BalancedThreshold, p)
	}
	if p >= BalancedThreshold {
		return 1, nil
	}
	return bisect(alphaEquation, p, 1e-9, 1)
}

// ForFraction returns the AEP probabilities for load fraction p in (0, 0.5].
// For p >= 1-ln2 it uses alpha = 1 and the adapted beta; for smaller p it
// uses beta = 0 and the adapted alpha (Section 3.1).
func ForFraction(p float64) (Probabilities, error) {
	if p <= 0 || p > 0.5+1e-12 {
		return Probabilities{}, ErrFraction
	}
	if p > 0.5 {
		p = 0.5
	}
	if p >= BalancedThreshold {
		beta, err := BetaForP(p)
		if err != nil {
			return Probabilities{}, err
		}
		return Probabilities{P: p, Alpha: 1, Beta: beta}, nil
	}
	alpha, err := AlphaForP(p)
	if err != nil {
		return Probabilities{}, err
	}
	return Probabilities{P: p, Alpha: alpha, Beta: 0}, nil
}

// Heuristic returns the naive probabilities used for the "theory vs.
// heuristics" ablation of Figure 6(d): functions that are qualitatively
// similar to the analytical alpha(p) and beta(p) but not derived from the
// model (alpha_heur(p) = 2p/(1-ln2) capped at 1, beta_heur(p) = 2p - ... the
// paper uses alpha = p/(1-ln2) and beta = 2p; any qualitatively-similar pair
// degrades load balancing, which is the point of the experiment).
func Heuristic(p float64) Probabilities {
	if p <= 0 {
		p = 1e-6
	}
	if p > 0.5 {
		p = 0.5
	}
	alpha := p / BalancedThreshold
	if alpha > 1 {
		alpha = 1
	}
	beta := 0.0
	if p >= BalancedThreshold {
		beta = 2 * (p - BalancedThreshold) / (1 - 2*BalancedThreshold)
		if beta > 1 {
			beta = 1
		}
	}
	return Probabilities{P: p, Alpha: alpha, Beta: beta}
}

// TerminationTime returns the asymptotic (per-peer normalized) number of
// interaction steps t* at which all peers have decided, i.e. the fluid-limit
// total number of interactions divided by the number of peers. On the
// alpha=1 branch t* = ln 2 independent of p (equation 1 of the paper); on
// the beta=0 branch t* = ln(2*alpha)/(2*alpha - 1) (equation 3), which grows
// as the skew increases.
func TerminationTime(p float64) (float64, error) {
	if p <= 0 || p > 0.5+1e-12 {
		return 0, ErrFraction
	}
	if p >= BalancedThreshold {
		return math.Ln2, nil
	}
	alpha, err := AlphaForP(p)
	if err != nil {
		return 0, err
	}
	c := 2*alpha - 1
	if math.Abs(c) < 1e-9 {
		return 1, nil
	}
	return math.Log(2*alpha) / c, nil
}

// bisect solves f(x) = target for x in (lo, hi] assuming f is monotonically
// increasing on the interval.
func bisect(f func(float64) float64, target, lo, hi float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if target < flo-1e-9 || target > fhi+1e-9 {
		return 0, fmt.Errorf("core: target %v outside range [%v,%v]", target, flo, fhi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// AlphaOf returns alpha(p) over the full range (0, 0.5]: the solved value on
// the beta=0 branch and 1 above the branch point.
func AlphaOf(p float64) (float64, error) {
	pr, err := ForFraction(p)
	if err != nil {
		return 0, err
	}
	return pr.Alpha, nil
}

// BetaOf returns beta(p) over the full range (0, 0.5]: 0 on the alpha branch
// and the solved value above the branch point.
func BetaOf(p float64) (float64, error) {
	pr, err := ForFraction(p)
	if err != nil {
		return 0, err
	}
	return pr.Beta, nil
}

// SecondDerivative numerically differentiates f twice at x using a central
// finite-difference stencil with step h.
func SecondDerivative(f func(float64) float64, x, h float64) float64 {
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// FirstDerivative numerically differentiates f at x using a central
// difference with step h.
func FirstDerivative(f func(float64) float64, x, h float64) float64 {
	return (f(x+h) - f(x-h)) / (2 * h)
}

// AlphaSecondDerivative computes alpha”(p) (Figure 3): it grows extremely
// fast for small p, which is why sampling errors hurt most for very skewed
// partitions and why the correction terms are needed.
func AlphaSecondDerivative(p float64) float64 {
	f := func(x float64) float64 {
		if x <= 1e-6 {
			x = 1e-6
		}
		if x > 0.5 {
			x = 0.5
		}
		a, err := AlphaOf(x)
		if err != nil {
			return math.NaN()
		}
		return a
	}
	h := 1e-4
	if p < 0.01 {
		h = p / 10
	}
	return SecondDerivative(f, p, h)
}

// BetaSecondDerivative computes beta”(p) on the beta branch.
func BetaSecondDerivative(p float64) float64 {
	f := func(x float64) float64 {
		if x <= 1e-6 {
			x = 1e-6
		}
		if x > 0.5 {
			x = 0.5
		}
		b, err := BetaOf(x)
		if err != nil {
			return math.NaN()
		}
		return b
	}
	return SecondDerivative(f, p, 1e-4)
}

// CorrectedTaylor returns the probabilities corrected for the systematic
// bias introduced by estimating p from s Bernoulli samples using the
// second-order Taylor form of the paper (equations 9 and 10):
//
//	alpha_corr(p) = alpha(p) - 1/2 * alpha''(p) * p(1-p)/s
//	beta_corr(p)  = beta(p)  - 1/2 * beta''(p)  * p(1-p)/s
//
// The corrected values are clamped into [0,1]. With s <= 0 no correction is
// applied. For very small sample sizes and fractions near the branch point
// the Taylor term can overshoot (the curvature of alpha(p) is large while
// alpha itself is bounded by 1); Corrected therefore uses the exact binomial
// bias instead — see its documentation.
func CorrectedTaylor(p float64, s int) (Probabilities, error) {
	pr, err := ForFraction(p)
	if err != nil {
		return Probabilities{}, err
	}
	if s <= 0 {
		return pr, nil
	}
	variance := p * (1 - p) / float64(s)
	if pr.Alpha < 1 {
		pr.Alpha = clamp01(pr.Alpha - 0.5*AlphaSecondDerivative(p)*variance)
	}
	if pr.Beta > 0 {
		pr.Beta = clamp01(pr.Beta - 0.5*BetaSecondDerivative(p)*variance)
	}
	return pr, nil
}

// Corrected returns the bias-corrected probabilities for a peer whose
// estimate of the load fraction is p, obtained from s Bernoulli samples
// (model "COR" of Section 3.3).
//
// Peers using the raw probabilities evaluate alpha and beta at their noisy
// estimate, so the population-level effective probability is
// E[alpha(p_hat)], which differs from alpha(p) because alpha is non-linear —
// this is the systematic shift identified in Section 3.2. The correction
// subtracts that bias. The paper expresses it as the second-order Taylor
// term (see CorrectedTaylor); here we evaluate the bias exactly under the
// binomial sampling distribution,
//
//	alpha_corr(p) = 2*alpha(p) - E_{K~Binomial(s,p)}[alpha(K/s)],
//
// which coincides with the Taylor form when the expansion is valid and
// remains well behaved for the very small sample sizes (s=10 and below)
// used in the experiments. With s <= 0 no correction is applied.
func Corrected(p float64, s int) (Probabilities, error) {
	pr, err := ForFraction(p)
	if err != nil {
		return Probabilities{}, err
	}
	if s <= 0 {
		return pr, nil
	}
	expAlpha, expBeta := expectedProbabilities(p, s)
	pr.Alpha = clamp01(2*pr.Alpha - expAlpha)
	pr.Beta = clamp01(2*pr.Beta - expBeta)
	return pr, nil
}

// expectedProbabilities computes E[alpha(K/s)] and E[beta(K/s)] for
// K ~ Binomial(s, p), folding estimates above 1/2 back into the canonical
// range exactly as the decision engine does.
func expectedProbabilities(p float64, s int) (expAlpha, expBeta float64) {
	for k := 0; k <= s; k++ {
		w := binomialPMF(s, k, p)
		est := clampFraction(float64(k) / float64(s))
		pk, err := ForFraction(est)
		if err != nil {
			pk = Probabilities{Alpha: 1, Beta: 1}
		}
		expAlpha += w * pk.Alpha
		expBeta += w * pk.Beta
	}
	return expAlpha, expBeta
}

// binomialPMF returns P(K = k) for K ~ Binomial(n, p).
func binomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	// Compute via logarithms for numerical stability.
	logC := 0.0
	for i := 1; i <= k; i++ {
		logC += math.Log(float64(n-k+i)) - math.Log(float64(i))
	}
	logP := logC
	if k > 0 {
		logP += float64(k) * math.Log(p)
	}
	if n-k > 0 {
		logP += float64(n-k) * math.Log(1-p)
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(logP)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
