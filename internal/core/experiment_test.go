package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestSweepSmall(t *testing.T) {
	cfg := ExperimentConfig{N: 200, Samples: 10, Trials: 5, Seed: 1}
	pts, err := Sweep(cfg, []float64{0.2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(AllModels())*2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.MeanInteractions <= 0 {
			t.Errorf("%v p=%v: no interactions recorded", pt.Model, pt.P)
		}
		if math.IsNaN(pt.MeanDeviation) || math.IsNaN(pt.StdDeviation) {
			t.Errorf("%v p=%v: NaN statistics", pt.Model, pt.P)
		}
		// Deviations must stay a small fraction of n for every model.
		if math.Abs(pt.MeanDeviation) > 0.2*float64(cfg.N) {
			t.Errorf("%v p=%v: deviation %v too large", pt.Model, pt.P, pt.MeanDeviation)
		}
	}
}

func TestRunModelAllModels(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range AllModels() {
		dev, inter, err := RunModel(m, 0.4, 300, 10, r)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if inter <= 0 {
			t.Errorf("%v: interactions = %v", m, inter)
		}
		if math.Abs(dev) > 100 {
			t.Errorf("%v: deviation = %v", m, dev)
		}
	}
	if _, _, err := RunModel(Model(99), 0.4, 100, 10, r); err == nil {
		t.Error("expected error for unknown model")
	}
	if _, _, err := RunModel(ModelMVA, 0, 100, 10, r); err == nil {
		t.Error("expected error for invalid p")
	}
	if _, _, err := RunModel(ModelAEP, 0, 100, 10, r); err == nil {
		t.Error("expected error for invalid p in discrete model")
	}
	if _, _, err := RunModel(ModelSAM, 0, 100, 10, r); err == nil {
		t.Error("expected error for invalid p in SAM")
	}
}

func TestModelString(t *testing.T) {
	want := map[Model]string{ModelMVA: "MVA", ModelSAM: "SAM", ModelAEP: "AEP", ModelCOR: "COR", ModelAUT: "AUT"}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("%d -> %q want %q", m, m.String(), w)
		}
	}
	if Model(7).String() == "" {
		t.Error("unknown model should render")
	}
}

func TestPaperFractions(t *testing.T) {
	fs := PaperFractions()
	if len(fs) != 10 || fs[0] != 0.05 || fs[len(fs)-1] != 0.5 {
		t.Errorf("PaperFractions = %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Error("fractions must be increasing")
		}
	}
}

func TestDefaultExperimentConfig(t *testing.T) {
	cfg := DefaultExperimentConfig()
	if cfg.N != 1000 || cfg.Samples != 10 || cfg.Trials != 100 {
		t.Errorf("defaults = %+v, want the paper's N=1000, s=10, 100 trials", cfg)
	}
}

func TestMeanAndStddev(t *testing.T) {
	if mean(nil) != 0 || stddev(nil) != 0 || stddev([]float64{1}) != 0 {
		t.Error("degenerate statistics wrong")
	}
	xs := []float64{1, 2, 3, 4}
	if mean(xs) != 2.5 {
		t.Errorf("mean = %v", mean(xs))
	}
	if math.Abs(stddev(xs)-1.2909944) > 1e-6 {
		t.Errorf("stddev = %v", stddev(xs))
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	cfg := ExperimentConfig{N: 100, Samples: 10, Trials: 1, Seed: 1}
	if _, err := Sweep(cfg, []float64{0.9}); err == nil {
		t.Error("expected error for invalid fraction")
	}
}
