package core

import (
	"math/rand"

	"pgrid/internal/keyspace"
)

// Decider encapsulates the AEP decision rules for use by the overlay
// construction protocol. Unlike the low-level Probabilities, a Decider
// handles the general case where the load fraction of sub-partition 0 may
// exceed 1/2 (the analysis assumes p <= 1/2 w.l.o.g.; the Decider mirrors
// the partition labels internally) and where the fraction is estimated from
// a peer's locally stored keys.
type Decider struct {
	// Samples is the number of data keys sampled when estimating the load
	// fraction (0 = use every locally stored key).
	Samples int
	// UseCorrection selects the bias-corrected probabilities (COR) instead
	// of the plain analytical ones (AEP).
	UseCorrection bool
	// UseHeuristic replaces the analytical probabilities by the naive
	// heuristic ones (for the Figure 6(d) ablation). It takes precedence
	// over UseCorrection.
	UseHeuristic bool
}

// SplitDecision is the outcome of evaluating the AEP rules for one specific
// partition split, after mirroring so callers can work directly with the
// real sub-partition labels 0 and 1.
type SplitDecision struct {
	// P0 is the (estimated) fraction of the partition's data that falls
	// into sub-partition 0.
	P0 float64
	// Alpha is the balanced-split probability.
	Alpha float64
	// Beta is the probability of deciding for the minority side when
	// meeting a peer that already decided for the majority side.
	Beta float64
	// Minority is the sub-partition with the smaller data fraction.
	Minority Decision
}

// EstimateP0 estimates the fraction of keys of the current partition
// (identified by prefix) that belong to the left sub-partition, by sampling
// up to d.Samples keys from the locally stored key set. When the local key
// set has no key under the prefix the estimate falls back to 1/2.
func (d Decider) EstimateP0(keys keyspace.Keys, prefix keyspace.Path, r *rand.Rand) float64 {
	relevant := keys.FilterPrefix(prefix)
	if len(relevant) == 0 {
		return 0.5
	}
	sample := relevant
	if d.Samples > 0 && d.Samples < len(relevant) {
		sample = make(keyspace.Keys, d.Samples)
		for i := range sample {
			sample[i] = relevant[r.Intn(len(relevant))]
		}
	}
	left := prefix.Child(0)
	hits := 0
	for _, k := range sample {
		if k.HasPrefix(left) {
			hits++
		}
	}
	return float64(hits) / float64(len(sample))
}

// ForEstimate computes the split decision parameters for an estimated
// fraction p0 of data in sub-partition 0.
func (d Decider) ForEstimate(p0 float64) SplitDecision {
	minority := Zero
	p := p0
	if p0 > 0.5 {
		minority = One
		p = 1 - p0
	}
	p = clampFraction(p)
	var pr Probabilities
	var err error
	switch {
	case d.UseHeuristic:
		pr = Heuristic(p)
	case d.UseCorrection:
		pr, err = Corrected(p, d.Samples)
	default:
		pr, err = ForFraction(p)
	}
	if err != nil {
		pr = Probabilities{P: p, Alpha: 1, Beta: 1}
	}
	return SplitDecision{P0: p0, Alpha: pr.Alpha, Beta: pr.Beta, Minority: minority}
}

// Decide evaluates the AEP rules for a peer from local key information.
// prefix identifies the partition being split; keys are the peer's locally
// stored data keys.
func (d Decider) Decide(keys keyspace.Keys, prefix keyspace.Path, r *rand.Rand) SplitDecision {
	return d.ForEstimate(d.EstimateP0(keys, prefix, r))
}

// ShouldBalancedSplit reports whether two undecided peers that meet should
// perform a balanced split (rule 2 of AEP): true with probability Alpha.
func (sd SplitDecision) ShouldBalancedSplit(r *rand.Rand) bool {
	return r.Float64() < sd.Alpha
}

// Majority returns the sub-partition with the larger data fraction.
func (sd SplitDecision) Majority() Decision { return sd.Minority.Opposite() }

// BalancedAssignment returns the sub-partitions the initiator and the
// contacted peer take in a balanced split; the assignment is symmetric
// random so neither role is privileged.
func (sd SplitDecision) BalancedAssignment(r *rand.Rand) (initiator, contacted Decision) {
	if r.Float64() < 0.5 {
		return Zero, One
	}
	return One, Zero
}

// MeetDecided returns the decision an undecided peer takes when it contacts
// a peer that has already decided (rules 3 and 4 of AEP), and whether the
// initiator can take the contacted peer itself as its cross reference
// (true) or must obtain a reference to the complementary partition from the
// contacted peer (false).
func (sd SplitDecision) MeetDecided(contacted Decision, r *rand.Rand) (decision Decision, directReference bool) {
	if contacted == sd.Minority {
		// Meeting a minority peer: always join the majority (rule 3).
		return sd.Majority(), true
	}
	// Meeting a majority peer: join the minority with probability beta
	// (rule 4), otherwise follow it into the majority and ask it for a
	// reference into the minority partition.
	if r.Float64() < sd.Beta {
		return sd.Minority, true
	}
	return sd.Majority(), false
}
