package core

import (
	"errors"
	"fmt"
	"math/rand"
)

// Decision is the sub-partition a peer decides for during a bisection step.
type Decision int8

const (
	// Undecided marks a peer that has not chosen a sub-partition yet.
	Undecided Decision = iota - 1
	// Zero is the left sub-partition (load fraction p).
	Zero
	// One is the right sub-partition (load fraction 1-p).
	One
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Undecided:
		return "undecided"
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return fmt.Sprintf("Decision(%d)", int8(d))
	}
}

// Opposite returns the complementary decision. Undecided is its own
// opposite.
func (d Decision) Opposite() Decision {
	switch d {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return Undecided
	}
}

// Strategy selects the decentralized partitioning algorithm simulated by
// Run.
type Strategy int

const (
	// StrategyAEP is adaptive eager partitioning with probabilities derived
	// from a per-peer sampled estimate of p (model "AEP" of Section 3.3).
	StrategyAEP Strategy = iota
	// StrategyCOR is AEP with the second-order corrected probabilities
	// (model "COR").
	StrategyCOR
	// StrategyAUT is autonomous partitioning: peers decide up front
	// according to their estimate of p and then keep contacting random
	// peers until they meet one of the other partition (model "AUT").
	StrategyAUT
	// StrategyEager is plain eager partitioning (only correct for p = 1/2;
	// provided as the baseline the paper derives AEP from).
	StrategyEager
	// StrategyHeuristic is AEP driven by the naive heuristic probability
	// functions of Figure 6(d) instead of the analytical ones.
	StrategyHeuristic
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyAEP:
		return "AEP"
	case StrategyCOR:
		return "COR"
	case StrategyAUT:
		return "AUT"
	case StrategyEager:
		return "EAGER"
	case StrategyHeuristic:
		return "HEUR"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterises a discrete simulation of one bisection step.
type Config struct {
	// N is the number of peers partitioning the key space.
	N int
	// P is the true load fraction of partition 0, in (0, 0.5].
	P float64
	// Samples is the number of Bernoulli samples each peer uses to estimate
	// P; 0 means peers know P exactly.
	Samples int
	// Strategy selects the algorithm.
	Strategy Strategy
	// MaxInteractions bounds the run (0 means 100*N).
	MaxInteractions int
}

// Result reports the outcome of a discrete bisection-step simulation.
type Result struct {
	// N0 and N1 are the numbers of peers that decided for partitions 0 and 1.
	N0, N1 int
	// Interactions is the total number of interactions initiated by peers.
	Interactions int
	// ReferentialIntegrity reports whether every peer ended the process
	// knowing at least one peer of the complementary partition.
	ReferentialIntegrity bool
	// Strategy echoes the simulated algorithm.
	Strategy Strategy
}

// Deviation returns N0 - n*p, the deviation of the size of partition 0 from
// its expectation (the quantity plotted in Figure 4).
func (r Result) Deviation(p float64) float64 {
	return float64(r.N0) - float64(r.N0+r.N1)*p
}

// peerState is the per-peer state of the discrete simulation.
type peerState struct {
	decision Decision
	// ref is the index of a known peer in the complementary partition, or
	// -1 if none is known yet.
	ref int
	// estimate is the peer's sampled estimate of p.
	estimate float64
	// minority is the sub-partition the peer's estimate identifies as the
	// minority (the probabilities are expressed for the minority side).
	minority Decision
	// probs are the decision probabilities the peer uses.
	probs Probabilities
	// satisfied marks an AUT peer that has found a counterpart.
	satisfied bool
}

// Run simulates one bisection step with the given configuration and random
// source. The simulation follows the paper's interaction model: undecided
// (or, for AUT, unsatisfied) peers repeatedly initiate interactions with
// uniformly randomly chosen peers until the process terminates.
func Run(cfg Config, r *rand.Rand) (Result, error) {
	if cfg.N < 2 {
		return Result{}, errors.New("core: need at least two peers")
	}
	if cfg.P <= 0 || cfg.P > 0.5+1e-12 {
		return Result{}, ErrFraction
	}
	maxI := cfg.MaxInteractions
	if maxI <= 0 {
		maxI = 100 * cfg.N
	}
	peers := make([]peerState, cfg.N)
	for i := range peers {
		raw := EstimateFraction(cfg.P, cfg.Samples, r)
		minority, est := canonicalFraction(raw)
		peers[i] = peerState{decision: Undecided, ref: -1, estimate: raw, minority: minority}
		peers[i].probs = probsFor(cfg.Strategy, est, cfg.Samples)
	}
	switch cfg.Strategy {
	case StrategyAUT:
		return runAutonomous(cfg, peers, maxI, r), nil
	default:
		return runEagerFamily(cfg, peers, maxI, r), nil
	}
}

// probsFor returns the decision probabilities a peer with estimate est uses
// under the given strategy.
func probsFor(s Strategy, est float64, samples int) Probabilities {
	switch s {
	case StrategyEager:
		return Probabilities{P: est, Alpha: 1, Beta: 1}
	case StrategyHeuristic:
		return Heuristic(est)
	case StrategyCOR:
		pr, err := Corrected(est, samples)
		if err != nil {
			return Probabilities{P: est, Alpha: 1, Beta: 1}
		}
		return pr
	default: // AEP, AUT (AUT ignores the probabilities)
		pr, err := ForFraction(est)
		if err != nil {
			return Probabilities{P: est, Alpha: 1, Beta: 1}
		}
		return pr
	}
}

// runEagerFamily simulates eager, AEP, COR and heuristic partitioning: only
// undecided peers initiate interactions, and the process stops when all
// peers have decided.
func runEagerFamily(cfg Config, peers []peerState, maxI int, r *rand.Rand) Result {
	undecided := make([]int, len(peers))
	for i := range undecided {
		undecided[i] = i
	}
	interactions := 0
	for len(undecided) > 0 && interactions < maxI {
		// Pick a random undecided initiator and a random other peer.
		ui := r.Intn(len(undecided))
		a := undecided[ui]
		b := r.Intn(len(peers) - 1)
		if b >= a {
			b++
		}
		interactions++
		pa := &peers[a]
		pb := &peers[b]
		switch {
		case pb.decision == Undecided:
			// Balanced split with probability alpha: initiator takes 0,
			// contacted takes 1 or vice versa (symmetric), and they
			// reference each other.
			if r.Float64() < pa.probs.Alpha {
				if r.Float64() < 0.5 {
					pa.decision, pb.decision = Zero, One
				} else {
					pa.decision, pb.decision = One, Zero
				}
				pa.ref, pb.ref = b, a
				undecided = removeValue(undecided, a, ui)
				undecided = removeValueScan(undecided, b)
			}
		case pb.decision == pa.minority:
			// Contacted already in the (estimated) minority: initiator joins
			// the majority and references the contacted peer.
			pa.decision = pa.minority.Opposite()
			pa.ref = b
			undecided = removeValue(undecided, a, ui)
		default:
			// Contacted in the majority: initiator joins the minority w.p.
			// beta (referencing the contacted peer), otherwise follows it
			// into the majority and obtains a cross reference from it.
			if r.Float64() < pa.probs.Beta {
				pa.decision = pa.minority
				pa.ref = b
			} else {
				pa.decision = pa.minority.Opposite()
				pa.ref = pb.ref
			}
			undecided = removeValue(undecided, a, ui)
		}
	}
	return summarize(cfg.Strategy, peers, interactions)
}

// runAutonomous simulates autonomous partitioning: every peer decides
// immediately according to its estimate, then unsatisfied peers contact
// random peers until they learn of a peer of the other partition — either by
// meeting one directly or by meeting a peer of their own partition that
// already holds such a reference (otherwise, for skewed loads, the majority
// peers would need on the order of 1/p attempts each, which is not what the
// paper's cost analysis assumes).
func runAutonomous(cfg Config, peers []peerState, maxI int, r *rand.Rand) Result {
	unsatisfied := make([]int, 0, len(peers))
	for i := range peers {
		if r.Float64() < peers[i].estimate {
			peers[i].decision = Zero
		} else {
			peers[i].decision = One
		}
		unsatisfied = append(unsatisfied, i)
	}
	interactions := 0
	for len(unsatisfied) > 0 && interactions < maxI {
		ui := r.Intn(len(unsatisfied))
		a := unsatisfied[ui]
		b := r.Intn(len(peers) - 1)
		if b >= a {
			b++
		}
		interactions++
		pa := &peers[a]
		pb := &peers[b]
		switch {
		case pa.decision != pb.decision:
			pa.ref = b
			pa.satisfied = true
			unsatisfied = removeValue(unsatisfied, a, ui)
			// The contacted peer also learns a counterpart for free.
			if !pb.satisfied {
				pb.ref = a
				pb.satisfied = true
				unsatisfied = removeValueScan(unsatisfied, b)
			}
		case pb.satisfied:
			// Same partition, but the contacted peer can hand over its
			// reference to the complementary partition.
			pa.ref = pb.ref
			pa.satisfied = true
			unsatisfied = removeValue(unsatisfied, a, ui)
		}
	}
	return summarize(cfg.Strategy, peers, interactions)
}

// summarize aggregates the final peer states into a Result.
func summarize(s Strategy, peers []peerState, interactions int) Result {
	res := Result{Strategy: s, Interactions: interactions, ReferentialIntegrity: true}
	for i := range peers {
		switch peers[i].decision {
		case Zero:
			res.N0++
		case One:
			res.N1++
		}
		if peers[i].decision != Undecided {
			ref := peers[i].ref
			if ref < 0 || peers[ref].decision == peers[i].decision || peers[ref].decision == Undecided {
				res.ReferentialIntegrity = false
			}
		}
	}
	return res
}

// removeValue removes the element at index idx (which holds value v) from
// the slice in O(1) by swapping with the last element.
func removeValue(s []int, v, idx int) []int {
	if s[idx] != v {
		return removeValueScan(s, v)
	}
	s[idx] = s[len(s)-1]
	return s[:len(s)-1]
}

// removeValueScan removes the first occurrence of v from the slice.
func removeValueScan(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
