package core

import (
	"math"
	"math/rand"
)

// MVAResult holds the outcome of one run of the mean-value (fluid) model of
// the bisection step.
type MVAResult struct {
	// P0 and P1 are the (possibly fractional) numbers of peers that decided
	// for partitions 0 and 1 at termination.
	P0, P1 float64
	// Steps is the number of interaction steps executed until no undecided
	// peers remained.
	Steps int
}

// MVA runs the mean-value model of AEP for n peers with exactly known load
// fraction p (model "MVA" of Section 3.3). In each step one undecided peer
// contacts a uniformly random peer; the expected contributions of the
// possible outcomes are added as fractional mass.
func MVA(p float64, n int) (MVAResult, error) {
	pr, err := ForFraction(p)
	if err != nil {
		return MVAResult{}, err
	}
	return runMeanValue(n, func() (Probabilities, Decision) { return pr, Zero }), nil
}

// SampledMVA runs the mean-value model where in every step the initiating
// peer estimates p from s Bernoulli samples and uses probabilities derived
// from the estimate (model "SAM"). This exposes the systematic bias of
// sampling without the discretization noise of the full simulation.
func SampledMVA(p float64, n, s int, r *rand.Rand) (MVAResult, error) {
	if _, err := ForFraction(p); err != nil {
		return MVAResult{}, err
	}
	return runMeanValue(n, func() (Probabilities, Decision) {
		est := EstimateFraction(p, s, r)
		minority, canon := canonicalFraction(est)
		pr, err := ForFraction(canon)
		if err != nil {
			pr = Probabilities{P: canon, Alpha: 1, Beta: 1}
		}
		return pr, minority
	}), nil
}

// runMeanValue executes the per-step mean-value recursion. probs returns,
// for the initiating peer of each step, its decision probabilities and
// which sub-partition it regards as the minority (the analysis of Section 3
// assumes the minority is partition 0; a peer whose sampled estimate puts
// the majority of keys into partition 0 mirrors the roles).
//
// Expected flows per step (minority m, majority M):
//
//	balanced split:       p_m += alpha*u, p_M += alpha*u
//	contacted in m:       p_M += p_m_frac
//	contacted in M:       p_m += beta*p_M_frac, p_M += (1-beta)*p_M_frac
//
// Termination when fewer than half a peer remains undecided (fractional
// steps as in the paper's analysis).
func runMeanValue(n int, probs func() (Probabilities, Decision)) MVAResult {
	var mass [2]float64
	steps := 0
	for {
		u := float64(n) - mass[0] - mass[1]
		if u < 0.5 {
			break
		}
		pr, minority := probs()
		m, maj := 0, 1
		if minority == One {
			m, maj = 1, 0
		}
		total := float64(n)
		pu := (u - 1) / total // probability the contacted peer is undecided
		if pu < 0 {
			pu = 0
		}
		pMin := mass[m] / total
		pMaj := mass[maj] / total
		// Balanced split: both the initiator and the contacted peer decide.
		mass[m] += pr.Alpha * pu
		mass[maj] += pr.Alpha * pu
		// Contacted already in the minority: initiator joins the majority.
		mass[maj] += pMin
		// Contacted in the majority: initiator joins the minority w.p. beta.
		mass[m] += pr.Beta * pMaj
		mass[maj] += (1 - pr.Beta) * pMaj
		steps++
		if steps > 100*n {
			break
		}
	}
	return MVAResult{P0: mass[0], P1: mass[1], Steps: steps}
}

// EstimateFraction simulates a peer estimating the load fraction p of the
// left sub-partition by drawing s Bernoulli(p) samples from its locally
// stored keys and averaging them (Section 3.2). With s <= 0 the exact value
// is returned.
func EstimateFraction(p float64, s int, r *rand.Rand) float64 {
	if s <= 0 {
		return p
	}
	hits := 0
	for i := 0; i < s; i++ {
		if r.Float64() < p {
			hits++
		}
	}
	return float64(hits) / float64(s)
}

// canonicalFraction folds an estimated fraction of partition 0 into the
// canonical range (0, 0.5] used by the probability formulas, together with
// the sub-partition that plays the minority role: for estimates above 1/2
// the roles of the two sub-partitions are mirrored (partition 1 becomes the
// minority).
func canonicalFraction(p0 float64) (minority Decision, p float64) {
	minority, p = Zero, p0
	if p0 > 0.5 {
		minority, p = One, 1-p0
	}
	if p <= 0 {
		p = 1e-4
	}
	return minority, p
}

// clampFraction folds an estimated fraction into the canonical range
// (0, 0.5] used by the probability formulas, discarding the orientation.
func clampFraction(p float64) float64 {
	_, c := canonicalFraction(p)
	return c
}

// TheoreticalInteractions returns the expected total number of interactions
// for n peers predicted by the fluid model: n * t*(p). It is used to check
// simulation results against theory.
func TheoreticalInteractions(p float64, n int) (float64, error) {
	t, err := TerminationTime(p)
	if err != nil {
		return 0, err
	}
	return t * float64(n), nil
}

// AutonomousTheoreticalInteractions returns the asymptotic interactions per
// peer of autonomous partitioning at p = 1/2, which the paper derives to be
// 2*ln 2 per peer versus ln 2 for eager partitioning.
func AutonomousTheoreticalInteractions(n int) float64 {
	return 2 * math.Ln2 * float64(n)
}
