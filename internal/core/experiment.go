package core

import (
	"fmt"
	"math"
	"math/rand"
)

// This file provides the experiment harness behind Figures 4 and 5: for a
// range of load fractions p, it runs the five models (MVA, SAM, AEP, COR,
// AUT) repeatedly and reports the mean deviation of the partition-0 size
// from its expectation n*p and the mean total number of interactions.

// Model identifies one of the five simulated models of Section 3.3.
type Model int

const (
	// ModelMVA is the deterministic mean-value model with known p.
	ModelMVA Model = iota
	// ModelSAM is the mean-value model with p estimated from samples.
	ModelSAM
	// ModelAEP is the discrete simulation with sampled estimates.
	ModelAEP
	// ModelCOR is the discrete simulation with corrected probabilities.
	ModelCOR
	// ModelAUT is the discrete simulation of autonomous partitioning.
	ModelAUT
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelMVA:
		return "MVA"
	case ModelSAM:
		return "SAM"
	case ModelAEP:
		return "AEP"
	case ModelCOR:
		return "COR"
	case ModelAUT:
		return "AUT"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// AllModels lists the models in the paper's presentation order.
func AllModels() []Model { return []Model{ModelMVA, ModelSAM, ModelAEP, ModelCOR, ModelAUT} }

// ExperimentConfig parameterises a Figure 4/5 style experiment.
type ExperimentConfig struct {
	// N is the number of peers (paper: 1000).
	N int
	// Samples is the sample size s used for estimating p (paper: 10).
	Samples int
	// Trials is the number of repetitions per point (paper: 100).
	Trials int
	// Seed makes the experiment deterministic.
	Seed int64
}

// DefaultExperimentConfig returns the parameters used in Section 3.3.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{N: 1000, Samples: 10, Trials: 100, Seed: 1}
}

// Point is one measured point of a Figure 4/5 experiment.
type Point struct {
	Model Model
	// P is the true load fraction.
	P float64
	// MeanDeviation is the mean of N0 - n*p over the trials (Figure 4).
	MeanDeviation float64
	// StdDeviation is the standard deviation of N0 - n*p over the trials.
	StdDeviation float64
	// MeanInteractions is the mean total number of interactions (Figure 5).
	MeanInteractions float64
}

// RunModel executes one trial of the given model and returns the deviation
// of the partition-0 size from n*p and the number of interactions.
func RunModel(m Model, p float64, n, samples int, r *rand.Rand) (deviation, interactions float64, err error) {
	switch m {
	case ModelMVA:
		res, err := MVA(p, n)
		if err != nil {
			return 0, 0, err
		}
		return res.P0 - float64(n)*p, float64(res.Steps), nil
	case ModelSAM:
		res, err := SampledMVA(p, n, samples, r)
		if err != nil {
			return 0, 0, err
		}
		return res.P0 - float64(n)*p, float64(res.Steps), nil
	case ModelAEP, ModelCOR, ModelAUT:
		strategy := StrategyAEP
		if m == ModelCOR {
			strategy = StrategyCOR
		}
		if m == ModelAUT {
			strategy = StrategyAUT
		}
		res, err := Run(Config{N: n, P: p, Samples: samples, Strategy: strategy}, r)
		if err != nil {
			return 0, 0, err
		}
		return res.Deviation(p), float64(res.Interactions), nil
	default:
		return 0, 0, fmt.Errorf("core: unknown model %v", m)
	}
}

// Sweep runs every model over the given load fractions and returns one Point
// per (model, p) pair. This regenerates the data behind Figures 4 and 5.
func Sweep(cfg ExperimentConfig, fractions []float64) ([]Point, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	var out []Point
	for _, m := range AllModels() {
		for _, p := range fractions {
			var devs, ints []float64
			trials := cfg.Trials
			if m == ModelMVA {
				trials = 1 // deterministic
			}
			for t := 0; t < trials; t++ {
				d, i, err := RunModel(m, p, cfg.N, cfg.Samples, r)
				if err != nil {
					return nil, err
				}
				devs = append(devs, d)
				ints = append(ints, i)
			}
			out = append(out, Point{
				Model:            m,
				P:                p,
				MeanDeviation:    mean(devs),
				StdDeviation:     stddev(devs),
				MeanInteractions: mean(ints),
			})
		}
	}
	return out, nil
}

// PaperFractions returns the load fractions plotted in Figures 4 and 5.
func PaperFractions() []float64 {
	return []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
