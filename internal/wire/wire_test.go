package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<63)
	b = AppendString(b, "")
	b = AppendString(b, "hello")
	b = AppendBytes(b, []byte{0, 1, 2})
	b = AppendBool(b, true)
	b = AppendBool(b, false)

	d := NewDecoder(b)
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d.Uvarint(); got != 1<<63 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("string = %q", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("string = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{0, 1, 2}) {
		t.Errorf("bytes = %v", got)
	}
	if got := d.Bool(); !got {
		t.Error("bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("bool = true, want false")
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestDecoderShortInputs(t *testing.T) {
	// A truncated varint, a length running past the end, a missing bool, a
	// non-canonical bool: all must surface ErrShort and stay sticky.
	cases := [][]byte{
		{0x80},           // unterminated varint
		{0x05, 'a', 'b'}, // string length 5, 2 bytes left
		{},               // missing bool byte
		{0x02},           // bool encoded as 2
	}
	reads := []func(d *Decoder){
		func(d *Decoder) { _ = d.Uvarint() },
		func(d *Decoder) { _ = d.String() },
		func(d *Decoder) { _ = d.Bool() },
		func(d *Decoder) { _ = d.Bool() },
	}
	for i, c := range cases {
		d := NewDecoder(c)
		reads[i](d)
		if !errors.Is(d.Err(), ErrShort) {
			t.Errorf("case %d: err = %v, want ErrShort", i, d.Err())
		}
		// Sticky: further reads keep failing and return zero values.
		if v := d.Uvarint(); v != 0 {
			t.Errorf("case %d: read after error = %d", i, v)
		}
	}
}

func TestDecoderHugeLength(t *testing.T) {
	// A length word far beyond MaxLen must fail without allocating.
	b := AppendUvarint(nil, 1<<40)
	d := NewDecoder(b)
	if got := d.Bytes(); got != nil || !errors.Is(d.Err(), ErrShort) {
		t.Errorf("huge length: got %v err %v", got, d.Err())
	}
}

func TestFinishTrailingBytes(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.Bool()
	if err := d.Finish(); !errors.Is(err, ErrShort) {
		t.Errorf("finish with trailing bytes: %v", err)
	}
}

func TestRest(t *testing.T) {
	b := AppendString(nil, "head")
	b = append(b, 0xAA, 0xBB)
	d := NewDecoder(b)
	if got := d.String(); got != "head" {
		t.Fatalf("string = %q", got)
	}
	if got := d.Rest(); !bytes.Equal(got, []byte{0xAA, 0xBB}) {
		t.Errorf("rest = %v", got)
	}
	if d.Len() != 0 {
		t.Errorf("len after rest = %d", d.Len())
	}
}
