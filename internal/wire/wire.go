// Package wire implements the compact binary encoding shared by the TCP
// transport's message frames, the replication WAL's record payloads and the
// binary snapshot format. It is deliberately minimal: length-delimited
// fields, unsigned varints for integers, no schema metadata and no
// reflection — every message type hand-writes its field order, which is
// what pins the encoding (and lets golden-vector tests detect accidental
// format changes).
//
// The encoding primitives are:
//
//   - uvarint: unsigned base-128 varint (encoding/binary.AppendUvarint)
//   - string/bytes: uvarint length followed by the raw bytes
//   - bool: one byte, 0 or 1
//
// Types opt into the codec by implementing Marshaler on the value and
// Unmarshaler on the pointer. Decoders carry a sticky error, so a message
// decoder reads all fields unconditionally and checks Err once at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Marshaler is implemented by message types that can append their binary
// wire encoding to a buffer. Implementations must be deterministic: the
// same value always produces the same bytes.
type Marshaler interface {
	AppendWire(b []byte) []byte
}

// Unmarshaler is implemented (on the pointer type) by message types that
// can reconstruct themselves from their binary wire encoding.
type Unmarshaler interface {
	UnmarshalWire(data []byte) error
}

// ErrShort reports a truncated or malformed field encoding.
var ErrShort = errors.New("wire: short or malformed encoding")

// MaxLen bounds a single length-delimited field (64 MiB): a length word
// decoded from a corrupt or adversarial frame must never drive a huge
// allocation.
const MaxLen = 64 << 20

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v as a zigzag-encoded signed varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendFixed64 appends v as 8 little-endian bytes (used for float bit
// patterns, where a varint would usually be longer).
func AppendFixed64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendString appends a length-delimited string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a length-delimited byte slice.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Decoder reads the primitives back out of a buffer. The zero Decoder over
// a byte slice is ready to use; errors are sticky, so callers can decode a
// whole message and check Err once.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder returns a decoder over data. The decoder aliases the slice; it
// never mutates it.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unconsumed bytes.
func (d *Decoder) Len() int { return len(d.buf) }

// Rest consumes and returns all remaining bytes (aliasing the input).
func (d *Decoder) Rest() []byte {
	if d.err != nil {
		return nil
	}
	r := d.buf
	d.buf = nil
	return r
}

// fail records the sticky error.
func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrShort
	}
}

// Reject marks the decoder failed. Message decoders use it when a field
// decodes structurally but violates a domain constraint (e.g. a key length
// beyond 64 bits), so the failure surfaces through the same sticky-error
// path as a short buffer.
func (d *Decoder) Reject() { d.fail() }

// Uvarint consumes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Varint consumes one zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Fixed64 consumes 8 little-endian bytes.
func (d *Decoder) Fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

// Int consumes one unsigned varint and returns it as an int, failing on
// values that overflow or exceed MaxLen (field counts and lengths are the
// only ints on the wire, and none of them can legitimately be that large).
func (d *Decoder) Int() int {
	v := d.Uvarint()
	if d.err == nil && v > MaxLen {
		d.fail()
		return 0
	}
	return int(v)
}

// Byte consumes one raw byte (used for record tags).
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

// Bytes consumes one length-delimited byte field (aliasing the input).
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxLen || uint64(len(d.buf)) < n {
		d.fail()
		return nil
	}
	p := d.buf[:n]
	d.buf = d.buf[n:]
	return p
}

// String consumes one length-delimited string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Bool consumes one byte as a bool. Any value other than 0 or 1 is an
// encoding error, which keeps the codec canonical (a value round-trips to
// the identical bytes).
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) == 0 {
		d.fail()
		return false
	}
	b := d.buf[0]
	if b > 1 {
		d.fail()
		return false
	}
	d.buf = d.buf[1:]
	return b == 1
}

// Finish fails unless the buffer was consumed exactly, and returns the
// sticky error. Message decoders call it last, so trailing garbage — the
// classic symptom of a field-order mismatch — is an error, not silence.
func (d *Decoder) Finish() error {
	if d.err == nil && len(d.buf) != 0 {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrShort, len(d.buf))
	}
	return d.err
}
