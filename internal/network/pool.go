package network

// This file implements the client side of the pooled binary transport: one
// persistent multiplexed connection per destination, a read loop that
// correlates response frames to waiting callers by message id, and an idle
// watchdog that reclaims connections nobody is using. Dial, TLS-free
// framing and the serving side live in tcp.go/binary.go.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// errConnDied reports that a pooled connection closed while a call was
// waiting on it, before its response arrived. Call uses it to decide
// whether the peer might be a legacy JSON node. It wraps ErrUnreachable so
// callers classifying peer-down failures see the same error identity as
// every other connectivity failure.
var errConnDied = fmt.Errorf("%w: pooled connection closed", ErrUnreachable)

// errorsIsConnDied reports whether an error chain contains errConnDied.
func errorsIsConnDied(err error) bool { return errors.Is(err, errConnDied) }

// maxPoolEntries triggers a sweep of dead pool entries when the map has
// accumulated this many destinations (churn creates ever-new addresses;
// live connections are never evicted).
const maxPoolEntries = 1024

// connPool holds one persistent connection per destination address.
type connPool struct {
	e *TCPEndpoint

	mu      sync.Mutex
	entries map[Addr]*poolEntry
	closed  bool
}

// poolEntry serialises dialing per destination: concurrent callers to the
// same peer wait for one dial instead of racing their own.
type poolEntry struct {
	mu sync.Mutex
	pc *poolConn
}

func newConnPool(e *TCPEndpoint) *connPool {
	return &connPool{e: e, entries: make(map[Addr]*poolEntry)}
}

// get returns the live pooled connection to a destination, dialing one if
// needed. cached reports whether the connection pre-existed this call —
// a write failure on a cached connection is worth one retry, a failure on
// a connection dialed just now is not.
func (p *connPool) get(ctx context.Context, to Addr) (pc *poolConn, cached bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, ErrClosed
	}
	ent, ok := p.entries[to]
	if !ok {
		if len(p.entries) >= maxPoolEntries {
			p.pruneLocked()
		}
		ent = &poolEntry{}
		p.entries[to] = ent
	}
	p.mu.Unlock()

	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.pc != nil && !ent.pc.isClosed() {
		return ent.pc, true, nil
	}
	d := net.Dialer{Timeout: p.e.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	// Re-check under p.mu after the dial: closeAll may have run while we
	// were dialing, and registering a connection (and its WaitGroup
	// goroutines) after it would leak past Close. Holding p.mu across the
	// construction orders the WaitGroup Add strictly before Close's Wait.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return nil, false, ErrClosed
	}
	pc = newPoolConn(p.e, to, conn)
	p.mu.Unlock()
	ent.pc = pc
	return pc, false, nil
}

// drop discards a connection that failed, if it is still the pooled one,
// and removes the peer's (now connection-less) pool entry so the map does
// not grow with every address ever contacted. A concurrent get() holding
// the old entry simply dials into it and works; the next caller creates a
// fresh entry.
func (p *connPool) drop(to Addr, pc *poolConn) {
	p.mu.Lock()
	ent := p.entries[to]
	p.mu.Unlock()
	removeEntry := false
	if ent != nil {
		ent.mu.Lock()
		if ent.pc == pc {
			ent.pc = nil
			removeEntry = true
		}
		ent.mu.Unlock()
	}
	if removeEntry {
		p.mu.Lock()
		if p.entries[to] == ent {
			delete(p.entries, to)
		}
		p.mu.Unlock()
	}
	pc.close()
}

// prune sweeps entries whose connection is gone or closed (idle-reclaimed
// conns leave their entry behind). Callers must hold p.mu.
func (p *connPool) pruneLocked() {
	for to, ent := range p.entries {
		if !ent.mu.TryLock() {
			continue
		}
		dead := ent.pc == nil || ent.pc.isClosed()
		ent.mu.Unlock()
		if dead {
			delete(p.entries, to)
		}
	}
}

// closeAll tears the pool down (endpoint Close).
func (p *connPool) closeAll() {
	p.mu.Lock()
	p.closed = true
	entries := p.entries
	p.entries = make(map[Addr]*poolEntry)
	p.mu.Unlock()
	for _, ent := range entries {
		ent.mu.Lock()
		if ent.pc != nil {
			ent.pc.close()
			ent.pc = nil
		}
		ent.mu.Unlock()
	}
}

// poolConn is one persistent multiplexed connection. Requests are written
// under the frame writer's lock; the read loop delivers responses to the
// per-id pending channels.
type poolConn struct {
	e    *TCPEndpoint
	to   Addr
	conn net.Conn
	fw   *frameWriter

	activity atomic.Int64
	inflight atomic.Int64
	nextID   atomic.Uint64
	// markedBinary keeps the endpoint-global binary-peer bookkeeping off
	// the per-response hot path: it is recorded once per connection.
	markedBinary atomic.Bool

	mu      sync.Mutex
	pending map[uint64]chan *binMsg
	closed  bool
	done    chan struct{}
}

func newPoolConn(e *TCPEndpoint, to Addr, conn net.Conn) *poolConn {
	pc := &poolConn{
		e:       e,
		to:      to,
		conn:    conn,
		pending: make(map[uint64]chan *binMsg),
		done:    make(chan struct{}),
	}
	pc.activity.Store(time.Now().UnixNano())
	pc.fw = newFrameWriter(conn, e.idleTimeout(), &pc.activity)
	e.wg.Add(2)
	go func() {
		defer e.wg.Done()
		pc.readLoop()
	}()
	go func() {
		defer e.wg.Done()
		connWatchdog(conn, e.idleTimeout(), &pc.activity, &pc.inflight, pc.done)
	}()
	return pc
}

// register allocates a message id and its response channel.
func (pc *poolConn) register() (uint64, chan *binMsg) {
	id := pc.nextID.Add(1)
	ch := make(chan *binMsg, 1)
	pc.inflight.Add(1)
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		pc.inflight.Add(-1)
		close(ch)
		return id, ch
	}
	pc.pending[id] = ch
	pc.mu.Unlock()
	return id, ch
}

// cancel abandons a registered call (timeout, context cancellation, write
// failure). A response that still arrives for the id is dropped.
func (pc *poolConn) cancel(id uint64) {
	pc.mu.Lock()
	if _, ok := pc.pending[id]; ok {
		delete(pc.pending, id)
		pc.inflight.Add(-1)
	}
	pc.mu.Unlock()
}

// await blocks until the call's response, its context's cancellation, or
// the default call timeout when the context carries no deadline.
func (pc *poolConn) await(ctx context.Context, id uint64, ch chan *binMsg) (*binMsg, error) {
	var timeout <-chan time.Time
	if _, ok := ctx.Deadline(); !ok {
		t := time.NewTimer(pc.e.callTimeout())
		defer t.Stop()
		timeout = t.C
	}
	select {
	case msg, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("%w: %s", errConnDied, pc.to)
		}
		return msg, nil
	case <-ctx.Done():
		pc.cancel(id)
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, ctx.Err())
	case <-timeout:
		pc.cancel(id)
		return nil, fmt.Errorf("%w: call timed out after %v", ErrUnreachable, pc.e.callTimeout())
	}
}

// readLoop delivers response messages to their waiting callers until the
// connection fails or closes.
func (pc *poolConn) readLoop() {
	defer pc.close()
	br := bufio.NewReaderSize(&activityReader{r: pc.conn, activity: &pc.activity}, 32<<10)
	asm := newFragAssembler(pc.e.maxMessage())
	for {
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		if len(payload) == 0 || payload[0] != magicBinary {
			return // a binary client never receives JSON frames
		}
		fr, err := parseBinFrame(payload)
		if err != nil {
			return
		}
		msg, err := asm.add(fr)
		if err != nil {
			return
		}
		if msg == nil {
			continue
		}
		if msg.flags&fResp == 0 {
			return // a client never receives requests
		}
		if pc.markedBinary.CompareAndSwap(false, true) {
			pc.e.markBinary(pc.to)
		}
		pc.mu.Lock()
		ch, ok := pc.pending[msg.id]
		if ok {
			delete(pc.pending, msg.id)
			pc.inflight.Add(-1)
		}
		pc.mu.Unlock()
		if ok {
			ch <- msg // buffered; the only send for this id
		}
	}
}

// isClosed reports whether the connection has been torn down.
func (pc *poolConn) isClosed() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.closed
}

// close tears the connection down and fails every pending call.
func (pc *poolConn) close() {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return
	}
	pc.closed = true
	pending := pc.pending
	pc.pending = make(map[uint64]chan *binMsg)
	close(pc.done)
	pc.mu.Unlock()
	_ = pc.conn.Close()
	for range pending {
		pc.inflight.Add(-1)
	}
	for _, ch := range pending {
		close(ch)
	}
}
