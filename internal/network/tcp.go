package network

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/wire"
)

// This file implements the real TCP transport. Two codecs share its
// length-prefixed framing:
//
//   - The binary protocol (binary.go): pooled persistent connections that
//     multiplex id-correlated request/response frames per peer, compact
//     wire-codec bodies for message types that implement wire.Marshaler /
//     wire.Unmarshaler, and fragmentation for messages larger than one
//     frame. This is the default.
//   - The legacy JSON envelope: one short-lived connection per call, a
//     reflective JSON body, no ids. It is kept as the negotiated fallback so
//     mixed-version clusters interoperate: a new node answers legacy frames
//     in kind, and a caller whose binary probe dies unanswered retries the
//     call over JSON and temporarily pins the peer as legacy.
//
// Message payload types must be registered with RegisterType so they can be
// reconstructed on the receiving side.

// typeInfo describes one registered payload type.
type typeInfo struct {
	t reflect.Type
	// binary reports that the type implements the compact wire codec
	// (wire.Marshaler on the value, wire.Unmarshaler on the pointer).
	binary bool
}

// typeRegistry maps symbolic type names to payload types; typeNames is the
// reverse index, so resolving a value's wire name on every outgoing message
// is one map lookup instead of a linear scan of the registry.
var (
	typeRegistryMu sync.RWMutex
	typeRegistry   = map[string]typeInfo{}
	typeNames      = map[reflect.Type]string{}
)

// wireUnmarshalerType is the interface a pointer type must implement for
// the binary codec path.
var wireUnmarshalerType = reflect.TypeOf((*wire.Unmarshaler)(nil)).Elem()

// RegisterType registers a payload type under a symbolic name for use with
// the TCP transport. The sample value is used only for its type; register
// the value type (not a pointer). Registering the same name twice with the
// same type is a no-op; re-registering a name with a different type panics,
// as that is always a programming error.
//
// A type that implements wire.Marshaler (and wire.Unmarshaler on its
// pointer) travels with its compact binary encoding; other types fall back
// to a JSON body, still multiplexed over pooled connections.
func RegisterType(name string, sample any) {
	t := reflect.TypeOf(sample)
	_, marshals := sample.(wire.Marshaler)
	info := typeInfo{t: t, binary: marshals && reflect.PointerTo(t).Implements(wireUnmarshalerType)}
	typeRegistryMu.Lock()
	defer typeRegistryMu.Unlock()
	if prev, ok := typeRegistry[name]; ok && prev.t != t {
		panic(fmt.Sprintf("network: type name %q already registered with %v", name, prev.t))
	}
	typeRegistry[name] = info
	typeNames[t] = name
}

// lookupType resolves a registered type name.
func lookupType(name string) (typeInfo, bool) {
	typeRegistryMu.RLock()
	defer typeRegistryMu.RUnlock()
	info, ok := typeRegistry[name]
	return info, ok
}

// typeName returns the registered name for a value's type, or "" if it is
// not registered. It is on the hot path of every outgoing message, hence
// the reverse map rather than a registry scan.
func typeName(v any) string {
	t := reflect.TypeOf(v)
	typeRegistryMu.RLock()
	defer typeRegistryMu.RUnlock()
	return typeNames[t]
}

// resolveType returns a value's registered wire name and type info in one
// registry acquisition (the outgoing-message hot path).
func resolveType(v any) (string, typeInfo, bool) {
	t := reflect.TypeOf(v)
	typeRegistryMu.RLock()
	defer typeRegistryMu.RUnlock()
	name, ok := typeNames[t]
	if !ok {
		return "", typeInfo{}, false
	}
	return name, typeRegistry[name], true
}

// binaryCapable reports whether a value's registered type carries the
// compact binary codec.
func binaryCapable(v any) bool {
	_, info, ok := resolveType(v)
	return ok && info.binary
}

// envelope is the legacy JSON wire format, kept for mixed-version
// interoperability and as the body encoding of types without a binary
// codec.
type envelope struct {
	From Addr            `json:"from"`
	Type string          `json:"type"`
	Body json.RawMessage `json:"body"`
	Err  string          `json:"err,omitempty"`
}

// maxFrame bounds the size of a single wire frame (16 MiB). Larger binary
// messages are fragmented (binary.go); a JSON envelope that exceeds it
// cannot be sent, as in every earlier version of the protocol.
const maxFrame = 16 << 20

// frameHeaderLen is the length prefix size.
const frameHeaderLen = 4

// appendFrame appends one length-prefixed frame with payload a||b to dst.
func appendFrame(dst, a, b []byte) ([]byte, error) {
	n := len(a) + len(b)
	if n > maxFrame {
		return nil, fmt.Errorf("network: frame too large: %d bytes", n)
	}
	var lenBuf [frameHeaderLen]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(n))
	dst = append(dst, lenBuf[:]...)
	dst = append(dst, a...)
	return append(dst, b...), nil
}

// writeFrame writes one length-prefixed frame as a single Write call, so
// the length prefix and the body can never be split into separate writes
// onto an unbuffered connection.
func writeFrame(w io.Writer, payload []byte) error {
	buf, err := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload, nil)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// writeFrameParts writes one frame into a buffered writer as prefix, a, b.
// Callers flush once per message, so the underlying connection still sees
// coalesced writes.
func writeFrameParts(w *bufio.Writer, a, b []byte) error {
	n := len(a) + len(b)
	if n > maxFrame {
		return fmt.Errorf("network: frame too large: %d bytes", n)
	}
	var lenBuf [frameHeaderLen]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(n))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(a); err != nil {
		return err
	}
	if len(b) > 0 {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed frame payload.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [frameHeaderLen]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("network: frame too large: %d bytes", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encodePayload wraps a payload value into a legacy JSON envelope.
func encodePayload(from Addr, v any) (envelope, error) {
	name := typeName(v)
	if name == "" {
		return envelope{}, fmt.Errorf("network: payload type %T not registered", v)
	}
	body, err := json.Marshal(v)
	if err != nil {
		return envelope{}, fmt.Errorf("network: encode payload: %w", err)
	}
	return envelope{From: from, Type: name, Body: body}, nil
}

// decodePayload reconstructs the payload value of a JSON envelope.
func decodePayload(env envelope) (any, error) {
	info, ok := lookupType(env.Type)
	if !ok {
		return nil, fmt.Errorf("network: unknown payload type %q", env.Type)
	}
	ptr := reflect.New(info.t)
	if err := json.Unmarshal(env.Body, ptr.Interface()); err != nil {
		return nil, fmt.Errorf("network: decode payload %q: %w", env.Type, err)
	}
	return ptr.Elem().Interface(), nil
}

// Transport timing and size defaults.
const (
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 5 * time.Second
	// DefaultCallTimeout bounds one call when the caller's context carries
	// no deadline. A context deadline always takes precedence.
	DefaultCallTimeout = 30 * time.Second
	// DefaultIdleTimeout is how long a pooled or serving connection may sit
	// with no frames, no bytes and no requests in flight before it is
	// closed. Activity refreshes it per frame, so a long transfer or a slow
	// handler never trips it.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultMaxMessage bounds one reassembled fragmented message (256 MiB).
	DefaultMaxMessage = 256 << 20
	// legacyPinTTL is how long a peer stays pinned to the legacy JSON
	// dial-per-call path after a successful fallback, before the binary
	// protocol is probed again. It keeps a mixed-version cluster from
	// paying a failed probe on every call, while an upgraded peer is picked
	// up within the TTL.
	legacyPinTTL = time.Minute
)

// TCPOptions tunes a TCPEndpoint. The zero value of every field selects
// its default, so callers set only what they care about.
type TCPOptions struct {
	// DialTimeout bounds connection establishment (DefaultDialTimeout).
	DialTimeout time.Duration
	// CallTimeout bounds one outgoing call when the caller's context has no
	// deadline (DefaultCallTimeout). The old transport hardcoded 30s here
	// and on every serving connection.
	CallTimeout time.Duration
	// IdleTimeout is the per-connection idle horizon (DefaultIdleTimeout),
	// refreshed by every frame in either direction and suspended while
	// requests are in flight. It replaces the old absolute 30s serve
	// deadline that killed legitimately long syncs.
	IdleTimeout time.Duration
	// FrameLimit caps the frames this endpoint writes (the 16 MiB protocol
	// cap when zero); larger messages are fragmented. Lowering it is mainly
	// useful in tests that exercise fragmentation without multi-MiB
	// payloads. Received frames are always accepted up to the protocol cap.
	FrameLimit int
	// MaxMessage bounds one reassembled message (DefaultMaxMessage). It is
	// the effective cap on an anti-entropy rebuild image.
	MaxMessage int
	// ForceJSON pins every outgoing call to the legacy JSON dial-per-call
	// path, exactly reproducing the pre-binary transport. It exists for
	// mixed-version tests and as the benchmark baseline.
	ForceJSON bool
}

// TCPEndpoint is a Transport backed by a TCP listener. Outgoing calls are
// multiplexed over one pooled persistent connection per destination using
// the binary wire protocol; peers that do not speak it are served via the
// legacy JSON dial-per-call fallback.
type TCPEndpoint struct {
	listener net.Listener
	addr     Addr

	mu      sync.RWMutex
	handler Handler
	closed  bool
	opts    TCPOptions

	wg sync.WaitGroup

	// Calls tracks this endpoint's outgoing calls in flight and their
	// high-water mark, mirroring the simulated network's accounting.
	Calls InFlightGauge

	pool *connPool

	// serveMu guards the set of live incoming connections, so Close can
	// tear them down instead of waiting for their idle horizon.
	serveMu     sync.Mutex
	serveConns  map[net.Conn]struct{}
	serveClosed bool

	// peersMu guards the per-peer protocol knowledge below.
	peersMu sync.Mutex
	// binaryPeers records peers that have answered in the binary protocol;
	// the JSON fallback is never taken for them, so a transient connection
	// failure cannot demote an up-to-date peer.
	binaryPeers map[Addr]bool
	// legacyUntil pins peers whose binary probe failed but whose JSON
	// fallback succeeded; entries expire after legacyPinTTL.
	legacyUntil map[Addr]time.Time
}

// ListenTCP creates a TCP endpoint bound to the given address ("host:port";
// use ":0" to pick a free port) with default options.
func ListenTCP(addr string) (*TCPEndpoint, error) {
	return ListenTCPOptions(addr, TCPOptions{})
}

// ListenTCPOptions creates a TCP endpoint with explicit options.
func ListenTCPOptions(addr string, opts TCPOptions) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen: %w", err)
	}
	ep := &TCPEndpoint{
		listener:    l,
		addr:        Addr(l.Addr().String()),
		opts:        opts,
		serveConns:  make(map[net.Conn]struct{}),
		binaryPeers: make(map[Addr]bool),
		legacyUntil: make(map[Addr]time.Time),
	}
	ep.pool = newConnPool(ep)
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// SetOptions replaces the endpoint's options (zero fields select their
// defaults). Connections established before the call keep the timing they
// were created with.
func (e *TCPEndpoint) SetOptions(opts TCPOptions) {
	e.mu.Lock()
	e.opts = opts
	e.mu.Unlock()
}

// Options returns the endpoint's current options.
func (e *TCPEndpoint) Options() TCPOptions {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts
}

// Configured values with zero-value defaulting, so a zero TCPOptions cannot
// divide by zero or disable a cap.
func (e *TCPEndpoint) dialTimeout() time.Duration {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.opts.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return e.opts.DialTimeout
}

func (e *TCPEndpoint) callTimeout() time.Duration {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.opts.CallTimeout <= 0 {
		return DefaultCallTimeout
	}
	return e.opts.CallTimeout
}

func (e *TCPEndpoint) idleTimeout() time.Duration {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.opts.IdleTimeout <= 0 {
		return DefaultIdleTimeout
	}
	return e.opts.IdleTimeout
}

func (e *TCPEndpoint) frameLimit() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.opts.FrameLimit <= 0 || e.opts.FrameLimit > maxFrame {
		return maxFrame
	}
	if e.opts.FrameLimit < 512 {
		return 512
	}
	return e.opts.FrameLimit
}

func (e *TCPEndpoint) maxMessage() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.opts.MaxMessage <= 0 {
		return DefaultMaxMessage
	}
	return e.opts.MaxMessage
}

func (e *TCPEndpoint) forceJSON() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts.ForceJSON
}

// Addr implements Transport.
func (e *TCPEndpoint) Addr() Addr { return e.addr }

// Handle implements Transport.
func (e *TCPEndpoint) Handle(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Close implements Transport.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.listener.Close()
	e.pool.closeAll()
	e.serveMu.Lock()
	e.serveClosed = true
	for conn := range e.serveConns {
		_ = conn.Close()
	}
	e.serveMu.Unlock()
	e.wg.Wait()
	return err
}

// trackServeConn registers a live incoming connection; it reports false
// when the endpoint is already closing. The closed check and the insert
// happen under the same lock Close sweeps under, so a connection accepted
// concurrently with Close can never be registered after the sweep (which
// would leave Close waiting on it until its idle horizon).
func (e *TCPEndpoint) trackServeConn(conn net.Conn) bool {
	e.serveMu.Lock()
	defer e.serveMu.Unlock()
	if e.serveClosed {
		return false
	}
	e.serveConns[conn] = struct{}{}
	return true
}

// untrackServeConn removes a finished incoming connection.
func (e *TCPEndpoint) untrackServeConn(conn net.Conn) {
	e.serveMu.Lock()
	delete(e.serveConns, conn)
	e.serveMu.Unlock()
}

// maxPeerKnowledge bounds the per-peer protocol maps on endpoints that
// contact an unbounded stream of ephemeral addresses (churn): beyond it,
// half the entries are evicted. Losing an entry only costs a re-probe.
const maxPeerKnowledge = 8192

// markBinary records that a peer answered in the binary protocol.
func (e *TCPEndpoint) markBinary(a Addr) {
	e.peersMu.Lock()
	if len(e.binaryPeers) >= maxPeerKnowledge {
		n := 0
		for k := range e.binaryPeers {
			delete(e.binaryPeers, k)
			if n++; n >= maxPeerKnowledge/2 {
				break
			}
		}
	}
	e.binaryPeers[a] = true
	delete(e.legacyUntil, a)
	e.peersMu.Unlock()
}

// knownBinary reports whether a peer has ever answered in the binary
// protocol.
func (e *TCPEndpoint) knownBinary(a Addr) bool {
	e.peersMu.Lock()
	defer e.peersMu.Unlock()
	return e.binaryPeers[a]
}

// pinLegacy routes a peer's calls through the JSON fallback until the pin
// expires. Expired pins are swept opportunistically so the map stays
// bounded by the set of recently contacted legacy peers.
func (e *TCPEndpoint) pinLegacy(a Addr) {
	now := time.Now()
	e.peersMu.Lock()
	if len(e.legacyUntil) >= maxPeerKnowledge {
		for k, until := range e.legacyUntil {
			if now.After(until) {
				delete(e.legacyUntil, k)
			}
		}
	}
	e.legacyUntil[a] = now.Add(legacyPinTTL)
	e.peersMu.Unlock()
}

// pinnedLegacy reports whether a peer currently bypasses the binary
// protocol.
func (e *TCPEndpoint) pinnedLegacy(a Addr) bool {
	e.peersMu.Lock()
	defer e.peersMu.Unlock()
	until, ok := e.legacyUntil[a]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(e.legacyUntil, a)
		return false
	}
	return true
}

// acceptLoop serves incoming connections until the listener closes.
func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return
		}
		if !e.trackServeConn(conn) {
			conn.Close()
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer e.untrackServeConn(conn)
			defer conn.Close()
			e.serveConn(conn)
		}()
	}
}

// serveConn reads frames off one incoming connection until it closes or
// goes idle. Binary requests are dispatched concurrently and answered by
// id; legacy JSON envelopes are answered in the legacy one-exchange-per-
// connection protocol (the remote closes after reading its response).
func (e *TCPEndpoint) serveConn(conn net.Conn) {
	idle := e.idleTimeout()
	var activity, inflight atomic.Int64
	activity.Store(time.Now().UnixNano())
	done := make(chan struct{})
	defer close(done)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		connWatchdog(conn, idle, &activity, &inflight, done)
	}()

	br := bufio.NewReaderSize(&activityReader{r: conn, activity: &activity}, 32<<10)
	fw := newFrameWriter(conn, idle, &activity)
	asm := newFragAssembler(e.maxMessage())
	for {
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		if len(payload) > 0 && payload[0] == magicBinary {
			fr, err := parseBinFrame(payload)
			if err != nil {
				return
			}
			msg, err := asm.add(fr)
			if err != nil {
				return
			}
			if msg == nil {
				continue
			}
			if msg.flags&fResp != 0 {
				return // a server never receives responses
			}
			inflight.Add(1)
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				defer inflight.Add(-1)
				e.serveBinRequest(fw, msg)
			}()
		} else {
			var env envelope
			if err := json.Unmarshal(payload, &env); err != nil {
				return
			}
			inflight.Add(1)
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				defer inflight.Add(-1)
				e.serveJSONRequest(fw, env)
			}()
		}
	}
}

// activityReader stamps the shared activity clock on every successful read,
// so the idle watchdog sees slow multi-frame transfers as live.
type activityReader struct {
	r        io.Reader
	activity *atomic.Int64
}

func (a *activityReader) Read(p []byte) (int, error) {
	n, err := a.r.Read(p)
	if n > 0 {
		a.activity.Store(time.Now().UnixNano())
	}
	return n, err
}

// serveBinRequest runs the handler for one binary request and writes the
// response message.
func (e *TCPEndpoint) serveBinRequest(fw *frameWriter, msg *binMsg) {
	e.mu.RLock()
	handler := e.handler
	closed := e.closed
	e.mu.RUnlock()

	fail := func(err error) {
		_ = fw.writeMsg(context.Background(), fResp|fErr, msg.id, e.addr, "", []byte(err.Error()), e.frameLimit())
	}
	switch {
	case closed:
		fail(ErrClosed)
	case handler == nil:
		fail(ErrNoHandler)
	default:
		req, err := decodeBinBody(msg.typ, msg.body, msg.flags&fJSON != 0)
		if err != nil {
			fail(err)
			return
		}
		resp, herr := handler(context.Background(), msg.from, req)
		if herr != nil {
			fail(herr)
			return
		}
		bp := getBodyBuf()
		name, body, jsonBody, err := encodeBinBody((*bp)[:0], resp)
		if err != nil {
			putBodyBuf(bp, nil)
			fail(err)
			return
		}
		var fl byte
		if jsonBody {
			fl = fJSON
		}
		_ = fw.writeMsg(context.Background(), fResp|fl, msg.id, e.addr, name, body, e.frameLimit())
		putBodyBuf(bp, body)
	}
}

// serveJSONRequest runs the handler for one legacy JSON request and writes
// the JSON response envelope.
func (e *TCPEndpoint) serveJSONRequest(fw *frameWriter, env envelope) {
	e.mu.RLock()
	handler := e.handler
	closed := e.closed
	e.mu.RUnlock()

	var out envelope
	switch {
	case closed:
		out = envelope{From: e.addr, Err: ErrClosed.Error()}
	case handler == nil:
		out = envelope{From: e.addr, Err: ErrNoHandler.Error()}
	default:
		req, derr := decodePayload(env)
		if derr != nil {
			out = envelope{From: e.addr, Err: derr.Error()}
			break
		}
		resp, herr := handler(context.Background(), env.From, req)
		if herr != nil {
			out = envelope{From: e.addr, Err: herr.Error()}
			break
		}
		var err error
		out, err = encodePayload(e.addr, resp)
		if err != nil {
			out = envelope{From: e.addr, Err: err.Error()}
		}
	}
	body, err := json.Marshal(out)
	if err != nil {
		return
	}
	_ = fw.writeRaw(body)
}

// Call implements Transport. Calls default to the pooled binary protocol;
// when a peer's connection dies without it ever having spoken binary, the
// call is retried once over the legacy JSON dial-per-call path and the peer
// is pinned legacy for legacyPinTTL.
func (e *TCPEndpoint) Call(ctx context.Context, to Addr, req any) (any, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	e.Calls.enter()
	defer e.Calls.exit()

	if e.forceJSON() || e.pinnedLegacy(to) {
		return e.callJSON(ctx, to, req)
	}
	resp, err := e.callPooled(ctx, to, req)
	if err != nil && errorsIsConnDied(err) && !e.knownBinary(to) {
		// The peer closed the connection without ever speaking the binary
		// protocol — most likely a legacy JSON-only node. Retry this call
		// over the legacy path and, if that works, pin the peer.
		//
		// This retry can replay a request that the remote already executed:
		// a binary-capable peer that dies after running the handler but
		// before responding is indistinguishable from a legacy node
		// rejecting the frame. The overlay protocol tolerates duplicate
		// delivery by construction (α-raced routing already duplicates
		// requests; mutations carry dedup IDs and generation-stamped
		// idempotent merges), so the transport trades at-most-once for
		// mixed-version interoperability only on this first-contact path.
		jresp, jerr := e.callJSON(ctx, to, req)
		if jerr == nil {
			e.pinLegacy(to)
			return jresp, nil
		}
		var re *RemoteError
		if errors.As(jerr, &re) {
			// The peer answered over JSON with an application-level error —
			// proof it speaks the legacy protocol. Pin it and surface the
			// real error instead of masking it as unreachable.
			e.pinLegacy(to)
			return nil, jerr
		}
		return nil, fmt.Errorf("%w: connection closed before response", ErrUnreachable)
	}
	return resp, err
}

// callJSON performs one legacy dial-per-call JSON exchange.
func (e *TCPEndpoint) callJSON(ctx context.Context, to Addr, req any) (any, error) {
	env, err := encodePayload(e.addr, req)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("network: encode frame: %w", err)
	}
	d := net.Dialer{Timeout: e.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	} else {
		_ = conn.SetDeadline(time.Now().Add(e.callTimeout()))
	}
	if err := writeFrame(conn, body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	payload, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	var respEnv envelope
	if err := json.Unmarshal(payload, &respEnv); err != nil {
		return nil, fmt.Errorf("network: decode frame: %w", err)
	}
	if respEnv.Err != "" {
		return nil, &RemoteError{Msg: respEnv.Err}
	}
	return decodePayload(respEnv)
}

// callPooled performs one call over the peer's pooled multiplexed
// connection, dialing it if needed. A write failure on a cached connection
// (the classic stale-pool race: the peer closed it while we grabbed it) is
// retried once on a fresh connection; once the request has been written,
// it is never retried *here* — the only replay in the transport is Call's
// JSON fallback toward peers never seen speaking binary (see the comment
// there for why that is safe at the protocol layer).
func (e *TCPEndpoint) callPooled(ctx context.Context, to Addr, req any) (any, error) {
	bp := getBodyBuf()
	name, body, jsonBody, err := encodeBinBody((*bp)[:0], req)
	if err != nil {
		putBodyBuf(bp, nil)
		return nil, err
	}
	// The body is only read during writeMsg (frames are assembled into the
	// writer's own scratch), so it can be recycled as soon as the call
	// returns — including the retry attempt.
	defer func() { putBodyBuf(bp, body) }()
	// CallTimeout bounds the whole call — the write phase included — when
	// the caller's context carries no deadline, matching what the old
	// transport's absolute connection deadline guaranteed.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.callTimeout())
		defer cancel()
	}
	var flags byte
	if jsonBody {
		flags = fJSON
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		pc, cached, err := e.pool.get(ctx, to)
		if err != nil {
			return nil, err
		}
		id, ch := pc.register()
		if err := pc.fw.writeMsg(ctx, flags, id, e.addr, name, body, e.frameLimit()); err != nil {
			pc.cancel(id)
			e.pool.drop(to, pc)
			lastErr = err
			if cached {
				continue
			}
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		msg, err := pc.await(ctx, id, ch)
		if err != nil {
			return nil, err
		}
		if msg.flags&fErr != 0 {
			return nil, &RemoteError{Msg: string(msg.body)}
		}
		return decodeBinBody(msg.typ, msg.body, msg.flags&fJSON != 0)
	}
	return nil, fmt.Errorf("%w: %v", ErrUnreachable, lastErr)
}
