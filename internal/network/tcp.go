package network

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"time"
)

// This file implements a real TCP transport with a length-prefixed JSON
// codec, so the same overlay protocol that runs in the simulator can run as
// an actual distributed system (cmd/pgridnode). Message payload types must
// be registered with RegisterType so they can be reconstructed on the
// receiving side.

// typeRegistry maps symbolic type names to constructors of pointer values
// the JSON decoder can fill.
var (
	typeRegistryMu sync.RWMutex
	typeRegistry   = map[string]reflect.Type{}
)

// RegisterType registers a payload type under a symbolic name for use with
// the TCP transport. The sample value is used only for its type; register
// the value type (not a pointer). Registering the same name twice with the
// same type is a no-op; re-registering a name with a different type panics,
// as that is always a programming error.
func RegisterType(name string, sample any) {
	t := reflect.TypeOf(sample)
	typeRegistryMu.Lock()
	defer typeRegistryMu.Unlock()
	if prev, ok := typeRegistry[name]; ok && prev != t {
		panic(fmt.Sprintf("network: type name %q already registered with %v", name, prev))
	}
	typeRegistry[name] = t
}

// lookupType resolves a registered type name.
func lookupType(name string) (reflect.Type, bool) {
	typeRegistryMu.RLock()
	defer typeRegistryMu.RUnlock()
	t, ok := typeRegistry[name]
	return t, ok
}

// typeName returns the registered name for a value's type, or "" if it is
// not registered.
func typeName(v any) string {
	t := reflect.TypeOf(v)
	typeRegistryMu.RLock()
	defer typeRegistryMu.RUnlock()
	for name, rt := range typeRegistry {
		if rt == t {
			return name
		}
	}
	return ""
}

// envelope is the wire format of the TCP transport.
type envelope struct {
	From Addr            `json:"from"`
	Type string          `json:"type"`
	Body json.RawMessage `json:"body"`
	Err  string          `json:"err,omitempty"`
}

// maxFrame bounds the size of a single message frame (16 MiB).
const maxFrame = 16 << 20

// writeFrame writes a length-prefixed JSON frame.
func writeFrame(w io.Writer, env envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("network: encode frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("network: frame too large: %d bytes", len(body))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads a length-prefixed JSON frame.
func readFrame(r io.Reader) (envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return envelope{}, fmt.Errorf("network: frame too large: %d bytes", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return envelope{}, fmt.Errorf("network: decode frame: %w", err)
	}
	return env, nil
}

// encodePayload wraps a payload value into an envelope.
func encodePayload(from Addr, v any) (envelope, error) {
	name := typeName(v)
	if name == "" {
		return envelope{}, fmt.Errorf("network: payload type %T not registered", v)
	}
	body, err := json.Marshal(v)
	if err != nil {
		return envelope{}, fmt.Errorf("network: encode payload: %w", err)
	}
	return envelope{From: from, Type: name, Body: body}, nil
}

// decodePayload reconstructs the payload value of an envelope.
func decodePayload(env envelope) (any, error) {
	t, ok := lookupType(env.Type)
	if !ok {
		return nil, fmt.Errorf("network: unknown payload type %q", env.Type)
	}
	ptr := reflect.New(t)
	if err := json.Unmarshal(env.Body, ptr.Interface()); err != nil {
		return nil, fmt.Errorf("network: decode payload %q: %w", env.Type, err)
	}
	return ptr.Elem().Interface(), nil
}

// TCPEndpoint is a Transport backed by a TCP listener. Each Call opens a
// short-lived connection to the destination, sends one request frame and
// reads one response frame.
type TCPEndpoint struct {
	listener net.Listener
	addr     Addr

	mu      sync.RWMutex
	handler Handler
	closed  bool

	wg sync.WaitGroup
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration

	// Calls tracks this endpoint's outgoing calls in flight and their
	// high-water mark, mirroring the simulated network's accounting.
	Calls InFlightGauge
}

// ListenTCP creates a TCP endpoint bound to the given address ("host:port";
// use ":0" to pick a free port).
func ListenTCP(addr string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen: %w", err)
	}
	ep := &TCPEndpoint{
		listener:    l,
		addr:        Addr(l.Addr().String()),
		DialTimeout: 5 * time.Second,
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr implements Transport.
func (e *TCPEndpoint) Addr() Addr { return e.addr }

// Handle implements Transport.
func (e *TCPEndpoint) Handle(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Close implements Transport.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.listener.Close()
	e.wg.Wait()
	return err
}

// acceptLoop serves incoming connections until the listener closes.
func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer conn.Close()
			e.serveConn(conn)
		}()
	}
}

// serveConn handles one incoming request/response exchange.
func (e *TCPEndpoint) serveConn(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(conn)
	env, err := readFrame(br)
	if err != nil {
		return
	}
	e.mu.RLock()
	handler := e.handler
	closed := e.closed
	e.mu.RUnlock()

	var out envelope
	switch {
	case closed:
		out = envelope{From: e.addr, Err: ErrClosed.Error()}
	case handler == nil:
		out = envelope{From: e.addr, Err: ErrNoHandler.Error()}
	default:
		req, derr := decodePayload(env)
		if derr != nil {
			out = envelope{From: e.addr, Err: derr.Error()}
			break
		}
		resp, herr := handler(context.Background(), env.From, req)
		if herr != nil {
			out = envelope{From: e.addr, Err: herr.Error()}
			break
		}
		out, err = encodePayload(e.addr, resp)
		if err != nil {
			out = envelope{From: e.addr, Err: err.Error()}
		}
	}
	_ = writeFrame(conn, out)
}

// Call implements Transport.
func (e *TCPEndpoint) Call(ctx context.Context, to Addr, req any) (any, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	e.Calls.enter()
	defer e.Calls.exit()
	env, err := encodePayload(e.addr, req)
	if err != nil {
		return nil, err
	}
	d := net.Dialer{Timeout: e.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	} else {
		_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	}
	if err := writeFrame(conn, env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	respEnv, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	if respEnv.Err != "" {
		return nil, &RemoteError{Msg: respEnv.Err}
	}
	return decodePayload(respEnv)
}
