package network

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"pgrid/internal/stats"
)

// LatencyModel produces a one-way message delay for a (from, to) pair.
type LatencyModel func(from, to Addr, r *rand.Rand) time.Duration

// ConstantLatency returns a model with a fixed one-way delay.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(Addr, Addr, *rand.Rand) time.Duration { return d }
}

// PlanetLabLatency mimics the widely varying delays observed on the shared
// PlanetLab testbed: a base delay plus heavy-tailed jitter.
func PlanetLabLatency(base time.Duration) LatencyModel {
	return func(_, _ Addr, r *rand.Rand) time.Duration {
		// Exponential jitter with mean equal to the base produces the long
		// tail responsible for the high absolute latencies of Figure 9.
		jitter := time.Duration(r.ExpFloat64() * float64(base))
		return base/2 + jitter
	}
}

// ServiceModel parameterises receiver-side processing capacity: each
// delivered request occupies the destination endpoint for
// Fixed + PerByte*(request+response bytes) of virtual service time, and
// requests queue FIFO while the endpoint is busy. This is what makes load
// matter in the simulation — a hot endpoint's queue grows with sustained
// traffic, so skewed workloads inflate tail latency the way a saturated
// real server would. The zero value disables the model entirely (no
// behaviour change for latency-only simulations).
type ServiceModel struct {
	// Fixed is the per-request processing cost regardless of size.
	Fixed time.Duration
	// PerByte is the additional cost per byte of request plus response.
	PerByte time.Duration
}

// Enabled reports whether the model imposes any cost.
func (m ServiceModel) Enabled() bool { return m.Fixed > 0 || m.PerByte > 0 }

// SimConfig parameterises a simulated network.
type SimConfig struct {
	// Latency is the one-way delay model; nil means no delay.
	Latency LatencyModel
	// LossProbability is the probability that a request or a response is
	// dropped (each direction independently).
	LossProbability float64
	// Seed drives the network's internal randomness.
	Seed int64
	// TimeScale divides all delays, letting experiments replay the paper's
	// multi-hour timeline in seconds of wall-clock time (e.g. a TimeScale
	// of 600 turns 10 minutes into one second). Zero or negative means 1.
	TimeScale float64
	// Service models receiver-side processing capacity and queueing; the
	// zero value disables it.
	Service ServiceModel
}

// Sim is an in-process network connecting any number of endpoints. It is
// safe for concurrent use.
type Sim struct {
	cfg SimConfig

	mu        sync.RWMutex
	endpoints map[Addr]*SimEndpoint
	rng       *rand.Rand
	rngMu     sync.Mutex

	// Bytes and Messages account total traffic (requests and responses).
	Bytes    stats.Counter
	Messages stats.Counter
	// Calls tracks the calls currently in flight across the whole network
	// and their high-water mark (how much the concurrent query engine
	// actually overlaps).
	Calls InFlightGauge

	// loss is the message-loss probability; unlike the rest of the config
	// it may be changed while the network is running (tests flip loss on
	// after constructing an overlay), so it is guarded separately.
	lossMu sync.RWMutex
	loss   float64
}

// NewSim creates a simulated network.
func NewSim(cfg SimConfig) *Sim {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	return &Sim{
		cfg:       cfg,
		endpoints: make(map[Addr]*SimEndpoint),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		loss:      cfg.LossProbability,
	}
}

// SetLoss changes the message-loss probability of the running network
// (each direction is still dropped independently).
func (s *Sim) SetLoss(p float64) {
	s.lossMu.Lock()
	s.loss = p
	s.lossMu.Unlock()
}

// SimEndpoint is one peer's endpoint on a simulated network.
type SimEndpoint struct {
	net  *Sim
	addr Addr

	mu      sync.RWMutex
	handler Handler
	online  bool
	closed  bool

	// BytesSent counts the traffic this endpoint originated (requests it
	// sent plus responses it produced), matching the per-peer bandwidth
	// accounting of Figure 8.
	BytesSent stats.Counter

	// svcMu guards busyUntil, the virtual-FIFO service queue horizon used
	// by SimConfig.Service: a request delivered while the endpoint is busy
	// waits until every earlier request's service time has elapsed.
	// busyTotal accumulates every reservation, so experiments can rank
	// endpoints by how much service time they absorbed.
	svcMu     sync.Mutex
	busyUntil time.Time
	busyTotal time.Duration
}

// BusyTotal returns the cumulative virtual service time reserved on this
// endpoint — a direct measure of how much of the workload it absorbed.
func (e *SimEndpoint) BusyTotal() time.Duration {
	e.svcMu.Lock()
	defer e.svcMu.Unlock()
	return e.busyTotal
}

// BusyTotals returns every endpoint's cumulative service time, keyed by
// address. Useful for spotting convoy points under skewed load.
func (s *Sim) BusyTotals() map[Addr]time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Addr]time.Duration, len(s.endpoints))
	for a, ep := range s.endpoints {
		out[a] = ep.BusyTotal()
	}
	return out
}

// reserve books d of service time on the endpoint's virtual FIFO queue and
// returns how long the caller must wait before its request is processed
// (queue backlog plus its own service time).
func (e *SimEndpoint) reserve(now time.Time, d time.Duration) time.Duration {
	e.svcMu.Lock()
	defer e.svcMu.Unlock()
	start := e.busyUntil
	if start.Before(now) {
		start = now
	}
	e.busyUntil = start.Add(d)
	e.busyTotal += d
	return e.busyUntil.Sub(now)
}

// Endpoint creates (or returns) the endpoint with the given address. New
// endpoints start online.
func (s *Sim) Endpoint(addr Addr) *SimEndpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ep, ok := s.endpoints[addr]; ok {
		return ep
	}
	ep := &SimEndpoint{net: s, addr: addr, online: true}
	s.endpoints[addr] = ep
	return ep
}

// Lookup returns the endpoint for addr, or nil if it does not exist.
func (s *Sim) Lookup(addr Addr) *SimEndpoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.endpoints[addr]
}

// Addrs returns the addresses of all endpoints ever created.
func (s *Sim) Addrs() []Addr {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Addr, 0, len(s.endpoints))
	for a := range s.endpoints {
		out = append(out, a)
	}
	return out
}

// SetOnline switches an endpoint online or offline (churn). Calls to or
// from an offline endpoint fail with ErrUnreachable.
func (s *Sim) SetOnline(addr Addr, online bool) {
	if ep := s.Lookup(addr); ep != nil {
		ep.mu.Lock()
		ep.online = online
		ep.mu.Unlock()
	}
}

// OnlineCount returns the number of endpoints currently online.
func (s *Sim) OnlineCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ep := range s.endpoints {
		ep.mu.RLock()
		if ep.online && !ep.closed {
			n++
		}
		ep.mu.RUnlock()
	}
	return n
}

// random runs f under the network's RNG lock (rand.Rand is not safe for
// concurrent use).
func (s *Sim) random(f func(r *rand.Rand)) {
	s.rngMu.Lock()
	f(s.rng)
	s.rngMu.Unlock()
}

// delay returns the scaled one-way latency for a message.
func (s *Sim) delay(from, to Addr) time.Duration {
	if s.cfg.Latency == nil {
		return 0
	}
	var d time.Duration
	s.random(func(r *rand.Rand) { d = s.cfg.Latency(from, to, r) })
	return time.Duration(float64(d) / s.cfg.TimeScale)
}

// lost reports whether a message is dropped.
func (s *Sim) lost() bool {
	s.lossMu.RLock()
	p := s.loss
	s.lossMu.RUnlock()
	if p <= 0 {
		return false
	}
	var l bool
	s.random(func(r *rand.Rand) { l = r.Float64() < p })
	return l
}

// Addr implements Transport.
func (e *SimEndpoint) Addr() Addr { return e.addr }

// Handle implements Transport.
func (e *SimEndpoint) Handle(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Online reports whether the endpoint is currently online.
func (e *SimEndpoint) Online() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.online && !e.closed
}

// Close implements Transport.
func (e *SimEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return nil
}

// Call implements Transport: it delivers the request to the destination
// endpoint's handler after the simulated latency and returns its response
// after the return latency.
func (e *SimEndpoint) Call(ctx context.Context, to Addr, req any) (any, error) {
	if !e.Online() {
		return nil, ErrClosed
	}
	e.net.Calls.enter()
	defer e.net.Calls.exit()
	dst := e.net.Lookup(to)
	if dst == nil {
		return nil, ErrUnreachable
	}
	// Account request traffic.
	sz := float64(MessageSize(req))
	e.net.Bytes.Add(sz)
	e.net.Messages.Add(1)
	e.BytesSent.Add(sz)

	if err := sleepCtx(ctx, e.net.delay(e.addr, to)); err != nil {
		return nil, err
	}
	if e.net.lost() {
		return nil, ErrUnreachable
	}
	dst.mu.RLock()
	handler := dst.handler
	online := dst.online && !dst.closed
	dst.mu.RUnlock()
	if !online {
		return nil, ErrUnreachable
	}
	if handler == nil {
		return nil, ErrNoHandler
	}
	// Receiver-side service queue: the request waits behind everything the
	// destination is already processing, then occupies it for its own
	// processing cost. This is what lets skewed workloads saturate a hot
	// peer in simulation.
	svc := e.net.cfg.Service
	if svc.Enabled() {
		cost := svc.Fixed + svc.PerByte*time.Duration(MessageSize(req))
		wait := dst.reserve(time.Now(), time.Duration(float64(cost)/e.net.cfg.TimeScale))
		if err := sleepCtx(ctx, wait); err != nil {
			return nil, err
		}
	}
	resp, err := handler(ctx, e.addr, req)
	if err != nil {
		return nil, &RemoteError{Msg: err.Error()}
	}
	// Account response traffic, attributed to the responder.
	rsz := float64(MessageSize(resp))
	e.net.Bytes.Add(rsz)
	e.net.Messages.Add(1)
	dst.BytesSent.Add(rsz)

	// The response's bytes occupy the responder too (serialisation and
	// upstream bandwidth): large answers make a hot peer slower for
	// everyone, tiny probe responses barely register.
	if svc.Enabled() && rsz > 0 {
		cost := svc.PerByte * time.Duration(rsz)
		wait := dst.reserve(time.Now(), time.Duration(float64(cost)/e.net.cfg.TimeScale))
		if err := sleepCtx(ctx, wait); err != nil {
			return nil, err
		}
	}

	if err := sleepCtx(ctx, e.net.delay(to, e.addr)); err != nil {
		return nil, err
	}
	if e.net.lost() {
		return nil, ErrUnreachable
	}
	if !e.Online() {
		return nil, ErrClosed
	}
	return resp, nil
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
