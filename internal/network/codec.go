package network

import "bytes"

// This file exposes the TCP transport's wire codec (length-prefixed JSON
// frames around registered payload types) as standalone functions, so tests
// and fuzz targets can exercise the exact encode/decode path a message takes
// on the wire without opening sockets.

// EncodeMessage serialises a registered payload value into one
// length-prefixed wire frame, exactly as the TCP transport sends it. It
// fails when the payload's type has not been registered with RegisterType.
func EncodeMessage(from Addr, v any) ([]byte, error) {
	env, err := encodePayload(from, v)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMessage parses one wire frame and reconstructs its payload value,
// exactly as the TCP transport does on receipt. A frame carrying a remote
// error is surfaced as a *RemoteError.
func DecodeMessage(data []byte) (from Addr, payload any, err error) {
	env, err := readFrame(bytes.NewReader(data))
	if err != nil {
		return "", nil, err
	}
	if env.Err != "" {
		return env.From, nil, &RemoteError{Msg: env.Err}
	}
	payload, err = decodePayload(env)
	if err != nil {
		return env.From, nil, err
	}
	return env.From, payload, nil
}
