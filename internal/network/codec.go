package network

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// This file exposes both wire codecs of the TCP transport as standalone
// functions, so tests and fuzz targets can exercise the exact encode/decode
// paths a message takes on the wire without opening sockets:
//
//   - EncodeMessage/DecodeMessage: the legacy length-prefixed JSON envelope
//     (the mixed-version fallback format).
//   - EncodeMessageBinary/DecodeMessageBinary: the binary protocol frames,
//     including fragmentation and reassembly of oversized messages.

// EncodeMessage serialises a registered payload value into one
// length-prefixed JSON wire frame, exactly as the legacy transport path
// sends it. It fails when the payload's type has not been registered with
// RegisterType.
func EncodeMessage(from Addr, v any) ([]byte, error) {
	env, err := encodePayload(from, v)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("network: encode frame: %w", err)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMessage parses one JSON wire frame and reconstructs its payload
// value, exactly as the TCP transport does on receipt of a legacy frame. A
// frame carrying a remote error is surfaced as a *RemoteError.
func DecodeMessage(data []byte) (from Addr, payload any, err error) {
	raw, err := readFrame(bytes.NewReader(data))
	if err != nil {
		return "", nil, err
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return "", nil, fmt.Errorf("network: decode frame: %w", err)
	}
	if env.Err != "" {
		return env.From, nil, &RemoteError{Msg: env.Err}
	}
	payload, err = decodePayload(env)
	if err != nil {
		return env.From, nil, err
	}
	return env.From, payload, nil
}

// EncodeMessageBinary serialises a registered payload value into its binary
// protocol frame sequence — one frame in the common case, several when the
// encoded body exceeds frameLimit (pass 0 for the transport default). The
// message id is fixed to 1, making the encoding deterministic for golden
// tests and corpora.
func EncodeMessageBinary(from Addr, v any, frameLimit int) ([]byte, error) {
	name, body, jsonBody, err := encodeBinBody(nil, v)
	if err != nil {
		return nil, err
	}
	var flags byte
	if jsonBody {
		flags = fJSON
	}
	return appendBinFrames(nil, flags, 1, from, name, body, frameLimit)
}

// DecodeMessageBinary parses a binary protocol frame sequence (reassembling
// fragments) and reconstructs the payload value of the first complete
// message, exactly as the transport's read loops do. A message carrying a
// remote error is surfaced as a *RemoteError.
func DecodeMessageBinary(data []byte) (from Addr, payload any, err error) {
	r := bytes.NewReader(data)
	asm := newFragAssembler(DefaultMaxMessage)
	for {
		raw, err := readFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return "", nil, fmt.Errorf("%w: truncated frame sequence", errBinaryProtocol)
			}
			return "", nil, err
		}
		if len(raw) == 0 || raw[0] != magicBinary {
			return "", nil, errBinaryProtocol
		}
		fr, err := parseBinFrame(raw)
		if err != nil {
			return "", nil, err
		}
		msg, err := asm.add(fr)
		if err != nil {
			return "", nil, err
		}
		if msg == nil {
			continue
		}
		if msg.flags&fErr != 0 {
			return msg.from, nil, &RemoteError{Msg: string(msg.body)}
		}
		payload, err = decodeBinBody(msg.typ, msg.body, msg.flags&fJSON != 0)
		if err != nil {
			return msg.from, nil, err
		}
		return msg.from, payload, nil
	}
}
