package network

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestSimInFlightGauge checks that the simulated network's in-flight call
// accounting sees concurrent calls overlap and drains back to zero.
func TestSimInFlightGauge(t *testing.T) {
	sim := NewSim(SimConfig{Seed: 1, Latency: ConstantLatency(10 * time.Millisecond)})
	src := sim.Endpoint("src")
	dst := sim.Endpoint("dst")
	dst.Handle(func(ctx context.Context, from Addr, req any) (any, error) {
		return "ok", nil
	})

	const calls = 8
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := src.Call(context.Background(), "dst", "ping"); err != nil {
				t.Errorf("call: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := sim.Calls.Current(); got != 0 {
		t.Errorf("in-flight gauge did not drain: %d", got)
	}
	// All calls sleep 10ms each way, so they must have overlapped.
	if peak := sim.Calls.Peak(); peak < 2 {
		t.Errorf("peak in-flight %d, want >= 2 for %d concurrent calls", peak, calls)
	}
}

// TestSimSetLoss flips message loss on a running network and checks calls
// start failing, then flips it off again.
func TestSimSetLoss(t *testing.T) {
	sim := NewSim(SimConfig{Seed: 2})
	src := sim.Endpoint("a")
	dst := sim.Endpoint("b")
	dst.Handle(func(ctx context.Context, from Addr, req any) (any, error) {
		return "ok", nil
	})
	ctx := context.Background()
	if _, err := src.Call(ctx, "b", "x"); err != nil {
		t.Fatalf("lossless call failed: %v", err)
	}
	sim.SetLoss(1)
	if _, err := src.Call(ctx, "b", "x"); err == nil {
		t.Fatal("call should be dropped at loss probability 1")
	}
	sim.SetLoss(0)
	if _, err := src.Call(ctx, "b", "x"); err != nil {
		t.Fatalf("call after disabling loss failed: %v", err)
	}
}

// TestTCPInFlightGauge checks the TCP endpoint's outgoing-call gauge under
// concurrent calls.
func TestTCPInFlightGauge(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle(func(ctx context.Context, from Addr, req any) (any, error) {
		time.Sleep(20 * time.Millisecond)
		return tcpPong{Value: 1}, nil
	})
	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Call(context.Background(), srv.Addr(), tcpPing{Value: 2}); err != nil {
				t.Errorf("tcp call: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := cli.Calls.Current(); got != 0 {
		t.Errorf("tcp in-flight gauge did not drain: %d", got)
	}
	if peak := cli.Calls.Peak(); peak < 2 {
		t.Errorf("tcp peak in-flight %d, want >= 2", peak)
	}
}
