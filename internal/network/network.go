// Package network provides the message-passing substrate the overlay runs
// on. Two transports are provided:
//
//   - Sim, an in-process simulated network where every peer endpoint is
//     served by goroutines and messages experience configurable latency and
//     loss. This stands in for the PlanetLab deployment of Section 5 (see
//     docs/ARCHITECTURE.md) and supports taking peers offline to model
//     churn.
//   - TCP, a real transport over net.Conn with a length-prefixed JSON codec,
//     used by the cmd/pgridnode binary to run an actual distributed
//     deployment of the protocol.
//
// Both expose the same request/response Transport interface so the overlay
// protocol code is transport agnostic.
package network

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Addr identifies a peer endpoint. For the simulated network it is an
// opaque peer name; for the TCP transport it is a host:port address.
type Addr string

// Handler processes an incoming request and produces a response. Handlers
// are invoked concurrently; implementations must be safe for concurrent
// use.
type Handler func(ctx context.Context, from Addr, req any) (resp any, err error)

// Transport is a synchronous request/response endpoint.
type Transport interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Call sends a request to the peer at the given address and waits for
	// its response or a failure.
	Call(ctx context.Context, to Addr, req any) (any, error)
	// Handle registers the handler invoked for incoming requests. It must
	// be called before the endpoint receives traffic.
	Handle(h Handler)
	// Close shuts the endpoint down; subsequent calls fail.
	Close() error
}

// WireSizer lets message types report their approximate wire size in bytes
// so the simulated network can account bandwidth the way the PlanetLab
// experiment measured it. Messages that do not implement WireSizer are
// accounted with DefaultMessageSize bytes.
type WireSizer interface {
	WireSize() int
}

// DefaultMessageSize is the bandwidth accounted for messages that do not
// implement WireSizer (roughly a small control message with headers).
const DefaultMessageSize = 64

// Errors returned by transports.
var (
	// ErrUnreachable indicates the destination endpoint does not exist, is
	// offline, or the message was lost.
	ErrUnreachable = errors.New("network: peer unreachable")
	// ErrClosed indicates the local endpoint has been closed.
	ErrClosed = errors.New("network: endpoint closed")
	// ErrNoHandler indicates the remote endpoint has no registered handler.
	ErrNoHandler = errors.New("network: no handler registered")
)

// RemoteError wraps an error string returned by a remote handler so callers
// can distinguish transport failures from application-level failures.
type RemoteError struct {
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("remote error: %s", e.Msg) }

// InFlightGauge tracks the number of outstanding calls and their high-water
// mark. With hedged parallel lookups, call concurrency is a first-class
// quantity: benchmarks and tests use the gauge to verify that the query
// engine actually overlaps its requests, and the accounting must stay
// race-free under that concurrency — both counters are lock-free atomics.
type InFlightGauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// enter records the start of a call and updates the high-water mark.
func (g *InFlightGauge) enter() {
	cur := g.cur.Add(1)
	for {
		peak := g.peak.Load()
		if cur <= peak || g.peak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// exit records the end of a call.
func (g *InFlightGauge) exit() { g.cur.Add(-1) }

// Current returns the number of calls in flight right now.
func (g *InFlightGauge) Current() int64 { return g.cur.Load() }

// Peak returns the maximal number of calls that were ever in flight
// simultaneously.
func (g *InFlightGauge) Peak() int64 { return g.peak.Load() }

// MessageSize returns the accounted size of a request or response value:
// its WireSize when the type implements WireSizer, DefaultMessageSize
// otherwise.
func MessageSize(v any) int {
	if ws, ok := v.(WireSizer); ok {
		return ws.WireSize()
	}
	return DefaultMessageSize
}
