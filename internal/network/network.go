// Package network provides the message-passing substrate the overlay runs
// on. Two transports are provided:
//
//   - Sim, an in-process simulated network where every peer endpoint is
//     served by goroutines and messages experience configurable latency and
//     loss. This stands in for the PlanetLab deployment of Section 5 (see
//     DESIGN.md, "Substitutions") and supports taking peers offline to model
//     churn.
//   - TCP, a real transport over net.Conn with a length-prefixed JSON codec,
//     used by the cmd/pgridnode binary to run an actual distributed
//     deployment of the protocol.
//
// Both expose the same request/response Transport interface so the overlay
// protocol code is transport agnostic.
package network

import (
	"context"
	"errors"
	"fmt"
)

// Addr identifies a peer endpoint. For the simulated network it is an
// opaque peer name; for the TCP transport it is a host:port address.
type Addr string

// Handler processes an incoming request and produces a response. Handlers
// are invoked concurrently; implementations must be safe for concurrent
// use.
type Handler func(ctx context.Context, from Addr, req any) (resp any, err error)

// Transport is a synchronous request/response endpoint.
type Transport interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Call sends a request to the peer at the given address and waits for
	// its response or a failure.
	Call(ctx context.Context, to Addr, req any) (any, error)
	// Handle registers the handler invoked for incoming requests. It must
	// be called before the endpoint receives traffic.
	Handle(h Handler)
	// Close shuts the endpoint down; subsequent calls fail.
	Close() error
}

// WireSizer lets message types report their approximate wire size in bytes
// so the simulated network can account bandwidth the way the PlanetLab
// experiment measured it. Messages that do not implement WireSizer are
// accounted with DefaultMessageSize bytes.
type WireSizer interface {
	WireSize() int
}

// DefaultMessageSize is the bandwidth accounted for messages that do not
// implement WireSizer (roughly a small control message with headers).
const DefaultMessageSize = 64

// Errors returned by transports.
var (
	// ErrUnreachable indicates the destination endpoint does not exist, is
	// offline, or the message was lost.
	ErrUnreachable = errors.New("network: peer unreachable")
	// ErrClosed indicates the local endpoint has been closed.
	ErrClosed = errors.New("network: endpoint closed")
	// ErrNoHandler indicates the remote endpoint has no registered handler.
	ErrNoHandler = errors.New("network: no handler registered")
)

// RemoteError wraps an error string returned by a remote handler so callers
// can distinguish transport failures from application-level failures.
type RemoteError struct {
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("remote error: %s", e.Msg) }

// messageSize returns the accounted size of a request or response value.
func messageSize(v any) int {
	if ws, ok := v.(WireSizer); ok {
		return ws.WireSize()
	}
	return DefaultMessageSize
}
