package network

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

type echoReq struct {
	Text string
	Size int
}

func (e echoReq) WireSize() int {
	if e.Size > 0 {
		return e.Size
	}
	return DefaultMessageSize
}

func echoHandler(_ context.Context, from Addr, req any) (any, error) {
	r := req.(echoReq)
	return echoReq{Text: "echo:" + r.Text, Size: r.Size}, nil
}

func TestSimBasicCall(t *testing.T) {
	sim := NewSim(SimConfig{})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(echoHandler)
	resp, err := a.Call(context.Background(), "b", echoReq{Text: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoReq).Text != "echo:hi" {
		t.Errorf("resp = %v", resp)
	}
	if sim.Messages.Value() != 2 {
		t.Errorf("messages = %v", sim.Messages.Value())
	}
}

func TestSimUnknownDestination(t *testing.T) {
	sim := NewSim(SimConfig{})
	a := sim.Endpoint("a")
	if _, err := a.Call(context.Background(), "ghost", echoReq{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestSimNoHandler(t *testing.T) {
	sim := NewSim(SimConfig{})
	a := sim.Endpoint("a")
	sim.Endpoint("b")
	if _, err := a.Call(context.Background(), "b", echoReq{}); !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
}

func TestSimOfflinePeers(t *testing.T) {
	sim := NewSim(SimConfig{})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(echoHandler)
	sim.SetOnline("b", false)
	if _, err := a.Call(context.Background(), "b", echoReq{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to offline peer: %v", err)
	}
	sim.SetOnline("b", true)
	if _, err := a.Call(context.Background(), "b", echoReq{}); err != nil {
		t.Errorf("call after coming back online: %v", err)
	}
	// Offline caller fails locally.
	sim.SetOnline("a", false)
	if _, err := a.Call(context.Background(), "b", echoReq{}); !errors.Is(err, ErrClosed) {
		t.Errorf("call from offline peer: %v", err)
	}
	if sim.OnlineCount() != 1 {
		t.Errorf("online count = %d", sim.OnlineCount())
	}
}

func TestSimClose(t *testing.T) {
	sim := NewSim(SimConfig{})
	a := sim.Endpoint("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(context.Background(), "a", echoReq{}); !errors.Is(err, ErrClosed) {
		t.Errorf("call on closed endpoint: %v", err)
	}
	if a.Online() {
		t.Error("closed endpoint should not be online")
	}
}

func TestSimRemoteError(t *testing.T) {
	sim := NewSim(SimConfig{})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(func(context.Context, Addr, any) (any, error) {
		return nil, errors.New("boom")
	})
	_, err := a.Call(context.Background(), "b", echoReq{})
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Errorf("err = %v, want RemoteError(boom)", err)
	}
}

func TestSimLoss(t *testing.T) {
	sim := NewSim(SimConfig{LossProbability: 1})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(echoHandler)
	if _, err := a.Call(context.Background(), "b", echoReq{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("lossy call: %v", err)
	}
}

func TestSimLatencyAndContext(t *testing.T) {
	sim := NewSim(SimConfig{Latency: ConstantLatency(50 * time.Millisecond)})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(echoHandler)
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", echoReq{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("round trip %v, expected >= 100ms of simulated latency", elapsed)
	}
	// A cancelled context aborts the call.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, "b", echoReq{}); err == nil {
		t.Error("expected context deadline error")
	}
}

func TestSimTimeScale(t *testing.T) {
	sim := NewSim(SimConfig{Latency: ConstantLatency(time.Second), TimeScale: 1000})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(echoHandler)
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", echoReq{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("time scale not applied: %v", elapsed)
	}
}

func TestSimBandwidthAccounting(t *testing.T) {
	sim := NewSim(SimConfig{})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(echoHandler)
	if _, err := a.Call(context.Background(), "b", echoReq{Text: "x", Size: 500}); err != nil {
		t.Fatal(err)
	}
	if sim.Bytes.Value() != 1000 {
		t.Errorf("total bytes = %v, want 1000", sim.Bytes.Value())
	}
	if a.BytesSent.Value() != 500 || b.BytesSent.Value() != 500 {
		t.Errorf("per-peer bytes = %v/%v", a.BytesSent.Value(), b.BytesSent.Value())
	}
}

func TestSimEndpointIdempotent(t *testing.T) {
	sim := NewSim(SimConfig{})
	a1 := sim.Endpoint("a")
	a2 := sim.Endpoint("a")
	if a1 != a2 {
		t.Error("Endpoint should return the same instance for the same address")
	}
	if len(sim.Addrs()) != 1 {
		t.Error("Addrs should list one endpoint")
	}
}

func TestSimConcurrentCalls(t *testing.T) {
	sim := NewSim(SimConfig{Latency: ConstantLatency(time.Millisecond)})
	server := sim.Endpoint("server")
	server.Handle(echoHandler)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := sim.Endpoint(Addr(string(rune('A' + i%26))))
			_, err := client.Call(context.Background(), "server", echoReq{Text: "x"})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent call failed: %v", err)
		}
	}
}

func TestPlanetLabLatencyPositive(t *testing.T) {
	sim := NewSim(SimConfig{Latency: PlanetLabLatency(10 * time.Millisecond), TimeScale: 100})
	a := sim.Endpoint("a")
	b := sim.Endpoint("b")
	b.Handle(echoHandler)
	for i := 0; i < 10; i++ {
		if _, err := a.Call(context.Background(), "b", echoReq{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConstantLatency(t *testing.T) {
	m := ConstantLatency(7 * time.Millisecond)
	if m("a", "b", nil) != 7*time.Millisecond {
		t.Error("constant latency wrong")
	}
}
