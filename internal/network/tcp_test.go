package network

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

type tcpPing struct {
	Value int
}

type tcpPong struct {
	Value int
}

func init() {
	RegisterType("test.ping", tcpPing{})
	RegisterType("test.pong", tcpPong{})
}

func TestRegisterType(t *testing.T) {
	// Re-registering the same type is a no-op.
	RegisterType("test.ping", tcpPing{})
	if name := typeName(tcpPing{}); name != "test.ping" {
		t.Errorf("typeName = %q", name)
	}
	if name := typeName(42); name != "" {
		t.Errorf("unregistered type should have no name, got %q", name)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on conflicting registration")
		}
	}()
	RegisterType("test.ping", tcpPong{})
}

func TestFrameRoundTrip(t *testing.T) {
	env, err := encodePayload("me", tcpPing{Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, err := decodePayload(got)
	if err != nil {
		t.Fatal(err)
	}
	if v.(tcpPing).Value != 7 {
		t.Errorf("round trip = %v", v)
	}
}

func TestEncodeUnregisteredPayload(t *testing.T) {
	if _, err := encodePayload("me", struct{ X int }{1}); err == nil {
		t.Error("expected error for unregistered payload type")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := decodePayload(envelope{Type: "nope", Body: []byte("{}")}); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestTCPEndToEnd(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Handle(func(_ context.Context, from Addr, req any) (any, error) {
		ping := req.(tcpPing)
		return tcpPong{Value: ping.Value * 2}, nil
	})

	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, server.Addr(), tcpPing{Value: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(tcpPong).Value != 42 {
		t.Errorf("resp = %v", resp)
	}
}

func TestTCPRemoteError(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Handle(func(context.Context, Addr, any) (any, error) {
		return nil, errors.New("nope")
	})
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Call(context.Background(), server.Addr(), tcpPing{})
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "nope") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPNoHandler(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Call(context.Background(), server.Addr(), tcpPing{}); err == nil {
		t.Error("expected error when no handler is registered")
	}
}

func TestTCPUnreachable(t *testing.T) {
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.DialTimeout = 200 * time.Millisecond
	if _, err := client.Call(context.Background(), "127.0.0.1:1", tcpPing{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPCallAfterClose(t *testing.T) {
	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Errorf("double close should be harmless: %v", err)
	}
	if _, err := ep.Call(context.Background(), "127.0.0.1:1", tcpPing{}); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close: %v", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err == nil {
		t.Error("expected error for oversized frame")
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := &RemoteError{Msg: "x"}
	if !strings.Contains(e.Error(), "x") {
		t.Error("error message should contain cause")
	}
}
