package network

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pgrid/internal/wire"
)

type tcpPing struct {
	Value int
}

type tcpPong struct {
	Value int
}

// tcpBinPing/tcpBinPong implement the compact wire codec, exercising the
// binary body path the overlay messages use.
type tcpBinPing struct {
	Value uint64
	Note  string
}

func (m tcpBinPing) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Value)
	return wire.AppendString(b, m.Note)
}

func (m *tcpBinPing) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	m.Value = d.Uvarint()
	m.Note = d.String()
	return d.Finish()
}

type tcpBinPong struct {
	Value uint64
	Note  string
}

func (m tcpBinPong) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Value)
	return wire.AppendString(b, m.Note)
}

func (m *tcpBinPong) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	m.Value = d.Uvarint()
	m.Note = d.String()
	return d.Finish()
}

func init() {
	RegisterType("test.ping", tcpPing{})
	RegisterType("test.pong", tcpPong{})
	RegisterType("test.binping", tcpBinPing{})
	RegisterType("test.binpong", tcpBinPong{})
}

func TestRegisterType(t *testing.T) {
	// Re-registering the same type is a no-op.
	RegisterType("test.ping", tcpPing{})
	if name := typeName(tcpPing{}); name != "test.ping" {
		t.Errorf("typeName = %q", name)
	}
	if name := typeName(42); name != "" {
		t.Errorf("unregistered type should have no name, got %q", name)
	}
	if binaryCapable(tcpPing{}) {
		t.Error("tcpPing has no wire codec but is marked binary capable")
	}
	if !binaryCapable(tcpBinPing{}) {
		t.Error("tcpBinPing implements the wire codec but is not marked binary capable")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on conflicting registration")
		}
	}()
	RegisterType("test.ping", tcpPong{})
}

func TestFrameRoundTrip(t *testing.T) {
	env, err := encodePayload("me", tcpPing{Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got envelope
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatal(err)
	}
	v, err := decodePayload(got)
	if err != nil {
		t.Fatal(err)
	}
	if v.(tcpPing).Value != 7 {
		t.Errorf("round trip = %v", v)
	}
}

// countingWriter records every Write call it receives.
type countingWriter struct {
	writes int
	bytes  bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.bytes.Write(p)
}

// TestWriteFrameSingleWrite pins the fix for the old transport issuing the
// 4-byte length prefix and the body as two separate writes straight onto
// the connection: a frame must reach the writer as exactly one Write call.
func TestWriteFrameSingleWrite(t *testing.T) {
	var w countingWriter
	if err := writeFrame(&w, []byte(`{"type":"x"}`)); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Errorf("frame written in %d Write calls, want 1", w.writes)
	}
	payload, err := readFrame(&w.bytes)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != `{"type":"x"}` {
		t.Errorf("payload = %q", payload)
	}
}

func TestEncodeUnregisteredPayload(t *testing.T) {
	if _, err := encodePayload("me", struct{ X int }{1}); err == nil {
		t.Error("expected error for unregistered payload type")
	}
	if _, _, _, err := encodeBinBody(nil, struct{ X int }{1}); err == nil {
		t.Error("expected binary encode error for unregistered payload type")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := decodePayload(envelope{Type: "nope", Body: []byte("{}")}); err == nil {
		t.Error("expected error for unknown type")
	}
	if _, err := decodeBinBody("nope", nil, false); err == nil {
		t.Error("expected binary decode error for unknown type")
	}
}

// startPair returns a connected server/client endpoint pair with a doubling
// handler installed on the server.
func startPair(t *testing.T) (server, client *TCPEndpoint) {
	t.Helper()
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	server.Handle(func(_ context.Context, from Addr, req any) (any, error) {
		switch m := req.(type) {
		case tcpPing:
			return tcpPong{Value: m.Value * 2}, nil
		case tcpBinPing:
			return tcpBinPong{Value: m.Value * 2, Note: m.Note}, nil
		default:
			return nil, fmt.Errorf("unexpected request %T", req)
		}
	})
	client, err = ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return server, client
}

func TestTCPEndToEnd(t *testing.T) {
	server, client := startPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, server.Addr(), tcpPing{Value: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(tcpPong).Value != 42 {
		t.Errorf("resp = %v", resp)
	}
}

func TestTCPEndToEndBinaryCodec(t *testing.T) {
	server, client := startPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: 21, Note: "compact"})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(tcpBinPong); got.Value != 42 || got.Note != "compact" {
		t.Errorf("resp = %+v", got)
	}
	if !client.knownBinary(server.Addr()) {
		t.Error("client should have learned the server speaks binary")
	}
}

// TestTCPPooledConnectionReuse verifies that repeated calls to one peer
// share a persistent connection instead of dialing per call.
func TestTCPPooledConnectionReuse(t *testing.T) {
	server, client := startPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	client.pool.mu.Lock()
	entries := len(client.pool.entries)
	ent := client.pool.entries[server.Addr()]
	client.pool.mu.Unlock()
	if entries != 1 || ent == nil {
		t.Fatalf("pool entries = %d, want exactly the server's", entries)
	}
	ent.mu.Lock()
	alive := ent.pc != nil && !ent.pc.isClosed()
	ent.mu.Unlock()
	if !alive {
		t.Error("pooled connection not alive after calls")
	}
}

// TestTCPConcurrentCallsMultiplex drives many concurrent calls through the
// single pooled connection and checks every response reaches its caller.
func TestTCPConcurrentCallsMultiplex(t *testing.T) {
	server, client := startPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			resp, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: i})
			if err != nil {
				errs <- err
				return
			}
			if got := resp.(tcpBinPong).Value; got != i*2 {
				errs <- fmt.Errorf("call %d: got %d", i, got)
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTCPFragmentedMessage sends a message whose body exceeds the client's
// and server's frame limit, so both directions must fragment and
// reassemble. The legacy transport failed such messages permanently.
func TestTCPFragmentedMessage(t *testing.T) {
	server, client := startPair(t)
	server.SetOptions(TCPOptions{FrameLimit: 2048})
	client.SetOptions(TCPOptions{FrameLimit: 2048})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	note := strings.Repeat("0123456789abcdef", 4096) // 64 KiB >> 2 KiB frames
	resp, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: 9, Note: note})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(tcpBinPong); got.Value != 18 || got.Note != note {
		t.Errorf("fragmented round trip corrupted the payload (len %d)", len(got.Note))
	}
}

// TestTCPConcurrentFragmentedMessages drives many oversized messages
// through one pooled connection at once: fragments interleave on the wire
// (the writer releases its lock per frame), the fragmented-message
// semaphore keeps the sender under the receiver's reassembly limits, and
// every payload must come back intact.
func TestTCPConcurrentFragmentedMessages(t *testing.T) {
	server, client := startPair(t)
	server.SetOptions(TCPOptions{FrameLimit: 2048})
	client.SetOptions(TCPOptions{FrameLimit: 2048})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			note := strings.Repeat(fmt.Sprintf("%02d", i), 16<<10) // 32 KiB, 16+ frames
			resp, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: i, Note: note})
			if err != nil {
				errs <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			if got := resp.(tcpBinPong); got.Value != i*2 || got.Note != note {
				errs <- fmt.Errorf("call %d: corrupted round trip", i)
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTCPMixedVersionInterop pins both interop directions of the JSON
// fallback: a ForceJSON (legacy) client against a binary server, and a
// binary client whose first probe meets a legacy-style JSON-only server.
func TestTCPMixedVersionInterop(t *testing.T) {
	server, client := startPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Legacy client -> new server: JSON envelope answered in kind.
	client.SetOptions(TCPOptions{ForceJSON: true})
	resp, err := client.Call(ctx, server.Addr(), tcpPing{Value: 5})
	if err != nil {
		t.Fatalf("legacy client against new server: %v", err)
	}
	if resp.(tcpPong).Value != 10 {
		t.Errorf("legacy resp = %v", resp)
	}
	client.SetOptions(TCPOptions{})

	// New client -> legacy server: the binary probe dies unanswered, the
	// call falls back to JSON and the peer is pinned legacy.
	legacy := newLegacyJSONServer(t)
	resp, err = client.Call(ctx, legacy.addr, tcpPing{Value: 7})
	if err != nil {
		t.Fatalf("binary client against legacy server: %v", err)
	}
	if resp.(tcpPong).Value != 14 {
		t.Errorf("fallback resp = %v", resp)
	}
	if !client.pinnedLegacy(legacy.addr) {
		t.Error("peer should be pinned legacy after a successful JSON fallback")
	}
	// Subsequent calls go straight through the pinned JSON path.
	if _, err := client.Call(ctx, legacy.addr, tcpPing{Value: 8}); err != nil {
		t.Fatalf("pinned legacy call: %v", err)
	}
}

// legacyJSONServer reimplements the pre-binary transport's serving side:
// one JSON exchange per connection, no binary understanding (a binary frame
// kills the connection).
type legacyJSONServer struct {
	addr Addr
}

func newLegacyJSONServer(t *testing.T) *legacyJSONServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := &legacyJSONServer{addr: Addr(l.Addr().String())}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				payload, err := readFrame(conn)
				if err != nil {
					return
				}
				var env envelope
				if err := json.Unmarshal(payload, &env); err != nil {
					return // binary frame: legacy node closes, like the old decoder did
				}
				req, err := decodePayload(env)
				if err != nil {
					return
				}
				ping := req.(tcpPing)
				out, err := encodePayload(s.addr, tcpPong{Value: ping.Value * 2})
				if err != nil {
					return
				}
				body, _ := json.Marshal(out)
				_ = writeFrame(conn, body)
			}()
		}
	}()
	return s
}

func TestTCPRemoteError(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Handle(func(context.Context, Addr, any) (any, error) {
		return nil, errors.New("nope")
	})
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Call(context.Background(), server.Addr(), tcpPing{})
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "nope") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPNoHandler(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Call(context.Background(), server.Addr(), tcpPing{}); err == nil {
		t.Error("expected error when no handler is registered")
	}
}

func TestTCPUnreachable(t *testing.T) {
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetOptions(TCPOptions{DialTimeout: 200 * time.Millisecond})
	if _, err := client.Call(context.Background(), "127.0.0.1:1", tcpPing{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPCallAfterClose(t *testing.T) {
	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Errorf("double close should be harmless: %v", err)
	}
	if _, err := ep.Call(context.Background(), "127.0.0.1:1", tcpPing{}); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close: %v", err)
	}
}

// TestTCPServeOutlivesIdleTimeoutWhileInFlight pins the deadline fix: the
// old transport pinned an absolute 30s deadline per serving connection, so
// a handler running longer than that lost its response. Now the idle
// horizon is suspended while a request is in flight.
func TestTCPServeOutlivesIdleTimeoutWhileInFlight(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.SetOptions(TCPOptions{IdleTimeout: 150 * time.Millisecond})
	server.Handle(func(_ context.Context, _ Addr, req any) (any, error) {
		time.Sleep(600 * time.Millisecond) // 4x the idle horizon
		return tcpBinPong{Value: req.(tcpBinPing).Value + 1}, nil
	})
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetOptions(TCPOptions{IdleTimeout: 150 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: 1})
	if err != nil {
		t.Fatalf("long handler over short idle timeout: %v", err)
	}
	if resp.(tcpBinPong).Value != 2 {
		t.Errorf("resp = %v", resp)
	}
}

// TestTCPIdleConnectionReclaimed checks the other side of the idle
// watchdog: a pooled connection with nothing in flight is closed after the
// idle horizon, and the next call transparently redials.
func TestTCPIdleConnectionReclaimed(t *testing.T) {
	server, client := startPair(t)
	server.SetOptions(TCPOptions{IdleTimeout: 100 * time.Millisecond})
	client.SetOptions(TCPOptions{IdleTimeout: 100 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: 1}); err != nil {
		t.Fatal(err)
	}
	client.pool.mu.Lock()
	ent := client.pool.entries[server.Addr()]
	client.pool.mu.Unlock()
	ent.mu.Lock()
	pc := ent.pc
	ent.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for !pc.isClosed() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !pc.isClosed() {
		t.Fatal("idle pooled connection was not reclaimed")
	}
	// The next call must succeed on a fresh connection.
	if _, err := client.Call(ctx, server.Addr(), tcpBinPing{Value: 2}); err != nil {
		t.Fatalf("call after idle reclaim: %v", err)
	}
}

func TestTCPCallTimeoutConfigurable(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	block := make(chan struct{})
	defer close(block)
	server.Handle(func(context.Context, Addr, any) (any, error) {
		<-block
		return tcpPong{}, nil
	})
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetOptions(TCPOptions{CallTimeout: 200 * time.Millisecond})
	start := time.Now()
	_, callErr := client.Call(context.Background(), server.Addr(), tcpPing{})
	if callErr == nil {
		t.Fatal("expected timeout error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("configured call timeout not honoured: took %v", d)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err == nil {
		t.Error("expected error for oversized frame")
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := &RemoteError{Msg: "x"}
	if !strings.Contains(e.Error(), "x") {
		t.Error("error message should contain cause")
	}
}

// TestBinaryCodecRoundTrip round-trips the standalone binary codec helpers,
// including a fragmented encoding.
func TestBinaryCodecRoundTrip(t *testing.T) {
	msg := tcpBinPing{Value: 77, Note: strings.Repeat("x", 5000)}
	for _, limit := range []int{0, 600} {
		data, err := EncodeMessageBinary("bin-test", msg, limit)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		from, payload, err := DecodeMessageBinary(data)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if from != "bin-test" {
			t.Errorf("limit %d: from = %q", limit, from)
		}
		if got := payload.(tcpBinPing); got != msg {
			t.Errorf("limit %d: round trip mismatch", limit)
		}
	}
}
