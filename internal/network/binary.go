package network

// This file implements the binary wire protocol of the pooled TCP transport:
// the per-frame envelope, fragmentation of messages larger than one frame,
// and the translation between registered payload values and frame bodies.
//
// Every frame is the usual 4-byte length prefix plus a payload. A binary
// payload is distinguished from a legacy JSON envelope by its first byte:
// JSON objects start with '{' (0x7B), binary frames with magicBinary (0xBF).
// The binary payload layout is:
//
//	byte 0: magicBinary
//	byte 1: flags (fResp/fErr/fMore/fFrag/fJSON)
//	uvarint: message id (request/response correlation on multiplexed conns)
//	-- first frame of a message only (fFrag clear):
//	string:  sender address
//	string:  registered payload type name ("" for error responses)
//	-- all frames:
//	rest:    body bytes (or the next body fragment when fFrag is set)
//
// A message whose encoded body exceeds the frame limit is split into one
// first frame plus continuation fragments (fFrag), all but the last carrying
// fMore; the receiver reassembles them per id up to MaxMessage. This is what
// lets anti-entropy ship a rebuild image larger than one frame — the legacy
// JSON transport failed such transfers permanently.
//
// The body of a message whose type implements the wire codec
// (wire.Marshaler / wire.Unmarshaler) is that compact binary encoding —
// no reflection walks any field on this path. Types registered without a
// codec still travel over pooled connections with a JSON-encoded body,
// marked by the fJSON flag.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/wire"
)

// magicBinary is the first payload byte of every binary frame. It can never
// open a JSON envelope, so a receiver distinguishes the two codecs without
// negotiation state.
const magicBinary = 0xBF

// Frame flags.
const (
	// fResp marks a response frame (requests have the bit clear).
	fResp byte = 1 << 0
	// fErr marks an error response: the body is the error string.
	fErr byte = 1 << 1
	// fMore announces further fragments of the same message id.
	fMore byte = 1 << 2
	// fFrag marks a continuation fragment: the payload after the id is raw
	// body bytes (no sender/type header).
	fFrag byte = 1 << 3
	// fJSON marks a JSON-encoded body (payload type registered without a
	// binary codec).
	fJSON byte = 1 << 4
)

// maxPartialAssemblies bounds how many fragmented messages one connection
// may have in flight, so a misbehaving peer cannot grow the reassembly map
// without bound.
const maxPartialAssemblies = 64

// errBinaryProtocol reports a malformed binary frame; the connection is
// beyond recovery and gets closed.
var errBinaryProtocol = errors.New("network: binary protocol violation")

// binFrame is one parsed binary frame.
type binFrame struct {
	flags byte
	id    uint64
	from  Addr
	typ   string
	body  []byte
}

// parseBinFrame decodes a binary frame payload (first byte already matched
// magicBinary).
func parseBinFrame(payload []byte) (binFrame, error) {
	if len(payload) < 2 {
		return binFrame{}, errBinaryProtocol
	}
	fr := binFrame{flags: payload[1]}
	d := wire.NewDecoder(payload[2:])
	fr.id = d.Uvarint()
	if fr.flags&fFrag == 0 {
		fr.from = Addr(d.String())
		fr.typ = d.String()
	}
	fr.body = d.Rest()
	if d.Err() != nil {
		return binFrame{}, fmt.Errorf("%w: %v", errBinaryProtocol, d.Err())
	}
	return fr, nil
}

// binMsg is one fully reassembled message.
type binMsg struct {
	flags byte
	id    uint64
	from  Addr
	typ   string
	body  []byte
}

// fragAssembler reassembles fragmented messages per id. One assembler
// serves one connection direction; it is used from that connection's single
// read loop, so it needs no locking. Buffered memory is bounded twice:
// per message by max, and in *total* across all partial assemblies by the
// same max — so one connection can never hold more than one
// maximum-message's worth of reassembly state, no matter how many ids a
// misbehaving peer interleaves.
type fragAssembler struct {
	max     int
	total   int
	partial map[uint64]*binMsg
}

func newFragAssembler(maxMessage int) *fragAssembler {
	return &fragAssembler{max: maxMessage, partial: make(map[uint64]*binMsg)}
}

// add consumes one frame and returns the completed message, or nil when
// more fragments are outstanding.
func (a *fragAssembler) add(fr binFrame) (*binMsg, error) {
	if fr.flags&fFrag != 0 {
		m, ok := a.partial[fr.id]
		if !ok {
			return nil, fmt.Errorf("%w: fragment for unknown message %d", errBinaryProtocol, fr.id)
		}
		if len(m.body)+len(fr.body) > a.max || a.total+len(fr.body) > a.max {
			a.drop(fr.id)
			return nil, fmt.Errorf("%w: reassembly exceeds %d bytes", errBinaryProtocol, a.max)
		}
		m.body = append(m.body, fr.body...)
		a.total += len(fr.body)
		if fr.flags&fMore != 0 {
			return nil, nil
		}
		a.drop(fr.id)
		return m, nil
	}
	if len(fr.body) > a.max {
		return nil, fmt.Errorf("%w: message exceeds %d bytes", errBinaryProtocol, a.max)
	}
	m := &binMsg{flags: fr.flags &^ fMore, id: fr.id, from: fr.from, typ: fr.typ, body: fr.body}
	if fr.flags&fMore != 0 {
		if len(a.partial) >= maxPartialAssemblies || a.total+len(fr.body) > a.max {
			return nil, fmt.Errorf("%w: too many fragmented messages in flight", errBinaryProtocol)
		}
		a.partial[fr.id] = m
		a.total += len(fr.body)
		return nil, nil
	}
	return m, nil
}

// drop forgets a partial assembly and releases its byte accounting.
func (a *fragAssembler) drop(id uint64) {
	if m, ok := a.partial[id]; ok {
		a.total -= len(m.body)
		delete(a.partial, id)
	}
}

// bodyPool recycles message-body encode buffers across calls on the hot
// binary transport path, so a busy endpoint stops allocating one body per
// message. Callers take a buffer with getBodyBuf, encode into it, and hand
// it back with putBodyBuf once the transport has copied the bytes onto the
// wire (writeMsg assembles frames into its own scratch, so the body is
// never retained past the write).
var bodyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

// bodyPoolMaxCap bounds what a returned buffer may retain: one oversized
// transfer must not pin megabytes inside the pool forever.
const bodyPoolMaxCap = 1 << 20

func getBodyBuf() *[]byte { return bodyPool.Get().(*[]byte) }

func putBodyBuf(b *[]byte, body []byte) {
	// Keep the grown encode buffer when the body actually used it (binary
	// codecs append into the pooled buffer; the JSON fallback allocates its
	// own, leaving the pooled one untouched).
	if cap(body) > cap(*b) && cap(body) <= bodyPoolMaxCap {
		*b = body[:0]
	}
	if cap(*b) <= bodyPoolMaxCap {
		bodyPool.Put(b)
	}
}

// encodeBinBody serialises a registered payload value into a frame body
// appended to dst (pass nil to allocate): the compact wire encoding when
// the type has a codec, JSON (jsonBody=true, own allocation) otherwise.
// One registry resolution covers both the name and the codec capability —
// this runs for every outgoing message.
func encodeBinBody(dst []byte, v any) (name string, body []byte, jsonBody bool, err error) {
	name, info, ok := resolveType(v)
	if !ok {
		return "", nil, false, fmt.Errorf("network: payload type %T not registered", v)
	}
	if info.binary {
		return name, v.(wire.Marshaler).AppendWire(dst), false, nil
	}
	body, err = json.Marshal(v)
	if err != nil {
		return "", nil, false, fmt.Errorf("network: encode payload: %w", err)
	}
	return name, body, true, nil
}

// decodeBinBody reconstructs the payload value of a frame body.
func decodeBinBody(typ string, body []byte, jsonBody bool) (any, error) {
	info, ok := lookupType(typ)
	if !ok {
		return nil, fmt.Errorf("network: unknown payload type %q", typ)
	}
	ptr := reflect.New(info.t)
	if !jsonBody && info.binary {
		if err := ptr.Interface().(wire.Unmarshaler).UnmarshalWire(body); err != nil {
			return nil, fmt.Errorf("network: decode payload %q: %w", typ, err)
		}
		return ptr.Elem().Interface(), nil
	}
	if !jsonBody {
		return nil, fmt.Errorf("network: payload type %q has no binary codec", typ)
	}
	if err := json.Unmarshal(body, ptr.Interface()); err != nil {
		return nil, fmt.Errorf("network: decode payload %q: %w", typ, err)
	}
	return ptr.Elem().Interface(), nil
}

// binFrameIter yields the frame sequence of one message: a first frame
// carrying the envelope header, plus as many continuation fragments as the
// body needs under the frame limit. It is the single definition of the
// fragmentation algorithm — both the standalone encoder (appendBinFrames,
// which feeds the golden vectors and fuzz corpora) and the live transport
// writer (frameWriter.writeMsg) consume it, so the tested framing and the
// on-the-wire framing can never diverge.
type binFrameIter struct {
	flags     byte
	id        uint64
	from      Addr
	typ       string
	remaining []byte
	limit     int
	first     bool
	done      bool
}

func newBinFrameIter(flags byte, id uint64, from Addr, typ string, body []byte, limit int) *binFrameIter {
	if limit <= 0 || limit > maxFrame {
		limit = maxFrame
	}
	return &binFrameIter{flags: flags, id: id, from: from, typ: typ, remaining: body, limit: limit, first: true}
}

// next appends the next complete frame (4-byte length prefix included) to
// dst and reports whether more frames follow. It must not be called again
// after more=false.
func (it *binFrameIter) next(dst []byte) (out []byte, more bool, err error) {
	// The header is assembled on the stack (appendFrame copies it into dst,
	// so it never escapes); append still grows it onto the heap in the rare
	// case an address + type name exceeds the array.
	var hdrArr [64]byte
	hdr := hdrArr[:0]
	hdr = append(hdr, magicBinary, 0)
	hdr = wire.AppendUvarint(hdr, it.id)
	if it.first {
		hdr = wire.AppendString(hdr, string(it.from))
		hdr = wire.AppendString(hdr, it.typ)
	}
	chunk := len(it.remaining)
	if len(hdr)+chunk > it.limit {
		chunk = it.limit - len(hdr)
		if chunk <= 0 {
			return nil, false, fmt.Errorf("network: frame limit %d too small for message header", it.limit)
		}
	}
	fl := it.flags
	if !it.first {
		fl |= fFrag
	}
	if chunk < len(it.remaining) {
		fl |= fMore
	}
	hdr[1] = fl
	out, err = appendFrame(dst, hdr, it.remaining[:chunk])
	if err != nil {
		return nil, false, err
	}
	it.remaining = it.remaining[chunk:]
	it.first = false
	it.done = fl&fMore == 0
	return out, !it.done, nil
}

// appendBinFrames appends the complete frame sequence of one message to
// dst.
func appendBinFrames(dst []byte, flags byte, id uint64, from Addr, typ string, body []byte, limit int) ([]byte, error) {
	it := newBinFrameIter(flags, id, from, typ, body, limit)
	for {
		var err error
		var more bool
		dst, more, err = it.next(dst)
		if err != nil {
			return nil, err
		}
		if !more {
			return dst, nil
		}
	}
}

// maxConcurrentFragmented bounds how many fragmented (multi-frame)
// messages one connection writes concurrently. One at a time guarantees a
// correct sender never exceeds the receiver's *total* reassembly byte
// budget (which equals the single-message cap): large transfers queue
// behind each other, while single-frame messages skip the semaphore
// entirely and interleave between a large transfer's fragments.
const maxConcurrentFragmented = 1

// frameWriter serialises frame writes onto one connection. The lock is
// held per *frame*, not per message, so fragments of concurrent large
// messages interleave on the wire (the receiver reassembles by id) and a
// single oversized transfer cannot head-of-line-block every other message
// on the connection. Per-frame write deadlines — capped by the writing
// call's context deadline — keep a dead peer from blocking a writer
// forever, and every completed write refreshes the activity clock the idle
// watchdog reads.
type frameWriter struct {
	mu           sync.Mutex
	conn         net.Conn
	bw           *bufio.Writer
	writeTimeout time.Duration
	activity     *atomic.Int64
	scratch      []byte
	fragSem      chan struct{}
}

func newFrameWriter(conn net.Conn, writeTimeout time.Duration, activity *atomic.Int64) *frameWriter {
	return &frameWriter{
		conn:         conn,
		bw:           bufio.NewWriterSize(conn, 32<<10),
		writeTimeout: writeTimeout,
		activity:     activity,
		fragSem:      make(chan struct{}, maxConcurrentFragmented),
	}
}

// writeMsg writes one message as its frame sequence and flushes. Each frame
// is assembled into the reusable scratch buffer and handed to the buffered
// writer as a single Write, so scratch memory stays bounded by the frame
// limit no matter how large the message is.
//
// The write deadline is refreshed per frame — a fragmented transfer larger
// than one idle window survives as long as frames keep moving — and capped
// by the caller's context deadline, so a short-deadline call writing to a
// stuck peer fails on time (killing the shared connection, which the pool
// replaces) instead of blocking for the full write timeout.
func (fw *frameWriter) writeMsg(ctx context.Context, flags byte, id uint64, from Addr, typ string, body []byte, limit int) error {
	ctxDeadline, hasCtxDeadline := time.Time{}, false
	if ctx != nil {
		ctxDeadline, hasCtxDeadline = ctx.Deadline()
	}
	if limit <= 0 || limit > maxFrame {
		limit = maxFrame
	}
	// A message that will fragment takes a slot in the fragmented-message
	// semaphore first, so concurrent large transfers never exceed the
	// receiver's partial-assembly limits (the slight overestimate of the
	// header size errs toward taking a slot unnecessarily, which is
	// harmless).
	if len(body)+len(from)+len(typ)+32 > limit {
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case fw.fragSem <- struct{}{}:
			defer func() { <-fw.fragSem }()
		case <-done:
			return ctx.Err()
		}
	}
	it := newBinFrameIter(flags, id, from, typ, body, limit)
	for {
		fw.mu.Lock()
		dl := time.Now().Add(fw.writeTimeout)
		if hasCtxDeadline && ctxDeadline.Before(dl) {
			dl = ctxDeadline
		}
		_ = fw.conn.SetWriteDeadline(dl)
		frame, more, err := it.next(fw.scratch[:0])
		if err != nil {
			fw.mu.Unlock()
			return err
		}
		fw.scratch = frame[:0]
		if _, err := fw.bw.Write(frame); err != nil {
			fw.mu.Unlock()
			return err
		}
		if !more {
			// Keep the retained scratch modest: one oversized transfer
			// should not pin a frame-limit-sized buffer forever.
			if cap(fw.scratch) > 64<<10 {
				fw.scratch = nil
			}
			err := fw.bw.Flush()
			fw.mu.Unlock()
			if err != nil {
				return err
			}
			fw.touch()
			return nil
		}
		fw.mu.Unlock()
		fw.touch()
	}
}

// writeRaw writes one pre-encoded frame payload (the legacy JSON envelope
// path) and flushes.
func (fw *frameWriter) writeRaw(payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	_ = fw.conn.SetWriteDeadline(time.Now().Add(fw.writeTimeout))
	if err := writeFrameParts(fw.bw, payload, nil); err != nil {
		return err
	}
	if err := fw.bw.Flush(); err != nil {
		return err
	}
	fw.touch()
	return nil
}

func (fw *frameWriter) touch() {
	if fw.activity != nil {
		fw.activity.Store(time.Now().UnixNano())
	}
}

// connWatchdog closes the connection once it has been idle — no bytes read
// or written, no requests in flight — for the idle timeout. This replaces
// the old transport's hardcoded 30-second absolute connection deadline: a
// pooled connection stays alive as long as it is useful, and a legitimately
// long transfer or handler keeps it open because activity and in-flight
// tracking are refreshed per frame.
func connWatchdog(conn net.Conn, idle time.Duration, activity, inflight *atomic.Int64, done <-chan struct{}) {
	tick := idle / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if inflight.Load() > 0 {
				continue
			}
			if time.Since(time.Unix(0, activity.Load())) >= idle {
				_ = conn.Close()
				return
			}
		}
	}
}
