package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TimeSeries accumulates timestamped samples and aggregates them into
// fixed-width time buckets, which is how the PlanetLab figures (peers over
// time, bandwidth over time, query latency over time) are produced.
// TimeSeries is safe for concurrent use; the simulator's peers record into
// shared series from many goroutines.
type TimeSeries struct {
	mu      sync.Mutex
	name    string
	bucket  time.Duration
	samples map[int64][]float64
}

// NewTimeSeries creates a time series aggregated into buckets of the given
// width.
func NewTimeSeries(name string, bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		bucket = time.Minute
	}
	return &TimeSeries{name: name, bucket: bucket, samples: make(map[int64][]float64)}
}

// Name returns the series name.
func (ts *TimeSeries) Name() string { return ts.name }

// Bucket returns the bucket width.
func (ts *TimeSeries) Bucket() time.Duration { return ts.bucket }

// Add records a sample at the given (simulated) time offset from the start
// of the experiment.
func (ts *TimeSeries) Add(at time.Duration, value float64) {
	idx := int64(at / ts.bucket)
	ts.mu.Lock()
	ts.samples[idx] = append(ts.samples[idx], value)
	ts.mu.Unlock()
}

// BucketStat is the aggregate of one time bucket.
type BucketStat struct {
	// Start is the start offset of the bucket.
	Start time.Duration
	// Count is the number of samples in the bucket.
	Count int
	// Sum, Mean and Std summarise the sample values.
	Sum, Mean, Std float64
}

// Buckets returns the per-bucket aggregates in time order.
func (ts *TimeSeries) Buckets() []BucketStat {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	idxs := make([]int64, 0, len(ts.samples))
	for i := range ts.samples {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]BucketStat, 0, len(idxs))
	for _, i := range idxs {
		vals := ts.samples[i]
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		out = append(out, BucketStat{
			Start: time.Duration(i) * ts.bucket,
			Count: len(vals),
			Sum:   sum,
			Mean:  Mean(vals),
			Std:   Std(vals),
		})
	}
	return out
}

// Table renders the series as aligned text rows (minute, count, sum, mean,
// std), the format used by the benchmark harness output.
func (ts *TimeSeries) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (bucket %v)\n", ts.name, ts.bucket)
	fmt.Fprintf(&b, "%10s %8s %12s %12s %12s\n", "t", "count", "sum", "mean", "std")
	for _, bs := range ts.Buckets() {
		fmt.Fprintf(&b, "%10v %8d %12.2f %12.2f %12.2f\n", bs.Start, bs.Count, bs.Sum, bs.Mean, bs.Std)
	}
	return b.String()
}

// Counter is a concurrency-safe monotonically increasing counter used for
// bandwidth and message accounting. It is lock-free: the value lives in an
// atomic word holding float64 bits, so the query hot path increments it
// without contending on a mutex and exporters read a consistent snapshot
// with a single atomic load.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current counter value.
func (c *Counter) Value() float64 {
	return math.Float64frombits(c.bits.Load())
}
