package stats

import (
	"sync"
	"time"
)

// RateTracker estimates an event rate (events per second) over a sliding
// window using the classic two-bucket approximation: events are counted in
// the current window interval, and when the interval rolls over the count
// shifts into a "previous" bucket whose contribution decays linearly as the
// current interval fills. The estimate is O(1) in time and space, which is
// what a per-partition read-rate counter on the query hot path needs.
//
// All methods take the current time explicitly so callers that run under a
// simulated clock (tests, the sim harness) can drive it deterministically.
type RateTracker struct {
	mu       sync.Mutex
	window   time.Duration
	curStart time.Time
	cur      uint64
	prev     uint64
}

// NewRateTracker returns a tracker with the given window. Windows shorter
// than a millisecond are clamped to one second.
func NewRateTracker(window time.Duration) *RateTracker {
	if window < time.Millisecond {
		window = time.Second
	}
	return &RateTracker{window: window}
}

// roll advances the buckets so that curStart <= now < curStart+window.
// Callers must hold mu.
func (r *RateTracker) roll(now time.Time) {
	if r.curStart.IsZero() {
		r.curStart = now
		return
	}
	elapsed := now.Sub(r.curStart)
	switch {
	case elapsed < r.window:
		// still inside the current interval
	case elapsed < 2*r.window:
		r.prev = r.cur
		r.cur = 0
		r.curStart = r.curStart.Add(r.window)
	default:
		// idle for a full window or more: both buckets are stale
		r.prev = 0
		r.cur = 0
		r.curStart = now
	}
}

// Note records one event at the given time.
func (r *RateTracker) Note(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.roll(now)
	r.cur++
}

// Rate returns the estimated events per second at the given time. The
// previous interval's count is weighted by how much of the sliding window
// still overlaps it.
func (r *RateTracker) Rate(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.roll(now)
	frac := 1 - now.Sub(r.curStart).Seconds()/r.window.Seconds()
	if frac < 0 {
		frac = 0
	}
	est := float64(r.prev)*frac + float64(r.cur)
	return est / r.window.Seconds()
}
