// Package stats provides the small statistical toolbox used by the
// simulator and the benchmark harness: summary statistics, histograms and
// time series of the kind plotted in Figures 7–9 of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	Count          int
	Mean, Std      float64
	Min, Max       float64
	Median, P95    float64
	Sum            float64
	sorted         []float64
	valuesAreSaved bool
}

// Summarize computes summary statistics of the sample.
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.sorted = sorted
	s.valuesAreSaved = true
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(len(sorted))
	var sq float64
	for _, x := range sorted {
		sq += (x - s.Mean) * (x - s.Mean)
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(sq / float64(len(sorted)-1))
	}
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted sample
// using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f median=%.3f p95=%.3f max=%.3f",
		s.Count, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// Mean returns the arithmetic mean of the sample (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than two values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Histogram is a fixed-width histogram over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	Total  int
}

// NewHistogram creates a histogram with the given number of equal-width
// bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) {
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Bin returns the [lo, hi) bounds of bin i.
func (h *Histogram) Bin(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// String renders the histogram as a simple ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		lo, hi := h.Bin(i)
		bar := strings.Repeat("#", c*40/max)
		fmt.Fprintf(&b, "[%8.3f,%8.3f) %6d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
