package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pgrid/internal/testutil"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Sum != 10 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-9 {
		t.Errorf("median = %v", s.Median)
	}
	if math.Abs(s.Std-1.29099) > 1e-4 {
		t.Errorf("std = %v", s.Std)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Error("empty summary wrong")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.P95 && s.P95 <= s.Max
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 300, 502)); err != nil {
		t.Error(err)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{3}) != 0 {
		t.Error("degenerate cases wrong")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
	if math.Abs(Std([]float64{2, 4})-math.Sqrt2) > 1e-9 {
		t.Error("std wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	h.Add(-1)
	h.Add(11)
	if h.Total != 12 || h.Under != 1 || h.Over != 1 {
		t.Errorf("histogram totals: %+v", h)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d = %d, want 2", i, c)
		}
	}
	lo, hi := h.Bin(1)
	if lo != 2 || hi != 4 {
		t.Errorf("Bin(1) = %v,%v", lo, hi)
	}
	if h.String() == "" {
		t.Error("histogram rendering empty")
	}
	// Degenerate constructor arguments are normalised.
	d := NewHistogram(5, 5, 0)
	d.Add(5)
	if d.Total != 1 {
		t.Error("degenerate histogram broken")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries("latency", time.Minute)
	ts.Add(30*time.Second, 1)
	ts.Add(45*time.Second, 3)
	ts.Add(90*time.Second, 10)
	buckets := ts.Buckets()
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Count != 2 || buckets[0].Mean != 2 || buckets[0].Sum != 4 {
		t.Errorf("bucket 0 = %+v", buckets[0])
	}
	if buckets[1].Start != time.Minute || buckets[1].Count != 1 {
		t.Errorf("bucket 1 = %+v", buckets[1])
	}
	if ts.Name() != "latency" || ts.Bucket() != time.Minute {
		t.Error("accessors wrong")
	}
	if ts.Table() == "" {
		t.Error("table rendering empty")
	}
	// Zero bucket width defaults to one minute.
	d := NewTimeSeries("x", 0)
	if d.Bucket() != time.Minute {
		t.Error("default bucket wrong")
	}
}

func TestTimeSeriesConcurrent(t *testing.T) {
	ts := NewTimeSeries("concurrent", time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ts.Add(time.Duration(i)*time.Millisecond, float64(g))
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, b := range ts.Buckets() {
		total += b.Count
	}
	if total != 8000 {
		t.Errorf("lost samples: %d", total)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1000 {
		t.Errorf("counter = %v", c.Value())
	}
}
