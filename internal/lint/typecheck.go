package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
)

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// parseFiles parses the named source files (with comments, which the allow
// annotations need) into the fileset.
func parseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkPackage type-checks one package from source. Soft type errors are
// tolerated as long as the checker produces a package: the analyzers guard
// every types.Info lookup, and a partially checked dependency merely
// weakens facts. The returned error is the first hard failure.
func checkPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := newInfo()
	var firstErr error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if pkg == nil {
		return nil, nil, fmt.Errorf("lint: typecheck %s: %w", path, firstErr)
	}
	return pkg, info, firstErr
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
