// Package ctxflow is the ctxflow analyzer fixture: functions that receive
// a context.Context must thread it.
package ctxflow

import "context"

func handler(ctx context.Context) {
	_ = context.Background() // want `context.Background\(\) inside a function that already receives a context.Context`
	_ = context.TODO()       // want `context.TODO\(\) inside a function that already receives a context.Context`
	helper(nil, 1)           // want `nil context passed to helper`
	helper(ctx, 1)           // threading the parameter: fine

	// Function literals close over the parameter and inherit the obligation.
	fresh := func() context.Context {
		return context.Background() // want `context.Background\(\) inside a function`
	}
	_ = fresh

	//pgridvet:allow ctxflow detached janitor lifetime is deliberate
	_ = context.Background()
}

func helper(ctx context.Context, n int) {}

// entry has no incoming context: entry layers mint roots legitimately.
func entry() {
	_ = context.Background()
	helper(context.TODO(), 1)
}

// shim is exempted wholesale via its doc annotation.
//
//pgridvet:allow ctxflow this adapter deliberately detaches from the caller
func shim(ctx context.Context) {
	_ = context.Background()
}
