// Package atomicfield is the atomicfield analyzer fixture: fields of
// atomic types may only be used through their accessor methods.
package atomicfield

import (
	"sync/atomic"

	"pgrid/internal/lint/testdata/src/atomicfield/stats"
)

type metrics struct {
	hits   stats.Counter
	inward atomic.Int64
	plain  int64 // not atomic: raw access is fine
}

func accessors(m *metrics) (float64, int64) {
	m.hits.Add(1)   // accessor call: fine
	m.inward.Add(1) // accessor call: fine
	p := &m.hits    // address taken: passing the atomic by pointer is fine
	p.Add(1)
	m.plain = 7 // non-atomic field: fine
	return m.hits.Value(), m.inward.Load()
}

func violations(m *metrics, other *metrics) {
	v := m.hits // want `raw read of atomic field atomicfield.metrics.hits copies it non-atomically`
	_ = v
	n := m.inward.Load() + 1
	m.inward = atomic.Int64{} // want `raw assignment to atomic field atomicfield.metrics.inward`
	_ = n
	if m.inward == other.inward { // want `raw read of atomic field` `raw read of atomic field`
		return
	}
}

func allowed(m *metrics) {
	//pgridvet:allow atomicfield snapshot taken under the registry's own lock
	v := m.hits
	_ = v
}
