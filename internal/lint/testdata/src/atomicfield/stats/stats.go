// Package stats mirrors the real internal/stats lock-free Counter just
// closely enough for the atomicfield fixture: the analyzer matches the
// Counter type by name in any package whose import path ends in /stats.
package stats

import "sync/atomic"

// Counter is a float64 accumulator advanced with a CAS loop.
type Counter struct {
	bits atomic.Uint64
}

func (c *Counter) Add(v float64) {}

func (c *Counter) Value() float64 { return 0 }
