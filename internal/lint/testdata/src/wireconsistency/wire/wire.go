// Package wire is the wireconsistency analyzer fixture: every registered
// message needs a binary codec, WireSize, a golden vector and fuzz seeds.
package wire

import "pgrid/internal/lint/testdata/src/wireconsistency/network"

// GoodMsg has all four legs: codec, size, golden vector, fuzz seeds.
type GoodMsg struct{ A uint32 }

func (m GoodMsg) AppendWire(b []byte) []byte    { return b }
func (m *GoodMsg) UnmarshalWire(b []byte) error { return nil }
func (m GoodMsg) WireSize() int                 { return 4 }

// NoCodecMsg is registered without a binary codec: it would silently ride
// the JSON fallback.
type NoCodecMsg struct{ A uint32 }

func (m NoCodecMsg) WireSize() int { return 4 }

// NoGoldenMsg has a codec but no golden vector and no fuzz seeds.
type NoGoldenMsg struct{ A uint32 }

func (m NoGoldenMsg) AppendWire(b []byte) []byte    { return b }
func (m *NoGoldenMsg) UnmarshalWire(b []byte) error { return nil }
func (m NoGoldenMsg) WireSize() int                 { return 4 }

func init() {
	network.RegisterType("wire.good", GoodMsg{})         // want `pins a vector for StaleMsg, which is not registered`
	network.RegisterType("wire.nocodec", NoCodecMsg{})   // want `has no AppendWire method` `has no UnmarshalWire method`
	network.RegisterType("wire.nogolden", NoGoldenMsg{}) // want `has no golden vector` `has no fuzz corpus seed testdata/fuzz/FuzzBinaryWireDecode/seed-nogoldenmsg` `has no fuzz corpus seed testdata/fuzz/FuzzWireDecode/seed-nogoldenmsg`
}
