// Package network mirrors the real transport registry's RegisterType just
// closely enough for the wireconsistency fixture: the analyzer matches the
// function by name in any package whose import path ends in /network.
package network

var registry = map[string]any{}

func RegisterType(name string, sample any) {
	registry[name] = sample
}
