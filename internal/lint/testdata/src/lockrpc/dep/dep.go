// Package dep exists to prove lockrpc's blocking classification flows
// across package boundaries as facts: Blocker is only discovered to block
// by analyzing this package first.
package dep

import "time"

func Blocker() {
	time.Sleep(time.Millisecond)
}

func Harmless() int { return 42 }
