// Package lockrpc is the lockrpc analyzer fixture: no blocking operation
// may be reached while a sync mutex is held.
package lockrpc

import (
	"context"
	"sync"
	"time"

	"pgrid/internal/lint/testdata/src/lockrpc/dep"
)

// Transport mirrors the real network.Transport shape: an interface method
// whose first parameter is a context is treated as an RPC.
type Transport interface {
	Call(ctx context.Context, to string, req any) (any, error)
}

type peer struct {
	mu sync.Mutex
	tr Transport
	ch chan int
}

func (p *peer) badDirectRPC(ctx context.Context) {
	p.mu.Lock()
	_, _ = p.tr.Call(ctx, "a", 1) // want `calls RPC-shaped interface method \(lockrpc.Transport\).Call while mutex "p.mu" is held`
	p.mu.Unlock()
}

func (p *peer) badSend() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ch <- 1 // want `performs a channel send while mutex "p.mu" is held`
}

func (p *peer) badReceive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.ch // want `performs a channel receive while mutex "p.mu" is held`
}

func sleepy() {
	time.Sleep(time.Millisecond)
}

func (p *peer) badTransitive() {
	p.mu.Lock()
	sleepy() // want `calls lockrpc.sleepy, which calls time.Sleep while mutex "p.mu" is held`
	p.mu.Unlock()
}

func (p *peer) badCrossPackage() {
	p.mu.Lock()
	defer p.mu.Unlock()
	dep.Blocker() // want `calls dep.Blocker, which calls time.Sleep while mutex "p.mu" is held`
}

func (p *peer) badSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `blocks in a select with no default while mutex "p.mu" is held`
	case v := <-p.ch:
		_ = v
	case p.ch <- 1:
	}
}

func (p *peer) goodRelease(ctx context.Context) {
	p.mu.Lock()
	tr := p.tr
	p.mu.Unlock()
	_, _ = tr.Call(ctx, "a", 1) // lock released first: fine
}

func (p *peer) goodGoroutine() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() { p.ch <- 1 }() // runs outside the critical section: fine
}

func (p *peer) goodNonBlockingSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 1: // non-blocking attempt: fine
	default:
	}
}

func (p *peer) goodBranchRelease(ctx context.Context, fast bool) {
	p.mu.Lock()
	if fast {
		p.mu.Unlock()
		_, _ = p.tr.Call(ctx, "a", 1) // this branch released the lock: fine
		return
	}
	p.mu.Unlock()
}

func (p *peer) goodHarmlessCalls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return dep.Harmless() // non-blocking callee: fine
}

// allowedWholeFunc ships its send under the lock deliberately; the channel
// is buffered to the peer count and drained by the owning goroutine.
//
//pgridvet:allow lockrpc buffered control channel, audited 2026-08
func (p *peer) allowedWholeFunc() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ch <- 1
}

func (p *peer) allowedLine() {
	p.mu.Lock()
	defer p.mu.Unlock()
	//pgridvet:allow lockrpc buffered control channel cannot block
	p.ch <- 1
}
