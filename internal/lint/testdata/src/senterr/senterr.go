// Package senterr is the senterr analyzer fixture: comparisons of errors
// against exported Err* sentinels must use errors.Is.
package senterr

import "errors"

var ErrNotFound = errors.New("not found")

// errDone is package-level but unexported: loop-break tokens like this are
// compared by identity legitimately and must not be flagged.
var errDone = errors.New("done")

// Errs is exported and error-typed but does not follow the Err+UpperCamel
// sentinel convention (4th rune is lowercase), so it is out of scope.
var Errs = errors.New("errs")

func compare(err error) bool {
	if err == ErrNotFound { // want `comparison with sentinel error ErrNotFound uses ==`
		return true
	}
	if err != ErrNotFound { // want `uses !=; sentinels may arrive wrapped, use !errors.Is\(err, ErrNotFound\)`
		return false
	}
	if ErrNotFound == err { // want `comparison with sentinel error ErrNotFound uses ==`
		return true
	}
	switch err {
	case ErrNotFound: // want `switch case compares error to sentinel ErrNotFound`
		return true
	}
	return false
}

func negatives(err error) bool {
	if err == nil || ErrNotFound == nil { // nil checks are fine
		return false
	}
	if err == errDone || err == Errs { // non-sentinels are fine
		return false
	}
	if errors.Is(err, ErrNotFound) { // the idiom the analyzer wants
		return true
	}
	local := errors.New("ErrLooksLikeOne but function-scoped")
	return err == local
}

func allowed(err error) bool {
	//pgridvet:allow senterr this sentinel is never wrapped, identity is the point
	return err == ErrNotFound
}
