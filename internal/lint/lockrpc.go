package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockRPC enforces the transports' and overlay's lock discipline: no
// blocking operation — an RPC through the Transport interface, a channel
// send or receive, a select without default, a WaitGroup/Cond wait, a
// time.Sleep — may be reached while a sync.Mutex or sync.RWMutex is held.
// The pooled TCP transport multiplexes every peer conversation over shared
// connections, so a handler that blocks under the Store, Peer or pool
// mutex stalls every other request behind that lock; in the worst case
// (an RPC whose response handler needs the same lock) it deadlocks the
// node. The check is reachability-based: a function that blocks anywhere
// in its call graph (facts flow across package boundaries) is itself
// blocking at its call sites. Audited exceptions carry
// //pgridvet:allow lockrpc on the call line or the function's doc comment.
var LockRPC = &Analyzer{
	Name:      "lockrpc",
	Doc:       "blocking operations (transport RPCs, channel ops, Waits) must not be reached while a sync mutex is held",
	UsesFacts: true,
	Run:       runLockRPC,
}

func runLockRPC(pass *Pass) error {
	// Phase 1: classify this package's functions (fixpoint over the
	// package-local call graph, seeded by blocking primitives, known
	// blocking std functions, and facts imported from dependencies), then
	// export the classification for dependents.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}
	local := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for obj, fn := range decls {
			if local[obj] != "" {
				continue
			}
			if reason, _ := blockingIn(pass, local, fn.Body); reason != "" {
				local[obj] = reason
				changed = true
			}
		}
	}
	for obj, reason := range local {
		pass.ExportFact(obj, reason)
	}

	// Phase 2: walk each function tracking which mutexes are held, and
	// report blocking operations reached inside a critical section.
	for obj, fn := range decls {
		_ = obj
		if HasAllow(fn.Doc, pass.Analyzer.Name) {
			continue
		}
		scanStmts(pass, local, fn.Body.List, lockState{})
	}
	return nil
}

// lockState maps a mutex expression (rendered as source, e.g. "p.mu") to
// the position of the Lock call that acquired it.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// anyLock returns a deterministic representative held lock.
func (s lockState) anyLock() (string, token.Pos) {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0], s[keys[0]]
}

// scanStmts threads the held-lock state through a statement list and
// returns the state at its end.
func scanStmts(pass *Pass, local map[*types.Func]string, stmts []ast.Stmt, held lockState) lockState {
	for _, s := range stmts {
		held = scanStmt(pass, local, s, held)
	}
	return held
}

func scanStmt(pass *Pass, local map[*types.Func]string, stmt ast.Stmt, held lockState) lockState {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockOp(pass, s.X); ok {
			held = held.clone()
			if op == "Lock" || op == "RLock" {
				held[key] = s.Pos()
			} else {
				delete(held, key)
			}
			return held
		}
		checkBlocking(pass, local, s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the function
		// (no state change). Other deferred calls run at return, where the
		// set of held locks is ambiguous — not checked.
		return held
	case *ast.GoStmt:
		// The goroutine body runs outside the critical section; only the
		// argument expressions are evaluated now.
		for _, arg := range s.Call.Args {
			checkBlocking(pass, local, arg, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			lock, pos := held.anyLock()
			reportBlocked(pass, s.Pos(), "performs a channel send", lock, pos)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkBlocking(pass, local, r, held)
		}
	case *ast.LabeledStmt:
		return scanStmt(pass, local, s.Stmt, held)
	case *ast.BlockStmt:
		return scanBranch(pass, local, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = scanStmt(pass, local, s.Init, held)
		}
		checkBlocking(pass, local, s.Cond, held)
		out := scanBranch(pass, local, s.Body.List, held)
		if s.Else != nil {
			elseOut := scanStmt(pass, local, s.Else, held.clone())
			// Keep a lock only if no surviving branch released it.
			for k := range held {
				if _, ok := elseOut[k]; !ok {
					delete(out, k)
				}
			}
		}
		return out
	case *ast.ForStmt:
		if s.Init != nil {
			held = scanStmt(pass, local, s.Init, held)
		}
		if s.Cond != nil {
			checkBlocking(pass, local, s.Cond, held)
		}
		scanStmts(pass, local, s.Body.List, held.clone())
	case *ast.RangeStmt:
		checkBlocking(pass, local, s.X, held)
		scanStmts(pass, local, s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = scanStmt(pass, local, s.Init, held)
		}
		if s.Tag != nil {
			checkBlocking(pass, local, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBranch(pass, local, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBranch(pass, local, cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			lock, pos := held.anyLock()
			reportBlocked(pass, s.Pos(), "blocks in a select with no default", lock, pos)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanBranch(pass, local, cc.Body, held)
			}
		}
	default:
		checkBlocking(pass, local, stmt, held)
	}
	return held
}

// scanBranch analyzes a nested statement list. Locks released by a branch
// that falls through to the code after it propagate out; a branch that
// terminates (returns, panics, breaks) leaves the outer state untouched.
func scanBranch(pass *Pass, local map[*types.Func]string, stmts []ast.Stmt, held lockState) lockState {
	out := scanStmts(pass, local, stmts, held.clone())
	if terminates(stmts) {
		return held
	}
	res := held.clone()
	for k := range held {
		if _, ok := out[k]; !ok {
			delete(res, k)
		}
	}
	return res
}

func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkBlocking reports the first blocking operation found in an
// expression or simple statement while locks are held.
func checkBlocking(pass *Pass, local map[*types.Func]string, n ast.Node, held lockState) {
	if len(held) == 0 || n == nil {
		return
	}
	if reason, pos := blockingIn(pass, local, n); reason != "" {
		lock, lockPos := held.anyLock()
		reportBlocked(pass, pos, reason, lock, lockPos)
	}
}

func reportBlocked(pass *Pass, pos token.Pos, reason, lock string, lockPos token.Pos) {
	pass.Reportf(pos, "%s while mutex %q is held (acquired at %s); release the lock before blocking, or annotate //pgridvet:allow lockrpc with the audit reason",
		reason, lock, pass.Fset.Position(lockPos))
}

// blockingIn returns the first blocking operation in the subtree rooted at
// root: a channel send or receive, a default-less select, or a call whose
// (transitive) callee blocks. Function literal bodies are skipped unless
// immediately invoked; go statements are skipped entirely.
func blockingIn(pass *Pass, local map[*types.Func]string, root ast.Node) (string, token.Pos) {
	var reason string
	var at token.Pos
	found := func(r string, p token.Pos) bool {
		if reason == "" {
			reason, at = r, p
		}
		return false
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if reason != "" || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // only blocks whoever eventually calls it
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if r, p := blockingIn(pass, local, arg); r != "" {
					return found(r, p)
				}
			}
			return false
		case *ast.SendStmt:
			return found("performs a channel send", n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				return found("performs a channel receive", n.Pos())
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				return found("blocks in a select with no default", n.Pos())
			}
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				if r, p := blockingIn(pass, local, fl.Body); r != "" {
					return found(r, p)
				}
			}
			if r := callBlockReason(pass, local, n); r != "" {
				return found(r, n.Pos())
			}
		}
		return true
	})
	return reason, at
}

// callBlockReason explains why calling this call expression may block, or
// returns "".
func callBlockReason(pass *Pass, local map[*types.Func]string, call *ast.CallExpr) string {
	callee := calleeFunc(pass.Info, call)
	if callee == nil {
		// A call of a plain function value: RPC handlers and callbacks in
		// this codebase are context-first, so a context-taking function
		// value is treated as potentially blocking.
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || tv.IsType() {
			return ""
		}
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok && sigHasCtxFirst(sig) {
			return "calls a context-taking function value"
		}
		return ""
	}
	if r := seedBlockReason(callee); r != "" {
		return r
	}
	if r, ok := local[callee]; ok && r != "" {
		return "calls " + funcLabel(callee) + ", which " + capReason(r)
	}
	// Blocking classification stops at the standard-library boundary: the
	// channel plumbing deep inside fmt, reflect or context is not what this
	// check is about, so only the explicit seeds above count there.
	if !pass.isStdPkg(callee.Pkg()) {
		if r, ok := pass.ImportFact(callee); ok && r != "" {
			return "calls " + funcLabel(callee) + ", which " + capReason(r)
		}
	}
	if sig, ok := callee.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type().Underlying()) && sigHasCtxFirst(sig) {
			return "calls RPC-shaped interface method " + funcLabel(callee)
		}
	}
	return ""
}

// seedBlockReason classifies the standard-library blocking primitives the
// call graph bottoms out in.
func seedBlockReason(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		if f.Name() == "Sleep" {
			return "calls time.Sleep"
		}
	case "sync":
		if f.Name() == "Wait" {
			return "waits on " + funcLabel(f)
		}
	}
	return ""
}

func sigHasCtxFirst(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// capReason bounds chained explanations so a deep call path stays readable.
func capReason(r string) string {
	const max = 140
	if len(r) > max {
		return r[:max] + "…"
	}
	return r
}

// funcLabel renders a function or method compactly: pkg.Func or
// (pkg.Recv).Method.
func funcLabel(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", named(sig.Recv().Type()), f.Name())
	}
	pkgName := ""
	if f.Pkg() != nil {
		pkgName = f.Pkg().Name() + "."
	}
	return pkgName + f.Name()
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on sync.Mutex and
// sync.RWMutex values (including embedded ones) and names the mutex.
func lockOp(pass *Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	callee := calleeFunc(pass.Info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, isSig := callee.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	if !namedIn(sig.Recv().Type(), "sync", "Mutex") && !namedIn(sig.Recv().Type(), "sync", "RWMutex") {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}
