// Package linttest is the fixture harness for the pgridvet analyzers, in
// the spirit of golang.org/x/tools/go/analysis/analysistest: a fixture is a
// real Go package under testdata/src whose source marks every expected
// diagnostic with a trailing comment
//
//	// want `regexp`
//
// (multiple backquoted or double-quoted regexps on one line for multiple
// diagnostics on that line). Run loads the fixture with the same go list
// driver the pgridvet binary uses, so fixtures also exercise dependency
// ordering and cross-package facts, and fails the test for every
// unexpected diagnostic and every unmatched expectation.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pgrid/internal/lint"
)

// wantRe captures the expectation list of one `// want` comment.
var wantRe = regexp.MustCompile("//\\s*want\\s+(.+)$")

// patternRe captures one backquoted or double-quoted regexp.
var patternRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package tree rooted at dir (a path relative to the
// calling test, conventionally testdata/src/<name>), runs the given
// analyzers over it, and compares the diagnostics against the fixture's
// `// want` annotations.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(abs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPatterns(abs, analyzers, []string{"./..."}, true)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	for _, d := range diags {
		if match(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func match(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every fixture source file for `// want` annotations.
func collectWants(root string) ([]*expectation, error) {
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, srcLine := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(srcLine)
			if m == nil {
				continue
			}
			groups := patternRe.FindAllStringSubmatch(m[1], -1)
			if len(groups) == 0 {
				return fmt.Errorf("%s:%d: want comment with no quoted regexp", path, i+1)
			}
			for _, g := range groups {
				text := g[1]
				if g[1] == "" && g[2] != "" {
					text = g[2]
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
		return nil
	})
	return wants, err
}
