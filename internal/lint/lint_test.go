package lint_test

import (
	"testing"

	"pgrid/internal/lint"
	"pgrid/internal/lint/linttest"
)

// Each fixture under testdata/src is a real package tree whose sources mark
// the expected diagnostics with `// want` annotations; see linttest.

func TestSentErrFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/senterr", lint.SentErr)
}

func TestCtxFlowFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxflow", lint.CtxFlow)
}

func TestAtomicFieldFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield", lint.AtomicField)
}

func TestLockRPCFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/lockrpc", lint.LockRPC)
}

func TestWireConsistencyFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/wireconsistency", lint.WireConsistency)
}
