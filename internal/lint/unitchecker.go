package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// This file implements the `go vet -vettool` protocol, the same contract
// golang.org/x/tools/go/analysis/unitchecker speaks, from the tool's side:
//
//   - `pgridvet -V=full` prints a versioned build ID line that cmd/go
//     fingerprints for its action cache (PrintVersion).
//   - `pgridvet -flags` prints the tool's flag schema as JSON so cmd/go can
//     validate pass-through vet flags (PrintFlags, handled in cmd/pgridvet).
//   - `pgridvet <dir>/vet.cfg` analyzes one compilation unit described by a
//     JSON config: source files, an import map onto compiled export data,
//     fact (.vetx) inputs from dependencies and one .vetx output
//     (RunVetTool).
//
// go vet drives the tool over every package in the dependency closure;
// dependency-only units arrive with VetxOnly set and contribute facts but
// no diagnostics.

// vetConfig describes one compilation unit, as written by cmd/go into
// $WORK/.../vet.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements `-V=full`: a line whose trailing build ID (a hash
// of the executable) keys go vet's result cache, in the exact shape cmd/go
// parses.
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(os.Args[0]), h.Sum(nil))
	return err
}

// RunVetTool analyzes the compilation unit described by the vet.cfg file at
// cfgPath and returns the process exit code: 0 clean, 1 driver error, 2
// diagnostics reported.
func RunVetTool(analyzers []*Analyzer, cfgPath string) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	succeedEmpty := func() int {
		if cfg.VetxOutput != "" {
			if err := writeFactsFile(cfg.VetxOutput, Facts{}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}
	if cfg.ImportPath == "unsafe" || len(cfg.GoFiles) == 0 {
		return succeedEmpty()
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return succeedEmpty()
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if canon, ok := cfg.ImportMap[path]; ok && canon != "" {
			path = canon
		}
		return gcImp.Import(path)
	})

	pkg, info, softErr := checkPackage(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if pkg == nil || (softErr != nil && (cfg.SucceedOnTypecheckFailure || cfg.VetxOnly)) {
		// A unit that does not typecheck cleanly (cgo translations, arch
		// shims) contributes nothing: go vet only needs the facts file.
		return succeedEmpty()
	}
	if softErr != nil {
		fmt.Fprintf(os.Stderr, "%s: typecheck: %v\n", cfg.ImportPath, softErr)
		return 1
	}

	facts := newFactStore()
	for _, vetx := range cfg.PackageVetx {
		if f := readFactsFile(vetx); f != nil {
			facts.merge(f)
		}
	}
	diags, err := analyzePackage(analyzers, fset, files, pkg, info, cfg.Dir, facts, cfg.Standard, cfg.VetxOnly)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := writeFactsFile(cfg.VetxOutput, facts.exported); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: read vet config: %w", err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("lint: parse vet config %s: %w", path, err)
	}
	return cfg, nil
}
