package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the static callee of a call expression: a declared
// function, a method (including interface methods), or nil for calls of
// plain function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// namedIn reports whether t (after stripping one pointer) is the named type
// pkgSuffix.name, where pkgSuffix matches the full package path or a
// "/"-delimited suffix of it. Suffix matching keeps the analyzers testable
// against fixture stubs of the real packages.
func namedIn(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return pkgPathMatches(obj.Pkg().Path(), pkgSuffix)
}

// pkgPathMatches reports whether path equals suffix or ends in "/"+suffix.
func pkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// exprString renders a simple expression (identifiers and selector chains)
// as source text, for naming mutexes in diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "?"
	}
}

// isUntypedNil reports whether e is the predeclared nil.
func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
