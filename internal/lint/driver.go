package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file is the standalone driver: `pgridvet ./...` without a vet.cfg
// argument. It shells out to `go list -deps -export -json` to obtain the
// dependency closure with compiled export data, type-checks every in-module
// package from source in dependency order (go list already emits
// dependencies first), imports standard-library packages from their export
// data, and threads analyzer facts from each package to its dependents.
// The `go vet -vettool` path (unitchecker.go) is the CI entry point; this
// driver is what developers and the fixture tests run.

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Error      *struct{ Err string }
}

// RunPatterns loads the packages matched by patterns (relative to dir, ""
// meaning the current directory), analyzes them with the given analyzers
// and returns the diagnostics for the matched packages. With includeTests,
// test packages (internal and external) are analyzed too.
func RunPatterns(dir string, analyzers []*Analyzer, patterns []string, includeTests bool) ([]Diagnostic, error) {
	pkgs, err := goList(dir, patterns, includeTests)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		byPath:  make(map[string]*listPackage, len(pkgs)),
		sources: make(map[string]*types.Package),
		facts:   newFactStore(),
	}
	ld.gcImporter = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		lp := ld.byPath[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(lp.Export)
	})
	std := make(map[string]bool)
	for _, lp := range pkgs {
		ld.byPath[lp.ImportPath] = lp
		if lp.Standard {
			std[lp.ImportPath] = true
		}
	}

	var diags []Diagnostic
	seen := make(map[string]bool)
	// go list emits dependencies before dependents, so analyzing in output
	// order guarantees facts are available when a dependent is reached.
	for _, lp := range pkgs {
		if !ld.analyzable(lp) {
			continue
		}
		pkg, info, files, err := ld.check(lp)
		if err != nil {
			if lp.DepOnly {
				continue // a broken dependency only weakens facts
			}
			return nil, err
		}
		pkgDiags, err := analyzePackage(analyzers, ld.fset, files, pkg, info, lp.Dir, ld.facts, std, lp.DepOnly)
		if err != nil {
			return nil, err
		}
		ld.facts.promoteExports()
		if lp.DepOnly {
			continue
		}
		// A package and its test variant share the non-test files; report
		// each finding once.
		for _, d := range pkgDiags {
			key := d.String()
			if !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// analyzable filters the go list closure down to in-module source packages:
// standard-library packages import via export data, synthesized ".test"
// mains have generated sources, and cgo packages are out of scope.
func (ld *loader) analyzable(lp *listPackage) bool {
	if lp.Standard || len(lp.CgoFiles) > 0 || len(lp.GoFiles) == 0 {
		return false
	}
	if lp.Name == "main" && strings.HasSuffix(lp.ImportPath, ".test") {
		return false
	}
	if lp.Error != nil {
		return false
	}
	return true
}

type loader struct {
	fset       *token.FileSet
	byPath     map[string]*listPackage
	sources    map[string]*types.Package
	gcImporter types.Importer
	facts      *factStore
}

// check type-checks one in-module package from source, caching the result
// under its (possibly test-variant) import path.
func (ld *loader) check(lp *listPackage) (*types.Package, *types.Info, []*ast.File, error) {
	names := make([]string, 0, len(lp.GoFiles))
	for _, f := range lp.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(lp.Dir, f)
		}
		names = append(names, f)
	}
	files, err := parseFiles(ld.fset, names)
	if err != nil {
		return nil, nil, nil, err
	}
	imp := importerFunc(func(path string) (*types.Package, error) {
		return ld.importFor(lp, path)
	})
	// pkgPath drops the " [foo.test]" variant suffix so object IDs (and
	// therefore facts) are stable between a package and its test variant.
	pkgPath := lp.ImportPath
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	pkg, info, _ := checkPackage(ld.fset, pkgPath, files, imp, "")
	if pkg == nil {
		return nil, nil, nil, fmt.Errorf("lint: typecheck %s failed", lp.ImportPath)
	}
	ld.sources[lp.ImportPath] = pkg
	return pkg, info, files, nil
}

// importFor resolves one import of package from: test variants first (an
// import from "p [t.test]" prefers "q [t.test]" over "q"), then in-module
// source packages, then export data.
func (ld *loader) importFor(from *listPackage, path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	target := ld.byPath[path]
	if from.ForTest != "" {
		if v := ld.byPath[path+" ["+from.ForTest+".test]"]; v != nil {
			target = v
		}
	}
	if target == nil {
		return nil, fmt.Errorf("lint: package %q not in load closure of %s", path, from.ImportPath)
	}
	if target.Standard {
		return ld.gcImporter.Import(target.ImportPath)
	}
	if pkg := ld.sources[target.ImportPath]; pkg != nil {
		return pkg, nil
	}
	// Dependency not yet loaded (should not happen given go list's order);
	// load it on demand.
	pkg, _, _, err := ld.check(target)
	return pkg, err
}

// goList runs `go list -deps -export -json` and decodes the JSON stream.
func goList(dir string, patterns []string, includeTests bool) ([]*listPackage, error) {
	args := []string{"list", "-deps", "-export", "-json"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
