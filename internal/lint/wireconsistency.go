package lint

import (
	"bufio"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// WireConsistency cross-checks the four legs every wire message must have.
// Registering a message type with network.RegisterType is only the first:
// the type also needs a hand-written binary codec (AppendWire on the value,
// UnmarshalWire on the pointer — wirecodec.go), a WireSize estimate for the
// sim's bandwidth accounting, a golden vector pinning its exact encoding in
// testdata/wire_golden.txt, and a seed in both fuzz corpora
// (testdata/fuzz/FuzzBinaryWireDecode and FuzzWireDecode). A message that
// skips a leg ships either without a binary codec (it silently rides the
// JSON fallback), without a pinned format (the next refactor breaks
// deployed clusters undetected), or without fuzz coverage. The analyzer
// fails the build naming the missing leg. Registrations in _test.go files
// are exempt: test-only messages are not protocol messages.
var WireConsistency = &Analyzer{
	Name: "wireconsistency",
	Doc:  "every registered wire message needs a binary codec, WireSize, a golden vector and fuzz corpus seeds",
	Run:  runWireConsistency,
}

// goldenFile and the corpus directories, relative to the registering
// package's directory.
const (
	goldenFile  = "testdata/wire_golden.txt"
	fuzzCorpora = "testdata/fuzz"
)

var corpusNames = []string{"FuzzBinaryWireDecode", "FuzzWireDecode"}

func runWireConsistency(pass *Pass) error {
	type registration struct {
		msgName string
		typ     *types.Named
		pos     ast.Node
	}
	var regs []registration
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.FileStart).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Name() != "RegisterType" ||
				callee.Pkg() == nil || !pkgPathMatches(callee.Pkg().Path(), "network") {
				return true
			}
			if len(call.Args) != 2 {
				return true
			}
			nameTV, ok := pass.Info.Types[call.Args[0]]
			if !ok || nameTV.Value == nil || nameTV.Value.Kind() != constant.String {
				return true
			}
			sampleTV, ok := pass.Info.Types[call.Args[1]]
			if !ok {
				return true
			}
			typ, ok := sampleTV.Type.(*types.Named)
			if !ok {
				return true
			}
			regs = append(regs, registration{
				msgName: constant.StringVal(nameTV.Value),
				typ:     typ,
				pos:     call,
			})
			return true
		})
	}
	if len(regs) == 0 {
		return nil
	}

	golden, goldenOK := readGoldenTypes(filepath.Join(pass.Dir, goldenFile))
	registered := make(map[string]bool, len(regs))
	for _, reg := range regs {
		typeName := reg.typ.Obj().Name()
		registered[typeName] = true
		pos := reg.pos.Pos()
		for _, leg := range []struct {
			method   string
			pointer  bool
			whatItIs string
		}{
			{"AppendWire", false, "the binary codec's encoder (wirecodec.go)"},
			{"UnmarshalWire", true, "the binary codec's decoder (wirecodec.go)"},
			{"WireSize", false, "the sim bandwidth accounting (network.WireSizer)"},
		} {
			if !hasMethod(reg.typ, leg.method, leg.pointer) {
				pass.Reportf(pos, "wire message %q (%s) is registered but has no %s method — %s is missing",
					reg.msgName, typeName, leg.method, leg.whatItIs)
			}
		}
		if goldenOK && !golden[typeName] {
			pass.Reportf(pos, "wire message %q (%s) has no golden vector in %s; regenerate with PGRID_REGEN_GOLDEN=1 go test ./internal/overlay -run TestGoldenWireVectors",
				reg.msgName, typeName, goldenFile)
		}
		for _, corpus := range corpusNames {
			seed := filepath.Join(fuzzCorpora, corpus, "seed-"+strings.ToLower(typeName))
			if _, err := os.Stat(filepath.Join(pass.Dir, seed)); err != nil {
				pass.Reportf(pos, "wire message %q (%s) has no fuzz corpus seed %s",
					reg.msgName, typeName, seed)
			}
		}
	}
	if !goldenOK {
		pass.Reportf(regs[0].pos.Pos(), "wire messages are registered here but %s does not exist; regenerate with PGRID_REGEN_GOLDEN=1 go test ./internal/overlay -run TestGoldenWireVectors",
			goldenFile)
	}
	// The reverse direction: a golden vector whose message was unregistered
	// is a stale pin that would mask the next accidental reuse of its bytes.
	for typeName := range golden {
		if !registered[typeName] {
			pass.Reportf(regs[0].pos.Pos(), "%s pins a vector for %s, which is not registered as a wire message; delete the stale line or restore the registration",
				goldenFile, typeName)
		}
	}
	return nil
}

// hasMethod reports whether typ (or *typ when pointer is set) has the named
// method in its method set.
func hasMethod(typ *types.Named, name string, pointer bool) bool {
	var t types.Type = typ
	if pointer {
		t = types.NewPointer(typ)
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, typ.Obj().Pkg(), name)
	_, ok := obj.(*types.Func)
	return ok
}

// readGoldenTypes parses the golden vector manifest into the set of message
// type names it pins. ok is false when the file is unreadable.
func readGoldenTypes(path string) (map[string]bool, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	typesSeen := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if ok && name != "" {
			typesSeen[name] = true
		}
	}
	if sc.Err() != nil {
		return nil, false
	}
	return typesSeen, true
}
