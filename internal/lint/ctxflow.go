package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context threading on request paths: a function that
// receives a context.Context must thread it, not mint a fresh root with
// context.Background()/context.TODO() or pass a nil context. A fresh root
// below the entry layer silently detaches the work from the caller's
// deadline — the gate's per-request timeout and the overlay's
// deadline-propagating routed calls both rely on the chain staying intact.
// Entry layers (main, StartMaintenance-style lifecycle starters, tests)
// have no incoming context parameter and are naturally exempt; the audited
// exceptions inside request paths carry //pgridvet:allow ctxflow.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions with a context.Context parameter must thread it, not call context.Background()/TODO() or pass nil contexts",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || HasAllow(fn.Doc, pass.Analyzer.Name) {
				continue
			}
			if !hasContextParam(pass.Info, fn) {
				continue
			}
			checkCtxBody(pass, fn.Body)
		}
	}
	return nil
}

func hasContextParam(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkCtxBody walks a function body, including function literals (they
// close over the parameter and inherit the obligation).
func checkCtxBody(pass *Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeFunc(pass.Info, call); callee != nil &&
			callee.Pkg() != nil && callee.Pkg().Path() == "context" {
			if name := callee.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(), "context.%s() inside a function that already receives a context.Context; thread the parameter (or annotate a deliberately detached lifetime)",
					name)
				return true
			}
		}
		// nil passed where the callee expects a context.Context.
		tv, ok := pass.Info.Types[call.Fun]
		if !ok {
			return true
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() && !sig.Variadic() {
				break
			}
			pi := i
			if pi >= sig.Params().Len() {
				pi = sig.Params().Len() - 1
			}
			if isContextType(sig.Params().At(pi).Type()) && isUntypedNil(pass.Info, arg) {
				pass.Reportf(arg.Pos(), "nil context passed to %s; thread the function's context.Context parameter", exprString(call.Fun))
			}
		}
		return true
	})
}
