package lint_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildPgridvet compiles cmd/pgridvet into a temp dir and returns the
// binary path.
func buildPgridvet(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "pgridvet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/pgridvet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pgridvet: %v\n%s", err, out)
	}
	return bin, root
}

// TestGoVetIntegration drives the real `go vet -vettool` protocol — the
// -V=full fingerprint handshake, per-unit vet.cfg analysis and .vetx fact
// files — over the wire-protocol and transport packages, which must be
// clean.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the tree under go vet")
	}
	bin, root := buildPgridvet(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/overlay/...", "./internal/network/...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=pgridvet failed: %v\n%s", err, out)
	}
}

// TestBrokenInvariantFails proves the acceptance criterion that a
// deliberately broken invariant fails the run with a message naming the
// missing leg: the wireconsistency fixture registers a message with no
// binary codec.
func TestBrokenInvariantFails(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles pgridvet")
	}
	bin, _ := buildPgridvet(t)
	fixture, err := filepath.Abs("testdata/src/wireconsistency")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-wireconsistency", "./...")
	cmd.Dir = fixture
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("want exit code 2 on broken invariant, got %v\n%s", err, out)
	}
	for _, leg := range []string{
		"has no AppendWire method",
		"has no UnmarshalWire method",
		"has no golden vector",
		"has no fuzz corpus seed",
	} {
		if !strings.Contains(string(out), leg) {
			t.Errorf("diagnostics do not name the missing leg %q:\n%s", leg, out)
		}
	}
}
