// Package lint implements pgridvet, the project's custom static-analysis
// suite. It machine-checks the hand-maintained invariants the stock linters
// cannot see: wire-protocol completeness (every registered message has a
// binary codec, a golden vector and fuzz corpus seeds), lock discipline (no
// blocking RPC while a mutex is held), atomic-field access, context
// threading on request paths, and errors.Is usage for exported sentinels.
//
// The package is deliberately dependency-free: it reimplements the small
// slice of the golang.org/x/tools go/analysis contract that pgridvet needs —
// an Analyzer/Pass API, object facts that flow between packages, a
// `go vet -vettool` unitchecker protocol driver (unitchecker.go) and a
// standalone `go list`-based loader (driver.go) — on top of go/ast,
// go/types and go/importer alone, so the module keeps its empty go.mod.
//
// # Suppressing a finding
//
// An audited exception is annotated where the diagnostic points (same line
// or the line above), naming the analyzer and justifying the exception:
//
//	//pgridvet:allow lockrpc the send is buffered and cannot block
//
// A whole function can be exempted from lockrpc with the same annotation in
// its doc comment. Annotations are per-analyzer; an unrelated analyzer still
// reports on the same line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate to the
// real framework if the module ever takes on dependencies.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable flags and
	// //pgridvet:allow annotations.
	Name string
	// Doc is a short description; its first line is the usage summary.
	Doc string
	// UsesFacts marks analyzers that exchange object facts across package
	// boundaries. Only these run on dependency-only (VetxOnly) packages.
	UsesFacts bool
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [pgridvet:%s]", d.Pos, d.Message, d.Analyzer)
}

// sortDiagnostics orders diagnostics by position for deterministic output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dir is the package's source directory, used by manifest checks
	// (golden vectors, fuzz corpora) that live next to the code.
	Dir string

	facts *factStore
	diags *[]Diagnostic
	// std marks the standard-library import paths in this unit's dependency
	// closure; analyzers use it to keep invariants scoped to project code.
	std map[string]bool
	// allow caches, per file, the source lines covered by a
	// //pgridvet:allow annotation for this analyzer.
	allow map[*ast.File]map[int]bool
}

// Reportf records a diagnostic at pos unless an //pgridvet:allow annotation
// for this analyzer covers the line (or annotates the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if file := p.fileAt(pos); file != nil && p.allowedLine(file, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ImportFact returns the fact recorded for obj by this analyzer, in this
// package or any dependency.
func (p *Pass) ImportFact(obj types.Object) (string, bool) {
	return p.facts.get(p.Analyzer.Name, ObjectID(obj))
}

// ExportFact records a fact about an object of the current package, making
// it visible to later passes over dependent packages.
func (p *Pass) ExportFact(obj types.Object, value string) {
	if obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	p.facts.set(p.Analyzer.Name, ObjectID(obj), value)
}

// isStdPkg reports whether pkg is a standard-library package.
func (p *Pass) isStdPkg(pkg *types.Package) bool {
	return pkg != nil && p.std[pkg.Path()]
}

func (p *Pass) fileAt(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func (p *Pass) allowedLine(file *ast.File, line int) bool {
	if p.allow == nil {
		p.allow = make(map[*ast.File]map[int]bool)
	}
	lines, ok := p.allow[file]
	if !ok {
		lines = make(map[int]bool)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !allowMatches(c.Text, p.Analyzer.Name) {
					continue
				}
				l := p.Fset.Position(c.Pos()).Line
				lines[l] = true
				lines[l+1] = true
			}
		}
		p.allow[file] = lines
	}
	return lines[line]
}

// allowMatches reports whether one comment's text is an //pgridvet:allow
// annotation for the named analyzer.
func allowMatches(comment, analyzer string) bool {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "pgridvet:allow")
	if !ok {
		return false
	}
	fields := strings.Fields(rest)
	return len(fields) > 0 && fields[0] == analyzer
}

// HasAllow reports whether a declaration's doc comment carries an
// //pgridvet:allow annotation for the named analyzer.
func HasAllow(doc *ast.CommentGroup, analyzer string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if allowMatches(c.Text, analyzer) {
			return true
		}
	}
	return false
}

// All is the full pgridvet suite in the order diagnostics are grouped.
func All() []*Analyzer {
	return []*Analyzer{WireConsistency, LockRPC, AtomicField, CtxFlow, SentErr}
}

// analyzePackage runs the given analyzers over one type-checked package,
// appending diagnostics and recording exported facts into facts. When
// factsOnly is set, only fact-exporting analyzers run and no diagnostics
// are collected (the unitchecker's VetxOnly mode for dependency packages).
func analyzePackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, dir string, facts *factStore, std map[string]bool, factsOnly bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	sink := &diags
	if factsOnly {
		sink = &[]Diagnostic{}
	}
	for _, a := range analyzers {
		if factsOnly && !a.UsesFacts {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Dir:      dir,
			facts:    facts,
			diags:    sink,
			std:      std,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}
