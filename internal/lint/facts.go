package lint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"os"
)

// Facts is the serialized fact format exchanged between package analyses:
// analyzer name → object ID → fact value. In unitchecker mode one Facts
// value is written per package (the .vetx file go vet caches and feeds to
// dependent packages); the standalone driver keeps a single in-memory store
// and analyzes packages in dependency order.
//
// Fact values are strings rather than typed payloads: the only current
// producer (lockrpc) records the human-readable reason a function may
// block, which doubles as the explanation in downstream diagnostics.
type Facts map[string]map[string]string

// factStore accumulates facts during a run: those imported from dependency
// packages and those exported by the package under analysis. Lookups see
// both, so intra-package fact use works the same as cross-package.
type factStore struct {
	imported Facts
	exported Facts
}

func newFactStore() *factStore {
	return &factStore{imported: Facts{}, exported: Facts{}}
}

func (s *factStore) get(analyzer, id string) (string, bool) {
	if id == "" {
		return "", false
	}
	if v, ok := s.exported[analyzer][id]; ok {
		return v, true
	}
	v, ok := s.imported[analyzer][id]
	return v, ok
}

func (s *factStore) set(analyzer, id, value string) {
	if id == "" {
		return
	}
	m := s.exported[analyzer]
	if m == nil {
		m = make(map[string]string)
		s.exported[analyzer] = m
	}
	m[id] = value
}

// merge folds src into the store's imported facts.
func (s *factStore) merge(src Facts) {
	for analyzer, objs := range src {
		m := s.imported[analyzer]
		if m == nil {
			m = make(map[string]string, len(objs))
			s.imported[analyzer] = m
		}
		for id, v := range objs {
			m[id] = v
		}
	}
}

// promoteExports moves the exported facts into the imported set, preparing
// the store for the next package in a standalone dependency-order run.
func (s *factStore) promoteExports() {
	s.merge(s.exported)
	s.exported = Facts{}
}

// readFactsFile loads one serialized Facts file. A missing or corrupt file
// degrades to no facts: the analyzers weaken rather than fail.
func readFactsFile(path string) Facts {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return nil
	}
	var f Facts
	if json.Unmarshal(data, &f) != nil {
		return nil
	}
	return f
}

// writeFactsFile serializes facts to path. An empty file is valid and must
// still be written: go vet expects every analysis run to produce its .vetx
// output.
func writeFactsFile(path string, f Facts) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("lint: encode facts: %w", err)
	}
	return os.WriteFile(path, data, 0o666)
}

// ObjectID names a package-level object (or method) stably across
// compilation units: "pkgpath.Name" for package-level declarations and
// "pkgpath.(*Recv).Name" / "pkgpath.(Recv).Name" for methods, including
// interface methods. The empty string means the object has no stable ID
// (builtins, locals).
func ObjectID(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			ptr := ""
			if p, ok := t.(*types.Pointer); ok {
				t, ptr = p.Elem(), "*"
			}
			if n, ok := t.(*types.Named); ok {
				return f.Pkg().Path() + ".(" + ptr + n.Obj().Name() + ")." + f.Name()
			}
			// Methods of unnamed receivers (embedded interface literals)
			// get no stable ID.
			return ""
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
