package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces the access discipline of fields documented as
// atomic: stats.Counter metrics, network.InFlightGauge call gauges, and
// raw sync/atomic values. Such a field may only be touched through its
// atomic accessors (Add/Value/Load/Store/...) or have its address taken;
// a raw read gets a torn or stale value and a raw assignment is a data
// race that -race only catches when a test happens to collide. Copying a
// struct that contains these fields is govet copylocks' job (the atomic
// types carry noCopy); this analyzer covers the direct field accesses
// copylocks cannot see.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields of atomic types (stats.Counter, network.InFlightGauge, sync/atomic values) may only be used via their accessor methods",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			field := selection.Obj()
			if !isAtomicType(field.Type()) {
				return true
			}
			if len(stack) < 2 {
				return true
			}
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				// x.f.Method(...): the accessor path. Field selections
				// through f (it has none on the known atomic types) would
				// land here too, which is fine — they could only reach
				// another atomic field checked at its own site.
				if _, isMethod := pass.Info.Uses[parent.Sel].(*types.Func); isMethod {
					return true
				}
			case *ast.UnaryExpr:
				if parent.Op == token.AND {
					return true // &x.f: passing the atomic by pointer
				}
			case *ast.AssignStmt:
				for _, lhs := range parent.Lhs {
					if lhs == n {
						pass.Reportf(sel.Pos(), "raw assignment to atomic field %s.%s; atomic fields have no store accessor by design — restructure so the field is only ever advanced via its methods",
							named(selection.Recv()), field.Name())
						return true
					}
				}
			}
			pass.Reportf(sel.Pos(), "raw read of atomic field %s.%s copies it non-atomically; use its accessor methods",
				named(selection.Recv()), field.Name())
			return true
		})
	}
	return nil
}

// isAtomicType reports whether t is one of the project's atomic value
// types: anything in sync/atomic, the lock-free stats.Counter, or the
// transports' InFlightGauge.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync/atomic":
		return true
	}
	return (obj.Name() == "Counter" && pkgPathMatches(obj.Pkg().Path(), "stats")) ||
		(obj.Name() == "InFlightGauge" && pkgPathMatches(obj.Pkg().Path(), "network"))
}

// named renders a receiver type compactly for diagnostics.
func named(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name()
		}
		return n.Obj().Name()
	}
	return t.String()
}
