package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"unicode"
)

// SentErr flags comparisons of errors against exported sentinel values
// (ErrNotFound, ErrUnreachable, ErrNoQuorum, ...) that use == or != instead
// of errors.Is. The transports and the overlay wrap sentinels liberally
// (fmt.Errorf("...: %w", ErrUnreachable), errConnDied wrapping
// ErrUnreachable), so an identity comparison silently stops matching the
// moment a call path adds a wrap — exactly the kind of regression a
// reviewer cannot see at the comparison site.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "error comparisons against exported Err* sentinels must use errors.Is, not == or !=",
	Run:  runSentErr,
}

func runSentErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				sx, sy := sentinelError(pass.Info, n.X), sentinelError(pass.Info, n.Y)
				if sx == nil && sy == nil {
					return true
				}
				// Sentinel-to-sentinel identity (rare, deliberate) and
				// comparisons against nil are not what this check is about.
				if sx != nil && sy != nil {
					return true
				}
				sent := sx
				other := n.Y
				if sent == nil {
					sent, other = sy, n.X
				}
				if isUntypedNil(pass.Info, other) {
					return true
				}
				verb := "errors.Is(err, " + sent.Name() + ")"
				if n.Op == token.NEQ {
					verb = "!" + verb
				}
				pass.Reportf(n.Pos(), "comparison with sentinel error %s uses %s; sentinels may arrive wrapped, use %s",
					sent.Name(), n.Op, verb)
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := pass.Info.Types[n.Tag]
				if !ok || !types.AssignableTo(tv.Type, errorType) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						if sent := sentinelError(pass.Info, expr); sent != nil {
							pass.Reportf(expr.Pos(), "switch case compares error to sentinel %s with ==; sentinels may arrive wrapped, use errors.Is in an if/else chain",
								sent.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelError resolves e to an exported package-level error variable
// following the ErrXxx naming convention, or nil.
func sentinelError(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package-level only: a local `errDone := errors.New(...)` used as a
	// loop-break token is compared by identity legitimately.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	name := v.Name()
	if len(name) < 4 || name[:3] != "Err" || !unicode.IsUpper(rune(name[3])) {
		return nil
	}
	if !types.AssignableTo(v.Type(), errorType) {
		return nil
	}
	return v
}
