package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func TestCanonical(t *testing.T) {
	a := String("peer-00042")
	b := String(string([]byte("peer-00042"))) // force a distinct allocation
	if a != b {
		t.Fatalf("contents differ: %q vs %q", a, b)
	}
	ha := (*[2]uintptr)(unsafe.Pointer(&a))[0]
	hb := (*[2]uintptr)(unsafe.Pointer(&b))[0]
	if ha != hb {
		t.Fatalf("interned copies do not share storage")
	}
}

func TestEmpty(t *testing.T) {
	if String("") != "" {
		t.Fatal("empty string must intern to empty")
	}
}

func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := String(fmt.Sprintf("addr-%03d", i%100))
				if s != fmt.Sprintf("addr-%03d", i%100) {
					t.Errorf("wrong canonical value %q", s)
					return
				}
			}
		}()
	}
	wg.Wait()
}
