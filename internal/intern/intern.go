// Package intern provides a process-wide string interning table. The
// overlay's routing state stores the same small set of strings — peer
// addresses and partition paths — in thousands of places: every peer's
// routing table holds refs to a few dozen neighbours, and in a 10k-peer
// in-process simulation those copies (each built by its own
// strings.Builder or decode) add up to real heap. Interning collapses
// every copy of the same content onto one canonical allocation.
//
// The table only ever grows. That is the right trade-off for its intended
// inputs — addresses and paths are drawn from a bounded population — but
// it means callers must not feed it unbounded user data (key values,
// payload bodies).
package intern

import "sync"

// shards spreads the table across independently locked maps so concurrent
// maintenance loops on many peers do not serialise on one mutex.
const shards = 16

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

var table [shards]shard

func init() {
	for i := range table {
		table[i].m = make(map[string]string)
	}
}

// fnv1a is a tiny inline hash for shard selection (hash/maphash would
// force a heap escape of the string header here).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// String returns a canonical copy of s: every call with equal content
// returns the identical string value, so duplicates share one allocation.
func String(s string) string {
	if len(s) == 0 {
		return ""
	}
	sh := &table[fnv1a(s)%shards]
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[s]; ok {
		return v
	}
	sh.m[s] = s
	return s
}

// Len reports how many distinct strings the table holds (for tests and
// footprint accounting).
func Len() int {
	n := 0
	for i := range table {
		table[i].mu.RLock()
		n += len(table[i].m)
		table[i].mu.RUnlock()
	}
	return n
}
