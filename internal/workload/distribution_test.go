package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pgrid/internal/keyspace"

	"pgrid/internal/testutil"
)

func sampleMany(d Distribution, n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

func TestAllDistributionsInUnitInterval(t *testing.T) {
	for _, d := range PaperSet() {
		xs := sampleMany(d, 5000, 1)
		for _, x := range xs {
			if x < 0 || x >= 1 || math.IsNaN(x) {
				t.Fatalf("%s produced out-of-range sample %v", d.Name(), x)
			}
		}
	}
}

func TestUniformMoments(t *testing.T) {
	xs := sampleMany(Uniform{}, 50000, 2)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v", mean)
	}
}

func TestNormalConcentration(t *testing.T) {
	n := NewNormal()
	xs := sampleMany(n, 50000, 3)
	within := 0
	for _, x := range xs {
		if math.Abs(x-0.5) < 3*0.051 {
			within++
		}
	}
	frac := float64(within) / float64(len(xs))
	if frac < 0.98 {
		t.Errorf("normal not concentrated: only %v within 3 sigma", frac)
	}
}

func TestParetoSkewOrdering(t *testing.T) {
	// Smaller shape k means a heavier tail: the fraction of mass in the top
	// decile of the unit interval should decrease with k after folding.
	skew := func(k float64) float64 {
		xs := sampleMany(NewPareto(k), 30000, 4)
		top := 0
		for _, x := range xs {
			if x > 0.9 {
				top++
			}
		}
		return float64(top) / float64(len(xs))
	}
	s05, s10, s15 := skew(0.5), skew(1.0), skew(1.5)
	if !(s05 > s10 && s10 > s15) {
		t.Errorf("tail mass not ordered by shape: %v %v %v", s05, s10, s15)
	}
}

func TestParetoNames(t *testing.T) {
	if NewPareto(0.5).Name() != "P0.5" || NewPareto(1.0).Name() != "P1.0" || NewPareto(1.5).Name() != "P1.5" {
		t.Error("pareto names wrong")
	}
}

func TestZipfRankDistribution(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := rand.New(rand.NewSource(5))
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Rank(r)]++
	}
	// Rank 0 must dominate rank 9 by roughly 10x for exponent 1.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("zipf ratio rank0/rank9 = %v, want ≈10", ratio)
	}
	// Monotone non-increasing on average across deciles.
	prev := math.MaxFloat64
	for d := 0; d < 10; d++ {
		sum := 0
		for i := d * 10; i < (d+1)*10; i++ {
			sum += counts[i]
		}
		if float64(sum) > prev*1.1 {
			t.Errorf("zipf decile %d not decreasing: %d > %v", d, sum, prev)
		}
		prev = float64(sum)
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1.0) // clamps to 1
	r := rand.New(rand.NewSource(1))
	if z.Rank(r) != 0 {
		t.Error("single-rank zipf should always return 0")
	}
	if z.Sample(r) != 0.5 {
		t.Error("single-rank zipf sample should be 0.5")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"U", "P0.5", "P1.0", "P1", "P1.5", "N", "A"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestPaperSetLabels(t *testing.T) {
	want := []string{"U", "P0.5", "P1.0", "P1.5", "N", "A"}
	set := PaperSet()
	if len(set) != len(want) {
		t.Fatalf("PaperSet size = %d", len(set))
	}
	for i, d := range set {
		if d.Name() != want[i] {
			t.Errorf("PaperSet[%d] = %s, want %s", i, d.Name(), want[i])
		}
	}
}

func TestKeysAndAssignKeys(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ks := Keys(Uniform{}, 100, 16, r)
	if len(ks) != 100 {
		t.Fatalf("Keys len = %d", len(ks))
	}
	for _, k := range ks {
		if k.Len != 16 {
			t.Fatalf("key depth = %d", k.Len)
		}
	}
	sets := AssignKeys(NewNormal(), 10, 7, 16, r)
	if len(sets) != 10 {
		t.Fatalf("AssignKeys peers = %d", len(sets))
	}
	for _, s := range sets {
		if len(s) != 7 {
			t.Fatalf("AssignKeys keys per peer = %d", len(s))
		}
	}
}

func TestDistributionDeterminism(t *testing.T) {
	for _, d := range PaperSet() {
		a := sampleMany(d, 100, 77)
		b := sampleMany(d, 100, 77)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic at %d", d.Name(), i)
			}
		}
	}
}

func TestSampleAlwaysValidKeyProperty(t *testing.T) {
	d := NewPareto(0.5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := d.Sample(r)
		k := keyspace.MustFromFloat(x, 32)
		return k.Len == 32
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 500, 509)); err != nil {
		t.Error(err)
	}
}
