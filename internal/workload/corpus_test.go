package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCorpusVocabulary(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.VocabularySize = 500
	c := NewTextCorpus(cfg)
	v := c.Vocabulary()
	if len(v) != 500 {
		t.Fatalf("vocabulary size = %d", len(v))
	}
	seen := make(map[string]bool)
	for _, w := range v {
		if w == "" || seen[w] {
			t.Fatalf("empty or duplicate term %q", w)
		}
		seen[w] = true
		if strings.ToLower(w) != w {
			t.Fatalf("term %q not lower case", w)
		}
	}
}

func TestCorpusDeterministicVocabulary(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.VocabularySize = 200
	a := NewTextCorpus(cfg).Vocabulary()
	b := NewTextCorpus(cfg).Vocabulary()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vocabulary not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestCorpusDocumentsAndPostings(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.VocabularySize = 300
	cfg.TermsPerDocument = 10
	c := NewTextCorpus(cfg)
	r := rand.New(rand.NewSource(11))
	docs := c.Documents(50, r)
	if len(docs) != 50 {
		t.Fatalf("docs = %d", len(docs))
	}
	for _, d := range docs {
		if len(d.Terms) == 0 {
			t.Fatalf("document %s has no terms", d.ID)
		}
		dup := make(map[string]bool)
		for _, term := range d.Terms {
			if dup[term] {
				t.Fatalf("document %s has duplicate term %q", d.ID, term)
			}
			dup[term] = true
		}
	}
	posts := c.Postings(docs)
	if len(posts) == 0 {
		t.Fatal("no postings")
	}
	for _, p := range posts {
		if !p.Key.Equal(c.TermKey(p.Term)) {
			t.Fatalf("posting key mismatch for %q", p.Term)
		}
		if p.Doc == "" {
			t.Fatal("posting without document id")
		}
	}
}

func TestCorpusSampleSkewed(t *testing.T) {
	// The text workload must be clustered: many samples map to the same key
	// value (frequent terms), unlike the uniform distribution.
	c := NewTextCorpus(DefaultCorpusConfig())
	r := rand.New(rand.NewSource(3))
	seen := make(map[float64]int)
	n := 5000
	for i := 0; i < n; i++ {
		seen[c.Sample(r)]++
	}
	if len(seen) >= n {
		t.Errorf("text workload produced %d distinct values out of %d samples; expected clustering", len(seen), n)
	}
	max := 0
	for _, cnt := range seen {
		if cnt > max {
			max = cnt
		}
	}
	if max < 20 {
		t.Errorf("most frequent key only appears %d times; expected heavy head", max)
	}
}

func TestCorpusConfigDefaultsApplied(t *testing.T) {
	c := NewTextCorpus(CorpusConfig{})
	if len(c.Vocabulary()) == 0 {
		t.Fatal("defaults not applied")
	}
	if c.Name() != "A" {
		t.Error("text corpus label should be A")
	}
	if c.Term(0) == "" || c.Term(len(c.Vocabulary())+3) == "" {
		t.Error("Term should wrap around")
	}
}
