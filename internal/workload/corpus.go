package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"pgrid/internal/keyspace"
)

// This file provides the synthetic text-retrieval workload standing in for
// the Alvis corpus used in the paper (label "A" in Figure 6 and the key set
// of the PlanetLab experiments). The paper's corpus is not available, so we
// generate documents whose term occurrences follow a Zipf law over a
// synthetic vocabulary; index keys are order-preserving encodings of the
// terms, which produces the clustered, highly skewed key distribution the
// construction algorithm has to cope with. See docs/ARCHITECTURE.md.

// CorpusConfig parameterises the synthetic corpus.
type CorpusConfig struct {
	// VocabularySize is the number of distinct terms.
	VocabularySize int
	// ZipfExponent controls the term-frequency skew (≈1 for natural text).
	ZipfExponent float64
	// TermsPerDocument is the average number of indexed terms per document.
	TermsPerDocument int
	// KeyDepth is the bit depth of generated keys.
	KeyDepth int
	// Seed makes vocabulary generation deterministic.
	Seed int64
}

// DefaultCorpusConfig returns a corpus comparable in skew to natural text:
// 10k terms, Zipf exponent 1.05, 20 terms per document.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		VocabularySize:   10000,
		ZipfExponent:     1.05,
		TermsPerDocument: 20,
		KeyDepth:         keyspace.DefaultDepth,
		Seed:             20050831, // VLDB 2005 conference date
	}
}

// Document is a synthetic document: an identifier plus its indexed terms.
type Document struct {
	ID    string
	Terms []string
}

// Posting associates an index term (and its key) with a document.
type Posting struct {
	Term string
	Key  keyspace.Key
	Doc  string
}

// TextCorpus generates documents and index postings with a Zipf term
// distribution. It implements Distribution so it can be used wherever the
// paper uses the Alvis key set.
type TextCorpus struct {
	cfg   CorpusConfig
	vocab []string
	zipf  *Zipf
}

// NewTextCorpus builds a synthetic corpus from the configuration.
func NewTextCorpus(cfg CorpusConfig) *TextCorpus {
	if cfg.VocabularySize <= 0 {
		cfg.VocabularySize = 1000
	}
	if cfg.TermsPerDocument <= 0 {
		cfg.TermsPerDocument = 10
	}
	if cfg.KeyDepth <= 0 {
		cfg.KeyDepth = keyspace.DefaultDepth
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 1.05
	}
	c := &TextCorpus{
		cfg:  cfg,
		zipf: NewZipf(cfg.VocabularySize, cfg.ZipfExponent),
	}
	c.vocab = makeVocabulary(cfg.VocabularySize, cfg.Seed)
	return c
}

// Name implements Distribution (the paper's label for the text workload).
func (c *TextCorpus) Name() string { return "A" }

// Sample implements Distribution: it draws a term according to the Zipf law
// and returns the float value of its order-preserving key.
func (c *TextCorpus) Sample(r *rand.Rand) float64 {
	term := c.vocab[c.zipf.Rank(r)]
	return keyspace.MustEncodeString(term, c.cfg.KeyDepth).Float()
}

// Vocabulary returns the generated term list (rank order: most frequent
// first).
func (c *TextCorpus) Vocabulary() []string { return c.vocab }

// Term returns the term at the given frequency rank.
func (c *TextCorpus) Term(rank int) string { return c.vocab[rank%len(c.vocab)] }

// TermKey returns the order-preserving key of a term.
func (c *TextCorpus) TermKey(term string) keyspace.Key {
	return keyspace.MustEncodeString(term, c.cfg.KeyDepth)
}

// Documents generates n synthetic documents using the supplied random
// source.
func (c *TextCorpus) Documents(n int, r *rand.Rand) []Document {
	docs := make([]Document, n)
	for i := range docs {
		nt := c.cfg.TermsPerDocument/2 + r.Intn(c.cfg.TermsPerDocument+1)
		seen := make(map[string]bool, nt)
		terms := make([]string, 0, nt)
		for len(terms) < nt {
			term := c.vocab[c.zipf.Rank(r)]
			if !seen[term] {
				seen[term] = true
				terms = append(terms, term)
			}
		}
		docs[i] = Document{ID: fmt.Sprintf("doc-%06d", i), Terms: terms}
	}
	return docs
}

// Postings converts documents to index postings (one per term occurrence,
// deduplicated per document), i.e. the distributed inverted file entries the
// overlay will index.
func (c *TextCorpus) Postings(docs []Document) []Posting {
	var out []Posting
	for _, d := range docs {
		for _, t := range d.Terms {
			out = append(out, Posting{Term: t, Key: c.TermKey(t), Doc: d.ID})
		}
	}
	return out
}

// makeVocabulary builds a deterministic vocabulary of pronounceable
// lower-case terms. Terms are generated as consonant-vowel syllable chains
// so their encodings spread over the key space while remaining clustered by
// shared prefixes, like a natural-language vocabulary.
func makeVocabulary(n int, seed int64) []string {
	consonants := "bcdfghjklmnpqrstvwz"
	vowels := "aeiou"
	r := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		var b strings.Builder
		syllables := 2 + r.Intn(3)
		for s := 0; s < syllables; s++ {
			b.WriteByte(consonants[r.Intn(len(consonants))])
			b.WriteByte(vowels[r.Intn(len(vowels))])
		}
		w := b.String()
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
