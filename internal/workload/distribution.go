// Package workload generates the data-key workloads used throughout the
// paper's evaluation: a uniform distribution, Pareto distributions with
// shape k = 0.5, 1.0 and 1.5, a Normal distribution with mean 0.5 and
// standard deviation 0.051, and a synthetic text-retrieval workload standing
// in for the Alvis corpus (denoted U, P0.5, P1.0, P1.5, N and A in
// Figure 6). All generators are deterministic given a seed, so experiments
// are reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pgrid/internal/keyspace"
)

// Distribution produces application values in [0,1) whose order-preserving
// keys exhibit the skew of the named workload.
type Distribution interface {
	// Name returns the short label used in the paper's figures (U, P0.5, …).
	Name() string
	// Sample draws one value in [0,1) using the supplied random source.
	Sample(r *rand.Rand) float64
}

// Uniform is the uniform distribution on [0,1) (label "U").
type Uniform struct{}

// Name implements Distribution.
func (Uniform) Name() string { return "U" }

// Sample implements Distribution.
func (Uniform) Sample(r *rand.Rand) float64 { return r.Float64() }

// Pareto is the paper's Pareto distribution with PDF k*xm^k / x^(k+1),
// shape K in {0.5, 1, 1.5} and scale xm = 0.19029, truncated to the unit
// interval [xm, 1) so the samples are valid keys (Figure 6 labels P0.5,
// P1.0, P1.5). The mass concentrates just above xm and thins out towards 1,
// more sharply for larger K — an extremely skewed key distribution.
type Pareto struct {
	// K is the shape parameter.
	K float64
	// Xm is the scale (minimum) parameter.
	Xm float64
}

// NewPareto returns a Pareto distribution with the paper's scale parameter.
func NewPareto(k float64) Pareto { return Pareto{K: k, Xm: 0.19029} }

// Name implements Distribution.
func (p Pareto) Name() string { return fmt.Sprintf("P%.1f", p.K) }

// Sample implements Distribution using exact inverse-CDF sampling of the
// truncated Pareto: F(x) = (1 - (xm/x)^k) / (1 - xm^k) for x in [xm, 1).
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	norm := 1 - math.Pow(p.Xm, p.K)
	x := p.Xm / math.Pow(1-u*norm, 1/p.K)
	if x < 0 {
		x = 0
	}
	if x >= 1 {
		x = math.Nextafter(1, 0)
	}
	return x
}

// Normal is a truncated Normal distribution on [0,1) (label "N"). The paper
// uses mean 0.5 and standard deviation 0.051, an extremely concentrated —
// hence extremely skewed in key-space terms — distribution.
type Normal struct {
	Mean, StdDev float64
}

// NewNormal returns the paper's Normal(0.5, 0.051) distribution.
func NewNormal() Normal { return Normal{Mean: 0.5, StdDev: 0.051} }

// Name implements Distribution.
func (Normal) Name() string { return "N" }

// Sample implements Distribution.
func (n Normal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		v := r.NormFloat64()*n.StdDev + n.Mean
		if v >= 0 && v < 1 {
			return v
		}
	}
	return n.Mean
}

// Zipf produces values clustered according to a Zipf law over a finite
// vocabulary, modelling term frequencies in text retrieval. Rank i (0-based)
// is mapped to the value (i+0.5)/V so that frequent terms concentrate mass
// on few distinct keys.
type Zipf struct {
	// V is the vocabulary size.
	V int
	// S is the Zipf exponent (typically near 1).
	S   float64
	cdf []float64
}

// NewZipf builds a Zipf distribution over v ranks with exponent s.
func NewZipf(v int, s float64) *Zipf {
	if v < 1 {
		v = 1
	}
	z := &Zipf{V: v, S: s, cdf: make([]float64, v)}
	sum := 0.0
	for i := 0; i < v; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Name implements Distribution.
func (z *Zipf) Name() string { return fmt.Sprintf("Z%d", z.V) }

// Sample implements Distribution.
func (z *Zipf) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return (float64(lo) + 0.5) / float64(z.V)
}

// Rank draws a Zipf-distributed rank in [0, V).
func (z *Zipf) Rank(r *rand.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ByName returns the distribution with the given figure label. Recognised
// names are U, P0.5, P1.0, P1.5, N and A (the synthetic Alvis text
// workload).
func ByName(name string) (Distribution, error) {
	switch name {
	case "U":
		return Uniform{}, nil
	case "P0.5":
		return NewPareto(0.5), nil
	case "P1.0", "P1":
		return NewPareto(1.0), nil
	case "P1.5":
		return NewPareto(1.5), nil
	case "N":
		return NewNormal(), nil
	case "A":
		return NewTextCorpus(DefaultCorpusConfig()), nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", name)
	}
}

// PaperSet returns the six distributions of Figure 6 in presentation order.
func PaperSet() []Distribution {
	return []Distribution{
		Uniform{},
		NewPareto(0.5),
		NewPareto(1.0),
		NewPareto(1.5),
		NewNormal(),
		NewTextCorpus(DefaultCorpusConfig()),
	}
}

// Keys draws n keys of the given depth from a distribution.
func Keys(d Distribution, n, depth int, r *rand.Rand) keyspace.Keys {
	out := make(keyspace.Keys, n)
	for i := range out {
		out[i] = keyspace.MustFromFloat(d.Sample(r), depth)
	}
	return out
}

// AssignKeys assigns keysPerPeer keys from the distribution to each of n
// peers, returning one key set per peer. This mirrors the experimental setup
// of Section 4.4 and 5.1 where every peer initially holds a small sample of
// the global key set.
func AssignKeys(d Distribution, n, keysPerPeer, depth int, r *rand.Rand) []keyspace.Keys {
	out := make([]keyspace.Keys, n)
	for i := range out {
		out[i] = Keys(d, keysPerPeer, depth, r)
	}
	return out
}
