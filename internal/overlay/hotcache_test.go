package overlay

import (
	"context"
	"sync"
	"testing"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// fakeClock is a hand-advanced time source shared by every peer of a test,
// so cache TTLs, rate windows and recruit leases run on simulated time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// cacheCluster wires the two-partition topology with the answer cache
// enabled at the origin: origin on "0" forwards into partition "1" held by
// two replicas, which is the smallest shape where a forwarding peer caches.
func cacheCluster(t *testing.T, seed int64) (origin, r1, r2 *Peer, clk *fakeClock) {
	t.Helper()
	sim := network.NewSim(network.SimConfig{Seed: seed})
	cfg := Config{MaxKeys: 100, MinReplicas: 1, WriteQuorum: 2, Seed: seed, QueryCacheSize: 16}
	origin = New(cfg, sim.Endpoint("origin"))
	r1 = New(cfg, sim.Endpoint("r1"))
	r2 = New(cfg, sim.Endpoint("r2"))
	origin.Table().SetPath("0")
	r1.Table().SetPath("1")
	r2.Table().SetPath("1")
	origin.Table().Add(0, refFor(r1))
	origin.Table().Add(0, refFor(r2))
	r1.Table().Add(0, refFor(origin))
	r2.Table().Add(0, refFor(origin))
	r1.AddReplica(r2.Addr())
	r2.AddReplica(r1.Addr())
	clk = newFakeClock()
	for _, p := range []*Peer{origin, r1, r2} {
		p.SetTimeSource(clk.now)
	}
	return origin, r1, r2, clk
}

func hasValue(items []replication.Item, v string) bool {
	for _, it := range items {
		if it.Value == v {
			return true
		}
	}
	return false
}

// TestQueryCacheHitAfterFill: the second lookup for a key is served from
// the origin's cache (revalidated by a clock probe), not routed again.
func TestQueryCacheHitAfterFill(t *testing.T) {
	origin, _, _, _ := cacheCluster(t, 90)
	ctx := context.Background()
	key := keyspace.MustFromString("1100")
	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "v1"}); err != nil {
		t.Fatalf("insert: %v", err)
	}

	first, err := origin.Query(ctx, key)
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	if first.Cached {
		t.Error("first query reported cached before any fill")
	}
	second, err := origin.Query(ctx, key)
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	if !second.Cached {
		t.Error("second query not served from cache")
	}
	if !hasValue(second.Items, "v1") {
		t.Errorf("cached items = %v, want v1", second.Items)
	}
	if hits := origin.MetricsSnapshot().CacheHits; hits < 1 {
		t.Errorf("CacheHits = %v, want >= 1", hits)
	}
}

// TestQueryCacheInvalidatedByWrite is the read-your-writes regression: any
// write to the partition advances its logical clock, so the next cached
// lookup fails revalidation and routes to the fresh answer — a stale value
// is never served, no matter how recently it was cached.
func TestQueryCacheInvalidatedByWrite(t *testing.T) {
	origin, _, _, _ := cacheCluster(t, 91)
	ctx := context.Background()
	key := keyspace.MustFromString("1100")
	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "v1"}); err != nil {
		t.Fatalf("insert v1: %v", err)
	}
	for i := 0; i < 2; i++ { // fill, then hit
		if _, err := origin.Query(ctx, key); err != nil {
			t.Fatalf("warm query %d: %v", i, err)
		}
	}

	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "v2"}); err != nil {
		t.Fatalf("insert v2: %v", err)
	}
	res, err := origin.Query(ctx, key)
	if err != nil {
		t.Fatalf("query after write: %v", err)
	}
	if res.Cached {
		t.Error("query after write served from cache: stale token accepted")
	}
	if !hasValue(res.Items, "v2") {
		t.Errorf("read-your-writes violated: items = %v, want v2", res.Items)
	}

	// The fresh answer re-fills; a delete must invalidate it again.
	if res, err = origin.Query(ctx, key); err != nil || !res.Cached {
		t.Fatalf("re-fill query: cached=%v err=%v", res.Cached, err)
	}
	if _, err := origin.Delete(ctx, key, "v1"); err != nil {
		t.Fatalf("delete v1: %v", err)
	}
	res, err = origin.Query(ctx, key)
	if err != nil {
		t.Fatalf("query after delete: %v", err)
	}
	if res.Cached {
		t.Error("query after delete served from cache")
	}
	if hasValue(res.Items, "v1") {
		t.Errorf("deleted value still served: %v", res.Items)
	}
}

// TestQueryCacheConsistentBypass: ?consistent reads never touch the cache,
// even when it holds a perfectly fresh entry.
func TestQueryCacheConsistentBypass(t *testing.T) {
	origin, _, _, _ := cacheCluster(t, 92)
	ctx := context.Background()
	key := keyspace.MustFromString("1010")
	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "v"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := origin.Query(ctx, key); err != nil {
			t.Fatalf("warm query: %v", err)
		}
	}
	res, err := origin.QueryWith(ctx, key, QueryOptions{Consistent: true})
	if err != nil {
		t.Fatalf("consistent query: %v", err)
	}
	if res.Cached {
		t.Error("consistent query served from cache")
	}
}

// TestQueryCacheEntryExpires: entries older than the TTL are not served
// even when the partition never changed.
func TestQueryCacheEntryExpires(t *testing.T) {
	origin, _, _, clk := cacheCluster(t, 93)
	ctx := context.Background()
	key := keyspace.MustFromString("1110")
	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "v"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := origin.Query(ctx, key); err != nil {
		t.Fatalf("fill query: %v", err)
	}
	clk.advance(DefaultQueryCacheTTL + time.Second)
	res, err := origin.Query(ctx, key)
	if err != nil {
		t.Fatalf("query after expiry: %v", err)
	}
	if res.Cached {
		t.Error("expired entry served from cache")
	}
}

// TestHotReplicationLifecycle drives the widening state machine on a
// simulated clock: sustained local reads recruit a routing neighbour as a
// shadow replica, the shadow serves reads for the partition, any write
// kills it via the clock probe, and a subsided rate releases the recruits.
func TestHotReplicationLifecycle(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 94})
	cfg := Config{
		MaxKeys: 100, MinReplicas: 1, WriteQuorum: 1, Seed: 94,
		HotReadThreshold: 5, HotMaxExtra: 2, HotReplicaLease: 5 * time.Second,
	}
	origin := New(cfg, sim.Endpoint("origin"))
	hot := New(cfg, sim.Endpoint("hot"))
	rep := New(cfg, sim.Endpoint("rep"))
	origin.Table().SetPath("0")
	hot.Table().SetPath("1")
	rep.Table().SetPath("1")
	origin.Table().Add(0, refFor(hot))
	hot.Table().Add(0, refFor(origin))
	rep.Table().Add(0, refFor(origin))
	hot.AddReplica(rep.Addr())
	rep.AddReplica(hot.Addr())
	clk := newFakeClock()
	for _, p := range []*Peer{origin, hot, rep} {
		p.SetTimeSource(clk.now)
	}
	ctx := context.Background()
	key := keyspace.MustFromString("1100")
	if _, err := hot.Insert(ctx, replication.Item{Key: key, Value: "v1"}); err != nil {
		t.Fatalf("insert: %v", err)
	}

	// Sustained local reads push the partition's rate over the threshold.
	for i := 0; i < 20; i++ {
		if _, err := hot.Query(ctx, key); err != nil {
			t.Fatalf("hot read %d: %v", i, err)
		}
	}
	tick := hot.MaintainTick(ctx, MaintenanceOptions{})
	if tick.RecruitsAdded < 1 {
		t.Fatalf("RecruitsAdded = %d, want >= 1", tick.RecruitsAdded)
	}
	// The replica of the same partition must never be recruited; the only
	// eligible routing neighbour is the origin.
	if got := hot.HotRecruits(); len(got) != 1 || got[0] != origin.Addr() {
		t.Fatalf("HotRecruits = %v, want [origin]", got)
	}
	if !origin.ShadowActive() {
		t.Fatal("origin did not install the shadow partition")
	}

	// The shadow answers reads for the partition without routing.
	res, err := origin.Query(ctx, key)
	if err != nil {
		t.Fatalf("shadow query: %v", err)
	}
	if res.Hops != 0 || res.Responsible != hot.Addr() {
		t.Errorf("shadow query hops=%d responsible=%s, want 0 hops attributed to hot", res.Hops, res.Responsible)
	}
	if !hasValue(res.Items, "v1") {
		t.Errorf("shadow served %v, want v1", res.Items)
	}

	// A write advances the partition clock: the shadow's next probe fails,
	// the shadow is dropped, and the read routes to the fresh answer.
	if _, err := hot.Insert(ctx, replication.Item{Key: key, Value: "v2"}); err != nil {
		t.Fatalf("insert v2: %v", err)
	}
	res, err = origin.Query(ctx, key)
	if err != nil {
		t.Fatalf("query after write: %v", err)
	}
	if !hasValue(res.Items, "v2") {
		t.Errorf("read-your-writes violated through shadow: %v", res.Items)
	}
	if origin.ShadowActive() {
		t.Error("stale shadow survived a failed clock probe")
	}

	// Two idle rate windows later the load has subsided: the hot peer
	// dismisses its recruits.
	clk.advance(3 * time.Second)
	tick = hot.MaintainTick(ctx, MaintenanceOptions{})
	if tick.RecruitsReleased < 1 {
		t.Errorf("RecruitsReleased = %d, want >= 1", tick.RecruitsReleased)
	}
	if got := hot.HotRecruits(); len(got) != 0 {
		t.Errorf("HotRecruits after release = %v, want none", got)
	}
	snap := hot.MetricsSnapshot()
	if snap.WideningRecruits < 1 || snap.WideningReleases < 1 {
		t.Errorf("widening counters = %+v, want both >= 1", snap)
	}
}

// TestHotReplicationLeaseExpiry: a recruit that never hears the release
// stops serving once its lease lapses.
func TestHotReplicationLeaseExpiry(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 95})
	clk := newFakeClock()
	p := New(Config{MaxKeys: 100, MinReplicas: 1, Seed: 95}, sim.Endpoint("p"))
	p.Table().SetPath("0")
	p.SetTimeSource(clk.now)

	resp := p.handleRecruit(RecruitRequest{
		From: "remote", Path: "1", Clock: 7, Lease: 2 * time.Second,
		Items: []replication.Item{{Key: keyspace.MustFromString("1100"), Value: "v"}},
	})
	if !resp.Accepted {
		t.Fatal("recruit rejected")
	}
	if !p.ShadowActive() {
		t.Fatal("shadow not active after recruit")
	}
	clk.advance(3 * time.Second)
	if p.ShadowActive() {
		t.Error("shadow outlived its lease")
	}
}

// TestCooperativeTombstonePrune: a GC compaction pushes the pruned batch to
// the replicas, which drop the same tombstones immediately instead of
// re-learning the prune on their own horizon.
func TestCooperativeTombstonePrune(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 96})
	cfg := Config{MaxKeys: 100, MinReplicas: 1, WriteQuorum: 2, Seed: 96,
		TombstoneGCVersions: 2}
	a := New(cfg, sim.Endpoint("a"))
	b := New(cfg, sim.Endpoint("b"))
	a.Table().SetPath("")
	b.Table().SetPath("")
	a.AddReplica(b.Addr())
	b.AddReplica(a.Addr())
	ctx := context.Background()
	key := keyspace.MustFromString("1100")
	if _, err := a.Insert(ctx, replication.Item{Key: key, Value: "v"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := a.Delete(ctx, key, "v"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if got := b.Store().Stats().Tombstones; got != 1 {
		t.Fatalf("replica tombstones = %d, want 1 before prune", got)
	}
	// Age the tombstone past the version horizon on a only; a's compaction
	// must carry the prune to b cooperatively.
	for i := 0; i < 3; i++ {
		if _, err := a.Insert(ctx, replication.Item{Key: keyspace.MustFromString("0100"), Value: "filler"}); err != nil {
			t.Fatalf("filler insert: %v", err)
		}
	}
	tick := a.MaintainTick(ctx, MaintenanceOptions{})
	if tick.TombstonesPruned < 1 {
		t.Fatalf("TombstonesPruned = %d, want >= 1", tick.TombstonesPruned)
	}
	if got := b.Store().Stats().Tombstones; got != 0 {
		t.Errorf("replica tombstones = %d, want 0 after cooperative prune", got)
	}
}
