package overlay

import (
	"context"
	"errors"
	"sync"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// This file implements the live mutation subsystem: routed Insert and Delete
// operations on the constructed overlay. A mutation travels the overlay like
// an exact-match query — raced over up to Alpha references per hop — until it
// reaches a peer responsible for the key. That peer applies the write
// locally, fans it out to its whole replica set concurrently (bounded by
// Fanout), and acknowledges with the number of replicas that applied it. The
// originator compares that count against the configured WriteQuorum.
//
// Deletes are tombstoned at every replica that applies them (see
// replication.Store), so the anti-entropy maintenance loop spreads deletes
// exactly like inserts instead of resurrecting removed items.

// ErrNoQuorum is returned by Insert and Delete when the responsible peer was
// reached but fewer replicas than the configured WriteQuorum acknowledged the
// mutation. The mutation is still applied at the replicas that did
// acknowledge, and anti-entropy will spread it further; the error tells the
// caller the durability target was missed.
var ErrNoQuorum = errors.New("overlay: write quorum not reached")

// MutateResult is the outcome of a routed Insert or Delete.
type MutateResult struct {
	// Acks is the number of replicas (including the responsible peer) that
	// applied the mutation.
	Acks int
	// Replicas is the size of the replica set the responsible peer wrote to,
	// including itself.
	Replicas int
	// Hops is the number of routing hops used to reach the responsible
	// partition (0 if the originating peer was responsible).
	Hops int
	// Responsible is the peer that coordinated the write.
	Responsible network.Addr
}

// SetWriteQuorum adjusts the write quorum at run time. Non-positive values
// keep the current one.
func (p *Peer) SetWriteQuorum(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > 0 {
		p.cfg.WriteQuorum = n
	}
}

// writeQuorum returns the current write quorum.
func (p *Peer) writeQuorum() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.WriteQuorum
}

// Insert routes a live write for the item to the responsible partition and
// waits for the replica fan-out's quorum-ack. It returns ErrNoQuorum when the
// write reached the responsible peer but fewer than WriteQuorum replicas
// acknowledged it, and errNotResponsible-wrapped failure when no route
// exists.
func (p *Peer) Insert(ctx context.Context, it replication.Item) (MutateResult, error) {
	resp, err := p.resolveInsert(ctx, InsertRequest{Item: it, ID: p.mutationID(), TTL: p.cfg.QueryTTL})
	if err != nil {
		return MutateResult{}, err
	}
	return p.finishMutation(resp)
}

// Delete routes a live delete of the (key, value) pair to the responsible
// partition, tombstoning it at every replica that acknowledges. Quorum
// semantics match Insert.
func (p *Peer) Delete(ctx context.Context, key keyspace.Key, value string) (MutateResult, error) {
	resp, err := p.resolveDelete(ctx, DeleteRequest{Key: key, Value: value, ID: p.mutationID(), TTL: p.cfg.QueryTTL})
	if err != nil {
		return MutateResult{}, err
	}
	return p.finishMutation(resp)
}

// mutationID draws a non-zero random operation identity.
func (p *Peer) mutationID() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if id := p.rng.Uint64(); id != 0 {
			return id
		}
	}
}

// markMutation records a mutation ID and reports whether it was new. The
// α-raced routing can deliver duplicates of one mutation to several
// responsible peers; IDs spread with the Direct fan-out, so a late duplicate
// reaching another replica of the partition is recognised instead of being
// re-coordinated (which could re-stamp a delete above a newer acknowledged
// re-insert). The ring lives in the store — WAL-logged and snapshotted with
// the rest of the replica state — so a restarted replica still recognises
// duplicates of mutations it coordinated before the crash. A zero ID is
// never deduplicated.
func (p *Peer) markMutation(id uint64) bool {
	return p.store.MarkMutation(id)
}

// finishMutation converts the wire response into a MutateResult and applies
// the originator's quorum check.
func (p *Peer) finishMutation(resp MutateResponse) (MutateResult, error) {
	if !resp.Found {
		return MutateResult{}, errNotResponsible
	}
	p.Metrics.Mutations.Add(1)
	p.Metrics.MutationHops.Add(float64(resp.Hops))
	res := MutateResult{
		Acks:        resp.Acks,
		Replicas:    resp.Replicas,
		Hops:        resp.Hops,
		Responsible: resp.Responsible,
	}
	if res.Acks < p.writeQuorum() {
		return res, ErrNoQuorum
	}
	return res, nil
}

// handleInsert serves an insert received from another peer.
func (p *Peer) handleInsert(ctx context.Context, req InsertRequest) MutateResponse {
	if req.Direct {
		// Replica fan-out leg: apply the coordinator's generation-stamped
		// copy locally, never route further (the coordinator already owns
		// the routing decision). The ack reflects the pair's actual state: a
		// replica that refused the copy because it holds a newer tombstone
		// must not count towards the write quorum — it reports its
		// generation instead so the coordinator can re-stamp.
		p.markMutation(req.ID)
		p.store.Add(req.Item)
		acks := 0
		if p.store.Live(req.Item.Key, req.Item.Value) {
			acks = 1
		}
		return MutateResponse{
			Found:           true,
			Acks:            acks,
			Replicas:        1,
			Gen:             p.store.PairGen(req.Item.Key, req.Item.Value),
			Hops:            req.Hops,
			Responsible:     p.Addr(),
			ResponsiblePath: p.Path(),
		}
	}
	resp, err := p.resolveInsert(ctx, req)
	if err != nil {
		return MutateResponse{Found: false, Hops: req.Hops}
	}
	return resp
}

// handleDelete serves a delete received from another peer.
func (p *Peer) handleDelete(ctx context.Context, req DeleteRequest) MutateResponse {
	if req.Direct {
		// Apply the coordinator's stamped tombstone so the delete carries
		// the same generation everywhere; a replica holding an even newer
		// live re-insert keeps it, does not ack, and reports its generation
		// so the coordinator can re-stamp.
		p.markMutation(req.ID)
		p.store.AddTombstones([]replication.Item{{Key: req.Key, Value: req.Value, Gen: req.Gen}})
		acks := 0
		if !p.store.Live(req.Key, req.Value) {
			acks = 1
		}
		return MutateResponse{
			Found:           true,
			Acks:            acks,
			Replicas:        1,
			Gen:             p.store.PairGen(req.Key, req.Value),
			Hops:            req.Hops,
			Responsible:     p.Addr(),
			ResponsiblePath: p.Path(),
		}
	}
	resp, err := p.resolveDelete(ctx, req)
	if err != nil {
		return MutateResponse{Found: false, Hops: req.Hops}
	}
	return resp
}

// resolveInsert applies the insert locally when this peer is responsible for
// the key (coordinating the replica fan-out), and otherwise forwards it along
// the same α-raced routing path an exact-match query takes.
func (p *Peer) resolveInsert(ctx context.Context, req InsertRequest) (MutateResponse, error) {
	if p.table.Responsible(req.Item.Key) {
		if !p.markMutation(req.ID) {
			// A duplicate of an already-coordinated mutation (delivered by
			// the α-race): suppress it entirely. Answering Found here could
			// outrace the original coordination's response with an
			// underreported ack count; the race's real answer is
			// authoritative.
			return MutateResponse{}, errNotResponsible
		}
		// The coordinator stamps the write's generation (above any local
		// tombstone) and fans the stamped copy out, so every replica orders
		// it consistently against earlier deletes of the same pair. A
		// replica whose history is ahead (a tombstone this coordinator never
		// saw) refuses and reports its generation; one re-stamped retry
		// lifts the write above it.
		stamped := p.store.Insert(req.Item)
		resp := p.fanOutMutation(ctx, req.Hops, InsertRequest{Item: stamped, ID: req.ID, Direct: true})
		if resp.Acks < resp.Replicas && resp.Gen >= stamped.Gen {
			stamped = p.store.Insert(replication.Item{Key: req.Item.Key, Value: req.Item.Value, Gen: resp.Gen + 1})
			resp = p.fanOutMutation(ctx, req.Hops, InsertRequest{Item: stamped, ID: req.ID, Direct: true})
		}
		return resp, nil
	}
	if req.TTL <= 0 {
		return MutateResponse{}, errNotResponsible
	}
	forward := req
	forward.Hops++
	forward.TTL--
	return p.forwardMutation(ctx, req.Item.Key, forward)
}

// resolveDelete is the delete counterpart of resolveInsert.
func (p *Peer) resolveDelete(ctx context.Context, req DeleteRequest) (MutateResponse, error) {
	if p.table.Responsible(req.Key) {
		if !p.markMutation(req.ID) {
			// Duplicate delivery; see resolveInsert.
			return MutateResponse{}, errNotResponsible
		}
		// The coordinator stamps the tombstone's generation above its local
		// state and fans that exact stamp out, mirroring resolveInsert —
		// including the re-stamp retry when a replica holds a newer live
		// copy this coordinator never saw.
		stamped := p.store.DeleteStamped(req.Key, req.Value, 0)
		resp := p.fanOutMutation(ctx, req.Hops, DeleteRequest{Key: req.Key, Value: req.Value, Gen: stamped.Gen, ID: req.ID, Direct: true})
		if resp.Acks < resp.Replicas && resp.Gen >= stamped.Gen {
			stamped = p.store.DeleteStamped(req.Key, req.Value, resp.Gen)
			resp = p.fanOutMutation(ctx, req.Hops, DeleteRequest{Key: req.Key, Value: req.Value, Gen: stamped.Gen, ID: req.ID, Direct: true})
		}
		return resp, nil
	}
	if req.TTL <= 0 {
		return MutateResponse{}, errNotResponsible
	}
	forward := req
	forward.Hops++
	forward.TTL--
	return p.forwardMutation(ctx, req.Key, forward)
}

// forwardMutation routes a mutation request one hop closer to the
// responsible partition, racing up to Alpha references at the divergence
// level exactly like resolveQuery does for reads (stale references are
// pruned by the race).
func (p *Peer) forwardMutation(ctx context.Context, key keyspace.Key, forward any) (MutateResponse, error) {
	_, level, _ := p.table.NextHop(key)
	refs := p.shuffledRefs(level)
	raw, ok := p.raceCall(ctx, refs, forward, func(raw any) bool {
		resp, ok := raw.(MutateResponse)
		return ok && resp.Found
	})
	if !ok {
		return MutateResponse{}, errNotResponsible
	}
	return raw.(MutateResponse), nil
}

// fanOutMutation writes the Direct mutation request to every known replica
// of this peer's partition concurrently (bounded by Fanout) and counts the
// acknowledgements. Replicas that turn out to be unreachable are dropped from
// the replica set; the maintenance loop re-discovers live ones. The local
// apply counts as the first ack.
func (p *Peer) fanOutMutation(ctx context.Context, hops int, req any) MutateResponse {
	replicas := p.Replicas()
	acks := 1
	maxGen := uint64(0)
	var mu sync.Mutex
	forEachBounded(p.queryFanout(), replicas, func(addr network.Addr) {
		p.Metrics.QueryBytes.Add(float64(network.MessageSize(req)))
		raw, err := p.transport.Call(ctx, addr, req)
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, context.Canceled) {
				p.removeReplica(addr)
			}
			return
		}
		p.Metrics.QueryBytes.Add(float64(network.MessageSize(raw)))
		if resp, ok := raw.(MutateResponse); ok {
			mu.Lock()
			if resp.Acks > 0 {
				acks++
			} else if resp.Gen > maxGen {
				// Only refusals feed the re-stamp signal: an acking replica
				// reports the stamp it just applied, which must not trigger
				// a pointless retry when some other replica was merely
				// unreachable.
				maxGen = resp.Gen
			}
			mu.Unlock()
		}
	})
	// Gen reports the highest generation a *refusing* replica holds (0 when
	// none refused), so the caller can tell when a replica is ahead.
	return MutateResponse{
		Found:           true,
		Acks:            acks,
		Replicas:        len(replicas) + 1,
		Gen:             maxGen,
		Hops:            hops,
		Responsible:     p.Addr(),
		ResponsiblePath: p.Path(),
	}
}
