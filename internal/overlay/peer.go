package overlay

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pgrid/internal/core"
	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
	"pgrid/internal/stats"
	"pgrid/internal/xrand"
)

// Config parameterises a P-Grid peer.
type Config struct {
	// MaxKeys is d_max: a partition holding more keys than this is
	// considered overloaded and eligible for splitting.
	MaxKeys int
	// MinReplicas is n_min: the minimal number of replica peers per
	// partition; splits only happen while the estimated replica count
	// leaves at least MinReplicas on each side.
	MinReplicas int
	// MaxDepth bounds the peer's path length (0 means 32).
	MaxDepth int
	// MaxRefs is the number of routing references kept per level.
	MaxRefs int
	// Samples is the number of local keys sampled when estimating load
	// fractions (0 = use all local keys).
	Samples int
	// UseCorrection selects the bias-corrected decision probabilities.
	UseCorrection bool
	// UseHeuristic selects the naive heuristic probabilities (Figure 6(d)
	// ablation).
	UseHeuristic bool
	// DoneAfterIdle is the number of consecutive unproductive interactions
	// after which a peer considers its construction converged (paper: a
	// fixed small number such as 2).
	DoneAfterIdle int
	// QueryTTL bounds the number of routing hops per query (0 means 64).
	QueryTTL int
	// Alpha is the number of routing references raced concurrently per
	// forwarding step of an exact-match (or batch) query. The first
	// responsible answer wins and stale references encountered along the
	// way are pruned. 1 reproduces the sequential try-one-at-a-time
	// behaviour; 0 means the default of 3.
	Alpha int
	// HedgeDelay staggers the launch of the additional Alpha candidates:
	// candidate i starts i*HedgeDelay after the first. Zero launches all
	// candidates at once.
	HedgeDelay time.Duration
	// Fanout bounds the number of sub-trees a range ("shower") query — or
	// next-hop groups of a batch query — forwards to concurrently. 1
	// reproduces the serial branch-after-branch behaviour; 0 means the
	// default of 4.
	Fanout int
	// WriteQuorum is the number of replica acknowledgements (including the
	// responsible peer itself) a routed Insert or Delete needs before it is
	// reported successful. 1 (the default) accepts the responsible peer
	// alone; higher values trade write latency for durability under churn.
	WriteQuorum int
	// FullSyncAntiEntropy selects the legacy full-set anti-entropy exchange
	// (every maintenance tick ships the partition's entire item and
	// tombstone set) instead of the digest/delta protocol. It is the
	// pre-digest baseline, kept for comparison benchmarks. The tombstone GC
	// options are ignored in this mode (tombstones are kept forever, as the
	// legacy protocol always did): a full-set merge cannot tell a stale
	// live copy from a fresh write once the tombstone is pruned, so arming
	// GC here would silently resurrect deletes.
	FullSyncAntiEntropy bool
	// TombstoneGCAge prunes delete tombstones older than this wall-clock
	// age (Cassandra's gc_grace). Zero keeps tombstones forever. The
	// horizon must comfortably exceed the maintenance interval: replicas
	// that stay unreachable longer are rebuilt from an authoritative
	// replica when they rejoin, discarding writes they never synced.
	TombstoneGCAge time.Duration
	// TombstoneGCVersions prunes tombstones once the local store clock has
	// advanced this many versions past them — the horizon to use under
	// virtual clocks (simulations). Zero disables the criterion.
	TombstoneGCVersions uint64
	// DataDir enables durable replica state: the peer's store is backed by
	// a write-ahead log plus periodic snapshots rooted at this directory,
	// and a restarted peer recovers its items, tombstones, logical clock,
	// GC floor, partition path and per-replica sync baselines from it — so
	// it re-enters anti-entropy through the cheap exact-delta path instead
	// of a first-contact walk. Empty (the default) keeps the store in
	// memory. Only NewPersistent reports persistence errors; New panics on
	// them.
	DataDir string
	// WALSyncInterval batches WAL fsyncs: appends flush immediately but
	// fsync at most once per interval
	// (replication.DefaultWALSyncInterval when zero).
	WALSyncInterval time.Duration
	// WALSyncAlways fsyncs the WAL on every mutation, trading write
	// latency for a zero crash-loss window.
	WALSyncAlways bool
	// SnapshotThreshold is the number of WAL records after which a
	// maintenance tick compacts the log into a snapshot
	// (replication.DefaultSnapshotThreshold when zero).
	SnapshotThreshold int
	// StorageEngine selects the store's pair-storage engine:
	// replication.EngineMem (in-memory map) or replication.EngineDisk
	// (log-structured on-disk segments, for partitions far larger than
	// RAM). Empty uses replication.DefaultEngine (the PGRID_ENGINE
	// environment variable, or mem).
	StorageEngine string
	// QueryCacheSize bounds the peer's query answer cache (entries). Zero
	// (the default) disables caching. A cached exact-lookup answer carries
	// the responsible store's logical clock as a freshness token and is only
	// served after a one-hop probe confirms the clock has not moved, so a
	// hit costs one tiny round trip instead of a multi-hop item transfer —
	// and writes invalidate naturally because every visible mutation bumps
	// the clock.
	QueryCacheSize int
	// QueryCacheTTL bounds the lifetime of a cached answer regardless of
	// probing (DefaultQueryCacheTTL when zero).
	QueryCacheTTL time.Duration
	// HotReadThreshold arms load-triggered replica widening: when the
	// partition's locally-answered exact-lookup rate (reads/second over a
	// sliding window) stays above this threshold, maintenance recruits up to
	// HotMaxExtra temporary shadow replicas from the routing neighbourhood
	// and advertises them on query answers, so the α-raced router spreads
	// the hot partition's load. Zero (the default) disables widening.
	HotReadThreshold float64
	// HotMaxExtra bounds the number of temporary replicas recruited while
	// hot (DefaultHotMaxExtra when zero).
	HotMaxExtra int
	// HotReplicaLease bounds how long a recruited shadow serves without a
	// refresh from the hot peer (DefaultHotReplicaLease when zero).
	HotReplicaLease time.Duration
	// Seed drives the peer's local randomness.
	Seed int64
}

// DefaultConfig returns the configuration used by the paper's simulations:
// n_min = 5 and d_max = 10*n_min, with AEP probabilities.
func DefaultConfig() Config {
	return Config{
		MaxKeys:       50,
		MinReplicas:   5,
		MaxRefs:       routing.DefaultMaxRefs,
		DoneAfterIdle: 2,
	}
}

// normalize fills in defaults for zero-valued fields.
func (c Config) normalize() Config {
	if c.MaxKeys <= 0 {
		c.MaxKeys = 50
	}
	if c.MinReplicas <= 0 {
		c.MinReplicas = 5
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 32
	}
	if c.MaxRefs <= 0 {
		c.MaxRefs = routing.DefaultMaxRefs
	}
	if c.DoneAfterIdle <= 0 {
		c.DoneAfterIdle = 2
	}
	if c.QueryTTL <= 0 {
		c.QueryTTL = 64
	}
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.HedgeDelay < 0 {
		c.HedgeDelay = 0
	}
	if c.Fanout <= 0 {
		c.Fanout = DefaultFanout
	}
	if c.WriteQuorum <= 0 {
		c.WriteQuorum = DefaultWriteQuorum
	}
	if c.QueryCacheSize > 0 && c.QueryCacheTTL <= 0 {
		c.QueryCacheTTL = DefaultQueryCacheTTL
	}
	if c.HotReadThreshold > 0 {
		if c.HotMaxExtra <= 0 {
			c.HotMaxExtra = DefaultHotMaxExtra
		}
		if c.HotReplicaLease <= 0 {
			c.HotReplicaLease = DefaultHotReplicaLease
		}
	}
	return c
}

// Default concurrency parameters of the query engine.
const (
	// DefaultAlpha is the default number of references raced per
	// forwarding step (the α of Kademlia-style parallel lookups).
	DefaultAlpha = 3
	// DefaultFanout is the default bound on concurrently forwarded range
	// sub-trees and batch groups.
	DefaultFanout = 4
	// DefaultWriteQuorum is the default number of replica acks a routed
	// mutation needs: just the responsible peer, matching a single-copy
	// write; raise it for stronger durability.
	DefaultWriteQuorum = 1
	// DefaultQueryCacheTTL is the default lifetime of a cached query answer
	// (every serve is still clock-probed; the TTL only bounds how long an
	// entry may occupy cache space).
	DefaultQueryCacheTTL = 2 * time.Second
	// DefaultHotMaxExtra is the default bound on temporary replicas
	// recruited for a hot partition.
	DefaultHotMaxExtra = 2
	// DefaultHotReplicaLease is the default lease of a recruited shadow
	// replica; the hot peer refreshes it on every maintenance tick while the
	// load persists.
	DefaultHotReplicaLease = 10 * time.Second
	// hotRateWindow is the sliding window of the per-partition read-rate
	// estimate that drives widening.
	hotRateWindow = time.Second
)

// Metrics aggregates a peer's protocol activity for the evaluation figures.
type Metrics struct {
	// Interactions is the number of construction interactions initiated.
	Interactions stats.Counter
	// KeysMoved counts data items sent or received during construction
	// (Figure 6(f)).
	KeysMoved stats.Counter
	// Queries and QueryHops count exact-match queries answered locally or
	// forwarded, and the hops they took.
	Queries   stats.Counter
	QueryHops stats.Counter
	// Mutations and MutationHops count routed Insert/Delete operations this
	// peer originated, and the hops they took to reach the responsible
	// partition.
	Mutations    stats.Counter
	MutationHops stats.Counter
	// MaintenanceBytes and QueryBytes separate bandwidth by purpose
	// (Figure 8).
	MaintenanceBytes stats.Counter
	QueryBytes       stats.Counter
	// SyncsInSync, SyncsDelta and SyncsFull classify completed anti-entropy
	// syncs: root digests matched (nothing transferred), delta-proportional
	// exchanges (exact deltas and digest walks), and full-set transfers
	// (rebuilds and the legacy protocol). Together with MaintenanceBytes
	// they quantify how much the digest protocol saves.
	SyncsInSync stats.Counter
	SyncsDelta  stats.Counter
	SyncsFull   stats.Counter
	// TombstonesPruned counts tombstones removed by the GC horizon.
	TombstonesPruned stats.Counter
	// PersistenceErrors counts maintenance ticks that observed a sticky
	// persistence failure (WAL append/rotation error): the peer keeps
	// serving from memory but its mutations are no longer durable.
	PersistenceErrors stats.Counter
	// CacheHits and CacheMisses count exact lookups served from the query
	// answer cache (after a successful clock probe) versus lookups that had
	// to route (no entry, expired entry, or a probe that found the clock
	// moved).
	CacheHits   stats.Counter
	CacheMisses stats.Counter
	// WideningRecruits and WideningReleases count temporary hot-key replicas
	// enlisted and dismissed by load-triggered replica widening.
	WideningRecruits stats.Counter
	WideningReleases stats.Counter
}

// Peer is one P-Grid node.
type Peer struct {
	// The hot query path touches mu (concurrency knobs are read under it on
	// every hop), table, store and transport; they lead the struct so their
	// offsets — and cache lines — stay stable as the cold configuration and
	// maintenance state below them grow.
	mu        sync.Mutex
	table     *routing.Table
	store     *replication.Store
	transport network.Transport
	rng       *rand.Rand

	cfg      Config
	decider  core.Decider
	replicas map[network.Addr]bool
	idle     int
	done     bool
	// syncStates holds the per-replica anti-entropy baselines (the store
	// clocks of the last completed digest/delta sync).
	syncStates map[network.Addr]syncState

	// cache is the query answer cache (nil when disabled); now is the time
	// source it and the widening state run on (time.Now outside tests).
	cache *queryCache
	now   func() time.Time
	// readRate tracks the partition's locally-answered lookup rate (nil
	// when widening is disabled).
	readRate *stats.RateTracker
	// hotMu guards the widening state: the recruits this peer enlisted for
	// its own hot partition, and the shadow it serves for someone else's.
	hotMu    sync.Mutex
	recruits map[network.Addr]time.Time
	shadow   *shadowPartition

	// Metrics are exported counters. They are updated without holding mu:
	// each stats.Counter is internally atomic, and MetricsSnapshot reads
	// them through the same atomic loads, so concurrent scrapes never see
	// a half-updated figure.
	Metrics Metrics
}

// New creates a peer bound to the given transport. It panics when
// cfg.DataDir is set but the persistence directory cannot be opened — use
// NewPersistent to handle that error.
func New(cfg Config, transport network.Transport) *Peer {
	p, err := NewPersistent(cfg, transport)
	if err != nil {
		panic(fmt.Sprintf("overlay: open persistent peer: %v", err))
	}
	return p
}

// Store-metadata keys the overlay records its durable state under: the
// partition path, the routing references and the replica set. The path
// keeps a restarted peer in its partition; the references let it route
// (and answer) queries immediately; the replica addresses let its first
// maintenance tick reach a replica even when no sync baseline was ever
// completed.
const (
	metaPathKey     = "overlay.path"
	metaRefsKey     = "overlay.refs"
	metaReplicasKey = "overlay.replicas"
)

// metaRef is the JSON shape of one persisted routing reference.
type metaRef struct {
	Level int    `json:"l"`
	Addr  string `json:"a"`
	Path  string `json:"p"`
}

// NewPersistent creates a peer bound to the given transport, recovering
// durable replica state from cfg.DataDir when it is set: the store's items,
// tombstones, clock and GC floor are replayed from the WAL and snapshots,
// the partition path is restored, and the recovered per-replica sync
// baselines seed both the replica set and the anti-entropy sync states —
// so the first maintenance tick after a restart syncs via an exact delta
// rather than a first-contact walk. With an empty DataDir it behaves
// exactly like New.
func NewPersistent(cfg Config, transport network.Transport) (*Peer, error) {
	cfg = cfg.normalize()
	var store *replication.Store
	if cfg.DataDir != "" {
		var err error
		store, err = replication.OpenStore(cfg.DataDir, replication.PersistOptions{
			SyncInterval:      cfg.WALSyncInterval,
			SyncAlways:        cfg.WALSyncAlways,
			SnapshotThreshold: cfg.SnapshotThreshold,
			Engine:            cfg.StorageEngine,
		})
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		store, err = replication.NewStoreKind(cfg.StorageEngine)
		if err != nil {
			return nil, err
		}
	}
	p := &Peer{
		cfg:       cfg,
		transport: transport,
		decider: core.Decider{
			Samples:       cfg.Samples,
			UseCorrection: cfg.UseCorrection,
			UseHeuristic:  cfg.UseHeuristic,
		},
		table:    routing.New(cfg.MaxRefs, cfg.Seed),
		store:    store,
		replicas: make(map[network.Addr]bool),
		rng:      xrand.New(cfg.Seed),
		cache:    newQueryCache(cfg.QueryCacheSize, cfg.QueryCacheTTL),
		now:      time.Now,
	}
	if cfg.HotReadThreshold > 0 {
		p.readRate = stats.NewRateTracker(hotRateWindow)
		p.recruits = make(map[network.Addr]time.Time)
	}
	// The GC horizon is only armed with the digest/delta protocol: the
	// legacy full-set exchange cannot tell a stale live copy from a fresh
	// write once the tombstone is pruned, so combining them would silently
	// resurrect deletes. The legacy mode keeps tombstones forever instead.
	if (cfg.TombstoneGCAge > 0 || cfg.TombstoneGCVersions > 0) && !cfg.FullSyncAntiEntropy {
		p.store.SetGCPolicy(replication.GCPolicy{
			MinAge:      cfg.TombstoneGCAge,
			MinVersions: cfg.TombstoneGCVersions,
		})
	}
	p.table.SetOwner(transport.Addr())
	if store.Persistent() {
		p.recoverOverlayState()
	}
	transport.Handle(p.handle)
	return p, nil
}

// recoverOverlayState restores the overlay-level durable state from the
// recovered store: the partition path, the routing references, the replica
// set, and the per-replica sync baselines (whose addresses also re-seed
// the replica set). Runs before the transport handler is installed, so no
// locking is needed.
func (p *Peer) recoverOverlayState() {
	if path := p.store.Meta(metaPathKey); path != "" && validPath(path) {
		p.table.SetPath(keyspace.Path(path))
	}
	var refs []metaRef
	if raw := p.store.Meta(metaRefsKey); raw != "" {
		if err := json.Unmarshal([]byte(raw), &refs); err == nil {
			for _, r := range refs {
				if validPath(r.Path) {
					p.table.Add(r.Level, routing.Ref{Addr: network.Addr(r.Addr), Path: keyspace.Path(r.Path)})
				}
			}
		}
	}
	var replicas []string
	if raw := p.store.Meta(metaReplicasKey); raw != "" {
		if err := json.Unmarshal([]byte(raw), &replicas); err == nil {
			for _, a := range replicas {
				p.addReplicaLocked(network.Addr(a))
			}
		}
	}
	for addr, b := range p.store.Baselines() {
		a := network.Addr(addr)
		if a == "" || a == p.Addr() {
			continue
		}
		if p.syncStates == nil {
			p.syncStates = make(map[network.Addr]syncState)
		}
		p.syncStates[a] = syncState{mine: b.Mine, theirs: b.Theirs}
		p.replicas[a] = true
	}
}

// validPath reports whether a recovered metadata string is a well-formed
// partition path (binary digits only).
func validPath(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' && s[i] != '1' {
			return false
		}
	}
	return true
}

// persistPathMeta records just the partition path — one string compare
// under the store lock in the unchanged case, cheap enough for the
// construction hot path, where exchanges are frequent and the path is the
// only overlay state that must never lag a split. The routing references
// and replica set are persisted by the periodic maintenance tick
// (persistOverlayState).
func (p *Peer) persistPathMeta() {
	if !p.store.Persistent() {
		return
	}
	p.store.SetMeta(metaPathKey, string(p.Path()))
}

// persistOverlayState records the peer's partition path, routing
// references and replica set into the store's durable metadata, so a
// restarted peer rejoins its partition with a working routing table. It is
// a no-op for in-memory stores and for unchanged values (SetMeta
// compares); because it deep-copies and marshals the routing table it runs
// on the maintenance tick, not per message.
func (p *Peer) persistOverlayState() {
	if !p.store.Persistent() {
		return
	}
	path, levels := p.table.Snapshot()
	p.store.SetMeta(metaPathKey, string(path))
	var refs []metaRef
	for level, rs := range levels {
		for _, r := range rs {
			refs = append(refs, metaRef{Level: level, Addr: string(r.Addr), Path: string(r.Path)})
		}
	}
	if data, err := json.Marshal(refs); err == nil {
		p.store.SetMeta(metaRefsKey, string(data))
	}
	replicas := p.Replicas()
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	addrs := make([]string, len(replicas))
	for i, a := range replicas {
		addrs[i] = string(a)
	}
	if data, err := json.Marshal(addrs); err == nil {
		p.store.SetMeta(metaReplicasKey, string(data))
	}
}

// Close flushes and closes the peer's persistent store (a no-op for
// in-memory peers). Stop maintenance and stop serving the transport before
// closing; the peer must not be used afterwards.
func (p *Peer) Close() error {
	return p.store.Close()
}

// Addr returns the peer's network address.
func (p *Peer) Addr() network.Addr { return p.transport.Addr() }

// Path returns the peer's current path.
func (p *Peer) Path() keyspace.Path { return p.table.Path() }

// Store returns the peer's data store.
func (p *Peer) Store() *replication.Store { return p.store }

// Table returns the peer's routing table.
func (p *Peer) Table() *routing.Table { return p.table }

// Config returns the peer's configuration.
func (p *Peer) Config() Config {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg
}

// SetQueryConcurrency adjusts the query engine's concurrency knobs at run
// time (useful for sweeping α and fan-out over one constructed overlay).
// Non-positive alpha or fanout and negative hedge keep the current value.
func (p *Peer) SetQueryConcurrency(alpha, fanout int, hedge time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if alpha > 0 {
		p.cfg.Alpha = alpha
	}
	if fanout > 0 {
		p.cfg.Fanout = fanout
	}
	if hedge >= 0 {
		p.cfg.HedgeDelay = hedge
	}
}

// SetTimeSource replaces the clock the answer cache and widening state run
// on (tests with a simulated clock). Call before the peer serves traffic.
func (p *Peer) SetTimeSource(now func() time.Time) {
	if now != nil {
		p.now = now
	}
}

// queryAlpha returns the current per-hop lookup parallelism.
func (p *Peer) queryAlpha() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Alpha
}

// queryFanout returns the current sub-tree fan-out bound.
func (p *Peer) queryFanout() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Fanout
}

// hedgeDelay returns the current hedged-request stagger.
func (p *Peer) hedgeDelay() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.HedgeDelay
}

// Replicas returns the addresses of the peers currently known to replicate
// this peer's partition.
func (p *Peer) Replicas() []network.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]network.Addr, 0, len(p.replicas))
	for a := range p.replicas {
		out = append(out, a)
	}
	return out
}

// AddReplica records another peer as a replica of this peer's partition.
// Replicas are normally discovered through construction encounters and
// anti-entropy gossip; AddReplica lets deployments seed the set explicitly.
func (p *Peer) AddReplica(a network.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addReplicaLocked(a)
}

// removeReplica forgets a replica that turned out to be unreachable. Its
// anti-entropy baseline is kept (compactSyncStates bounds the map): the
// store clocks it records stay valid if the peer comes back, and losing the
// baseline would turn the next sync into an incomparable first contact.
func (p *Peer) removeReplica(a network.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.replicas, a)
}

// Done reports whether the peer considers its part of the construction
// converged.
func (p *Peer) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// AddItems loads data items into the peer's store (the peer's initial local
// data before index construction).
func (p *Peer) AddItems(items []replication.Item) {
	p.store.AddAll(items)
}

// handle dispatches incoming protocol messages.
func (p *Peer) handle(ctx context.Context, from network.Addr, req any) (any, error) {
	switch m := req.(type) {
	case ExchangeRequest:
		resp := p.handleExchange(m)
		p.persistPathMeta() // the exchange may have moved the path
		return resp, nil
	case QueryRequest:
		return p.handleQuery(ctx, m), nil
	case BatchQueryRequest:
		return p.handleQueryBatch(ctx, m), nil
	case RangeRequest:
		return p.handleRange(ctx, m), nil
	case ReplicateRequest:
		return p.handleReplicate(m), nil
	case InsertRequest:
		return p.handleInsert(ctx, m), nil
	case DeleteRequest:
		return p.handleDelete(ctx, m), nil
	case DigestRequest, DeltaRequest:
		// Dispatched behind one indirection on purpose: binding the
		// protocol's comparatively large request/response structs here would
		// grow handle's stack frame, and every α-raced query hop pays for
		// the resulting goroutine stack growth.
		return p.handleAntiEntropy(req)
	case ClockRequest:
		return ClockResponse{Path: p.Path(), Clock: p.store.Clock()}, nil
	case RecruitRequest:
		return p.handleRecruit(m), nil
	case TombstonePruneRequest:
		return p.handleTombstonePrune(m), nil
	case PingRequest:
		return PingResponse{Path: p.Path(), Done: p.Done()}, nil
	default:
		return nil, fmt.Errorf("overlay: unknown request type %T", req)
	}
}

// ErrUnreachable classifies routed operations that could not reach the
// partition responsible for their key: every candidate reference was
// exhausted (peers down, refs stale, TTL spent). It is the overlay's
// "service unavailable" signal — the key may well exist, but no route led
// to it — and callers (the HTTP gateway, pgridnode -get) use it to
// distinguish "overlay down" from "key absent" (ErrNotFound) and "write
// under-replicated" (ErrNoQuorum). Test with errors.Is.
var ErrUnreachable = errors.New("overlay: responsible partition unreachable")

// ErrNotFound classifies lookups that did reach the responsible partition
// but found no item stored under the key. Query itself reports this case as
// an empty result set; the sentinel exists so service layers above the
// overlay (internal/gate, pgridnode) map "absent" uniformly — e.g. to HTTP
// 404 — instead of inventing their own marker. Test with errors.Is.
var ErrNotFound = errors.New("overlay: key not found")

// errNotResponsible is returned by query handling when routing cannot make
// progress. It wraps ErrUnreachable so callers above the protocol layer can
// classify the failure without knowing the internal control-flow error.
var errNotResponsible = fmt.Errorf("overlay: no route towards responsible peer: %w", ErrUnreachable)

// random returns a random float using the peer's RNG under the state lock's
// protection (callers must hold p.mu).
func (p *Peer) randomLocked() float64 { return p.rng.Float64() }

// markProductiveLocked resets the idle counter after a state-changing
// interaction (callers must hold p.mu).
func (p *Peer) markProductiveLocked() {
	p.idle = 0
	p.done = false
}

// markIdleLocked records an unproductive interaction and flips the peer to
// done when the threshold is reached (callers must hold p.mu).
func (p *Peer) markIdleLocked() {
	p.idle++
	if p.idle >= p.cfg.DoneAfterIdle {
		p.done = true
	}
}

// addReplicaLocked records a replica peer (callers must hold p.mu).
func (p *Peer) addReplicaLocked(a network.Addr) {
	if a == "" || a == p.Addr() {
		return
	}
	p.replicas[a] = true
}

// clearReplicasLocked forgets the replica list, which becomes stale when
// the peer's path changes (callers must hold p.mu). Anti-entropy baselines
// survive: they are positions in each peer's monotonic store clock, and a
// pre-split sync covered a superset of the new partition, so they remain
// valid if a cleared peer is re-discovered as a replica.
func (p *Peer) clearReplicasLocked() {
	p.replicas = make(map[network.Addr]bool)
}

// snapshotReplicasLocked returns the replica list (callers must hold p.mu).
func (p *Peer) snapshotReplicasLocked() []network.Addr {
	out := make([]network.Addr, 0, len(p.replicas))
	for a := range p.replicas {
		out = append(out, a)
	}
	return out
}

// handleReplicate serves the pre-construction replication push and replica
// anti-entropy. Tombstones carried by the request are applied before the
// items, so a replica that missed a delete drops its stale live copy instead
// of re-spreading it.
func (p *Peer) handleReplicate(req ReplicateRequest) ReplicateResponse {
	p.store.AddTombstones(req.Tombstones)
	accepted := p.store.AddAll(req.Items)
	p.Metrics.KeysMoved.Add(float64(len(req.Items)))
	resp := ReplicateResponse{Accepted: accepted, Path: p.Path()}
	p.mu.Lock()
	if req.From != "" && req.Path.SamePartition(p.table.Path()) {
		p.addReplicaLocked(req.From)
	}
	for _, r := range req.Replicas {
		if r != p.Addr() {
			p.addReplicaLocked(r)
		}
	}
	resp.Replicas = p.snapshotReplicasLocked()
	p.mu.Unlock()
	if req.AntiEntropy {
		// Send back the items the initiator appears to be missing within
		// the shared partition, plus the local tombstones so deletes travel
		// in both directions. Membership only needs the initiator's key set,
		// not a scratch store.
		initiator := make(map[keyspace.Key]bool, len(req.Items))
		for _, it := range req.Items {
			initiator[it.Key] = true
		}
		for _, it := range p.store.ItemsWithPrefix(req.Path) {
			if !initiator[it.Key] {
				resp.Items = append(resp.Items, it)
			}
		}
		resp.Tombstones = p.store.TombstonesWithPrefix(req.Path)
		p.Metrics.KeysMoved.Add(float64(len(resp.Items)))
	}
	return resp
}
