package overlay

import "pgrid/internal/replication"

// This file is the peer's observability read path. The Metrics counters are
// written from the protocol hot paths via atomic adds; MetricsSnapshot
// collects them — plus the replication gauges that were previously
// invisible outside the store (item count, tombstones, WAL shape,
// disk-engine segments) — into one plain-value struct that exporters
// (internal/gate's Prometheus endpoint, pgridbench) can read while a
// workload runs, without half-updated figures and without stalling the
// protocol.

// MetricsSnapshot is a point-in-time, plain-value copy of a peer's protocol
// counters and replication gauges. All counter fields are cumulative since
// the peer started.
type MetricsSnapshot struct {
	// Construction activity: interactions initiated and data items moved.
	Interactions float64
	KeysMoved    float64
	// Query activity this peer originated, and the hops those queries took.
	Queries   float64
	QueryHops float64
	// Routed mutations this peer originated, and their routing hops.
	Mutations    float64
	MutationHops float64
	// Bandwidth by purpose, in bytes.
	MaintenanceBytes float64
	QueryBytes       float64
	// Completed anti-entropy syncs by protocol path.
	SyncsInSync float64
	SyncsDelta  float64
	SyncsFull   float64
	// Tombstones removed by the GC horizon.
	TombstonesPruned float64
	// Maintenance ticks that observed a sticky persistence failure.
	PersistenceErrors float64
	// Exact lookups served from the query answer cache versus lookups that
	// had to route.
	CacheHits   float64
	CacheMisses float64
	// Temporary hot-key replicas enlisted and dismissed by replica widening.
	WideningRecruits float64
	WideningReleases float64

	// Path is the peer's partition path.
	Path string
	// Replicas is the number of peers currently known to replicate this
	// peer's partition.
	Replicas int
	// Store carries the replica store's gauges: live items, tombstones,
	// logical clock, WAL records/segments, storage engine shape.
	Store replication.StoreStats
}

// MetricsSnapshot returns a consistent point-in-time copy of the peer's
// counters and gauges. Each counter is read with one atomic load and each
// gauge under its own lock, so it is safe to call at scrape frequency while
// queries, mutations and maintenance run concurrently.
func (p *Peer) MetricsSnapshot() MetricsSnapshot {
	m := &p.Metrics
	return MetricsSnapshot{
		Interactions:      m.Interactions.Value(),
		KeysMoved:         m.KeysMoved.Value(),
		Queries:           m.Queries.Value(),
		QueryHops:         m.QueryHops.Value(),
		Mutations:         m.Mutations.Value(),
		MutationHops:      m.MutationHops.Value(),
		MaintenanceBytes:  m.MaintenanceBytes.Value(),
		QueryBytes:        m.QueryBytes.Value(),
		SyncsInSync:       m.SyncsInSync.Value(),
		SyncsDelta:        m.SyncsDelta.Value(),
		SyncsFull:         m.SyncsFull.Value(),
		TombstonesPruned:  m.TombstonesPruned.Value(),
		PersistenceErrors: m.PersistenceErrors.Value(),
		CacheHits:         m.CacheHits.Value(),
		CacheMisses:       m.CacheMisses.Value(),
		WideningRecruits:  m.WideningRecruits.Value(),
		WideningReleases:  m.WideningReleases.Value(),
		Path:              string(p.Path()),
		Replicas:          len(p.Replicas()),
		Store:             p.store.Stats(),
	}
}

// Merge adds the counters of o into s and sums the size gauges (items,
// tombstones, replicas, WAL records/segments, engine shape), producing a
// cluster-wide aggregate; Path is cleared because an aggregate has none.
func (s MetricsSnapshot) Merge(o MetricsSnapshot) MetricsSnapshot {
	s.Interactions += o.Interactions
	s.KeysMoved += o.KeysMoved
	s.Queries += o.Queries
	s.QueryHops += o.QueryHops
	s.Mutations += o.Mutations
	s.MutationHops += o.MutationHops
	s.MaintenanceBytes += o.MaintenanceBytes
	s.QueryBytes += o.QueryBytes
	s.SyncsInSync += o.SyncsInSync
	s.SyncsDelta += o.SyncsDelta
	s.SyncsFull += o.SyncsFull
	s.TombstonesPruned += o.TombstonesPruned
	s.PersistenceErrors += o.PersistenceErrors
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.WideningRecruits += o.WideningRecruits
	s.WideningReleases += o.WideningReleases
	s.Replicas += o.Replicas
	s.Path = ""
	s.Store.Items += o.Store.Items
	s.Store.Tombstones += o.Store.Tombstones
	s.Store.Clock += o.Store.Clock
	s.Store.WALRecords += o.Store.WALRecords
	s.Store.WALSegments += o.Store.WALSegments
	s.Store.EngineStats.Segments += o.Store.EngineStats.Segments
	s.Store.EngineStats.MemtableLen += o.Store.EngineStats.MemtableLen
	s.Store.EngineStats.FrozenLen += o.Store.EngineStats.FrozenLen
	return s
}
