package overlay

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
	"pgrid/internal/workload"
)

// testCluster is a small in-process P-Grid deployment used by the tests.
type testCluster struct {
	sim   *network.Sim
	peers []*Peer
	rng   *rand.Rand
}

// newTestCluster creates n peers, assigns keysPerPeer items from the
// distribution to each and pre-replicates every peer's items to MinReplicas
// random peers.
func newTestCluster(t *testing.T, n, keysPerPeer int, dist workload.Distribution, cfg Config, seed int64) *testCluster {
	t.Helper()
	sim := network.NewSim(network.SimConfig{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	c := &testCluster{sim: sim, rng: rng}
	for i := 0; i < n; i++ {
		cfg := cfg
		cfg.Seed = seed + int64(i)*7919
		ep := sim.Endpoint(network.Addr(fmt.Sprintf("peer-%04d", i)))
		p := New(cfg, ep)
		items := make([]replication.Item, keysPerPeer)
		for k := range items {
			items[k] = replication.Item{
				Key:   keyspace.MustFromFloat(dist.Sample(rng), keyspace.DefaultDepth),
				Value: fmt.Sprintf("item-%d-%d", i, k),
			}
		}
		p.AddItems(items)
		c.peers = append(c.peers, p)
	}
	return c
}

// replicateAll performs the pre-construction replication phase: every peer
// pushes its own original items (snapshotted before any pushes happen) to
// MinReplicas random peers.
func (c *testCluster) replicateAll(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	own := make([][]replication.Item, len(c.peers))
	for i, p := range c.peers {
		own[i] = p.Store().Items()
	}
	for i, p := range c.peers {
		targets := make([]network.Addr, 0, p.cfg.MinReplicas)
		for len(targets) < p.cfg.MinReplicas {
			cand := c.peers[c.rng.Intn(len(c.peers))].Addr()
			if cand != p.Addr() {
				targets = append(targets, cand)
			}
		}
		if err := p.ReplicateItems(ctx, own[i], targets); err != nil {
			t.Fatalf("replicate: %v", err)
		}
	}
}

// construct drives construction rounds until every peer reports done or the
// round budget is exhausted. It returns the number of rounds used.
func (c *testCluster) construct(t *testing.T, maxRounds int) int {
	t.Helper()
	ctx := context.Background()
	for round := 0; round < maxRounds; round++ {
		allDone := true
		order := c.rng.Perm(len(c.peers))
		for _, idx := range order {
			p := c.peers[idx]
			if p.Done() {
				continue
			}
			allDone = false
			partner := c.peers[c.rng.Intn(len(c.peers))]
			if partner.Addr() == p.Addr() {
				continue
			}
			if _, err := p.Interact(ctx, partner.Addr()); err != nil {
				t.Fatalf("interact: %v", err)
			}
		}
		if allDone {
			return round
		}
	}
	return maxRounds
}

func (c *testCluster) allItems() []replication.Item {
	seen := map[string]replication.Item{}
	for _, p := range c.peers {
		for _, it := range p.Store().Items() {
			seen[it.Key.String()+"/"+it.Value] = it
		}
	}
	out := make([]replication.Item, 0, len(seen))
	for _, it := range seen {
		out = append(out, it)
	}
	return out
}

func TestTwoPeerSplit(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 1})
	cfg := Config{MaxKeys: 4, MinReplicas: 1, Seed: 1}
	a := New(cfg, sim.Endpoint("A"))
	b := New(cfg, sim.Endpoint("B"))
	// 10 uniform items each: well above MaxKeys, so the peers must split.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		a.AddItems([]replication.Item{{Key: keyspace.MustFromFloat(r.Float64(), 32), Value: fmt.Sprintf("a%d", i)}})
		b.AddItems([]replication.Item{{Key: keyspace.MustFromFloat(r.Float64(), 32), Value: fmt.Sprintf("b%d", i)}})
	}
	action, err := a.Interact(context.Background(), "B")
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionSplit && action != ActionNone {
		t.Fatalf("unexpected action %v", action)
	}
	// Retry until the alpha coin flips (it is 1 for p≈0.5, so the first
	// interaction should already split, but stay robust).
	for i := 0; i < 5 && a.Path() == keyspace.Root; i++ {
		if _, err := a.Interact(context.Background(), "B"); err != nil {
			t.Fatal(err)
		}
	}
	if a.Path().Depth() != 1 || b.Path().Depth() != 1 {
		t.Fatalf("paths after split: %v / %v", a.Path(), b.Path())
	}
	if a.Path() == b.Path() {
		t.Fatal("split peers must take complementary paths")
	}
	// Each peer must hold only items under its own path plus references to
	// the other.
	for _, p := range []*Peer{a, b} {
		if len(p.Table().Refs(0)) == 0 {
			t.Errorf("peer %s has no level-0 reference", p.Addr())
		}
	}
	// Data is partitioned: the union of both stores contains all 20 items.
	union := map[string]bool{}
	for _, p := range []*Peer{a, b} {
		for _, it := range p.Store().Items() {
			union[it.Value] = true
		}
	}
	if len(union) != 20 {
		t.Errorf("items lost during split: %d of 20 remain", len(union))
	}
}

func TestTwoPeerReplicateWhenUnderloaded(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 3})
	cfg := Config{MaxKeys: 100, MinReplicas: 2, Seed: 3}
	a := New(cfg, sim.Endpoint("A"))
	b := New(cfg, sim.Endpoint("B"))
	a.AddItems([]replication.Item{{Key: keyspace.MustFromString("0101"), Value: "x"}})
	b.AddItems([]replication.Item{{Key: keyspace.MustFromString("1010"), Value: "y"}})
	action, err := a.Interact(context.Background(), "B")
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionReplicate {
		t.Fatalf("action = %v, want replicate", action)
	}
	if a.Store().Len() != 2 || b.Store().Len() != 2 {
		t.Error("replicas should hold the union of items")
	}
	if len(a.Replicas()) == 0 || len(b.Replicas()) == 0 {
		t.Error("peers should record each other as replicas")
	}
	if a.Path() != keyspace.Root || b.Path() != keyspace.Root {
		t.Error("underloaded partition must not split")
	}
}

func TestConvergenceDetection(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 4})
	cfg := Config{MaxKeys: 100, MinReplicas: 2, DoneAfterIdle: 2, Seed: 4}
	a := New(cfg, sim.Endpoint("A"))
	b := New(cfg, sim.Endpoint("B"))
	a.AddItems([]replication.Item{{Key: keyspace.MustFromString("0101"), Value: "x"}})
	ctx := context.Background()
	// After a couple of fully synchronised replicate interactions both
	// peers should consider themselves done.
	for i := 0; i < 4; i++ {
		if _, err := a.Interact(ctx, "B"); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Done() {
		t.Error("initiator should have converged")
	}
	if !b.Done() {
		t.Error("responder should have converged")
	}
}

func TestReferBetweenForeignPartitions(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 5})
	cfg := Config{MaxKeys: 4, MinReplicas: 1, Seed: 5}
	a := New(cfg, sim.Endpoint("A"))
	b := New(cfg, sim.Endpoint("B"))
	cpeer := New(cfg, sim.Endpoint("C"))
	// Manually place A and B in different partitions with references.
	a.Table().SetPath("0")
	b.Table().SetPath("1")
	cpeer.Table().SetPath("0")
	b.Table().Add(0, refFor(cpeer))
	action, err := a.Interact(context.Background(), "B")
	if err != nil {
		t.Fatal(err)
	}
	// The refer interaction may chain into a follow-up with the referred
	// peer (C), in which case the reported action is that of the follow-up.
	if action != ActionRefer && action != ActionReplicate {
		t.Fatalf("action = %v, want refer or a follow-up replicate", action)
	}
	// A must have learned a reference to B at level 0 and vice versa.
	if len(a.Table().Refs(0)) == 0 {
		t.Error("initiator should have a level-0 reference after refer")
	}
	if len(b.Table().Refs(0)) == 0 {
		t.Error("responder should have a level-0 reference after refer")
	}
}

func refFor(p *Peer) routing.Ref {
	return routing.Ref{Addr: p.Addr(), Path: p.Path()}
}

func TestReplicationPhase(t *testing.T) {
	c := newTestCluster(t, 20, 10, workload.Uniform{}, Config{MaxKeys: 1000, MinReplicas: 5}, 6)
	c.replicateAll(t)
	// After replication every peer should hold roughly (1+nmin)*10 items on
	// average (its own plus what others pushed).
	total := 0
	for _, p := range c.peers {
		total += p.Store().Len()
	}
	avg := float64(total) / float64(len(c.peers))
	if avg < 40 || avg > 80 {
		t.Errorf("average items per peer after replication = %v, want ≈60", avg)
	}
}

func TestFullConstructionUniform(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 2, Samples: 0, DoneAfterIdle: 3}
	c := newTestCluster(t, 48, 10, workload.Uniform{}, cfg, 7)
	c.replicateAll(t)
	rounds := c.construct(t, 60)
	if rounds >= 60 {
		t.Logf("construction did not fully converge in 60 rounds (acceptable for small networks)")
	}
	// The distinct paths present in the network must cover the key space:
	// otherwise some keys would be unreachable.
	distinct := map[keyspace.Path]bool{}
	deeper := 0
	for _, p := range c.peers {
		distinct[p.Path()] = true
		if p.Path().Depth() > 0 {
			deeper++
		}
	}
	if deeper < len(c.peers)/2 {
		t.Errorf("only %d of %d peers extended their path", deeper, len(c.peers))
	}
	paths := make([]keyspace.Path, 0, len(distinct))
	for p := range distinct {
		paths = append(paths, p)
	}
	if !coversWithPrefixes(paths) {
		t.Errorf("constructed paths do not cover the key space: %v", paths)
	}
	// Storage load balancing: no peer should hold an excessive number of
	// items for its partition.
	for _, p := range c.peers {
		load := p.Store().CountWithPrefix(p.Path())
		if load > 8*cfg.MaxKeys {
			t.Errorf("peer %s severely overloaded: %d items for path %v", p.Addr(), load, p.Path())
		}
	}
}

// coversWithPrefixes reports whether every point of the key space is covered
// by at least one of the paths (unlike keyspace.CoversKeySpace it allows
// overlapping paths, which legitimately occur when replicas coexist with
// deeper splits).
func coversWithPrefixes(paths []keyspace.Path) bool {
	const probes = 512
	for i := 0; i < probes; i++ {
		x := (float64(i) + 0.5) / probes
		k := keyspace.MustFromFloat(x, 32)
		found := false
		for _, p := range paths {
			if k.HasPrefix(p) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestQueriesOnConstructedOverlay(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 2, DoneAfterIdle: 3}
	c := newTestCluster(t, 48, 10, workload.Uniform{}, cfg, 8)
	c.replicateAll(t)
	c.construct(t, 60)
	ctx := context.Background()
	items := c.allItems()
	if len(items) == 0 {
		t.Fatal("no items in the network")
	}
	success, attempts, totalHops := 0, 0, 0
	for i := 0; i < 100; i++ {
		it := items[c.rng.Intn(len(items))]
		origin := c.peers[c.rng.Intn(len(c.peers))]
		attempts++
		res, err := origin.Query(ctx, it.Key)
		if err != nil {
			continue
		}
		found := false
		for _, got := range res.Items {
			if got.Value == it.Value {
				found = true
				break
			}
		}
		if found {
			success++
			totalHops += res.Hops
		}
	}
	rate := float64(success) / float64(attempts)
	if rate < 0.9 {
		t.Errorf("query success rate %.2f below 0.9", rate)
	}
	if success > 0 {
		avgHops := float64(totalHops) / float64(success)
		if avgHops > 6 {
			t.Errorf("average hops %.2f too high for a 48-peer network", avgHops)
		}
	}
}

func TestRangeQueryOnConstructedOverlay(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 2, DoneAfterIdle: 3}
	c := newTestCluster(t, 32, 10, workload.Uniform{}, cfg, 9)
	c.replicateAll(t)
	c.construct(t, 60)
	ctx := context.Background()
	lo := keyspace.MustFromFloat(0.2, keyspace.DefaultDepth)
	hi := keyspace.MustFromFloat(0.6, keyspace.DefaultDepth)
	r := keyspace.NewRange(lo, hi)
	// Expected result: every item in the network with a key in the range.
	want := map[string]bool{}
	for _, it := range c.allItems() {
		if r.ContainsKey(it.Key) {
			want[it.Value] = true
		}
	}
	origin := c.peers[0]
	res, err := origin.RangeQuery(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, it := range res.Items {
		if !r.ContainsKey(it.Key) {
			t.Errorf("item %v outside the queried range", it.Key)
		}
		got[it.Value] = true
	}
	// Recall should be high (missing items can only result from orphaned
	// copies that never reached their partition).
	missing := 0
	for v := range want {
		if !got[v] {
			missing++
		}
	}
	recall := 1 - float64(missing)/float64(len(want)+1)
	if recall < 0.85 {
		t.Errorf("range query recall %.2f too low (%d of %d missing)", recall, missing, len(want))
	}
	if res.Partitions < 2 {
		t.Errorf("range query should span multiple partitions, got %d", res.Partitions)
	}
}

func TestQueryUnderChurn(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 3, DoneAfterIdle: 3, MaxRefs: 4}
	c := newTestCluster(t, 48, 10, workload.Uniform{}, cfg, 10)
	c.replicateAll(t)
	c.construct(t, 60)
	// Take 25% of the peers offline.
	offline := map[int]bool{}
	for len(offline) < len(c.peers)/4 {
		offline[c.rng.Intn(len(c.peers))] = true
	}
	for idx := range offline {
		c.sim.SetOnline(c.peers[idx].Addr(), false)
	}
	ctx := context.Background()
	items := c.allItems()
	success, attempts := 0, 0
	for i := 0; i < 80; i++ {
		it := items[c.rng.Intn(len(items))]
		originIdx := c.rng.Intn(len(c.peers))
		if offline[originIdx] {
			continue
		}
		attempts++
		res, err := c.peers[originIdx].Query(ctx, it.Key)
		if err != nil {
			continue
		}
		if len(res.Items) > 0 {
			success++
		}
	}
	if attempts == 0 {
		t.Fatal("no query attempts")
	}
	rate := float64(success) / float64(attempts)
	// The paper reports 95-100% success under churn; with only 48 peers and
	// a quarter offline we accept a slightly lower bar.
	if rate < 0.7 {
		t.Errorf("query success rate under churn %.2f too low", rate)
	}
}

func TestSkewedWorkloadBalancesStorage(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 2, DoneAfterIdle: 3}
	c := newTestCluster(t, 48, 10, workload.NewPareto(1.0), cfg, 11)
	c.replicateAll(t)
	c.construct(t, 80)
	// Under a skewed distribution paths must become unbalanced (deep where
	// the data is dense) — that is the whole point of the data-oriented
	// overlay.
	maxDepth := 0
	for _, p := range c.peers {
		if d := p.Path().Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 2 {
		t.Errorf("skewed workload should produce deeper paths, max depth %d", maxDepth)
	}
}

func TestAntiEntropy(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 12})
	cfg := Config{MaxKeys: 100, MinReplicas: 2, Seed: 12}
	a := New(cfg, sim.Endpoint("A"))
	b := New(cfg, sim.Endpoint("B"))
	a.AddItems([]replication.Item{{Key: keyspace.MustFromString("0001"), Value: "onlyA"}})
	b.AddItems([]replication.Item{{Key: keyspace.MustFromString("0010"), Value: "onlyB"}})
	got, err := a.AntiEntropy(context.Background(), "B")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("anti-entropy received %d items, want 1", got)
	}
	if a.Store().Len() != 2 || b.Store().Len() != 2 {
		t.Error("both replicas should hold both items")
	}
}

func TestRunConstructionLoop(t *testing.T) {
	cfg := Config{MaxKeys: 1000, MinReplicas: 2, DoneAfterIdle: 2}
	c := newTestCluster(t, 8, 3, workload.Uniform{}, cfg, 13)
	ctx := context.Background()
	p := c.peers[0]
	selector := func() (network.Addr, error) {
		return c.peers[1+c.rng.Intn(len(c.peers)-1)].Addr(), nil
	}
	n, err := p.RunConstruction(ctx, ConstructionOptions{Select: selector, MaxInteractions: 20})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("construction loop should have interacted at least once")
	}
	if !p.Done() && n < 20 {
		t.Error("loop ended early without convergence")
	}
	if _, err := p.RunConstruction(ctx, ConstructionOptions{}); err == nil {
		t.Error("missing selector should be rejected")
	}
}

func TestPingAndUnknownMessage(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 14})
	cfg := Config{Seed: 14}
	a := New(cfg, sim.Endpoint("A"))
	b := New(cfg, sim.Endpoint("B"))
	_ = b
	raw, err := a.transport.Call(context.Background(), "B", PingRequest{From: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.(PingResponse); !ok {
		t.Errorf("unexpected ping response %T", raw)
	}
	if _, err := a.transport.Call(context.Background(), "B", struct{ X int }{1}); err == nil {
		t.Error("unknown message type should be rejected")
	}
}

func TestInteractWithSelfOrEmpty(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 15})
	a := New(Config{Seed: 15}, sim.Endpoint("A"))
	if _, err := a.Interact(context.Background(), a.Addr()); err == nil {
		t.Error("self interaction should fail")
	}
	if _, err := a.Interact(context.Background(), ""); err == nil {
		t.Error("empty partner should fail")
	}
}

func TestMetricsAccounting(t *testing.T) {
	cfg := Config{MaxKeys: 5, MinReplicas: 1, DoneAfterIdle: 3}
	c := newTestCluster(t, 16, 10, workload.Uniform{}, cfg, 16)
	c.replicateAll(t)
	c.construct(t, 40)
	var interactions, keysMoved float64
	for _, p := range c.peers {
		interactions += p.Metrics.Interactions.Value()
		keysMoved += p.Metrics.KeysMoved.Value()
	}
	if interactions == 0 {
		t.Error("no interactions recorded")
	}
	if keysMoved == 0 {
		t.Error("no key movement recorded")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.MaxKeys <= 0 || c.MinReplicas <= 0 || c.MaxDepth <= 0 || c.MaxRefs <= 0 || c.DoneAfterIdle <= 0 || c.QueryTTL <= 0 {
		t.Errorf("normalize left zero values: %+v", c)
	}
	d := DefaultConfig()
	if d.MaxKeys != 10*d.MinReplicas {
		t.Errorf("default config should use dmax = 10*nmin: %+v", d)
	}
}
