package overlay

import (
	"context"
	"errors"
	"time"

	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// This file implements the initiator side of the construction protocol: the
// pre-construction replication push, single construction interactions, and
// the construction loop a peer runs until it detects convergence.

// PartnerSelector supplies interaction partners, typically by a random walk
// on the pre-existing unstructured overlay. It returns an error when no
// partner is currently available.
type PartnerSelector func() (network.Addr, error)

// ErrNoPartner is returned by construction rounds when the selector cannot
// provide a partner.
var ErrNoPartner = errors.New("overlay: no interaction partner available")

// ReplicateTo pushes the peer's current items to the given peers, which is
// the pre-construction replication phase of Section 4.2: before partitioning
// starts, every data key is replicated to MinReplicas randomly chosen peers
// so the replica-count estimation works and no key is lost during the
// shuffle.
func (p *Peer) ReplicateTo(ctx context.Context, targets []network.Addr) error {
	return p.ReplicateItems(ctx, p.store.Items(), targets)
}

// ReplicateItems pushes the given items (typically the peer's own original
// data, excluding copies received from others) to the target peers.
func (p *Peer) ReplicateItems(ctx context.Context, items []replication.Item, targets []network.Addr) error {
	var firstErr error
	for _, t := range targets {
		if t == p.Addr() {
			continue
		}
		req := ReplicateRequest{From: p.Addr(), Path: p.Path(), Items: items, Replicas: p.Replicas()}
		p.Metrics.KeysMoved.Add(float64(len(items)))
		p.Metrics.MaintenanceBytes.Add(float64(req.WireSize()))
		if _, err := p.transport.Call(ctx, t, req); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AntiEntropy reconciles the peer's partition content with one known
// replica, returning how many items were received. It is used during the
// operational phase to keep replicas synchronized. Tombstones travel in both
// directions before the items, so a delete applied at either replica removes
// the pair at both and is never resurrected by the item exchange.
func (p *Peer) AntiEntropy(ctx context.Context, replica network.Addr) (int, error) {
	path := p.Path()
	req := ReplicateRequest{
		From:        p.Addr(),
		Path:        path,
		Items:       p.store.ItemsWithPrefix(path),
		Tombstones:  p.store.TombstonesWithPrefix(path),
		AntiEntropy: true,
		Replicas:    p.Replicas(),
	}
	p.Metrics.MaintenanceBytes.Add(float64(req.WireSize()))
	resp, err := p.transport.Call(ctx, replica, req)
	if err != nil {
		return 0, err
	}
	rep, ok := resp.(ReplicateResponse)
	if !ok {
		return 0, errors.New("overlay: unexpected anti-entropy response type")
	}
	p.Metrics.MaintenanceBytes.Add(float64(rep.WireSize()))
	p.store.AddTombstones(rep.Tombstones)
	added := p.store.AddAll(rep.Items)
	if !rep.Path.SamePartition(path) {
		// The "replica" moved to a different partition (stale entry from
		// before a split): drop it so the set stays meaningful.
		p.removeReplica(replica)
		return added, nil
	}
	p.mu.Lock()
	for _, r := range rep.Replicas {
		p.addReplicaLocked(r)
	}
	p.mu.Unlock()
	return added, nil
}

// Interact performs one construction interaction with the given partner and
// returns the action that resulted. Referrals are followed up to two hops,
// as in the paper's refer interaction.
func (p *Peer) Interact(ctx context.Context, partner network.Addr) (Action, error) {
	return p.interact(ctx, partner, 2)
}

func (p *Peer) interact(ctx context.Context, partner network.Addr, referralsLeft int) (Action, error) {
	if partner == "" || partner == p.Addr() {
		return ActionNone, ErrNoPartner
	}
	// Snapshot local state without holding the lock across the RPC.
	p.mu.Lock()
	path := p.table.Path()
	est := p.decider.EstimateP0(p.store.Keys(), path, p.rng)
	routingPath, routingRefs := p.table.Snapshot()
	replicas := p.snapshotReplicasLocked()
	done := p.done
	p.mu.Unlock()

	req := ExchangeRequest{
		From:        p.Addr(),
		Path:        path,
		Estimate:    est,
		Items:       p.store.ItemsWithPrefix(path),
		RoutingPath: routingPath,
		RoutingRefs: routingRefs,
		Replicas:    replicas,
		Done:        done,
	}
	p.Metrics.Interactions.Add(1)
	p.Metrics.MaintenanceBytes.Add(float64(req.WireSize()))
	raw, err := p.transport.Call(ctx, partner, req)
	if err != nil {
		return ActionNone, err
	}
	resp, ok := raw.(ExchangeResponse)
	if !ok {
		return ActionNone, errors.New("overlay: unexpected exchange response type")
	}
	p.Metrics.MaintenanceBytes.Add(float64(resp.WireSize()))
	action := p.applyExchange(req, resp)
	p.persistPathMeta() // the exchange may have moved the path

	// Follow a referral to a peer with a better path match, which is how
	// peers from foreign partitions route each other towards useful
	// interactions.
	if action == ActionRefer && resp.Referral != "" && resp.Referral != p.Addr() && referralsLeft > 0 {
		if a, err := p.interact(ctx, resp.Referral, referralsLeft-1); err == nil && a != ActionNone && a != ActionRefer {
			return a, nil
		}
	}
	return action, nil
}

// applyExchange applies the responder's instructions to the initiator's
// state. The request carries the initiator's path at the time it was built;
// if the path has changed concurrently the path-changing part of the
// response is discarded (optimistic concurrency).
func (p *Peer) applyExchange(req ExchangeRequest, resp ExchangeResponse) Action {
	p.mu.Lock()
	defer p.mu.Unlock()

	current := p.table.Path()
	pathUnchanged := current == req.Path

	// Always merge the responder's routing snapshot and explicit refs that
	// fall within the current path.
	p.table.MergeFrom(resp.RoutingPath, resp.RoutingRefs)

	switch resp.Action {
	case ActionSplit, ActionExtend:
		if !pathUnchanged || !resp.NewPathSet {
			// Concurrent interaction already moved this peer on; keep the
			// data we received but do not change the path again.
			p.store.AddAll(resp.Items)
			p.Metrics.KeysMoved.Add(float64(len(resp.Items)))
			return ActionNone
		}
		newPath := resp.NewPath
		bit := newPath.Bit(newPath.Depth() - 1)
		// Extend the path; the reference for the new level comes from
		// resp.Refs (there is always at least one for a split/extend with
		// referential integrity).
		p.table.SetPath(newPath)
		for _, lr := range resp.Refs {
			p.table.Add(lr.Level, lr.Ref)
		}
		p.store.AddAll(resp.Items)
		p.Metrics.KeysMoved.Add(float64(len(resp.Items)))
		if resp.TakenOver {
			// The responder absorbed the items outside our new path, so we
			// can drop our copies.
			p.store.RemovePrefix(newPath.Parent().Child(1 - bit))
		}
		p.clearReplicasLocked()
		p.markProductiveLocked()
		return resp.Action

	case ActionReplicate:
		added := p.store.AddAll(resp.Items)
		p.Metrics.KeysMoved.Add(float64(len(resp.Items)))
		if pathUnchanged {
			p.addReplicaLocked(resp.From)
			for _, r := range resp.Replicas {
				p.addReplicaLocked(r)
			}
		}
		// A replicate response means the responder judged the partition not
		// splittable right now; if it also taught us nothing new, this
		// interaction counts towards convergence.
		if added == 0 {
			p.markIdleLocked()
		} else {
			p.markProductiveLocked()
		}
		return ActionReplicate

	case ActionRefer:
		p.store.AddAll(resp.Items)
		p.Metrics.KeysMoved.Add(float64(len(resp.Items)))
		for _, lr := range resp.Refs {
			p.table.Add(lr.Level, lr.Ref)
		}
		return ActionRefer

	default:
		// ActionNone: if we are not overloaded this still counts towards
		// convergence detection.
		if pathUnchanged && p.store.CountWithPrefix(current) <= p.cfg.MaxKeys {
			p.markIdleLocked()
		}
		return ActionNone
	}
}

// ConstructionOptions parameterise the construction loop.
type ConstructionOptions struct {
	// Select supplies interaction partners.
	Select PartnerSelector
	// MaxInteractions bounds the number of interactions (0 = unbounded).
	MaxInteractions int
	// IdlePause is how long the peer waits after an unproductive or failed
	// interaction before trying again (peers that are "ahead of the crowd"
	// back off and wait to be contacted).
	IdlePause time.Duration
}

// RunConstruction drives the peer's construction loop until the context is
// cancelled, the peer converges, or MaxInteractions is reached. It returns
// the number of interactions initiated.
func (p *Peer) RunConstruction(ctx context.Context, opts ConstructionOptions) (int, error) {
	if opts.Select == nil {
		return 0, errors.New("overlay: construction requires a partner selector")
	}
	interactions := 0
	consecutiveFailures := 0
	for {
		if ctx.Err() != nil {
			return interactions, ctx.Err()
		}
		if p.Done() {
			return interactions, nil
		}
		if opts.MaxInteractions > 0 && interactions >= opts.MaxInteractions {
			return interactions, nil
		}
		partner, err := opts.Select()
		if err != nil {
			if pauseErr := pause(ctx, opts.IdlePause); pauseErr != nil {
				return interactions, pauseErr
			}
			continue
		}
		interactions++
		action, err := p.Interact(ctx, partner)
		switch {
		case err != nil:
			consecutiveFailures++
			if consecutiveFailures >= 2 {
				// After repeated failures, back off and wait to be
				// contacted (Section 4.2).
				if pauseErr := pause(ctx, opts.IdlePause); pauseErr != nil {
					return interactions, pauseErr
				}
				consecutiveFailures = 0
			}
		case action == ActionNone || action == ActionRefer:
			consecutiveFailures = 0
			if pauseErr := pause(ctx, opts.IdlePause); pauseErr != nil {
				return interactions, pauseErr
			}
		default:
			consecutiveFailures = 0
		}
	}
}

// pause sleeps for d (if positive) or until the context is cancelled.
func pause(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
