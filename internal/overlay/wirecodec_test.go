package overlay

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/wire"
)

// goldenPath is the checked-in file pinning the exact binary encoding of
// every protocol message. The field order inside each codec is the wire
// format: if this test fails, the encoding changed and deployed clusters
// would disagree — bump the protocol deliberately (and regenerate with
// PGRID_REGEN_GOLDEN=1) only when that is intended.
const goldenPath = "testdata/wire_golden.txt"

// seedName renders a stable per-message label for the golden file.
func seedName(msg any) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", msg), "overlay.")
}

func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open golden vectors (regenerate with PGRID_REGEN_GOLDEN=1): %v", err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexBytes, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		out[name] = hexBytes
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenWireVectors pins the binary encoding of every registered
// protocol message byte for byte.
func TestGoldenWireVectors(t *testing.T) {
	if os.Getenv("PGRID_REGEN_GOLDEN") != "" {
		var b strings.Builder
		b.WriteString("# Golden binary wire vectors: <message type> <hex of AppendWire(nil)>.\n")
		b.WriteString("# Regenerate with PGRID_REGEN_GOLDEN=1 go test ./internal/overlay -run TestGoldenWireVectors\n")
		for _, msg := range wireSeedMessages() {
			m, ok := msg.(wire.Marshaler)
			if !ok {
				t.Fatalf("%T does not implement wire.Marshaler", msg)
			}
			fmt.Fprintf(&b, "%s %s\n", seedName(msg), hex.EncodeToString(m.AppendWire(nil)))
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	golden := loadGolden(t)
	seen := map[string]bool{}
	for _, msg := range wireSeedMessages() {
		name := seedName(msg)
		seen[name] = true
		m, ok := msg.(wire.Marshaler)
		if !ok {
			t.Errorf("%s does not implement wire.Marshaler", name)
			continue
		}
		got := hex.EncodeToString(m.AppendWire(nil))
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s missing from golden vectors (regenerate with PGRID_REGEN_GOLDEN=1)", name)
			continue
		}
		if got != want {
			t.Errorf("%s wire encoding changed:\n got  %s\n want %s", name, got, want)
		}
	}
	for name := range golden {
		if !seen[name] {
			t.Errorf("golden vector %s has no seed message", name)
		}
	}
}

// TestEveryMessageHasBinaryCodec keeps the registry honest: a newly added
// protocol message that forgets its wire codec would silently fall back to
// JSON bodies.
func TestEveryMessageHasBinaryCodec(t *testing.T) {
	for _, msg := range wireSeedMessages() {
		if _, ok := msg.(wire.Marshaler); !ok {
			t.Errorf("%T lacks AppendWire", msg)
		}
		ptr := reflect.New(reflect.TypeOf(msg)).Interface()
		if _, ok := ptr.(wire.Unmarshaler); !ok {
			t.Errorf("*%T lacks UnmarshalWire", msg)
		}
	}
}

// TestBinaryWireRoundTripsEveryMessage round-trips every protocol message
// through the full binary frame codec (envelope, fragmentation layer,
// typed body) and requires bit-exact field recovery.
func TestBinaryWireRoundTripsEveryMessage(t *testing.T) {
	for _, msg := range wireSeedMessages() {
		data, err := network.EncodeMessageBinary("codec-test", msg, 0)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		from, payload, err := network.DecodeMessageBinary(data)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if from != "codec-test" {
			t.Errorf("%T: from = %q", msg, from)
		}
		if !reflect.DeepEqual(payload, msg) {
			t.Errorf("%T: binary round trip mismatch:\n got  %+v\n want %+v", msg, payload, msg)
		}
		// A fragmented encoding must reassemble to the same value.
		frag, err := network.EncodeMessageBinary("codec-test", msg, 512)
		if err != nil {
			t.Fatalf("fragment %T: %v", msg, err)
		}
		_, payload, err = network.DecodeMessageBinary(frag)
		if err != nil {
			t.Fatalf("decode fragmented %T: %v", msg, err)
		}
		if !reflect.DeepEqual(payload, msg) {
			t.Errorf("%T: fragmented round trip mismatch", msg)
		}
	}
}

// TestJSONBinaryCrossCompat pins what mixed-version clusters rely on: the
// JSON and binary codecs decode the same message to the same value, so a
// peer may receive either encoding of a message and behave identically.
func TestJSONBinaryCrossCompat(t *testing.T) {
	for _, msg := range wireSeedMessages() {
		jsonData, err := network.EncodeMessage("cross", msg)
		if err != nil {
			t.Fatalf("json encode %T: %v", msg, err)
		}
		_, viaJSON, err := network.DecodeMessage(jsonData)
		if err != nil {
			t.Fatalf("json decode %T: %v", msg, err)
		}
		binData, err := network.EncodeMessageBinary("cross", msg, 0)
		if err != nil {
			t.Fatalf("binary encode %T: %v", msg, err)
		}
		_, viaBinary, err := network.DecodeMessageBinary(binData)
		if err != nil {
			t.Fatalf("binary decode %T: %v", msg, err)
		}
		if !reflect.DeepEqual(viaJSON, viaBinary) {
			t.Errorf("%T: codecs disagree:\n json   %+v\n binary %+v", msg, viaJSON, viaBinary)
		}
		if len(binData) >= len(jsonData) {
			t.Errorf("%T: binary encoding (%d B) not smaller than JSON (%d B)", msg, len(binData), len(jsonData))
		}
	}
}

// TestBinaryDecodeRejectsCorruptKeys checks the key decoder's domain
// validation: a length beyond 64 bits or non-canonical spare bits must be
// rejected, never panic or mis-decode.
func TestBinaryDecodeRejectsCorruptKeys(t *testing.T) {
	cases := [][]byte{
		wire.AppendUvarint(wire.AppendUvarint(nil, 65), 0),    // length 65
		wire.AppendUvarint(wire.AppendUvarint(nil, 2), 0b101), // 3 bits under length 2
		wire.AppendUvarint(wire.AppendUvarint(nil, 0), 1),     // bits under length 0
	}
	for i, data := range cases {
		d := wire.NewDecoder(data)
		decodeKey(d)
		if d.Err() == nil {
			t.Errorf("case %d: corrupt key accepted", i)
		}
	}
}

// TestKeyCodecExhaustiveLengths round-trips keys of every length through
// the compact encoding.
func TestKeyCodecExhaustiveLengths(t *testing.T) {
	for length := 0; length <= 64; length++ {
		bits := uint64(0xA5A5A5A5A5A5A5A5)
		k, err := keyspace.FromBits(bits, length)
		if err != nil {
			t.Fatal(err)
		}
		d := wire.NewDecoder(appendKey(nil, k))
		got := decodeKey(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("len %d: %v", length, err)
		}
		if !got.Equal(k) {
			t.Errorf("len %d: round trip %v != %v", length, got, k)
		}
	}
}
