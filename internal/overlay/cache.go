package overlay

import (
	"container/list"
	"sync"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// This file implements the query-path answer cache. Peers along a
// successful exact-lookup route memoize the answer together with a
// freshness token: the responsible replica's store logical clock at answer
// time. A cached entry is only ever served after a one-round-trip clock
// probe to that same replica confirms the token still matches — every
// visible mutation of a replica store (routed insert/delete, anti-entropy
// merge, tombstone compaction) advances its clock, so writes invalidate
// cached answers naturally and read-your-writes survives. The win over
// re-routing is that a probe is one hop carrying a few dozen bytes, while
// a routed lookup is several hops ending in an item-carrying response from
// an already-hot replica.

// cacheEntry is one memoized exact-lookup answer.
type cacheEntry struct {
	key   string // key bit-string, the map key
	items []replication.Item
	// clock is the responsible replica's store clock when the answer was
	// produced; the entry is served only while a probe of that replica
	// returns the same value.
	clock       uint64
	responsible network.Addr
	path        keyspace.Path
	expires     time.Time
}

// queryCache is a bounded LRU of exact-lookup answers. nil *queryCache is
// valid and behaves as an always-miss cache, so the query path needs no
// enabled-check.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

// newQueryCache returns a cache holding up to capacity entries, each living
// at most ttl. A capacity <= 0 returns nil (caching disabled).
func newQueryCache(capacity int, ttl time.Duration) *queryCache {
	if capacity <= 0 {
		return nil
	}
	if ttl <= 0 {
		ttl = DefaultQueryCacheTTL
	}
	return &queryCache{
		cap:     capacity,
		ttl:     ttl,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the entry of key if present and not expired, refreshing its
// LRU position. Expired entries are removed on the way.
func (c *queryCache) get(key keyspace.Key, now time.Time) (cacheEntry, bool) {
	if c == nil {
		return cacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key.String()]
	if !ok {
		return cacheEntry{}, false
	}
	ent := el.Value.(*cacheEntry)
	if now.After(ent.expires) {
		c.removeLocked(el)
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	return *ent, true
}

// put memoizes an answer, evicting the least recently used entry when full.
func (c *queryCache) put(key keyspace.Key, items []replication.Item, clock uint64, responsible network.Addr, path keyspace.Path, now time.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ks := key.String()
	if el, ok := c.entries[ks]; ok {
		ent := el.Value.(*cacheEntry)
		ent.items = items
		ent.clock = clock
		ent.responsible = responsible
		ent.path = path
		ent.expires = now.Add(c.ttl)
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		c.removeLocked(c.ll.Back())
	}
	ent := &cacheEntry{
		key:         ks,
		items:       items,
		clock:       clock,
		responsible: responsible,
		path:        path,
		expires:     now.Add(c.ttl),
	}
	c.entries[ks] = c.ll.PushFront(ent)
}

// invalidate drops the entry of key, if any.
func (c *queryCache) invalidate(key keyspace.Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key.String()]; ok {
		c.removeLocked(el)
	}
}

// len reports the number of entries, expired or not.
func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *queryCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
}
