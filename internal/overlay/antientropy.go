package overlay

import (
	"context"
	"errors"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// This file implements the digest/delta anti-entropy protocol that replaced
// the full-set exchange: instead of shipping the partition's entire item and
// tombstone set to a replica every maintenance tick, the peers first compare
// cheap Merkle-style bucket digests and then transfer only what actually
// differs. Reconciliation cost is proportional to the delta, not the
// dataset, so steady-state maintenance bandwidth stays flat as lifetime
// writes grow.
//
// One sync between an initiator and a replica proceeds as follows:
//
//  1. Root round: the initiator sends the digest of its whole partition
//     plus Since, the replica's store clock at their last completed sync.
//     If the digests match the replicas are identical and the sync is done
//     at the cost of two small messages — the steady-state common case.
//  2. Exact delta: when Since is usable (it does not predate the replica's
//     tombstone-GC floor), the initiator pushes everything it changed since
//     the last sync and pulls everything the replica changed — one round
//     trip carrying only the modified pairs.
//  3. Digest walk: without a usable baseline (first contact), the peers
//     recurse through bucket digests — 2^digestWalkWidth children per
//     mismatched bucket per round, bounded by replication.DigestDepth — and
//     then exchange only the content of the mismatched leaf buckets.
//  4. Full sync: when the generations are incomparable because one side
//     pruned tombstones the other never saw (a post-GC rejoin), deltas
//     could silently resurrect deleted pairs. The stale side instead
//     replaces its partition content wholesale with the fresh side's
//     (replication.Store.ReplaceWithin), in either direction: the initiator
//     rebuild-pulls when the replica reports it stale, and rebuild-pushes
//     when its own GC floor has passed the replica's last sync.
//
// Sync baselines (the per-replica pair of store clocks) are tracked by the
// initiator only and advanced strictly after the content exchange
// completed, so a lost response can never mark a replica fresher than it
// is.

// Parameters of the digest walk.
const (
	// digestWalkWidth is the number of prefix bits one walk round descends:
	// every mismatched bucket is split into 2^digestWalkWidth children.
	digestWalkWidth = 4
	// digestLeafLimit is the bucket size below which the walk stops
	// recursing and transfers the bucket's content directly.
	digestLeafLimit = 16
)

// SyncKind classifies the outcome of one anti-entropy sync.
type SyncKind string

// Sync outcomes.
const (
	// SyncNone means no sync ran (no replica known, or the round failed).
	SyncNone SyncKind = ""
	// SyncInSync means the root digests matched and nothing was
	// transferred.
	SyncInSync SyncKind = "insync"
	// SyncDelta means an exact delta since the last sync was exchanged.
	SyncDelta SyncKind = "delta"
	// SyncWalk means a digest walk located the differing buckets, whose
	// content was then exchanged.
	SyncWalk SyncKind = "walk"
	// SyncRebuildPull means this peer was stale past the replica's GC
	// horizon and replaced its partition content with the replica's.
	SyncRebuildPull SyncKind = "rebuild-pull"
	// SyncRebuildPush means the replica was stale past this peer's GC
	// horizon and was rebuilt from this peer's content.
	SyncRebuildPush SyncKind = "rebuild-push"
	// SyncFullSet means the legacy full-set exchange ran (the pre-digest
	// baseline selected by Config.FullSyncAntiEntropy).
	SyncFullSet SyncKind = "full-set"
)

// syncState is the initiator-side baseline of the last completed sync with
// one replica.
type syncState struct {
	// mine is this peer's store clock at the last completed sync: the
	// replica has seen every local change up to it.
	mine uint64
	// theirs is the replica's store clock at that sync: this peer has seen
	// every remote change up to it, and sends it as Since.
	theirs uint64
}

// SyncReport summarises one digest/delta sync.
type SyncReport struct {
	// Kind is the protocol path the sync took.
	Kind SyncKind
	// Received is the number of items and tombstones applied locally.
	Received int
	// Sent is the number of items and tombstones pushed to the replica.
	Sent int
}

// errSyncAborted reports a sync that could not complete this tick (the next
// tick retries from the recorded baseline).
var errSyncAborted = errors.New("overlay: anti-entropy sync aborted")

// syncStateOf returns the recorded baseline for a replica.
func (p *Peer) syncStateOf(addr network.Addr) syncState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncStates[addr]
}

// noteSync records a completed sync baseline, durably when the store is
// persistent — which is what lets a restarted peer resume exact-delta
// syncs instead of degrading to a first-contact walk (or, after a GC
// prune, to a rebuild).
func (p *Peer) noteSync(addr network.Addr, st syncState) {
	p.mu.Lock()
	if p.syncStates == nil {
		p.syncStates = make(map[network.Addr]syncState)
	}
	p.syncStates[addr] = st
	p.mu.Unlock()
	if p.store.Persistent() {
		p.store.RecordBaseline(string(addr), replication.Baseline{Mine: st.mine, Theirs: st.theirs})
	}
}

// compactSyncStates bounds the per-replica baseline metadata. Baselines of
// peers that merely left the replica set are deliberately kept: a transient
// call failure drops the replica, and losing the baseline with it would
// degrade the next sync to an incomparable first contact — which, once any
// tombstone was ever GC'd, cannot be delta-merged. Only when the map
// clearly outgrows the replica set (long-term churn) are foreign entries
// pruned.
func (p *Peer) compactSyncStates() {
	p.mu.Lock()
	var dropped []network.Addr
	if len(p.syncStates) > 4*(len(p.replicas)+4) {
		for addr := range p.syncStates {
			if !p.replicas[addr] {
				delete(p.syncStates, addr)
				dropped = append(dropped, addr)
			}
		}
	}
	p.mu.Unlock()
	if len(dropped) > 0 && p.store.Persistent() {
		// Mirror the compaction into the durable baselines so the
		// persistence map stays bounded under long-term churn too.
		for _, addr := range dropped {
			p.store.RecordBaseline(string(addr), replication.Baseline{})
		}
	}
}

// SyncReplica reconciles the peer's partition content with one replica via
// the digest/delta protocol and returns what happened. It is the
// operational-phase replacement of the full-set AntiEntropy.
func (p *Peer) SyncReplica(ctx context.Context, replica network.Addr) (SyncReport, error) {
	path := p.Path()
	st := p.syncStateOf(replica)
	myClock := p.store.Clock()
	rootHash, rootCount := p.store.Digest(keyspace.Path(path))

	req := DigestRequest{
		From:     p.Addr(),
		Path:     path,
		Root:     true,
		Clock:    myClock,
		Since:    st.theirs,
		Buckets:  []replication.BucketDigest{{Prefix: keyspace.Path(path), Hash: rootHash, Count: rootCount}},
		Replicas: p.Replicas(),
	}
	raw, err := p.maintCall(ctx, replica, req)
	if err != nil {
		return SyncReport{}, err
	}
	resp, ok := raw.(DigestResponse)
	if !ok {
		return SyncReport{}, errors.New("overlay: unexpected digest response type")
	}
	if !resp.Path.SamePartition(path) {
		// The "replica" moved to a different partition (stale entry from
		// before a split): drop it so the set stays meaningful.
		p.removeReplica(replica)
		return SyncReport{}, nil
	}
	p.absorbReplicas(resp.Replicas)

	switch {
	case resp.InSync:
		p.noteSync(replica, syncState{mine: myClock, theirs: resp.Clock})
		p.Metrics.SyncsInSync.Add(1)
		return SyncReport{Kind: SyncInSync}, nil

	case st.mine > 0 && p.store.GCFloor() > st.mine:
		// The replica's recorded baseline provably predates a tombstone
		// prune: it may hold stale live copies a delta merge would spread.
		// Replace its partition content wholesale. Without a baseline
		// (first contact) no staleness is proven and the digest walk merges
		// instead — wholesale-replacing an unknown peer could destroy
		// quorum-acked writes it never had a chance to sync out.
		return p.rebuildPush(ctx, replica, path, st, myClock)

	case resp.Incomparable:
		// The replica pruned tombstones this peer never pulled: rebuild the
		// local partition content from the replica.
		return p.rebuildPull(ctx, replica, path)

	case resp.DeltaOK:
		return p.deltaExchange(ctx, replica, path, st, myClock)

	default:
		return p.digestWalk(ctx, replica, path, st, myClock, resp.Mismatch, rootCount)
	}
}

// rebuildPush replaces the replica's partition content with this peer's.
func (p *Peer) rebuildPush(ctx context.Context, replica network.Addr, path keyspace.Path, st syncState, myClock uint64) (SyncReport, error) {
	// Pull the replica's still-comparable delta before replacing it:
	// everything it changed after the last completed sync is legitimate new
	// state — a stale live copy of a pair whose tombstone this peer pruned
	// necessarily predates the baseline and cannot appear in that delta —
	// so merging it first preserves fresh quorum-acked writes only that
	// replica holds. Only this peer's side is incomparable (its prunes
	// cannot be expressed as a delta), hence the asymmetric full replace.
	received := 0
	if st.theirs > 0 {
		pull := DeltaRequest{
			From: p.Addr(), Path: path, Clock: myClock, Since: st.theirs,
			Replicas: p.Replicas(),
		}
		if resp, err := p.callDelta(ctx, replica, pull); err == nil && !resp.Incomparable {
			received = p.applyContent(resp.Items, resp.Tombstones)
		}
	}
	items, tombs := p.store.ContentWithin([]keyspace.Path{path})
	req := DeltaRequest{
		From: p.Addr(), Path: path, Clock: p.store.Clock(),
		Full: true, Rebuild: true,
		Items: items, Tombstones: tombs,
		Replicas: p.Replicas(),
	}
	resp, err := p.callDelta(ctx, replica, req)
	if err != nil {
		return SyncReport{}, err
	}
	p.noteSync(replica, syncState{mine: myClock, theirs: resp.Clock})
	p.Metrics.SyncsFull.Add(1)
	return SyncReport{Kind: SyncRebuildPush, Received: received, Sent: len(items) + len(tombs)}, nil
}

// rebuildPull replaces this peer's partition content with the replica's.
func (p *Peer) rebuildPull(ctx context.Context, replica network.Addr, path keyspace.Path) (SyncReport, error) {
	req := DeltaRequest{
		From: p.Addr(), Path: path, Clock: p.store.Clock(),
		Full: true, Pull: true,
		Replicas: p.Replicas(),
	}
	resp, err := p.callDelta(ctx, replica, req)
	if err != nil {
		return SyncReport{}, err
	}
	// The baseline uses the clock taken atomically with the replacement: a
	// local write racing in right after it has a higher version and stays
	// delta-visible for the next push.
	clock := p.store.ReplaceWithin(path, resp.Items, resp.Tombstones)
	p.noteSync(replica, syncState{mine: clock, theirs: resp.Clock})
	p.Metrics.SyncsFull.Add(1)
	return SyncReport{Kind: SyncRebuildPull, Received: len(resp.Items) + len(resp.Tombstones)}, nil
}

// deltaExchange pushes everything changed locally since the last sync and
// pulls everything the replica changed since then.
func (p *Peer) deltaExchange(ctx context.Context, replica network.Addr, path keyspace.Path, st syncState, myClock uint64) (SyncReport, error) {
	items, tombs, ok := p.store.DeltaSinceWithPrefix(path, st.mine)
	if !ok {
		// A local GC raced past the baseline between ticks; the next tick
		// takes the rebuild-push path.
		return SyncReport{}, errSyncAborted
	}
	req := DeltaRequest{
		From: p.Addr(), Path: path, Clock: myClock, Since: st.theirs,
		Items: items, Tombstones: tombs,
		Replicas: p.Replicas(),
	}
	resp, err := p.callDelta(ctx, replica, req)
	if err != nil {
		return SyncReport{}, err
	}
	if resp.Incomparable {
		return SyncReport{}, errSyncAborted
	}
	received := p.applyContent(resp.Items, resp.Tombstones)
	p.noteSync(replica, syncState{mine: myClock, theirs: resp.Clock})
	p.Metrics.SyncsDelta.Add(1)
	return SyncReport{Kind: SyncDelta, Received: received, Sent: len(items) + len(tombs)}, nil
}

// digestWalk recurses through mismatched bucket digests and exchanges the
// content of the differing leaf buckets. The recursion is bounded: every
// round descends digestWalkWidth bits and stops at replication.DigestDepth,
// so a walk takes at most maxWalkRounds digest round trips regardless of
// how much the replicas diverge.
func (p *Peer) digestWalk(ctx context.Context, replica network.Addr, path keyspace.Path, st syncState, myClock uint64, mismatch []keyspace.Path, rootCount int) (SyncReport, error) {
	maxWalkRounds := replication.DigestDepth/digestWalkWidth + 1
	frontier := mismatch
	// Bucket counts come from the round that generated each prefix (the
	// root count for the opening mismatch), so the walk never re-scans the
	// store just to decide whether a bucket is a leaf.
	counts := map[keyspace.Path]int{}
	for _, prefix := range frontier {
		counts[prefix] = rootCount
	}
	var leaves []keyspace.Path
	for round := 0; round < maxWalkRounds && len(frontier) > 0; round++ {
		var buckets []replication.BucketDigest
		for _, prefix := range frontier {
			n, known := counts[prefix]
			if !known {
				_, n = p.store.Digest(prefix)
			}
			if len(prefix) >= replication.DigestDepth || n <= digestLeafLimit {
				leaves = append(leaves, prefix)
				continue
			}
			width := digestWalkWidth
			if len(prefix)+width > replication.DigestDepth {
				width = replication.DigestDepth - len(prefix)
			}
			kids := p.store.DigestChildren(prefix, width)
			for _, k := range kids {
				counts[k.Prefix] = k.Count
			}
			buckets = append(buckets, kids...)
		}
		if len(buckets) == 0 {
			break
		}
		req := DigestRequest{From: p.Addr(), Path: path, Clock: myClock, Buckets: buckets}
		raw, err := p.maintCall(ctx, replica, req)
		if err != nil {
			return SyncReport{}, err
		}
		resp, ok := raw.(DigestResponse)
		if !ok {
			return SyncReport{}, errors.New("overlay: unexpected digest response type")
		}
		frontier = resp.Mismatch
	}
	leaves = append(leaves, frontier...) // whatever is left mismatched at the bound
	if len(leaves) == 0 {
		return SyncReport{Kind: SyncWalk}, nil
	}
	items, tombs := p.store.ContentWithin(leaves)
	req := DeltaRequest{
		From: p.Addr(), Path: path, Clock: myClock, Since: st.theirs,
		Prefixes: leaves,
		Items:    items, Tombstones: tombs,
		Replicas: p.Replicas(),
	}
	resp, err := p.callDelta(ctx, replica, req)
	if err != nil {
		return SyncReport{}, err
	}
	if resp.Incomparable {
		return SyncReport{}, errSyncAborted
	}
	received := p.applyContent(resp.Items, resp.Tombstones)
	p.noteSync(replica, syncState{mine: myClock, theirs: resp.Clock})
	p.Metrics.SyncsDelta.Add(1)
	return SyncReport{Kind: SyncWalk, Received: received, Sent: len(items) + len(tombs)}, nil
}

// callDelta sends a DeltaRequest with maintenance byte accounting.
func (p *Peer) callDelta(ctx context.Context, replica network.Addr, req DeltaRequest) (DeltaResponse, error) {
	raw, err := p.maintCall(ctx, replica, req)
	if err != nil {
		return DeltaResponse{}, err
	}
	resp, ok := raw.(DeltaResponse)
	if !ok {
		return DeltaResponse{}, errors.New("overlay: unexpected delta response type")
	}
	if !resp.Path.SamePartition(req.Path) {
		p.removeReplica(replica)
		return DeltaResponse{}, errSyncAborted
	}
	p.absorbReplicas(resp.Replicas)
	return resp, nil
}

// maintCall performs one transport call with maintenance byte accounting on
// both directions.
func (p *Peer) maintCall(ctx context.Context, to network.Addr, req any) (any, error) {
	p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(req)))
	raw, err := p.transport.Call(ctx, to, req)
	if err != nil {
		return nil, err
	}
	p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(raw)))
	return raw, nil
}

// applyContent merges received tombstones before items, so a delete and its
// pair's stale live copy arriving together resolve to the delete.
func (p *Peer) applyContent(items, tombs []replication.Item) int {
	n := p.store.AddTombstones(tombs)
	n += p.store.AddAll(items)
	return n
}

// absorbReplicas merges gossiped replica addresses.
func (p *Peer) absorbReplicas(addrs []network.Addr) {
	if len(addrs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range addrs {
		p.addReplicaLocked(a)
	}
}

// handleAntiEntropy dispatches the digest/delta anti-entropy messages. It
// is kept out of Peer.handle so the hot query dispatch keeps a small stack
// frame (see the comment at the call site).
func (p *Peer) handleAntiEntropy(req any) (any, error) {
	switch m := req.(type) {
	case DigestRequest:
		return p.handleDigest(m), nil
	case DeltaRequest:
		return p.handleDelta(m), nil
	default:
		return nil, errors.New("overlay: unexpected anti-entropy request type")
	}
}

// handleDigest serves the responder side of a digest round.
func (p *Peer) handleDigest(req DigestRequest) DigestResponse {
	path := p.Path()
	resp := DigestResponse{Path: path, Clock: p.store.Clock()}
	if !req.Path.SamePartition(path) {
		return resp
	}
	p.mu.Lock()
	if req.From != "" {
		p.addReplicaLocked(req.From)
	}
	for _, a := range req.Replicas {
		p.addReplicaLocked(a)
	}
	resp.Replicas = p.snapshotReplicasLocked()
	p.mu.Unlock()

	if req.Root {
		if len(req.Buckets) != 1 {
			return resp
		}
		h, _ := p.store.Digest(req.Buckets[0].Prefix)
		switch {
		case h == req.Buckets[0].Hash:
			resp.InSync = true
		case req.Since > 0 && req.Since < p.store.GCFloor():
			// The initiator's baseline provably predates a tombstone prune:
			// its pushes could resurrect deleted pairs, and a delta cannot
			// reproduce the prunes. It must rebuild. A first contact
			// (Since 0) proves nothing either way and walks instead.
			resp.Incomparable = true
		case req.Since > 0:
			resp.DeltaOK = true
		default:
			resp.Mismatch = []keyspace.Path{req.Buckets[0].Prefix}
		}
		return resp
	}
	for _, b := range req.Buckets {
		h, _ := p.store.Digest(b.Prefix)
		if h != b.Hash {
			resp.Mismatch = append(resp.Mismatch, b.Prefix)
		}
	}
	return resp
}

// handleDelta serves the responder side of the content exchange.
func (p *Peer) handleDelta(req DeltaRequest) DeltaResponse {
	path := p.Path()
	// The clock is captured BEFORE the content snapshot and before any
	// merge: the initiator records it as its pull baseline, and a value
	// read later could cover a concurrent local write the snapshot missed —
	// permanently excluding it from every future delta. A conservative
	// (older) clock merely re-sends a few already-seen pairs next round,
	// which the merge ignores.
	resp := DeltaResponse{Path: path, Clock: p.store.Clock()}
	if !req.Path.SamePartition(path) {
		return resp
	}
	p.mu.Lock()
	if req.From != "" {
		p.addReplicaLocked(req.From)
	}
	for _, a := range req.Replicas {
		p.addReplicaLocked(a)
	}
	resp.Replicas = p.snapshotReplicasLocked()
	p.mu.Unlock()

	switch {
	case req.Rebuild:
		// The initiator is authoritative: this peer missed its GC window
		// and gets its partition content replaced. The post-replacement
		// clock is safe to report — the initiator has seen exactly the
		// installed content.
		resp.Clock = p.store.ReplaceWithin(req.Path, req.Items, req.Tombstones)
		resp.Applied = len(req.Items) + len(req.Tombstones)

	case req.Pull:
		resp.Items, resp.Tombstones = p.store.ContentWithin([]keyspace.Path{req.Path})

	case req.Since > 0 && req.Since < p.store.GCFloor():
		// GC ran after the digest round, or the initiator pushed while
		// stale: refuse the merge so nothing pruned can be resurrected.
		resp.Incomparable = true

	case req.Since > 0 && len(req.Prefixes) == 0 && !req.Full:
		items, tombs, ok := p.store.DeltaSinceWithPrefix(req.Path, req.Since)
		if !ok {
			resp.Incomparable = true
			break
		}
		resp.Applied = p.applyContent(req.Items, req.Tombstones)
		resp.Items, resp.Tombstones = items, tombs

	case len(req.Prefixes) > 0:
		resp.Applied = p.applyContent(req.Items, req.Tombstones)
		resp.Items, resp.Tombstones = p.store.ContentWithin(req.Prefixes)

	default:
		resp.Applied = p.applyContent(req.Items, req.Tombstones)
		resp.Items, resp.Tombstones = p.store.ContentWithin([]keyspace.Path{req.Path})
	}
	return resp
}
