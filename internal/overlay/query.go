package overlay

import (
	"context"
	"sort"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// This file implements query processing on the constructed overlay: exact
// key lookups by prefix routing (resolve the key bit by bit, forwarding to a
// routing reference as soon as the key diverges from the local path) and
// range queries by recursive fan-out into every sub-tree overlapping the
// range.

// QueryResult is the outcome of an exact-match query.
type QueryResult struct {
	// Items are the data items stored under the key at the responsible
	// peer.
	Items []replication.Item
	// Hops is the number of routing hops used to reach the responsible
	// peer (0 if the local peer was responsible).
	Hops int
	// Responsible is the peer that answered.
	Responsible network.Addr
}

// Query resolves an exact-match query for the given key, starting at this
// peer.
func (p *Peer) Query(ctx context.Context, key keyspace.Key) (QueryResult, error) {
	resp, err := p.resolveQuery(ctx, QueryRequest{Key: key, TTL: p.cfg.QueryTTL})
	if err != nil {
		return QueryResult{}, err
	}
	if !resp.Found {
		return QueryResult{}, errNotResponsible
	}
	p.Metrics.Queries.Add(1)
	p.Metrics.QueryHops.Add(float64(resp.Hops))
	return QueryResult{Items: resp.Items, Hops: resp.Hops, Responsible: resp.Responsible}, nil
}

// handleQuery serves a query received from another peer.
func (p *Peer) handleQuery(ctx context.Context, req QueryRequest) QueryResponse {
	resp, err := p.resolveQuery(ctx, req)
	if err != nil {
		return QueryResponse{Found: false, Hops: req.Hops}
	}
	return resp
}

// resolveQuery answers the query locally if this peer is responsible for
// the key, and otherwise forwards it to a routing reference at the level
// where the key diverges from the local path. Stale references (offline
// peers) are removed and alternative references tried, which is what keeps
// the success rate high under churn.
func (p *Peer) resolveQuery(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	if p.table.Responsible(req.Key) {
		return QueryResponse{
			Found:           true,
			Items:           p.store.Lookup(req.Key),
			Hops:            req.Hops,
			Responsible:     p.Addr(),
			ResponsiblePath: p.Path(),
		}, nil
	}
	if req.TTL <= 0 {
		return QueryResponse{}, errNotResponsible
	}
	_, level, _ := p.table.NextHop(req.Key)
	refs := p.table.Refs(level)
	// Shuffle the candidate references so alternative access paths share
	// the load.
	p.mu.Lock()
	p.rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
	p.mu.Unlock()
	forward := QueryRequest{Key: req.Key, Hops: req.Hops + 1, TTL: req.TTL - 1}
	for _, ref := range refs {
		p.Metrics.QueryBytes.Add(float64(forward.WireSize()))
		raw, err := p.transport.Call(ctx, ref.Addr, forward)
		if err != nil {
			// Remove the stale reference and try an alternative.
			p.table.Remove(ref.Addr)
			continue
		}
		resp, ok := raw.(QueryResponse)
		if !ok {
			continue
		}
		p.Metrics.QueryBytes.Add(float64(resp.WireSize()))
		if resp.Found {
			return resp, nil
		}
	}
	return QueryResponse{}, errNotResponsible
}

// RangeResult is the outcome of a range query.
type RangeResult struct {
	// Items are all items found with keys in the range, in key order.
	Items []replication.Item
	// Hops is the maximal hop count over the branches of the query.
	Hops int
	// Partitions is the number of distinct partitions that contributed.
	Partitions int
	// Incomplete reports that some sub-tree of the range could not be
	// reached.
	Incomplete bool
}

// RangeQuery returns all items with keys in [lo, hi), fanning the query out
// to every partition overlapping the range (a "shower" query in P-Grid
// terms: the local peer answers for its own partition and forwards a
// restricted sub-range to one reference per overlapping complementary
// sub-tree).
func (p *Peer) RangeQuery(ctx context.Context, r keyspace.Range) (RangeResult, error) {
	req := RangeRequest{Lo: r.Lo, Hi: r.Hi, HiUnbounded: r.HiUnbounded, TTL: p.cfg.QueryTTL}
	resp := p.handleRange(ctx, req)
	items := dedupeItems(resp.Items)
	p.Metrics.Queries.Add(1)
	p.Metrics.QueryHops.Add(float64(resp.Hops))
	return RangeResult{Items: items, Hops: resp.Hops, Partitions: resp.Partitions, Incomplete: resp.Incomplete}, nil
}

// handleRange serves a range query: collect local items in the range and
// recursively forward the parts of the range that belong to complementary
// sub-trees of the local path.
func (p *Peer) handleRange(ctx context.Context, req RangeRequest) RangeResponse {
	r := keyspace.Range{Lo: req.Lo, Hi: req.Hi, HiUnbounded: req.HiUnbounded}
	out := RangeResponse{Hops: req.Hops, Partitions: 1}
	out.Items = append(out.Items, p.store.ItemsInRange(r)...)
	p.Metrics.QueryBytes.Add(float64(out.WireSize()))
	if req.TTL <= 0 {
		out.Incomplete = true
		return out
	}
	path := p.Path()
	for level := 0; level < path.Depth(); level++ {
		sub := path.FlipAt(level)
		if !r.OverlapsPath(sub) {
			continue
		}
		// Restrict the forwarded range to the complementary sub-tree so
		// every partition is queried exactly once.
		iv := sub.Interval()
		lo, hi := r.Lo, r.Hi
		unbounded := r.HiUnbounded
		subLo := keyspace.MustFromFloat(iv.Lo, keyspace.DefaultDepth)
		subHi := keyspace.MustFromFloat(iv.Hi, keyspace.DefaultDepth)
		if subLo.Compare(lo) > 0 {
			lo = subLo
		}
		if iv.Hi < 1 && (unbounded || subHi.Compare(hi) < 0) {
			hi = subHi
			unbounded = false
		}
		forward := RangeRequest{Lo: lo, Hi: hi, HiUnbounded: unbounded, Hops: req.Hops + 1, TTL: req.TTL - 1}
		refs := p.table.Refs(level)
		answered := false
		for _, ref := range refs {
			p.Metrics.QueryBytes.Add(float64(forward.WireSize()))
			raw, err := p.transport.Call(ctx, ref.Addr, forward)
			if err != nil {
				p.table.Remove(ref.Addr)
				continue
			}
			resp, ok := raw.(RangeResponse)
			if !ok {
				continue
			}
			out.Items = append(out.Items, resp.Items...)
			out.Partitions += resp.Partitions
			if resp.Hops > out.Hops {
				out.Hops = resp.Hops
			}
			if resp.Incomplete {
				out.Incomplete = true
			}
			answered = true
			break
		}
		if !answered {
			out.Incomplete = true
		}
	}
	return out
}

// dedupeItems removes duplicate (key, value) pairs (replicas can return the
// same item via different branches) and sorts by key.
func dedupeItems(items []replication.Item) []replication.Item {
	seen := make(map[string]bool, len(items))
	out := items[:0]
	for _, it := range items {
		k := it.Key.String() + "\x00" + it.Value
		if !seen[k] {
			seen[k] = true
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		c := out[i].Key.Compare(out[j].Key)
		if c != 0 {
			return c < 0
		}
		return out[i].Value < out[j].Value
	})
	return out
}
