package overlay

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
)

// This file implements query processing on the constructed overlay: exact
// key lookups by prefix routing (resolve the key bit by bit, forwarding to a
// routing reference as soon as the key diverges from the local path) and
// range queries by recursive fan-out into every sub-tree overlapping the
// range.
//
// Both paths are concurrent. Exact-match forwarding races up to Alpha
// references at the divergence level (staggered by HedgeDelay) and takes the
// first responsible answer, so a single stale reference costs a hedge delay
// rather than a full timeout. Range ("shower") queries fan every overlapping
// complementary sub-tree out through a bounded worker pool and merge branch
// results as they arrive.

// QueryResult is the outcome of an exact-match query.
type QueryResult struct {
	// Items are the data items stored under the key at the responsible
	// peer.
	Items []replication.Item
	// Hops is the number of routing hops used to reach the responsible
	// peer (0 if the local peer was responsible).
	Hops int
	// Responsible is the peer that answered.
	Responsible network.Addr
	// Cached reports that the answer was served from a peer's answer cache
	// (revalidated against the responsible store's clock) rather than
	// resolved by the responsible partition.
	Cached bool
}

// QueryOptions tunes one exact-match query.
type QueryOptions struct {
	// Consistent bypasses the answer cache and shadow replicas along the
	// route: the query is resolved by the responsible partition itself.
	Consistent bool
}

// Query resolves an exact-match query for the given key, starting at this
// peer.
func (p *Peer) Query(ctx context.Context, key keyspace.Key) (QueryResult, error) {
	return p.QueryWith(ctx, key, QueryOptions{})
}

// QueryWith resolves an exact-match query with explicit options.
func (p *Peer) QueryWith(ctx context.Context, key keyspace.Key, opts QueryOptions) (QueryResult, error) {
	resp, err := p.resolveQuery(ctx, QueryRequest{Key: key, TTL: p.cfg.QueryTTL, Bypass: opts.Consistent})
	if err != nil {
		return QueryResult{}, err
	}
	if !resp.Found {
		return QueryResult{}, errNotResponsible
	}
	p.Metrics.Queries.Add(1)
	p.Metrics.QueryHops.Add(float64(resp.Hops))
	return QueryResult{Items: resp.Items, Hops: resp.Hops, Responsible: resp.Responsible, Cached: resp.Cached}, nil
}

// handleQuery serves a query received from another peer.
func (p *Peer) handleQuery(ctx context.Context, req QueryRequest) QueryResponse {
	resp, err := p.resolveQuery(ctx, req)
	if err != nil {
		return QueryResponse{Found: false, Hops: req.Hops}
	}
	return resp
}

// resolveQuery answers the query locally if this peer is responsible for
// the key, and otherwise forwards it to routing references at the level
// where the key diverges from the local path, racing up to Alpha of them.
// Stale references (offline peers) are removed and alternative references
// tried, which is what keeps the success rate high under churn.
func (p *Peer) resolveQuery(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	if p.table.Responsible(req.Key) {
		// Read the clock BEFORE the items: a write landing between the two
		// reads then leaves cached copies with a stale token (a harmless
		// probe miss on their next serve), never with stale items under a
		// fresh token.
		clock := p.store.Clock()
		p.noteRead()
		return QueryResponse{
			Found:           true,
			Items:           p.store.Lookup(req.Key),
			Hops:            req.Hops,
			Responsible:     p.Addr(),
			ResponsiblePath: p.Path(),
			Clock:           clock,
			Wide:            p.wideSet(),
		}, nil
	}
	if !req.Bypass {
		if resp, ok := p.cacheServe(ctx, req); ok {
			return resp, nil
		}
		if resp, ok := p.shadowServe(ctx, req); ok {
			return resp, nil
		}
	}
	if req.TTL <= 0 {
		return QueryResponse{}, errNotResponsible
	}
	_, level, _ := p.table.NextHop(req.Key)
	refs := p.shuffledRefs(level)
	forward := QueryRequest{Key: req.Key, Hops: req.Hops + 1, TTL: req.TTL - 1, Bypass: req.Bypass}
	raw, ok := p.raceCall(ctx, refs, forward, func(raw any) bool {
		resp, ok := raw.(QueryResponse)
		return ok && resp.Found
	})
	if !ok {
		return QueryResponse{}, errNotResponsible
	}
	resp := raw.(QueryResponse)
	if resp.Found {
		p.absorbWideRefs(level, resp)
		if !req.Bypass {
			p.cacheFill(req.Key, resp)
		}
	}
	return resp, nil
}

// cacheServe tries to answer the query from the local answer cache. A hit
// is only served after a one-hop clock probe of the entry's responsible
// replica confirms the freshness token; any mismatch (clock moved, path
// changed, replica unreachable) invalidates the entry and the query routes
// normally.
func (p *Peer) cacheServe(ctx context.Context, req QueryRequest) (QueryResponse, bool) {
	if p.cache == nil {
		return QueryResponse{}, false
	}
	ent, ok := p.cache.get(req.Key, p.now())
	if !ok {
		p.Metrics.CacheMisses.Add(1)
		return QueryResponse{}, false
	}
	probe := ClockRequest{From: p.Addr()}
	p.Metrics.QueryBytes.Add(float64(network.MessageSize(probe)))
	raw, err := p.transport.Call(ctx, ent.responsible, probe)
	if err == nil {
		p.Metrics.QueryBytes.Add(float64(network.MessageSize(raw)))
		if cr, ok := raw.(ClockResponse); ok && cr.Clock == ent.clock && cr.Path.SamePartition(ent.path) {
			p.Metrics.CacheHits.Add(1)
			return QueryResponse{
				Found:           true,
				Items:           ent.items,
				Hops:            req.Hops,
				Responsible:     ent.responsible,
				ResponsiblePath: ent.path,
				Clock:           ent.clock,
				Cached:          true,
			}, true
		}
	}
	p.cache.invalidate(req.Key)
	p.Metrics.CacheMisses.Add(1)
	return QueryResponse{}, false
}

// cacheFill memoizes a successful forwarded answer together with its
// freshness token.
func (p *Peer) cacheFill(key keyspace.Key, resp QueryResponse) {
	if p.cache == nil || resp.Responsible == "" {
		return
	}
	p.cache.put(key, resp.Items, resp.Clock, resp.Responsible, resp.ResponsiblePath, p.now())
}

// shuffledRefs returns the references at the given level in random order so
// alternative access paths share the load.
func (p *Peer) shuffledRefs(level int) []routing.Ref {
	refs := p.table.Refs(level)
	p.mu.Lock()
	p.rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
	p.mu.Unlock()
	return refs
}

// raceOutcome is one reference's attempt in a hedged race: the raw response
// or a nil raw on transport failure.
type raceOutcome struct {
	raw any
}

// launchRace starts up to alpha workers that forward req to the given
// references and report every attempt's outcome on the returned channel
// (exactly one outcome per reference unless rctx is cancelled first).
// Worker i defers its start by i*HedgeDelay, so with a positive hedge delay
// the second candidate only launches when the first has not answered
// promptly (hedged requests); with a zero delay all alpha candidates race
// immediately. References whose calls fail with a transport error are
// pruned from the routing table, and remaining candidates are handed to
// freed-up workers, so every reference is still tried — just no longer one
// full timeout at a time.
func (p *Peer) launchRace(rctx context.Context, refs []routing.Ref, req any) <-chan raceOutcome {
	alpha := p.queryAlpha()
	if alpha > len(refs) {
		alpha = len(refs)
	}
	hedge := p.hedgeDelay()
	pending := make(chan routing.Ref, len(refs))
	for _, ref := range refs {
		pending <- ref
	}
	close(pending)
	results := make(chan raceOutcome, len(refs))
	for i := 0; i < alpha; i++ {
		go func(stagger time.Duration) {
			if stagger > 0 {
				t := time.NewTimer(stagger)
				select {
				case <-rctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			for ref := range pending {
				if rctx.Err() != nil {
					return
				}
				p.Metrics.QueryBytes.Add(float64(network.MessageSize(req)))
				raw, err := p.transport.Call(rctx, ref.Addr, req)
				if err != nil {
					// Only prune on genuine transport failures: a call
					// aborted because a concurrent candidate already won
					// says nothing about the reference's liveness.
					if rctx.Err() == nil && !errors.Is(err, context.Canceled) {
						p.table.Remove(ref.Addr)
					}
					results <- raceOutcome{}
					continue
				}
				p.Metrics.QueryBytes.Add(float64(network.MessageSize(raw)))
				results <- raceOutcome{raw: raw}
			}
		}(time.Duration(i) * hedge)
	}
	return results
}

// raceCall forwards req to the given references with up to alpha calls in
// flight at once and returns the first response that accept approves.
func (p *Peer) raceCall(ctx context.Context, refs []routing.Ref, req any, accept func(raw any) bool) (any, bool) {
	if len(refs) == 0 {
		return nil, false
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := p.launchRace(rctx, refs, req)
	for done := 0; done < len(refs); done++ {
		select {
		case <-ctx.Done():
			return nil, false
		case out := <-results:
			if out.raw != nil && accept(out.raw) {
				return out.raw, true
			}
		}
	}
	return nil, false
}

// forEachBounded runs fn for every item, keeping at most workers invocations
// in flight at once.
func forEachBounded[T any](workers int, items []T, fn func(T)) {
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, it := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(it T) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(it)
		}(it)
	}
	wg.Wait()
}

// RangeResult is the outcome of a range query.
type RangeResult struct {
	// Items are all items found with keys in the range, in key order.
	Items []replication.Item
	// Hops is the maximal hop count over the branches of the query.
	Hops int
	// Partitions is the number of distinct partitions that contributed.
	Partitions int
	// Incomplete reports that some sub-tree of the range could not be
	// reached.
	Incomplete bool
}

// RangeQuery returns all items with keys in [lo, hi), fanning the query out
// to every partition overlapping the range (a "shower" query in P-Grid
// terms: the local peer answers for its own partition and forwards a
// restricted sub-range to one reference per overlapping complementary
// sub-tree, with up to Fanout sub-trees queried concurrently).
func (p *Peer) RangeQuery(ctx context.Context, r keyspace.Range) (RangeResult, error) {
	req := RangeRequest{Lo: r.Lo, Hi: r.Hi, HiUnbounded: r.HiUnbounded, TTL: p.cfg.QueryTTL}
	resp := p.handleRange(ctx, req)
	items := dedupeItems(resp.Items)
	p.Metrics.Queries.Add(1)
	p.Metrics.QueryHops.Add(float64(resp.Hops))
	return RangeResult{Items: items, Hops: resp.Hops, Partitions: resp.Partitions, Incomplete: resp.Incomplete}, nil
}

// rangeBranch is one complementary sub-tree a range query fans out into.
type rangeBranch struct {
	level   int
	forward RangeRequest
}

// handleRange serves a range query: collect local items in the range and
// forward the parts of the range that belong to complementary sub-trees of
// the local path. All overlapping sub-trees are queried concurrently through
// a worker pool bounded by Fanout, and branch results are merged as they
// arrive.
func (p *Peer) handleRange(ctx context.Context, req RangeRequest) RangeResponse {
	r := keyspace.Range{Lo: req.Lo, Hi: req.Hi, HiUnbounded: req.HiUnbounded}
	out := RangeResponse{Hops: req.Hops, Partitions: 1}
	// Stream the range straight off the storage engine (a disk-backed
	// store never materialises its full pair set).
	p.store.ScanRange(r, func(it replication.Item) bool {
		out.Items = append(out.Items, it)
		return true
	})
	p.Metrics.QueryBytes.Add(float64(out.WireSize()))
	if req.TTL <= 0 {
		out.Incomplete = true
		return out
	}
	path := p.Path()
	var branches []rangeBranch
	for level := 0; level < path.Depth(); level++ {
		sub := path.FlipAt(level)
		if !r.OverlapsPath(sub) {
			continue
		}
		// Restrict the forwarded range to the complementary sub-tree so
		// every partition is queried exactly once.
		iv := sub.Interval()
		lo, hi := r.Lo, r.Hi
		unbounded := r.HiUnbounded
		subLo := keyspace.MustFromFloat(iv.Lo, keyspace.DefaultDepth)
		subHi := keyspace.MustFromFloat(iv.Hi, keyspace.DefaultDepth)
		if subLo.Compare(lo) > 0 {
			lo = subLo
		}
		if iv.Hi < 1 && (unbounded || subHi.Compare(hi) < 0) {
			hi = subHi
			unbounded = false
		}
		branches = append(branches, rangeBranch{
			level:   level,
			forward: RangeRequest{Lo: lo, Hi: hi, HiUnbounded: unbounded, Hops: req.Hops + 1, TTL: req.TTL - 1},
		})
	}
	if len(branches) == 0 {
		return out
	}

	var mu sync.Mutex
	forEachBounded(p.queryFanout(), branches, func(br rangeBranch) {
		resp, ok := p.forwardRangeBranch(ctx, br)
		mu.Lock()
		defer mu.Unlock()
		if !ok {
			out.Incomplete = true
			return
		}
		out.Items = append(out.Items, resp.Items...)
		out.Partitions += resp.Partitions
		if resp.Hops > out.Hops {
			out.Hops = resp.Hops
		}
		if resp.Incomplete {
			out.Incomplete = true
		}
	})
	return out
}

// forwardRangeBranch forwards the restricted sub-range of one branch to a
// reference of the complementary sub-tree, falling back to alternative
// references when one is stale (stale references are pruned). Within a
// branch the references are tried one at a time so every partition is
// queried exactly once; the concurrency lives across branches.
func (p *Peer) forwardRangeBranch(ctx context.Context, br rangeBranch) (RangeResponse, bool) {
	for _, ref := range p.shuffledRefs(br.level) {
		p.Metrics.QueryBytes.Add(float64(br.forward.WireSize()))
		raw, err := p.transport.Call(ctx, ref.Addr, br.forward)
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, context.Canceled) {
				p.table.Remove(ref.Addr)
			}
			continue
		}
		resp, ok := raw.(RangeResponse)
		if !ok {
			continue
		}
		p.Metrics.QueryBytes.Add(float64(resp.WireSize()))
		return resp, true
	}
	return RangeResponse{}, false
}

// dedupeItems removes duplicate (key, value) pairs (replicas can return the
// same item via different branches) and sorts by key. The input slice is
// left untouched: results may alias a response buffer the caller still
// reads.
func dedupeItems(items []replication.Item) []replication.Item {
	seen := make(map[string]bool, len(items))
	out := make([]replication.Item, 0, len(items))
	for _, it := range items {
		k := it.Key.String() + "\x00" + it.Value
		if !seen[k] {
			seen[k] = true
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		c := out[i].Key.Compare(out[j].Key)
		if c != 0 {
			return c < 0
		}
		return out[i].Value < out[j].Value
	})
	return out
}
