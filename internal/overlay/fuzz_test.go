package overlay

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// wireSeedMessages returns one instance of every protocol message, used both
// as fuzz seeds and by the round-trip test.
func wireSeedMessages() []any {
	key := keyspace.MustFromString("1011")
	item := replication.Item{Key: key, Value: "doc-1"}
	return []any{
		QueryRequest{Key: key, Hops: 1, TTL: 7, Bypass: true},
		QueryResponse{Found: true, Items: []replication.Item{item}, Hops: 2, Responsible: "peer-1", ResponsiblePath: "10",
			Clock: 19, Cached: true, Wide: []network.Addr{"peer-9", "peer-10"}},
		BatchQueryRequest{Keys: []keyspace.Key{key}, TTL: 3},
		BatchQueryResponse{Results: []QueryResponse{{Found: true, Hops: 1}}},
		RangeRequest{Lo: key, Hi: key, TTL: 4},
		RangeResponse{Items: []replication.Item{item}, Partitions: 2},
		ReplicateRequest{From: "peer-2", Path: "10", Items: []replication.Item{item}, Tombstones: []replication.Item{item}, AntiEntropy: true},
		ReplicateResponse{Accepted: 1, Items: []replication.Item{item}, Tombstones: []replication.Item{item}, Path: "10"},
		InsertRequest{Item: item, TTL: 9},
		DeleteRequest{Key: key, Value: "doc-1", TTL: 9, Direct: true},
		MutateResponse{Found: true, Acks: 3, Replicas: 4, Hops: 2, Responsible: "peer-3", ResponsiblePath: "10"},
		PingRequest{From: "peer-4"},
		PingResponse{Path: "101", Done: true},
		ExchangeRequest{From: "peer-5", Path: "1", Estimate: 0.25, Items: []replication.Item{item}},
		ExchangeResponse{Action: ActionSplit, From: "peer-6", NewPath: "11", NewPathSet: true},
		DigestRequest{From: "peer-7", Path: "10", Root: true, Clock: 42, Since: 17,
			Buckets: []replication.BucketDigest{{Prefix: "10", Hash: 0xFEEDFACECAFEBEEF, Count: 12}}},
		DigestResponse{Path: "10", Clock: 43, DeltaOK: true, Mismatch: []keyspace.Path{"100", "1011"}},
		DeltaRequest{From: "peer-8", Path: "10", Clock: 44, Since: 17, Prefixes: []keyspace.Path{"100"},
			Items: []replication.Item{item}, Tombstones: []replication.Item{{Key: key, Value: "gone", Gen: 3}}},
		DeltaResponse{Path: "10", Clock: 45, Applied: 2, Items: []replication.Item{item}},
		ClockRequest{From: "peer-11"},
		ClockResponse{Path: "10", Clock: 46},
		RecruitRequest{From: "peer-12", Path: "10", Clock: 47, Lease: 10 * time.Second, Items: []replication.Item{item}},
		RecruitResponse{Accepted: true, Path: "0"},
		TombstonePruneRequest{From: "peer-13", Path: "10", Pairs: []replication.Item{{Key: key, Value: "gone", Gen: 5}}},
		TombstonePruneResponse{Dropped: 1},
	}
}

// FuzzWireDecode throws arbitrary bytes at the TCP transport's frame decoder
// (the exact path every incoming message takes): it must never panic, and
// every frame it does accept must re-encode cleanly.
//
// Run continuously with:
//
//	go test ./internal/overlay -run=^$ -fuzz=FuzzWireDecode -fuzztime=30s
func FuzzWireDecode(f *testing.F) {
	for _, msg := range wireSeedMessages() {
		data, err := network.EncodeMessage("fuzz-seed", msg)
		if err != nil {
			f.Fatalf("encode seed %T: %v", msg, err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, payload, err := network.DecodeMessage(data)
		if err != nil {
			return
		}
		if _, err := network.EncodeMessage(from, payload); err != nil {
			t.Fatalf("decoded payload %T does not re-encode: %v", payload, err)
		}
	})
}

// FuzzBinaryWireDecode throws arbitrary bytes at the binary frame decoder —
// envelope parsing, fragment reassembly and the hand-written typed codecs —
// which is the exact path every incoming message takes on the pooled
// transport: it must never panic, and every message it does accept must
// re-encode cleanly.
//
// Run continuously with:
//
//	go test ./internal/overlay -run=^$ -fuzz=FuzzBinaryWireDecode -fuzztime=30s
func FuzzBinaryWireDecode(f *testing.F) {
	for _, msg := range wireSeedMessages() {
		data, err := network.EncodeMessageBinary("fuzz-seed", msg, 0)
		if err != nil {
			f.Fatalf("encode seed %T: %v", msg, err)
		}
		f.Add(data)
		// A fragmented encoding seeds the reassembly path.
		if frag, err := network.EncodeMessageBinary("fuzz-seed", msg, 512); err == nil {
			f.Add(frag)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 2, 0xBF, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xBF})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, payload, err := network.DecodeMessageBinary(data)
		if err != nil {
			return
		}
		if _, err := network.EncodeMessageBinary(from, payload, 0); err != nil {
			t.Fatalf("decoded payload %T does not re-encode: %v", payload, err)
		}
	})
}

// FuzzMutationWireRoundTrip round-trips fuzzed Insert/Delete/Query messages
// through the wire codec and checks the fields survive bit-exactly — the
// property TCP deployments rely on for routed mutations.
func FuzzMutationWireRoundTrip(f *testing.F) {
	f.Add(uint64(0xDEADBEEF00000000), 32, "doc-7", 3, 61, false)
	f.Add(uint64(0), 0, "", 0, 0, true)
	f.Add(^uint64(0), 64, "v\x00w", -4, 1<<30, true)
	f.Fuzz(func(t *testing.T, bits uint64, klen int, value string, hops, ttl int, direct bool) {
		klen %= 65
		if klen < 0 {
			klen = -klen
		}
		// The JSON wire codec canonicalises invalid UTF-8 to U+FFFD; values
		// are document identifiers, so only valid UTF-8 must round-trip
		// bit-exactly.
		if !utf8.ValidString(value) {
			value = strings.ToValidUTF8(value, "�")
		}
		key, err := keyspace.FromBits(bits, klen)
		if err != nil {
			t.Fatalf("FromBits(%v, %d): %v", bits, klen, err)
		}
		msgs := []any{
			InsertRequest{Item: replication.Item{Key: key, Value: value}, Hops: hops, TTL: ttl, Direct: direct},
			DeleteRequest{Key: key, Value: value, Hops: hops, TTL: ttl, Direct: direct},
			QueryRequest{Key: key, Hops: hops, TTL: ttl},
		}
		for _, msg := range msgs {
			data, err := network.EncodeMessage("fuzzer", msg)
			if err != nil {
				t.Fatalf("encode %T: %v", msg, err)
			}
			from, got, err := network.DecodeMessage(data)
			if err != nil {
				t.Fatalf("decode %T: %v", msg, err)
			}
			if from != "fuzzer" {
				t.Fatalf("from = %q", from)
			}
			switch want := msg.(type) {
			case InsertRequest:
				if got != want {
					t.Fatalf("insert round trip: got %+v want %+v", got, want)
				}
			case DeleteRequest:
				if got != want {
					t.Fatalf("delete round trip: got %+v want %+v", got, want)
				}
			case QueryRequest:
				if got != want {
					t.Fatalf("query round trip: got %+v want %+v", got, want)
				}
			}
		}
	})
}

// TestRegenerateWireCorpus rewrites the checked-in seed corpus for
// FuzzWireDecode from wireSeedMessages, so the corpus tracks the message
// set. It only runs when PGRID_REGEN_CORPUS is set:
//
//	PGRID_REGEN_CORPUS=1 go test ./internal/overlay -run TestRegenerateWireCorpus
func TestRegenerateWireCorpus(t *testing.T) {
	if os.Getenv("PGRID_REGEN_CORPUS") == "" {
		t.Skip("set PGRID_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzWireDecode")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	binDir := filepath.Join("testdata", "fuzz", "FuzzBinaryWireDecode")
	if err := os.MkdirAll(binDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, msg := range wireSeedMessages() {
		name := strings.ToLower(strings.TrimPrefix(fmt.Sprintf("%T", msg), "overlay."))
		data, err := network.EncodeMessage("corpus", msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		bin, err := network.EncodeMessageBinary("corpus", msg, 0)
		if err != nil {
			t.Fatalf("binary encode %T: %v", msg, err)
		}
		content = fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", bin)
		if err := os.WriteFile(filepath.Join(binDir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if frag, err := network.EncodeMessageBinary("corpus", msg, 512); err == nil && len(frag) > len(bin)+8 {
			content = fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", frag)
			if err := os.WriteFile(filepath.Join(binDir, "seed-"+name+"-frag"), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestWireCodecRoundTripsEveryMessage keeps the non-fuzz suite covering the
// frame codec for the full message set (the fuzzers extend this population).
func TestWireCodecRoundTripsEveryMessage(t *testing.T) {
	for _, msg := range wireSeedMessages() {
		data, err := network.EncodeMessage("codec-test", msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		if bytes.Contains(data[:4], []byte{0xff}) {
			t.Fatalf("implausible frame length prefix for %T", msg)
		}
		_, payload, err := network.DecodeMessage(data)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if _, ok := payload.(error); ok {
			t.Fatalf("payload decoded as error for %T", msg)
		}
		reenc, err := network.EncodeMessage("codec-test", payload)
		if err != nil {
			t.Fatalf("re-encode %T: %v", msg, err)
		}
		if !bytes.Equal(data, reenc) {
			t.Errorf("codec not stable for %T", msg)
		}
	}
}
