package overlay

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// TestOverlayOverTCP runs the construction protocol and queries over the
// real TCP transport, exercising the same code path as cmd/pgridnode.
func TestOverlayOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cfg := Config{MaxKeys: 4, MinReplicas: 1, Seed: 1}
	var peers []*Peer
	for i := 0; i < 3; i++ {
		ep, err := network.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		pcfg := cfg
		pcfg.Seed = int64(i + 1)
		peers = append(peers, New(pcfg, ep))
	}
	// Load distinct uniform items on every peer, remembering each peer's
	// own original items for the replication phase.
	own := make([][]replication.Item, len(peers))
	for i, p := range peers {
		for k := 0; k < 8; k++ {
			own[i] = append(own[i], replication.Item{
				Key:   keyspace.MustFromFloat(float64(i*8+k)/24.0, 32),
				Value: fmt.Sprintf("tcp-item-%d-%d", i, k),
			})
		}
		p.AddItems(own[i])
	}
	// Pre-construction replication phase: each peer replicates its own
	// items to its ring successor (MinReplicas = 1).
	for i, p := range peers {
		target := peers[(i+1)%len(peers)].Addr()
		if err := p.ReplicateItems(ctx, own[i], []network.Addr{target}); err != nil {
			t.Fatalf("replicate over tcp: %v", err)
		}
	}
	// Peers 1 and 2 interact with peer 0 over TCP until the partitions form.
	for round := 0; round < 12; round++ {
		for i := 1; i < 3; i++ {
			if _, err := peers[i].Interact(ctx, peers[0].Addr()); err != nil {
				t.Fatalf("interact over tcp: %v", err)
			}
		}
		if peers[0].Path().Depth() > 0 && peers[1].Path().Depth() > 0 && peers[2].Path().Depth() > 0 {
			break
		}
	}
	split := false
	for _, p := range peers {
		if p.Path().Depth() > 0 {
			split = true
		}
	}
	if !split {
		t.Error("no peer extended its path over the TCP transport")
	}
	// Query every original key from peer 2: routing over TCP should locate
	// most of them (items can only be missed when they were orphaned at a
	// peer whose partition no longer covers them).
	found := 0
	for i := 0; i < 24; i++ {
		key := keyspace.MustFromFloat(float64(i)/24.0, 32)
		res, err := peers[2].Query(ctx, key)
		if err == nil && len(res.Items) > 0 {
			found++
		}
	}
	if found < 10 {
		t.Errorf("only %d of 24 items located over the TCP transport", found)
	}
}

// TestMutationsAndBatchOverTCP drives the live mutation subsystem and batch
// queries end-to-end over the real TCP transport: a routed Insert with
// quorum-ack across both replicas of the responsible partition, a QueryBatch
// spanning both partitions, a routed Delete, and an anti-entropy round that
// must not resurrect the deleted pair.
func TestMutationsAndBatchOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cfg := Config{MaxKeys: 100, MinReplicas: 1, WriteQuorum: 2}
	var peers []*Peer
	for i := 0; i < 3; i++ {
		ep, err := network.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		pcfg := cfg
		pcfg.Seed = int64(60 + i)
		peers = append(peers, New(pcfg, ep))
	}
	origin, r1, r2 := peers[0], peers[1], peers[2]
	origin.Table().SetPath("0")
	r1.Table().SetPath("1")
	r2.Table().SetPath("1")
	origin.Table().Add(0, refFor(r1))
	origin.Table().Add(0, refFor(r2))
	r1.Table().Add(0, refFor(origin))
	r2.Table().Add(0, refFor(origin))
	r1.AddReplica(r2.Addr())
	r2.AddReplica(r1.Addr())

	ownKey := keyspace.MustFromString("0100")
	origin.AddItems([]replication.Item{{Key: ownKey, Value: "local"}})

	// Routed insert over TCP: must reach both replicas of partition "1".
	key := keyspace.MustFromString("1100")
	res, err := origin.Insert(ctx, replication.Item{Key: key, Value: "tcp-live"})
	if err != nil {
		t.Fatalf("insert over tcp: %v", err)
	}
	if res.Acks < 2 {
		t.Errorf("insert acks over tcp = %d, want >= 2", res.Acks)
	}
	for _, p := range []*Peer{r1, r2} {
		if got := p.Store().Lookup(key); len(got) != 1 || got[0].Value != "tcp-live" {
			t.Errorf("replica %s missed the routed insert: %v", p.Addr(), got)
		}
	}

	// Batch query spanning both partitions, served over the wire codec.
	results := origin.QueryBatch(ctx, []keyspace.Key{ownKey, key})
	if results[0].Err != nil || len(results[0].Items) != 1 || results[0].Items[0].Value != "local" {
		t.Errorf("batch key 0: %+v", results[0])
	}
	if results[1].Err != nil || len(results[1].Items) != 1 || results[1].Items[0].Value != "tcp-live" {
		t.Errorf("batch key 1: %+v", results[1])
	}

	// Routed delete over TCP: tombstoned at both replicas, and an
	// anti-entropy round between them must not bring the pair back.
	dres, err := origin.Delete(ctx, key, "tcp-live")
	if err != nil {
		t.Fatalf("delete over tcp: %v", err)
	}
	if dres.Acks < 2 {
		t.Errorf("delete acks over tcp = %d, want >= 2", dres.Acks)
	}
	if _, err := r1.AntiEntropy(ctx, r2.Addr()); err != nil {
		t.Fatalf("anti-entropy over tcp: %v", err)
	}
	for _, p := range []*Peer{r1, r2} {
		if got := p.Store().Lookup(key); len(got) != 0 {
			t.Errorf("replica %s resurrected the deleted pair over tcp: %v", p.Addr(), got)
		}
	}
	if qres, err := origin.Query(ctx, key); err == nil && len(qres.Items) != 0 {
		t.Errorf("deleted pair still returned over tcp: %v", qres.Items)
	}
}

// TestDeltaSyncOverTCP drives the digest/delta anti-entropy protocol
// end-to-end over the real TCP transport: a first-contact digest walk, a
// steady-state in-sync round, an exact delta after divergence (including a
// tombstone), and a post-GC stale rejoin that must rebuild instead of
// resurrecting the deleted pair.
func TestDeltaSyncOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, TombstoneGCVersions: 16}
	var peers []*Peer
	for i := 0; i < 2; i++ {
		ep, err := network.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		pcfg := cfg
		pcfg.Seed = int64(80 + i)
		peers = append(peers, New(pcfg, ep))
	}
	a, b := peers[0], peers[1]
	a.AddReplica(b.Addr())
	b.AddReplica(a.Addr())

	// Mostly shared content with a few divergent pairs: first contact must
	// run a digest walk and converge.
	for i := 0; i < 60; i++ {
		it := replication.Item{Key: keyspace.MustFromFloat(float64(i)/60, 32), Value: fmt.Sprintf("tcp-%d", i)}
		a.Store().Add(it)
		b.Store().Add(it)
	}
	b.Store().Insert(replication.Item{Key: keyspace.MustFromFloat(0.515, 32), Value: "only-b"})
	rep, err := a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatalf("first sync over tcp: %v", err)
	}
	if rep.Kind != SyncWalk {
		t.Errorf("first tcp sync kind = %q, want walk", rep.Kind)
	}
	if !a.Store().Live(keyspace.MustFromFloat(0.515, 32), "only-b") {
		t.Error("walk over tcp did not transfer the divergent pair")
	}

	// Steady state: one cheap digest round trip.
	if rep, err = a.SyncReplica(ctx, b.Addr()); err != nil || rep.Kind != SyncInSync {
		t.Fatalf("steady-state sync over tcp: %v %+v", err, rep)
	}

	// Diverge with an insert and a delete; the next sync must be an exact
	// delta that moves the tombstone without resurrecting the pair.
	doomedKey := keyspace.MustFromFloat(10.0/60, 32)
	b.Store().Insert(replication.Item{Key: keyspace.MustFromFloat(0.717, 32), Value: "late-b"})
	b.Store().Delete(doomedKey, "tcp-10")
	rep, err = a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatalf("delta sync over tcp: %v", err)
	}
	if rep.Kind != SyncDelta {
		t.Errorf("post-baseline tcp sync kind = %q, want delta", rep.Kind)
	}
	if rep.Received != 2 {
		t.Errorf("tcp delta received %d changes, want 2 (insert + tombstone)", rep.Received)
	}
	if a.Store().Live(doomedKey, "tcp-10") {
		t.Error("tcp delta sync resurrected the deleted pair")
	}

	// Post-GC stale rejoin: b deletes, keeps writing, prunes the tombstone;
	// a has not synced since, so its next sync must rebuild, not merge.
	zombieKey := keyspace.MustFromFloat(20.0/60, 32)
	b.Store().Delete(zombieKey, "tcp-20")
	for i := 0; i < 20; i++ {
		b.Store().Insert(replication.Item{Key: keyspace.MustFromFloat(0.9+float64(i)/1000, 32), Value: fmt.Sprintf("fill-%d", i)})
	}
	if n := b.Store().CompactTombstones(); n == 0 {
		t.Fatal("setup: tcp tombstone not pruned")
	}
	rep, err = a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatalf("rejoin sync over tcp: %v", err)
	}
	if rep.Kind != SyncRebuildPull {
		t.Errorf("post-GC rejoin tcp sync kind = %q, want rebuild-pull", rep.Kind)
	}
	if a.Store().Live(zombieKey, "tcp-20") {
		t.Error("post-GC rejoin over tcp resurrected the deleted pair")
	}
	ha, _ := a.Store().Digest(keyspace.Root)
	hb, _ := b.Store().Digest(keyspace.Root)
	if ha != hb {
		t.Error("replicas not identical after tcp rebuild")
	}
}

// TestOversizedSyncOverTCP pins the fix for the oversized-transfer failure
// mode: under the legacy transport, a rebuild or delta payload larger than
// the frame cap could never be sent, so the sync engine failed every tick
// and retried forever. The binary transport fragments such messages, so a
// partition whose full image exceeds the frame limit still rebuilds. The
// endpoints run with a deliberately small frame limit, making the image
// dozens of frames without needing multi-MiB fixtures.
func TestOversizedSyncOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, TombstoneGCVersions: 16}
	const frameLimit = 32 << 10
	var peers []*Peer
	for i := 0; i < 2; i++ {
		ep, err := network.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ep.SetOptions(network.TCPOptions{FrameLimit: frameLimit})
		defer ep.Close()
		pcfg := cfg
		pcfg.Seed = int64(90 + i)
		peers = append(peers, New(pcfg, ep))
	}
	a, b := peers[0], peers[1]
	a.AddReplica(b.Addr())
	b.AddReplica(a.Addr())

	// Shared content whose serialised image dwarfs the frame limit: 300
	// pairs with 8 KiB values (~2.4 MiB against 32 KiB frames).
	bigValue := strings.Repeat("v", 8<<10)
	for i := 0; i < 300; i++ {
		it := replication.Item{
			Key:   keyspace.MustFromFloat(float64(i)/300, 32),
			Value: fmt.Sprintf("%s-%d", bigValue, i),
		}
		a.Store().Add(it)
		b.Store().Add(it)
	}
	if rep, err := a.SyncReplica(ctx, b.Addr()); err != nil || rep.Kind != SyncInSync {
		t.Fatalf("baseline sync: %v %+v", err, rep)
	}

	// b deletes a pair, keeps writing and prunes the tombstone, so a's
	// baseline provably predates the prune and the next sync must
	// wholesale-replace a's partition — one full-image transfer that
	// exceeds the frame cap many times over.
	doomed := keyspace.MustFromFloat(42.0/300, 32)
	b.Store().Delete(doomed, fmt.Sprintf("%s-%d", bigValue, 42))
	for i := 0; i < 20; i++ {
		b.Store().Insert(replication.Item{
			Key:   keyspace.MustFromFloat(0.99+float64(i)/10000, 32),
			Value: fmt.Sprintf("%s-fill-%d", bigValue, i),
		})
	}
	if n := b.Store().CompactTombstones(); n == 0 {
		t.Fatal("setup: tombstone not pruned")
	}
	rep, err := a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatalf("oversized rebuild sync: %v", err)
	}
	if rep.Kind != SyncRebuildPull {
		t.Errorf("sync kind = %q, want rebuild-pull", rep.Kind)
	}
	if rep.Received < 300 {
		t.Errorf("rebuild received %d records, want the full image", rep.Received)
	}
	if a.Store().Live(doomed, fmt.Sprintf("%s-%d", bigValue, 42)) {
		t.Error("oversized rebuild resurrected the pruned delete")
	}
	ha, na := a.Store().Digest(keyspace.Root)
	hb, nb := b.Store().Digest(keyspace.Root)
	if ha != hb || na != nb {
		t.Errorf("replicas diverged after oversized rebuild: (%x,%d) vs (%x,%d)", ha, na, hb, nb)
	}

	// The reverse direction: a now prunes past b's baseline, so the next
	// sync pushes a's full oversized image onto b.
	victim := keyspace.MustFromFloat(7.0/300, 32)
	a.Store().Delete(victim, fmt.Sprintf("%s-%d", bigValue, 7))
	for i := 0; i < 20; i++ {
		a.Store().Insert(replication.Item{
			Key:   keyspace.MustFromFloat(0.98+float64(i)/10000, 32),
			Value: fmt.Sprintf("%s-pushfill-%d", bigValue, i),
		})
	}
	if n := a.Store().CompactTombstones(); n == 0 {
		t.Fatal("setup: push-side tombstone not pruned")
	}
	rep, err = a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatalf("oversized rebuild-push sync: %v", err)
	}
	if rep.Kind != SyncRebuildPush {
		t.Errorf("push sync kind = %q, want rebuild-push", rep.Kind)
	}
	ha, na = a.Store().Digest(keyspace.Root)
	hb, nb = b.Store().Digest(keyspace.Root)
	if ha != hb || na != nb {
		t.Errorf("replicas diverged after oversized rebuild-push: (%x,%d) vs (%x,%d)", ha, na, hb, nb)
	}
}

// TestExchangeResponderBehind exercises the branch where the contacted peer
// is still at a shallower path than the initiator and must extend itself.
func TestExchangeResponderBehind(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 20})
	cfg := Config{MaxKeys: 4, MinReplicas: 1, Seed: 20}
	deep := New(cfg, sim.Endpoint("deep"))
	shallow := New(cfg, sim.Endpoint("shallow"))
	other := New(cfg, sim.Endpoint("other"))

	// The deep peer has already split to "0", the shallow one is at the
	// root with data, the other peer serves as the deep peer's reference.
	deep.Table().SetPath("0")
	deep.Table().Add(0, refFor(other))
	other.Table().SetPath("1")
	for i := 0; i < 6; i++ {
		shallow.AddItems([]replication.Item{{Key: keyspace.MustFromFloat(float64(i)/6, 32), Value: fmt.Sprintf("s%d", i)}})
		deep.AddItems([]replication.Item{{Key: keyspace.MustFromFloat(float64(i)/12, 32), Value: fmt.Sprintf("d%d", i)}})
	}
	// The deep peer initiates: from its perspective the responder (shallow)
	// is behind and must extend its own path by the AEP rules.
	if _, err := deep.Interact(context.Background(), "shallow"); err != nil {
		t.Fatal(err)
	}
	if shallow.Path().Depth() != 1 {
		t.Errorf("shallow peer should have extended its path, got %q", shallow.Path())
	}
	// Referential integrity: the shallow peer must know a peer of the
	// complementary partition at level 0.
	if len(shallow.Table().Refs(0)) == 0 {
		t.Error("extended peer has no level-0 reference")
	}
}

// TestExchangeInitiatorBehindFollowsMajority exercises rule 4's indirect
// reference hand-over (the initiator follows the responder into the
// majority and receives a reference from the responder's routing table).
func TestExchangeInitiatorBehindFollowsMajority(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 21})
	cfg := Config{MaxKeys: 1000, MinReplicas: 1, Seed: 21}
	undecided := New(cfg, sim.Endpoint("undecided"))
	decided := New(cfg, sim.Endpoint("decided"))
	other := New(cfg, sim.Endpoint("other"))
	other.Table().SetPath("1")

	// The decided peer sits on the majority side "0" (all data is below
	// 0.5) and owns a reference into "1".
	decided.Table().SetPath("0")
	decided.Table().Add(0, refFor(other))
	for i := 0; i < 10; i++ {
		k := keyspace.MustFromFloat(float64(i)/25, 32) // all in [0, 0.4)
		undecided.AddItems([]replication.Item{{Key: k, Value: fmt.Sprintf("u%d", i)}})
		decided.AddItems([]replication.Item{{Key: k, Value: fmt.Sprintf("d%d", i)}})
	}
	// With the whole load in sub-partition 0, the minority is 1 and beta is
	// (close to) zero, so the initiator must follow the responder into "0"
	// and obtain the reference to "other".
	if _, err := undecided.Interact(context.Background(), "decided"); err != nil {
		t.Fatal(err)
	}
	if undecided.Path() != "0" {
		t.Fatalf("initiator path = %q, want 0", undecided.Path())
	}
	refs := undecided.Table().Refs(0)
	if len(refs) == 0 {
		t.Fatal("initiator received no reference into the complementary partition")
	}
	foundOther := false
	for _, r := range refs {
		if r.Addr == "other" {
			foundOther = true
		}
	}
	if !foundOther {
		t.Errorf("initiator should have been handed the responder's reference, got %v", refs)
	}
}
