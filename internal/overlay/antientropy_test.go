package overlay

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// countingTransport wraps a transport and counts outgoing calls by message
// type, so tests can assert how many round trips a sync protocol run used.
type countingTransport struct {
	network.Transport
	digests atomic.Int64
	deltas  atomic.Int64
}

func (c *countingTransport) Call(ctx context.Context, to network.Addr, req any) (any, error) {
	switch req.(type) {
	case DigestRequest:
		c.digests.Add(1)
	case DeltaRequest:
		c.deltas.Add(1)
	}
	return c.Transport.Call(ctx, to, req)
}

// syncPair builds two replica peers of partition "" over a simulated
// network, with the initiator's transport call-counted.
func syncPair(t *testing.T, seed int64) (a, b *Peer, count *countingTransport) {
	t.Helper()
	sim := network.NewSim(network.SimConfig{Seed: seed})
	cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, Seed: seed}
	count = &countingTransport{Transport: sim.Endpoint("a")}
	a = New(cfg, count)
	bcfg := cfg
	bcfg.Seed = seed + 1
	b = New(bcfg, sim.Endpoint("b"))
	a.AddReplica(b.Addr())
	b.AddReplica(a.Addr())
	return a, b, count
}

func fitem(x float64, v string) replication.Item {
	return replication.Item{Key: keyspace.MustFromFloat(x, 32), Value: v}
}

// storesEqual compares the two peers' logical store content.
func storesEqual(t *testing.T, a, b *Peer) bool {
	t.Helper()
	ha, na := a.Store().Digest(keyspace.Root)
	hb, nb := b.Store().Digest(keyspace.Root)
	return ha == hb && na == nb
}

// TestSyncReplicaInSteadyState checks the steady-state fast path: identical
// replicas exchange one pair of root-digest messages and nothing else.
func TestSyncReplicaInSteadyState(t *testing.T) {
	a, b, count := syncPair(t, 1)
	for i := 0; i < 100; i++ {
		it := fitem(float64(i)/100, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	rep, err := a.SyncReplica(context.Background(), b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncInSync || rep.Received != 0 {
		t.Fatalf("sync of identical replicas = %+v, want insync with nothing received", rep)
	}
	if got := count.digests.Load(); got != 1 {
		t.Errorf("steady-state sync used %d digest rounds, want 1", got)
	}
	if got := count.deltas.Load(); got != 0 {
		t.Errorf("steady-state sync used %d delta rounds, want 0", got)
	}
	// The whole exchange must cost a constant few hundred bytes, not the
	// O(items) of the legacy full-set protocol.
	if bytes := a.Metrics.MaintenanceBytes.Value(); bytes > 1024 {
		t.Errorf("steady-state sync cost %.0f bytes for 100 items; digest exchange should be item-count independent", bytes)
	}
}

// TestSyncReplicaDigestWalkConverges checks first contact between diverged
// replicas: the digest walk must locate the differing buckets, exchange
// them bidirectionally, and leave both replicas identical — including
// propagating a delete against a stale live copy.
func TestSyncReplicaDigestWalkConverges(t *testing.T) {
	a, b, _ := syncPair(t, 2)
	for i := 0; i < 200; i++ {
		it := fitem(float64(i)/200, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	a.Store().Insert(fitem(0.3001, "only-a"))
	b.Store().Insert(fitem(0.7001, "only-b"))
	b.Store().Delete(keyspace.MustFromFloat(0.25, 32), "v50") // delete a shared pair at b only

	rep, err := a.SyncReplica(context.Background(), b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncWalk {
		t.Fatalf("first-contact sync kind = %q, want walk", rep.Kind)
	}
	if !storesEqual(t, a, b) {
		t.Fatal("replicas did not converge after digest walk")
	}
	if a.Store().Live(keyspace.MustFromFloat(0.25, 32), "v50") {
		t.Error("walk resurrected a deleted pair instead of propagating the tombstone")
	}
	if !a.Store().Live(keyspace.MustFromFloat(0.7001, 32), "only-b") ||
		!b.Store().Live(keyspace.MustFromFloat(0.3001, 32), "only-a") {
		t.Error("walk did not exchange the differing pairs in both directions")
	}
}

// TestSyncReplicaDeltaAfterBaseline checks the incremental path: once a
// baseline exists, a later sync ships exactly the changed pairs as one
// delta round trip, with no digest walk.
func TestSyncReplicaDeltaAfterBaseline(t *testing.T) {
	ctx := context.Background()
	a, b, count := syncPair(t, 3)
	for i := 0; i < 150; i++ {
		it := fitem(float64(i)/150, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	if rep, err := a.SyncReplica(ctx, b.Addr()); err != nil || rep.Kind != SyncInSync {
		t.Fatalf("baseline sync: %v %+v", err, rep)
	}

	// Diverge on both sides: a insert, b insert + delete.
	a.Store().Insert(fitem(0.1234, "new-a"))
	b.Store().Insert(fitem(0.8765, "new-b"))
	b.Store().Delete(keyspace.MustFromFloat(10.0/150, 32), "v10")

	count.digests.Store(0)
	count.deltas.Store(0)
	rep, err := a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncDelta {
		t.Fatalf("post-baseline sync kind = %q, want delta", rep.Kind)
	}
	if rep.Sent != 1 || rep.Received != 2 {
		t.Errorf("delta sync moved sent=%d received=%d pairs, want 1 and 2", rep.Sent, rep.Received)
	}
	if got := count.digests.Load(); got != 1 {
		t.Errorf("delta sync used %d digest rounds, want 1 (no walk)", got)
	}
	if got := count.deltas.Load(); got != 1 {
		t.Errorf("delta sync used %d delta rounds, want 1", got)
	}
	if !storesEqual(t, a, b) {
		t.Fatal("replicas did not converge after delta sync")
	}
	if a.Store().Live(keyspace.MustFromFloat(10.0/150, 32), "v10") {
		t.Error("delta sync resurrected a deleted pair")
	}
}

// TestDigestWalkRecursionBound drives the walk against maximally diverged
// replicas (fully disjoint content) and asserts the digest round count stays
// within the DigestDepth/width bound regardless of divergence.
func TestDigestWalkRecursionBound(t *testing.T) {
	a, b, count := syncPair(t, 4)
	for i := 0; i < 500; i++ {
		a.Store().Add(fitem(float64(2*i)/1000, fmt.Sprintf("a%d", i)))
		b.Store().Add(fitem(float64(2*i+1)/1000, fmt.Sprintf("b%d", i)))
	}
	rep, err := a.SyncReplica(context.Background(), b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncWalk {
		t.Fatalf("sync kind = %q, want walk", rep.Kind)
	}
	maxRounds := int64(replication.DigestDepth/digestWalkWidth + 2) // walk rounds + opening root round
	if got := count.digests.Load(); got > maxRounds {
		t.Errorf("walk used %d digest rounds, bound is %d", got, maxRounds)
	}
	if !storesEqual(t, a, b) {
		t.Fatal("replicas did not converge")
	}
}

// TestStaleRejoinDoesNotResurrect is the delete→GC→rejoin property, in both
// sync directions: a replica that missed a delete and stayed away past the
// GC horizon must lose its stale live copy when it rejoins, not spread it.
func TestStaleRejoinDoesNotResurrect(t *testing.T) {
	for _, dir := range []string{"stale-initiates", "fresh-initiates"} {
		t.Run(dir, func(t *testing.T) {
			ctx := context.Background()
			sim := network.NewSim(network.SimConfig{Seed: 5})
			cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, TombstoneGCVersions: 8, Seed: 5}
			stale := New(cfg, sim.Endpoint("stale"))
			fresh := New(cfg, sim.Endpoint("fresh"))
			stale.AddReplica(fresh.Addr())
			fresh.AddReplica(stale.Addr())

			doomed := fitem(0.5, "doomed")
			for i := 0; i < 20; i++ {
				it := fitem(float64(i)/20, fmt.Sprintf("v%d", i))
				stale.Store().Add(it)
				fresh.Store().Add(it)
			}
			stale.Store().Add(doomed)
			fresh.Store().Add(doomed)
			// Baselines in both directions, then the stale peer goes away.
			if _, err := stale.SyncReplica(ctx, fresh.Addr()); err != nil {
				t.Fatal(err)
			}
			if _, err := fresh.SyncReplica(ctx, stale.Addr()); err != nil {
				t.Fatal(err)
			}

			// While the stale peer is gone: delete, keep writing, and let the
			// version-based GC horizon prune the tombstone.
			fresh.Store().Delete(doomed.Key, doomed.Value)
			for i := 0; i < 20; i++ {
				fresh.Store().Insert(fitem(0.9+float64(i)/1000, fmt.Sprintf("later%d", i)))
			}
			if fresh.Store().CompactTombstones() != 1 {
				t.Fatal("setup: tombstone not pruned")
			}
			if fresh.Store().GCFloor() == 0 {
				t.Fatal("setup: GC floor not set")
			}

			var rep SyncReport
			var err error
			if dir == "stale-initiates" {
				rep, err = stale.SyncReplica(ctx, fresh.Addr())
				if err != nil {
					t.Fatal(err)
				}
				if rep.Kind != SyncRebuildPull {
					t.Fatalf("stale initiator sync kind = %q, want rebuild-pull", rep.Kind)
				}
			} else {
				rep, err = fresh.SyncReplica(ctx, stale.Addr())
				if err != nil {
					t.Fatal(err)
				}
				if rep.Kind != SyncRebuildPush {
					t.Fatalf("fresh initiator sync kind = %q, want rebuild-push", rep.Kind)
				}
			}
			for _, p := range []*Peer{stale, fresh} {
				if p.Store().Live(doomed.Key, doomed.Value) {
					t.Fatalf("%s resurrected the deleted pair after GC + rejoin", p.Addr())
				}
			}
			if !storesEqual(t, stale, fresh) {
				t.Fatal("replicas did not converge after rebuild")
			}
			// Once rebuilt, the next sync must be cheap again.
			rep, err = stale.SyncReplica(ctx, fresh.Addr())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Kind != SyncInSync {
				t.Errorf("post-rebuild sync kind = %q, want insync", rep.Kind)
			}
		})
	}
}

// TestReinsertAfterGCPropagates checks the other GC edge: when the pair is
// deliberately re-inserted after its tombstone was pruned on one replica but
// not the other, the coordinator-style re-stamp plus sync must end with the
// pair live everywhere (delete happened strictly before the re-insert).
func TestReinsertAfterGCPropagates(t *testing.T) {
	ctx := context.Background()
	a, b, _ := syncPair(t, 6)
	a.Store().SetGCPolicy(replication.GCPolicy{MinVersions: 4})

	pair := fitem(0.5, "phoenix")
	for i := 0; i < 10; i++ {
		it := fitem(float64(i)/10, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	if _, err := a.SyncReplica(ctx, b.Addr()); err != nil {
		t.Fatal(err)
	}

	// Delete everywhere with one stamp, then prune only at a.
	stamp := a.Store().DeleteStamped(pair.Key, pair.Value, 0)
	b.Store().AddTombstones([]replication.Item{stamp})
	for i := 0; i < 6; i++ {
		a.Store().Insert(fitem(0.05+float64(i)/100, fmt.Sprintf("fill%d", i)))
	}
	if a.Store().CompactTombstones() != 1 {
		t.Fatal("setup: tombstone not pruned at a")
	}

	// Re-insert at a (which forgot the tombstone). The stamp restarts low,
	// so the sync with b — still holding the tombstone — must resolve via
	// the generation rules without the delete winning.
	a.Store().Insert(pair)
	restamped := a.Store().Insert(replication.Item{Key: pair.Key, Value: pair.Value, Gen: stamp.Gen + 1})
	if restamped.Gen <= stamp.Gen {
		t.Fatalf("re-stamp %d did not clear the tombstone generation %d", restamped.Gen, stamp.Gen)
	}
	if _, err := a.SyncReplica(ctx, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if !a.Store().Live(pair.Key, pair.Value) || !b.Store().Live(pair.Key, pair.Value) {
		t.Fatal("deliberate re-insert after GC did not end up live on both replicas")
	}
}

// TestMaintainTickUsesDigestProtocol checks the loop integration: a default
// peer's tick reports a digest-protocol sync kind, and a legacy-configured
// peer reports the full-set exchange.
func TestMaintainTickUsesDigestProtocol(t *testing.T) {
	ctx := context.Background()
	sim := network.NewSim(network.SimConfig{Seed: 7})
	mk := func(name string, full bool) *Peer {
		cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, FullSyncAntiEntropy: full, Seed: 7}
		return New(cfg, sim.Endpoint(network.Addr(name)))
	}
	a, b := mk("a", false), mk("b", false)
	a.AddReplica(b.Addr())
	a.Store().Add(fitem(0.25, "x"))
	rep := a.MaintainTick(ctx, MaintenanceOptions{})
	if rep.Sync != SyncWalk && rep.Sync != SyncInSync && rep.Sync != SyncDelta {
		t.Errorf("default tick sync kind = %q, want a digest-protocol kind", rep.Sync)
	}

	c, d := mk("c", true), mk("d", true)
	c.AddReplica(d.Addr())
	c.Store().Add(fitem(0.75, "y"))
	rep = c.MaintainTick(ctx, MaintenanceOptions{})
	if rep.Sync != SyncFullSet {
		t.Errorf("legacy tick sync kind = %q, want full-set", rep.Sync)
	}
	if c.Metrics.SyncsFull.Value() != 1 {
		t.Errorf("legacy tick did not count a full sync")
	}
}

// TestMaintainTickPrunesTombstones checks that the tick drives the GC and
// reports the prune.
func TestMaintainTickPrunesTombstones(t *testing.T) {
	ctx := context.Background()
	sim := network.NewSim(network.SimConfig{Seed: 8})
	cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, TombstoneGCVersions: 2, Seed: 8}
	p := New(cfg, sim.Endpoint("p"))
	p.Store().Insert(fitem(0.5, "x"))
	p.Store().Delete(keyspace.MustFromFloat(0.5, 32), "x")
	for i := 0; i < 4; i++ {
		p.Store().Insert(fitem(0.1+float64(i)/100, fmt.Sprintf("f%d", i)))
	}
	rep := p.MaintainTick(ctx, MaintenanceOptions{})
	if rep.TombstonesPruned != 1 {
		t.Errorf("tick pruned %d tombstones, want 1", rep.TombstonesPruned)
	}
	if p.Metrics.TombstonesPruned.Value() != 1 {
		t.Errorf("prune not counted in metrics")
	}
	if p.Store().TombstoneCount() != 0 {
		t.Errorf("tombstone survived the tick's GC")
	}
}

// TestHandleDeltaClockPredatesMerge pins the responder-side clock contract:
// the clock in a DeltaResponse must be captured before the responder merges
// the initiator's pushed content (and before the content snapshot), so a
// concurrent write landing in that window stays above the initiator's
// recorded baseline and is delivered by the next delta instead of being
// skipped forever.
func TestHandleDeltaClockPredatesMerge(t *testing.T) {
	_, b, _ := syncPair(t, 30)
	for i := 0; i < 10; i++ {
		b.Store().Add(fitem(float64(i)/10, fmt.Sprintf("v%d", i)))
	}
	pre := b.Store().Clock()
	resp := b.handleDelta(DeltaRequest{
		From: "a", Path: "", Clock: 99, Since: pre,
		Items: []replication.Item{fitem(0.91, "pushed-1"), fitem(0.93, "pushed-2")},
	})
	if resp.Incomparable {
		t.Fatal("delta refused unexpectedly")
	}
	if resp.Applied != 2 {
		t.Fatalf("applied %d pushed items, want 2", resp.Applied)
	}
	if resp.Clock > pre {
		t.Fatalf("responder reported clock %d after merging (pre-merge clock %d): a concurrent write in that window would be lost from all future deltas", resp.Clock, pre)
	}
}

// TestBaselineSurvivesTransientRemove pins the baseline-retention contract:
// a replica dropped for a transient call failure and re-discovered must not
// look like an incomparable first contact — with GC history that would
// force a destructive rebuild of a peer that was never actually stale.
func TestBaselineSurvivesTransientRemove(t *testing.T) {
	ctx := context.Background()
	a, b, _ := syncPair(t, 31)
	for i := 0; i < 20; i++ {
		it := fitem(float64(i)/20, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	if _, err := a.SyncReplica(ctx, b.Addr()); err != nil {
		t.Fatal(err)
	}
	st := a.syncStateOf(b.Addr())
	if st.theirs == 0 {
		t.Fatal("setup: no baseline recorded")
	}
	a.removeReplica(b.Addr())
	if got := a.syncStateOf(b.Addr()); got != st {
		t.Fatalf("baseline lost on transient replica removal: %+v != %+v", got, st)
	}
	a.AddReplica(b.Addr())
	b.Store().Insert(fitem(0.805, "post-remove"))
	rep, err := a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncDelta {
		t.Errorf("sync after re-discovery kind = %q, want delta (baseline kept)", rep.Kind)
	}
}

// TestFirstContactWithGCHistoryMergesNotReplaces pins the data-loss guard:
// meeting a replica for the first time proves nothing about its staleness,
// so even a peer with GC history must walk-merge — not wholesale-replace
// the other side's content, which could destroy quorum-acked writes the
// newcomer never had a chance to sync out.
func TestFirstContactWithGCHistoryMergesNotReplaces(t *testing.T) {
	ctx := context.Background()
	a, b, _ := syncPair(t, 32)
	a.Store().SetGCPolicy(replication.GCPolicy{MinVersions: 1})
	for i := 0; i < 20; i++ {
		it := fitem(float64(i)/20, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	// Give a a GC history (floor > 0) without b ever syncing.
	a.Store().Delete(fkeyAt(0.31), "v6")
	a.Store().Insert(fitem(0.32, "churn"))
	if a.Store().CompactTombstones() == 0 || a.Store().GCFloor() == 0 {
		t.Fatal("setup: no GC history")
	}
	// b holds a write a must not destroy.
	b.Store().Insert(fitem(0.755, "acked-only-on-b"))

	rep, err := a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind == SyncRebuildPush || rep.Kind == SyncRebuildPull {
		t.Fatalf("first contact used destructive %q; want a merge", rep.Kind)
	}
	if !a.Store().Live(fkeyAt(0.755), "acked-only-on-b") || !b.Store().Live(fkeyAt(0.755), "acked-only-on-b") {
		t.Fatal("first-contact sync lost the newcomer's write")
	}
}

// fkeyAt mirrors fitem's key construction for assertions.
func fkeyAt(x float64) keyspace.Key { return keyspace.MustFromFloat(x, 32) }

// TestLegacyFullSyncKeepsTombstonesForever pins that the GC options are
// disarmed under the legacy full-set protocol, whose merges would resurrect
// pruned deletes.
func TestLegacyFullSyncKeepsTombstonesForever(t *testing.T) {
	ctx := context.Background()
	sim := network.NewSim(network.SimConfig{Seed: 33})
	cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, FullSyncAntiEntropy: true, TombstoneGCVersions: 1, Seed: 33}
	p := New(cfg, sim.Endpoint("legacy"))
	p.Store().Insert(fitem(0.5, "x"))
	p.Store().Delete(fkeyAt(0.5), "x")
	for i := 0; i < 6; i++ {
		p.Store().Insert(fitem(0.1+float64(i)/100, fmt.Sprintf("f%d", i)))
	}
	rep := p.MaintainTick(ctx, MaintenanceOptions{})
	if rep.TombstonesPruned != 0 || p.Store().TombstoneCount() != 1 {
		t.Errorf("legacy mode pruned tombstones (pruned=%d held=%d); GC must be disarmed with full-set sync",
			rep.TombstonesPruned, p.Store().TombstoneCount())
	}
}

// TestDigestWalkTransfersShortKeys pins the zero-padded bucket membership:
// a pair held only by the responder whose key is shorter than every
// child-bucket depth of the walk (here 3 bits, below even the first 4-bit
// round) must still land in exactly one bucket on both sides and be
// transferred — without the padding rule the responder's child digests all
// match, the walk finds nothing, and the replicas stay divergent forever.
// The pair's bucket is crowded well past the leaf limit so early
// leaf-transfer cannot mask the bug.
func TestDigestWalkTransfersShortKeys(t *testing.T) {
	ctx := context.Background()
	a, b, _ := syncPair(t, 34)
	for i := 0; i < 80; i++ {
		it := fitem(float64(i)/80, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	// Crowd the "0100" bucket (keys in [0.25, 0.28125)) past digestLeafLimit.
	for i := 0; i < 2*digestLeafLimit; i++ {
		it := fitem(0.25+0.03*float64(i)/float64(2*digestLeafLimit), fmt.Sprintf("crowd%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	for _, shortKey := range []string{"010", "010101"} {
		short := replication.Item{Key: keyspace.MustFromString(shortKey), Value: "short-" + shortKey}
		b.Store().Insert(short)
		if _, err := a.SyncReplica(ctx, b.Addr()); err != nil {
			t.Fatal(err)
		}
		if !a.Store().Live(short.Key, short.Value) {
			t.Fatalf("digest walk failed to transfer responder-only pair with %d-bit key", len(shortKey))
		}
		if !storesEqual(t, a, b) {
			t.Fatalf("replicas did not converge with a %d-bit key in play", len(shortKey))
		}
	}
}

// TestRebuildPushPreservesReplicaDelta pins the data-preservation order of
// a rebuild-push: before wholesale-replacing a replica that missed the GC
// window, the initiator pulls the replica's still-comparable delta, so a
// fresh quorum-acked write held only by that replica survives the rebuild.
func TestRebuildPushPreservesReplicaDelta(t *testing.T) {
	ctx := context.Background()
	sim := network.NewSim(network.SimConfig{Seed: 35})
	cfg := Config{MaxKeys: 1 << 20, MinReplicas: 1, TombstoneGCVersions: 8, Seed: 35}
	a := New(cfg, sim.Endpoint("a35"))
	b := New(cfg, sim.Endpoint("b35"))
	a.AddReplica(b.Addr())
	b.AddReplica(a.Addr())
	doomed := fitem(0.5, "doomed")
	for i := 0; i < 20; i++ {
		it := fitem(float64(i)/20, fmt.Sprintf("v%d", i))
		a.Store().Add(it)
		b.Store().Add(it)
	}
	a.Store().Add(doomed)
	b.Store().Add(doomed)
	if _, err := a.SyncReplica(ctx, b.Addr()); err != nil {
		t.Fatal(err)
	}
	// b accepts a fresh write only it holds; meanwhile a deletes a pair,
	// churns past the version horizon, and prunes the tombstone.
	fresh := fitem(0.815, "acked-only-on-b")
	b.Store().Insert(fresh)
	a.Store().Delete(doomed.Key, doomed.Value)
	for i := 0; i < 12; i++ {
		a.Store().Insert(fitem(0.9+float64(i)/1000, fmt.Sprintf("churn%d", i)))
	}
	if a.Store().CompactTombstones() == 0 {
		t.Fatal("setup: tombstone not pruned")
	}
	rep, err := a.SyncReplica(ctx, b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncRebuildPush {
		t.Fatalf("sync kind = %q, want rebuild-push", rep.Kind)
	}
	if !a.Store().Live(fresh.Key, fresh.Value) || !b.Store().Live(fresh.Key, fresh.Value) {
		t.Fatal("rebuild-push destroyed the replica's fresh quorum-acked write")
	}
	if a.Store().Live(doomed.Key, doomed.Value) || b.Store().Live(doomed.Key, doomed.Value) {
		t.Fatal("pruned delete resurrected by the pre-rebuild delta pull")
	}
	if !storesEqual(t, a, b) {
		t.Fatal("replicas did not converge after rebuild-push")
	}
}
