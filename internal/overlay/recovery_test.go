package overlay

import (
	"context"
	"testing"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
)

// item07 returns a test item under partition "0" keyed by i.
func item07(i int, value string) replication.Item {
	return replication.Item{
		Key:   keyspace.MustFromFloat(float64(i%8)/16, 8), // bit strings 0000.. to 0111..
		Value: value,
	}
}

// TestRestartResumesDeltaSync is the tentpole's acceptance path: a peer
// restarted from its persistence directory recovers its partition path,
// replica set and sync baselines, and its first anti-entropy round with a
// replica that kept writing runs through the exact-delta path (SyncsDelta)
// — not a first-contact digest walk and not a rebuild.
func TestRestartResumesDeltaSync(t *testing.T) {
	ctx := context.Background()
	net := network.NewSim(network.SimConfig{Seed: 1})
	dir := t.TempDir()

	cfg := Config{MaxKeys: 50, MinReplicas: 1, Seed: 1}
	a := New(cfg, net.Endpoint("a"))
	pcfg := cfg
	pcfg.Seed = 2
	pcfg.DataDir = dir
	b, err := NewPersistent(pcfg, net.Endpoint("b"))
	if err != nil {
		t.Fatal(err)
	}
	a.Table().SetPath("0")
	b.Table().SetPath("0")
	a.AddReplica("b")
	b.AddReplica("a")

	for i := 0; i < 6; i++ {
		a.Store().Insert(item07(i, "seed"))
	}

	// First contact walks; the completed sync records b's durable baseline.
	rep, err := b.SyncReplica(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncWalk {
		t.Fatalf("first contact took %q, want walk", rep.Kind)
	}
	// A maintenance tick persists the partition path alongside.
	b.MaintainTick(ctx, MaintenanceOptions{})

	// Writes land at a while b is down.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	missed := item07(7, "missed-while-down")
	a.Store().Insert(missed)

	// Restart b from its directory on the same address.
	b2, err := NewPersistent(pcfg, net.Endpoint("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := b2.Path(); got != "0" {
		t.Fatalf("recovered path %q, want 0", got)
	}
	replicas := b2.Replicas()
	if len(replicas) != 1 || replicas[0] != "a" {
		t.Fatalf("recovered replicas %v, want [a]", replicas)
	}

	rep, err = b2.SyncReplica(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncDelta {
		t.Fatalf("post-restart sync took %q, want delta", rep.Kind)
	}
	if !b2.Store().Live(missed.Key, missed.Value) {
		t.Error("restarted peer did not receive the missed write")
	}
	if full := b2.Metrics.SyncsFull.Value(); full != 0 {
		t.Errorf("restarted peer ran %v full syncs, want 0", full)
	}
}

// TestRestartNoResurrectAfterGC pins the residual risk this PR closes: a
// replica that rejoins after the GC horizon with a stale live copy of a
// pruned delete. With a durable baseline the authority can prove the
// staleness and the rejoiner is rebuilt (the delete holds); without
// persistence the baseline is lost, the rejoiner looks like a first
// contact, and the walk-merge resurrects the pair.
func TestRestartNoResurrectAfterGC(t *testing.T) {
	ctx := context.Background()
	net := network.NewSim(network.SimConfig{Seed: 1})
	dir := t.TempDir()

	acfg := Config{MaxKeys: 50, MinReplicas: 1, Seed: 1, TombstoneGCVersions: 4}
	a := New(acfg, net.Endpoint("a"))
	bcfg := Config{MaxKeys: 50, MinReplicas: 1, Seed: 2, DataDir: dir}
	b, err := NewPersistent(bcfg, net.Endpoint("b"))
	if err != nil {
		t.Fatal(err)
	}
	a.Table().SetPath("0")
	b.Table().SetPath("0")
	a.AddReplica("b")
	b.AddReplica("a")

	doomed := item07(1, "doomed")
	a.Store().Insert(doomed)
	if _, err := b.SyncReplica(ctx, "a"); err != nil { // walk: b now holds the pair
		t.Fatal(err)
	}
	if _, err := b.SyncReplica(ctx, "a"); err != nil { // in-sync: fresh baselines both sides
		t.Fatal(err)
	}
	if !b.Store().Live(doomed.Key, doomed.Value) {
		t.Fatal("pair did not replicate to b")
	}
	if err := b.Close(); err != nil { // b goes away holding the live copy
		t.Fatal(err)
	}

	// The delete happens — and is GC-pruned — while b is gone.
	a.Store().Delete(doomed.Key, doomed.Value)
	for i := 0; i < 6; i++ {
		a.Store().Insert(item07(2+i, "filler"))
	}
	if n := a.Store().CompactTombstones(); n != 1 {
		t.Fatalf("pruned %d tombstones, want 1", n)
	}

	// b rejoins from disk: its recovered baseline predates a's GC floor,
	// so a's responder proves it stale and b rebuild-pulls. The pruned
	// delete cannot resurrect.
	b2, err := NewPersistent(bcfg, net.Endpoint("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if !b2.Store().Live(doomed.Key, doomed.Value) {
		t.Fatal("recovered store should still hold the stale live copy")
	}
	rep, err := b2.SyncReplica(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncRebuildPull {
		t.Fatalf("stale rejoin took %q, want rebuild-pull", rep.Kind)
	}
	if b2.Store().Live(doomed.Key, doomed.Value) {
		t.Error("pruned delete resurrected at the restarted replica")
	}
	if a.Store().Live(doomed.Key, doomed.Value) {
		t.Error("pruned delete resurrected at the authority")
	}

	// Contrast: the same rejoin WITHOUT a durable baseline (a fresh
	// in-memory peer with the stale copy) is indistinguishable from a
	// first contact, walk-merges, and resurrects the pair at the
	// authority. This is exactly the hole durable baselines close.
	c := New(Config{MaxKeys: 50, MinReplicas: 1, Seed: 3}, net.Endpoint("c"))
	c.Table().SetPath("0")
	c.AddReplica("a")
	c.Store().Add(replication.Item{Key: doomed.Key, Value: doomed.Value, Gen: doomed.Gen})
	if _, err := c.SyncReplica(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if !a.Store().Live(doomed.Key, doomed.Value) {
		t.Error("expected the baseline-less rejoin to resurrect the pair (documented residual risk)")
	}
}

// TestRestartMidWriteOverTCP restarts a persistent peer over the real TCP
// transport while its replica keeps absorbing writes, and requires the
// rejoin to resync via the exact-delta path and converge.
func TestRestartMidWriteOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	ctx := context.Background()
	dir := t.TempDir()

	epA, err := network.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	a := New(Config{MaxKeys: 50, MinReplicas: 1, Seed: 1}, epA)
	a.Table().SetPath("0")

	epB, err := network.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bAddr := string(epB.Addr())
	bcfg := Config{MaxKeys: 50, MinReplicas: 1, Seed: 2, DataDir: dir, WALSyncAlways: true}
	b, err := NewPersistent(bcfg, epB)
	if err != nil {
		t.Fatal(err)
	}
	b.Table().SetPath("0")
	a.AddReplica(network.Addr(bAddr))
	b.AddReplica(epA.Addr())

	for i := 0; i < 4; i++ {
		a.Store().Insert(item07(i, "pre"))
	}
	if _, err := b.SyncReplica(ctx, epA.Addr()); err != nil {
		t.Fatal(err)
	}
	b.MaintainTick(ctx, MaintenanceOptions{}) // persist the path

	// Mid-write: the peer dies between two batches of writes.
	a.Store().Insert(item07(5, "during-1"))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := epB.Close(); err != nil {
		t.Fatal(err)
	}
	a.Store().Insert(item07(6, "during-2"))
	a.Store().Delete(item07(0, "pre").Key, "pre")

	// Restart on the same TCP address with the same data directory.
	epB2, err := network.ListenTCP(bAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer epB2.Close()
	b2, err := NewPersistent(bcfg, epB2)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	rep, err := b2.SyncReplica(ctx, epA.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != SyncDelta {
		t.Fatalf("post-restart TCP sync took %q, want delta", rep.Kind)
	}
	if full := b2.Metrics.SyncsFull.Value(); full != 0 {
		t.Errorf("restarted peer ran %v full syncs, want 0", full)
	}
	if !b2.Store().Live(item07(5, "during-1").Key, "during-1") ||
		!b2.Store().Live(item07(6, "during-2").Key, "during-2") {
		t.Error("restarted peer missed writes issued while it was down")
	}
	if b2.Store().Live(item07(0, "pre").Key, "pre") {
		t.Error("restarted peer kept a pair deleted while it was down")
	}
}
