package overlay

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/workload"
)

// TestDedupeItemsDoesNotMutateInput is the regression test for the aliasing
// bug where dedupeItems built its output with items[:0], overwriting the
// caller's backing array (a response buffer other readers still held).
func TestDedupeItemsDoesNotMutateInput(t *testing.T) {
	k1 := keyspace.MustFromString("0101")
	k2 := keyspace.MustFromString("1010")
	items := []replication.Item{
		{Key: k2, Value: "b"},
		{Key: k1, Value: "a"},
		{Key: k2, Value: "b"},
		{Key: k1, Value: "a"},
	}
	orig := append([]replication.Item(nil), items...)
	out := dedupeItems(items)
	for i := range items {
		if items[i] != orig[i] {
			t.Fatalf("dedupeItems mutated its input at %d: %+v != %+v", i, items[i], orig[i])
		}
	}
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d items, want 2", len(out))
	}
	if out[0].Value != "a" || out[1].Value != "b" {
		t.Errorf("output not sorted by key: %+v", out)
	}
	// The output must not alias the input's backing array.
	out[0].Value = "mutated"
	if items[0].Value == "mutated" || items[1].Value == "mutated" {
		t.Error("output aliases the input slice")
	}
}

// TestAlphaRacePrunesStaleRef checks the heart of the α-parallel lookup: a
// query whose divergence level holds both a stale (offline) and a live
// reference succeeds at the live one without waiting for the stale one, and
// the stale reference is pruned from the routing table.
func TestAlphaRacePrunesStaleRef(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 30, Latency: network.ConstantLatency(2 * time.Millisecond)})
	cfg := Config{MaxKeys: 100, MinReplicas: 1, Alpha: 3, Seed: 30}
	origin := New(cfg, sim.Endpoint("origin"))
	dead := New(cfg, sim.Endpoint("dead"))
	live := New(cfg, sim.Endpoint("live"))

	origin.Table().SetPath("0")
	dead.Table().SetPath("1")
	live.Table().SetPath("1")
	origin.Table().Add(0, refFor(dead))
	origin.Table().Add(0, refFor(live))

	key := keyspace.MustFromString("1100")
	item := replication.Item{Key: key, Value: "payload"}
	dead.AddItems([]replication.Item{item})
	live.AddItems([]replication.Item{item})
	sim.SetOnline("dead", false)

	res, err := origin.Query(context.Background(), key)
	if err != nil {
		t.Fatalf("query with a live candidate in the race failed: %v", err)
	}
	if len(res.Items) != 1 || res.Items[0].Value != "payload" {
		t.Fatalf("unexpected result %+v", res.Items)
	}
	if res.Responsible != "live" {
		t.Errorf("responsible = %s, want live", res.Responsible)
	}
	// The loser's pruning runs concurrently with the winner's return; give
	// it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		pruned := true
		for _, ref := range origin.Table().Refs(0) {
			if ref.Addr == "dead" {
				pruned = false
			}
		}
		if pruned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale reference was not pruned")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentQueriesUnderLossAndChurn drives exact-match and range
// queries from many goroutines at once against an overlay suffering both
// message loss and 25% of the peers offline, asserting the success rate the
// redundant references and α-racing are meant to preserve. Run with -race
// this also exercises the query engine's synchronization.
func TestConcurrentQueriesUnderLossAndChurn(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 3, DoneAfterIdle: 3, MaxRefs: 4, Alpha: 3, Fanout: 4}
	c := newTestCluster(t, 48, 10, workload.Uniform{}, cfg, 31)
	c.replicateAll(t)
	c.construct(t, 60)

	// Only now make the network hostile: queries must cope with churn and
	// loss, construction ran clean.
	offline := map[int]bool{}
	for len(offline) < len(c.peers)/4 {
		offline[c.rng.Intn(len(c.peers))] = true
	}
	for idx := range offline {
		c.sim.SetOnline(c.peers[idx].Addr(), false)
	}
	c.sim.SetLoss(0.05)

	items := c.allItems()
	var onlineIdx []int
	for i := range c.peers {
		if !offline[i] {
			onlineIdx = append(onlineIdx, i)
		}
	}

	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	exactOK, exactN := 0, 0
	rangeOK, rangeN := 0, 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			localExactOK, localRangeOK := 0, 0
			for i := 0; i < perWorker; i++ {
				it := items[rng.Intn(len(items))]
				origin := c.peers[onlineIdx[rng.Intn(len(onlineIdx))]]
				if res, err := origin.Query(ctx, it.Key); err == nil && len(res.Items) > 0 {
					localExactOK++
				}
			}
			// A couple of multi-partition range queries per worker.
			for i := 0; i < 2; i++ {
				lo := 0.1 + 0.05*float64(rng.Intn(4))
				r := keyspace.NewRange(
					keyspace.MustFromFloat(lo, keyspace.DefaultDepth),
					keyspace.MustFromFloat(lo+0.4, keyspace.DefaultDepth),
				)
				origin := c.peers[onlineIdx[rng.Intn(len(onlineIdx))]]
				if res, err := origin.RangeQuery(ctx, r); err == nil && len(res.Items) > 0 {
					localRangeOK++
				}
			}
			mu.Lock()
			exactOK += localExactOK
			exactN += perWorker
			rangeOK += localRangeOK
			rangeN += 2
			mu.Unlock()
		}(31*1000 + int64(w))
	}
	wg.Wait()

	if rate := float64(exactOK) / float64(exactN); rate < 0.6 {
		t.Errorf("exact-match success rate under loss+churn %.2f below 0.6 (%d/%d)", rate, exactOK, exactN)
	}
	if rate := float64(rangeOK) / float64(rangeN); rate < 0.6 {
		t.Errorf("range query success rate under loss+churn %.2f below 0.6 (%d/%d)", rate, rangeOK, rangeN)
	}
}

// TestRangeFanoutMatchesSerial checks that the concurrent shower fan-out
// returns exactly the items of the serial branch-after-branch execution on a
// loss-free network.
func TestRangeFanoutMatchesSerial(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 2, DoneAfterIdle: 3}
	c := newTestCluster(t, 32, 10, workload.Uniform{}, cfg, 32)
	c.replicateAll(t)
	c.construct(t, 60)
	ctx := context.Background()
	r := keyspace.NewRange(
		keyspace.MustFromFloat(0.15, keyspace.DefaultDepth),
		keyspace.MustFromFloat(0.85, keyspace.DefaultDepth),
	)
	origin := c.peers[0]

	collect := func(fanout int) map[string]bool {
		origin.SetQueryConcurrency(0, fanout, -1)
		res, err := origin.RangeQuery(ctx, r)
		if err != nil {
			t.Fatalf("fanout=%d: %v", fanout, err)
		}
		out := map[string]bool{}
		for _, it := range res.Items {
			out[it.Key.String()+"/"+it.Value] = true
		}
		return out
	}
	serial := collect(1)
	concurrent := collect(8)
	if len(serial) == 0 {
		t.Fatal("serial range query returned nothing")
	}
	for k := range serial {
		if !concurrent[k] {
			t.Errorf("concurrent fan-out missed %s", k)
		}
	}
	for k := range concurrent {
		if !serial[k] {
			t.Errorf("concurrent fan-out returned extra %s", k)
		}
	}
}

// TestQueryBatchMatchesSingleQueries resolves a batch of existing keys and
// checks every key finds its item, like the corresponding single lookups.
func TestQueryBatchMatchesSingleQueries(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 2, DoneAfterIdle: 3}
	c := newTestCluster(t, 48, 10, workload.Uniform{}, cfg, 33)
	c.replicateAll(t)
	c.construct(t, 60)
	ctx := context.Background()
	items := c.allItems()
	origin := c.peers[1]

	const n = 40
	keys := make([]keyspace.Key, n)
	values := make([]string, n)
	for i := 0; i < n; i++ {
		it := items[c.rng.Intn(len(items))]
		keys[i] = it.Key
		values[i] = it.Value
	}
	results := origin.QueryBatch(ctx, keys)
	if len(results) != n {
		t.Fatalf("got %d results for %d keys", len(results), n)
	}
	batchOK := 0
	for i, res := range results {
		if res.Err != nil {
			continue
		}
		for _, it := range res.Items {
			if it.Value == values[i] {
				batchOK++
				break
			}
		}
	}
	singleOK := 0
	for i := range keys {
		if res, err := origin.Query(ctx, keys[i]); err == nil {
			for _, it := range res.Items {
				if it.Value == values[i] {
					singleOK++
					break
				}
			}
		}
	}
	if batchOK < singleOK {
		t.Errorf("batch resolved %d/%d keys, single lookups %d/%d", batchOK, n, singleOK, n)
	}
	if float64(batchOK)/float64(n) < 0.9 {
		t.Errorf("batch success rate %.2f below 0.9", float64(batchOK)/float64(n))
	}
}

// TestQueryBatchMergesAcrossResponders checks that a batch group does not
// stop at the first responder: a responder with a stale routing branch can
// dead-end some keys of the group, and a later responder must still fill
// those gaps (per-key merge, unlike a single lookup's first-answer-wins).
func TestQueryBatchMergesAcrossResponders(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 34})
	cfg := Config{MaxKeys: 100, MinReplicas: 1, Alpha: 2, Seed: 34}
	origin := New(cfg, sim.Endpoint("origin"))
	narrow := New(cfg, sim.Endpoint("narrow"))
	wide := New(cfg, sim.Endpoint("wide"))

	// origin covers "0"; both references cover parts of "1": narrow only
	// "10" (it dead-ends keys under "11" — no level-1 refs), wide all of
	// "1".
	origin.Table().SetPath("0")
	narrow.Table().SetPath("10")
	wide.Table().SetPath("1")
	origin.Table().Add(0, refFor(narrow))
	origin.Table().Add(0, refFor(wide))

	k10 := keyspace.MustFromString("1000")
	k11 := keyspace.MustFromString("1100")
	narrow.AddItems([]replication.Item{{Key: k10, Value: "ten"}})
	wide.AddItems([]replication.Item{
		{Key: k10, Value: "ten"},
		{Key: k11, Value: "eleven"},
	})

	for round := 0; round < 10; round++ {
		results := origin.QueryBatch(context.Background(), []keyspace.Key{k10, k11})
		if results[0].Err != nil || len(results[0].Items) == 0 {
			t.Fatalf("round %d: key under 10 unresolved: %+v", round, results[0])
		}
		if results[1].Err != nil || len(results[1].Items) == 0 || results[1].Items[0].Value != "eleven" {
			t.Fatalf("round %d: key under 11 unresolved (first responder's dead-end must not win): %+v", round, results[1])
		}
	}
}

// TestQueryBatchOverTCP round-trips the batch messages through the real TCP
// codec: two peers split at level 0, each holding the items of its half, and
// one batch spanning both halves.
func TestQueryBatchOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	cfg := Config{MaxKeys: 100, MinReplicas: 1}
	var peers []*Peer
	for i := 0; i < 2; i++ {
		ep, err := network.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		pcfg := cfg
		pcfg.Seed = int64(40 + i)
		peers = append(peers, New(pcfg, ep))
	}
	peers[0].Table().SetPath("0")
	peers[1].Table().SetPath("1")
	peers[0].Table().Add(0, refFor(peers[1]))
	peers[1].Table().Add(0, refFor(peers[0]))

	var keys []keyspace.Key
	for i := 0; i < 8; i++ {
		k := keyspace.MustFromFloat(float64(i)/8+0.01, 32)
		keys = append(keys, k)
		owner := peers[0]
		if k.Bit(0) == 1 {
			owner = peers[1]
		}
		owner.AddItems([]replication.Item{{Key: k, Value: fmt.Sprintf("tcp-%d", i)}})
	}
	results := peers[0].QueryBatch(ctx, keys)
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("key %d: %v", i, res.Err)
			continue
		}
		if len(res.Items) != 1 || res.Items[0].Value != fmt.Sprintf("tcp-%d", i) {
			t.Errorf("key %d: unexpected items %+v", i, res.Items)
		}
	}
}
