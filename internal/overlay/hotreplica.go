package overlay

import (
	"context"
	"sort"
	"sync"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
)

// This file implements load-triggered replica widening. A responsible peer
// tracks the rate of exact lookups it answers locally; when the rate stays
// above Config.HotReadThreshold, its maintenance tick recruits up to
// HotMaxExtra peers from the routing neighbourhood as temporary shadow
// replicas — each receives the partition's live content plus the sender's
// store clock, and serves lookups for the partition only while a one-hop
// probe confirms that clock has not moved (the same freshness protocol as
// the answer cache, so widened reads stay read-your-writes safe). Query
// answers from the hot peer advertise the widened set; forwarding peers
// absorb those addresses as extra routing references at the divergence
// level, which is what makes the α-raced router spread subsequent lookups
// across the recruits. When the rate subsides the hot peer releases its
// recruits; shadows also die on lease expiry or on any clock mismatch, and
// the stale widened references are pruned by the normal ping probes.

// shadowPartition is the state a recruited peer serves a foreign hot
// partition from.
type shadowPartition struct {
	// source is the responsible peer that recruited us; every serve probes
	// its clock.
	source network.Addr
	// path is the shadowed partition.
	path keyspace.Path
	// clock is the source's store clock when items was snapshotted.
	clock uint64
	// items is the partition's live content, keyed for exact lookup.
	items map[keyspace.Key][]replication.Item
	// expires ends the lease; an expired shadow is dropped, not served.
	expires time.Time
}

// handleRecruit installs (or, for Release, tears down) a shadow of the
// sender's partition.
func (p *Peer) handleRecruit(req RecruitRequest) RecruitResponse {
	if req.Release {
		p.hotMu.Lock()
		if p.shadow != nil && p.shadow.source == req.From {
			p.shadow = nil
		}
		p.hotMu.Unlock()
		return RecruitResponse{Accepted: true, Path: p.Path()}
	}
	// A peer inside the same partition is already a real replica; shadowing
	// would be pointless.
	if req.From == "" || req.Path.SamePartition(p.Path()) {
		return RecruitResponse{Accepted: false, Path: p.Path()}
	}
	items := make(map[keyspace.Key][]replication.Item, len(req.Items))
	for _, it := range req.Items {
		items[it.Key] = append(items[it.Key], it)
	}
	lease := req.Lease
	if lease <= 0 {
		lease = DefaultHotReplicaLease
	}
	p.hotMu.Lock()
	p.shadow = &shadowPartition{
		source:  req.From,
		path:    req.Path,
		clock:   req.Clock,
		items:   items,
		expires: p.now().Add(lease),
	}
	p.hotMu.Unlock()
	return RecruitResponse{Accepted: true, Path: p.Path()}
}

// shadowServe answers a lookup from the local shadow partition, if one
// covers the key and its clock token still matches the source's. A failed
// probe (clock moved, source gone, path changed) drops the shadow so the
// query falls through to normal routing.
func (p *Peer) shadowServe(ctx context.Context, req QueryRequest) (QueryResponse, bool) {
	p.hotMu.Lock()
	sh := p.shadow
	if sh != nil && p.now().After(sh.expires) {
		p.shadow = nil
		sh = nil
	}
	p.hotMu.Unlock()
	if sh == nil || !req.Key.HasPrefix(sh.path) {
		return QueryResponse{}, false
	}
	probe := ClockRequest{From: p.Addr()}
	p.Metrics.QueryBytes.Add(float64(network.MessageSize(probe)))
	raw, err := p.transport.Call(ctx, sh.source, probe)
	if err == nil {
		p.Metrics.QueryBytes.Add(float64(network.MessageSize(raw)))
		if cr, ok := raw.(ClockResponse); ok && cr.Clock == sh.clock && cr.Path.SamePartition(sh.path) {
			return QueryResponse{
				Found:           true,
				Items:           sh.items[req.Key],
				Hops:            req.Hops,
				Responsible:     sh.source,
				ResponsiblePath: sh.path,
				Clock:           sh.clock,
			}, true
		}
	}
	p.hotMu.Lock()
	if p.shadow == sh {
		p.shadow = nil
	}
	p.hotMu.Unlock()
	return QueryResponse{}, false
}

// ShadowActive reports whether the peer currently serves a shadow of a
// foreign hot partition (observability and tests).
func (p *Peer) ShadowActive() bool {
	p.hotMu.Lock()
	defer p.hotMu.Unlock()
	return p.shadow != nil && !p.now().After(p.shadow.expires)
}

// HotRecruits returns the addresses of the temporary replicas this peer
// currently holds for its own partition, sorted for determinism.
func (p *Peer) HotRecruits() []network.Addr {
	p.hotMu.Lock()
	defer p.hotMu.Unlock()
	now := p.now()
	out := make([]network.Addr, 0, len(p.recruits))
	for a, exp := range p.recruits {
		if now.Before(exp) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// noteRead records one locally answered exact lookup for the read-rate
// estimate.
func (p *Peer) noteRead() {
	if p.readRate != nil {
		p.readRate.Note(p.now())
	}
}

// wideSet returns the current unexpired recruit addresses for advertising
// on query answers.
func (p *Peer) wideSet() []network.Addr {
	p.hotMu.Lock()
	defer p.hotMu.Unlock()
	if len(p.recruits) == 0 {
		return nil
	}
	now := p.now()
	var out []network.Addr
	for a, exp := range p.recruits {
		if now.Before(exp) {
			out = append(out, a)
		}
	}
	return out
}

// absorbWideRefs adds the widened replica set advertised on a query answer
// as routing references at the divergence level, so this peer's next
// lookups for the partition race across the recruits too. The references
// carry the partition's path; once a recruit's shadow lapses, the regular
// ping probe sees its real path and prunes the reference.
func (p *Peer) absorbWideRefs(level int, resp QueryResponse) {
	if len(resp.Wide) == 0 || !refComplementary(p.Path(), level, resp.ResponsiblePath) {
		return
	}
	for _, a := range resp.Wide {
		if a == "" || a == p.Addr() {
			continue
		}
		p.table.Add(level, routing.Ref{Addr: a, Path: resp.ResponsiblePath})
	}
}

// maintainHotSet runs the widening state machine for this peer's own
// partition: expire stale recruit leases, recruit (or refresh) shadows
// while the read rate is above the threshold, release them once it
// subsides. Returns how many recruits were added and released.
func (p *Peer) maintainHotSet(ctx context.Context) (recruited, released int) {
	if p.readRate == nil {
		return 0, 0
	}
	cfg := p.Config()
	now := p.now()
	rate := p.readRate.Rate(now)

	p.hotMu.Lock()
	for a, exp := range p.recruits {
		if !now.Before(exp) {
			delete(p.recruits, a)
		}
	}
	current := make([]network.Addr, 0, len(p.recruits))
	for a := range p.recruits {
		current = append(current, a)
	}
	p.hotMu.Unlock()

	if rate < cfg.HotReadThreshold {
		if len(current) == 0 {
			return 0, 0
		}
		// Load subsided: dismiss every recruit. Best effort — a recruit that
		// misses the release still stops serving at lease expiry.
		release := RecruitRequest{From: p.Addr(), Path: p.Path(), Release: true}
		forEachBounded(p.queryFanout(), current, func(a network.Addr) {
			p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(release)))
			if raw, err := p.transport.Call(ctx, a, release); err == nil {
				p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(raw)))
			}
		})
		p.hotMu.Lock()
		released = len(p.recruits)
		p.recruits = make(map[network.Addr]time.Time)
		p.hotMu.Unlock()
		p.Metrics.WideningReleases.Add(float64(released))
		return 0, released
	}

	// Hot: refresh the existing recruits and enlist new candidates up to
	// HotMaxExtra. Snapshot the clock BEFORE the content: a write landing
	// between the two reads then makes the shadow's token stale (a harmless
	// probe miss), never the content.
	clock := p.store.Clock()
	items := p.store.ItemsWithPrefix(p.Path())
	targets := append([]network.Addr(nil), current...)
	if len(targets) < cfg.HotMaxExtra {
		targets = append(targets, p.recruitCandidates(cfg.HotMaxExtra-len(targets), targets)...)
	}
	if len(targets) == 0 {
		return 0, 0
	}
	known := make(map[network.Addr]bool, len(current))
	for _, a := range current {
		known[a] = true
	}
	req := RecruitRequest{
		From:  p.Addr(),
		Path:  p.Path(),
		Clock: clock,
		Lease: cfg.HotReplicaLease,
		Items: items,
	}
	var mu sync.Mutex
	forEachBounded(p.queryFanout(), targets, func(a network.Addr) {
		p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(req)))
		raw, err := p.transport.Call(ctx, a, req)
		if err != nil {
			return
		}
		p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(raw)))
		resp, ok := raw.(RecruitResponse)
		if !ok || !resp.Accepted {
			return
		}
		p.hotMu.Lock()
		p.recruits[a] = now.Add(cfg.HotReplicaLease)
		p.hotMu.Unlock()
		mu.Lock()
		if !known[a] {
			recruited++
		}
		mu.Unlock()
	})
	p.Metrics.WideningRecruits.Add(float64(recruited))
	return recruited, 0
}

// recruitCandidates picks up to n routing-table peers that are neither
// partition members nor already recruited, shuffled so repeated recruitment
// spreads over the neighbourhood.
func (p *Peer) recruitCandidates(n int, exclude []network.Addr) []network.Addr {
	if n <= 0 {
		return nil
	}
	skip := make(map[network.Addr]bool, len(exclude)+1)
	skip[p.Addr()] = true
	for _, a := range exclude {
		skip[a] = true
	}
	for _, a := range p.Replicas() {
		skip[a] = true
	}
	var out []network.Addr
	seen := make(map[network.Addr]bool)
	for _, ref := range p.table.All() {
		if skip[ref.Addr] || seen[ref.Addr] {
			continue
		}
		seen[ref.Addr] = true
		out = append(out, ref.Addr)
	}
	p.mu.Lock()
	p.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	p.mu.Unlock()
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// notifyTombstonePrune pushes the batch of pairs a GC compaction just
// pruned to every known replica, so they drop the same tombstones in this
// round instead of re-learning the prune through later digest syncs.
func (p *Peer) notifyTombstonePrune(ctx context.Context, pruned []replication.Item) {
	replicas := p.Replicas()
	if len(replicas) == 0 {
		return
	}
	req := TombstonePruneRequest{From: p.Addr(), Path: p.Path(), Pairs: pruned}
	forEachBounded(p.queryFanout(), replicas, func(a network.Addr) {
		p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(req)))
		if raw, err := p.transport.Call(ctx, a, req); err == nil {
			p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(raw)))
		}
	})
}

// handleTombstonePrune applies a cooperative prune batch from a replica.
func (p *Peer) handleTombstonePrune(req TombstonePruneRequest) TombstonePruneResponse {
	if !req.Path.SamePartition(p.Path()) {
		return TombstonePruneResponse{}
	}
	n := p.store.DropTombstones(req.Pairs)
	if n > 0 {
		p.Metrics.TombstonesPruned.Add(float64(n))
	}
	return TombstonePruneResponse{Dropped: n}
}
