package overlay

// This file hand-writes the compact binary wire codec for every protocol
// message (wire.Marshaler on the value, wire.Unmarshaler on the pointer),
// which is what routes them through the TCP transport's binary path: no
// reflection touches a field, integers travel as varints and keys as their
// significant bits. The field order within each codec IS the wire format —
// changing it breaks deployed clusters, which is why the golden-vector test
// (wirecodec_test.go) pins the exact bytes of every message.
//
// Conventions:
//
//   - uint64 fields (clocks, generations, ids): unsigned varints.
//   - int fields (hops, TTLs, counts): zigzag varints, so the occasional
//     negative value survives bit-exactly.
//   - bools: one byte.
//   - keys: uvarint bit length plus the significant bits right-aligned in a
//     uvarint, so short keys cost two bytes instead of nine.
//   - slices: uvarint element count plus the elements. A decoded empty
//     slice is nil, keeping decode(encode(x)) == x for the zero values the
//     JSON codec produces.
//   - floats: their IEEE bit pattern as fixed 8 bytes.

import (
	"math"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
	"pgrid/internal/wire"
)

// maxKeyBits is the longest representable key (keyspace.Key holds 64 bits).
const maxKeyBits = 64

// sliceCapHint bounds the initial capacity allocated for a decoded slice, so
// a corrupt element count cannot drive a huge allocation before the decoder
// runs out of buffer.
const sliceCapHint = 4096

func capHint(n int) int {
	if n > sliceCapHint {
		return sliceCapHint
	}
	return n
}

// --- field helpers ----------------------------------------------------------

func appendKey(b []byte, k keyspace.Key) []byte {
	b = wire.AppendUvarint(b, uint64(k.Len))
	bits := k.Bits
	if k.Len == 0 {
		bits = 0
	} else if k.Len < 64 {
		bits >>= uint(64 - k.Len)
	}
	return wire.AppendUvarint(b, bits)
}

func decodeKey(d *wire.Decoder) keyspace.Key {
	length := d.Uvarint()
	bits := d.Uvarint()
	if d.Err() != nil {
		return keyspace.Key{}
	}
	if length > maxKeyBits || (length < 64 && bits>>length != 0 && length != 0) || (length == 0 && bits != 0) {
		d.Reject()
		return keyspace.Key{}
	}
	if length > 0 && length < 64 {
		bits <<= uint(64 - length)
	}
	k, err := keyspace.FromBits(bits, int(length))
	if err != nil {
		d.Reject()
		return keyspace.Key{}
	}
	return k
}

func appendPath(b []byte, p keyspace.Path) []byte { return wire.AppendString(b, string(p)) }

func decodePath(d *wire.Decoder) keyspace.Path { return keyspace.Path(d.String()) }

func appendAddr(b []byte, a network.Addr) []byte { return wire.AppendString(b, string(a)) }

func decodeAddr(d *wire.Decoder) network.Addr { return network.Addr(d.String()) }

func appendItem(b []byte, it replication.Item) []byte {
	b = appendKey(b, it.Key)
	b = wire.AppendString(b, it.Value)
	return wire.AppendUvarint(b, it.Gen)
}

func decodeItem(d *wire.Decoder) replication.Item {
	var it replication.Item
	it.Key = decodeKey(d)
	it.Value = d.String()
	it.Gen = d.Uvarint()
	return it
}

func appendItems(b []byte, items []replication.Item) []byte {
	b = wire.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = appendItem(b, it)
	}
	return b
}

func decodeItems(d *wire.Decoder) []replication.Item {
	n := d.Int()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]replication.Item, 0, capHint(n))
	for i := 0; i < n; i++ {
		out = append(out, decodeItem(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

func appendAddrs(b []byte, addrs []network.Addr) []byte {
	b = wire.AppendUvarint(b, uint64(len(addrs)))
	for _, a := range addrs {
		b = appendAddr(b, a)
	}
	return b
}

func decodeAddrs(d *wire.Decoder) []network.Addr {
	n := d.Int()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]network.Addr, 0, capHint(n))
	for i := 0; i < n; i++ {
		out = append(out, decodeAddr(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

func appendPaths(b []byte, paths []keyspace.Path) []byte {
	b = wire.AppendUvarint(b, uint64(len(paths)))
	for _, p := range paths {
		b = appendPath(b, p)
	}
	return b
}

func decodePaths(d *wire.Decoder) []keyspace.Path {
	n := d.Int()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]keyspace.Path, 0, capHint(n))
	for i := 0; i < n; i++ {
		out = append(out, decodePath(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

func appendRef(b []byte, r routing.Ref) []byte {
	b = appendAddr(b, r.Addr)
	return appendPath(b, r.Path)
}

func decodeRef(d *wire.Decoder) routing.Ref {
	var r routing.Ref
	r.Addr = decodeAddr(d)
	r.Path = decodePath(d)
	return r
}

func appendRefLevels(b []byte, levels [][]routing.Ref) []byte {
	b = wire.AppendUvarint(b, uint64(len(levels)))
	for _, refs := range levels {
		b = wire.AppendUvarint(b, uint64(len(refs)))
		for _, r := range refs {
			b = appendRef(b, r)
		}
	}
	return b
}

func decodeRefLevels(d *wire.Decoder) [][]routing.Ref {
	n := d.Int()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([][]routing.Ref, 0, capHint(n))
	for i := 0; i < n; i++ {
		m := d.Int()
		if d.Err() != nil {
			return nil
		}
		var refs []routing.Ref
		if m > 0 {
			refs = make([]routing.Ref, 0, capHint(m))
			for j := 0; j < m; j++ {
				refs = append(refs, decodeRef(d))
				if d.Err() != nil {
					return nil
				}
			}
		}
		out = append(out, refs)
	}
	return out
}

func appendBuckets(b []byte, buckets []replication.BucketDigest) []byte {
	b = wire.AppendUvarint(b, uint64(len(buckets)))
	for _, bd := range buckets {
		b = appendPath(b, bd.Prefix)
		b = wire.AppendFixed64(b, bd.Hash)
		b = wire.AppendVarint(b, int64(bd.Count))
	}
	return b
}

func decodeBuckets(d *wire.Decoder) []replication.BucketDigest {
	n := d.Int()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]replication.BucketDigest, 0, capHint(n))
	for i := 0; i < n; i++ {
		var bd replication.BucketDigest
		bd.Prefix = decodePath(d)
		bd.Hash = d.Fixed64()
		bd.Count = int(d.Varint())
		if d.Err() != nil {
			return nil
		}
		out = append(out, bd)
	}
	return out
}

// --- construction messages --------------------------------------------------

// AppendWire implements wire.Marshaler.
func (r ExchangeRequest) AppendWire(b []byte) []byte {
	b = appendAddr(b, r.From)
	b = appendPath(b, r.Path)
	b = wire.AppendFixed64(b, math.Float64bits(r.Estimate))
	b = appendItems(b, r.Items)
	b = appendPath(b, r.RoutingPath)
	b = appendRefLevels(b, r.RoutingRefs)
	b = appendAddrs(b, r.Replicas)
	return wire.AppendBool(b, r.Done)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *ExchangeRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	r.Path = decodePath(d)
	r.Estimate = math.Float64frombits(d.Fixed64())
	r.Items = decodeItems(d)
	r.RoutingPath = decodePath(d)
	r.RoutingRefs = decodeRefLevels(d)
	r.Replicas = decodeAddrs(d)
	r.Done = d.Bool()
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r ExchangeResponse) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, string(r.Action))
	b = appendAddr(b, r.From)
	b = appendPath(b, r.ResponderPath)
	b = appendPath(b, r.NewPath)
	b = wire.AppendBool(b, r.NewPathSet)
	b = appendItems(b, r.Items)
	b = wire.AppendBool(b, r.TakenOver)
	b = wire.AppendUvarint(b, uint64(len(r.Refs)))
	for _, lr := range r.Refs {
		b = wire.AppendVarint(b, int64(lr.Level))
		b = appendRef(b, lr.Ref)
	}
	b = appendPath(b, r.RoutingPath)
	b = appendRefLevels(b, r.RoutingRefs)
	b = appendAddrs(b, r.Replicas)
	b = appendAddr(b, r.Referral)
	return wire.AppendBool(b, r.ResponderDone)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *ExchangeResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Action = Action(d.String())
	r.From = decodeAddr(d)
	r.ResponderPath = decodePath(d)
	r.NewPath = decodePath(d)
	r.NewPathSet = d.Bool()
	r.Items = decodeItems(d)
	r.TakenOver = d.Bool()
	if n := d.Int(); d.Err() == nil && n > 0 {
		r.Refs = make([]LevelRef, 0, capHint(n))
		for i := 0; i < n; i++ {
			var lr LevelRef
			lr.Level = int(d.Varint())
			lr.Ref = decodeRef(d)
			if d.Err() != nil {
				break
			}
			r.Refs = append(r.Refs, lr)
		}
	}
	r.RoutingPath = decodePath(d)
	r.RoutingRefs = decodeRefLevels(d)
	r.Replicas = decodeAddrs(d)
	r.Referral = decodeAddr(d)
	r.ResponderDone = d.Bool()
	return d.Finish()
}

// --- query messages ---------------------------------------------------------

// AppendWire implements wire.Marshaler.
func (r QueryRequest) AppendWire(b []byte) []byte {
	b = appendKey(b, r.Key)
	b = wire.AppendVarint(b, int64(r.Hops))
	b = wire.AppendVarint(b, int64(r.TTL))
	return wire.AppendBool(b, r.Bypass)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *QueryRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Key = decodeKey(d)
	r.Hops = int(d.Varint())
	r.TTL = int(d.Varint())
	r.Bypass = d.Bool()
	return d.Finish()
}

func appendQueryResponse(b []byte, r QueryResponse) []byte {
	b = wire.AppendBool(b, r.Found)
	b = appendItems(b, r.Items)
	b = wire.AppendVarint(b, int64(r.Hops))
	b = appendAddr(b, r.Responsible)
	b = appendPath(b, r.ResponsiblePath)
	b = wire.AppendUvarint(b, r.Clock)
	b = wire.AppendBool(b, r.Cached)
	return appendAddrs(b, r.Wide)
}

func decodeQueryResponse(d *wire.Decoder) QueryResponse {
	var r QueryResponse
	r.Found = d.Bool()
	r.Items = decodeItems(d)
	r.Hops = int(d.Varint())
	r.Responsible = decodeAddr(d)
	r.ResponsiblePath = decodePath(d)
	r.Clock = d.Uvarint()
	r.Cached = d.Bool()
	r.Wide = decodeAddrs(d)
	return r
}

// AppendWire implements wire.Marshaler.
func (r QueryResponse) AppendWire(b []byte) []byte { return appendQueryResponse(b, r) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *QueryResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	*r = decodeQueryResponse(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r BatchQueryRequest) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(r.Keys)))
	for _, k := range r.Keys {
		b = appendKey(b, k)
	}
	b = wire.AppendVarint(b, int64(r.Hops))
	return wire.AppendVarint(b, int64(r.TTL))
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *BatchQueryRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	if n := d.Int(); d.Err() == nil && n > 0 {
		r.Keys = make([]keyspace.Key, 0, capHint(n))
		for i := 0; i < n; i++ {
			r.Keys = append(r.Keys, decodeKey(d))
			if d.Err() != nil {
				break
			}
		}
	}
	r.Hops = int(d.Varint())
	r.TTL = int(d.Varint())
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r BatchQueryResponse) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(r.Results)))
	for _, q := range r.Results {
		b = appendQueryResponse(b, q)
	}
	return b
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *BatchQueryResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	if n := d.Int(); d.Err() == nil && n > 0 {
		r.Results = make([]QueryResponse, 0, capHint(n))
		for i := 0; i < n; i++ {
			r.Results = append(r.Results, decodeQueryResponse(d))
			if d.Err() != nil {
				break
			}
		}
	}
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r RangeRequest) AppendWire(b []byte) []byte {
	b = appendKey(b, r.Lo)
	b = appendKey(b, r.Hi)
	b = wire.AppendBool(b, r.HiUnbounded)
	b = wire.AppendVarint(b, int64(r.Hops))
	return wire.AppendVarint(b, int64(r.TTL))
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *RangeRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Lo = decodeKey(d)
	r.Hi = decodeKey(d)
	r.HiUnbounded = d.Bool()
	r.Hops = int(d.Varint())
	r.TTL = int(d.Varint())
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r RangeResponse) AppendWire(b []byte) []byte {
	b = appendItems(b, r.Items)
	b = wire.AppendVarint(b, int64(r.Hops))
	b = wire.AppendVarint(b, int64(r.Partitions))
	return wire.AppendBool(b, r.Incomplete)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *RangeResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Items = decodeItems(d)
	r.Hops = int(d.Varint())
	r.Partitions = int(d.Varint())
	r.Incomplete = d.Bool()
	return d.Finish()
}

// --- replication messages ---------------------------------------------------

// AppendWire implements wire.Marshaler.
func (r ReplicateRequest) AppendWire(b []byte) []byte {
	b = appendAddr(b, r.From)
	b = appendPath(b, r.Path)
	b = appendItems(b, r.Items)
	b = appendItems(b, r.Tombstones)
	b = wire.AppendBool(b, r.AntiEntropy)
	return appendAddrs(b, r.Replicas)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *ReplicateRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	r.Path = decodePath(d)
	r.Items = decodeItems(d)
	r.Tombstones = decodeItems(d)
	r.AntiEntropy = d.Bool()
	r.Replicas = decodeAddrs(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r ReplicateResponse) AppendWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(r.Accepted))
	b = appendItems(b, r.Items)
	b = appendItems(b, r.Tombstones)
	b = appendAddrs(b, r.Replicas)
	return appendPath(b, r.Path)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *ReplicateResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Accepted = int(d.Varint())
	r.Items = decodeItems(d)
	r.Tombstones = decodeItems(d)
	r.Replicas = decodeAddrs(d)
	r.Path = decodePath(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r PingRequest) AppendWire(b []byte) []byte { return appendAddr(b, r.From) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *PingRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r PingResponse) AppendWire(b []byte) []byte {
	b = appendPath(b, r.Path)
	return wire.AppendBool(b, r.Done)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *PingResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Path = decodePath(d)
	r.Done = d.Bool()
	return d.Finish()
}

// --- mutation messages ------------------------------------------------------

// AppendWire implements wire.Marshaler.
func (r InsertRequest) AppendWire(b []byte) []byte {
	b = appendItem(b, r.Item)
	b = wire.AppendUvarint(b, r.ID)
	b = wire.AppendVarint(b, int64(r.Hops))
	b = wire.AppendVarint(b, int64(r.TTL))
	return wire.AppendBool(b, r.Direct)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *InsertRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Item = decodeItem(d)
	r.ID = d.Uvarint()
	r.Hops = int(d.Varint())
	r.TTL = int(d.Varint())
	r.Direct = d.Bool()
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r DeleteRequest) AppendWire(b []byte) []byte {
	b = appendKey(b, r.Key)
	b = wire.AppendString(b, r.Value)
	b = wire.AppendUvarint(b, r.Gen)
	b = wire.AppendUvarint(b, r.ID)
	b = wire.AppendVarint(b, int64(r.Hops))
	b = wire.AppendVarint(b, int64(r.TTL))
	return wire.AppendBool(b, r.Direct)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *DeleteRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Key = decodeKey(d)
	r.Value = d.String()
	r.Gen = d.Uvarint()
	r.ID = d.Uvarint()
	r.Hops = int(d.Varint())
	r.TTL = int(d.Varint())
	r.Direct = d.Bool()
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r MutateResponse) AppendWire(b []byte) []byte {
	b = wire.AppendBool(b, r.Found)
	b = wire.AppendVarint(b, int64(r.Acks))
	b = wire.AppendVarint(b, int64(r.Replicas))
	b = wire.AppendUvarint(b, r.Gen)
	b = wire.AppendVarint(b, int64(r.Hops))
	b = appendAddr(b, r.Responsible)
	return appendPath(b, r.ResponsiblePath)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *MutateResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Found = d.Bool()
	r.Acks = int(d.Varint())
	r.Replicas = int(d.Varint())
	r.Gen = d.Uvarint()
	r.Hops = int(d.Varint())
	r.Responsible = decodeAddr(d)
	r.ResponsiblePath = decodePath(d)
	return d.Finish()
}

// --- anti-entropy messages --------------------------------------------------

// AppendWire implements wire.Marshaler.
func (r DigestRequest) AppendWire(b []byte) []byte {
	b = appendAddr(b, r.From)
	b = appendPath(b, r.Path)
	b = wire.AppendBool(b, r.Root)
	b = wire.AppendUvarint(b, r.Clock)
	b = wire.AppendUvarint(b, r.Since)
	b = appendBuckets(b, r.Buckets)
	return appendAddrs(b, r.Replicas)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *DigestRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	r.Path = decodePath(d)
	r.Root = d.Bool()
	r.Clock = d.Uvarint()
	r.Since = d.Uvarint()
	r.Buckets = decodeBuckets(d)
	r.Replicas = decodeAddrs(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r DigestResponse) AppendWire(b []byte) []byte {
	b = appendPath(b, r.Path)
	b = wire.AppendUvarint(b, r.Clock)
	b = wire.AppendBool(b, r.InSync)
	b = wire.AppendBool(b, r.Incomparable)
	b = wire.AppendBool(b, r.DeltaOK)
	b = appendPaths(b, r.Mismatch)
	return appendAddrs(b, r.Replicas)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *DigestResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Path = decodePath(d)
	r.Clock = d.Uvarint()
	r.InSync = d.Bool()
	r.Incomparable = d.Bool()
	r.DeltaOK = d.Bool()
	r.Mismatch = decodePaths(d)
	r.Replicas = decodeAddrs(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r DeltaRequest) AppendWire(b []byte) []byte {
	b = appendAddr(b, r.From)
	b = appendPath(b, r.Path)
	b = wire.AppendUvarint(b, r.Clock)
	b = wire.AppendUvarint(b, r.Since)
	b = appendPaths(b, r.Prefixes)
	b = wire.AppendBool(b, r.Full)
	b = wire.AppendBool(b, r.Rebuild)
	b = wire.AppendBool(b, r.Pull)
	b = appendItems(b, r.Items)
	b = appendItems(b, r.Tombstones)
	return appendAddrs(b, r.Replicas)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *DeltaRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	r.Path = decodePath(d)
	r.Clock = d.Uvarint()
	r.Since = d.Uvarint()
	r.Prefixes = decodePaths(d)
	r.Full = d.Bool()
	r.Rebuild = d.Bool()
	r.Pull = d.Bool()
	r.Items = decodeItems(d)
	r.Tombstones = decodeItems(d)
	r.Replicas = decodeAddrs(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r DeltaResponse) AppendWire(b []byte) []byte {
	b = appendPath(b, r.Path)
	b = wire.AppendUvarint(b, r.Clock)
	b = wire.AppendBool(b, r.Incomparable)
	b = wire.AppendVarint(b, int64(r.Applied))
	b = appendItems(b, r.Items)
	b = appendItems(b, r.Tombstones)
	return appendAddrs(b, r.Replicas)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *DeltaResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Path = decodePath(d)
	r.Clock = d.Uvarint()
	r.Incomparable = d.Bool()
	r.Applied = int(d.Varint())
	r.Items = decodeItems(d)
	r.Tombstones = decodeItems(d)
	r.Replicas = decodeAddrs(d)
	return d.Finish()
}

// --- cache and hot-replication messages ---------------------------------------

// AppendWire implements wire.Marshaler.
func (r ClockRequest) AppendWire(b []byte) []byte { return appendAddr(b, r.From) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *ClockRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r ClockResponse) AppendWire(b []byte) []byte {
	b = appendPath(b, r.Path)
	return wire.AppendUvarint(b, r.Clock)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *ClockResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Path = decodePath(d)
	r.Clock = d.Uvarint()
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r RecruitRequest) AppendWire(b []byte) []byte {
	b = appendAddr(b, r.From)
	b = appendPath(b, r.Path)
	b = wire.AppendUvarint(b, r.Clock)
	b = wire.AppendVarint(b, int64(r.Lease))
	b = wire.AppendBool(b, r.Release)
	return appendItems(b, r.Items)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *RecruitRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	r.Path = decodePath(d)
	r.Clock = d.Uvarint()
	r.Lease = time.Duration(d.Varint())
	r.Release = d.Bool()
	r.Items = decodeItems(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r RecruitResponse) AppendWire(b []byte) []byte {
	b = wire.AppendBool(b, r.Accepted)
	return appendPath(b, r.Path)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *RecruitResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Accepted = d.Bool()
	r.Path = decodePath(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r TombstonePruneRequest) AppendWire(b []byte) []byte {
	b = appendAddr(b, r.From)
	b = appendPath(b, r.Path)
	return appendItems(b, r.Pairs)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *TombstonePruneRequest) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.From = decodeAddr(d)
	r.Path = decodePath(d)
	r.Pairs = decodeItems(d)
	return d.Finish()
}

// AppendWire implements wire.Marshaler.
func (r TombstonePruneResponse) AppendWire(b []byte) []byte {
	return wire.AppendVarint(b, int64(r.Dropped))
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *TombstonePruneResponse) UnmarshalWire(data []byte) error {
	d := wire.NewDecoder(data)
	r.Dropped = int(d.Varint())
	return d.Finish()
}
