package overlay

import (
	"pgrid/internal/core"
	"pgrid/internal/keyspace"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
)

// This file implements the responder side of a construction encounter
// (Figure 2). The contacted peer holds its own lock while computing the
// outcome, applies its share of the state change immediately, and returns
// instructions for the initiator, which applies them optimistically under
// its own lock. Holding only one peer's lock at a time keeps the protocol
// deadlock free even though encounters are fully concurrent.

// handleExchange processes a construction interaction initiated by another
// peer.
func (p *Peer) handleExchange(req ExchangeRequest) ExchangeResponse {
	p.mu.Lock()
	defer p.mu.Unlock()

	myPath := p.table.Path()
	resp := ExchangeResponse{
		Action:        ActionNone,
		From:          p.Addr(),
		ResponderPath: myPath,
		ResponderDone: p.done,
	}

	switch {
	case myPath.SamePartition(req.Path):
		switch {
		case myPath.Depth() == req.Path.Depth():
			p.respondSamePath(req, &resp)
		case myPath.Depth() > req.Path.Depth():
			p.respondInitiatorBehind(req, &resp)
		default:
			p.respondResponderBehind(req, &resp)
		}
	default:
		p.respondRefer(req, &resp)
	}

	// Regardless of the outcome, exchange routing information (Figure 2,
	// possibility 3) and gossip replica lists when the peers still share a
	// partition.
	p.table.MergeFrom(req.RoutingPath, req.RoutingRefs)
	resp.RoutingPath, resp.RoutingRefs = p.table.Snapshot()
	resp.ResponderPath = p.table.Path()
	resp.ResponderDone = p.done
	return resp
}

// respondSamePath handles an encounter of two peers with identical paths:
// split the partition if it is overloaded and populous enough, otherwise
// become replicas and reconcile content.
func (p *Peer) respondSamePath(req ExchangeRequest, resp *ExchangeResponse) {
	path := p.table.Path()
	myItems := p.store.ItemsWithPrefix(path)
	load := len(myItems)
	// Estimate how many replicas currently serve this partition from the
	// overlap of the two peers' item sets (Section 4.2), and from that the
	// partition's total data load: right after the initial replication every
	// item exists MinReplicas+1 times, so the number of distinct items in
	// the partition is approximately replicas * localLoad / (MinReplicas+1).
	// Overlap is counted over full items (key plus value): only copies made
	// by the replication process are shared, which is exactly the model the
	// estimator assumes. Counting bare keys would conflate replication with
	// naturally shared keys (e.g. frequent terms of an inverted file).
	overlap := overlapItems(myItems, req.Items)
	replicaEstimate := replication.EstimateReplicas(load, len(req.Items), overlap, p.cfg.MinReplicas)
	localLoad := load
	if len(req.Items) > localLoad {
		localLoad = len(req.Items)
	}
	partitionLoad := replicaEstimate * float64(localLoad) / float64(p.cfg.MinReplicas+1)

	overloaded := partitionLoad > float64(p.cfg.MaxKeys) || localLoad > p.cfg.MaxKeys
	enoughPeers := replicaEstimate >= 2*float64(p.cfg.MinReplicas)
	canDeepen := path.Depth() < p.cfg.MaxDepth

	if overloaded && enoughPeers && canDeepen {
		// Decide the split parameters from both peers' views of the load.
		est := p.decider.EstimateP0(p.store.Keys(), path, p.rng)
		if req.Estimate > 0 && req.Estimate < 1 {
			est = (est + req.Estimate) / 2
		}
		// For extremely skewed partitions the proportional target would give
		// the light side less than the minimal replication; Algorithm 1 pins
		// the light side to n_min peers in that case (lines 6-10), which
		// corresponds to clamping the target fraction to n_min / replicas.
		minShare := float64(p.cfg.MinReplicas) / replicaEstimate
		if minShare > 0.5 {
			minShare = 0.5
		}
		if est < minShare {
			est = minShare
		}
		if est > 1-minShare {
			est = 1 - minShare
		}
		sd := p.decider.ForEstimate(est)
		if sd.ShouldBalancedSplit(p.rng) {
			p.performSplit(req, resp, sd)
			return
		}
		// The alpha probability said no: unproductive this time, but the
		// partition is still overloaded so the peer is not done.
		resp.Action = ActionNone
		p.markProductiveLocked()
		return
	}

	// Become replicas: absorb the initiator's items, return what it lacks,
	// and remember each other as replicas.
	newItems := p.store.AddAll(req.Items)
	p.Metrics.KeysMoved.Add(float64(len(req.Items)))
	have := make(map[keyspace.Key]bool, len(req.Items))
	for _, it := range req.Items {
		have[it.Key] = true
	}
	for _, it := range p.store.ItemsWithPrefix(path) {
		if !have[it.Key] {
			resp.Items = append(resp.Items, it)
		}
	}
	p.Metrics.KeysMoved.Add(float64(len(resp.Items)))
	p.addReplicaLocked(req.From)
	for _, r := range req.Replicas {
		p.addReplicaLocked(r)
	}
	resp.Replicas = p.snapshotReplicasLocked()
	resp.Action = ActionReplicate
	if newItems == 0 && len(resp.Items) == 0 {
		// Fully synchronised replicas of a partition that cannot (or need
		// not) be split any further: this is the termination signal of
		// Section 4.2. Partitions that are overloaded but lack the peers to
		// split also end here — nothing more can be done locally.
		p.markIdleLocked()
	} else {
		p.markProductiveLocked()
	}
}

// performSplit executes a balanced split between the responder and the
// initiator (both currently at the same path). Callers hold p.mu.
func (p *Peer) performSplit(req ExchangeRequest, resp *ExchangeResponse, sd core.SplitDecision) {
	path := p.table.Path()
	level := path.Depth()
	// Assign the two sub-partitions randomly (the balanced split is
	// symmetric).
	myBit, theirBit := 0, 1
	if p.randomLocked() < 0.5 {
		myBit, theirBit = 1, 0
	}
	myNew := path.Child(myBit)
	theirNew := path.Child(theirBit)

	// Absorb the initiator's items that fall on the responder's side, hand
	// over the responder's items on the initiator's side.
	taken := filterItems(req.Items, myNew)
	p.store.AddAll(taken)
	give := p.store.RemovePrefix(theirNew)
	p.Metrics.KeysMoved.Add(float64(len(taken) + len(give)))

	// Extend the responder's own path and reference the initiator at the
	// split level; the replica list is stale after a split.
	p.table.Extend(myBit, routing.Ref{Addr: req.From, Path: theirNew})
	p.clearReplicasLocked()
	p.markProductiveLocked()

	resp.Action = ActionSplit
	resp.NewPath = theirNew
	resp.NewPathSet = true
	resp.Items = give
	resp.TakenOver = true
	resp.Refs = []LevelRef{{Level: level, Ref: routing.Ref{Addr: p.Addr(), Path: myNew}}}
	_ = sd // the split decision's alpha already gated this call; bits are symmetric
}

// respondInitiatorBehind handles an initiator whose path is a proper prefix
// of the responder's: the initiator is still undecided at the responder's
// split level, so the responder applies AEP rules 3 and 4 on its behalf.
func (p *Peer) respondInitiatorBehind(req ExchangeRequest, resp *ExchangeResponse) {
	myPath := p.table.Path()
	level := req.Path.Depth()
	myBit := myPath.Bit(level)
	// Orientation comes from the initiator's own estimate of the load split
	// of its (shallower) partition; fall back to the responder's view.
	est := req.Estimate
	if est <= 0 || est >= 1 {
		est = p.decider.EstimateP0(p.store.Keys(), req.Path, p.rng)
	}
	sd := p.decider.ForEstimate(est)
	myDecision := bitDecision(myBit)

	decision, direct := sd.MeetDecided(myDecision, p.rng)
	newBit := decisionBit(decision)
	newPath := req.Path.Child(newBit)

	if direct {
		// The initiator ends up on the complementary side and references
		// the responder; the responder references the initiator and absorbs
		// the initiator's items that belong to its own side.
		taken := filterItems(req.Items, req.Path.Child(myBit))
		p.store.AddAll(taken)
		give := p.store.RemovePrefix(newPath)
		p.Metrics.KeysMoved.Add(float64(len(taken) + len(give)))
		p.table.Add(level, routing.Ref{Addr: req.From, Path: newPath})
		resp.Items = give
		resp.TakenOver = true
		resp.Refs = []LevelRef{{Level: level, Ref: routing.Ref{Addr: p.Addr(), Path: myPath}}}
		p.markProductiveLocked()
	} else {
		// The initiator follows the responder into the same side (rule 4,
		// second case) and needs a reference into the complementary
		// sub-tree, which the responder hands over from its routing table.
		ref, ok := p.table.Random(level)
		if !ok {
			// Without a reference the referential-integrity invariant would
			// break; decline the extension.
			resp.Action = ActionNone
			return
		}
		resp.Refs = []LevelRef{{Level: level, Ref: ref}}
		resp.TakenOver = false
		p.markProductiveLocked()
	}
	resp.Action = ActionExtend
	resp.NewPath = newPath
	resp.NewPathSet = true
}

// respondResponderBehind handles an initiator that is deeper than the
// responder: the responder is the undecided one, so it extends its own path
// using the AEP rules and the initiator only gains routing information.
func (p *Peer) respondResponderBehind(req ExchangeRequest, resp *ExchangeResponse) {
	myPath := p.table.Path()
	level := myPath.Depth()
	if level >= p.cfg.MaxDepth || req.Path.Depth() <= level {
		resp.Action = ActionNone
		return
	}
	theirBit := req.Path.Bit(level)
	est := p.decider.EstimateP0(p.store.Keys(), myPath, p.rng)
	sd := p.decider.ForEstimate(est)
	decision, direct := sd.MeetDecided(bitDecision(theirBit), p.rng)
	newBit := decisionBit(decision)

	if direct {
		p.table.Extend(newBit, routing.Ref{Addr: req.From, Path: req.Path})
	} else {
		// Following the initiator's side requires a reference to the
		// complementary sub-tree, which must come from the initiator's
		// routing table snapshot.
		ref, ok := refAtLevel(req.RoutingRefs, level)
		if !ok {
			resp.Action = ActionNone
			return
		}
		p.table.Extend(newBit, ref)
	}
	p.clearReplicasLocked()
	p.markProductiveLocked()
	newPath := p.table.Path()

	// Absorb initiator items on the responder's side.
	taken := filterItems(req.Items, newPath)
	p.store.AddAll(taken)
	p.Metrics.KeysMoved.Add(float64(len(taken)))
	if newBit != theirBit {
		// The peers ended up on complementary sides of the split level:
		// hand over any items the responder no longer covers and exchange
		// mutual references.
		give := p.store.RemovePrefix(req.Path)
		p.Metrics.KeysMoved.Add(float64(len(give)))
		resp.Items = give
		resp.Refs = []LevelRef{{Level: level, Ref: routing.Ref{Addr: p.Addr(), Path: newPath}}}
	}
	resp.Action = ActionExtend
}

// respondRefer handles peers from different partitions: exchange routing
// entries and refer the initiator to a peer closer to its own partition.
func (p *Peer) respondRefer(req ExchangeRequest, resp *ExchangeResponse) {
	myPath := p.table.Path()
	level := myPath.CommonPrefixLen(req.Path)
	// Remember the initiator as a reference into the complementary
	// sub-tree.
	p.table.Add(level, routing.Ref{Addr: req.From, Path: req.Path})
	resp.Refs = []LevelRef{{Level: level, Ref: routing.Ref{Addr: p.Addr(), Path: myPath}}}
	// Refer the initiator to a peer that matches its path at least one bit
	// further than this responder does.
	if ref, ok := p.table.Random(level); ok && ref.Addr != req.From {
		resp.Referral = ref.Addr
	}
	// Flush any items this peer still holds that belong to the initiator's
	// partition (orphans from earlier splits).
	give := p.store.RemovePrefix(req.Path)
	if len(give) > 0 {
		resp.Items = give
		p.Metrics.KeysMoved.Add(float64(len(give)))
	}
	resp.Action = ActionRefer
}

// itemKeys extracts the keys of a batch of items.
func itemKeys(items []replication.Item) keyspace.Keys {
	out := make(keyspace.Keys, len(items))
	for i, it := range items {
		out[i] = it.Key
	}
	return out
}

// overlapItems counts the (key, value) items present in both batches.
func overlapItems(a, b []replication.Item) int {
	seen := make(map[string]bool, len(a))
	for _, it := range a {
		seen[it.Key.String()+"\x00"+it.Value] = true
	}
	n := 0
	for _, it := range b {
		if seen[it.Key.String()+"\x00"+it.Value] {
			n++
		}
	}
	return n
}

// filterItems returns the items whose keys start with the path.
func filterItems(items []replication.Item, p keyspace.Path) []replication.Item {
	var out []replication.Item
	for _, it := range items {
		if it.Key.HasPrefix(p) {
			out = append(out, it)
		}
	}
	return out
}

// bitDecision maps a path bit to the core package's Decision type.
func bitDecision(bit int) core.Decision {
	if bit == 0 {
		return core.Zero
	}
	return core.One
}

// decisionBit maps a Decision back to a path bit.
func decisionBit(d core.Decision) int {
	if d == core.Zero {
		return 0
	}
	return 1
}

// refAtLevel picks a reference at the given level from a routing snapshot.
func refAtLevel(levels [][]routing.Ref, level int) (routing.Ref, bool) {
	if level < 0 || level >= len(levels) || len(levels[level]) == 0 {
		return routing.Ref{}, false
	}
	return levels[level][0], true
}
