// Package overlay implements the P-Grid peer — the trie-structured overlay
// node of "Indexing data-oriented overlay networks" (VLDB 2005) — and
// everything a deployment of such peers needs to construct, query, mutate
// and maintain the distributed index.
//
// A Peer binds a routing table (internal/routing), a replica data store
// (internal/replication) and a message transport (internal/network), and
// speaks the overlay protocol through a single message handler. The
// package splits along the protocol's phases:
//
//   - Construction (construct.go, exchange.go): the paper's decentralized
//     algorithm. Peers meet through random encounters and apply the
//     split/replicate/refer rules (Figure 2) until the keyspace trie has
//     formed; the decision probabilities come from internal/core.
//   - Queries (query.go, batch.go): exact-match lookups routed by prefix,
//     raced α-wide per hop with optional hedging; "shower" range queries
//     fanning out over the covered sub-tries; and batch lookups that share
//     one message per hop among keys with a common next hop.
//   - Live mutations (mutate.go): routed Insert/Delete with replica
//     fan-out and write quorums; deletes record generation-stamped
//     tombstones that order them against concurrent re-inserts.
//   - Anti-entropy (antientropy.go): the digest/delta reconciliation
//     protocol between replicas — root-digest comparison, exact deltas
//     from per-replica sync baselines, bounded digest walks, and full
//     rebuilds only for provably stale post-GC rejoins.
//   - Maintenance (maintain.go): the background tick driving anti-entropy,
//     tombstone GC, routing-reference probing, replica re-discovery and —
//     on persistent peers — durable-state checkpoints.
//
// Peers created with NewPersistent (Config.DataDir) keep their replica
// state durable through the store's WAL+snapshot machinery and recover
// their partition path, routing references, replica set and sync baselines
// on restart, rejoining the overlay through the cheap exact-delta sync
// path. See internal/replication and docs/ARCHITECTURE.md for the format
// and the recovery protocol.
package overlay
