package overlay

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/replication"
	"pgrid/internal/workload"
)

// TestMetricsSnapshotUnderConcurrentWorkload scrapes MetricsSnapshot from
// one goroutine while queries, routed mutations and maintenance ticks run
// from others. Under -race this is the regression test for the exporter
// read path: the counters are updated without holding the peer lock, so the
// snapshot must go through the counters' atomic loads and the store's own
// locks.
func TestMetricsSnapshotUnderConcurrentWorkload(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 2, DoneAfterIdle: 3}
	c := newTestCluster(t, 24, 8, workload.Uniform{}, cfg, 17)
	c.replicateAll(t)
	c.construct(t, 60)
	items := c.allItems()
	if len(items) == 0 {
		t.Fatal("no items in the network")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Query + mutation workload.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				origin := c.peers[(w*31+i)%len(c.peers)]
				it := items[(w*17+i)%len(items)]
				switch i % 3 {
				case 0:
					_, _ = origin.Query(ctx, it.Key)
				case 1:
					_, _ = origin.Insert(ctx, replication.Item{Key: it.Key, Value: fmt.Sprintf("w%d-%d", w, i)})
				default:
					origin.MaintainTick(ctx, MaintenanceOptions{})
				}
			}
		}(w)
	}

	// Scraper: read every peer's snapshot repeatedly, as an exporter would.
	deadline := time.Now().Add(500 * time.Millisecond)
	var last MetricsSnapshot
	for time.Now().Before(deadline) {
		var agg MetricsSnapshot
		for _, p := range c.peers {
			agg = agg.Merge(p.MetricsSnapshot())
		}
		if agg.Queries < last.Queries || agg.Mutations < last.Mutations {
			t.Errorf("aggregate counters went backwards: %+v then %+v", last, agg)
		}
		last = agg
	}
	close(stop)
	wg.Wait()

	if last.Queries == 0 {
		t.Error("no queries counted during the workload")
	}
	if last.Store.Items == 0 {
		t.Error("store item gauge is zero on a populated overlay")
	}
}

// TestErrorClassification checks the exported sentinels: a lookup with no
// route classifies as ErrUnreachable, and ErrNotFound/ErrNoQuorum are
// distinct classes.
func TestErrorClassification(t *testing.T) {
	cfg := Config{MaxKeys: 4, MinReplicas: 1, DoneAfterIdle: 2}
	c := newTestCluster(t, 2, 6, workload.Uniform{}, cfg, 3)
	c.replicateAll(t)
	c.construct(t, 30)
	ctx := context.Background()

	// Force a divergent key with every remote peer offline: routing must
	// exhaust its references and classify as unreachable.
	p := c.peers[0]
	for _, q := range c.peers[1:] {
		c.sim.SetOnline(q.Addr(), false)
	}
	var divergent keyspace.Key
	found := false
	for i := 0; i < 1024 && !found; i++ {
		k := keyspace.MustFromFloat(float64(i)/1024, keyspace.DefaultDepth)
		if !p.Table().Responsible(k) {
			divergent, found = k, true
		}
	}
	if !found {
		t.Skip("peer 0 is responsible for the whole keyspace; cannot force a route")
	}
	if _, err := p.Query(ctx, divergent); !errors.Is(err, ErrUnreachable) {
		t.Errorf("query with no live route: got %v, want ErrUnreachable", err)
	}
	if _, err := p.Insert(ctx, replication.Item{Key: divergent, Value: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("insert with no live route: got %v, want ErrUnreachable", err)
	}
	if errors.Is(ErrNotFound, ErrUnreachable) || errors.Is(ErrNoQuorum, ErrUnreachable) {
		t.Error("error classes must be distinct")
	}
}
