package overlay

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/workload"
)

// twoPartitionCluster builds a hand-wired overlay with one peer on "0" and
// two mutually replicating peers on "1", which is the smallest topology that
// exercises routing plus replica fan-out.
func twoPartitionCluster(t *testing.T, seed int64, quorum int) (sim *network.Sim, origin, r1, r2 *Peer) {
	t.Helper()
	sim = network.NewSim(network.SimConfig{Seed: seed})
	cfg := Config{MaxKeys: 100, MinReplicas: 1, WriteQuorum: quorum, Seed: seed}
	origin = New(cfg, sim.Endpoint("origin"))
	r1 = New(cfg, sim.Endpoint("r1"))
	r2 = New(cfg, sim.Endpoint("r2"))
	origin.Table().SetPath("0")
	r1.Table().SetPath("1")
	r2.Table().SetPath("1")
	origin.Table().Add(0, refFor(r1))
	origin.Table().Add(0, refFor(r2))
	r1.Table().Add(0, refFor(origin))
	r2.Table().Add(0, refFor(origin))
	r1.AddReplica(r2.Addr())
	r2.AddReplica(r1.Addr())
	return sim, origin, r1, r2
}

func TestInsertRoutedToAllReplicas(t *testing.T) {
	_, origin, r1, r2 := twoPartitionCluster(t, 50, 2)
	ctx := context.Background()
	key := keyspace.MustFromString("1100")

	res, err := origin.Insert(ctx, replication.Item{Key: key, Value: "fresh"})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if res.Acks < 2 {
		t.Errorf("acks = %d, want >= 2 (responsible peer + replica)", res.Acks)
	}
	if res.Hops != 1 {
		t.Errorf("hops = %d, want 1", res.Hops)
	}
	for _, p := range []*Peer{r1, r2} {
		if got := p.Store().Lookup(key); len(got) != 1 || got[0].Value != "fresh" {
			t.Errorf("replica %s items = %v, want the inserted item", p.Addr(), got)
		}
	}
	// The origin must not hold a copy: the write belongs to partition "1".
	if got := origin.Store().Lookup(key); len(got) != 0 {
		t.Errorf("origin should not store the item, got %v", got)
	}
	// Read-your-write through the overlay.
	qres, err := origin.Query(ctx, key)
	if err != nil || len(qres.Items) != 1 {
		t.Errorf("query after insert: %v %v", qres.Items, err)
	}
}

func TestInsertLocallyResponsibleNoRouting(t *testing.T) {
	_, _, r1, r2 := twoPartitionCluster(t, 51, 2)
	ctx := context.Background()
	key := keyspace.MustFromString("1010")
	res, err := r1.Insert(ctx, replication.Item{Key: key, Value: "local"})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if res.Hops != 0 {
		t.Errorf("hops = %d, want 0 for a locally responsible write", res.Hops)
	}
	if res.Responsible != r1.Addr() {
		t.Errorf("responsible = %s, want %s", res.Responsible, r1.Addr())
	}
	if got := r2.Store().Lookup(key); len(got) != 1 {
		t.Errorf("fan-out missed the replica: %v", got)
	}
}

func TestDeleteNeverReturnedAfterQuorumAck(t *testing.T) {
	_, origin, r1, r2 := twoPartitionCluster(t, 52, 2)
	ctx := context.Background()
	key := keyspace.MustFromString("1110")
	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "doomed"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	res, err := origin.Delete(ctx, key, "doomed")
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if res.Acks < 2 {
		t.Errorf("delete acks = %d, want >= 2", res.Acks)
	}
	// No peer may ever return the pair again.
	if qres, err := origin.Query(ctx, key); err == nil && len(qres.Items) != 0 {
		t.Errorf("deleted item still returned: %v", qres.Items)
	}
	// Anti-entropy between the replicas must not resurrect it.
	if _, err := r1.AntiEntropy(ctx, r2.Addr()); err != nil {
		t.Fatalf("anti-entropy: %v", err)
	}
	for _, p := range []*Peer{r1, r2} {
		if got := p.Store().Lookup(key); len(got) != 0 {
			t.Errorf("replica %s resurrected the deleted item: %v", p.Addr(), got)
		}
	}
}

// TestDeleteAfterReinsertSurvivesStaleReplica is the regression test for
// the delete → re-insert → delete sequence with a replica that slept through
// the middle write: the second delete's fan-out carries the coordinator's
// generation stamp, so when the stale replica reconciles with one that holds
// the (now superseded) re-insert, the delete still wins everywhere.
func TestDeleteAfterReinsertSurvivesStaleReplica(t *testing.T) {
	sim, origin, r1, r2 := twoPartitionCluster(t, 59, 1)
	ctx := context.Background()
	key := keyspace.MustFromString("1101")

	// Delete 1 reaches both replicas, then r2 churns out.
	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "v"}); err != nil {
		t.Fatal(err)
	}
	if _, err := origin.Delete(ctx, key, "v"); err != nil {
		t.Fatal(err)
	}
	sim.SetOnline(r2.Addr(), false)
	// Re-insert and delete again while r2 is away; r2's tombstone history is
	// now one write behind.
	if _, err := origin.Insert(ctx, replication.Item{Key: key, Value: "v"}); err != nil {
		t.Fatal(err)
	}
	if !r1.Store().Live(key, "v") {
		t.Fatal("setup: re-insert did not reach r1")
	}
	// r2 returns (tombstone history one write behind) and takes part in
	// delete 2 — whether as coordinator or via the Direct fan-out leg, the
	// stamp it ends up with must order above r1's re-insert.
	sim.SetOnline(r2.Addr(), true)
	if _, err := origin.Delete(ctx, key, "v"); err != nil {
		t.Fatal(err)
	}

	// Reconciliation in both directions must leave the pair deleted
	// everywhere — the stale replica's old tombstone must not lose to a
	// resurrected copy, nor resurrect one itself.
	if _, err := r2.AntiEntropy(ctx, r1.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.AntiEntropy(ctx, r2.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Peer{r1, r2} {
		if p.Store().Live(key, "v") {
			t.Errorf("replica %s resurrected a quorum-acked delete", p.Addr())
		}
	}
	if qres, err := origin.Query(ctx, key); err == nil && len(qres.Items) != 0 {
		t.Errorf("query returned the deleted pair: %v", qres.Items)
	}
}

// TestInsertByStaleCoordinatorRestamps is the regression test for a write
// coordinated by a replica that missed an earlier delete: its first stamp
// ties the remote tombstone and is refused, and the coordinator must re-stamp
// above the reported generation so the acknowledged write survives
// reconciliation instead of being silently destroyed.
func TestInsertByStaleCoordinatorRestamps(t *testing.T) {
	_, _, r1, r2 := twoPartitionCluster(t, 60, 2)
	ctx := context.Background()
	key := keyspace.MustFromString("1010")
	// r2 holds a tombstone for the pair that r1 (the future coordinator)
	// never saw.
	r2.Store().Delete(key, "v")

	res, err := r1.Insert(ctx, replication.Item{Key: key, Value: "v"})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if res.Acks < 2 {
		t.Fatalf("acks = %d, want 2 — the re-stamped retry must win at the tombstone holder", res.Acks)
	}
	for _, p := range []*Peer{r1, r2} {
		if !p.Store().Live(key, "v") {
			t.Errorf("pair not live at %s after re-stamped insert", p.Addr())
		}
	}
	// Reconciliation must not undo the acknowledged write.
	if _, err := r2.AntiEntropy(ctx, r1.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Peer{r1, r2} {
		if !p.Store().Live(key, "v") {
			t.Errorf("anti-entropy destroyed the acknowledged write at %s", p.Addr())
		}
	}
}

// TestDuplicateMutationNotRecoordinated: the α-race can deliver the same
// routed mutation to more than one responsible peer; a duplicate recognised
// by its ID must not be coordinated again (a late duplicate delete would
// otherwise stamp a tombstone above a newer acknowledged re-insert).
func TestDuplicateMutationNotRecoordinated(t *testing.T) {
	_, _, r1, r2 := twoPartitionCluster(t, 61, 1)
	ctx := context.Background()
	key := keyspace.MustFromString("1001")

	del := DeleteRequest{Key: key, Value: "v", ID: 42, TTL: 8}
	if resp := r1.handleDelete(ctx, del); !resp.Found {
		t.Fatal("first delete not coordinated")
	}
	// The pair is re-inserted (new generation) after the delete was acked.
	if _, err := r1.Insert(ctx, replication.Item{Key: key, Value: "v"}); err != nil {
		t.Fatal(err)
	}
	genBefore := r1.Store().PairGen(key, "v")
	// A late duplicate of the old delete arrives — at the original
	// coordinator and at its replica (which learned the ID from the Direct
	// fan-out leg). Neither may re-coordinate it.
	for _, p := range []*Peer{r1, r2} {
		p.handleDelete(ctx, del)
		if !p.Store().Live(key, "v") {
			t.Fatalf("duplicate delete destroyed the newer write at %s", p.Addr())
		}
	}
	if gen := r1.Store().PairGen(key, "v"); gen != genBefore {
		t.Errorf("duplicate delete changed the pair's generation: %d -> %d", genBefore, gen)
	}
}

func TestMutationQuorumFailure(t *testing.T) {
	sim, origin, r1, r2 := twoPartitionCluster(t, 53, 3)
	ctx := context.Background()
	key := keyspace.MustFromString("1011")
	// Only two peers serve partition "1": a quorum of 3 cannot be met even
	// with everything online. Take r2 offline to also exercise the replica
	// drop.
	sim.SetOnline(r2.Addr(), false)
	res, err := origin.Insert(ctx, replication.Item{Key: key, Value: "lonely"})
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	if res.Acks != 1 {
		t.Errorf("acks = %d, want 1 (responsible peer only)", res.Acks)
	}
	// The write is still applied where it landed.
	if got := r1.Store().Lookup(key); len(got) != 1 {
		t.Errorf("responsible peer should hold the item despite the missed quorum: %v", got)
	}
	// The unreachable replica was dropped from the replica set.
	if n := len(r1.Replicas()); n != 0 {
		t.Errorf("replica set after failed fan-out = %d entries, want 0", n)
	}
}

func TestMutationOnUnbuiltOverlayFails(t *testing.T) {
	sim := network.NewSim(network.SimConfig{Seed: 54})
	cfg := Config{Seed: 54}
	a := New(cfg, sim.Endpoint("A"))
	b := New(cfg, sim.Endpoint("B"))
	_ = b
	a.Table().SetPath("0")
	// No references at all: a write into the foreign partition cannot route.
	key := keyspace.MustFromString("1000")
	if _, err := a.Insert(context.Background(), replication.Item{Key: key, Value: "x"}); err == nil {
		t.Error("insert without a route should fail")
	}
	if _, err := a.Delete(context.Background(), key, "x"); err == nil {
		t.Error("delete without a route should fail")
	}
}

func TestMaintainTickAntiEntropyConvergesReplicas(t *testing.T) {
	_, _, r1, r2 := twoPartitionCluster(t, 55, 1)
	ctx := context.Background()
	key := keyspace.MustFromString("1001")
	// Write lands only on r1 (r2 is not consulted: quorum 1 still fans out,
	// so bypass the fan-out by writing to the store directly, simulating a
	// replica that missed the write entirely).
	r1.Store().Insert(replication.Item{Key: key, Value: "late"})
	r1.Store().Delete(keyspace.MustFromString("1111"), "ghost")
	r2.Store().Add(replication.Item{Key: keyspace.MustFromString("1111"), Value: "ghost"})

	rep := r2.MaintainTick(ctx, MaintenanceOptions{})
	if rep.Replica == "" {
		t.Fatal("maintenance tick should have run anti-entropy with a replica")
	}
	if got := r2.Store().Lookup(key); len(got) != 1 {
		t.Errorf("anti-entropy did not deliver the missed write: %v", got)
	}
	// A second tick from r1 pulls the tombstone the other way; after both
	// directions ran, the ghost pair is gone everywhere.
	r1.MaintainTick(ctx, MaintenanceOptions{})
	for _, p := range []*Peer{r1, r2} {
		if got := p.Store().Lookup(keyspace.MustFromString("1111")); len(got) != 0 {
			t.Errorf("peer %s still holds the deleted pair: %v", p.Addr(), got)
		}
	}
}

func TestMaintainTickPrunesDeadRef(t *testing.T) {
	sim, origin, r1, _ := twoPartitionCluster(t, 56, 1)
	ctx := context.Background()
	sim.SetOnline(r1.Addr(), false)
	pruned := false
	for i := 0; i < 8 && !pruned; i++ {
		rep := origin.MaintainTick(ctx, MaintenanceOptions{Probes: 2})
		pruned = rep.RefsPruned > 0
	}
	if !pruned {
		t.Fatal("maintenance never pruned the dead reference")
	}
	for _, ref := range origin.Table().Refs(0) {
		if ref.Addr == r1.Addr() {
			t.Error("dead reference still present after pruning")
		}
	}
}

func TestMaintainTickRediscoversReplica(t *testing.T) {
	_, _, r1, r2 := twoPartitionCluster(t, 57, 1)
	ctx := context.Background()
	key := keyspace.MustFromString("1010")
	r1.Store().Insert(replication.Item{Key: key, Value: "anchor"})
	r2.Store().Insert(replication.Item{Key: key, Value: "anchor"})
	// r1 forgets its replicas (as happens after a split).
	r1.removeReplica(r2.Addr())
	if len(r1.Replicas()) != 0 {
		t.Fatal("setup: replica set should be empty")
	}
	// Discovery bounces the lookup off a peer outside the partition; which
	// replica answers is raced, so allow a few ticks.
	discovered := false
	for i := 0; i < 20 && !discovered; i++ {
		rep := r1.MaintainTick(ctx, MaintenanceOptions{})
		discovered = rep.ReplicaDiscovered
	}
	if !discovered {
		t.Fatal("maintenance should have re-discovered a replica by routed self-lookup")
	}
	found := false
	for _, a := range r1.Replicas() {
		if a == r2.Addr() {
			found = true
		}
	}
	if !found {
		t.Errorf("replica set after discovery = %v, want to contain %s", r1.Replicas(), r2.Addr())
	}
}

// TestLiveMutationsConvergeUnderChurn is the end-to-end convergence check of
// the mutation subsystem: after Build, writes are routed while a slice of
// the peers is offline; when they come back, maintenance ticks alone (no
// re-Build) must spread every insert to every online responsible peer and
// must never resurrect a deleted item.
func TestLiveMutationsConvergeUnderChurn(t *testing.T) {
	cfg := Config{MaxKeys: 20, MinReplicas: 3, DoneAfterIdle: 3, MaxRefs: 4, WriteQuorum: 1}
	c := newTestCluster(t, 32, 10, workload.Uniform{}, cfg, 57)
	c.replicateAll(t)
	c.construct(t, 60)
	ctx := context.Background()

	// A quarter of the peers churn out before the writes happen.
	offline := map[int]bool{}
	for len(offline) < len(c.peers)/4 {
		offline[c.rng.Intn(len(c.peers))] = true
	}
	for idx := range offline {
		c.sim.SetOnline(c.peers[idx].Addr(), false)
	}

	// Routed inserts and deletes from random online origins.
	var onlineIdx []int
	for i := range c.peers {
		if !offline[i] {
			onlineIdx = append(onlineIdx, i)
		}
	}
	type write struct {
		key keyspace.Key
		val string
	}
	var inserted, deleted []write
	existing := c.allItems()
	for i := 0; i < 20; i++ {
		key := keyspace.MustFromFloat(float64(i)/20+0.013, keyspace.DefaultDepth)
		w := write{key: key, val: fmt.Sprintf("live-%d", i)}
		origin := c.peers[onlineIdx[c.rng.Intn(len(onlineIdx))]]
		if _, err := origin.Insert(ctx, replication.Item{Key: w.key, Value: w.val}); err != nil && !errors.Is(err, ErrNoQuorum) {
			t.Fatalf("insert %d: %v", i, err)
		}
		inserted = append(inserted, w)
	}
	for i := 0; i < 8; i++ {
		it := existing[c.rng.Intn(len(existing))]
		origin := c.peers[onlineIdx[c.rng.Intn(len(onlineIdx))]]
		if _, err := origin.Delete(ctx, it.Key, it.Value); err != nil && !errors.Is(err, ErrNoQuorum) {
			t.Fatalf("delete %d: %v", i, err)
		}
		deleted = append(deleted, write{key: it.Key, val: it.Value})
	}

	// Churned peers come back with stale state; maintenance must reconcile
	// them without a re-Build.
	for idx := range offline {
		c.sim.SetOnline(c.peers[idx].Addr(), true)
	}
	converged := false
	for round := 0; round < 40 && !converged; round++ {
		for _, p := range c.peers {
			p.MaintainTick(ctx, MaintenanceOptions{Probes: 1})
		}
		converged = true
		for _, w := range inserted {
			for _, p := range c.peers {
				if p.Table().Responsible(w.key) && len(p.Store().Lookup(w.key)) == 0 {
					converged = false
				}
			}
		}
	}
	if !converged {
		t.Error("inserts did not reach every responsible peer after 40 maintenance rounds")
	}
	// Deleted pairs must be gone from every responsible peer and must never
	// be returned by a query — resurrecting one via anti-entropy would be
	// the classic delete/repair bug. (Orphan copies at non-responsible peers
	// are invisible to routing and are not reachable by partition-scoped
	// anti-entropy; they are not resurrection.)
	for _, w := range deleted {
		for _, p := range c.peers {
			if !p.Table().Responsible(w.key) {
				continue
			}
			for _, it := range p.Store().Lookup(w.key) {
				if it.Value == w.val {
					t.Errorf("responsible peer %s resurrected deleted pair %s/%s", p.Addr(), w.key, w.val)
				}
			}
		}
		for i := 0; i < 4; i++ {
			origin := c.peers[c.rng.Intn(len(c.peers))]
			if res, err := origin.Query(ctx, w.key); err == nil {
				for _, it := range res.Items {
					if it.Value == w.val {
						t.Errorf("query returned deleted pair %s/%s", w.key, w.val)
					}
				}
			}
		}
	}
	// And reads after convergence see the inserts.
	okReads := 0
	for _, w := range inserted {
		origin := c.peers[c.rng.Intn(len(c.peers))]
		if res, err := origin.Query(ctx, w.key); err == nil {
			for _, it := range res.Items {
				if it.Value == w.val {
					okReads++
					break
				}
			}
		}
	}
	if okReads < len(inserted)*8/10 {
		t.Errorf("only %d/%d inserted items readable after convergence", okReads, len(inserted))
	}
}
