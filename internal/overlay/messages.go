package overlay

import (
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
)

// Message type names registered for the TCP transport.
const (
	msgExchangeRequest  = "pgrid.exchange.request"
	msgExchangeResponse = "pgrid.exchange.response"
	msgQueryRequest     = "pgrid.query.request"
	msgQueryResponse    = "pgrid.query.response"
	msgBatchRequest     = "pgrid.batchquery.request"
	msgBatchResponse    = "pgrid.batchquery.response"
	msgRangeRequest     = "pgrid.range.request"
	msgRangeResponse    = "pgrid.range.response"
	msgReplicateRequest = "pgrid.replicate.request"
	msgReplicateReply   = "pgrid.replicate.response"
	msgPingRequest      = "pgrid.ping.request"
	msgPingResponse     = "pgrid.ping.response"
	msgInsertRequest    = "pgrid.insert.request"
	msgDeleteRequest    = "pgrid.delete.request"
	msgMutateResponse   = "pgrid.mutate.response"
	msgDigestRequest    = "pgrid.digest.request"
	msgDigestResponse   = "pgrid.digest.response"
	msgDeltaRequest     = "pgrid.delta.request"
	msgDeltaResponse    = "pgrid.delta.response"
	msgClockRequest     = "pgrid.clock.request"
	msgClockResponse    = "pgrid.clock.response"
	msgRecruitRequest   = "pgrid.recruit.request"
	msgRecruitResponse  = "pgrid.recruit.response"
	msgPruneRequest     = "pgrid.prune.request"
	msgPruneResponse    = "pgrid.prune.response"
)

func init() {
	network.RegisterType(msgExchangeRequest, ExchangeRequest{})
	network.RegisterType(msgExchangeResponse, ExchangeResponse{})
	network.RegisterType(msgQueryRequest, QueryRequest{})
	network.RegisterType(msgQueryResponse, QueryResponse{})
	network.RegisterType(msgBatchRequest, BatchQueryRequest{})
	network.RegisterType(msgBatchResponse, BatchQueryResponse{})
	network.RegisterType(msgRangeRequest, RangeRequest{})
	network.RegisterType(msgRangeResponse, RangeResponse{})
	network.RegisterType(msgReplicateRequest, ReplicateRequest{})
	network.RegisterType(msgReplicateReply, ReplicateResponse{})
	network.RegisterType(msgPingRequest, PingRequest{})
	network.RegisterType(msgPingResponse, PingResponse{})
	network.RegisterType(msgInsertRequest, InsertRequest{})
	network.RegisterType(msgDeleteRequest, DeleteRequest{})
	network.RegisterType(msgMutateResponse, MutateResponse{})
	network.RegisterType(msgDigestRequest, DigestRequest{})
	network.RegisterType(msgDigestResponse, DigestResponse{})
	network.RegisterType(msgDeltaRequest, DeltaRequest{})
	network.RegisterType(msgDeltaResponse, DeltaResponse{})
	network.RegisterType(msgClockRequest, ClockRequest{})
	network.RegisterType(msgClockResponse, ClockResponse{})
	network.RegisterType(msgRecruitRequest, RecruitRequest{})
	network.RegisterType(msgRecruitResponse, RecruitResponse{})
	network.RegisterType(msgPruneRequest, TombstonePruneRequest{})
	network.RegisterType(msgPruneResponse, TombstonePruneResponse{})
}

// Action describes the outcome of an exchange interaction.
type Action string

// Exchange outcomes (Figure 2).
const (
	// ActionSplit means the two peers split the current partition between
	// them (divide and conquer).
	ActionSplit Action = "split"
	// ActionExtend means the initiator extended its path after meeting a
	// peer that had already decided (rules 3/4 of AEP).
	ActionExtend Action = "extend"
	// ActionReplicate means the peers became (or already were) replicas of
	// the same partition and reconciled their content.
	ActionReplicate Action = "replicate"
	// ActionRefer means the peers belong to different partitions; routing
	// tables were exchanged and the initiator was referred to another peer.
	ActionRefer Action = "refer"
	// ActionNone means the interaction had no effect (e.g. a balanced split
	// was not performed because of the alpha probability).
	ActionNone Action = "none"
)

// ExchangeRequest is sent by a peer initiating a construction interaction.
type ExchangeRequest struct {
	// From is the initiator's address.
	From network.Addr
	// Path is the initiator's current path.
	Path keyspace.Path
	// Estimate is the initiator's estimate of the fraction of the current
	// partition's data that falls into sub-partition 0.
	Estimate float64
	// Items are the initiator's data items for the current partition
	// (needed for content exchange on splits and replication).
	Items []replication.Item
	// RoutingPath and RoutingRefs are a snapshot of the initiator's routing
	// table (exchanged to add redundancy and randomization).
	RoutingPath keyspace.Path
	RoutingRefs [][]routing.Ref
	// Replicas is the initiator's current replica list.
	Replicas []network.Addr
	// Done reports whether the initiator considers its construction
	// converged (used for termination detection).
	Done bool
}

// WireSize implements network.WireSizer.
func (r ExchangeRequest) WireSize() int { return messageBytes(len(r.Items), refCount(r.RoutingRefs)) }

// ExchangeResponse is the contacted peer's reply.
type ExchangeResponse struct {
	// Action is the interaction outcome.
	Action Action
	// From is the responder's address.
	From network.Addr
	// ResponderPath is the responder's (possibly new) path.
	ResponderPath keyspace.Path
	// NewPath, when non-empty, is the path the initiator must adopt.
	NewPath keyspace.Path
	// NewPathSet marks NewPath as meaningful even when it equals the root.
	NewPathSet bool
	// Items are data items handed over to the initiator.
	Items []replication.Item
	// TakenOver reports that the responder absorbed the initiator's items
	// that are not covered by the initiator's new path, so the initiator
	// may drop them.
	TakenOver bool
	// Refs are routing references the initiator should add, keyed by level.
	Refs []LevelRef
	// RoutingPath and RoutingRefs snapshot the responder's routing table.
	RoutingPath keyspace.Path
	RoutingRefs [][]routing.Ref
	// Replicas is the responder's replica list (for replica discovery).
	Replicas []network.Addr
	// Referral is a peer the initiator should contact next (refer action).
	Referral network.Addr
	// ResponderDone reports the responder's convergence state.
	ResponderDone bool
}

// WireSize implements network.WireSizer.
func (r ExchangeResponse) WireSize() int {
	return messageBytes(len(r.Items), refCount(r.RoutingRefs)+len(r.Refs))
}

// LevelRef is a routing reference tagged with its level.
type LevelRef struct {
	Level int
	Ref   routing.Ref
}

// QueryRequest asks the receiving peer to resolve an exact-match query.
type QueryRequest struct {
	Key keyspace.Key
	// Hops counts the routing hops taken so far.
	Hops int
	// TTL bounds the remaining hops.
	TTL int
	// Bypass disables the answer cache and shadow replicas along the route:
	// the query must be resolved by the responsible partition itself. Set by
	// consistent reads (the gate's ?consistent=1).
	Bypass bool
}

// WireSize implements network.WireSizer.
func (QueryRequest) WireSize() int { return 96 }

// QueryResponse carries the query result.
type QueryResponse struct {
	// Found reports whether the responsible peer was reached.
	Found bool
	// Items are the data items stored under the queried key.
	Items []replication.Item
	// Hops is the total number of routing hops used.
	Hops int
	// Responsible is the address of the peer that answered.
	Responsible network.Addr
	// ResponsiblePath is that peer's path.
	ResponsiblePath keyspace.Path
	// Clock is the answering store's logical clock when the answer was
	// produced — the freshness token cached copies of this answer are
	// validated against.
	Clock uint64
	// Cached marks an answer served from a peer's answer cache (after its
	// clock token was revalidated) rather than resolved by the responsible
	// partition.
	Cached bool
	// Wide lists the responsible peer's temporary hot-key replicas, so
	// forwarding peers spread future lookups across the widened set.
	Wide []network.Addr
}

// WireSize implements network.WireSizer.
func (r QueryResponse) WireSize() int { return messageBytes(len(r.Items), 0) + 16*len(r.Wide) }

// BatchQueryRequest asks the receiving peer to resolve many exact-match
// queries at once. Keys that route through the same next hop travel together
// in a single message instead of as independent lookups, which is what lets
// a batch share in-flight routing work.
type BatchQueryRequest struct {
	Keys []keyspace.Key
	// Hops counts the routing hops taken so far.
	Hops int
	// TTL bounds the remaining hops.
	TTL int
}

// WireSize implements network.WireSizer.
func (r BatchQueryRequest) WireSize() int { return 64 + 40*len(r.Keys) }

// BatchQueryResponse carries one QueryResponse per requested key, aligned
// with the request's Keys by index.
type BatchQueryResponse struct {
	Results []QueryResponse
}

// WireSize implements network.WireSizer.
func (r BatchQueryResponse) WireSize() int {
	n := 32
	for _, q := range r.Results {
		n += q.WireSize()
	}
	return n
}

// RangeRequest asks for all items with keys in [Lo, Hi).
type RangeRequest struct {
	Lo, Hi keyspace.Key
	// HiUnbounded marks a range that extends to the end of the key space.
	HiUnbounded bool
	Hops        int
	TTL         int
}

// WireSize implements network.WireSizer.
func (RangeRequest) WireSize() int { return 128 }

// RangeResponse carries a (partial) range query result.
type RangeResponse struct {
	Items []replication.Item
	// Hops is the maximal hop count over all branches of the query.
	Hops int
	// Partitions is the number of distinct partitions that contributed.
	Partitions int
	// Incomplete reports that some branch of the query could not be
	// resolved (e.g. all references to a sub-tree were offline).
	Incomplete bool
}

// WireSize implements network.WireSizer.
func (r RangeResponse) WireSize() int { return messageBytes(len(r.Items), 0) }

// ReplicateRequest pushes items to another peer during the pre-construction
// replication phase, or runs anti-entropy between replicas afterwards.
type ReplicateRequest struct {
	From  network.Addr
	Path  keyspace.Path
	Items []replication.Item
	// Tombstones are the initiator's deleted (key, value) pairs within Path,
	// exchanged during anti-entropy so deletes propagate with the data and a
	// replica that missed the delete drops its stale live copy.
	Tombstones []replication.Item
	// AntiEntropy requests the responder to send back items the initiator
	// is missing.
	AntiEntropy bool
	// Replicas is the initiator's replica list for gossip-style discovery.
	Replicas []network.Addr
}

// WireSize implements network.WireSizer.
func (r ReplicateRequest) WireSize() int { return messageBytes(len(r.Items)+len(r.Tombstones), 0) }

// ReplicateResponse acknowledges replication and optionally returns missing
// items.
type ReplicateResponse struct {
	Accepted int
	Items    []replication.Item
	// Tombstones are the responder's deleted pairs the initiator should
	// apply (anti-entropy only).
	Tombstones []replication.Item
	Replicas   []network.Addr
	Path       keyspace.Path
}

// WireSize implements network.WireSizer.
func (r ReplicateResponse) WireSize() int { return messageBytes(len(r.Items)+len(r.Tombstones), 0) }

// PingRequest probes a peer for liveness and its current path.
type PingRequest struct{ From network.Addr }

// WireSize implements network.WireSizer.
func (PingRequest) WireSize() int { return 32 }

// PingResponse answers a ping.
type PingResponse struct {
	Path keyspace.Path
	Done bool
}

// WireSize implements network.WireSizer.
func (PingResponse) WireSize() int { return 48 }

// InsertRequest routes a live write towards the partition responsible for
// the item's key. The responsible peer applies the write locally, fans it out
// to its replica set, and acknowledges with the number of replicas that
// applied it (quorum-ack).
type InsertRequest struct {
	// Item is the (key, value) pair to store.
	Item replication.Item
	// ID identifies the mutation end to end: the α-raced routing can
	// deliver duplicates of the request to more than one responsible peer,
	// and the ID lets them coordinate the operation exactly once (replicas
	// learn it on the Direct fan-out leg). Zero disables deduplication.
	ID uint64
	// Hops counts the routing hops taken so far.
	Hops int
	// TTL bounds the remaining hops.
	TTL int
	// Direct marks the replica fan-out leg: the receiver must apply the
	// write locally without routing it any further.
	Direct bool
}

// WireSize implements network.WireSizer.
func (InsertRequest) WireSize() int { return messageBytes(1, 0) }

// DeleteRequest routes a live delete of one (key, value) pair towards the
// responsible partition. Deletes are tombstoned at every replica that applies
// them, so anti-entropy cannot resurrect the pair.
type DeleteRequest struct {
	// Key is the key of the pair to delete.
	Key keyspace.Key
	// Value selects the stored value to delete under the key.
	Value string
	// Gen is the coordinator's generation stamp for the tombstone,
	// meaningful on the Direct fan-out leg: replicas apply this exact stamp
	// so the delete orders consistently against re-inserts even where the
	// local tombstone history is stale.
	Gen uint64
	// ID identifies the mutation end to end for duplicate suppression; see
	// InsertRequest.ID.
	ID uint64
	// Hops counts the routing hops taken so far.
	Hops int
	// TTL bounds the remaining hops.
	TTL int
	// Direct marks the replica fan-out leg (apply locally, do not route).
	Direct bool
}

// WireSize implements network.WireSizer.
func (DeleteRequest) WireSize() int { return messageBytes(1, 0) }

// MutateResponse acknowledges an Insert or Delete.
type MutateResponse struct {
	// Found reports whether a responsible peer was reached.
	Found bool
	// Acks is the number of replicas (including the responsible peer) that
	// applied the mutation.
	Acks int
	// Replicas is the size of the replica set the responsible peer attempted
	// to write to, including itself.
	Replicas int
	// Gen is the highest generation the responder has seen for the mutated
	// pair. On a Direct leg that refused a stale write it tells the
	// coordinator what generation its retry must out-stamp.
	Gen uint64
	// Hops is the total number of routing hops used.
	Hops int
	// Responsible is the peer that coordinated the write.
	Responsible network.Addr
	// ResponsiblePath is that peer's path.
	ResponsiblePath keyspace.Path
}

// WireSize implements network.WireSizer.
func (MutateResponse) WireSize() int { return 96 }

// DigestRequest opens or continues the digest phase of the delta
// anti-entropy protocol. The opening round (Root) carries the digest of the
// initiator's whole partition; walk rounds carry the child-bucket digests of
// previously mismatched buckets, so the peers recurse only into the parts of
// the key space where they actually differ.
type DigestRequest struct {
	// From is the initiator's address.
	From network.Addr
	// Path is the initiator's partition.
	Path keyspace.Path
	// Root marks the opening round of a sync.
	Root bool
	// Clock is the initiator's store clock, for the responder's records.
	Clock uint64
	// Since is the responder's store clock at the initiator's last completed
	// sync with it (0 = never synced). The responder uses it both to decide
	// whether it can serve an exact delta and to detect a stale rejoiner: an
	// initiator whose Since predates the responder's GC floor may have missed
	// pruned tombstones and must full-sync instead of merging.
	Since uint64
	// Buckets are the initiator's digests for the probed prefixes.
	Buckets []replication.BucketDigest
	// Replicas is the initiator's replica list for gossip-style discovery.
	Replicas []network.Addr
}

// WireSize implements network.WireSizer.
func (r DigestRequest) WireSize() int { return 96 + 34*len(r.Buckets) + 16*len(r.Replicas) }

// DigestResponse answers one digest round.
type DigestResponse struct {
	// Path is the responder's partition path (the initiator drops the
	// replica when the partitions no longer overlap).
	Path keyspace.Path
	// Clock is the responder's store clock.
	Clock uint64
	// InSync reports that the root digests matched: the replicas are
	// identical and nothing needs to be transferred.
	InSync bool
	// Incomparable reports that the initiator's Since predates the
	// responder's GC floor (a post-GC rejoin): deltas are meaningless and
	// the initiator must rebuild its partition content from the responder.
	Incomparable bool
	// DeltaOK reports that the responder can serve an exact delta of
	// everything changed since the initiator's Since clock.
	DeltaOK bool
	// Mismatch lists the probed prefixes whose digests differ.
	Mismatch []keyspace.Path
	// Replicas is the responder's replica list.
	Replicas []network.Addr
}

// WireSize implements network.WireSizer.
func (r DigestResponse) WireSize() int { return 96 + 12*len(r.Mismatch) + 16*len(r.Replicas) }

// DeltaRequest transfers the initiator's side of the differing content and
// asks for the responder's: an exact delta (Since), the mismatched buckets
// of a digest walk (Prefixes), or the full partition (Full) when
// generations are incomparable.
type DeltaRequest struct {
	// From is the initiator's address.
	From network.Addr
	// Path is the initiator's partition.
	Path keyspace.Path
	// Clock is the initiator's store clock.
	Clock uint64
	// Since, together with the same field's role in DigestRequest, is the
	// responder clock of the initiator's last completed sync: the responder
	// returns everything that changed after it, and refuses the initiator's
	// pushed items when Since predates its GC floor.
	Since uint64
	// Prefixes are the mismatched leaf buckets of a digest walk to exchange
	// (unused when Since or Full drive the request).
	Prefixes []keyspace.Path
	// Full requests the responder's complete partition content.
	Full bool
	// Rebuild marks the initiator as authoritative: the responder replaces
	// its partition content with the request's items and tombstones (sent to
	// a replica that missed the initiator's tombstone-GC window).
	Rebuild bool
	// Pull asks only for the responder's content; the initiator sends
	// nothing because it is itself stale and about to rebuild.
	Pull bool
	// Items and Tombstones are the initiator's content for the requested
	// scope.
	Items, Tombstones []replication.Item
	// Replicas is the initiator's replica list for gossip.
	Replicas []network.Addr
}

// WireSize implements network.WireSizer.
func (r DeltaRequest) WireSize() int {
	return messageBytes(len(r.Items)+len(r.Tombstones), 0) + 12*len(r.Prefixes) + 16*len(r.Replicas)
}

// DeltaResponse carries the responder's side of the content exchange.
type DeltaResponse struct {
	// Path is the responder's partition path.
	Path keyspace.Path
	// Clock is the responder's store clock after serving the request; the
	// initiator records it as the new sync baseline.
	Clock uint64
	// Incomparable reports that the requested Since predates the responder's
	// GC floor (a GC ran between the digest and delta rounds, or the
	// initiator pushed content while stale): nothing was merged and the
	// initiator must restart with a full sync.
	Incomparable bool
	// Applied is the number of pushed items and tombstones that changed the
	// responder's store.
	Applied int
	// Items and Tombstones are the responder's content for the requested
	// scope.
	Items, Tombstones []replication.Item
	// Replicas is the responder's replica list.
	Replicas []network.Addr
}

// WireSize implements network.WireSizer.
func (r DeltaResponse) WireSize() int {
	return messageBytes(len(r.Items)+len(r.Tombstones), 0) + 16*len(r.Replicas)
}

// ClockRequest asks a peer for its store's logical clock — the one-hop
// freshness probe of the query answer cache. It is deliberately tiny: a
// probe must cost the (possibly hot) responsible peer a few dozen bytes,
// not an item-carrying response.
type ClockRequest struct {
	// From is the prober's address.
	From network.Addr
}

// WireSize implements network.WireSizer.
func (ClockRequest) WireSize() int { return 32 }

// ClockResponse answers a clock probe.
type ClockResponse struct {
	// Path is the responder's partition path; a probe also checks the
	// responder still covers the cached key's partition.
	Path keyspace.Path
	// Clock is the responder's store clock.
	Clock uint64
}

// WireSize implements network.WireSizer.
func (ClockResponse) WireSize() int { return 48 }

// RecruitRequest enlists a peer outside the partition as a temporary
// hot-key replica: the receiver stores the partition's live content as a
// shadow and serves exact lookups for keys under Path — each serve
// revalidated against the sender's clock — until the lease expires or a
// Release arrives.
type RecruitRequest struct {
	// From is the recruiting (responsible) peer.
	From network.Addr
	// Path is the hot partition.
	Path keyspace.Path
	// Clock is the sender's store clock when Items was snapshotted; the
	// shadow is only served while the sender's clock still matches it.
	Clock uint64
	// Lease bounds how long the shadow may be served without a refresh.
	Lease time.Duration
	// Release tears the shadow down instead of installing one (load
	// subsided).
	Release bool
	// Items is the partition's live content (deletes are already absent, so
	// no tombstones travel).
	Items []replication.Item
}

// WireSize implements network.WireSizer.
func (r RecruitRequest) WireSize() int { return messageBytes(len(r.Items), 0) }

// RecruitResponse acknowledges a recruit or release.
type RecruitResponse struct {
	// Accepted reports whether the receiver installed (or tore down) the
	// shadow.
	Accepted bool
	// Path is the receiver's own partition path.
	Path keyspace.Path
}

// WireSize implements network.WireSizer.
func (RecruitResponse) WireSize() int { return 48 }

// TombstonePruneRequest tells the replicas of a partition which tombstones
// the sender's GC compaction just dropped, so they drop theirs in the same
// round instead of re-learning the prune through later sync rounds.
type TombstonePruneRequest struct {
	// From is the compacting peer.
	From network.Addr
	// Path is the sender's partition; receivers outside it ignore the batch.
	Path keyspace.Path
	// Pairs are the pruned (key, value) pairs with the generation each
	// tombstone carried — a receiver only drops its own tombstone when it is
	// not newer than the pruned one.
	Pairs []replication.Item
}

// WireSize implements network.WireSizer.
func (r TombstonePruneRequest) WireSize() int { return messageBytes(len(r.Pairs), 0) }

// TombstonePruneResponse acknowledges a cooperative prune.
type TombstonePruneResponse struct {
	// Dropped is the number of tombstones the receiver removed.
	Dropped int
}

// WireSize implements network.WireSizer.
func (TombstonePruneResponse) WireSize() int { return 32 }

// messageBytes approximates the wire size of a protocol message carrying
// nItems data items and nRefs routing references: a fixed header plus ~24
// bytes per item (8-byte key, length, short value) and ~20 bytes per
// reference.
func messageBytes(nItems, nRefs int) int {
	return 64 + 24*nItems + 20*nRefs
}

// refCount counts the references of a routing snapshot.
func refCount(levels [][]routing.Ref) int {
	n := 0
	for _, l := range levels {
		n += len(l)
	}
	return n
}
