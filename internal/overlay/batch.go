package overlay

import (
	"context"
	"sync"

	"pgrid/internal/keyspace"
	"pgrid/internal/routing"
)

// This file implements batch query processing: many exact-match lookups
// pipelined through shared routing. At every peer the batch is split into
// keys answered locally and groups of keys that diverge from the local path
// at the same level; each group is forwarded as ONE message (raced over up
// to Alpha references, like single lookups), so b keys bound for the same
// sub-tree cost one round trip instead of b. Groups are forwarded
// concurrently through the same bounded pool that drives range fan-out.

// BatchResult is the outcome of one key of a batch query.
type BatchResult struct {
	// QueryResult is the per-key result; meaningful only when Err is nil.
	QueryResult
	// Err is errNotResponsible when no route produced an answer for the
	// key.
	Err error
}

// QueryBatch resolves exact-match queries for all given keys, starting at
// this peer. Results align with keys by index. Keys the peer is responsible
// for are answered locally; the rest are grouped by divergence level and
// each group travels the overlay as a single message per hop.
func (p *Peer) QueryBatch(ctx context.Context, keys []keyspace.Key) []BatchResult {
	resp := p.handleQueryBatch(ctx, BatchQueryRequest{Keys: keys, TTL: p.cfg.QueryTTL})
	out := make([]BatchResult, len(keys))
	for i := range keys {
		qr := resp.Results[i]
		if !qr.Found {
			out[i].Err = errNotResponsible
			continue
		}
		p.Metrics.Queries.Add(1)
		p.Metrics.QueryHops.Add(float64(qr.Hops))
		out[i].QueryResult = QueryResult{Items: qr.Items, Hops: qr.Hops, Responsible: qr.Responsible}
	}
	return out
}

// batchGroup collects the batch indices of keys that diverge from the local
// path at the same level and therefore share their next hop.
type batchGroup struct {
	level int
	idx   []int
}

// handleQueryBatch serves a batch query: answer the keys this peer is
// responsible for from the local store, group the remaining keys by
// divergence level and forward every group — concurrently, bounded by
// Fanout — as one sub-batch message raced over the references of its level.
func (p *Peer) handleQueryBatch(ctx context.Context, req BatchQueryRequest) BatchQueryResponse {
	results := make([]QueryResponse, len(req.Keys))
	var groups []*batchGroup
	byLevel := make(map[int]*batchGroup)
	for i, key := range req.Keys {
		if p.table.Responsible(key) {
			// Clock before Lookup, as in resolveQuery: a racing write must
			// stale the token, never the items.
			clock := p.store.Clock()
			p.noteRead()
			results[i] = QueryResponse{
				Found:           true,
				Items:           p.store.Lookup(key),
				Hops:            req.Hops,
				Responsible:     p.Addr(),
				ResponsiblePath: p.Path(),
				Clock:           clock,
				Wide:            p.wideSet(),
			}
			continue
		}
		if req.TTL <= 0 {
			results[i] = QueryResponse{Found: false, Hops: req.Hops}
			continue
		}
		_, level, _ := p.table.NextHop(key)
		g := byLevel[level]
		if g == nil {
			g = &batchGroup{level: level}
			byLevel[level] = g
			groups = append(groups, g)
		}
		g.idx = append(g.idx, i)
	}
	if len(groups) == 0 {
		return BatchQueryResponse{Results: results}
	}

	var mu sync.Mutex
	forEachBounded(p.queryFanout(), groups, func(g *batchGroup) {
		sub := BatchQueryRequest{
			Keys: make([]keyspace.Key, len(g.idx)),
			Hops: req.Hops + 1,
			TTL:  req.TTL - 1,
		}
		for j, i := range g.idx {
			sub.Keys[j] = req.Keys[i]
		}
		merged := p.raceBatch(ctx, p.shuffledRefs(g.level), sub)
		mu.Lock()
		defer mu.Unlock()
		for j, i := range g.idx {
			results[i] = merged[j]
		}
	})
	return BatchQueryResponse{Results: results}
}

// raceBatch forwards a sub-batch to the given references, up to Alpha in
// flight at once, and merges the responses per key: a key is resolved by
// the first response that found it. Unlike a single lookup — where the
// first responsible answer is the whole result — a batch response can
// resolve some keys and dead-end on others (a responder with a stale
// routing branch), so the race only stops early once every key of the
// group is resolved; otherwise later responders still fill the gaps.
func (p *Peer) raceBatch(ctx context.Context, refs []routing.Ref, sub BatchQueryRequest) []QueryResponse {
	merged := make([]QueryResponse, len(sub.Keys))
	if len(refs) == 0 {
		return merged
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := p.launchRace(rctx, refs, sub)
	unresolved := len(sub.Keys)
	for done := 0; done < len(refs); done++ {
		select {
		case <-ctx.Done():
			return merged
		case out := <-results:
			resp, ok := out.raw.(BatchQueryResponse)
			if !ok || len(resp.Results) != len(sub.Keys) {
				continue
			}
			for j, qr := range resp.Results {
				if qr.Found && !merged[j].Found {
					merged[j] = qr
					unresolved--
				}
			}
			if unresolved == 0 {
				return merged
			}
		}
	}
	return merged
}
