package overlay

import (
	"context"
	"errors"
	"sync"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/routing"
)

// This file implements the background maintenance loop that keeps a
// constructed overlay healthy while it absorbs live writes and churn:
//
//   - anti-entropy with one randomly chosen replica per tick, spreading both
//     items and delete tombstones, so quorum-missed writes converge and
//     peers that were offline catch up without a manual re-Build;
//   - probing of randomly chosen routing references, pruning entries that
//     are unreachable or whose peer moved to a non-complementary partition;
//   - replica re-discovery by a self-lookup when the replica set ran dry
//     (e.g. after a split or after all known replicas churned out).
//
// Every step is also exposed as MaintainTick so simulations with a virtual
// clock (internal/sim) and tests can drive maintenance deterministically.

// MaintenanceOptions parameterises the maintenance loop.
type MaintenanceOptions struct {
	// Interval is the mean pause between two maintenance ticks; each pause
	// is jittered by ±50% so the ticks of many peers desynchronise. Zero
	// means DefaultMaintenanceInterval.
	Interval time.Duration
	// Probes is the number of routing references pinged per tick (0 = 1).
	Probes int
}

// DefaultMaintenanceInterval is the default mean pause between maintenance
// ticks.
const DefaultMaintenanceInterval = time.Second

// normalize fills in defaults.
func (o MaintenanceOptions) normalize() MaintenanceOptions {
	if o.Interval <= 0 {
		o.Interval = DefaultMaintenanceInterval
	}
	if o.Probes <= 0 {
		o.Probes = 1
	}
	return o
}

// TickReport summarises one maintenance tick.
type TickReport struct {
	// Replica is the replica anti-entropy ran with ("" when none is known).
	Replica network.Addr
	// ItemsReceived is the number of items anti-entropy brought in.
	ItemsReceived int
	// Sync is the protocol path the tick's anti-entropy took (SyncNone when
	// no replica was contacted or the round failed).
	Sync SyncKind
	// TombstonesPruned is the number of tombstones the tick's GC compaction
	// removed.
	TombstonesPruned int
	// RefsProbed and RefsPruned count the routing references pinged and the
	// ones dropped as stale.
	RefsProbed, RefsPruned int
	// RecruitsAdded and RecruitsReleased count the temporary hot-key
	// replicas the tick's widening check enlisted and dismissed.
	RecruitsAdded, RecruitsReleased int
	// ReplicaDiscovered reports that the tick re-discovered a replica by
	// self-lookup after the replica set had run dry.
	ReplicaDiscovered bool
	// PersistenceErr is the store's sticky persistence failure, if any:
	// mutations applied after it are not durable and the peer should be
	// failed over (see replication.Store.PersistenceErr).
	PersistenceErr error
}

// MaintainTick runs one maintenance step: one round of anti-entropy with a
// random replica (re-discovering a replica first when none is known) and a
// liveness probe of Probes random routing references.
func (p *Peer) MaintainTick(ctx context.Context, opts MaintenanceOptions) TickReport {
	opts = opts.normalize()
	var rep TickReport

	// A peer that is itself offline (simulated churn) sees every outgoing
	// call fail; running the tick anyway would misattribute its own state
	// to the remote side and strip its own replica set and routing table.
	// Skip until the peer is back.
	if off, ok := p.transport.(interface{ Online() bool }); ok && !off.Online() {
		return rep
	}

	// Tombstone GC: prune tombstones past the configured horizon and drop
	// anti-entropy baselines of peers that left the replica set, so
	// maintenance metadata stays proportional to the live working set
	// instead of growing with lifetime deletes and churn. The pruned batch
	// is pushed to the replicas so they drop the same tombstones now,
	// cooperatively, instead of each re-learning the prune on its own next
	// sync round.
	if pruned := p.store.CompactTombstonesCollect(); len(pruned) > 0 {
		rep.TombstonesPruned = len(pruned)
		p.Metrics.TombstonesPruned.Add(float64(len(pruned)))
		p.notifyTombstonePrune(ctx, pruned)
	}
	p.compactSyncStates()

	// Replica widening: recruit temporary shadows while the partition's
	// read rate is above the threshold, release them once it subsides.
	rep.RecruitsAdded, rep.RecruitsReleased = p.maintainHotSet(ctx)

	// Durable overlay state: re-record the partition path (no-op when
	// unchanged) and compact the WAL into a snapshot once it outgrew the
	// threshold. Persistence failures do not abort the tick — the peer
	// keeps serving from memory — but they are surfaced on the report and
	// counted, because once the WAL is broken every later mutation is
	// silently non-durable and the operator must fail the peer over.
	if p.store.Persistent() {
		p.persistOverlayState()
		if _, err := p.store.CheckpointIfNeeded(); err != nil {
			rep.PersistenceErr = err
		} else if err := p.store.PersistenceErr(); err != nil {
			rep.PersistenceErr = err
		}
		if rep.PersistenceErr != nil {
			p.Metrics.PersistenceErrors.Add(1)
		}
	}

	// Re-discover replicas whenever the set ran dry, and occasionally even
	// when it did not: after churn a group of returning peers can hold only
	// references to each other, and without an outside lookup that clique
	// would never reconnect to the replicas holding the writes it missed.
	if len(p.Replicas()) == 0 || p.randFloat() < 0.2 {
		rep.ReplicaDiscovered = p.discoverReplica(ctx)
	}
	if replica, ok := p.randomReplica(); ok {
		rep.Replica = replica
		if p.Config().FullSyncAntiEntropy {
			n, err := p.AntiEntropy(ctx, replica)
			if err != nil {
				if ctx.Err() == nil && !errors.Is(err, context.Canceled) {
					p.removeReplica(replica)
				}
			} else {
				rep.ItemsReceived = n
				rep.Sync = SyncFullSet
				p.Metrics.SyncsFull.Add(1)
			}
		} else {
			sres, err := p.SyncReplica(ctx, replica)
			if err != nil {
				if ctx.Err() == nil && !errors.Is(err, context.Canceled) && !errors.Is(err, errSyncAborted) {
					p.removeReplica(replica)
				}
			} else {
				rep.ItemsReceived = sres.Received
				rep.Sync = sres.Kind
			}
		}
	}
	for i := 0; i < opts.Probes; i++ {
		probed, pruned := p.probeRef(ctx)
		if probed {
			rep.RefsProbed++
		}
		if pruned {
			rep.RefsPruned++
		}
	}
	return rep
}

// RunMaintenance runs maintenance ticks until the context is cancelled. It
// always returns the context's error.
func (p *Peer) RunMaintenance(ctx context.Context, opts MaintenanceOptions) error {
	opts = opts.normalize()
	for {
		// Jitter the pause by ±50% so peers desynchronise.
		d := time.Duration((0.5 + p.randFloat()) * float64(opts.Interval))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		p.MaintainTick(ctx, opts)
	}
}

// StartMaintenance launches the maintenance loop in a goroutine and returns
// a function that stops it and waits for it to exit.
func (p *Peer) StartMaintenance(opts MaintenanceOptions) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.RunMaintenance(ctx, opts)
	}()
	return func() {
		cancel()
		wg.Wait()
	}
}

// randFloat draws a uniform float from the peer's RNG.
func (p *Peer) randFloat() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

// randIntn draws a uniform int from [0, n) from the peer's RNG.
func (p *Peer) randIntn(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(n)
}

// randomReplica picks a uniformly random known replica.
func (p *Peer) randomReplica() (network.Addr, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.replicas) == 0 {
		return "", false
	}
	i := p.rng.Intn(len(p.replicas))
	for a := range p.replicas {
		if i == 0 {
			return a, true
		}
		i--
	}
	return "", false
}

// discoverReplica re-discovers a replica by handing an exact-match query for
// one of the peer's own keys to a routing reference — a peer outside the
// partition — and letting the overlay route it back in: whoever answers is
// responsible for the same partition, i.e. a replica. (Resolving the query
// locally would short-circuit at this peer itself.) Returns whether a
// replica was added; a miss is fine, the next tick tries again.
func (p *Peer) discoverReplica(ctx context.Context) bool {
	keys := p.store.Keys().FilterPrefix(p.Path())
	if len(keys) == 0 {
		return false
	}
	key := keys[p.randIntn(len(keys))]
	levels := p.table.Levels()
	if levels == 0 {
		return false
	}
	ref, ok := p.table.Random(p.randIntn(levels))
	if !ok {
		return false
	}
	req := QueryRequest{Key: key, TTL: p.cfg.QueryTTL}
	p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(req)))
	raw, err := p.transport.Call(ctx, ref.Addr, req)
	if err != nil {
		return false
	}
	p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(raw)))
	resp, ok := raw.(QueryResponse)
	if !ok || !resp.Found || resp.Responsible == p.Addr() {
		return false
	}
	if !resp.ResponsiblePath.SamePartition(p.Path()) {
		return false
	}
	p.AddReplica(resp.Responsible)
	return true
}

// probeRef pings one random routing reference and prunes it when it is
// unreachable or its peer's path no longer points into the complementary
// sub-tree of the reference's level. Live references get their stored path
// refreshed. Returns whether a reference was probed and whether it was
// pruned.
func (p *Peer) probeRef(ctx context.Context) (probed, pruned bool) {
	levels := p.table.Levels()
	if levels == 0 {
		return false, false
	}
	level := p.randIntn(levels)
	ref, ok := p.table.Random(level)
	if !ok {
		return false, false
	}
	req := PingRequest{From: p.Addr()}
	p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(req)))
	raw, err := p.transport.Call(ctx, ref.Addr, req)
	if err != nil {
		if ctx.Err() == nil && !errors.Is(err, context.Canceled) {
			p.table.Remove(ref.Addr)
			return true, true
		}
		return false, false
	}
	p.Metrics.MaintenanceBytes.Add(float64(network.MessageSize(raw)))
	pong, ok := raw.(PingResponse)
	if !ok {
		return true, false
	}
	if !refComplementary(p.Path(), level, pong.Path) {
		p.table.Remove(ref.Addr)
		return true, true
	}
	p.table.Add(level, routing.Ref{Addr: ref.Addr, Path: pong.Path})
	return true, false
}

// refComplementary reports whether a peer at theirPath is a valid routing
// reference at the given level of myPath: the paths must agree on the first
// level bits and differ at the level itself.
func refComplementary(myPath keyspace.Path, level int, theirPath keyspace.Path) bool {
	if level >= myPath.Depth() || level >= theirPath.Depth() {
		return false
	}
	return myPath.CommonPrefixLen(theirPath) == level
}
