package unstructured

import (
	"fmt"
	"testing"

	"pgrid/internal/network"
)

func addrs(n int) []network.Addr {
	out := make([]network.Addr, n)
	for i := range out {
		out[i] = network.Addr(fmt.Sprintf("peer-%03d", i))
	}
	return out
}

func TestNewGraphBasics(t *testing.T) {
	peers := addrs(50)
	g := NewGraph(peers, 4, 1)
	if g.Size() != 50 {
		t.Fatalf("size = %d", g.Size())
	}
	if len(g.Peers()) != 50 {
		t.Error("Peers() size wrong")
	}
	for _, p := range peers {
		ns := g.Neighbors(p)
		if len(ns) == 0 {
			t.Fatalf("peer %s has no neighbours", p)
		}
		seen := map[network.Addr]bool{}
		for _, n := range ns {
			if n == p {
				t.Fatalf("self loop at %s", p)
			}
			if seen[n] {
				t.Fatalf("duplicate neighbour %s at %s", n, p)
			}
			seen[n] = true
		}
	}
}

func TestGraphSymmetry(t *testing.T) {
	g := NewGraph(addrs(30), 4, 2)
	for _, p := range g.Peers() {
		for _, q := range g.Neighbors(p) {
			found := false
			for _, back := range g.Neighbors(q) {
				if back == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %s->%s not symmetric", p, q)
			}
		}
	}
}

func TestGraphConnected(t *testing.T) {
	g := NewGraph(addrs(100), 6, 3)
	if !g.Connected() {
		t.Error("random graph with degree 6 should be connected")
	}
	empty := NewGraph(nil, 4, 4)
	if empty.Connected() {
		t.Error("empty graph should not be connected")
	}
	single := NewGraph(addrs(1), 4, 5)
	if !single.Connected() {
		t.Error("single-peer graph is trivially connected")
	}
}

func TestAddPeer(t *testing.T) {
	g := NewGraph(addrs(20), 4, 6)
	newPeer := network.Addr("late-joiner")
	g.AddPeer(newPeer, 4)
	if g.Size() != 21 {
		t.Fatalf("size = %d", g.Size())
	}
	if len(g.Neighbors(newPeer)) == 0 {
		t.Error("late joiner should have neighbours")
	}
	// Adding again is a no-op.
	before := len(g.Neighbors(newPeer))
	g.AddPeer(newPeer, 4)
	if len(g.Neighbors(newPeer)) != before {
		t.Error("re-adding a peer should not change its neighbours")
	}
	// Default degree applies when degree <= 0.
	g.AddPeer("another", 0)
	if len(g.Neighbors("another")) == 0 {
		t.Error("default degree should connect the peer")
	}
}

func TestRandomWalkReachesManyPeers(t *testing.T) {
	peers := addrs(60)
	g := NewGraph(peers, 6, 7)
	counts := map[network.Addr]int{}
	for i := 0; i < 3000; i++ {
		p, err := g.RandomWalk(peers[0], 12, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	if len(counts) < 50 {
		t.Errorf("random walks reached only %d of 60 peers", len(counts))
	}
	// No single peer should dominate massively (rough uniformity check).
	for p, c := range counts {
		if c > 3000/60*6 {
			t.Errorf("peer %s sampled %d times, far above uniform share", p, c)
		}
	}
}

func TestRandomWalkErrorsAndFilter(t *testing.T) {
	g := NewGraph(addrs(10), 3, 8)
	if _, err := g.RandomWalk("unknown", 5, nil); err == nil {
		t.Error("unknown start should error")
	}
	// Filter that excludes everybody keeps the walk at the start.
	p, err := g.RandomWalk("peer-000", 5, func(network.Addr) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if p != "peer-000" {
		t.Errorf("filtered walk should stay at start, got %s", p)
	}
	// Zero length uses the default.
	if _, err := g.RandomWalk("peer-000", 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSample(t *testing.T) {
	g := NewGraph(addrs(40), 5, 9)
	sample, err := g.UniformSample("peer-000", 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 25 {
		t.Errorf("sample size = %d", len(sample))
	}
	if _, err := g.UniformSample("nope", 5, nil); err == nil {
		t.Error("unknown start should error")
	}
}

func TestVoteAggregation(t *testing.T) {
	peers := addrs(30)
	g := NewGraph(peers, 5, 10)
	res, err := Vote(g, peers[0], 0, func(p network.Addr) Ballot {
		// Two thirds vote in favour; everyone holds 10 items.
		favour := p[len(p)-1] != '0'
		return Ballot{InFavour: favour, LocalItems: 10, StorageBudget: 100}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 30 {
		t.Errorf("reached = %d", res.Reached)
	}
	if res.InFavour+res.Against != 30 {
		t.Error("votes do not add up")
	}
	if res.TotalItems != 300 || res.TotalStorage != 3000 {
		t.Errorf("aggregates wrong: %+v", res)
	}
	if res.AverageItems() != 10 {
		t.Errorf("average items = %v", res.AverageItems())
	}
	if !res.Passed() {
		t.Error("two-thirds majority should pass")
	}
	if res.Messages == 0 {
		t.Error("flooding should cost messages")
	}
}

func TestVoteTTLLimitsReach(t *testing.T) {
	peers := addrs(200)
	g := NewGraph(peers, 3, 11)
	limited, err := Vote(g, peers[0], 1, func(network.Addr) Ballot { return Ballot{InFavour: true} })
	if err != nil {
		t.Fatal(err)
	}
	full, err := Vote(g, peers[0], 0, func(network.Addr) Ballot { return Ballot{InFavour: true} })
	if err != nil {
		t.Fatal(err)
	}
	if limited.Reached >= full.Reached {
		t.Errorf("TTL should limit reach: %d vs %d", limited.Reached, full.Reached)
	}
}

func TestVoteErrors(t *testing.T) {
	g := NewGraph(addrs(5), 2, 12)
	if _, err := Vote(g, "peer-000", 0, nil); err == nil {
		t.Error("nil voter should error")
	}
	empty := NewGraph(nil, 2, 13)
	if _, err := Vote(empty, "x", 0, func(network.Addr) Ballot { return Ballot{} }); err == nil {
		t.Error("empty graph should error")
	}
}

func TestVoteParameters(t *testing.T) {
	v := VoteResult{Reached: 10, TotalItems: 100}
	// davg = 10, nmin = 5 -> dmax = 100.
	if got := v.Parameters(5); got != 100 {
		t.Errorf("dmax = %d, want 100", got)
	}
	// Degenerate nmin.
	if got := v.Parameters(0); got < 1 {
		t.Errorf("dmax with degenerate nmin = %d", got)
	}
	emptyVote := VoteResult{}
	if emptyVote.AverageItems() != 0 {
		t.Error("empty vote average should be 0")
	}
	if emptyVote.Parameters(5) < 5 {
		t.Error("dmax should never fall below nmin")
	}
}
