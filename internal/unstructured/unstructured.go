// Package unstructured implements the pre-existing unstructured overlay
// network the construction protocol bootstraps from (Sections 2.2 and 4.1):
// a random-neighbour graph over which peers perform random walks to select
// interaction partners approximately uniformly at random, and a flooding
// vote protocol by which a peer proposes building (or rebuilding) an index
// and gathers the aggregate information (number of data items, available
// storage) needed to choose the construction parameters.
package unstructured

import (
	"errors"
	"math/rand"
	"sync"

	"pgrid/internal/network"
)

// DefaultDegree is the default number of neighbours per peer.
const DefaultDegree = 6

// DefaultWalkLength is the default random-walk length used for uniform peer
// sampling; a handful of steps on a well-connected random graph is enough
// for the walk position to be close to uniformly distributed.
const DefaultWalkLength = 10

// Graph is the unstructured overlay: a directed neighbour relation that is
// kept (approximately) symmetric. It is safe for concurrent use.
type Graph struct {
	mu        sync.RWMutex
	neighbors map[network.Addr][]network.Addr
	rng       *rand.Rand
	rngMu     sync.Mutex
}

// NewGraph builds a random graph over the given peers where every peer gets
// `degree` neighbours chosen uniformly at random (plus the reverse edges).
func NewGraph(peers []network.Addr, degree int, seed int64) *Graph {
	if degree <= 0 {
		degree = DefaultDegree
	}
	g := &Graph{
		neighbors: make(map[network.Addr][]network.Addr, len(peers)),
		rng:       rand.New(rand.NewSource(seed)),
	}
	for _, p := range peers {
		g.neighbors[p] = nil
	}
	for _, p := range peers {
		for i := 0; i < degree && len(peers) > 1; i++ {
			q := peers[g.rng.Intn(len(peers))]
			if q == p {
				continue
			}
			g.addEdge(p, q)
			g.addEdge(q, p)
		}
	}
	return g
}

// addEdge adds q to p's neighbour list if not already present.
func (g *Graph) addEdge(p, q network.Addr) {
	for _, n := range g.neighbors[p] {
		if n == q {
			return
		}
	}
	g.neighbors[p] = append(g.neighbors[p], q)
}

// AddPeer inserts a new peer and connects it to `degree` random existing
// peers, which is how joining peers enter the unstructured overlay through
// a bootstrap peer.
func (g *Graph) AddPeer(p network.Addr, degree int) {
	if degree <= 0 {
		degree = DefaultDegree
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.neighbors[p]; ok {
		return
	}
	existing := make([]network.Addr, 0, len(g.neighbors))
	for q := range g.neighbors {
		existing = append(existing, q)
	}
	g.neighbors[p] = nil
	g.rngMu.Lock()
	defer g.rngMu.Unlock()
	for i := 0; i < degree && len(existing) > 0; i++ {
		q := existing[g.rng.Intn(len(existing))]
		g.addEdge(p, q)
		g.addEdge(q, p)
	}
}

// Peers returns all peers of the graph.
func (g *Graph) Peers() []network.Addr {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]network.Addr, 0, len(g.neighbors))
	for p := range g.neighbors {
		out = append(out, p)
	}
	return out
}

// Neighbors returns a copy of a peer's neighbour list.
func (g *Graph) Neighbors(p network.Addr) []network.Addr {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]network.Addr(nil), g.neighbors[p]...)
}

// Size returns the number of peers.
func (g *Graph) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.neighbors)
}

// RandomWalk performs a random walk of the given length starting at `from`
// and returns the final peer, which serves as an approximately uniform
// random sample of the peer population. Walks that hit a peer without
// neighbours stop there. The filter, when non-nil, restricts the walk to
// peers for which it returns true (used to avoid offline peers); if the
// start itself is the only eligible peer the start is returned.
func (g *Graph) RandomWalk(from network.Addr, length int, filter func(network.Addr) bool) (network.Addr, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.neighbors[from]; !ok {
		return "", errors.New("unstructured: unknown start peer")
	}
	if length <= 0 {
		length = DefaultWalkLength
	}
	cur := from
	g.rngMu.Lock()
	defer g.rngMu.Unlock()
	for i := 0; i < length; i++ {
		ns := g.neighbors[cur]
		if len(ns) == 0 {
			break
		}
		// Try a few times to honour the filter, otherwise stay put.
		moved := false
		for attempt := 0; attempt < 4; attempt++ {
			next := ns[g.rng.Intn(len(ns))]
			if filter == nil || filter(next) {
				cur = next
				moved = true
				break
			}
		}
		if !moved {
			continue
		}
	}
	return cur, nil
}

// UniformSample draws n approximately uniform peers by independent random
// walks from the given start peer.
func (g *Graph) UniformSample(from network.Addr, n int, filter func(network.Addr) bool) ([]network.Addr, error) {
	out := make([]network.Addr, 0, n)
	for i := 0; i < n; i++ {
		p, err := g.RandomWalk(from, DefaultWalkLength, filter)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Connected reports whether the graph is connected (ignoring direction),
// which the flooding vote and the random walks rely on.
func (g *Graph) Connected() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.neighbors) == 0 {
		return false
	}
	var start network.Addr
	for p := range g.neighbors {
		start = p
		break
	}
	seen := map[network.Addr]bool{start: true}
	queue := []network.Addr{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range g.neighbors[cur] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return len(seen) == len(g.neighbors)
}
