package unstructured

import (
	"errors"

	"pgrid/internal/network"
)

// This file implements the decentralized index-initiation protocol of
// Section 4.1: a peer that locally decides a (re-)index is needed floods a
// voting request over the unstructured overlay; peers reply with their vote
// and piggy-back local statistics (number of data items to index, storage
// they are willing to contribute); votes are aggregated along the flooding
// tree; if the vote passes, the initiator floods back the construction
// parameters derived from the aggregate.

// Ballot is one peer's reply to a voting request.
type Ballot struct {
	// InFavour is the peer's vote.
	InFavour bool
	// LocalItems is the number of data items the peer would contribute to
	// the new index.
	LocalItems int
	// StorageBudget is the number of index entries the peer is willing to
	// store.
	StorageBudget int
}

// Voter supplies a peer's ballot when the flood reaches it.
type Voter func(peer network.Addr) Ballot

// VoteResult is the aggregate the initiator sees after the flood returns.
type VoteResult struct {
	// Reached is the number of peers the flood reached (including the
	// initiator).
	Reached int
	// InFavour and Against count the votes.
	InFavour, Against int
	// TotalItems is the total number of data items to be indexed.
	TotalItems int
	// TotalStorage is the total contributed storage budget.
	TotalStorage int
	// Messages is the number of protocol messages exchanged (request plus
	// aggregated reply per edge of the flooding tree).
	Messages int
}

// Passed reports whether a majority of the reached peers voted in favour.
func (v VoteResult) Passed() bool { return v.InFavour > v.Reached/2 }

// AverageItems returns the mean number of data items per reached peer
// (d_avg in Section 4.2), from which the construction parameters are
// derived.
func (v VoteResult) AverageItems() float64 {
	if v.Reached == 0 {
		return 0
	}
	return float64(v.TotalItems) / float64(v.Reached)
}

// Parameters derives the construction parameters from the vote aggregate:
// the paper sets dmax = davg * nmin * 2 so that, with every key replicated
// nmin times before construction starts, partitions stop splitting at about
// twice the average per-peer load.
func (v VoteResult) Parameters(nmin int) (dmax int) {
	if nmin <= 0 {
		nmin = 1
	}
	dmax = int(v.AverageItems()*float64(nmin)*2 + 0.5)
	if dmax < nmin {
		dmax = nmin
	}
	return dmax
}

// Vote floods a voting request from the initiator over the graph and
// aggregates the ballots. TTL bounds the flooding depth (0 means unbounded,
// i.e. the whole connected component is reached).
func Vote(g *Graph, initiator network.Addr, ttl int, voter Voter) (VoteResult, error) {
	if voter == nil {
		return VoteResult{}, errors.New("unstructured: nil voter")
	}
	neighbors := g.Neighbors(initiator)
	if neighbors == nil && g.Size() == 0 {
		return VoteResult{}, errors.New("unstructured: empty graph")
	}
	seen := map[network.Addr]bool{initiator: true}
	type frontierEntry struct {
		addr  network.Addr
		depth int
	}
	queue := []frontierEntry{{initiator, 0}}
	var res VoteResult
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		b := voter(cur.addr)
		res.Reached++
		if b.InFavour {
			res.InFavour++
		} else {
			res.Against++
		}
		res.TotalItems += b.LocalItems
		res.TotalStorage += b.StorageBudget
		if ttl > 0 && cur.depth >= ttl {
			continue
		}
		for _, n := range g.Neighbors(cur.addr) {
			if !seen[n] {
				seen[n] = true
				// One request down the edge and one aggregated reply back.
				res.Messages += 2
				queue = append(queue, frontierEntry{n, cur.depth + 1})
			}
		}
	}
	return res, nil
}
