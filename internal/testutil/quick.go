// Package testutil provides shared helpers for the test suite.
package testutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// QuickConfig returns a testing/quick configuration with a deterministic,
// logged seed. testing/quick's default generator is time-seeded, which makes
// a failing property unreproducible; every property test in this repo
// threads an explicit seed through this helper instead, so the failure log
// always names the input population.
func QuickConfig(t *testing.T, maxCount int, seed int64) *quick.Config {
	t.Helper()
	t.Logf("testing/quick seed: %d", seed)
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(seed))}
}
