package gate

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync/atomic"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
)

// Backend is what the HTTP layer needs from the overlay: the five data
// operations, a readiness probe, and (optionally, via MetricsSource) the
// peer metrics the /metrics endpoint exports. Two implementations exist:
// PeerBackend drives a peer living in the same process (pgridnode -http),
// RemoteBackend speaks the wire protocol to peers across the network
// (standalone pgridgate).
//
// Errors returned by a Backend are classified with the overlay sentinels so
// the HTTP layer can map them to statuses uniformly: overlay.ErrNotFound
// (the responsible partition holds nothing under the key),
// overlay.ErrNoQuorum (mutation applied but under-replicated),
// overlay.ErrUnreachable (no route to the responsible partition), plus
// context.DeadlineExceeded when the per-request budget ran out mid-route.
type Backend interface {
	// Search resolves an exact-match lookup for the key. opts selects
	// between the default cache-eligible read and a consistent read that
	// bypasses every query-path answer cache.
	Search(ctx context.Context, key keyspace.Key, opts SearchOptions) (SearchResult, error)
	// SearchMany resolves many exact-match lookups as one batch; the
	// result aligns with keys by index and carries per-key errors.
	SearchMany(ctx context.Context, keys []keyspace.Key) []BatchEntry
	// Range returns every item with a key in r.
	Range(ctx context.Context, r keyspace.Range) (RangeResult, error)
	// Insert routes a live write to the responsible partition.
	Insert(ctx context.Context, it replication.Item) (MutateResult, error)
	// Delete routes a live delete of the (key, value) pair.
	Delete(ctx context.Context, key keyspace.Key, value string) (MutateResult, error)
	// Ready reports whether the backend can currently serve traffic; its
	// error is surfaced on /readyz.
	Ready(ctx context.Context) error
}

// MetricsSource is implemented by backends that can surface overlay peer
// metrics for the /metrics endpoint.
type MetricsSource interface {
	MetricsSnapshot() overlay.MetricsSnapshot
}

// SearchOptions selects the read path of a Search.
type SearchOptions struct {
	// Consistent forces the lookup to bypass every query-path answer cache
	// and route to the responsible partition.
	Consistent bool
}

// SearchResult is the outcome of an exact-match lookup.
type SearchResult struct {
	Items []replication.Item
	Hops  int
	// Cached reports that the answer was served from a peer's query-path
	// answer cache (after clock revalidation) rather than routed.
	Cached bool
}

// BatchEntry is one key's outcome within a batch lookup.
type BatchEntry struct {
	SearchResult
	Err error
}

// RangeResult is the outcome of a range query.
type RangeResult struct {
	Items      []replication.Item
	Hops       int
	Partitions int
	Incomplete bool
}

// MutateResult is the outcome of a routed insert or delete.
type MutateResult struct {
	Acks     int
	Replicas int
	Hops     int
}

// PeerBackend serves the gateway API from an overlay peer in the same
// process. The zero quorum semantics are the peer's own configured
// WriteQuorum.
type PeerBackend struct {
	Peer *overlay.Peer
}

// Search implements Backend.
func (b PeerBackend) Search(ctx context.Context, key keyspace.Key, opts SearchOptions) (SearchResult, error) {
	res, err := b.Peer.QueryWith(ctx, key, overlay.QueryOptions{Consistent: opts.Consistent})
	if err != nil {
		return SearchResult{}, classifyCtx(ctx, err)
	}
	if len(res.Items) == 0 {
		return SearchResult{Hops: res.Hops}, overlay.ErrNotFound
	}
	return SearchResult{Items: res.Items, Hops: res.Hops, Cached: res.Cached}, nil
}

// SearchMany implements Backend.
func (b PeerBackend) SearchMany(ctx context.Context, keys []keyspace.Key) []BatchEntry {
	out := make([]BatchEntry, len(keys))
	for i, r := range b.Peer.QueryBatch(ctx, keys) {
		if r.Err != nil {
			out[i].Err = classifyCtx(ctx, r.Err)
			continue
		}
		if len(r.Items) == 0 {
			out[i].Err = overlay.ErrNotFound
			out[i].Hops = r.Hops
			continue
		}
		out[i].SearchResult = SearchResult{Items: r.Items, Hops: r.Hops}
	}
	return out
}

// Range implements Backend.
func (b PeerBackend) Range(ctx context.Context, r keyspace.Range) (RangeResult, error) {
	res, err := b.Peer.RangeQuery(ctx, r)
	if err != nil {
		return RangeResult{}, classifyCtx(ctx, err)
	}
	return RangeResult{Items: res.Items, Hops: res.Hops, Partitions: res.Partitions, Incomplete: res.Incomplete}, nil
}

// Insert implements Backend.
func (b PeerBackend) Insert(ctx context.Context, it replication.Item) (MutateResult, error) {
	res, err := b.Peer.Insert(ctx, it)
	return MutateResult{Acks: res.Acks, Replicas: res.Replicas, Hops: res.Hops}, classifyCtx(ctx, err)
}

// Delete implements Backend.
func (b PeerBackend) Delete(ctx context.Context, key keyspace.Key, value string) (MutateResult, error) {
	res, err := b.Peer.Delete(ctx, key, value)
	return MutateResult{Acks: res.Acks, Replicas: res.Replicas, Hops: res.Hops}, classifyCtx(ctx, err)
}

// Ready implements Backend: a local peer is ready as soon as it exists.
func (b PeerBackend) Ready(context.Context) error { return nil }

// MetricsSnapshot implements MetricsSource.
func (b PeerBackend) MetricsSnapshot() overlay.MetricsSnapshot { return b.Peer.MetricsSnapshot() }

// RemoteBackend serves the gateway API by speaking the overlay wire
// protocol to one of a set of entry peers; the contacted peer routes the
// operation onward like any forwarded request. Entry peers are rotated
// round-robin, and an entry peer that fails at the transport level is
// skipped in favour of the next one within the same request.
type RemoteBackend struct {
	// Transport is the gateway's own endpoint (TCP in production, the
	// simulated network in tests).
	Transport network.Transport
	// Peers are the overlay entry points.
	Peers []network.Addr
	// TTL bounds routing hops per operation (0 = DefaultTTL).
	TTL int
	// WriteQuorum is the number of replica acks an insert or delete needs
	// before the gateway reports it successful (0 = 1). The gateway
	// applies it to the coordinator's reported ack count.
	WriteQuorum int

	next atomic.Uint64
}

// DefaultTTL is the default per-operation routing-hop bound of a
// RemoteBackend.
const DefaultTTL = 64

func (b *RemoteBackend) ttl() int {
	if b.TTL > 0 {
		return b.TTL
	}
	return DefaultTTL
}

func (b *RemoteBackend) quorum() int {
	if b.WriteQuorum > 0 {
		return b.WriteQuorum
	}
	return 1
}

// call sends req to entry peers in rotation until one answers, classifying
// total failure as ErrUnreachable.
func (b *RemoteBackend) call(ctx context.Context, req any) (any, error) {
	if len(b.Peers) == 0 {
		return nil, fmt.Errorf("gate: no entry peers configured: %w", overlay.ErrUnreachable)
	}
	start := int(b.next.Add(1) - 1)
	var lastErr error
	for i := 0; i < len(b.Peers); i++ {
		addr := b.Peers[(start+i)%len(b.Peers)]
		raw, err := b.Transport.Call(ctx, addr, req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		return raw, nil
	}
	return nil, fmt.Errorf("gate: all %d entry peers failed (last: %v): %w", len(b.Peers), lastErr, overlay.ErrUnreachable)
}

// Search implements Backend.
func (b *RemoteBackend) Search(ctx context.Context, key keyspace.Key, opts SearchOptions) (SearchResult, error) {
	raw, err := b.call(ctx, overlay.QueryRequest{Key: key, TTL: b.ttl(), Bypass: opts.Consistent})
	if err != nil {
		return SearchResult{}, err
	}
	resp, ok := raw.(overlay.QueryResponse)
	if !ok {
		return SearchResult{}, fmt.Errorf("gate: unexpected response %T: %w", raw, overlay.ErrUnreachable)
	}
	if !resp.Found {
		return SearchResult{}, fmt.Errorf("gate: routing exhausted: %w", overlay.ErrUnreachable)
	}
	if len(resp.Items) == 0 {
		return SearchResult{Hops: resp.Hops}, overlay.ErrNotFound
	}
	return SearchResult{Items: resp.Items, Hops: resp.Hops, Cached: resp.Cached}, nil
}

// SearchMany implements Backend.
func (b *RemoteBackend) SearchMany(ctx context.Context, keys []keyspace.Key) []BatchEntry {
	out := make([]BatchEntry, len(keys))
	raw, err := b.call(ctx, overlay.BatchQueryRequest{Keys: keys, TTL: b.ttl()})
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	resp, ok := raw.(overlay.BatchQueryResponse)
	if !ok || len(resp.Results) != len(keys) {
		for i := range out {
			out[i].Err = fmt.Errorf("gate: malformed batch response: %w", overlay.ErrUnreachable)
		}
		return out
	}
	for i, qr := range resp.Results {
		switch {
		case !qr.Found:
			out[i].Err = fmt.Errorf("gate: routing exhausted: %w", overlay.ErrUnreachable)
		case len(qr.Items) == 0:
			out[i].Err = overlay.ErrNotFound
			out[i].Hops = qr.Hops
		default:
			out[i].SearchResult = SearchResult{Items: qr.Items, Hops: qr.Hops}
		}
	}
	return out
}

// Range implements Backend. Replicas can contribute the same item through
// different branches, so the merged result is deduplicated and key-ordered
// here (a local peer's RangeQuery does the same before returning).
func (b *RemoteBackend) Range(ctx context.Context, r keyspace.Range) (RangeResult, error) {
	raw, err := b.call(ctx, overlay.RangeRequest{Lo: r.Lo, Hi: r.Hi, HiUnbounded: r.HiUnbounded, TTL: b.ttl()})
	if err != nil {
		return RangeResult{}, err
	}
	resp, ok := raw.(overlay.RangeResponse)
	if !ok {
		return RangeResult{}, fmt.Errorf("gate: unexpected response %T: %w", raw, overlay.ErrUnreachable)
	}
	return RangeResult{
		Items:      dedupeItems(resp.Items),
		Hops:       resp.Hops,
		Partitions: resp.Partitions,
		Incomplete: resp.Incomplete,
	}, nil
}

// Insert implements Backend.
func (b *RemoteBackend) Insert(ctx context.Context, it replication.Item) (MutateResult, error) {
	raw, err := b.call(ctx, overlay.InsertRequest{Item: it, ID: mutationID(), TTL: b.ttl()})
	if err != nil {
		return MutateResult{}, err
	}
	return b.finishMutation(raw)
}

// Delete implements Backend.
func (b *RemoteBackend) Delete(ctx context.Context, key keyspace.Key, value string) (MutateResult, error) {
	raw, err := b.call(ctx, overlay.DeleteRequest{Key: key, Value: value, ID: mutationID(), TTL: b.ttl()})
	if err != nil {
		return MutateResult{}, err
	}
	return b.finishMutation(raw)
}

// finishMutation converts a wire MutateResponse and applies the gateway's
// write quorum to the coordinator's ack count.
func (b *RemoteBackend) finishMutation(raw any) (MutateResult, error) {
	resp, ok := raw.(overlay.MutateResponse)
	if !ok {
		return MutateResult{}, fmt.Errorf("gate: unexpected response %T: %w", raw, overlay.ErrUnreachable)
	}
	if !resp.Found {
		return MutateResult{}, fmt.Errorf("gate: routing exhausted: %w", overlay.ErrUnreachable)
	}
	res := MutateResult{Acks: resp.Acks, Replicas: resp.Replicas, Hops: resp.Hops}
	if res.Acks < b.quorum() {
		return res, overlay.ErrNoQuorum
	}
	return res, nil
}

// Ready implements Backend: at least one entry peer must answer a ping.
func (b *RemoteBackend) Ready(ctx context.Context) error {
	_, err := b.call(ctx, overlay.PingRequest{From: b.Transport.Addr()})
	return err
}

// mutationID draws a non-zero mutation identity for the overlay's
// exactly-once coordination (a zero ID is never deduplicated).
func mutationID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// classifyCtx prefers the context's own verdict over the overlay error: a
// race that lost because the request deadline fired mid-route must surface
// as a timeout, not as "unreachable".
func classifyCtx(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// dedupeItems removes duplicate (key, value) pairs and orders by key.
func dedupeItems(items []replication.Item) []replication.Item {
	seen := make(map[string]bool, len(items))
	out := make([]replication.Item, 0, len(items))
	for _, it := range items {
		k := it.Key.String() + "\x00" + it.Value
		if !seen[k] {
			seen[k] = true
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Key.Compare(out[j].Key); c != 0 {
			return c < 0
		}
		return out[i].Value < out[j].Value
	})
	return out
}
