package gate

// Prometheus text exposition (version 0.0.4) written with the standard
// library only: the gateway's per-route latency/status counters plus the
// overlay peer gauges from MetricsSnapshot. The format is plain lines of
// `name{labels} value`, so no client dependency is needed — only the
// conventions: counters end in _total, histograms expose cumulative
// _bucket{le=...} series plus _sum and _count, and every family gets one
// # HELP / # TYPE header.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/overlay"
)

// latencyBuckets are the cumulative histogram upper bounds, in seconds.
// They bracket the overlay's routing latencies: sub-millisecond loopback
// calls up to multi-second degraded routes.
var latencyBuckets = [...]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// routeStats accumulates one route's status counts and latency histogram.
// All fields are atomics: the request path never takes a lock.
type routeStats struct {
	mu    sync.Mutex
	codes map[int]*atomic.Uint64

	buckets [len(latencyBuckets) + 1]atomic.Uint64 // +1 for +Inf
	sumNs   atomic.Uint64
	count   atomic.Uint64
}

// observe records one finished request.
func (r *routeStats) observe(code int, d time.Duration) {
	r.codeCounter(code).Add(1)
	sec := d.Seconds()
	idx := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if sec <= ub {
			idx = i
			break
		}
	}
	r.buckets[idx].Add(1)
	r.sumNs.Add(uint64(d.Nanoseconds()))
	r.count.Add(1)
}

// codeCounter returns the counter of one status code, creating it on first
// use (the map is append-only and tiny: a handful of codes per route).
func (r *routeStats) codeCounter(code int) *atomic.Uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.codes == nil {
		r.codes = make(map[int]*atomic.Uint64)
	}
	c, ok := r.codes[code]
	if !ok {
		c = &atomic.Uint64{}
		r.codes[code] = c
	}
	return c
}

// gateMetrics is the gateway's metric state.
type gateMetrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats

	inflight atomic.Int64
	shed     atomic.Uint64
	// cacheHits and cacheMisses count cache-eligible searches by how the
	// overlay served them (consistent reads bypass and count in neither).
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
}

func newGateMetrics() *gateMetrics {
	return &gateMetrics{routes: make(map[string]*routeStats)}
}

// route returns the stats of one route, creating them on first use.
func (g *gateMetrics) route(name string) *routeStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	rs, ok := g.routes[name]
	if !ok {
		rs = &routeStats{}
		g.routes[name] = rs
	}
	return rs
}

// fmtFloat renders a metric value the way Prometheus clients do.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeExposition renders the gateway metrics, and — when snap is non-nil —
// the overlay peer counters and replication gauges, as Prometheus text.
func (g *gateMetrics) writeExposition(w io.Writer, ready bool, snap *overlay.MetricsSnapshot) {
	fmt.Fprintf(w, "# HELP pgrid_gate_ready Whether the gateway accepts traffic (0 while draining).\n")
	fmt.Fprintf(w, "# TYPE pgrid_gate_ready gauge\n")
	readyVal := 0
	if ready {
		readyVal = 1
	}
	fmt.Fprintf(w, "pgrid_gate_ready %d\n", readyVal)

	fmt.Fprintf(w, "# HELP pgrid_gate_inflight_requests API requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE pgrid_gate_inflight_requests gauge\n")
	fmt.Fprintf(w, "pgrid_gate_inflight_requests %d\n", g.inflight.Load())

	fmt.Fprintf(w, "# HELP pgrid_gate_shed_total Requests rejected with 429 by the concurrency limiter.\n")
	fmt.Fprintf(w, "# TYPE pgrid_gate_shed_total counter\n")
	fmt.Fprintf(w, "pgrid_gate_shed_total %d\n", g.shed.Load())

	fmt.Fprintf(w, "# HELP pgrid_gate_cache_hits_total Searches served from the overlay's query answer cache.\n")
	fmt.Fprintf(w, "# TYPE pgrid_gate_cache_hits_total counter\n")
	fmt.Fprintf(w, "pgrid_gate_cache_hits_total %d\n", g.cacheHits.Load())

	fmt.Fprintf(w, "# HELP pgrid_gate_cache_misses_total Cache-eligible searches that routed to the responsible partition.\n")
	fmt.Fprintf(w, "# TYPE pgrid_gate_cache_misses_total counter\n")
	fmt.Fprintf(w, "pgrid_gate_cache_misses_total %d\n", g.cacheMisses.Load())

	g.mu.Lock()
	names := make([]string, 0, len(g.routes))
	for name := range g.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	routes := make([]*routeStats, len(names))
	for i, name := range names {
		routes[i] = g.routes[name]
	}
	g.mu.Unlock()

	fmt.Fprintf(w, "# HELP pgrid_gate_requests_total Finished requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE pgrid_gate_requests_total counter\n")
	for i, name := range names {
		rs := routes[i]
		rs.mu.Lock()
		codes := make([]int, 0, len(rs.codes))
		for code := range rs.codes {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "pgrid_gate_requests_total{route=%q,code=\"%d\"} %d\n", name, code, rs.codes[code].Load())
		}
		rs.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP pgrid_gate_request_duration_seconds Request latency by route.\n")
	fmt.Fprintf(w, "# TYPE pgrid_gate_request_duration_seconds histogram\n")
	for i, name := range names {
		rs := routes[i]
		cum := uint64(0)
		for bi, ub := range latencyBuckets {
			cum += rs.buckets[bi].Load()
			fmt.Fprintf(w, "pgrid_gate_request_duration_seconds_bucket{route=%q,le=%q} %d\n", name, fmtFloat(ub), cum)
		}
		cum += rs.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "pgrid_gate_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "pgrid_gate_request_duration_seconds_sum{route=%q} %s\n", name, fmtFloat(float64(rs.sumNs.Load())/1e9))
		fmt.Fprintf(w, "pgrid_gate_request_duration_seconds_count{route=%q} %d\n", name, rs.count.Load())
	}

	if snap != nil {
		writePeerExposition(w, snap)
	}
}

// writePeerExposition renders an overlay MetricsSnapshot as Prometheus
// text: protocol counters plus the replication gauges (store size,
// tombstones, WAL shape, disk-engine segments) that were previously
// invisible to scrapers.
func writePeerExposition(w io.Writer, s *overlay.MetricsSnapshot) {
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	counter("pgrid_peer_queries_total", "Exact-match and range queries originated.", s.Queries)
	counter("pgrid_peer_query_hops_total", "Routing hops used by originated queries.", s.QueryHops)
	counter("pgrid_peer_mutations_total", "Routed inserts and deletes originated.", s.Mutations)
	counter("pgrid_peer_mutation_hops_total", "Routing hops used by originated mutations.", s.MutationHops)
	counter("pgrid_peer_query_bytes_total", "Bytes sent and received on the query path.", s.QueryBytes)
	counter("pgrid_peer_maintenance_bytes_total", "Bytes sent and received by maintenance.", s.MaintenanceBytes)
	counter("pgrid_peer_interactions_total", "Construction interactions initiated.", s.Interactions)
	counter("pgrid_peer_keys_moved_total", "Data items moved during construction.", s.KeysMoved)
	fmt.Fprintf(w, "# HELP pgrid_peer_syncs_total Completed anti-entropy syncs by protocol path.\n")
	fmt.Fprintf(w, "# TYPE pgrid_peer_syncs_total counter\n")
	fmt.Fprintf(w, "pgrid_peer_syncs_total{kind=\"insync\"} %s\n", fmtFloat(s.SyncsInSync))
	fmt.Fprintf(w, "pgrid_peer_syncs_total{kind=\"delta\"} %s\n", fmtFloat(s.SyncsDelta))
	fmt.Fprintf(w, "pgrid_peer_syncs_total{kind=\"full\"} %s\n", fmtFloat(s.SyncsFull))
	counter("pgrid_peer_tombstones_pruned_total", "Tombstones removed by the GC horizon.", s.TombstonesPruned)
	counter("pgrid_peer_cache_hits_total", "Exact lookups served from the query answer cache.", s.CacheHits)
	counter("pgrid_peer_cache_misses_total", "Exact lookups that had to route (cache miss or revalidation failure).", s.CacheMisses)
	counter("pgrid_peer_widening_recruits_total", "Temporary hot-key replicas enlisted by replica widening.", s.WideningRecruits)
	counter("pgrid_peer_widening_releases_total", "Temporary hot-key replicas dismissed by replica widening.", s.WideningReleases)
	counter("pgrid_peer_persistence_errors_total", "Maintenance ticks observing a sticky persistence failure.", s.PersistenceErrors)
	gauge("pgrid_peer_replicas", "Peers known to replicate this partition.", float64(s.Replicas))
	gauge("pgrid_peer_path_depth", "Partition path depth (trie level).", float64(len(s.Path)))
	gauge("pgrid_store_items", "Live pairs in the replica store.", float64(s.Store.Items))
	gauge("pgrid_store_tombstones", "Delete tombstones retained.", float64(s.Store.Tombstones))
	gauge("pgrid_store_clock", "Store logical clock (total local mutations).", float64(s.Store.Clock))
	gauge("pgrid_store_wal_records", "Records in the current WAL segment.", float64(s.Store.WALRecords))
	gauge("pgrid_store_wal_segments", "WAL segment files on disk.", float64(s.Store.WALSegments))
	gauge("pgrid_store_engine_segments", "Disk-engine sorted segment files.", float64(s.Store.EngineStats.Segments))
	gauge("pgrid_store_engine_memtable_entries", "Disk-engine active memtable entries.", float64(s.Store.EngineStats.MemtableLen))
	gauge("pgrid_store_engine_frozen_entries", "Disk-engine entries frozen for flush.", float64(s.Store.EngineStats.FrozenLen))
}
