package gate

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
)

// fakeBackend is a scriptable in-memory Backend: a map store plus knobs to
// force errors and to block operations until released (for timeout,
// shedding and drain tests).
type fakeBackend struct {
	mu    sync.Mutex
	items map[string][]replication.Item

	// forceErr, when set, is returned by every operation.
	forceErr error
	// entered, when non-nil, receives one value as each operation starts.
	entered chan struct{}
	// release, when non-nil, blocks each operation until closed (or the
	// request context expires, which wins and surfaces as ctx.Err()).
	release chan struct{}
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{items: make(map[string][]replication.Item)}
}

// gate applies the scripted blocking/error behaviour shared by all ops.
func (f *fakeBackend) gate(ctx context.Context) error {
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return f.forceErr
}

func (f *fakeBackend) Search(ctx context.Context, key keyspace.Key, _ SearchOptions) (SearchResult, error) {
	if err := f.gate(ctx); err != nil {
		return SearchResult{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	items := f.items[key.String()]
	if len(items) == 0 {
		return SearchResult{}, overlay.ErrNotFound
	}
	return SearchResult{Items: append([]replication.Item(nil), items...), Hops: 1}, nil
}

func (f *fakeBackend) SearchMany(ctx context.Context, keys []keyspace.Key) []BatchEntry {
	out := make([]BatchEntry, len(keys))
	for i, k := range keys {
		res, err := f.Search(ctx, k, SearchOptions{})
		out[i] = BatchEntry{SearchResult: res, Err: err}
	}
	return out
}

func (f *fakeBackend) Range(ctx context.Context, r keyspace.Range) (RangeResult, error) {
	if err := f.gate(ctx); err != nil {
		return RangeResult{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var res RangeResult
	for _, items := range f.items {
		for _, it := range items {
			if r.ContainsKey(it.Key) {
				res.Items = append(res.Items, it)
			}
		}
	}
	res.Items = dedupeItems(res.Items)
	res.Partitions = 1
	return res, nil
}

func (f *fakeBackend) Insert(ctx context.Context, it replication.Item) (MutateResult, error) {
	if err := f.gate(ctx); err != nil {
		return MutateResult{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.items[it.Key.String()] = append(f.items[it.Key.String()], it)
	return MutateResult{Acks: 2, Replicas: 2, Hops: 1}, nil
}

func (f *fakeBackend) Delete(ctx context.Context, key keyspace.Key, value string) (MutateResult, error) {
	if err := f.gate(ctx); err != nil {
		return MutateResult{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := f.items[key.String()][:0]
	for _, it := range f.items[key.String()] {
		if it.Value != value {
			kept = append(kept, it)
		}
	}
	f.items[key.String()] = kept
	return MutateResult{Acks: 2, Replicas: 2, Hops: 1}, nil
}

func (f *fakeBackend) Ready(context.Context) error { return nil }

// doJSON runs one request against the test server and decodes the body.
func doJSON(t *testing.T, ts *httptest.Server, method, path, body string, out any) *http.Response {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, path, raw, err)
		}
	}
	return resp
}

func TestCRUDHappyPath(t *testing.T) {
	srv := New(Config{Backend: newFakeBackend()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var put mutateResponse
	if resp := doJSON(t, ts, http.MethodPut, "/v1/items/apple", `{"value":"doc1"}`, &put); resp.StatusCode != http.StatusOK {
		t.Fatalf("put: status %d", resp.StatusCode)
	}
	if put.Acks != 2 || put.Replicas != 2 {
		t.Errorf("put response: %+v", put)
	}
	doJSON(t, ts, http.MethodPut, "/v1/items/banana", `{"value":"doc2"}`, nil)

	var got searchResponse
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/apple", "", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}
	if len(got.Items) != 1 || got.Items[0].Value != "doc1" {
		t.Errorf("search items: %+v", got.Items)
	}

	var batch batchResponse
	if resp := doJSON(t, ts, http.MethodPost, "/v1/batch", `{"keys":["apple","missing"]}`, &batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(batch.Results) != 2 || !batch.Results[0].Found || batch.Results[1].Found || batch.Results[1].Error == "" {
		t.Errorf("batch results: %+v", batch.Results)
	}

	var rng rangeResponse
	if resp := doJSON(t, ts, http.MethodGet, "/v1/range?lo=a&hi=z", "", &rng); resp.StatusCode != http.StatusOK {
		t.Fatalf("range: status %d", resp.StatusCode)
	}
	if len(rng.Items) != 2 {
		t.Errorf("range items: %+v", rng.Items)
	}

	if resp := doJSON(t, ts, http.MethodDelete, "/v1/items/apple?value=doc1", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/apple", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("search after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestErrorStatusMapping checks that every backend error class surfaces as
// its HTTP status instead of a generic 500.
func TestErrorStatusMapping(t *testing.T) {
	fb := newFakeBackend()
	srv := New(Config{Backend: fb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		err  error
		want int
	}{
		{"not found", overlay.ErrNotFound, http.StatusNotFound},
		{"no quorum", fmt.Errorf("wrapped: %w", overlay.ErrNoQuorum), http.StatusServiceUnavailable},
		{"unreachable", fmt.Errorf("wrapped: %w", overlay.ErrUnreachable), http.StatusServiceUnavailable},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"internal", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		fb.forceErr = tc.err
		var body errorResponse
		resp := doJSON(t, ts, http.MethodGet, "/v1/search/anything", "", &body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if body.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		if body.Error.Code != codeFor(tc.want) {
			t.Errorf("%s: error code %q, want %q", tc.name, body.Error.Code, codeFor(tc.want))
		}
	}

	fb.forceErr = nil
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/k?enc=banana", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad encoding: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, ts, http.MethodGet, "/v1/range", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("range without lo: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, ts, http.MethodPost, "/v1/batch", `{"keys":[]}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

// TestTimeoutMidRoute checks the per-request deadline: a backend that stalls
// routing longer than RequestTimeout surfaces as 504, not as a hung request.
func TestTimeoutMidRoute(t *testing.T) {
	fb := newFakeBackend()
	fb.release = make(chan struct{}) // never closed: block until ctx fires
	srv := New(Config{Backend: fb, RequestTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	resp := doJSON(t, ts, http.MethodGet, "/v1/search/slow", "", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("request took %v; deadline did not fire", d)
	}
}

// TestShedding checks the concurrency limiter: with MaxInFlight requests
// already being served, the next request is rejected immediately with
// 429 + Retry-After rather than queued.
func TestShedding(t *testing.T) {
	fb := newFakeBackend()
	fb.entered = make(chan struct{}, 8)
	fb.release = make(chan struct{})
	srv := New(Config{Backend: fb, MaxInFlight: 2, RequestTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/v1/search/blocked")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Wait until both requests are inside the backend, holding the
	// semaphore's two slots.
	for i := 0; i < 2; i++ {
		select {
		case <-fb.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("blocked requests never reached the backend")
		}
	}

	resp := doJSON(t, ts, http.MethodGet, "/v1/search/extra", "", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}

	close(fb.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusNotFound { // key absent in the fake store
			t.Errorf("blocked request finished with %d", code)
		}
	}
}

// TestDrain checks graceful shutdown: Drain flips /readyz to 503 at once
// (so load balancers stop routing here) but blocks until the in-flight
// request finishes, which it does, successfully.
func TestDrain(t *testing.T) {
	fb := newFakeBackend()
	fb.entered = make(chan struct{}, 1)
	fb.release = make(chan struct{})
	srv := New(Config{Backend: fb, RequestTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp := doJSON(t, ts, http.MethodGet, "/readyz", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}

	inflightDone := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/v1/search/inflight")
		if err != nil {
			inflightDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	<-fb.entered

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()

	// readyz must flip to 503 while the request is still in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := doJSON(t, ts, http.MethodGet, "/readyz", "", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned %v with a request still in flight", err)
	default:
	}

	close(fb.release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-inflightDone; code != http.StatusNotFound {
		t.Errorf("in-flight request finished with %d during drain", code)
	}

	// A drain that cannot finish in time reports the abort.
	srv2 := New(Config{Backend: fb, RequestTimeout: 10 * time.Second})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	fb.release = make(chan struct{})
	go func() {
		resp, err := ts2.Client().Get(ts2.URL + "/v1/search/stuck")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-fb.entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv2.Drain(ctx); err == nil {
		t.Error("drain with a stuck request returned nil")
	}
	close(fb.release)
}

// metricsFake adds a MetricsSnapshot to the fake backend so the peer
// exposition path is exercised.
type metricsFake struct {
	*fakeBackend
	snap overlay.MetricsSnapshot
}

func (m metricsFake) MetricsSnapshot() overlay.MetricsSnapshot { return m.snap }

// promLine matches one Prometheus text sample: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

// TestMetricsExposition drives a few requests and checks /metrics emits
// well-formed Prometheus text with the expected families.
func TestMetricsExposition(t *testing.T) {
	fb := newFakeBackend()
	mb := metricsFake{fakeBackend: fb, snap: overlay.MetricsSnapshot{
		Queries:  42,
		Replicas: 3,
		Store:    replication.StoreStats{Items: 7, Tombstones: 1, WALSegments: 2},
	}}
	srv := New(Config{Backend: mb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doJSON(t, ts, http.MethodPut, "/v1/items/apple", `{"value":"doc1"}`, nil)
	doJSON(t, ts, http.MethodGet, "/v1/search/apple", "", nil)
	doJSON(t, ts, http.MethodGet, "/v1/search/missing", "", nil)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	typed := make(map[string]string) // family -> type
	samples := make(map[string]string)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name, value, _ := strings.Cut(line, " ")
		samples[name] = value
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Every sample must belong to a declared family.
	suffixes := []string{"", "_bucket", "_sum", "_count"}
	for name := range samples {
		base, _, _ := strings.Cut(name, "{")
		ok := false
		for _, suf := range suffixes {
			if _, declared := typed[strings.TrimSuffix(base, suf)]; declared && (suf == "" || strings.HasSuffix(base, suf)) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("sample %q has no # TYPE declaration", name)
		}
	}

	for _, want := range []string{
		`pgrid_gate_ready`,
		`pgrid_gate_requests_total{route="insert",code="200"}`,
		`pgrid_gate_requests_total{route="search",code="200"}`,
		`pgrid_gate_requests_total{route="search",code="404"}`,
		`pgrid_gate_request_duration_seconds_count{route="search"}`,
		`pgrid_peer_queries_total`,
		`pgrid_peer_replicas`,
		`pgrid_store_items`,
		`pgrid_store_wal_segments`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("missing sample %s", want)
		}
	}
	if got := samples[`pgrid_store_items`]; got != "7" {
		t.Errorf("pgrid_store_items = %s, want 7", got)
	}
	if got := samples[`pgrid_gate_requests_total{route="search",code="404"}`]; got != "1" {
		t.Errorf(`search 404 counter = %s, want 1`, got)
	}
}
