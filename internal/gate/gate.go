// Package gate is the overlay's HTTP front door: a thin service layer that
// exposes exact-match, range and batch queries plus routed inserts and
// deletes over JSON/HTTP, in front of either a peer in the same process
// (PeerBackend) or a set of remote peers spoken to over the wire protocol
// (RemoteBackend).
//
// The layer owns the three production concerns the overlay itself does not:
//
//   - Backpressure. A fixed-size in-flight semaphore admits at most
//     MaxInFlight API requests; excess load is shed immediately with
//     429 + Retry-After instead of queueing unboundedly, so a traffic spike
//     degrades into fast rejections rather than collapsing latency for
//     everyone.
//   - Deadlines. Every request runs under a per-request context deadline
//     that propagates into the overlay's α-raced routing, so a stuck route
//     costs the client at most RequestTimeout and surfaces as 504.
//   - Observability. Per-route status and latency counters plus the
//     backend peer's protocol counters and replication gauges are exported
//     in Prometheus text format on /metrics; /healthz reports liveness and
//     /readyz readiness, which Drain flips ahead of shutdown so load
//     balancers stop routing while in-flight requests finish.
//
// Routes:
//
//	GET    /v1/search/{key}        exact-match lookup (?consistent=1 bypasses caches)
//	GET    /v1/range?lo=&hi=       range query (hi omitted = unbounded)
//	POST   /v1/batch               {"keys": [...]} batch lookup
//	PUT    /v1/items/{key}         {"value": ...} routed insert
//	DELETE /v1/items/{key}?value=  routed delete
//	GET    /healthz, /readyz, /metrics
//
// Keys are UTF-8 terms by default, order-preservingly encoded like
// pgrid.StringKey; ?enc=bits switches to raw "0101..." bit-string keys.
//
// Search answers carry an X-Pgrid-Cache header telling how the read was
// served: "hit" (a peer's query-path answer cache, revalidated against the
// partition's logical clock), "miss" (routed normally, cache-eligible) or
// "bypass" (?consistent=1 forced routing). Consistent reads cost the full
// route but are never served from any cache.
//
// Every failure returns the JSON error envelope
//
//	{"error": {"code": "...", "message": "..."}}
//
// with a stable machine-readable code alongside the HTTP status:
// bad_request (400), not_found (404), overloaded (429, shed by the
// concurrency limiter), unavailable (503, overlay unreachable or write
// quorum missed), timeout (504, deadline exceeded mid-route) and internal
// (500).
package gate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
)

// Defaults of Config.
const (
	// DefaultRequestTimeout is the default per-request deadline.
	DefaultRequestTimeout = 5 * time.Second
	// DefaultMaxInFlight is the default concurrency limit.
	DefaultMaxInFlight = 256
	// DefaultMaxBatchKeys bounds the keys accepted by one /v1/batch call.
	DefaultMaxBatchKeys = 1024
	// DefaultMaxBodyBytes bounds request bodies.
	DefaultMaxBodyBytes = 1 << 20
)

// Config parameterises a Server.
type Config struct {
	// Backend serves the overlay operations. Required.
	Backend Backend
	// RequestTimeout is the per-request deadline propagated into the
	// overlay's routing as a context deadline (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served API requests; excess requests
	// are shed with 429 + Retry-After (0 = DefaultMaxInFlight).
	MaxInFlight int
	// MaxBatchKeys bounds the keys of one batch request (0 = default).
	MaxBatchKeys int
	// MaxBodyBytes bounds request bodies (0 = default).
	MaxBodyBytes int64
	// KeyDepth is the bit depth for term-encoded keys (0 = default).
	KeyDepth int
}

// normalize fills in defaults.
func (c Config) normalize() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxBatchKeys <= 0 {
		c.MaxBatchKeys = DefaultMaxBatchKeys
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.KeyDepth <= 0 {
		c.KeyDepth = keyspace.DefaultDepth
	}
	return c
}

// Server is the HTTP front door. Create it with New, mount Handler on an
// http.Server, and call Drain before shutting that server down.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sem     chan struct{}
	metrics *gateMetrics

	ready    atomic.Bool
	inflight sync.WaitGroup
}

// New creates a Server over the given backend. The server starts ready.
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		metrics: newGateMetrics(),
	}
	s.ready.Store(true)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /v1/search/{key}", s.api("search", s.handleSearch))
	s.mux.Handle("GET /v1/range", s.api("range", s.handleRange))
	s.mux.Handle("POST /v1/batch", s.api("batch", s.handleBatch))
	s.mux.Handle("PUT /v1/items/{key}", s.api("insert", s.handleInsert))
	s.mux.Handle("DELETE /v1/items/{key}", s.api("delete", s.handleDelete))
	return s
}

// Handler returns the http.Handler serving all routes.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready reports whether the server currently advertises readiness.
func (s *Server) Ready() bool { return s.ready.Load() }

// Drain initiates graceful shutdown: /readyz flips to 503 immediately (so
// load balancers stop routing new traffic here), and Drain blocks until
// every in-flight API request has finished or ctx expires. Close the HTTP
// listener after Drain returns; new requests arriving while draining are
// still served normally.
func (s *Server) Drain(ctx context.Context) error {
	s.ready.Store(false)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("gate: drain aborted with requests in flight: %w", ctx.Err())
	}
}

// errorBody is the machine-readable error payload of the envelope.
type errorBody struct {
	// Code is a stable slug clients can branch on (bad_request, not_found,
	// overloaded, unavailable, timeout, internal).
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// errorResponse is the JSON error envelope every failing route returns.
type errorResponse struct {
	Error errorBody `json:"error"`
}

// errEnvelope builds the envelope for one status/message pair.
func errEnvelope(status int, msg string) errorResponse {
	return errorResponse{Error: errorBody{Code: codeFor(status), Message: msg}}
}

// codeFor maps an HTTP status to the envelope's stable error code.
func codeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

// itemJSON is one (key, value) pair on the wire.
type itemJSON struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

func itemsJSON(items []replication.Item) []itemJSON {
	out := make([]itemJSON, len(items))
	for i, it := range items {
		out[i] = itemJSON{Key: it.Key.String(), Value: it.Value}
	}
	return out
}

// badRequestError marks client errors that map to 400.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}

// statusFor maps a backend error to its HTTP status: the error
// classification that used to collapse into a generic 500.
func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &badRequestError{}):
		return http.StatusBadRequest
	case errors.Is(err, overlay.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, overlay.ErrNoQuorum):
		return http.StatusServiceUnavailable
	case errors.Is(err, overlay.ErrUnreachable):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// api wraps an operation handler with the service-layer concerns: the
// in-flight semaphore (shedding with 429 + Retry-After when full), the
// per-request deadline, drain tracking, JSON rendering and the per-route
// metrics. Handlers receive the ResponseWriter only to set response
// headers (e.g. X-Pgrid-Cache); the wrapper owns status and body.
func (s *Server) api(route string, fn func(w http.ResponseWriter, r *http.Request) (any, error)) http.Handler {
	rs := s.metrics.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		select {
		case s.sem <- struct{}{}:
		default:
			// Shed immediately: a full semaphore means MaxInFlight requests
			// are already being served, and queueing here would just build
			// an unbounded convoy of doomed requests.
			s.metrics.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errEnvelope(http.StatusTooManyRequests, "overloaded, retry later"))
			rs.observe(http.StatusTooManyRequests, time.Since(start))
			return
		}
		s.inflight.Add(1)
		s.metrics.inflight.Add(1)
		defer func() {
			<-s.sem
			s.inflight.Done()
			s.metrics.inflight.Add(-1)
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		payload, err := fn(w, r.WithContext(ctx))
		code := statusFor(err)
		if err != nil {
			// A 503 is a transient overlay condition (entry peers down, no
			// quorum): tell well-behaved clients when to come back, exactly
			// as the load shedder does for 429.
			if code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, code, errEnvelope(code, err.Error()))
		} else {
			writeJSON(w, code, payload)
		}
		rs.observe(code, time.Since(start))
	})
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(payload)
}

// parseKey decodes a key from its request form: a term (order-preservingly
// encoded) by default, a raw bit string with enc=bits.
func (s *Server) parseKey(raw, enc string) (keyspace.Key, error) {
	switch enc {
	case "", "term":
		k, err := keyspace.EncodeString(raw, s.cfg.KeyDepth)
		if err != nil {
			return keyspace.Key{}, badRequestf("bad key %q: %v", raw, err)
		}
		return k, nil
	case "bits":
		k, err := keyspace.FromString(raw)
		if err != nil {
			return keyspace.Key{}, badRequestf("bad bit-string key %q: %v", raw, err)
		}
		return k, nil
	default:
		return keyspace.Key{}, badRequestf("unknown key encoding %q (want term or bits)", enc)
	}
}

// searchResponse is the GET /v1/search/{key} body.
type searchResponse struct {
	Key    string     `json:"key"`
	Items  []itemJSON `json:"items"`
	Hops   int        `json:"hops"`
	Cached bool       `json:"cached,omitempty"`
}

// cacheHeader is the response header reporting how a search was served.
const cacheHeader = "X-Pgrid-Cache"

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) (any, error) {
	q := r.URL.Query()
	key, err := s.parseKey(r.PathValue("key"), q.Get("enc"))
	if err != nil {
		return nil, err
	}
	consistent := q.Get("consistent") == "1" || q.Get("consistent") == "true"
	res, err := s.cfg.Backend.Search(r.Context(), key, SearchOptions{Consistent: consistent})
	switch {
	case consistent:
		w.Header().Set(cacheHeader, "bypass")
	case res.Cached:
		w.Header().Set(cacheHeader, "hit")
		s.metrics.cacheHits.Add(1)
	default:
		w.Header().Set(cacheHeader, "miss")
		s.metrics.cacheMisses.Add(1)
	}
	if err != nil {
		return nil, err
	}
	return searchResponse{Key: key.String(), Items: itemsJSON(res.Items), Hops: res.Hops, Cached: res.Cached}, nil
}

// rangeResponse is the GET /v1/range body.
type rangeResponse struct {
	Lo         string     `json:"lo"`
	Hi         string     `json:"hi,omitempty"`
	Items      []itemJSON `json:"items"`
	Hops       int        `json:"hops"`
	Partitions int        `json:"partitions"`
	Incomplete bool       `json:"incomplete,omitempty"`
}

func (s *Server) handleRange(_ http.ResponseWriter, r *http.Request) (any, error) {
	q := r.URL.Query()
	enc := q.Get("enc")
	loRaw := q.Get("lo")
	if loRaw == "" {
		return nil, badRequestf("missing lo parameter")
	}
	lo, err := s.parseKey(loRaw, enc)
	if err != nil {
		return nil, err
	}
	kr := keyspace.Range{Lo: lo, HiUnbounded: true}
	if hiRaw := q.Get("hi"); hiRaw != "" {
		hi, err := s.parseKey(hiRaw, enc)
		if err != nil {
			return nil, err
		}
		kr = keyspace.NewRange(lo, hi)
	}
	res, err := s.cfg.Backend.Range(r.Context(), kr)
	if err != nil {
		return nil, err
	}
	return rangeResponse{
		Lo: lo.String(), Hi: kr.Hi.String(),
		Items: itemsJSON(res.Items), Hops: res.Hops,
		Partitions: res.Partitions, Incomplete: res.Incomplete,
	}, nil
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Keys []string `json:"keys"`
	Enc  string   `json:"enc,omitempty"`
}

// batchEntryJSON is one key's outcome in a batch response.
type batchEntryJSON struct {
	Key   string     `json:"key"`
	Found bool       `json:"found"`
	Error string     `json:"error,omitempty"`
	Items []itemJSON `json:"items,omitempty"`
	Hops  int        `json:"hops"`
}

// batchResponse is the POST /v1/batch body: per-key outcomes aligned with
// the request's keys.
type batchResponse struct {
	Results []batchEntryJSON `json:"results"`
}

func (s *Server) handleBatch(_ http.ResponseWriter, r *http.Request) (any, error) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, badRequestf("bad batch body: %v", err)
	}
	if len(req.Keys) == 0 {
		return nil, badRequestf("batch needs at least one key")
	}
	if len(req.Keys) > s.cfg.MaxBatchKeys {
		return nil, badRequestf("batch of %d keys exceeds the limit of %d", len(req.Keys), s.cfg.MaxBatchKeys)
	}
	keys := make([]keyspace.Key, len(req.Keys))
	for i, raw := range req.Keys {
		k, err := s.parseKey(raw, req.Enc)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	entries := s.cfg.Backend.SearchMany(r.Context(), keys)
	resp := batchResponse{Results: make([]batchEntryJSON, len(entries))}
	for i, e := range entries {
		out := batchEntryJSON{Key: keys[i].String(), Hops: e.Hops}
		if e.Err != nil {
			out.Error = e.Err.Error()
		} else {
			out.Found = true
			out.Items = itemsJSON(e.Items)
		}
		resp.Results[i] = out
	}
	return resp, nil
}

// mutateRequest is the PUT /v1/items/{key} (and optional DELETE) body.
type mutateRequest struct {
	Value string `json:"value"`
}

// mutateResponse is the body of a successful insert or delete.
type mutateResponse struct {
	Key      string `json:"key"`
	Acks     int    `json:"acks"`
	Replicas int    `json:"replicas"`
	Hops     int    `json:"hops"`
}

func (s *Server) handleInsert(_ http.ResponseWriter, r *http.Request) (any, error) {
	key, err := s.parseKey(r.PathValue("key"), r.URL.Query().Get("enc"))
	if err != nil {
		return nil, err
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, badRequestf("bad insert body (want {\"value\": ...}): %v", err)
	}
	res, err := s.cfg.Backend.Insert(r.Context(), replication.Item{Key: key, Value: req.Value})
	if err != nil {
		return nil, err
	}
	return mutateResponse{Key: key.String(), Acks: res.Acks, Replicas: res.Replicas, Hops: res.Hops}, nil
}

func (s *Server) handleDelete(_ http.ResponseWriter, r *http.Request) (any, error) {
	key, err := s.parseKey(r.PathValue("key"), r.URL.Query().Get("enc"))
	if err != nil {
		return nil, err
	}
	value := r.URL.Query().Get("value")
	if value == "" {
		var req mutateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err == nil {
			value = req.Value
		}
	}
	if value == "" {
		return nil, badRequestf("missing value (query parameter or {\"value\": ...} body)")
	}
	res, err := s.cfg.Backend.Delete(r.Context(), key, value)
	if err != nil {
		return nil, err
	}
	return mutateResponse{Key: key.String(), Acks: res.Acks, Replicas: res.Replicas, Hops: res.Hops}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	if err := s.cfg.Backend.Ready(ctx); err != nil {
		http.Error(w, fmt.Sprintf("backend not ready: %v", err), http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var snap *overlay.MetricsSnapshot
	if ms, ok := s.cfg.Backend.(MetricsSource); ok {
		v := ms.MetricsSnapshot()
		snap = &v
	}
	s.metrics.writeExposition(w, s.ready.Load(), snap)
}
