package gate

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
)

// newSinglePeerOverlay builds a one-peer overlay on a simulated network:
// the peer's path is the root, so it is responsible for every key and no
// routing is required. Returns the sim (to knock the peer offline), the
// peer and its address.
func newSinglePeerOverlay(t *testing.T) (*network.Sim, *overlay.Peer) {
	t.Helper()
	sim := network.NewSim(network.SimConfig{Seed: 1})
	p := overlay.New(overlay.Config{MinReplicas: 1, WriteQuorum: 1}, sim.Endpoint("p0"))
	t.Cleanup(func() { p.Close() })
	items := []replication.Item{
		{Key: keyspace.MustEncodeString("apple", keyspace.DefaultDepth), Value: "doc1"},
		{Key: keyspace.MustEncodeString("banana", keyspace.DefaultDepth), Value: "doc2"},
		{Key: keyspace.MustEncodeString("cherry", keyspace.DefaultDepth), Value: "doc3"},
	}
	p.AddItems(items)
	return sim, p
}

// TestPeerBackend drives the HTTP server over a real in-process peer.
func TestPeerBackend(t *testing.T) {
	_, p := newSinglePeerOverlay(t)
	srv := New(Config{Backend: PeerBackend{Peer: p}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var got searchResponse
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/apple", "", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}
	if len(got.Items) != 1 || got.Items[0].Value != "doc1" {
		t.Errorf("search items: %+v", got.Items)
	}
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/absent", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent key: status %d, want 404", resp.StatusCode)
	}
	var rng rangeResponse
	if resp := doJSON(t, ts, http.MethodGet, "/v1/range?lo=a&hi=z", "", &rng); resp.StatusCode != http.StatusOK {
		t.Fatalf("range: status %d", resp.StatusCode)
	}
	if len(rng.Items) != 3 {
		t.Errorf("range returned %d items, want 3", len(rng.Items))
	}

	// The peer implements MetricsSource, so /metrics carries peer families.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
}

// TestRemoteBackend drives the full remote path: HTTP server → RemoteBackend
// → wire protocol over the simulated network → peer.
func TestRemoteBackend(t *testing.T) {
	sim, p := newSinglePeerOverlay(t)
	rb := &RemoteBackend{
		Transport: sim.Endpoint("gate"),
		Peers:     []network.Addr{p.Addr()},
	}
	srv := New(Config{Backend: rb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp := doJSON(t, ts, http.MethodGet, "/readyz", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: status %d", resp.StatusCode)
	}

	var put mutateResponse
	if resp := doJSON(t, ts, http.MethodPut, "/v1/items/durian", `{"value":"doc4"}`, &put); resp.StatusCode != http.StatusOK {
		t.Fatalf("put: status %d", resp.StatusCode)
	}
	if put.Acks < 1 {
		t.Errorf("put acks: %+v", put)
	}

	var got searchResponse
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/durian", "", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}
	if len(got.Items) != 1 || got.Items[0].Value != "doc4" {
		t.Errorf("search items: %+v", got.Items)
	}

	var batch batchResponse
	if resp := doJSON(t, ts, http.MethodPost, "/v1/batch", `{"keys":["apple","durian","nope"]}`, &batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(batch.Results) != 3 || !batch.Results[0].Found || !batch.Results[1].Found || batch.Results[2].Found {
		t.Errorf("batch results: %+v", batch.Results)
	}

	var rng rangeResponse
	if resp := doJSON(t, ts, http.MethodGet, "/v1/range?lo=a&hi=z", "", &rng); resp.StatusCode != http.StatusOK {
		t.Fatalf("range: status %d", resp.StatusCode)
	}
	if len(rng.Items) != 4 {
		t.Errorf("range returned %d items, want 4", len(rng.Items))
	}

	if resp := doJSON(t, ts, http.MethodDelete, "/v1/items/durian?value=doc4", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/durian", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("search after delete: status %d, want 404", resp.StatusCode)
	}

	// Entry peer down: operations classify as unreachable → 503, and the
	// backend's own error is the exported sentinel.
	sim.SetOnline(p.Addr(), false)
	if _, err := rb.Search(context.Background(), keyspace.MustEncodeString("apple", keyspace.DefaultDepth), SearchOptions{}); !errors.Is(err, overlay.ErrUnreachable) {
		t.Errorf("search with peer down: %v, want ErrUnreachable", err)
	}
	if resp := doJSON(t, ts, http.MethodGet, "/v1/search/apple", "", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("search with peer down: status %d, want 503", resp.StatusCode)
	}
	if resp := doJSON(t, ts, http.MethodGet, "/readyz", "", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with peer down: status %d, want 503", resp.StatusCode)
	}
}
