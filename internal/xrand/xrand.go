// Package xrand provides a tiny per-peer random source. The standard
// library's rand.NewSource allocates a ~5 KiB lagged-Fibonacci state
// table; with two RNGs per simulated peer (overlay + routing table) that
// state alone dominated the sim's per-peer footprint. splitmix64 keeps the
// same rand.Rand API surface through a 16-byte Source64, trading the
// stdlib generator's period for an unmeasurable per-peer cost — more than
// adequate for driving stochastic construction and ref selection.
package xrand

import "math/rand"

// source is a splitmix64 generator: one uint64 of state, full 64-bit
// output, passes BigCrush. It intentionally does not implement Seed's
// documented reproducibility with the stdlib source — callers get a
// deterministic stream for a given seed, just a different one.
type source struct {
	state uint64
}

// New returns a rand.Rand backed by a splitmix64 source seeded with seed.
// The returned Rand is not safe for concurrent use, matching
// rand.New(rand.NewSource(seed)).
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// NewSource returns the bare Source64, for callers that compose their own
// rand.Rand.
func NewSource(seed int64) rand.Source64 {
	return &source{state: uint64(seed)}
}

func (s *source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *source) Seed(seed int64) {
	s.state = uint64(seed)
}
