package xrand

import (
	"testing"
	"unsafe"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if New(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seed 42 and 43 streams coincide %d/1000 times", same)
	}
}

func TestUniformish(t *testing.T) {
	// Coarse sanity: Intn(10) over 100k draws should put roughly 10% in
	// each bucket. This is a smoke test for catastrophic bias, not a
	// statistical certification.
	r := New(7)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d draws (expected ~%d)", i, c, n/10)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestSourceIsSmall(t *testing.T) {
	// The whole point of the package: the source must stay pointer-sized,
	// not the stdlib's ~5 KiB table.
	if sz := unsafe.Sizeof(source{}); sz > 16 {
		t.Fatalf("source grew to %d bytes", sz)
	}
}
