package trie

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pgrid/internal/keyspace"
	"pgrid/internal/workload"

	"pgrid/internal/testutil"
)

func uniformKeys(n int, seed int64) keyspace.Keys {
	r := rand.New(rand.NewSource(seed))
	return workload.Keys(workload.Uniform{}, n, 32, r)
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{MaxKeys: 10, MinReplicas: 5}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{MaxKeys: 0, MinReplicas: 5},
		{MaxKeys: 10, MinReplicas: 0},
		{MaxKeys: 10, MinReplicas: 5, MaxDepth: 70},
		{MaxKeys: 10, MinReplicas: 5, MaxDepth: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be rejected", p)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	keys := uniformKeys(100, 1)
	if _, err := Build(keys, 0, Params{MaxKeys: 10, MinReplicas: 5}); err == nil {
		t.Error("expected error for zero peers")
	}
	if _, err := Build(keys, 10, Params{}); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestBuildNoSplitWhenUnderloaded(t *testing.T) {
	keys := uniformKeys(10, 2)
	tree, err := Build(keys, 100, Params{MaxKeys: 50, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("partition below MaxKeys should not be split")
	}
	if tree.Root.Peers != 100 || tree.Root.Keys != 10 {
		t.Errorf("root allocation wrong: %+v", tree.Root)
	}
}

func TestBuildNoSplitWhenTooFewPeers(t *testing.T) {
	keys := uniformKeys(1000, 3)
	tree, err := Build(keys, 9, Params{MaxKeys: 10, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("splitting with fewer than 2*n_min peers must not happen")
	}
}

func TestBuildLeavesCoverKeySpace(t *testing.T) {
	for _, d := range workload.PaperSet() {
		r := rand.New(rand.NewSource(4))
		keys := workload.Keys(d, 2560, 32, r)
		tree, err := Build(keys, 256, Params{MaxKeys: 50, MinReplicas: 5})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if !keyspace.CoversKeySpace(tree.Paths()) {
			t.Errorf("%s: leaves do not cover the key space: %v", d.Name(), tree.Paths())
		}
	}
}

func TestBuildPeersConserved(t *testing.T) {
	for _, d := range workload.PaperSet() {
		r := rand.New(rand.NewSource(5))
		keys := workload.Keys(d, 2560, 32, r)
		tree, err := Build(keys, 256, Params{MaxKeys: 50, MinReplicas: 5})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, l := range tree.Leaves() {
			sum += l.Peers
		}
		if math.Abs(sum-256) > 1e-6 {
			t.Errorf("%s: peers not conserved: %v", d.Name(), sum)
		}
	}
}

func TestBuildKeysConserved(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	keys := workload.Keys(workload.NewPareto(1.0), 5000, 32, r)
	tree, err := Build(keys, 512, Params{MaxKeys: 50, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, l := range tree.Leaves() {
		sum += l.Keys
	}
	if sum != len(keys) {
		t.Errorf("keys not conserved: %d != %d", sum, len(keys))
	}
}

func TestBuildProportionalAllocation(t *testing.T) {
	// With a uniform distribution and generous parameters, peer allocations
	// should be roughly proportional to key counts at every leaf.
	r := rand.New(rand.NewSource(7))
	keys := workload.Keys(workload.Uniform{}, 10000, 32, r)
	tree, err := Build(keys, 1000, Params{MaxKeys: 700, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range tree.Leaves() {
		wantPeers := 1000 * float64(l.Keys) / 10000
		if l.Peers < wantPeers*0.5 || l.Peers > wantPeers*2 {
			t.Errorf("leaf %s: peers %.2f vs proportional %.2f", l.Path, l.Peers, wantPeers)
		}
	}
}

func TestBuildRespectsMinReplicasProperty(t *testing.T) {
	// Property: no leaf ever receives fewer than MinReplicas peers (the
	// whole point of the n_min criterion), for arbitrary workloads/sizes.
	f := func(seed int64, which uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := workload.PaperSet()[int(which)%6]
		keys := workload.Keys(d, 1000, 32, r)
		tree, err := Build(keys, 128, Params{MaxKeys: 20, MinReplicas: 5})
		if err != nil {
			return false
		}
		return tree.MinLeafPeers() >= 5-1e-9
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 40, 511)); err != nil {
		t.Error(err)
	}
}

func TestSkewedDistributionsProduceDeeperTries(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	params := Params{MaxKeys: 50, MinReplicas: 5}
	uni, _ := Build(workload.Keys(workload.Uniform{}, 2560, 32, r), 256, params)
	par, _ := Build(workload.Keys(workload.NewPareto(0.5), 2560, 32, r), 256, params)
	_, _, maxU := uni.Depths()
	_, _, maxP := par.Depths()
	if maxP <= maxU {
		t.Errorf("skewed trie should be deeper: pareto max depth %d vs uniform %d", maxP, maxU)
	}
}

func TestPartitionFor(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	keys := workload.Keys(workload.Uniform{}, 2000, 32, r)
	tree, err := Build(keys, 256, Params{MaxKeys: 40, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := keyspace.MustFromFloat(r.Float64(), 32)
		p := tree.PartitionFor(k)
		if !k.HasPrefix(p) {
			t.Fatalf("PartitionFor(%v) = %v, key does not have that prefix", k, p)
		}
	}
}

func TestMaxDepthBound(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	keys := workload.Keys(workload.NewNormal(), 5000, 32, r)
	tree, err := Build(keys, 1024, Params{MaxKeys: 5, MinReplicas: 2, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, max := tree.Depths()
	if max > 4 {
		t.Errorf("max depth %d exceeds bound", max)
	}
}

func TestTreeStringAndAllocations(t *testing.T) {
	keys := uniformKeys(200, 11)
	tree, _ := Build(keys, 64, Params{MaxKeys: 30, MinReplicas: 5})
	if tree.String() == "" {
		t.Error("String should render allocations")
	}
	allocs := tree.Allocations()
	if len(allocs) != len(tree.Leaves()) {
		t.Error("allocations/leaves mismatch")
	}
	if tree.MaxLeafKeys() <= 0 {
		t.Error("MaxLeafKeys should be positive")
	}
}

func TestEmptyKeys(t *testing.T) {
	tree, err := Build(nil, 10, Params{MaxKeys: 10, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() || tree.Root.Keys != 0 {
		t.Error("empty key set should yield a single empty leaf")
	}
	min, mean, max := tree.Depths()
	if min != 0 || mean != 0 || max != 0 {
		t.Error("depths of trivial trie should be zero")
	}
}
