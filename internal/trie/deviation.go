package trie

import (
	"math"

	"pgrid/internal/keyspace"
)

// This file implements the load-balancing quality metric of Section 4.4: the
// distributed construction produces an assignment of peers to partitions
// (q_i', n_i'); the reference partitioner produces the optimal assignment
// (q_i, n_i). The deviation is the root-mean-square difference of the peer
// counts over the partitions of the reference trie, normalized by the mean
// peer count:
//
//	dev = sqrt( (1/K) * sum_i (n_i - n_i')^2 ) / ( (1/K) * sum_i n_i' )
//
// A deviation of 0 means the decentralized process reproduced the optimal
// allocation exactly; the paper reports values around 0.1-0.5 for n=256-1024
// and ≈0.38 on PlanetLab.

// Assignment maps partition paths (as produced by the decentralized
// construction) to the number of peers responsible for them.
type Assignment map[keyspace.Path]float64

// AssignmentFromPaths builds an Assignment by counting how many peers ended
// up on each path.
func AssignmentFromPaths(paths []keyspace.Path) Assignment {
	a := make(Assignment, len(paths))
	for _, p := range paths {
		a[p]++
	}
	return a
}

// PeersUnder sums the peers of the assignment whose paths are prefixed by
// the given reference partition (peers that stopped splitting early, at a
// shorter path that contains the reference partition, contribute the
// fraction of their sub-tree that overlaps it).
func (a Assignment) PeersUnder(ref keyspace.Path) float64 {
	total := 0.0
	for p, n := range a {
		switch {
		case ref.IsPrefixOf(p):
			// Peer is at or below the reference partition: fully counted.
			total += n
		case p.IsPrefixOf(ref):
			// Peer stopped above the reference partition: it serves 2^(depth
			// difference) reference partitions, so it contributes its
			// corresponding share to each.
			total += n / float64(uint64(1)<<uint(ref.Depth()-p.Depth()))
		}
	}
	return total
}

// Deviation computes the load-balancing deviation of the decentralized
// assignment relative to the reference trie.
func Deviation(ref *Tree, actual Assignment) float64 {
	leaves := ref.Leaves()
	if len(leaves) == 0 {
		return 0
	}
	var sqSum, actSum float64
	for _, l := range leaves {
		got := actual.PeersUnder(l.Path)
		diff := l.Peers - got
		sqSum += diff * diff
		actSum += got
	}
	k := float64(len(leaves))
	meanActual := actSum / k
	if meanActual == 0 {
		return math.Sqrt(sqSum / k)
	}
	return math.Sqrt(sqSum/k) / meanActual
}

// StorageImbalance reports max/mean number of keys per partition of an
// actual assignment of keys to paths — a secondary quality metric for the
// storage-load goal.
func StorageImbalance(keysPerPath map[keyspace.Path]int) float64 {
	if len(keysPerPath) == 0 {
		return 0
	}
	max, sum := 0, 0
	for _, k := range keysPerPath {
		if k > max {
			max = k
		}
		sum += k
	}
	mean := float64(sum) / float64(len(keysPerPath))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// ReplicationStats summarises the replica counts of an assignment: the mean
// and coefficient of variation of the number of peers per reference
// partition, plus the fraction of partitions below the minimum replication
// target.
type ReplicationStats struct {
	MeanReplicas     float64
	CoefVariation    float64
	FractionBelowMin float64
}

// Replication computes ReplicationStats for the assignment against the
// reference trie and the n_min parameter of the trie.
func Replication(ref *Tree, actual Assignment) ReplicationStats {
	leaves := ref.Leaves()
	if len(leaves) == 0 {
		return ReplicationStats{}
	}
	var sum, sqSum float64
	below := 0
	for _, l := range leaves {
		got := actual.PeersUnder(l.Path)
		sum += got
		sqSum += got * got
		if got < float64(ref.Params.MinReplicas) {
			below++
		}
	}
	k := float64(len(leaves))
	mean := sum / k
	variance := sqSum/k - mean*mean
	if variance < 0 {
		variance = 0
	}
	cv := 0.0
	if mean > 0 {
		cv = math.Sqrt(variance) / mean
	}
	return ReplicationStats{
		MeanReplicas:     mean,
		CoefVariation:    cv,
		FractionBelowMin: float64(below) / k,
	}
}
