package trie

import (
	"math"
	"math/rand"
	"testing"

	"pgrid/internal/keyspace"
	"pgrid/internal/workload"
)

func TestAssignmentFromPaths(t *testing.T) {
	a := AssignmentFromPaths([]keyspace.Path{"0", "0", "1", "10"})
	if a["0"] != 2 || a["1"] != 1 || a["10"] != 1 {
		t.Errorf("assignment = %v", a)
	}
}

func TestPeersUnder(t *testing.T) {
	a := Assignment{"00": 3, "01": 2, "1": 4, "": 8}
	// Reference partition "0": peers at 00 and 01 count fully; the root
	// peers contribute half of their count.
	if got := a.PeersUnder("0"); got != 3+2+4 {
		t.Errorf("PeersUnder(0) = %v, want 9", got)
	}
	// Reference partition "000": only a share of the shallower peers.
	want := 3.0/2 + 8.0/8
	if got := a.PeersUnder("000"); math.Abs(got-want) > 1e-9 {
		t.Errorf("PeersUnder(000) = %v, want %v", got, want)
	}
	// Disjoint partition.
	if got := a.PeersUnder("11"); got != 4.0/2+8.0/4 {
		t.Errorf("PeersUnder(11) = %v", got)
	}
}

func TestDeviationZeroForPerfectMatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	keys := workload.Keys(workload.Uniform{}, 2560, 32, r)
	tree, err := Build(keys, 256, Params{MaxKeys: 50, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Build the "actual" assignment exactly from the reference allocation.
	actual := make(Assignment)
	for _, l := range tree.Leaves() {
		actual[l.Path] = l.Peers
	}
	if dev := Deviation(tree, actual); dev > 1e-9 {
		t.Errorf("deviation for perfect match = %v, want 0", dev)
	}
}

func TestDeviationGrowsWithMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	keys := workload.Keys(workload.Uniform{}, 2560, 32, r)
	tree, err := Build(keys, 256, Params{MaxKeys: 50, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	perfect := make(Assignment)
	for _, l := range tree.Leaves() {
		perfect[l.Path] = l.Peers
	}
	// Mildly perturbed assignment.
	mild := make(Assignment)
	for p, n := range perfect {
		mild[p] = n + 1
	}
	// Severely skewed assignment: everybody on one leaf.
	severe := Assignment{tree.Leaves()[0].Path: 256}
	dPerfect := Deviation(tree, perfect)
	dMild := Deviation(tree, mild)
	dSevere := Deviation(tree, severe)
	if !(dPerfect < dMild && dMild < dSevere) {
		t.Errorf("deviation ordering violated: %v %v %v", dPerfect, dMild, dSevere)
	}
}

func TestDeviationHandlesShallowPaths(t *testing.T) {
	// Peers that did not finish splitting sit on prefixes of the reference
	// partitions; the metric must still account for them (fractionally).
	r := rand.New(rand.NewSource(3))
	keys := workload.Keys(workload.Uniform{}, 2560, 32, r)
	tree, err := Build(keys, 256, Params{MaxKeys: 50, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	all := Assignment{keyspace.Root: 256}
	dev := Deviation(tree, all)
	if math.IsNaN(dev) || dev <= 0 {
		t.Errorf("deviation for un-split network = %v", dev)
	}
}

func TestDeviationEmptyTree(t *testing.T) {
	tree := &Tree{Root: nil}
	if Deviation(tree, Assignment{}) != 0 {
		t.Error("empty tree deviation should be 0")
	}
}

func TestStorageImbalance(t *testing.T) {
	if StorageImbalance(nil) != 0 {
		t.Error("empty imbalance should be 0")
	}
	m := map[keyspace.Path]int{"0": 10, "1": 10}
	if got := StorageImbalance(m); got != 1 {
		t.Errorf("balanced imbalance = %v", got)
	}
	m = map[keyspace.Path]int{"0": 30, "1": 10}
	if got := StorageImbalance(m); got != 1.5 {
		t.Errorf("imbalance = %v", got)
	}
	if StorageImbalance(map[keyspace.Path]int{"0": 0}) != 0 {
		t.Error("zero-key imbalance should be 0")
	}
}

func TestReplicationStats(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	keys := workload.Keys(workload.Uniform{}, 2560, 32, r)
	tree, err := Build(keys, 256, Params{MaxKeys: 50, MinReplicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	perfect := make(Assignment)
	for _, l := range tree.Leaves() {
		perfect[l.Path] = l.Peers
	}
	st := Replication(tree, perfect)
	if st.MeanReplicas < 5 {
		t.Errorf("mean replicas %v below n_min", st.MeanReplicas)
	}
	if st.FractionBelowMin > 0 {
		t.Errorf("perfect allocation should have nothing below min: %v", st.FractionBelowMin)
	}
	// Starving assignment.
	starve := Assignment{tree.Leaves()[0].Path: 1}
	st = Replication(tree, starve)
	if st.FractionBelowMin < 0.9 {
		t.Errorf("starved assignment should be mostly below min: %v", st.FractionBelowMin)
	}
	empty := Replication(&Tree{}, perfect)
	if empty.MeanReplicas != 0 {
		t.Error("empty tree replication should be zero")
	}
}
